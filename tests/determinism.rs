//! Determinism across schedules and thread counts: each attention row is
//! computed by exactly one block with a fixed neighbor order, so outputs
//! are bit-identical no matter how rows are scheduled — a property the
//! benchmark methodology silently relies on.

use graph_attention::core::{
    csr_attention, local_attention, AttentionEngine, AttentionKernel, AttentionPlan, KernelOptions,
};
use graph_attention::masks::{MaskPattern, RandomUniform};
use graph_attention::model::{DecoderModel, LayerPattern};
use graph_attention::parallel::{Schedule, ThreadPool};
use graph_attention::serve::{
    generate_model_trace, generate_trace, replay, replay_mixed, AdmissionMode, EvictionMode,
    PatternChoice, RequestId, Scheduler, ServeConfig, TraceSpec,
};
use graph_attention::tensor::init::qkv;

#[test]
fn outputs_bitwise_identical_across_schedules() {
    let l = 256;
    let (q, k, v) = qkv::<f32>(l, 16, 8);
    let mask = RandomUniform::new(l, 0.1, 3).to_csr();
    let pool = ThreadPool::new(4);

    let schedules = [
        Schedule::StaticContiguous,
        Schedule::BlockCyclic { chunk: 1 },
        Schedule::BlockCyclic { chunk: 17 },
        Schedule::Dynamic { grain: 1 },
        Schedule::Dynamic { grain: 32 },
    ];
    let reference = csr_attention(
        &pool,
        &mask,
        &q,
        &k,
        &v,
        &KernelOptions::new().with_schedule(schedules[0]),
    )
    .unwrap();
    for schedule in &schedules[1..] {
        let out = csr_attention(
            &pool,
            &mask,
            &q,
            &k,
            &v,
            &KernelOptions::new().with_schedule(*schedule),
        )
        .unwrap();
        assert_eq!(
            out.as_slice(),
            reference.as_slice(),
            "schedule {schedule:?} changed bits"
        );
    }
}

#[test]
fn outputs_bitwise_identical_across_thread_counts() {
    let l = 192;
    let (q, k, v) = qkv::<f32>(l, 8, 2);
    let reference = {
        let pool = ThreadPool::new(1);
        local_attention(&pool, 9, &q, &k, &v, &KernelOptions::new()).unwrap()
    };
    for threads in [2usize, 3, 8] {
        let pool = ThreadPool::new(threads);
        let out = local_attention(&pool, 9, &q, &k, &v, &KernelOptions::new()).unwrap();
        assert_eq!(
            out.as_slice(),
            reference.as_slice(),
            "{threads} threads changed bits"
        );
    }
}

#[test]
fn repeated_runs_identical() {
    let l = 128;
    let (q, k, v) = qkv::<f32>(l, 8, 4);
    let pool = ThreadPool::new(4);
    let mask = RandomUniform::new(l, 0.2, 7).to_dense();
    let a = AttentionKernel::SdpMasked(&mask)
        .run(&pool, &q, &k, &v, &KernelOptions::new())
        .unwrap();
    for _ in 0..3 {
        let b = AttentionKernel::SdpMasked(&mask)
            .run(&pool, &q, &k, &v, &KernelOptions::new())
            .unwrap();
        assert_eq!(a.as_slice(), b.as_slice());
    }
}

#[test]
fn serving_trace_identical_across_pool_sizes() {
    // The continuous-batching scheduler inherits the kernels' bitwise
    // schedule-independence: replaying one seeded trace on pools of 1, 2,
    // and 4 workers must produce identical outputs, identical completion
    // *order*, and identical completion ticks — the scheduler's control
    // flow is a pure function of the virtual clock, never of thread
    // timing.
    let spec = TraceSpec {
        sequences: 10,
        prompt: (3, 18),
        decode: (0, 6),
        dk: 8,
        arrival_gap: (0, 2),
        priority_classes: 2,
        seed: 0xD17,
    };
    let config = ServeConfig {
        max_in_flight: 3,
        kv_pages: 12,
        page_size: 8,
        arrival_window: 1,
        prefill_chunk: 4,
        admission: AdmissionMode::PagedUsage,
        eviction: EvictionMode::Recompute,
        swap_bytes: usize::MAX,
    };
    let run = |threads: usize| {
        let mut scheduler: Scheduler<'static, f32> =
            Scheduler::new(AttentionEngine::with_threads(threads), config).unwrap();
        let plans = vec![
            scheduler
                .register_plan(AttentionPlan::single(AttentionKernel::Local { n: 3 }).unwrap())
                .unwrap(),
            scheduler
                .register_plan(
                    AttentionPlan::single(AttentionKernel::Dilated1d { w: 4, r: 1 }).unwrap(),
                )
                .unwrap(),
        ];
        let trace = generate_trace::<f32, _>(&spec, &plans);
        replay(&mut scheduler, &trace, 100_000).unwrap()
    };
    let reference = run(1);
    assert_eq!(reference.len(), spec.sequences);
    for threads in [2usize, 4] {
        let completions = run(threads);
        assert_eq!(completions.len(), reference.len());
        for (a, b) in reference.iter().zip(&completions) {
            assert_eq!(a.id, b.id, "{threads} threads changed completion order");
            assert_eq!(
                (a.admitted, a.completed),
                (b.admitted, b.completed),
                "{threads} threads changed the schedule of {:?}",
                a.id
            );
            assert_eq!(
                a.output.as_slice(),
                b.output.as_slice(),
                "{threads} threads changed bits of {:?}",
                a.id
            );
        }
    }
}

#[test]
fn preempting_trace_identical_across_pool_sizes() {
    // Preemption is scheduler control flow, so it must be exactly as
    // thread-count-independent as the kernels themselves: a trace tight
    // enough to force evict-and-resume replays on pools of 1, 2, and 4
    // workers with identical outputs, identical completion order, and
    // identical per-tick preemption *events* (who was evicted and who
    // resumed, at which tick).
    let spec = TraceSpec {
        sequences: 6,
        prompt: (2, 4),
        decode: (6, 10),
        dk: 8,
        arrival_gap: (0, 1),
        priority_classes: 2,
        seed: 0xE51C7,
    };
    let config = ServeConfig {
        max_in_flight: 4,
        kv_pages: 8,
        page_size: 2,
        arrival_window: 0,
        prefill_chunk: 2,
        admission: AdmissionMode::PagedUsage,
        eviction: EvictionMode::Recompute,
        swap_bytes: usize::MAX,
    };
    type Event = (u64, Vec<RequestId>, Vec<RequestId>);
    let run = |threads: usize| {
        let mut scheduler: Scheduler<'static, f32> =
            Scheduler::new(AttentionEngine::with_threads(threads), config).unwrap();
        let plans = vec![
            scheduler
                .register_plan(AttentionPlan::single(AttentionKernel::Local { n: 3 }).unwrap())
                .unwrap(),
            scheduler
                .register_plan(
                    AttentionPlan::single(AttentionKernel::Dilated1d { w: 4, r: 1 }).unwrap(),
                )
                .unwrap(),
        ];
        let trace = generate_trace::<f32, _>(&spec, &plans);
        let mut completions = Vec::new();
        let mut events: Vec<Event> = Vec::new();
        let mut next = 0usize;
        while next < trace.len() || !scheduler.is_idle() {
            while next < trace.len() && trace[next].at <= scheduler.now() {
                scheduler.submit(trace[next].request.clone()).unwrap();
                next += 1;
            }
            let report = scheduler.tick().unwrap();
            if !report.preempted.is_empty() || !report.resumed.is_empty() {
                events.push((report.tick, report.preempted, report.resumed));
            }
            completions.extend(report.completed);
            assert!(scheduler.now() < 100_000, "trace did not drain");
        }
        (completions, events, scheduler.preemption_events())
    };
    let (reference, ref_events, ref_count) = run(1);
    assert_eq!(reference.len(), spec.sequences);
    assert!(ref_count > 0, "this trace must force preemption");
    for threads in [2usize, 4] {
        let (completions, events, count) = run(threads);
        assert_eq!(
            events, ref_events,
            "{threads} threads changed the preemption schedule"
        );
        assert_eq!(count, ref_count);
        assert_eq!(completions.len(), reference.len());
        for (a, b) in reference.iter().zip(&completions) {
            assert_eq!(a.id, b.id, "{threads} threads changed completion order");
            assert_eq!(
                (a.admitted, a.completed, a.preemptions),
                (b.admitted, b.completed, b.preemptions),
                "{threads} threads changed the schedule of {:?}",
                a.id
            );
            assert_eq!(
                a.output.as_slice(),
                b.output.as_slice(),
                "{threads} threads changed bits of {:?}",
                a.id
            );
        }
    }
}

#[test]
fn swap_mode_preempting_trace_identical_across_pool_sizes_and_modes() {
    // EvictionMode::Swap must be invisible twice over: the swapped
    // replay is identical across 1/2/4 worker threads, and every event
    // and completion matches the evict-and-recompute replay of the same
    // trace tick for tick — eviction mode changes resume *cost*, never
    // the schedule or the bits.
    let spec = TraceSpec {
        sequences: 6,
        prompt: (2, 4),
        decode: (6, 10),
        dk: 8,
        arrival_gap: (0, 1),
        priority_classes: 2,
        seed: 0xE51C7,
    };
    type Event = (u64, Vec<RequestId>, Vec<RequestId>);
    let run = |threads: usize, eviction: EvictionMode| {
        let config = ServeConfig {
            max_in_flight: 4,
            kv_pages: 8,
            page_size: 2,
            arrival_window: 0,
            prefill_chunk: 2,
            admission: AdmissionMode::PagedUsage,
            eviction,
            swap_bytes: usize::MAX,
        };
        let mut scheduler: Scheduler<'static, f32> =
            Scheduler::new(AttentionEngine::with_threads(threads), config).unwrap();
        let plans = vec![
            scheduler
                .register_plan(AttentionPlan::single(AttentionKernel::Local { n: 3 }).unwrap())
                .unwrap(),
            scheduler
                .register_plan(
                    AttentionPlan::single(AttentionKernel::Dilated1d { w: 4, r: 1 }).unwrap(),
                )
                .unwrap(),
        ];
        let trace = generate_trace::<f32, _>(&spec, &plans);
        let mut completions = Vec::new();
        let mut events: Vec<Event> = Vec::new();
        let mut next = 0usize;
        while next < trace.len() || !scheduler.is_idle() {
            while next < trace.len() && trace[next].at <= scheduler.now() {
                scheduler.submit(trace[next].request.clone()).unwrap();
                next += 1;
            }
            let report = scheduler.tick().unwrap();
            if !report.preempted.is_empty() || !report.resumed.is_empty() {
                events.push((report.tick, report.preempted, report.resumed));
            }
            completions.extend(report.completed);
            assert!(scheduler.now() < 100_000, "trace did not drain");
        }
        if eviction == EvictionMode::Swap {
            assert!(
                scheduler.swap_peak_bytes() > 0,
                "{threads} threads: the swapped replay must use the arena"
            );
        }
        (completions, events)
    };
    let (reference, ref_events) = run(1, EvictionMode::Recompute);
    assert!(!ref_events.is_empty(), "this trace must force preemption");
    for threads in [1usize, 2, 4] {
        let (completions, events) = run(threads, EvictionMode::Swap);
        assert_eq!(
            events, ref_events,
            "swap mode at {threads} threads changed the preemption schedule"
        );
        assert_eq!(completions.len(), reference.len());
        for (a, b) in reference.iter().zip(&completions) {
            assert_eq!(a.id, b.id, "swap mode changed completion order");
            assert_eq!(
                (a.admitted, a.completed, a.preemptions),
                (b.admitted, b.completed, b.preemptions),
                "swap mode at {threads} threads changed the schedule of {:?}",
                a.id
            );
            assert_eq!(
                a.output.as_slice(),
                b.output.as_slice(),
                "swap mode at {threads} threads changed bits of {:?}",
                a.id
            );
        }
    }
}

#[test]
fn routed_serving_trace_identical_across_pool_sizes() {
    // Content-adaptive serving adds two stages that could plausibly
    // depend on thread timing — the router's scored projection of each
    // query row and the Auto pattern resolution at admission — and both
    // must be pure functions of the data and the virtual clock: a trace
    // mixing a static plan, a causal routed plan, and Auto sequences,
    // tight enough to evict routed sequences mid-decode, replays on
    // pools of 1, 2, and 4 workers with identical outputs, completion
    // order, resolved plans, and preemption counts.
    let spec = TraceSpec {
        sequences: 6,
        prompt: (2, 5),
        decode: (5, 9),
        dk: 6,
        arrival_gap: (0, 1),
        priority_classes: 2,
        seed: 0xADA97,
    };
    let config = ServeConfig {
        max_in_flight: 4,
        kv_pages: 8,
        page_size: 2,
        arrival_window: 0,
        prefill_chunk: 2,
        admission: AdmissionMode::PagedUsage,
        eviction: EvictionMode::Recompute,
        swap_bytes: usize::MAX,
    };
    let run = |threads: usize| {
        let mut scheduler: Scheduler<'static, f32> =
            Scheduler::new(AttentionEngine::with_threads(threads), config).unwrap();
        let local = scheduler
            .register_plan(AttentionPlan::single(AttentionKernel::Local { n: 3 }).unwrap())
            .unwrap();
        let routed = scheduler
            .register_plan(
                AttentionPlan::single(AttentionKernel::Routed {
                    groups: 2,
                    seed: 0x7007,
                    causal: true,
                })
                .unwrap(),
            )
            .unwrap();
        let patterns = [
            PatternChoice::from(local),
            PatternChoice::from(routed),
            PatternChoice::Auto,
        ];
        let trace = generate_trace::<f32, _>(&spec, &patterns);
        let completions = replay(&mut scheduler, &trace, 100_000).unwrap();
        let routed_preempted = completions
            .iter()
            .any(|c| c.target.plan() == Some(routed) && c.preemptions > 0);
        (completions, scheduler.preemption_events(), routed_preempted)
    };
    let (reference, ref_events, ref_routed_preempted) = run(1);
    assert_eq!(reference.len(), spec.sequences);
    assert!(ref_events > 0, "this trace must force preemption");
    assert!(
        ref_routed_preempted,
        "a routed sequence must be evicted and resumed"
    );
    for threads in [2usize, 4] {
        let (completions, events, _) = run(threads);
        assert_eq!(events, ref_events, "{threads} threads changed preemptions");
        assert_eq!(completions.len(), reference.len());
        for (a, b) in reference.iter().zip(&completions) {
            assert_eq!(a.id, b.id, "{threads} threads changed completion order");
            assert_eq!(
                a.target, b.target,
                "{threads} threads changed the resolved plan of {:?}",
                a.id
            );
            assert_eq!(
                (a.admitted, a.completed, a.preemptions),
                (b.admitted, b.completed, b.preemptions),
                "{threads} threads changed the schedule of {:?}",
                a.id
            );
            assert_eq!(
                a.output.as_slice(),
                b.output.as_slice(),
                "{threads} threads changed bits of {:?}",
                a.id
            );
        }
    }
}

#[test]
fn multi_layer_model_trace_identical_across_pool_sizes() {
    // Decoder-stack serving adds per-layer projections, residuals, and
    // one launch per layer per tick — all of which must stay exactly as
    // thread-count-independent as the bare kernels: one seeded
    // multi-layer trace (tight enough to preempt whole stacks) replayed
    // on pools of 1, 2, and 4 workers produces identical outputs,
    // completion order, ticks, and preemption counts.
    let spec = TraceSpec {
        sequences: 5,
        prompt: (2, 5),
        decode: (3, 7),
        dk: 4,
        arrival_gap: (0, 1),
        priority_classes: 2,
        seed: 0x11A7,
    };
    let config = ServeConfig {
        max_in_flight: 3,
        kv_pages: 40,
        page_size: 1,
        arrival_window: 0,
        prefill_chunk: 2,
        admission: AdmissionMode::PagedUsage,
        eviction: EvictionMode::Recompute,
        swap_bytes: usize::MAX,
    };
    let run = |threads: usize| {
        let mut scheduler: Scheduler<'static, f32> =
            Scheduler::new(AttentionEngine::with_threads(threads), config).unwrap();
        let model = scheduler.register_model(
            DecoderModel::new(
                LayerPattern::parse("FSF").unwrap(),
                vec![
                    (
                        'F',
                        AttentionPlan::single(AttentionKernel::Local { n: 2 }).unwrap(),
                    ),
                    (
                        'S',
                        AttentionPlan::single(AttentionKernel::Dilated1d { w: 2, r: 2 }).unwrap(),
                    ),
                ],
                10,
                2,
                5,
                0xF00D,
            )
            .unwrap(),
        );
        let trace = generate_model_trace::<f32>(&spec, &[(model, 10)]);
        let completions = replay_mixed(&mut scheduler, &[], &trace, 100_000).unwrap();
        (completions, scheduler.preemption_events())
    };
    let (reference, ref_events) = run(1);
    assert_eq!(reference.len(), spec.sequences);
    assert!(ref_events > 0, "this trace must preempt a stack");
    for threads in [2usize, 4] {
        let (completions, events) = run(threads);
        assert_eq!(events, ref_events, "{threads} threads changed preemptions");
        assert_eq!(completions.len(), reference.len());
        for (a, b) in reference.iter().zip(&completions) {
            assert_eq!(a.id, b.id, "{threads} threads changed completion order");
            assert_eq!(
                (a.admitted, a.completed, a.preemptions),
                (b.admitted, b.completed, b.preemptions),
                "{threads} threads changed the schedule of {:?}",
                a.id
            );
            assert_eq!(
                a.output.as_slice(),
                b.output.as_slice(),
                "{threads} threads changed bits of {:?}",
                a.id
            );
        }
    }
}

#[test]
fn flash_identical_across_threads() {
    let l = 160;
    let (q, k, v) = qkv::<f32>(l, 16, 6);
    let reference = {
        let pool = ThreadPool::new(1);
        AttentionKernel::Flash
            .run(&pool, &q, &k, &v, &KernelOptions::new())
            .unwrap()
    };
    let pool = ThreadPool::new(6);
    let out = AttentionKernel::Flash
        .run(&pool, &q, &k, &v, &KernelOptions::new())
        .unwrap();
    assert_eq!(out.as_slice(), reference.as_slice());
}
