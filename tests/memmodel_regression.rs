//! Cross-crate regression of the capacity results: the calibrated memory
//! model must keep reproducing the paper's Table II numbers, including the
//! 160 M-token headline, and the LongNet sparsity schedule must match the
//! paper's quoted values.

use graph_attention::masks::longnet_sparsity_factor;
use graph_attention::memmodel::{
    max_context_length, paper_value, Accounting, DType, MemAlgorithm, MemConfig, A100_80GB,
    TABLE2_ROWS,
};

#[test]
fn headline_160m_context_is_reproduced() {
    // "our algorithms are able to achieve extremely long sequence lengths
    // of as high as 160 million on a single NVIDIA A100" — the FP16 dk=64
    // Local/Flash row of Table II.
    let cfg = MemConfig {
        algo: MemAlgorithm::Local,
        dtype: DType::F16,
        d_total: 64,
        heads: 1,
        sf: 1e-4,
        accounting: Accounting::PaperCalibrated,
    };
    let max_l = max_context_length(&A100_80GB, &cfg).unwrap();
    assert!(
        (max_l as i64 - 166_471_601).abs() <= 2,
        "got {max_l}, paper says 166,471,601"
    );
    assert!(max_l > 160_000_000);
}

#[test]
fn full_table2_within_half_percent() {
    for spec in &TABLE2_ROWS {
        for algo in MemAlgorithm::ALL {
            let expected = paper_value(spec, algo);
            let cfg = MemConfig {
                algo,
                dtype: spec.dtype,
                d_total: spec.d_total,
                heads: spec.heads,
                sf: 1e-4,
                accounting: Accounting::PaperCalibrated,
            };
            let ours = max_context_length(&A100_80GB, &cfg);
            match (ours, expected) {
                (Some(a), Some(b)) => {
                    let rel = (a as f64 - b as f64).abs() / b as f64;
                    assert!(
                        rel < 0.005,
                        "{:?}/{}/{} {}: {a} vs paper {b} ({:.3}%)",
                        spec.dtype,
                        spec.d_total,
                        spec.heads,
                        algo.label(),
                        rel * 100.0
                    );
                }
                (None, None) => {}
                (a, b) => panic!("support mismatch {:?}: {a:?} vs {b:?}", algo),
            }
        }
    }
}

#[test]
fn longnet_schedule_matches_section_2d() {
    // {16k: 0.17, 32k: 0.085, 1M: 0.0027, 160M: 0.000017, 1B: 2.7e-6}.
    for (l, expected) in [
        (16_384usize, 0.17),
        (32_768, 0.085),
        (1_000_000, 0.0027),
        (160_000_000, 1.7e-5),
        (1_000_000_000, 2.7e-6),
    ] {
        let sf = longnet_sparsity_factor(l);
        let rel = (sf - expected).abs() / expected;
        assert!(rel < 0.05, "L={l}: {sf} vs paper {expected}");
    }
}

#[test]
fn training_headroom_projection_section_6b() {
    // "even if we assume that only 25% of memory is available … only 32
    // GPUs will be needed to reach a context length of 1 billion".
    let quarter = A100_80GB.with_fraction(0.25);
    let cfg = MemConfig {
        algo: MemAlgorithm::Local,
        dtype: DType::F16,
        d_total: 64,
        heads: 1,
        sf: 1e-4,
        accounting: Accounting::PaperCalibrated,
    };
    let per_gpu = max_context_length(&quarter, &cfg).unwrap();
    let gpus_needed = (1_000_000_000f64 / per_gpu as f64).ceil() as u64;
    assert!(
        gpus_needed <= 32,
        "paper projects ≤32 GPUs; model says {gpus_needed} ({per_gpu} tokens/GPU)"
    );
}
