//! Rectangular geometry is exact: query windows, chunked prefill, and
//! KV-cached decode must reproduce the square forward **bitwise**.
//!
//! Three properties anchor the serving surface:
//!
//! 1. a windowed implicit kernel equals both the rectangular-CSR reference
//!    mask over the same window and the corresponding rows of the square
//!    run;
//! 2. chunked prefill over *any* chunk split is the full square forward;
//! 3. each decode step through a [`KvCache`] is the last row of the square
//!    forward over the tokens cached so far — and for causal masks (whose
//!    rows never look forward) prefill + decode reassembles the full
//!    square forward exactly.

use graph_attention::core::{DecodeStep, KvCache, PagePool, SwapArena};
use graph_attention::model::{DecoderModel, LayerPattern, ModelKvState, ModelWorkItem};
use graph_attention::prelude::*;
use graph_attention::sparse::{CooMask, CsrMask, DiaMask};
use proptest::prelude::*;

fn engine() -> AttentionEngine {
    AttentionEngine::with_threads(3)
}

/// Restrict a square CSR mask to absolute query rows `0..q_end` (keeping
/// absolute row indices — the executor's explicit-mask convention).
fn restrict_rows(mask: &CsrMask, q_end: usize) -> CsrMask {
    let entries: Vec<(usize, usize)> = mask.iter().filter(|&(r, _)| r < q_end).collect();
    CsrMask::from_coo(&CooMask::from_entries(q_end, mask.cols(), entries).unwrap())
}

/// Restrict a square CSR mask to the `prefix × prefix` leading block.
fn restrict_square(mask: &CsrMask, prefix: usize) -> CsrMask {
    let entries: Vec<(usize, usize)> = mask
        .iter()
        .filter(|&(r, c)| r < prefix && c < prefix)
        .collect();
    CsrMask::from_coo(&CooMask::from_entries(prefix, prefix, entries).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Property 1 — every implicit kernel (and DIA) on a random query
    /// window is bitwise equal to (a) the rectangular-CSR reference mask
    /// of the same window and (b) the matching rows of the square run.
    #[test]
    fn windowed_kernels_match_rectangular_csr_and_square_rows(
        l in 4usize..36,
        dk in 1usize..8,
        n in 0usize..5,
        w in 1usize..8,
        r in 0usize..3,
        off_frac in 0.0f64..1.0,
        rows_frac in 0.0f64..1.0,
        seed in 0u64..400,
    ) {
        let e = engine();
        let (q, k, v) = init::qkv::<f64>(l, dk, seed);
        let off = ((l - 1) as f64 * off_frac) as usize;
        let rows = 1 + ((l - off - 1) as f64 * rows_frac) as usize;
        let q_win = q.rows_slice(off, off + rows);
        let globals = GlobalSet::evenly_spaced(l, n.min(l));
        let dia = DiaMask::new(l, vec![-((n % l.max(2)) as i64), 0, (w % l) as i64 % l as i64])
            .unwrap();

        let square_masks: Vec<(AttentionKernel<'_>, CsrMask)> = vec![
            (AttentionKernel::Local { n }, LocalWindow::new(l, n).to_csr()),
            (
                AttentionKernel::Dilated1d { w, r },
                graph_attention::masks::Dilated1d::new(l, w, r).to_csr(),
            ),
            (
                AttentionKernel::Dilated2d { block_size: w, r },
                graph_attention::masks::Dilated2d::new(l, w, r).to_csr(),
            ),
            (
                AttentionKernel::Global { globals: &globals, n_sub: n },
                graph_attention::masks::GlobalMinusLocal::new(globals.clone(), n).to_csr(),
            ),
            (AttentionKernel::Dia(&dia), dia.to_csr()),
        ];

        for (kernel, square_csr) in &square_masks {
            let plan = e.compile(std::slice::from_ref(kernel)).unwrap();
            let windowed = e
                .run_batch(&plan, &[AttentionRequest::windowed(&q_win, &k, &v, off)])
                .unwrap()
                .pop()
                .unwrap();

            // (a) The rectangular-CSR reference over the same window.
            let rect = restrict_rows(square_csr, off + rows);
            let rect_plan = e.compile(&[AttentionKernel::Csr(&rect)]).unwrap();
            let via_rect = e
                .run_batch(&rect_plan, &[AttentionRequest::windowed(&q_win, &k, &v, off)])
                .unwrap()
                .pop()
                .unwrap();
            prop_assert!(windowed == via_rect, "{} vs rect CSR", kernel.name());

            // (b) The matching rows of the full square run.
            let square = e.run(&plan, &q, &k, &v).unwrap();
            for i in 0..rows {
                prop_assert!(
                    windowed.row(i) == square.row(off + i),
                    "{} row {} (off {})",
                    kernel.name(),
                    i,
                    off
                );
            }
        }
    }

    /// Property 2 — chunked prefill over any chunk split is bitwise the
    /// square forward, for every composable kernel family.
    #[test]
    fn any_chunked_prefill_is_bitwise_the_full_forward(
        l in 2usize..32,
        dk in 1usize..8,
        n in 0usize..5,
        chunk in 1usize..40,
        density in 0.05f64..0.8,
        seed in 0u64..400,
    ) {
        let e = engine();
        let (q, k, v) = init::qkv::<f64>(l, dk, seed ^ 0x9E0);
        let globals = GlobalSet::evenly_spaced(l, (n + 1).min(l));
        let csr = graph_attention::masks::RandomUniform::new(l, density, seed).to_csr();
        let coo = csr.to_coo();
        let dia = DiaMask::local(l, n);

        let kernels: Vec<AttentionKernel<'_>> = vec![
            AttentionKernel::Local { n },
            AttentionKernel::Dilated1d { w: n + 1, r: 1 },
            AttentionKernel::Dilated2d { block_size: n + 1, r: 1 },
            AttentionKernel::Global { globals: &globals, n_sub: n },
            AttentionKernel::Dia(&dia),
            AttentionKernel::Csr(&csr),
            AttentionKernel::Coo(&coo, CooSearch::Linear),
        ];
        for kernel in &kernels {
            let plan = e.compile(std::slice::from_ref(kernel)).unwrap();
            let full = e.run(&plan, &q, &k, &v).unwrap();
            let mut cache = KvCache::single(dk, dk);
            let prefill = e
                .prefill_chunked(&plan, &q, &k, &v, chunk, &mut cache)
                .unwrap();
            prop_assert!(prefill == full, "{} chunk={}", kernel.name(), chunk);
            prop_assert_eq!(cache.len(), l);
        }
    }

    /// Property 3 — prefill a prompt, then decode the remaining tokens one
    /// at a time through the KvCache: every decode step is bitwise the
    /// last row of the square forward over the tokens so far, for every
    /// composable kernel family (length-pinning kernels get a per-prefix
    /// mask, exactly as the square reference does).
    #[test]
    fn prefill_plus_decode_reproduces_every_square_prefix(
        l in 2usize..24,
        dk in 1usize..6,
        n in 0usize..4,
        chunk in 1usize..8,
        density in 0.1f64..0.9,
        seed in 0u64..400,
    ) {
        let e = engine();
        let (q, k, v) = init::qkv::<f64>(l, dk, seed ^ 0xD3C);
        let prompt = 1 + (seed as usize % l);
        let full_csr = graph_attention::masks::RandomUniform::new(l, density, seed).to_csr();
        let global_indices: Vec<usize> = vec![0];

        // Length-free plans: compiled once, reused for prefill and every
        // decode step of the growing cache.
        let implicit: Vec<AttentionKernel<'_>> = vec![
            AttentionKernel::Local { n },
            AttentionKernel::Dilated1d { w: n + 1, r: 1 },
            AttentionKernel::Dilated2d { block_size: n + 2, r: 1 },
        ];
        for kernel in &implicit {
            let plan = e.compile(std::slice::from_ref(kernel)).unwrap();
            let mut cache = KvCache::single(dk, dk);
            let prefill = e
                .prefill_chunked(
                    &plan,
                    &q.rows_slice(0, prompt),
                    &k.rows_slice(0, prompt),
                    &v.rows_slice(0, prompt),
                    chunk,
                    &mut cache,
                )
                .unwrap();
            let square_prompt = e.run(
                &plan,
                &q.rows_slice(0, prompt),
                &k.rows_slice(0, prompt),
                &v.rows_slice(0, prompt),
            )
            .unwrap();
            prop_assert!(prefill == square_prompt, "{} prefill", kernel.name());
            for t in prompt..l {
                let out = e
                    .decode_step(
                        &plan,
                        &q.rows_slice(t, t + 1),
                        &k.rows_slice(t, t + 1),
                        &v.rows_slice(t, t + 1),
                        &mut cache,
                    )
                    .unwrap();
                let prefix = e.run(
                    &plan,
                    &q.rows_slice(0, t + 1),
                    &k.rows_slice(0, t + 1),
                    &v.rows_slice(0, t + 1),
                )
                .unwrap();
                prop_assert!(out.row(0) == prefix.row(t), "{} step {}", kernel.name(), t);
            }
        }

        // Length-pinned families: the mask grows with the prefix on both
        // the decode side and the square-reference side.
        let mut cache = KvCache::single(dk, dk);
        cache.extend(0, &k.rows_slice(0, prompt), &v.rows_slice(0, prompt));
        for t in prompt..l {
            cache.append(0, k.row(t), v.row(t));
            let len = t + 1;
            let q_t = q.rows_slice(t, t + 1);
            let prefix_q = q.rows_slice(0, len);
            let prefix_k = k.rows_slice(0, len);
            let prefix_v = v.rows_slice(0, len);

            let globals = GlobalSet::new(len, global_indices.clone());
            let dia = DiaMask::local(len, n);
            let csr = restrict_square(&full_csr, len);
            let coo = csr.to_coo();
            let pinned: Vec<AttentionKernel<'_>> = vec![
                AttentionKernel::Global { globals: &globals, n_sub: n },
                AttentionKernel::Dia(&dia),
                AttentionKernel::Csr(&csr),
                AttentionKernel::Coo(&coo, CooSearch::Binary),
            ];
            for kernel in &pinned {
                let plan = e.compile(std::slice::from_ref(kernel)).unwrap();
                let out = e
                    .run_batch(
                        &plan,
                        &[AttentionRequest::decode(&q_t, cache.k(0), cache.v(0))],
                    )
                    .unwrap()
                    .pop()
                    .unwrap();
                let prefix = e.run(&plan, &prefix_q, &prefix_k, &prefix_v).unwrap();
                prop_assert!(out.row(0) == prefix.row(t), "{} step {}", kernel.name(), t);
            }
        }
    }

    /// Evict-and-recompute is invisible: serve a sequence, evict its cache
    /// at a random decode step, resume by re-extending the retained K/V
    /// rows into a fresh cache (exactly what `gpa-serve`'s preemption
    /// does), and keep decoding — every output row and the final cache
    /// must be bitwise the uninterrupted run's, for all seven composable
    /// kernel families.
    #[test]
    fn evict_and_recompute_at_any_decode_step_is_bitwise_invisible(
        l in 3usize..24,
        dk in 1usize..6,
        n in 0usize..4,
        chunk in 1usize..8,
        density in 0.1f64..0.9,
        evict_frac in 0.0f64..1.0,
        seed in 0u64..400,
    ) {
        let e = engine();
        let (q, k, v) = init::qkv::<f64>(l, dk, seed ^ 0xE71C);
        // At least one decode token, and an eviction point somewhere in
        // the decode phase: the cache holds `evict_at` tokens when the
        // sequence is evicted, token `evict_at` is the first one decoded
        // after resume.
        let prompt = 1 + (seed as usize % (l - 1));
        let evict_at = prompt + ((l - prompt - 1) as f64 * evict_frac) as usize;
        let full_csr = graph_attention::masks::RandomUniform::new(l, density, seed).to_csr();

        // Length-free plans: one compiled plan serves prefill and every
        // decode step, before and after the eviction.
        let implicit: Vec<AttentionKernel<'_>> = vec![
            AttentionKernel::Local { n },
            AttentionKernel::Dilated1d { w: n + 1, r: 1 },
            AttentionKernel::Dilated2d { block_size: n + 2, r: 1 },
        ];
        for kernel in &implicit {
            let plan = e.compile(std::slice::from_ref(kernel)).unwrap();
            let serve = |cache: &mut KvCache<f64>, from: usize, to: usize| {
                (from..to)
                    .map(|t| {
                        e.decode_step(
                            &plan,
                            &q.rows_slice(t, t + 1),
                            &k.rows_slice(t, t + 1),
                            &v.rows_slice(t, t + 1),
                            cache,
                        )
                        .unwrap()
                    })
                    .collect::<Vec<_>>()
            };
            // The uninterrupted run.
            let mut cache = KvCache::single(dk, dk);
            let prefill = e
                .prefill_chunked(
                    &plan,
                    &q.rows_slice(0, prompt),
                    &k.rows_slice(0, prompt),
                    &v.rows_slice(0, prompt),
                    chunk,
                    &mut cache,
                )
                .unwrap();
            let uninterrupted = serve(&mut cache, prompt, l);
            // The evicted run: identical until `evict_at`, then the cache
            // is dropped and rebuilt from the retained K/V input rows.
            let mut before = KvCache::single(dk, dk);
            let prefill2 = e
                .prefill_chunked(
                    &plan,
                    &q.rows_slice(0, prompt),
                    &k.rows_slice(0, prompt),
                    &v.rows_slice(0, prompt),
                    chunk,
                    &mut before,
                )
                .unwrap();
            prop_assert!(prefill2 == prefill, "{} prefill", kernel.name());
            let head = serve(&mut before, prompt, evict_at);
            drop(before); // eviction: pages released, cache gone
            let mut resumed = KvCache::single(dk, dk);
            resumed.extend(0, &k.rows_slice(0, evict_at), &v.rows_slice(0, evict_at));
            let tail = serve(&mut resumed, evict_at, l);
            for (i, (a, b)) in head.iter().chain(&tail).zip(&uninterrupted).enumerate() {
                prop_assert!(
                    a == b,
                    "{} decode row {} differs across eviction at {}",
                    kernel.name(),
                    prompt + i,
                    evict_at
                );
            }
            prop_assert!(
                resumed.len() == cache.len()
                    && resumed.k(0) == cache.k(0)
                    && resumed.v(0) == cache.v(0),
                "{} final cache differs across eviction",
                kernel.name()
            );
        }

        // Length-pinned families: per-prefix masks on both sides, exactly
        // as the square reference demands — eviction rebuilds the cache
        // the same way.
        let global_indices: Vec<usize> = vec![0];
        let step = |cache: &KvCache<f64>, t: usize| -> Vec<Matrix<f64>> {
            let len = t + 1;
            let globals = GlobalSet::new(len, global_indices.clone());
            let dia = DiaMask::local(len, n);
            let csr = restrict_square(&full_csr, len);
            let coo = csr.to_coo();
            let pinned: Vec<AttentionKernel<'_>> = vec![
                AttentionKernel::Global { globals: &globals, n_sub: n },
                AttentionKernel::Dia(&dia),
                AttentionKernel::Csr(&csr),
                AttentionKernel::Coo(&coo, CooSearch::Binary),
            ];
            pinned
                .iter()
                .map(|kernel| {
                    let plan = e.compile(std::slice::from_ref(kernel)).unwrap();
                    e.run_batch(
                        &plan,
                        &[AttentionRequest::decode(
                            &q.rows_slice(t, t + 1),
                            cache.k(0),
                            cache.v(0),
                        )],
                    )
                    .unwrap()
                    .pop()
                    .unwrap()
                })
                .collect()
        };
        let mut cache = KvCache::single(dk, dk);
        cache.extend(0, &k.rows_slice(0, prompt), &v.rows_slice(0, prompt));
        let mut evicted = KvCache::single(dk, dk);
        evicted.extend(0, &k.rows_slice(0, prompt), &v.rows_slice(0, prompt));
        for t in prompt..l {
            cache.append(0, k.row(t), v.row(t));
            if t == evict_at {
                // Eviction: the old cache is dropped by the reassignment;
                // resume rebuilds from the retained input rows.
                let mut fresh = KvCache::single(dk, dk);
                fresh.extend(0, &k.rows_slice(0, evict_at), &v.rows_slice(0, evict_at));
                evicted = fresh;
            }
            evicted.append(0, k.row(t), v.row(t));
            let a = step(&cache, t);
            let b = step(&evicted, t);
            for (i, (x, y)) in a.iter().zip(&b).enumerate() {
                prop_assert!(
                    x == y,
                    "pinned family {} decode row {} differs across eviction at {}",
                    i,
                    t,
                    evict_at
                );
            }
        }
        prop_assert!(
            evicted.len() == cache.len()
                && evicted.k(0) == cache.k(0)
                && evicted.v(0) == cache.v(0),
            "pinned final cache differs across eviction"
        );
    }

    /// Evict-and-**swap** is invisible: at a random decode step the cache
    /// transits the full swap machinery — adopted into a [`PagePool`],
    /// released (pages back to the pool), parked in a [`SwapArena`],
    /// taken, re-adopted, released — and decoding continues on the
    /// round-tripped cache. Every output row and the final cache must be
    /// bitwise the uninterrupted run's, for all seven composable kernel
    /// families plus the content-routed kernel (whose routing rides the
    /// swapped cache: an O(1) splice, no re-extension, no re-routing).
    #[test]
    fn evict_and_swap_at_any_decode_step_is_bitwise_invisible(
        l in 3usize..24,
        dk in 1usize..6,
        n in 0usize..4,
        chunk in 1usize..8,
        density in 0.1f64..0.9,
        evict_frac in 0.0f64..1.0,
        seed in 0u64..400,
    ) {
        let e = engine();
        let (q, k, v) = init::qkv::<f64>(l, dk, seed ^ 0x5A9);
        let prompt = 1 + (seed as usize % (l - 1));
        let evict_at = prompt + ((l - prompt - 1) as f64 * evict_frac) as usize;
        let full_csr = graph_attention::masks::RandomUniform::new(l, density, seed).to_csr();

        // The swap round trip the scheduler performs on a victim: pages
        // released to the pool, cache value parked; on resume, taken and
        // re-adopted. The cache that comes back must be the same value.
        let page_size = 1 + (seed as usize % 4);
        let swap_trip = |cache: KvCache<f64>| -> KvCache<f64> {
            let mut pool: PagePool<f64> = PagePool::new(l.div_ceil(page_size) + 1, page_size);
            let mut arena: SwapArena<f64> = SwapArena::unbounded();
            let id = pool.try_adopt(cache).unwrap_or_else(|_| panic!("adopt fits"));
            let victim = pool.release(id);
            assert_eq!(pool.used_pages(), 0, "eviction released every page");
            let bytes = victim.kv_bytes();
            let ticket = arena.try_park(vec![victim]).unwrap_or_else(|_| panic!("unbounded park"));
            assert_eq!(arena.parked_bytes(), bytes);
            arena.assert_swap_invariants();
            let mut stack = arena.take(ticket);
            assert!(arena.is_empty(), "take drains the entry");
            let resumed = pool
                .try_adopt(stack.pop().unwrap())
                .unwrap_or_else(|_| panic!("re-adopt fits"));
            pool.assert_page_invariants();
            pool.release(resumed)
        };

        // Length-free plans, including content-routed: one compiled plan
        // serves prefill and every decode step across the swap.
        let implicit: Vec<AttentionKernel<'_>> = vec![
            AttentionKernel::Local { n },
            AttentionKernel::Dilated1d { w: n + 1, r: 1 },
            AttentionKernel::Dilated2d { block_size: n + 2, r: 1 },
            AttentionKernel::Routed { groups: 2, seed: seed ^ 0xB10C, causal: true },
        ];
        for kernel in &implicit {
            let plan = e.compile(std::slice::from_ref(kernel)).unwrap();
            let serve = |cache: &mut KvCache<f64>, from: usize, to: usize| {
                (from..to)
                    .map(|t| {
                        e.decode_step(
                            &plan,
                            &q.rows_slice(t, t + 1),
                            &k.rows_slice(t, t + 1),
                            &v.rows_slice(t, t + 1),
                            cache,
                        )
                        .unwrap()
                    })
                    .collect::<Vec<_>>()
            };
            let mut cache = KvCache::single(dk, dk);
            e.prefill_chunked(
                &plan,
                &q.rows_slice(0, prompt),
                &k.rows_slice(0, prompt),
                &v.rows_slice(0, prompt),
                chunk,
                &mut cache,
            )
            .unwrap();
            let uninterrupted = serve(&mut cache, prompt, l);

            let mut swapped = KvCache::single(dk, dk);
            e.prefill_chunked(
                &plan,
                &q.rows_slice(0, prompt),
                &k.rows_slice(0, prompt),
                &v.rows_slice(0, prompt),
                chunk,
                &mut swapped,
            )
            .unwrap();
            let head = serve(&mut swapped, prompt, evict_at);
            let mut resumed = swap_trip(swapped);
            prop_assert!(
                resumed.len() == evict_at,
                "{} swap must preserve length",
                kernel.name()
            );
            let tail = serve(&mut resumed, evict_at, l);
            for (i, (a, b)) in head.iter().chain(&tail).zip(&uninterrupted).enumerate() {
                prop_assert!(
                    a == b,
                    "{} decode row {} differs across swap at {}",
                    kernel.name(),
                    prompt + i,
                    evict_at
                );
            }
            prop_assert!(
                resumed.len() == cache.len()
                    && resumed.k(0) == cache.k(0)
                    && resumed.v(0) == cache.v(0),
                "{} final cache differs across swap",
                kernel.name()
            );
        }

        // Length-pinned families: the swap round trip happens between two
        // appends; the spliced-back cache must carry decoding bitwise.
        let global_indices: Vec<usize> = vec![0];
        let step = |cache: &KvCache<f64>, t: usize| -> Vec<Matrix<f64>> {
            let len = t + 1;
            let globals = GlobalSet::new(len, global_indices.clone());
            let dia = DiaMask::local(len, n);
            let csr = restrict_square(&full_csr, len);
            let coo = csr.to_coo();
            let pinned: Vec<AttentionKernel<'_>> = vec![
                AttentionKernel::Global { globals: &globals, n_sub: n },
                AttentionKernel::Dia(&dia),
                AttentionKernel::Csr(&csr),
                AttentionKernel::Coo(&coo, CooSearch::Binary),
            ];
            pinned
                .iter()
                .map(|kernel| {
                    let plan = e.compile(std::slice::from_ref(kernel)).unwrap();
                    e.run_batch(
                        &plan,
                        &[AttentionRequest::decode(
                            &q.rows_slice(t, t + 1),
                            cache.k(0),
                            cache.v(0),
                        )],
                    )
                    .unwrap()
                    .pop()
                    .unwrap()
                })
                .collect()
        };
        let mut cache = KvCache::single(dk, dk);
        cache.extend(0, &k.rows_slice(0, prompt), &v.rows_slice(0, prompt));
        let mut swapped = KvCache::single(dk, dk);
        swapped.extend(0, &k.rows_slice(0, prompt), &v.rows_slice(0, prompt));
        for t in prompt..l {
            cache.append(0, k.row(t), v.row(t));
            if t == evict_at {
                swapped = swap_trip(swapped);
            }
            swapped.append(0, k.row(t), v.row(t));
            let a = step(&cache, t);
            let b = step(&swapped, t);
            for (i, (x, y)) in a.iter().zip(&b).enumerate() {
                prop_assert!(
                    x == y,
                    "pinned family {} decode row {} differs across swap at {}",
                    i,
                    t,
                    evict_at
                );
            }
        }
        prop_assert!(
            swapped.len() == cache.len()
                && swapped.k(0) == cache.k(0)
                && swapped.v(0) == cache.v(0),
            "pinned final cache differs across swap"
        );
    }

    /// Batched decode is exact: advancing N sequences by one token through
    /// `decode_steps_batched` is bitwise identical to N independent
    /// `decode_step` calls — outputs *and* resulting caches — for every
    /// composable kernel family (implicit kernels at ragged context
    /// lengths; length-pinning families at one shared length, as their
    /// masks demand).
    #[test]
    fn batched_decode_steps_match_independent_steps_bitwise(
        l in 2usize..20,
        dk in 1usize..6,
        n in 0usize..4,
        density in 0.1f64..0.9,
        seed in 0u64..400,
    ) {
        let e = engine();
        let check = |kernel: &AttentionKernel<'_>, lens: &[usize]| {
            let plan = e.compile(std::slice::from_ref(kernel)).unwrap();
            let seqs: Vec<_> = lens
                .iter()
                .enumerate()
                .map(|(i, &len)| init::qkv::<f64>(len + 1, dk, seed ^ (0xBA7C + i as u64)))
                .collect();
            let mut batched_caches: Vec<KvCache<f64>> = lens
                .iter()
                .zip(&seqs)
                .map(|(&len, (_, k, v))| {
                    let mut c = KvCache::single(dk, dk);
                    c.extend(0, &k.rows_slice(0, len), &v.rows_slice(0, len));
                    c
                })
                .collect();
            let mut independent_caches = batched_caches.clone();
            let toks: Vec<_> = lens
                .iter()
                .zip(&seqs)
                .map(|(&len, (q, k, v))| {
                    (
                        q.rows_slice(len, len + 1),
                        k.rows_slice(len, len + 1),
                        v.rows_slice(len, len + 1),
                    )
                })
                .collect();
            let mut steps: Vec<DecodeStep<'_, f64>> = batched_caches
                .iter_mut()
                .zip(&toks)
                .map(|(cache, (q_t, k_t, v_t))| DecodeStep { q_t, k_t, v_t, cache })
                .collect();
            let batched = e.decode_steps_batched(&plan, &mut steps).unwrap();
            for (i, ((q_t, k_t, v_t), cache)) in
                toks.iter().zip(independent_caches.iter_mut()).enumerate()
            {
                let single = e.decode_step(&plan, q_t, k_t, v_t, cache).unwrap();
                prop_assert!(
                    batched[i] == single,
                    "{} sequence {i} output",
                    kernel.name()
                );
            }
            for (i, (a, b)) in batched_caches.iter().zip(&independent_caches).enumerate() {
                prop_assert!(a.len() == b.len(), "{} sequence {i} cache len", kernel.name());
                prop_assert!(
                    a.k(0) == b.k(0) && a.v(0) == b.v(0),
                    "{} sequence {i} cache contents",
                    kernel.name()
                );
            }
            Ok(())
        };

        // Implicit (length-free) kernels: ragged context lengths.
        let ragged = [l, 1 + l / 2, l + 3];
        let implicit: Vec<AttentionKernel<'_>> = vec![
            AttentionKernel::Local { n },
            AttentionKernel::Dilated1d { w: n + 1, r: 1 },
            AttentionKernel::Dilated2d { block_size: n + 1, r: 2 },
        ];
        for kernel in &implicit {
            check(kernel, &ragged)?;
        }

        // Length-pinning kernels: every sequence at the shared post-append
        // length `l + 1` the mask is built for.
        let uniform = [l, l, l];
        let globals = GlobalSet::new(l + 1, vec![0]);
        let dia = DiaMask::local(l + 1, n);
        let csr = graph_attention::masks::RandomUniform::new(l + 1, density, seed).to_csr();
        let coo = csr.to_coo();
        let pinned: Vec<AttentionKernel<'_>> = vec![
            AttentionKernel::Global { globals: &globals, n_sub: n },
            AttentionKernel::Dia(&dia),
            AttentionKernel::Csr(&csr),
            AttentionKernel::Coo(&coo, CooSearch::Linear),
        ];
        for kernel in &pinned {
            check(kernel, &uniform)?;
        }
    }

    /// The headline invariant in its strongest form: for a *causal* mask
    /// (a DIA band of non-positive offsets — rows never look forward),
    /// chunked prefill of a prompt followed by per-token decode through
    /// the KvCache reassembles the full square forward **bitwise**.
    #[test]
    fn causal_prefill_plus_decode_is_bitwise_the_full_square_forward(
        l in 2usize..28,
        dk in 1usize..8,
        band in 1usize..6,
        chunk in 1usize..10,
        seed in 0u64..400,
    ) {
        let e = engine();
        let (q, k, v) = init::qkv::<f64>(l, dk, seed ^ 0xCA5);
        let prompt = 1 + (seed as usize % l);

        // The full-sequence causal band and its per-prefix restrictions
        // share one offset set; causal rows are prefix-independent.
        let offsets: Vec<i64> = (0..=band as i64).map(|d| -d).collect();
        let clip = |len: usize| -> DiaMask {
            DiaMask::new(
                len,
                offsets.iter().copied().filter(|d| d.unsigned_abs() < len as u64).collect(),
            )
            .unwrap()
        };
        let full_mask = clip(l);
        let full_plan = e.compile(&[AttentionKernel::Dia(&full_mask)]).unwrap();
        let full = e.run(&full_plan, &q, &k, &v).unwrap();

        let mut assembled = Matrix::zeros(l, dk);
        let mut cache = KvCache::single(dk, dk);
        let prompt_mask = clip(prompt);
        let prompt_plan = e.compile(&[AttentionKernel::Dia(&prompt_mask)]).unwrap();
        let prefill = e
            .prefill_chunked(
                &prompt_plan,
                &q.rows_slice(0, prompt),
                &k.rows_slice(0, prompt),
                &v.rows_slice(0, prompt),
                chunk,
                &mut cache,
            )
            .unwrap();
        for i in 0..prompt {
            assembled.row_mut(i).copy_from_slice(prefill.row(i));
        }
        for t in prompt..l {
            let step_mask = clip(t + 1);
            let step_plan = e.compile(&[AttentionKernel::Dia(&step_mask)]).unwrap();
            let out = e
                .decode_step(
                    &step_plan,
                    &q.rows_slice(t, t + 1),
                    &k.rows_slice(t, t + 1),
                    &v.rows_slice(t, t + 1),
                    &mut cache,
                )
                .unwrap();
            assembled.row_mut(t).copy_from_slice(out.row(0));
        }
        prop_assert_eq!(&assembled, &full);
    }

    /// The adaptive form of the headline invariant: a *causal* routed
    /// plan — alone, doubled, and composed with a causal DIA band —
    /// served as chunked prefill plus per-token KvCache decode
    /// reassembles the full square forward **bitwise**. Content routing
    /// is a pure per-row function of `(spec, q-row)`, so every decode
    /// step routes its token exactly as the square run does.
    #[test]
    fn causal_routed_prefill_plus_decode_is_bitwise_the_square_forward(
        l in 2usize..24,
        dk in 1usize..8,
        groups in 1usize..6,
        band in 1usize..5,
        chunk in 1usize..10,
        seed in 0u64..400,
    ) {
        let e = engine();
        let (q, k, v) = init::qkv::<f64>(l, dk, seed ^ 0x9077);
        let prompt = 1 + (seed as usize % l);
        let routed = AttentionKernel::Routed {
            groups,
            seed: seed ^ 0xB5,
            causal: true,
        };

        // Length-free compositions: one compiled plan serves the square
        // reference, the prefill, and every decode step.
        let free: Vec<Vec<AttentionKernel<'_>>> = vec![vec![routed], vec![routed, routed]];
        for kernels in &free {
            let plan = e.compile(kernels).unwrap();
            let full = e.run(&plan, &q, &k, &v).unwrap();
            let mut assembled = Matrix::zeros(l, dk);
            let mut cache = KvCache::single(dk, dk);
            let prefill = e
                .prefill_chunked(
                    &plan,
                    &q.rows_slice(0, prompt),
                    &k.rows_slice(0, prompt),
                    &v.rows_slice(0, prompt),
                    chunk,
                    &mut cache,
                )
                .unwrap();
            for i in 0..prompt {
                assembled.row_mut(i).copy_from_slice(prefill.row(i));
            }
            for t in prompt..l {
                let out = e
                    .decode_step(
                        &plan,
                        &q.rows_slice(t, t + 1),
                        &k.rows_slice(t, t + 1),
                        &v.rows_slice(t, t + 1),
                        &mut cache,
                    )
                    .unwrap();
                assembled.row_mut(t).copy_from_slice(out.row(0));
            }
            prop_assert!(
                assembled == full,
                "routed composition of {} step(s) differs from the square forward",
                kernels.len()
            );
        }

        // Composed with a causal DIA band: the band pins its length, so
        // the plan is rebuilt per prefix exactly as the square reference
        // demands — the routed step's spec never changes, so the cache's
        // routing stays valid across rebuilds.
        let offsets: Vec<i64> = (0..=band as i64).map(|d| -d).collect();
        let clip = |len: usize| -> DiaMask {
            DiaMask::new(
                len,
                offsets
                    .iter()
                    .copied()
                    .filter(|d| d.unsigned_abs() < len as u64)
                    .collect(),
            )
            .unwrap()
        };
        let full_mask = clip(l);
        let full_plan = e
            .compile(&[AttentionKernel::Dia(&full_mask), routed])
            .unwrap();
        let full = e.run(&full_plan, &q, &k, &v).unwrap();
        let mut assembled = Matrix::zeros(l, dk);
        let mut cache = KvCache::single(dk, dk);
        let prompt_mask = clip(prompt);
        let prompt_plan = e
            .compile(&[AttentionKernel::Dia(&prompt_mask), routed])
            .unwrap();
        let prefill = e
            .prefill_chunked(
                &prompt_plan,
                &q.rows_slice(0, prompt),
                &k.rows_slice(0, prompt),
                &v.rows_slice(0, prompt),
                chunk,
                &mut cache,
            )
            .unwrap();
        for i in 0..prompt {
            assembled.row_mut(i).copy_from_slice(prefill.row(i));
        }
        for t in prompt..l {
            let step_mask = clip(t + 1);
            let step_plan = e
                .compile(&[AttentionKernel::Dia(&step_mask), routed])
                .unwrap();
            let out = e
                .decode_step(
                    &step_plan,
                    &q.rows_slice(t, t + 1),
                    &k.rows_slice(t, t + 1),
                    &v.rows_slice(t, t + 1),
                    &mut cache,
                )
                .unwrap();
            assembled.row_mut(t).copy_from_slice(out.row(0));
        }
        prop_assert_eq!(&assembled, &full);
    }

    /// The decoder-stack form of the headline invariant: a heterogeneous
    /// *causal* Full/Sparse stack served incrementally — chunked prefill
    /// plus per-token decode through per-layer paged KV caches — is
    /// bitwise the model's full square forward. Causal DIA plans pin
    /// their length, so the stack is rebuilt per prefix (same seed →
    /// identical projection weights), exactly as the square reference
    /// demands; causality makes every intermediate layer's rows
    /// prefix-independent, which is what lets the assembly succeed.
    #[test]
    fn heterogeneous_causal_stacks_serve_bitwise_the_square_forward(
        l in 2usize..12,
        heads in 1usize..3,
        dk in 1usize..4,
        band_f in 1usize..5,
        band_s in 1usize..3,
        chunk in 1usize..6,
        page in 1usize..5,
        seed in 0u64..400,
    ) {
        let e = engine();
        let d_model = heads * dk + 2;
        let x = init::gaussian_matrix::<f64>(l, d_model, 1.0, seed ^ 0x57AC);

        // Full (F) layers: a dense causal band. Sparse (S) layers: a
        // dilated causal band. Both never look forward.
        let f_off: Vec<i64> = (0..=band_f as i64).map(|d| -d).collect();
        let s_off: Vec<i64> = (0..=band_s as i64).map(|d| -2 * d).collect();
        let clip = |offsets: &[i64], len: usize| -> DiaMask {
            DiaMask::new(
                len,
                offsets
                    .iter()
                    .copied()
                    .filter(|d| d.unsigned_abs() < len as u64)
                    .collect(),
            )
            .unwrap()
        };
        let f_masks: Vec<DiaMask> = (1..=l).map(|len| clip(&f_off, len)).collect();
        let s_masks: Vec<DiaMask> = (1..=l).map(|len| clip(&s_off, len)).collect();
        let model_at = |len: usize| -> DecoderModel<'_, f64> {
            DecoderModel::new(
                LayerPattern::parse("FSF").unwrap(),
                vec![
                    (
                        'F',
                        AttentionPlan::single(AttentionKernel::Dia(&f_masks[len - 1])).unwrap(),
                    ),
                    (
                        'S',
                        AttentionPlan::single(AttentionKernel::Dia(&s_masks[len - 1])).unwrap(),
                    ),
                ],
                d_model,
                heads,
                dk,
                seed ^ 0xDEC0,
            )
            .unwrap()
        };

        let full_model = model_at(l);
        let full = full_model.forward(&e, &x).unwrap();

        let mut pool: PagePool<f64> = PagePool::new(full_model.layers() * l.div_ceil(page), page);
        let state = ModelKvState::allocate(&full_model, &mut pool);
        let prompt = 1 + (seed as usize % l);
        let mut assembled = Matrix::zeros(l, d_model);
        let mut start = 0usize;
        while start < prompt {
            let rows = chunk.min(prompt - start);
            let m = model_at(start + rows);
            let adv = m
                .advance_batched(
                    &e,
                    &mut pool,
                    &[ModelWorkItem {
                        x: &x.rows_slice(start, start + rows),
                        state: &state,
                    }],
                )
                .unwrap();
            for r in 0..rows {
                assembled
                    .row_mut(start + r)
                    .copy_from_slice(adv.outputs[0].row(r));
            }
            start += rows;
        }
        for t in prompt..l {
            let m = model_at(t + 1);
            let out = m
                .forward_decode(&e, &mut pool, &state, &x.rows_slice(t, t + 1))
                .unwrap();
            assembled.row_mut(t).copy_from_slice(out.row(0));
        }
        prop_assert_eq!(&assembled, &full);
        prop_assert_eq!(state.tokens(&pool), l);
    }

    /// Batched decoder-stack advance is exact: driving several sequences
    /// — ragged lengths, mixed prefill-chunk and decode-row windows —
    /// through one `advance_batched` call per step over a shared page
    /// pool is bitwise identical to serving each sequence alone with the
    /// same chunk schedule, for a heterogeneous implicit-kernel stack.
    #[test]
    fn batched_stack_advance_matches_per_sequence_serving_bitwise(
        l in 2usize..10,
        heads in 1usize..3,
        dk in 1usize..4,
        n in 0usize..3,
        w in 1usize..4,
        chunk in 1usize..5,
        page in 1usize..4,
        seed in 0u64..400,
    ) {
        let e = engine();
        let d_model = heads * dk + 1;
        let model = DecoderModel::new(
            LayerPattern::parse("FSSF").unwrap(),
            vec![
                (
                    'F',
                    AttentionPlan::single(AttentionKernel::Local { n }).unwrap(),
                ),
                (
                    'S',
                    AttentionPlan::single(AttentionKernel::Dilated1d { w, r: 1 }).unwrap(),
                ),
            ],
            d_model,
            heads,
            dk,
            seed ^ 0xBA7,
        )
        .unwrap();

        let totals = [l, 1 + l / 2, l + 3];
        let prompts: Vec<usize> = totals.iter().map(|&t| 1 + (seed as usize % t)).collect();
        let xs: Vec<Matrix<f64>> = totals
            .iter()
            .enumerate()
            .map(|(i, &t)| init::gaussian_matrix(t, d_model, 1.0, seed ^ (0x11 * (i as u64 + 1))))
            .collect();

        // Batched: one shared pool, one state per sequence, every step
        // advancing all unfinished sequences in one call.
        let pages: usize = totals.iter().map(|&t| t.div_ceil(page)).sum::<usize>() * model.layers();
        let mut pool: PagePool<f64> = PagePool::new(pages, page);
        let states: Vec<ModelKvState> = (0..totals.len())
            .map(|_| ModelKvState::allocate(&model, &mut pool))
            .collect();
        let mut outs: Vec<Matrix<f64>> = totals
            .iter()
            .map(|&t| Matrix::zeros(t, d_model))
            .collect();
        let mut cursors = vec![0usize; totals.len()];
        loop {
            let mut meta: Vec<(usize, usize)> = Vec::new();
            let mut windows: Vec<Matrix<f64>> = Vec::new();
            for i in 0..totals.len() {
                if cursors[i] >= totals[i] {
                    continue;
                }
                // Prefill in chunks up to the prompt, then one decode
                // row per step — the scheduler's window schedule.
                let rows = if cursors[i] < prompts[i] {
                    chunk.min(prompts[i] - cursors[i])
                } else {
                    1
                };
                windows.push(xs[i].rows_slice(cursors[i], cursors[i] + rows));
                meta.push((i, rows));
            }
            if meta.is_empty() {
                break;
            }
            let items: Vec<ModelWorkItem<'_, f64>> = meta
                .iter()
                .zip(&windows)
                .map(|(&(i, _), x)| ModelWorkItem { x, state: &states[i] })
                .collect();
            let adv = model.advance_batched(&e, &mut pool, &items).unwrap();
            for (&(i, rows), out) in meta.iter().zip(&adv.outputs) {
                for r in 0..rows {
                    outs[i].row_mut(cursors[i] + r).copy_from_slice(out.row(r));
                }
                cursors[i] += rows;
            }
        }

        // Per-sequence reference: same chunk schedule, private pool.
        for i in 0..totals.len() {
            let mut solo: PagePool<f64> = PagePool::new(model.layers() * totals[i], 1);
            let state = ModelKvState::allocate(&model, &mut solo);
            let mut expect = Matrix::zeros(totals[i], d_model);
            let prefill = model
                .forward_prefill_chunked(
                    &e,
                    &mut solo,
                    &state,
                    &xs[i].rows_slice(0, prompts[i]),
                    chunk,
                )
                .unwrap();
            for r in 0..prompts[i] {
                expect.row_mut(r).copy_from_slice(prefill.row(r));
            }
            for t in prompts[i]..totals[i] {
                let out = model
                    .forward_decode(&e, &mut solo, &state, &xs[i].rows_slice(t, t + 1))
                    .unwrap();
                expect.row_mut(t).copy_from_slice(out.row(0));
            }
            prop_assert!(outs[i] == expect, "sequence {} batched vs solo", i);
            prop_assert_eq!(states[i].tokens(&pool), totals[i]);
        }
    }
}
