//! The work-optimality claim of Section IV-B, verified empirically:
//! every graph kernel performs exactly `nnz(mask)` query–key dot products —
//! `O(Sf·L²·d)` and not an operation more — while the dense baselines
//! always perform `L²`.

use graph_attention::core::{AttentionKernel, CooSearch, KernelOptions};
use graph_attention::masks::{
    Dilated1d, Dilated2d, GlobalMinusLocal, GlobalSet, LocalWindow, LongNetPattern, MaskPattern,
    RandomUniform,
};
use graph_attention::parallel::{ThreadPool, WorkCounter};
use graph_attention::tensor::init::qkv;

fn dot_count(pool: &ThreadPool, kernel: &AttentionKernel<'_>, l: usize) -> u64 {
    let (q, k, v) = qkv::<f32>(l, 8, 3);
    let counter = WorkCounter::new();
    let opts = KernelOptions::new().with_counter(&counter);
    kernel.run(pool, &q, &k, &v, &opts).unwrap();
    counter.dot_products()
}

#[test]
fn explicit_kernels_match_nnz_on_every_mask_family() {
    let l = 80;
    let pool = ThreadPool::new(4);
    let patterns: Vec<(&str, Box<dyn MaskPattern>)> = vec![
        ("local", Box::new(LocalWindow::new(l, 5))),
        ("dilated1d", Box::new(Dilated1d::new(l, 11, 2))),
        ("dilated2d", Box::new(Dilated2d::new(l, 16, 1))),
        (
            "global-minus-local",
            Box::new(GlobalMinusLocal::new(GlobalSet::evenly_spaced(l, 4), 2)),
        ),
        ("random", Box::new(RandomUniform::new(l, 0.15, 9))),
        ("longnet", Box::new(LongNetPattern::new(l, 8, 2))),
    ];
    for (name, pattern) in patterns {
        let nnz = pattern.nnz() as u64;
        let csr = pattern.to_csr();
        let coo = csr.to_coo();
        assert_eq!(
            dot_count(&pool, &AttentionKernel::Csr(&csr), l),
            nnz,
            "CSR on {name}"
        );
        assert_eq!(
            dot_count(&pool, &AttentionKernel::Coo(&coo, CooSearch::Linear), l),
            nnz,
            "COO linear on {name}"
        );
        assert_eq!(
            dot_count(&pool, &AttentionKernel::Coo(&coo, CooSearch::Binary), l),
            nnz,
            "COO binary on {name}"
        );
    }
}

#[test]
fn implicit_kernels_match_their_closed_form_nnz() {
    let l = 72;
    let pool = ThreadPool::new(4);

    assert_eq!(
        dot_count(&pool, &AttentionKernel::Local { n: 6 }, l),
        LocalWindow::new(l, 6).nnz() as u64
    );
    assert_eq!(
        dot_count(&pool, &AttentionKernel::Dilated1d { w: 9, r: 1 }, l),
        Dilated1d::new(l, 9, 1).nnz() as u64
    );
    assert_eq!(
        dot_count(
            &pool,
            &AttentionKernel::Dilated2d {
                block_size: 12,
                r: 2
            },
            l
        ),
        Dilated2d::new(l, 12, 2).nnz() as u64
    );
    let globals = GlobalSet::evenly_spaced(l, 3);
    assert_eq!(
        dot_count(
            &pool,
            &AttentionKernel::Global {
                globals: &globals,
                n_sub: 1
            },
            l
        ),
        GlobalMinusLocal::new(globals.clone(), 1).to_csr().nnz() as u64
    );
}

#[test]
fn dense_baselines_always_do_quadratic_work() {
    let l = 48;
    let pool = ThreadPool::new(4);
    // Even with a nearly-empty mask, SDP computes L² dot products.
    let sparse_mask = LocalWindow::new(l, 0).to_dense();
    let (q, k, v) = qkv::<f32>(l, 8, 4);
    let counter = WorkCounter::new();
    let opts = KernelOptions::new().with_counter(&counter);
    AttentionKernel::SdpMasked(&sparse_mask)
        .run(&pool, &q, &k, &v, &opts)
        .unwrap();
    assert_eq!(counter.dot_products(), (l * l) as u64);

    counter.reset();
    AttentionKernel::Flash
        .run(&pool, &q, &k, &v, &opts)
        .unwrap();
    assert_eq!(counter.dot_products(), (l * l) as u64);
}

#[test]
fn work_ratio_equals_sparsity_factor() {
    // The headline relation: graph-kernel work / dense work == Sf.
    let l = 128;
    let pool = ThreadPool::new(4);
    let pattern = RandomUniform::new(l, 0.07, 11);
    let csr = pattern.to_csr();
    let sparse_dots = dot_count(&pool, &AttentionKernel::Csr(&csr), l) as f64;
    let dense_dots = (l * l) as f64;
    let ratio = sparse_dots / dense_dots;
    assert!(
        (ratio - csr.sparsity_factor()).abs() < 1e-12,
        "ratio {ratio} vs Sf {}",
        csr.sparsity_factor()
    );
}

#[test]
fn coo_linear_search_overhead_is_the_only_extra_work() {
    // Linear search scans prefixes but performs no extra dot products.
    let l = 64;
    let pool = ThreadPool::new(4);
    let coo = LocalWindow::new(l, 2).to_coo();
    let (q, k, v) = qkv::<f32>(l, 8, 5);
    let counter = WorkCounter::new();
    let opts = KernelOptions::new().with_counter(&counter);
    AttentionKernel::Coo(&coo, CooSearch::Linear)
        .run(&pool, &q, &k, &v, &opts)
        .unwrap();
    assert_eq!(counter.dot_products(), coo.nnz() as u64);
    assert!(counter.neighbor_searches() > 0);
    assert!(counter.neighbor_searches() <= (l * coo.nnz()) as u64);
}
