//! Multi-head attention integration: the paper's "trivial extension"
//! (Section IV-B / VI-A) built on the single-head kernels, verified against
//! per-head single calls and the dense reference.

use graph_attention::core::{
    masked_sdp, multi_head_attention, AttentionKernel, KernelOptions, MultiHeadAttention,
};
use graph_attention::masks::{longformer, GlobalSet, MaskPattern};
use graph_attention::parallel::ThreadPool;
use graph_attention::tensor::{init, paper_allclose, Matrix};

#[test]
fn per_head_outputs_match_reference() {
    let l = 64;
    let heads = 3;
    let pool = ThreadPool::new(4);
    let mask = longformer(l, 4, vec![0]);
    let csr = mask.to_csr();
    let dense = mask.to_dense();

    let qs: Vec<Matrix<f64>> = (0..heads)
        .map(|h| init::uniform_matrix(l, 16, h as u64))
        .collect();
    let ks: Vec<Matrix<f64>> = (0..heads)
        .map(|h| init::uniform_matrix(l, 16, 100 + h as u64))
        .collect();
    let vs: Vec<Matrix<f64>> = (0..heads)
        .map(|h| init::uniform_matrix(l, 16, 200 + h as u64))
        .collect();

    let outs = multi_head_attention(
        &pool,
        &AttentionKernel::Csr(&csr),
        &qs,
        &ks,
        &vs,
        &KernelOptions::new(),
    )
    .unwrap();
    assert_eq!(outs.len(), heads);
    for h in 0..heads {
        let reference =
            masked_sdp(&pool, &dense, &qs[h], &ks[h], &vs[h], &KernelOptions::new()).unwrap();
        assert!(paper_allclose(&outs[h], &reference), "head {h}");
    }
}

#[test]
fn layer_forward_same_mask_same_result_via_any_kernel() {
    let l = 48;
    let pool = ThreadPool::new(2);
    let layer: MultiHeadAttention<f64> = MultiHeadAttention::new_random(32, 4, 8, 17);
    let x = init::gaussian_matrix(l, 32, 0.7, 23);

    let globals = GlobalSet::new(l, vec![0, 24]);
    let union = longformer(l, 3, vec![0, 24]).to_csr();
    let dense = longformer(l, 3, vec![0, 24]).to_dense();

    let via_csr = layer
        .forward(
            &pool,
            &x,
            &AttentionKernel::Csr(&union),
            &KernelOptions::new(),
        )
        .unwrap();
    let via_sdp = layer
        .forward(
            &pool,
            &x,
            &AttentionKernel::SdpMasked(&dense),
            &KernelOptions::new(),
        )
        .unwrap();
    assert!(paper_allclose(&via_csr, &via_sdp));
    let _ = globals;
}

#[test]
fn llama3_head_geometry_smoke() {
    // Table II's multi-head row uses Llama-3-8B geometry (32 heads, 4096
    // total): run a scaled-down slice of it end to end.
    let l = 32;
    let heads = 8;
    let dk = 16; // per-head
    let pool = ThreadPool::new(4);
    let layer: MultiHeadAttention<f32> = MultiHeadAttention::new_random(heads * dk, heads, dk, 5);
    let x = init::gaussian_matrix(l, heads * dk, 1.0, 6);
    let out = layer
        .forward(
            &pool,
            &x,
            &AttentionKernel::Local { n: 4 },
            &KernelOptions::new(),
        )
        .unwrap();
    assert_eq!(out.shape(), (l, heads * dk));
    assert!(out.as_slice().iter().all(|v| v.is_finite()));
}
