//! Smoke coverage for every example: each must build and run to completion
//! at small shapes (`--quick` where the example supports it).
//!
//! Examples are the documented entry points of the workspace (the README
//! and the facade rustdoc both link to them), so a broken example is a
//! broken deliverable even when the library tests pass.

use std::process::Command;

/// Run one example through `cargo run --example` and assert success.
///
/// Uses the same cargo binary that is running this test (`CARGO` is set by
/// cargo for test processes) so toolchain selection is inherited; cargo's
/// own build lock serializes the nested invocation against other builds.
fn run_example(name: &str, quick: bool) {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let mut cmd = Command::new(cargo);
    cmd.current_dir(env!("CARGO_MANIFEST_DIR"))
        .args(["run", "--example", name]);
    if quick {
        cmd.args(["--", "--quick"]);
    }
    let output = cmd
        .output()
        .unwrap_or_else(|e| panic!("spawning cargo for {name}: {e}"));
    assert!(
        output.status.success(),
        "example {name} failed with {}\n--- stdout ---\n{}\n--- stderr ---\n{}",
        output.status,
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
}

#[test]
fn quickstart_runs() {
    run_example("quickstart", false);
}

#[test]
fn adaptive_serving_runs() {
    run_example("adaptive_serving", true);
}

#[test]
fn batched_serving_runs() {
    run_example("batched_serving", true);
}

#[test]
fn bigbird_inference_runs() {
    run_example("bigbird_inference", true);
}

#[test]
fn continuous_serving_runs() {
    run_example("continuous_serving", true);
}

#[test]
fn custom_graph_mask_runs() {
    run_example("custom_graph_mask", true);
}

#[test]
fn distributed_simulation_runs() {
    run_example("distributed_simulation", true);
}

#[test]
fn genomics_longnet_runs() {
    run_example("genomics_longnet", true);
}

#[test]
fn incremental_decode_runs() {
    run_example("incremental_decode", true);
}

#[test]
fn longformer_document_runs() {
    run_example("longformer_document", true);
}

#[test]
fn model_serving_runs() {
    run_example("model_serving", true);
}
