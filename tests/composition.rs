//! Sequential kernel composition — the property behind Fig. 6's
//! "Loc + Glo" series: graph kernels sharing one `AttentionState` over
//! disjoint masks compute exact attention over the union mask.

use graph_attention::core::{
    csr_attention, run_composed, AttentionKernel, AttentionState, KernelOptions,
};
use graph_attention::masks::{
    longformer, Dilated1d, GlobalMask, GlobalMinusLocal, GlobalSet, LocalWindow, MaskPattern,
    RandomUniform,
};
use graph_attention::parallel::ThreadPool;
use graph_attention::tensor::{init::qkv, paper_allclose};

#[test]
fn longformer_three_ways() {
    let l = 200;
    let n = 7;
    let pool = ThreadPool::new(4);
    let (q, k, v) = qkv::<f64>(l, 16, 1);
    let opts = KernelOptions::new();
    let globals = GlobalSet::new(l, vec![0, 63, 150]);
    let gi: Vec<usize> = globals.indices().iter().map(|&g| g as usize).collect();

    // 1. Single CSR call over the union mask.
    let union = longformer(l, n, gi).to_csr();
    let via_csr = csr_attention(&pool, &union, &q, &k, &v, &opts).unwrap();

    // 2. Sequential local → global composition.
    let via_composed = run_composed(
        &pool,
        &[
            AttentionKernel::Local { n },
            AttentionKernel::Global {
                globals: &globals,
                n_sub: n,
            },
        ],
        &q,
        &k,
        &v,
        &opts,
    )
    .unwrap();

    // 3. Explicit two-part CSR composition (local mask, then global∖local).
    let local_csr = LocalWindow::new(l, n).to_csr();
    let gml_csr = GlobalMinusLocal::new(globals.clone(), n).to_csr();
    let via_parts = run_composed(
        &pool,
        &[
            AttentionKernel::Csr(&local_csr),
            AttentionKernel::Csr(&gml_csr),
        ],
        &q,
        &k,
        &v,
        &opts,
    )
    .unwrap();

    assert!(paper_allclose(&via_composed, &via_csr));
    assert!(paper_allclose(&via_parts, &via_csr));
}

#[test]
fn composition_order_does_not_matter() {
    let l = 120;
    let pool = ThreadPool::new(4);
    let (q, k, v) = qkv::<f64>(l, 8, 5);
    let opts = KernelOptions::new();

    let a = LocalWindow::new(l, 3).to_csr();
    let b = GlobalMask::new(GlobalSet::new(l, vec![40, 80]))
        .to_csr()
        .difference(&a);
    let ab = run_composed(
        &pool,
        &[AttentionKernel::Csr(&a), AttentionKernel::Csr(&b)],
        &q,
        &k,
        &v,
        &opts,
    )
    .unwrap();
    let ba = run_composed(
        &pool,
        &[AttentionKernel::Csr(&b), AttentionKernel::Csr(&a)],
        &q,
        &k,
        &v,
        &opts,
    )
    .unwrap();
    assert!(paper_allclose(&ab, &ba));
}

#[test]
fn state_can_be_resumed_incrementally() {
    // Feeding a mask in four chunks through an explicit state equals one
    // shot — the streaming-composition property of Algorithm 1.
    let l = 96;
    let pool = ThreadPool::new(2);
    let (q, k, v) = qkv::<f64>(l, 8, 9);
    let opts = KernelOptions::new();
    let full = RandomUniform::new(l, 0.3, 77).to_csr();

    // Partition edges by column quartile (disjoint).
    let mut parts: Vec<Vec<(usize, usize)>> = vec![Vec::new(); 4];
    for (r, c) in full.iter() {
        parts[c * 4 / l].push((r, c));
    }
    let mut state = AttentionState::new(l, 8);
    for part in parts {
        let csr = graph_attention::sparse::CsrMask::from_coo(
            &graph_attention::sparse::CooMask::from_entries(l, l, part).unwrap(),
        );
        AttentionKernel::Csr(&csr)
            .run_into(&pool, &q, &k, &v, &opts, &mut state)
            .unwrap();
    }
    let incremental = state.into_output();
    let oneshot = csr_attention(&pool, &full, &q, &k, &v, &opts).unwrap();
    assert!(paper_allclose(&incremental, &oneshot));
}

#[test]
fn dilated_parts_compose_to_dilated_union() {
    // A dilated mask split into its even/odd step offsets composes too.
    let l = 64;
    let pool = ThreadPool::new(2);
    let (q, k, v) = qkv::<f64>(l, 8, 13);
    let opts = KernelOptions::new();

    let full = Dilated1d::new(l, 13, 1).to_csr();
    let diag = LocalWindow::new(l, 0).to_csr();
    let rest = full.difference(&diag);
    let composed = run_composed(
        &pool,
        &[AttentionKernel::Csr(&diag), AttentionKernel::Csr(&rest)],
        &q,
        &k,
        &v,
        &opts,
    )
    .unwrap();
    let single = csr_attention(&pool, &full, &q, &k, &v, &opts).unwrap();
    assert!(paper_allclose(&composed, &single));
}
