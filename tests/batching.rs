//! Batched execution is element-exact: `AttentionEngine::run_batch` over K
//! random (ragged, where the plan allows) sequences must equal K
//! independent single-sequence runs **bitwise** — same step order, same
//! neighbor order, same online-softmax recurrence — for every composable
//! kernel, both explicit mask formats, and multi-step compositions.

use graph_attention::core::{
    coo_attention, csr_attention, dia_attention, dilated1d_attention, dilated2d_attention,
    global_attention, local_attention,
};
use graph_attention::prelude::*;
use graph_attention::sparse::DiaMask;
use proptest::prelude::*;

fn engine() -> AttentionEngine {
    AttentionEngine::with_threads(3)
}

/// Deterministic ragged Q/K/V triples from a seed.
fn ragged_seqs(
    lens: &[usize],
    dk: usize,
    seed: u64,
) -> Vec<(Matrix<f64>, Matrix<f64>, Matrix<f64>)> {
    lens.iter()
        .enumerate()
        .map(|(i, &l)| init::qkv(l, dk, seed.wrapping_add(i as u64)))
        .collect()
}

fn as_requests<'a>(
    seqs: &'a [(Matrix<f64>, Matrix<f64>, Matrix<f64>)],
) -> Vec<AttentionRequest<'a, f64>> {
    seqs.iter()
        .map(|(q, k, v)| AttentionRequest::new(q, k, v))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Implicit kernels pin no context length, so one plan serves a ragged
    /// batch; outputs must be bitwise equal to the legacy per-sequence
    /// free-function runs.
    #[test]
    fn ragged_batches_exact_for_implicit_kernels(
        lens in proptest::collection::vec(2usize..40, 2..6),
        n in 0usize..6,
        w in 1usize..8,
        r in 0usize..3,
        dk in 1usize..10,
        seed in 0u64..500,
    ) {
        let e = engine();
        let opts = e.options();
        let seqs = ragged_seqs(&lens, dk, seed);
        let reqs = as_requests(&seqs);

        let cases: Vec<(AttentionKernel<'_>, &str)> = vec![
            (AttentionKernel::Local { n }, "Local"),
            (AttentionKernel::Dilated1d { w, r }, "Dilated-1D"),
            (AttentionKernel::Dilated2d { block_size: w, r }, "Dilated-2D"),
        ];
        for (kernel, _name) in cases {
            let plan = e.compile(std::slice::from_ref(&kernel)).unwrap();
            let batched = e.run_batch(&plan, &reqs).unwrap();
            for ((q, k, v), out) in seqs.iter().zip(batched.iter()) {
                let single = match kernel {
                    AttentionKernel::Local { n } =>
                        local_attention(e.pool(), n, q, k, v, &opts).unwrap(),
                    AttentionKernel::Dilated1d { w, r } =>
                        dilated1d_attention(e.pool(), w, r, q, k, v, &opts).unwrap(),
                    AttentionKernel::Dilated2d { block_size, r } =>
                        dilated2d_attention(e.pool(), block_size, r, q, k, v, &opts).unwrap(),
                    _ => unreachable!(),
                };
                prop_assert_eq!(out, &single);
            }
        }
    }

    /// Explicit masks pin the context length; a shared-mask batch must be
    /// bitwise equal to per-sequence runs for both explicit formats (CSR
    /// and COO with both searches), the DIA format, and the global kernel.
    #[test]
    fn fixed_length_batches_exact_for_explicit_and_global_kernels(
        l in 4usize..40,
        batch in 1usize..5,
        density in 0.05f64..0.8,
        n_globals in 0usize..4,
        dk in 1usize..10,
        seed in 0u64..500,
    ) {
        let e = engine();
        let opts = e.options();
        let lens: Vec<usize> = vec![l; batch];
        let seqs = ragged_seqs(&lens, dk, seed ^ 0xBA7C);
        let reqs = as_requests(&seqs);

        let pat = graph_attention::masks::RandomUniform::new(l, density, seed ^ 0xF00D);
        let csr = pat.to_csr();
        let coo = pat.to_coo();
        let dia = DiaMask::local(l, (seed % 5) as usize);
        let globals = GlobalSet::evenly_spaced(l, n_globals);

        // CSR.
        let plan = e.compile(&[AttentionKernel::Csr(&csr)]).unwrap();
        for ((q, k, v), out) in seqs.iter().zip(e.run_batch(&plan, &reqs).unwrap()) {
            prop_assert_eq!(out, csr_attention(e.pool(), &csr, q, k, v, &opts).unwrap());
        }
        // COO, both row-bound searches.
        for search in [CooSearch::Linear, CooSearch::Binary] {
            let plan = e.compile(&[AttentionKernel::Coo(&coo, search)]).unwrap();
            for ((q, k, v), out) in seqs.iter().zip(e.run_batch(&plan, &reqs).unwrap()) {
                prop_assert_eq!(
                    out,
                    coo_attention(e.pool(), &coo, search, q, k, v, &opts).unwrap()
                );
            }
        }
        // DIA.
        let plan = e.compile(&[AttentionKernel::Dia(&dia)]).unwrap();
        for ((q, k, v), out) in seqs.iter().zip(e.run_batch(&plan, &reqs).unwrap()) {
            prop_assert_eq!(out, dia_attention(e.pool(), &dia, q, k, v, &opts).unwrap());
        }
        // Global (minus a small local window).
        let n_sub = (seed % 3) as usize;
        let plan = e
            .compile(&[AttentionKernel::Global { globals: &globals, n_sub }])
            .unwrap();
        for ((q, k, v), out) in seqs.iter().zip(e.run_batch(&plan, &reqs).unwrap()) {
            prop_assert_eq!(
                out,
                global_attention(e.pool(), &globals, n_sub, q, k, v, &opts).unwrap()
            );
        }
    }

    /// Multi-step plans (the Fig. 6 composition) over a batch must equal
    /// per-sequence manual state threading through the legacy `run_composed`.
    #[test]
    fn composed_plan_batches_exact(
        l in 6usize..36,
        batch in 1usize..5,
        window in 0usize..4,
        n_globals in 1usize..4,
        dk in 1usize..8,
        seed in 0u64..500,
    ) {
        let e = engine();
        let opts = e.options();
        let lens: Vec<usize> = vec![l; batch];
        let seqs = ragged_seqs(&lens, dk, seed ^ 0xC0DE);
        let reqs = as_requests(&seqs);
        let globals = GlobalSet::evenly_spaced(l, n_globals);

        let kernels = [
            AttentionKernel::Local { n: window },
            AttentionKernel::Global { globals: &globals, n_sub: window },
        ];
        let plan = e.compile(&kernels).unwrap();
        let batched = e.run_batch(&plan, &reqs).unwrap();
        for ((q, k, v), out) in seqs.iter().zip(batched.iter()) {
            let composed = run_composed(e.pool(), &kernels, q, k, v, &opts).unwrap();
            prop_assert_eq!(out, &composed);
        }
        // And the composition math itself stays right: equal (within paper
        // tolerance) to one CSR call over the Longformer union.
        let gi: Vec<usize> = globals.indices().iter().map(|&g| g as usize).collect();
        let union = longformer(l, window, gi).to_csr();
        let reference = e.run_kernel(AttentionKernel::Csr(&union), &seqs[0].0, &seqs[0].1, &seqs[0].2).unwrap();
        prop_assert!(paper_allclose(&batched[0], &reference));
    }
}
