//! Deterministic simulation of the continuous-batching scheduler.
//!
//! A seeded virtual-clock workload generator replays randomized arrival
//! traces (mixed prompt lengths, decode lengths, arrival gaps, priority
//! classes, and kernels) through `gpa-serve`'s [`Scheduler`] and checks,
//! for **every** trace:
//!
//! 1. **Bitwise equivalence** — each completed sequence's full output
//!    equals the naive one-sequence-at-a-time reference (chunked prefill +
//!    per-token decode) bit for bit: continuous batching changes the
//!    schedule, never the numbers;
//! 2. **KV budget** — reservations never exceed the budget and no cache
//!    outgrows its reservation, checked after every tick;
//! 3. **No starvation** — every submitted sequence completes within a
//!    bound computed from the trace itself (worst-case serial service);
//! 4. **FIFO within a priority class** — admission preserves submission
//!    order inside a class, and equal-shape same-class sequences complete
//!    in submission order;
//! 5. **Atomic rollback** — a failed batched launch rolls every
//!    sequence's cache back and leaves the scheduler in a state that
//!    still serves bitwise-correct outputs once the offender is cancelled
//!    (separate test below).

use graph_attention::prelude::*;
use graph_attention::serve::{
    generate_trace, sequential_reference, Completion, Scheduler, ServeError, TraceEvent, TraceSpec,
};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Scheduler + plans used by one simulated trace. Three length-free plans
/// (two single-kernel, one composed) so traces mix kernels per sequence.
fn build_scheduler(
    threads: usize,
    config: ServeConfig,
) -> (Scheduler<'static, f64>, Vec<graph_attention::serve::PlanId>) {
    let mut scheduler = Scheduler::new(AttentionEngine::with_threads(threads), config).unwrap();
    let plans = vec![
        scheduler
            .register_plan(AttentionPlan::single(AttentionKernel::Local { n: 2 }).unwrap())
            .unwrap(),
        scheduler
            .register_plan(
                AttentionPlan::single(AttentionKernel::Dilated1d { w: 3, r: 2 }).unwrap(),
            )
            .unwrap(),
        scheduler
            .register_plan(
                AttentionPlan::new(&[
                    AttentionKernel::Local { n: 1 },
                    AttentionKernel::Dilated2d {
                        block_size: 3,
                        r: 1,
                    },
                ])
                .unwrap(),
            )
            .unwrap(),
    ];
    (scheduler, plans)
}

/// Worst-case ticks to drain `trace` on a healthy scheduler: last arrival
/// plus the arrival window plus fully *serial* service of every sequence
/// (each needs `ceil(prompt/chunk)` prefill ticks and one tick per decode
/// token), plus slack. Exceeding this bound means starvation.
fn starvation_bound(trace: &[TraceEvent<f64>], config: &ServeConfig) -> u64 {
    let service: u64 = trace
        .iter()
        .map(|e| {
            let prompt = e.request.prompt;
            let decode = e.request.q.rows() - prompt;
            (prompt.div_ceil(config.prefill_chunk) + decode + 1) as u64
        })
        .sum();
    let last_arrival = trace.last().map_or(0, |e| e.at);
    last_arrival + config.arrival_window + service + 64
}

/// Drive one trace through the scheduler tick by tick, checking the KV
/// invariants after every tick, and return the completions.
fn drive(
    scheduler: &mut Scheduler<'_, f64>,
    trace: &[TraceEvent<f64>],
    max_ticks: u64,
) -> Vec<Completion<f64>> {
    let mut completions = Vec::new();
    let mut next = 0usize;
    let mut ticks = 0u64;
    while next < trace.len() || !scheduler.is_idle() {
        while next < trace.len() && trace[next].at <= scheduler.now() {
            scheduler.submit(trace[next].request.clone()).unwrap();
            next += 1;
        }
        let report = scheduler.tick().unwrap();
        // Invariant 2: the KV budget holds after every single tick.
        scheduler.assert_kv_invariants();
        assert!(
            scheduler.kv_reserved_tokens() <= scheduler.kv_budget_tokens(),
            "reservations exceed the budget"
        );
        assert!(
            scheduler.kv_used_tokens() <= scheduler.kv_reserved_tokens(),
            "cached tokens exceed reservations"
        );
        assert!(
            scheduler.in_flight_len() <= scheduler.config().max_in_flight,
            "in-flight cap violated"
        );
        completions.extend(report.completed);
        ticks += 1;
        // Invariant 3: no starvation — the trace drains within its bound.
        assert!(
            ticks <= max_ticks,
            "not drained after {ticks} ticks (bound {max_ticks}): starvation"
        );
    }
    completions
}

/// Check invariants 1 and 4 on a drained trace's completions.
fn check_completions(
    scheduler: &Scheduler<'_, f64>,
    trace: &[TraceEvent<f64>],
    completions: &[Completion<f64>],
) {
    assert_eq!(completions.len(), trace.len(), "every sequence completes");

    // Invariant 1: bitwise equivalence with the sequential reference.
    for c in completions {
        let request = &trace[c.id.as_u64() as usize].request;
        let expect = sequential_reference(
            scheduler.engine(),
            scheduler.plan(c.plan),
            request,
            scheduler.config().prefill_chunk,
        )
        .unwrap();
        assert_eq!(
            c.output,
            expect,
            "sequence {} must match the sequential serve bitwise",
            c.id.as_u64()
        );
    }

    // Invariant 4: FIFO within a priority class. Ids are submission order.
    for a in completions {
        for b in completions {
            if a.priority != b.priority || a.id >= b.id {
                continue;
            }
            assert!(
                a.admitted <= b.admitted,
                "class {}: {} admitted after later submission {}",
                a.priority,
                a.id.as_u64(),
                b.id.as_u64()
            );
            // Equal-shape sequences of one class also *complete* FIFO
            // (both phases advance one unit per tick, so order is kept).
            let (ra, rb) = (
                &trace[a.id.as_u64() as usize].request,
                &trace[b.id.as_u64() as usize].request,
            );
            if ra.prompt == rb.prompt && ra.q.rows() == rb.q.rows() {
                assert!(
                    a.completed <= b.completed,
                    "class {}: equal-shape completion order inverted ({} vs {})",
                    a.priority,
                    a.id.as_u64(),
                    b.id.as_u64()
                );
            }
        }
    }
}

/// The headline: ≥ 50 randomized seeded traces, each with its own
/// workload shape *and* scheduler policy, all four always-on invariants
/// checked end to end.
#[test]
fn randomized_traces_match_the_sequential_reference_bitwise() {
    for trace_seed in 0u64..52 {
        let mut knobs = StdRng::seed_from_u64(0xC0FFEE ^ trace_seed);
        let prompt_lo = 1 + knobs.gen_range(0..6);
        let prompt_hi = prompt_lo + knobs.gen_range(0..12);
        let decode_hi = knobs.gen_range(0..8);
        let spec = TraceSpec {
            sequences: 4 + knobs.gen_range(0..8),
            prompt: (prompt_lo, prompt_hi),
            decode: (0, decode_hi),
            dk: 1 + knobs.gen_range(0..8),
            arrival_gap: (0, knobs.gen_range(0..4) as u64),
            priority_classes: 1 + knobs.gen_range(0..3) as u8,
            seed: trace_seed.wrapping_mul(0x9E37_79B9) ^ 0x5EED,
        };
        let max_total = prompt_hi + decode_hi;
        // Sometimes a tight budget (serializes admissions), sometimes a
        // loose one; always enough for the largest single sequence.
        let budget = max_total * (1 + knobs.gen_range(0..spec.sequences));
        let config = ServeConfig {
            max_in_flight: 1 + knobs.gen_range(0..5),
            kv_budget_tokens: budget,
            arrival_window: knobs.gen_range(0..3) as u64,
            prefill_chunk: 1 + knobs.gen_range(0..6),
        };
        let (mut scheduler, plans) = build_scheduler(2, config);
        let trace: Vec<TraceEvent<f64>> = generate_trace(&spec, &plans);
        let bound = starvation_bound(&trace, &config);
        let completions = drive(&mut scheduler, &trace, bound);
        check_completions(&scheduler, &trace, &completions);
        assert!(scheduler.is_idle());
        assert_eq!(
            scheduler.kv_reserved_tokens(),
            0,
            "trace {trace_seed}: all slots released"
        );
    }
}

/// Duplicate-shape burst: many equal-shape sequences in two classes,
/// arriving together — the case where the FIFO-completion half of
/// invariant 4 actually bites (and priority classes visibly reorder).
#[test]
fn equal_shape_bursts_complete_fifo_within_class_and_by_priority() {
    let config = ServeConfig {
        max_in_flight: 2,
        kv_budget_tokens: 40,
        arrival_window: 0,
        prefill_chunk: 4,
    };
    let (mut scheduler, plans) = build_scheduler(2, config);
    let spec = TraceSpec {
        sequences: 10,
        prompt: (6, 6),
        decode: (3, 3),
        dk: 4,
        arrival_gap: (0, 0),
        priority_classes: 2,
        seed: 0xBEEF,
    };
    let trace: Vec<TraceEvent<f64>> = generate_trace(&spec, &plans);
    assert!(
        trace.iter().any(|e| e.request.priority == 0)
            && trace.iter().any(|e| e.request.priority == 1),
        "trace must exercise both classes"
    );
    let bound = starvation_bound(&trace, &config);
    let completions = drive(&mut scheduler, &trace, bound);
    check_completions(&scheduler, &trace, &completions);
    // With simultaneous arrivals and strict priority, every class-0
    // sequence is admitted no later than every class-1 sequence.
    let last_high = completions
        .iter()
        .filter(|c| c.priority == 0)
        .map(|c| c.admitted)
        .max()
        .unwrap();
    let first_low = completions
        .iter()
        .filter(|c| c.priority == 1)
        .map(|c| c.admitted)
        .min()
        .unwrap();
    assert!(
        last_high <= first_low,
        "class 0 must be fully admitted before class 1 starts"
    );
}

/// Invariant 5: a failed batched launch rolls every sequence's cache back
/// and the scheduler keeps serving bitwise-correct outputs once the
/// offending sequence is cancelled. Also: over-budget submissions are
/// rejected without creating or mutating any cache.
#[test]
fn launch_failure_rolls_back_and_over_budget_is_rejected_cleanly() {
    let config = ServeConfig {
        max_in_flight: 8,
        kv_budget_tokens: 128,
        arrival_window: 0,
        prefill_chunk: 4,
    };
    let mut scheduler: Scheduler<'static, f64> =
        Scheduler::new(AttentionEngine::with_threads(2), config).unwrap();
    let healthy = scheduler
        .register_plan(AttentionPlan::single(AttentionKernel::Local { n: 2 }).unwrap())
        .unwrap();
    // A Global set pinned to a context length no sequence will ever have:
    // compiles fine, passes submission checks, fails request validation
    // inside the batched launch.
    let globals: &'static GlobalSet = Box::leak(Box::new(GlobalSet::new(97, vec![0])));
    let broken = scheduler
        .register_plan(
            AttentionPlan::single(AttentionKernel::Global { globals, n_sub: 0 }).unwrap(),
        )
        .unwrap();

    // Over-budget submission: rejected before any cache exists.
    let (q, k, v) = init::qkv::<f64>(129, 4, 1);
    let err = scheduler
        .submit(graph_attention::serve::ServeRequest {
            plan: healthy,
            priority: 0,
            prompt: 8,
            q,
            k,
            v,
        })
        .unwrap_err();
    assert!(matches!(
        err,
        ServeError::OverBudget {
            need: 129,
            budget: 128
        }
    ));
    assert_eq!(scheduler.kv_used_tokens(), 0);
    assert!(scheduler.is_idle());

    // Two healthy sequences decode for a few ticks first.
    let mut healthy_ids = Vec::new();
    for seed in 0..2u64 {
        let (q, k, v) = init::qkv::<f64>(12, 4, 10 + seed);
        healthy_ids.push(
            scheduler
                .submit(graph_attention::serve::ServeRequest {
                    plan: healthy,
                    priority: 0,
                    prompt: 6,
                    q,
                    k,
                    v,
                })
                .unwrap(),
        );
    }
    for _ in 0..4 {
        scheduler.tick().unwrap();
        scheduler.assert_kv_invariants();
    }
    assert_eq!(scheduler.in_flight_len(), 2, "both mid-flight");

    // Now a sequence on the broken plan joins the batch.
    let (q, k, v) = init::qkv::<f64>(5, 4, 99);
    let broken_id = scheduler
        .submit(graph_attention::serve::ServeRequest {
            plan: broken,
            priority: 0,
            prompt: 3,
            q: q.clone(),
            k,
            v,
        })
        .unwrap();
    let used_before = scheduler.kv_used_tokens();
    let now_before = scheduler.now();
    // The failing tick is fully transactional: the broken sequence's
    // admission is undone (back to its queue, slot released), every decode
    // append is rolled back, and the error NAMES the offender.
    let err = scheduler.tick().unwrap_err();
    let ServeError::Launch { request, source: _ } = err else {
        panic!("expected a launch failure, got {err:?}");
    };
    assert_eq!(request, Some(broken_id), "the error must name the offender");
    assert_eq!(
        scheduler.kv_used_tokens(),
        used_before,
        "a failed tick leaves no cache trace, admissions included"
    );
    assert_eq!(
        scheduler.now(),
        now_before,
        "a failed tick does not advance time"
    );
    assert_eq!(scheduler.in_flight_len(), 2, "the offender was un-admitted");
    assert_eq!(scheduler.pending_len(), 1, "…and returned to its queue");
    scheduler.assert_kv_invariants();
    // Failure is stable: retrying re-admits, fails identically, and
    // un-admits again without growing state.
    assert!(scheduler.tick().is_err());
    assert_eq!(scheduler.kv_used_tokens(), used_before);

    // Cancel the offender the error named; the survivors drain to
    // bitwise-correct outputs — possible only if every rollback was clean.
    assert!(scheduler.cancel(request.unwrap()));
    let mut completions = Vec::new();
    for _ in 0..64 {
        completions.extend(scheduler.tick().unwrap().completed);
        if scheduler.is_idle() {
            break;
        }
    }
    assert_eq!(completions.len(), 2);
    for c in &completions {
        assert!(healthy_ids.contains(&c.id));
        let seed = 10 + c.id.as_u64() - healthy_ids[0].as_u64();
        let (q, k, v) = init::qkv::<f64>(12, 4, seed);
        let request = graph_attention::serve::ServeRequest {
            plan: healthy,
            priority: 0,
            prompt: 6,
            q,
            k,
            v,
        };
        let expect = sequential_reference(
            scheduler.engine(),
            scheduler.plan(healthy),
            &request,
            config.prefill_chunk,
        )
        .unwrap();
        assert_eq!(
            c.output,
            expect,
            "survivor {} bitwise intact",
            c.id.as_u64()
        );
    }
    assert_eq!(scheduler.kv_reserved_tokens(), 0);
}
