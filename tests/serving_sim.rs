//! Deterministic simulation of the continuous-batching scheduler.
//!
//! A seeded virtual-clock workload generator replays randomized arrival
//! traces (mixed prompt lengths, decode lengths, arrival gaps, priority
//! classes, kernels, page sizes, and admission modes) through
//! `gpa-serve`'s [`Scheduler`] and checks, for **every** trace:
//!
//! 1. **Bitwise equivalence** — each completed sequence's full output
//!    equals the naive one-sequence-at-a-time reference (chunked prefill +
//!    per-token decode) bit for bit — *including* sequences that were
//!    preempted and resumed: continuous batching and paged eviction change
//!    the schedule, never the numbers;
//! 2. **Page conservation** — after every tick, free pages plus every
//!    live sequence's page-table length equals the pool size, no page is
//!    mapped twice, and no cache outgrows its page table;
//! 3. **No starvation / no livelock** — every submitted sequence
//!    completes within a bound computed from the trace itself (worst-case
//!    serial service), and preemption events per tick are bounded by the
//!    in-flight cap;
//! 4. **FIFO within a priority class** — admission preserves submission
//!    order inside a class, and equal-shape same-class sequences complete
//!    in submission order, preemption or not;
//! 5. **Atomic rollback** — a failed batched launch rolls every
//!    sequence's cache and page table back and leaves the scheduler in a
//!    state that still serves bitwise-correct outputs once the offender
//!    is cancelled (separate test below).
//!
//! The trace count of the headline loop defaults to 52 and can be raised
//! via `GPA_SIM_TRACES` (the nightly CI job runs 200).

use graph_attention::prelude::*;
use graph_attention::serve::{
    generate_model_trace, generate_trace, sequential_model_reference, sequential_reference,
    Completion, ModelId, ModelTraceEvent, Scheduler, ServeError, TraceEvent, TraceSpec,
};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Headline-loop trace count: `GPA_SIM_TRACES` or 52.
fn trace_count() -> u64 {
    std::env::var("GPA_SIM_TRACES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(52)
}

/// Scheduler + plans used by one simulated trace. Three length-free plans
/// (two single-kernel, one composed) so traces mix kernels per sequence.
fn build_scheduler(
    threads: usize,
    config: ServeConfig,
) -> (Scheduler<'static, f64>, Vec<graph_attention::serve::PlanId>) {
    let mut scheduler = Scheduler::new(AttentionEngine::with_threads(threads), config).unwrap();
    let plans = vec![
        scheduler
            .register_plan(AttentionPlan::single(AttentionKernel::Local { n: 2 }).unwrap())
            .unwrap(),
        scheduler
            .register_plan(
                AttentionPlan::single(AttentionKernel::Dilated1d { w: 3, r: 2 }).unwrap(),
            )
            .unwrap(),
        scheduler
            .register_plan(
                AttentionPlan::new(&[
                    AttentionKernel::Local { n: 1 },
                    AttentionKernel::Dilated2d {
                        block_size: 3,
                        r: 1,
                    },
                ])
                .unwrap(),
            )
            .unwrap(),
    ];
    (scheduler, plans)
}

/// Scheduler + pattern choices for the adaptive traces: the three static
/// plans above, two routed plans (a bare causal router and a composed
/// Local + Routed), and the [`PatternChoice::Auto`] wildcard — so traces
/// mix static, content-routed, and scheduler-chosen sequences. Returns the
/// routed plan ids separately so tests can tell routed completions apart.
fn build_adaptive_scheduler(
    threads: usize,
    config: ServeConfig,
) -> (
    Scheduler<'static, f64>,
    Vec<PatternChoice>,
    Vec<graph_attention::serve::PlanId>,
) {
    let (mut scheduler, plans) = build_scheduler(threads, config);
    let routed = vec![
        scheduler
            .register_plan(
                AttentionPlan::single(AttentionKernel::Routed {
                    groups: 2,
                    seed: 0x0DD5,
                    causal: true,
                })
                .unwrap(),
            )
            .unwrap(),
        scheduler
            .register_plan(
                AttentionPlan::new(&[
                    AttentionKernel::Local { n: 1 },
                    AttentionKernel::Routed {
                        groups: 3,
                        seed: 0xB10C,
                        causal: true,
                    },
                ])
                .unwrap(),
            )
            .unwrap(),
    ];
    let mut patterns: Vec<PatternChoice> = plans.iter().map(|&p| p.into()).collect();
    patterns.extend(routed.iter().map(|&p| PatternChoice::from(p)));
    patterns.push(PatternChoice::Auto);
    (scheduler, patterns, routed)
}

/// Scheduler + plans + models used by one simulated mixed trace: the three
/// plans above, plus a single-layer full model and a three-layer
/// heterogeneous Full/Sparse/Full stack — so model traces mix stack depths
/// per sequence.
fn build_mixed_scheduler(
    threads: usize,
    config: ServeConfig,
) -> (
    Scheduler<'static, f64>,
    Vec<graph_attention::serve::PlanId>,
    Vec<(ModelId, usize)>,
) {
    let (mut scheduler, plans) = build_scheduler(threads, config);
    let single = scheduler.register_model(
        DecoderModel::new(
            LayerPattern::parse("F").unwrap(),
            vec![(
                'F',
                AttentionPlan::single(AttentionKernel::Local { n: 2 }).unwrap(),
            )],
            8,
            2,
            4,
            0x1A7E,
        )
        .unwrap(),
    );
    let stacked = scheduler.register_model(
        DecoderModel::new(
            LayerPattern::parse("FSF").unwrap(),
            vec![
                (
                    'F',
                    AttentionPlan::single(AttentionKernel::Local { n: 2 }).unwrap(),
                ),
                (
                    'S',
                    AttentionPlan::single(AttentionKernel::Dilated1d { w: 3, r: 2 }).unwrap(),
                ),
            ],
            12,
            3,
            4,
            0x5EED,
        )
        .unwrap(),
    );
    (scheduler, plans, vec![(single, 8), (stacked, 12)])
}

/// Worst-case ticks to drain `trace` on a healthy scheduler: last arrival
/// plus the arrival window plus fully *serial* service of every sequence
/// (each needs `ceil(prompt/chunk)` prefill ticks and one tick per decode
/// token), plus slack. Exceeding this bound means starvation — and since
/// the most urgent in-flight sequence is never evicted, it doubles as the
/// livelock bound under preemption: some sequence advances every tick, so
/// serial service still drains the trace.
fn starvation_bound(trace: &[TraceEvent<f64>], config: &ServeConfig) -> u64 {
    let service: u64 = trace
        .iter()
        .map(|e| {
            let prompt = e.request.prompt;
            let decode = e.request.q.rows() - prompt;
            (prompt.div_ceil(config.prefill_chunk) + decode + 1) as u64
        })
        .sum();
    let last_arrival = trace.last().map_or(0, |e| e.at);
    last_arrival + config.arrival_window + service + 64
}

/// Drive one trace through the scheduler tick by tick, checking the page
/// and scheduling invariants after every tick; returns the completions
/// and the peak number of sequences concurrently in flight during a tick.
fn drive(
    scheduler: &mut Scheduler<'_, f64>,
    trace: &[TraceEvent<f64>],
    max_ticks: u64,
) -> (Vec<Completion<f64>>, usize) {
    let mut completions = Vec::new();
    let mut peak_in_flight = 0usize;
    let mut next = 0usize;
    let mut ticks = 0u64;
    while next < trace.len() || !scheduler.is_idle() {
        while next < trace.len() && trace[next].at <= scheduler.now() {
            scheduler.submit(trace[next].request.clone()).unwrap();
            next += 1;
        }
        let report = scheduler.tick().unwrap();
        // Invariant 2: page conservation, no double-mapping, caches within
        // their page tables — after every single tick.
        scheduler.assert_kv_invariants();
        assert_eq!(
            scheduler.kv_free_pages() + scheduler.kv_used_pages(),
            scheduler.kv_total_pages(),
            "page conservation"
        );
        assert!(
            scheduler.in_flight_len() <= scheduler.config().max_in_flight,
            "in-flight cap violated"
        );
        // Admission and preemption are mutually exclusive per tick:
        // admission holds back this tick's decode appends, so it can never
        // force the eviction of a sequence it just admitted.
        if !report.preempted.is_empty() {
            assert!(
                report.admitted.is_empty() && report.resumed.is_empty(),
                "a tick may admit or preempt, never both"
            );
        }
        // Invariant 3 (livelock half): one tick evicts at most the
        // non-head in-flight sequences.
        assert!(
            report.preempted.len() < scheduler.config().max_in_flight.max(1) + 1,
            "preempted more sequences than could be in flight"
        );
        peak_in_flight = peak_in_flight.max(scheduler.in_flight_len() + report.completed.len());
        completions.extend(report.completed);
        ticks += 1;
        // Invariant 3: no starvation — the trace drains within its bound.
        assert!(
            ticks <= max_ticks,
            "not drained after {ticks} ticks (bound {max_ticks}): starvation"
        );
        assert!(
            scheduler.preemption_events() <= ticks * scheduler.config().max_in_flight as u64,
            "preemption-count bound exceeded: livelock"
        );
    }
    (completions, peak_in_flight)
}

/// Check invariants 1 and 4 on a drained trace's completions.
fn check_completions(
    scheduler: &Scheduler<'_, f64>,
    trace: &[TraceEvent<f64>],
    completions: &[Completion<f64>],
) {
    assert_eq!(completions.len(), trace.len(), "every sequence completes");

    // Invariant 1: bitwise equivalence with the sequential reference —
    // for preempted-and-resumed sequences exactly as for uninterrupted
    // ones.
    for c in completions {
        let request = &trace[c.id.as_u64() as usize].request;
        let plan = c.target.plan().expect("a plan-only trace");
        let expect = sequential_reference(
            scheduler.engine(),
            scheduler.plan(plan),
            request,
            scheduler.config().prefill_chunk,
        )
        .unwrap();
        assert_eq!(
            c.output,
            expect,
            "sequence {} ({} preemptions) must match the sequential serve bitwise",
            c.id.as_u64(),
            c.preemptions
        );
    }

    // Preemption accounting: per-completion counters sum to the
    // scheduler's event total (nothing was cancelled in these drives).
    assert_eq!(
        completions
            .iter()
            .map(|c| c.preemptions as u64)
            .sum::<u64>(),
        scheduler.preemption_events(),
        "per-sequence preemption counters must sum to the event total"
    );

    // Invariant 4: FIFO within a priority class. Ids are submission order.
    for a in completions {
        for b in completions {
            if a.priority != b.priority || a.id >= b.id {
                continue;
            }
            assert!(
                a.admitted <= b.admitted,
                "class {}: {} admitted after later submission {}",
                a.priority,
                a.id.as_u64(),
                b.id.as_u64()
            );
            // Equal-shape sequences of one class also *complete* FIFO
            // (both phases advance one unit per tick, and preemption
            // evicts most-recently-admitted first, so order is kept).
            let (ra, rb) = (
                &trace[a.id.as_u64() as usize].request,
                &trace[b.id.as_u64() as usize].request,
            );
            if ra.prompt == rb.prompt && ra.q.rows() == rb.q.rows() {
                assert!(
                    a.completed <= b.completed,
                    "class {}: equal-shape completion order inverted ({} vs {})",
                    a.priority,
                    a.id.as_u64(),
                    b.id.as_u64()
                );
            }
        }
    }
}

/// [`starvation_bound`] generalized to a mixed workload: serial service of
/// every plan sequence plus every model sequence (a model sequence's
/// per-tick unit of work is one chunk or one token, exactly like a plan
/// sequence's — depth multiplies the work per tick, not the tick count).
fn mixed_starvation_bound(
    attn: &[TraceEvent<f64>],
    models: &[ModelTraceEvent<f64>],
    config: &ServeConfig,
) -> u64 {
    let model_service: u64 = models
        .iter()
        .map(|e| {
            let prompt = e.request.prompt;
            let decode = e.request.x.rows() - prompt;
            (prompt.div_ceil(config.prefill_chunk) + decode + 1) as u64
        })
        .sum();
    let last_arrival = models.last().map_or(0, |e| e.at);
    starvation_bound(attn, config) + last_arrival + model_service
}

/// [`drive`] for a mixed plan + model workload: submits both traces on the
/// virtual clock and checks the same per-tick invariants — page
/// conservation now spans every layer of every model sequence's state.
fn drive_mixed(
    scheduler: &mut Scheduler<'_, f64>,
    attn: &[TraceEvent<f64>],
    models: &[ModelTraceEvent<f64>],
    max_ticks: u64,
) -> Vec<Completion<f64>> {
    let mut completions = Vec::new();
    let (mut next_a, mut next_m) = (0usize, 0usize);
    let mut ticks = 0u64;
    while next_a < attn.len() || next_m < models.len() || !scheduler.is_idle() {
        while next_a < attn.len() && attn[next_a].at <= scheduler.now() {
            scheduler.submit(attn[next_a].request.clone()).unwrap();
            next_a += 1;
        }
        while next_m < models.len() && models[next_m].at <= scheduler.now() {
            scheduler
                .submit_model(models[next_m].request.clone())
                .unwrap();
            next_m += 1;
        }
        let report = scheduler.tick().unwrap();
        scheduler.assert_kv_invariants();
        assert_eq!(
            scheduler.kv_free_pages() + scheduler.kv_used_pages(),
            scheduler.kv_total_pages(),
            "page conservation across per-layer tables"
        );
        assert!(scheduler.in_flight_len() <= scheduler.config().max_in_flight);
        if !report.preempted.is_empty() {
            assert!(
                report.admitted.is_empty() && report.resumed.is_empty(),
                "a tick may admit or preempt, never both"
            );
        }
        completions.extend(report.completed);
        ticks += 1;
        assert!(
            ticks <= max_ticks,
            "not drained after {ticks} ticks (bound {max_ticks}): starvation"
        );
    }
    completions
}

/// Bitwise check for a mixed drive's completions: every plan completion
/// equals [`sequential_reference`], every model completion equals
/// [`sequential_model_reference`] — preempted-and-resumed multi-layer
/// sequences exactly like uninterrupted ones. Ids map to events through
/// the submission order (the two sorted traces merged by arrival tick,
/// plan events first on ties — `drive_mixed`'s per-tick order).
fn check_mixed_completions(
    scheduler: &Scheduler<'_, f64>,
    attn: &[TraceEvent<f64>],
    models: &[ModelTraceEvent<f64>],
    completions: &[Completion<f64>],
) {
    assert_eq!(completions.len(), attn.len() + models.len());
    let mut order: Vec<(bool, usize)> = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < attn.len() || j < models.len() {
        if j >= models.len() || (i < attn.len() && attn[i].at <= models[j].at) {
            order.push((false, i));
            i += 1;
        } else {
            order.push((true, j));
            j += 1;
        }
    }
    let chunk = scheduler.config().prefill_chunk;
    for c in completions {
        let (is_model, idx) = order[c.id.as_u64() as usize];
        match c.target {
            ServeTarget::Plan(plan) => {
                assert!(!is_model, "submission order maps ids to flavors");
                let expect = sequential_reference(
                    scheduler.engine(),
                    scheduler.plan(plan),
                    &attn[idx].request,
                    chunk,
                )
                .unwrap();
                assert_eq!(
                    c.output,
                    expect,
                    "plan sequence {} ({} preemptions) bitwise",
                    c.id.as_u64(),
                    c.preemptions
                );
            }
            ServeTarget::Model(model) => {
                assert!(is_model, "submission order maps ids to flavors");
                let expect = sequential_model_reference(
                    scheduler.engine(),
                    scheduler.model(model),
                    &models[idx].request,
                    chunk,
                )
                .unwrap();
                assert_eq!(
                    c.output,
                    expect,
                    "model sequence {} ({} preemptions, {} layers) bitwise",
                    c.id.as_u64(),
                    c.preemptions,
                    scheduler.model(model).layers()
                );
            }
        }
    }
}

/// The headline: ≥ `GPA_SIM_TRACES` (default 52) randomized seeded
/// traces, each with its own workload shape, page geometry, *and*
/// scheduler policy — all always-on invariants checked end to end, with
/// page budgets tight enough that a healthy share of traces preempt.
#[test]
fn randomized_traces_match_the_sequential_reference_bitwise() {
    let mut preempted_completions = 0u64;
    let traces = trace_count();
    for trace_seed in 0u64..traces {
        let mut knobs = StdRng::seed_from_u64(0xC0FFEE ^ trace_seed);
        let prompt_lo = 1 + knobs.gen_range(0..6);
        let prompt_hi = prompt_lo + knobs.gen_range(0..12);
        let decode_hi = knobs.gen_range(0..8);
        let spec = TraceSpec {
            sequences: 4 + knobs.gen_range(0..8),
            prompt: (prompt_lo, prompt_hi),
            decode: (0, decode_hi),
            dk: 1 + knobs.gen_range(0..8),
            arrival_gap: (0, knobs.gen_range(0..4) as u64),
            priority_classes: 1 + knobs.gen_range(0..3) as u8,
            seed: trace_seed.wrapping_mul(0x9E37_79B9) ^ 0x5EED,
        };
        let max_total = prompt_hi + decode_hi;
        let page_size = 1 + knobs.gen_range(0..6);
        // Sometimes a tight pool (forces preemption under decode growth),
        // sometimes a loose one; always enough pages for the largest
        // single sequence, so nothing is rejected at submission.
        let kv_pages = max_total.div_ceil(page_size) + knobs.gen_range(0..2 * spec.sequences);
        // Every fourth trace runs worst-case reservation — the mode that
        // can never preempt — so both admission paths stay exercised.
        let admission = if trace_seed % 4 == 3 {
            AdmissionMode::WorstCaseReserve
        } else {
            AdmissionMode::PagedUsage
        };
        // Every third trace parks victims in the swap arena instead of
        // recomputing, and every sixth gets a byte cap tight enough that
        // some parks fall back — all bitwise-invisible by construction.
        let eviction = if trace_seed % 3 == 1 {
            EvictionMode::Swap
        } else {
            EvictionMode::Recompute
        };
        let swap_bytes = if trace_seed % 6 == 4 {
            96 * std::mem::size_of::<f64>()
        } else {
            usize::MAX
        };
        let config = ServeConfig {
            max_in_flight: 1 + knobs.gen_range(0..5),
            kv_pages,
            page_size,
            arrival_window: knobs.gen_range(0..3) as u64,
            prefill_chunk: 1 + knobs.gen_range(0..6),
            admission,
            eviction,
            swap_bytes,
        };
        let (mut scheduler, plans) = build_scheduler(2, config);
        let trace: Vec<TraceEvent<f64>> = generate_trace(&spec, &plans);
        let bound = starvation_bound(&trace, &config);
        let (completions, _) = drive(&mut scheduler, &trace, bound);
        check_completions(&scheduler, &trace, &completions);
        assert!(scheduler.is_idle());
        assert_eq!(
            scheduler.kv_used_pages(),
            0,
            "trace {trace_seed}: all pages released"
        );
        assert_eq!(scheduler.kv_reserved_pages(), 0);
        assert_eq!(
            scheduler.swap_parked_bytes(),
            0,
            "trace {trace_seed}: a drained scheduler parks nothing"
        );
        if eviction == EvictionMode::Recompute {
            assert_eq!(
                scheduler.swap_peak_bytes(),
                0,
                "trace {trace_seed}: recompute never touches the arena"
            );
        }
        if admission == AdmissionMode::WorstCaseReserve {
            assert_eq!(
                scheduler.preemption_events(),
                0,
                "trace {trace_seed}: worst-case reservation never preempts"
            );
        }
        preempted_completions += completions.iter().filter(|c| c.preemptions > 0).count() as u64;
    }
    // The suite's claim is only meaningful if preemption actually fired:
    // the bitwise check above must have covered preempted-and-resumed
    // sequences, not just uninterrupted ones.
    assert!(
        preempted_completions > 0,
        "no trace preempted — tighten the page budgets"
    );
}

/// A deterministic preemption workload (independent of the randomized
/// loop): a tight pool under a decode-heavy burst must preempt, resume,
/// and still complete every sequence bitwise equal to the reference.
#[test]
fn preempted_and_resumed_sequences_complete_bitwise() {
    let config = ServeConfig {
        max_in_flight: 4,
        kv_pages: 6,
        page_size: 2,
        arrival_window: 0,
        prefill_chunk: 2,
        admission: AdmissionMode::PagedUsage,
        eviction: EvictionMode::Recompute,
        swap_bytes: usize::MAX,
    };
    let (mut scheduler, plans) = build_scheduler(2, config);
    let spec = TraceSpec {
        sequences: 4,
        prompt: (2, 2),
        decode: (8, 8),
        dk: 4,
        arrival_gap: (0, 0),
        priority_classes: 1,
        seed: 0xFACE,
    };
    let trace: Vec<TraceEvent<f64>> = generate_trace(&spec, &plans);
    let bound = starvation_bound(&trace, &config);
    let (completions, _) = drive(&mut scheduler, &trace, bound);
    check_completions(&scheduler, &trace, &completions);
    assert!(
        completions.iter().any(|c| c.preemptions > 0),
        "this workload must preempt: 4 sequences grow to 5 pages each in a 6-page pool"
    );
}

/// The same deterministic preemption workload under
/// [`EvictionMode::Swap`]: victims park their caches in the swap arena
/// and resume by re-adopting pages in O(1). The mode must be invisible —
/// every completion bitwise equal to the sequential reference *and*
/// field-for-field identical (admission tick, completion tick, preemption
/// count, output) to the evict-and-recompute run of the same trace.
#[test]
fn swapped_and_resumed_sequences_match_the_recompute_run_exactly() {
    let spec = TraceSpec {
        sequences: 4,
        prompt: (2, 2),
        decode: (8, 8),
        dk: 4,
        arrival_gap: (0, 0),
        priority_classes: 1,
        seed: 0xFACE,
    };
    let mut runs = Vec::new();
    for eviction in [EvictionMode::Recompute, EvictionMode::Swap] {
        let config = ServeConfig {
            max_in_flight: 4,
            kv_pages: 6,
            page_size: 2,
            arrival_window: 0,
            prefill_chunk: 2,
            admission: AdmissionMode::PagedUsage,
            eviction,
            swap_bytes: usize::MAX,
        };
        let (mut scheduler, plans) = build_scheduler(2, config);
        let trace: Vec<TraceEvent<f64>> = generate_trace(&spec, &plans);
        let bound = starvation_bound(&trace, &config);
        let (completions, _) = drive(&mut scheduler, &trace, bound);
        check_completions(&scheduler, &trace, &completions);
        assert!(
            completions.iter().any(|c| c.preemptions > 0),
            "{eviction:?}: this workload must preempt"
        );
        if eviction == EvictionMode::Swap {
            assert!(
                scheduler.swap_peak_bytes() > 0,
                "swap mode with an unbounded arena must actually park bytes"
            );
            assert_eq!(
                scheduler.swap_fallbacks(),
                0,
                "an unbounded arena never refuses a park"
            );
            assert_eq!(scheduler.swap_parked_bytes(), 0, "drained ⇒ arena empty");
        }
        runs.push(completions);
    }
    let (recompute, swap) = (&runs[0], &runs[1]);
    assert_eq!(recompute.len(), swap.len());
    for (r, s) in recompute.iter().zip(swap) {
        assert_eq!(r.id, s.id, "eviction mode must not reorder completions");
        assert_eq!(
            r.admitted,
            s.admitted,
            "seq {}: admission tick differs",
            r.id.as_u64()
        );
        assert_eq!(
            r.completed,
            s.completed,
            "seq {}: completion tick differs",
            r.id.as_u64()
        );
        assert_eq!(
            r.preemptions,
            s.preemptions,
            "seq {}: preemption count differs",
            r.id.as_u64()
        );
        assert_eq!(
            r.output,
            s.output,
            "seq {}: output differs across modes",
            r.id.as_u64()
        );
    }
}

/// Swap mode with a zero-byte arena: every park is refused and falls back
/// to evict-and-recompute. The fallback is counted, the arena stays
/// untouched, and the run remains bitwise equal to the reference.
#[test]
fn zero_byte_swap_arena_falls_back_to_recompute_bitwise() {
    let config = ServeConfig {
        max_in_flight: 4,
        kv_pages: 6,
        page_size: 2,
        arrival_window: 0,
        prefill_chunk: 2,
        admission: AdmissionMode::PagedUsage,
        eviction: EvictionMode::Swap,
        swap_bytes: 0,
    };
    let (mut scheduler, plans) = build_scheduler(2, config);
    let spec = TraceSpec {
        sequences: 4,
        prompt: (2, 2),
        decode: (8, 8),
        dk: 4,
        arrival_gap: (0, 0),
        priority_classes: 1,
        seed: 0xFACE,
    };
    let trace: Vec<TraceEvent<f64>> = generate_trace(&spec, &plans);
    let bound = starvation_bound(&trace, &config);
    let (completions, _) = drive(&mut scheduler, &trace, bound);
    check_completions(&scheduler, &trace, &completions);
    assert!(completions.iter().any(|c| c.preemptions > 0));
    assert!(
        scheduler.swap_fallbacks() > 0,
        "a zero-byte arena must refuse every park"
    );
    assert_eq!(
        scheduler.swap_peak_bytes(),
        0,
        "refused parks leave no trace in the arena"
    );
}

/// Adaptive-sparsity traces: randomized seeded workloads drawing each
/// sequence's pattern from the static plans, two causal routed plans, and
/// [`PatternChoice::Auto`] — one scheduler, one page pool. Every always-on
/// invariant of the headline loop holds, every completion (Auto sequences
/// checked under the plan the scheduler resolved at admission) is bitwise
/// its sequential reference, and across the loop at least one **routed**
/// sequence is preempted and resumed — eviction and resume must re-adopt
/// the same content routing, or the bitwise check would fail.
#[test]
fn routed_and_auto_traces_match_the_sequential_reference_bitwise() {
    let mut routed_preempted = 0u64;
    let mut auto_served = 0u64;
    for trace_seed in 0u64..16 {
        let mut knobs = StdRng::seed_from_u64(0xADA7 ^ trace_seed);
        let prompt_lo = 1 + knobs.gen_range(0..5);
        let prompt_hi = prompt_lo + knobs.gen_range(0..10);
        let decode_hi = knobs.gen_range(0..8);
        let spec = TraceSpec {
            sequences: 4 + knobs.gen_range(0..6),
            prompt: (prompt_lo, prompt_hi),
            decode: (0, decode_hi),
            dk: 2 + knobs.gen_range(0..6),
            arrival_gap: (0, knobs.gen_range(0..3) as u64),
            priority_classes: 1 + knobs.gen_range(0..3) as u8,
            seed: trace_seed.wrapping_mul(0x9E37_79B9) ^ 0x40E7,
        };
        let max_total = prompt_hi + decode_hi;
        let page_size = 1 + knobs.gen_range(0..5);
        // Tighter than the headline loop: just enough pages for the
        // largest single sequence plus a sliver, so routed sequences get
        // evicted mid-decode often.
        let kv_pages = max_total.div_ceil(page_size) + knobs.gen_range(0..spec.sequences);
        let config = ServeConfig {
            max_in_flight: 1 + knobs.gen_range(0..4),
            kv_pages,
            page_size,
            arrival_window: knobs.gen_range(0..3) as u64,
            prefill_chunk: 1 + knobs.gen_range(0..5),
            admission: AdmissionMode::PagedUsage,
            // Alternate eviction modes: a routed cache's grouping rides
            // the swapped cache, so swap resume must be bitwise too.
            eviction: if trace_seed % 2 == 1 {
                EvictionMode::Swap
            } else {
                EvictionMode::Recompute
            },
            swap_bytes: usize::MAX,
        };
        let (mut scheduler, patterns, routed) = build_adaptive_scheduler(2, config);
        let trace: Vec<TraceEvent<f64>> = generate_trace(&spec, &patterns);
        let bound = starvation_bound(&trace, &config);
        let (completions, _) = drive(&mut scheduler, &trace, bound);
        check_completions(&scheduler, &trace, &completions);
        assert!(scheduler.is_idle());
        assert_eq!(
            scheduler.kv_used_pages(),
            0,
            "trace {trace_seed}: all pages released"
        );
        for c in &completions {
            let resolved = c.target.plan().expect("a plan-only trace");
            if routed.contains(&resolved) && c.preemptions > 0 {
                routed_preempted += 1;
            }
            if trace[c.id.as_u64() as usize].request.pattern == PatternChoice::Auto {
                auto_served += 1;
            }
        }
    }
    assert!(
        routed_preempted > 0,
        "no routed sequence was evicted and resumed — tighten the page budgets"
    );
    assert!(
        auto_served > 0,
        "no Auto sequence was drawn — widen the pattern mix"
    );
}

/// The adaptive acceptance scenario: one tick flattens a batch mixing
/// three static patterns and routed sequences into **shared** launches —
/// eight sequences, two per pattern, admitted together and prefilled in a
/// single tick as four batched launches (one per distinct plan, not one
/// per sequence) — and every completion is bitwise the sequential
/// reference.
#[test]
fn one_tick_flattens_static_and_routed_sequences_into_shared_launches() {
    let config = ServeConfig {
        max_in_flight: 8,
        kv_pages: 32,
        page_size: 4,
        arrival_window: 0,
        prefill_chunk: 8,
        admission: AdmissionMode::PagedUsage,
        eviction: EvictionMode::Recompute,
        swap_bytes: usize::MAX,
    };
    let (mut scheduler, patterns, routed) = build_adaptive_scheduler(2, config);
    // Two sequences per pattern: the three static plans plus the bare
    // causal routed plan — 8 sequences over 4 distinct plans.
    let chosen = [patterns[0], patterns[1], patterns[2], routed[0].into()];
    let (prompt, decode) = (6usize, 2usize);
    let mut requests = Vec::new();
    for (i, &pattern) in chosen.iter().cycle().take(8).enumerate() {
        let (q, k, v) = init::qkv::<f64>(prompt + decode, 4, 0x51 + i as u64);
        requests.push(graph_attention::serve::ServeRequest {
            pattern,
            priority: 0,
            prompt,
            q,
            k,
            v,
        });
    }
    let ids: Vec<_> = requests
        .iter()
        .map(|r| scheduler.submit(r.clone()).unwrap())
        .collect();
    let report = scheduler.tick().unwrap();
    assert_eq!(report.admitted.len(), 8, "all eight admitted in one tick");
    assert_eq!(
        report.launches, 4,
        "8 sequences share 4 launches — one per distinct plan, static and routed alike"
    );
    assert_eq!(
        report.rows_computed,
        8 * prompt,
        "every prompt prefilled whole inside the shared launches"
    );
    let mut completions = Vec::new();
    for _ in 0..32 {
        completions.extend(scheduler.tick().unwrap().completed);
        if scheduler.is_idle() {
            break;
        }
    }
    assert_eq!(completions.len(), 8);
    for c in &completions {
        let idx = ids.iter().position(|&id| id == c.id).unwrap();
        let plan = c.target.plan().expect("a plan-only workload");
        let expect = sequential_reference(
            scheduler.engine(),
            scheduler.plan(plan),
            &requests[idx],
            config.prefill_chunk,
        )
        .unwrap();
        assert_eq!(c.output, expect, "sequence {} bitwise", c.id.as_u64());
    }
}

/// Acceptance A/B: on the same page budget at saturating load, paged
/// admission sustains strictly more concurrent in-flight sequences than
/// worst-case reservation — and both serve every sequence bitwise equal
/// to the reference.
#[test]
fn paged_admission_sustains_more_concurrency_than_reservation() {
    let spec = TraceSpec {
        sequences: 8,
        prompt: (4, 4),
        decode: (12, 12),
        dk: 4,
        arrival_gap: (0, 0),
        priority_classes: 1,
        seed: 0xAB,
    };
    let mut peaks = Vec::new();
    for admission in [AdmissionMode::PagedUsage, AdmissionMode::WorstCaseReserve] {
        let config = ServeConfig {
            max_in_flight: 6,
            // 8 pages × 4 tokens: each 16-token sequence needs 4 pages at
            // completion, so reservation fits two at a time while paged
            // admission packs six one-page prompts.
            kv_pages: 8,
            page_size: 4,
            arrival_window: 0,
            prefill_chunk: 4,
            admission,
            eviction: EvictionMode::Recompute,
            swap_bytes: usize::MAX,
        };
        let (mut scheduler, plans) = build_scheduler(2, config);
        let trace: Vec<TraceEvent<f64>> = generate_trace(&spec, &plans);
        let bound = starvation_bound(&trace, &config);
        let (completions, peak) = drive(&mut scheduler, &trace, bound);
        check_completions(&scheduler, &trace, &completions);
        if admission == AdmissionMode::WorstCaseReserve {
            assert_eq!(scheduler.preemption_events(), 0);
        }
        peaks.push(peak);
    }
    let (paged, reserved) = (peaks[0], peaks[1]);
    assert_eq!(reserved, 2, "reservation caps concurrency at 8/4 pages");
    assert!(
        paged > reserved,
        "paged admission must sustain strictly more concurrent sequences \
         ({paged} vs {reserved})"
    );
}

/// Duplicate-shape burst: many equal-shape sequences in two classes,
/// arriving together — the case where the FIFO-completion half of
/// invariant 4 actually bites (and priority classes visibly reorder).
#[test]
fn equal_shape_bursts_complete_fifo_within_class_and_by_priority() {
    let config = ServeConfig {
        max_in_flight: 2,
        kv_pages: 10,
        page_size: 4,
        arrival_window: 0,
        prefill_chunk: 4,
        admission: AdmissionMode::PagedUsage,
        eviction: EvictionMode::Recompute,
        swap_bytes: usize::MAX,
    };
    let (mut scheduler, plans) = build_scheduler(2, config);
    let spec = TraceSpec {
        sequences: 10,
        prompt: (6, 6),
        decode: (3, 3),
        dk: 4,
        arrival_gap: (0, 0),
        priority_classes: 2,
        seed: 0xBEEF,
    };
    let trace: Vec<TraceEvent<f64>> = generate_trace(&spec, &plans);
    assert!(
        trace.iter().any(|e| e.request.priority == 0)
            && trace.iter().any(|e| e.request.priority == 1),
        "trace must exercise both classes"
    );
    let bound = starvation_bound(&trace, &config);
    let (completions, _) = drive(&mut scheduler, &trace, bound);
    check_completions(&scheduler, &trace, &completions);
    // With simultaneous arrivals and strict priority, every class-0
    // sequence is admitted no later than every class-1 sequence.
    let last_high = completions
        .iter()
        .filter(|c| c.priority == 0)
        .map(|c| c.admitted)
        .max()
        .unwrap();
    let first_low = completions
        .iter()
        .filter(|c| c.priority == 1)
        .map(|c| c.admitted)
        .min()
        .unwrap();
    assert!(
        last_high <= first_low,
        "class 0 must be fully admitted before class 1 starts"
    );
}

/// Invariant 5: a failed batched launch rolls every sequence's cache and
/// page table back and the scheduler keeps serving bitwise-correct
/// outputs once the offending sequence is cancelled. Also: over-capacity
/// submissions are rejected without creating or mutating any cache.
#[test]
fn launch_failure_rolls_back_and_over_capacity_is_rejected_cleanly() {
    let config = ServeConfig {
        max_in_flight: 8,
        kv_pages: 16,
        page_size: 8,
        arrival_window: 0,
        prefill_chunk: 4,
        admission: AdmissionMode::PagedUsage,
        eviction: EvictionMode::Recompute,
        swap_bytes: usize::MAX,
    };
    let mut scheduler: Scheduler<'static, f64> =
        Scheduler::new(AttentionEngine::with_threads(2), config).unwrap();
    let healthy = scheduler
        .register_plan(AttentionPlan::single(AttentionKernel::Local { n: 2 }).unwrap())
        .unwrap();
    // A Global set pinned to a context length no sequence will ever have:
    // compiles fine, passes submission checks, fails request validation
    // inside the batched launch.
    let globals: &'static GlobalSet = Box::leak(Box::new(GlobalSet::new(97, vec![0])));
    let broken = scheduler
        .register_plan(
            AttentionPlan::single(AttentionKernel::Global { globals, n_sub: 0 }).unwrap(),
        )
        .unwrap();

    // Over-capacity submission: 129 tokens need 17 pages of 8; the whole
    // pool is 16. Rejected before any cache exists.
    let (q, k, v) = init::qkv::<f64>(129, 4, 1);
    let err = scheduler
        .submit(graph_attention::serve::ServeRequest {
            pattern: healthy.into(),
            priority: 0,
            prompt: 8,
            q,
            k,
            v,
        })
        .unwrap_err();
    assert!(matches!(
        err,
        ServeError::OverCapacity {
            need_pages: 17,
            total_pages: 16
        }
    ));
    assert_eq!(scheduler.kv_used_pages(), 0);
    assert!(scheduler.is_idle());

    // Two healthy sequences decode for a few ticks first.
    let mut healthy_ids = Vec::new();
    for seed in 0..2u64 {
        let (q, k, v) = init::qkv::<f64>(12, 4, 10 + seed);
        healthy_ids.push(
            scheduler
                .submit(graph_attention::serve::ServeRequest {
                    pattern: healthy.into(),
                    priority: 0,
                    prompt: 6,
                    q,
                    k,
                    v,
                })
                .unwrap(),
        );
    }
    for _ in 0..4 {
        scheduler.tick().unwrap();
        scheduler.assert_kv_invariants();
    }
    assert_eq!(scheduler.in_flight_len(), 2, "both mid-flight");

    // Now a sequence on the broken plan joins the batch.
    let (q, k, v) = init::qkv::<f64>(5, 4, 99);
    let broken_id = scheduler
        .submit(graph_attention::serve::ServeRequest {
            pattern: broken.into(),
            priority: 0,
            prompt: 3,
            q: q.clone(),
            k,
            v,
        })
        .unwrap();
    let used_before = scheduler.kv_used_pages();
    let tokens_before = scheduler.kv_used_tokens();
    let now_before = scheduler.now();
    // The failing tick is fully transactional: the broken sequence's
    // admission is undone (back to its queue, pages released), every
    // decode append is rolled back, and the error NAMES the offender.
    let err = scheduler.tick().unwrap_err();
    let ServeError::Launch { request, source: _ } = err else {
        panic!("expected a launch failure, got {err:?}");
    };
    assert_eq!(request, Some(broken_id), "the error must name the offender");
    assert_eq!(
        scheduler.kv_used_pages(),
        used_before,
        "a failed tick leaves no page trace, admissions included"
    );
    assert_eq!(scheduler.kv_used_tokens(), tokens_before);
    assert_eq!(
        scheduler.now(),
        now_before,
        "a failed tick does not advance time"
    );
    assert_eq!(scheduler.in_flight_len(), 2, "the offender was un-admitted");
    assert_eq!(scheduler.pending_len(), 1, "…and returned to its queue");
    scheduler.assert_kv_invariants();
    // Failure is stable: retrying re-admits, fails identically, and
    // un-admits again without growing state.
    assert!(scheduler.tick().is_err());
    assert_eq!(scheduler.kv_used_pages(), used_before);

    // Cancel the offender the error named; the survivors drain to
    // bitwise-correct outputs — possible only if every rollback was clean.
    assert!(scheduler.cancel(request.unwrap()));
    let mut completions = Vec::new();
    for _ in 0..64 {
        completions.extend(scheduler.tick().unwrap().completed);
        if scheduler.is_idle() {
            break;
        }
    }
    assert_eq!(completions.len(), 2);
    for c in &completions {
        assert!(healthy_ids.contains(&c.id));
        let seed = 10 + c.id.as_u64() - healthy_ids[0].as_u64();
        let (q, k, v) = init::qkv::<f64>(12, 4, seed);
        let request = graph_attention::serve::ServeRequest {
            pattern: healthy.into(),
            priority: 0,
            prompt: 6,
            q,
            k,
            v,
        };
        let expect = sequential_reference(
            scheduler.engine(),
            scheduler.plan(healthy),
            &request,
            config.prefill_chunk,
        )
        .unwrap();
        assert_eq!(
            c.output,
            expect,
            "survivor {} bitwise intact",
            c.id.as_u64()
        );
    }
    assert_eq!(scheduler.kv_used_pages(), 0);
}

/// Mixed plan + model traces: randomized seeded workloads drawing both
/// bare-plan sequences and decoder-stack sequences (single-layer and
/// 3-layer heterogeneous models) through one scheduler and one page pool —
/// page conservation spans every layer's table after every tick, and every
/// completion of either flavor is bitwise its sequential reference.
#[test]
fn mixed_model_traces_match_the_sequential_references_bitwise() {
    let mut model_preempted = 0u64;
    for trace_seed in 0u64..12 {
        let mut knobs = StdRng::seed_from_u64(0x40D3 ^ trace_seed);
        let prompt_lo = 1 + knobs.gen_range(0..4);
        let prompt_hi = prompt_lo + knobs.gen_range(0..8);
        let decode_hi = knobs.gen_range(0..6);
        let attn_spec = TraceSpec {
            sequences: 2 + knobs.gen_range(0..4),
            prompt: (prompt_lo, prompt_hi),
            decode: (0, decode_hi),
            dk: 1 + knobs.gen_range(0..6),
            arrival_gap: (0, knobs.gen_range(0..3) as u64),
            priority_classes: 1 + knobs.gen_range(0..3) as u8,
            seed: trace_seed.wrapping_mul(0x9E37_79B9) ^ 0xA77,
        };
        let model_spec = TraceSpec {
            sequences: 2 + knobs.gen_range(0..4),
            seed: attn_spec.seed ^ 0xD0DE,
            ..attn_spec
        };
        let max_total = prompt_hi + decode_hi;
        let page_size = 1 + knobs.gen_range(0..4);
        // Enough pages for the deepest single sequence (3 layers), tight
        // enough that a healthy share of traces preempt.
        let kv_pages = 3 * max_total.div_ceil(page_size) + knobs.gen_range(0..6);
        let config = ServeConfig {
            max_in_flight: 1 + knobs.gen_range(0..4),
            kv_pages,
            page_size,
            arrival_window: knobs.gen_range(0..3) as u64,
            prefill_chunk: 1 + knobs.gen_range(0..5),
            admission: if trace_seed % 4 == 3 {
                AdmissionMode::WorstCaseReserve
            } else {
                AdmissionMode::PagedUsage
            },
            // Alternate eviction modes: whole decoder stacks park and
            // resume through the arena as a unit.
            eviction: if trace_seed % 2 == 1 {
                EvictionMode::Swap
            } else {
                EvictionMode::Recompute
            },
            swap_bytes: usize::MAX,
        };
        let (mut scheduler, plans, models) = build_mixed_scheduler(2, config);
        let attn: Vec<TraceEvent<f64>> = generate_trace(&attn_spec, &plans);
        let model_trace: Vec<ModelTraceEvent<f64>> = generate_model_trace(&model_spec, &models);
        let bound = mixed_starvation_bound(&attn, &model_trace, &config);
        let completions = drive_mixed(&mut scheduler, &attn, &model_trace, bound);
        check_mixed_completions(&scheduler, &attn, &model_trace, &completions);
        assert!(scheduler.is_idle());
        assert_eq!(
            scheduler.kv_used_pages(),
            0,
            "trace {trace_seed}: every layer's pages released"
        );
        model_preempted += completions
            .iter()
            .filter(|c| c.target.model().is_some() && c.preemptions > 0)
            .count() as u64;
    }
    assert!(
        model_preempted > 0,
        "no model sequence preempted — tighten the page budgets"
    );
}

/// Deterministic multi-layer preempt-and-resume (the acceptance
/// scenario): two 3-layer sequences under a pool that can hold only one
/// of them at full length. The younger is evicted with all three layers'
/// caches retained, resumes after the elder drains, and both complete
/// bitwise equal to the sequential decoder-stack reference.
#[test]
fn preempted_multi_layer_sequences_resume_and_complete_bitwise() {
    let config = ServeConfig {
        max_in_flight: 2,
        kv_pages: 9,
        page_size: 2,
        arrival_window: 0,
        prefill_chunk: 2,
        admission: AdmissionMode::PagedUsage,
        eviction: EvictionMode::Recompute,
        swap_bytes: usize::MAX,
    };
    let (mut scheduler, _, models) = build_mixed_scheduler(2, config);
    let stacked = models[1].0;
    // Each sequence: 2-token prompt, 4 decode tokens → 3 pages/layer = 9
    // pages at completion; both admit on 3 pages total.
    let spec = TraceSpec {
        sequences: 2,
        prompt: (2, 2),
        decode: (4, 4),
        dk: 4,
        arrival_gap: (0, 0),
        priority_classes: 1,
        seed: 0xCAFE,
    };
    let model_trace: Vec<ModelTraceEvent<f64>> =
        generate_model_trace(&spec, &[(stacked, models[1].1)]);
    let bound = mixed_starvation_bound(&[], &model_trace, &config);
    let completions = drive_mixed(&mut scheduler, &[], &model_trace, bound);
    check_mixed_completions(&scheduler, &[], &model_trace, &completions);
    assert!(
        completions.iter().any(|c| c.preemptions > 0),
        "this workload must preempt a multi-layer sequence"
    );
    assert!(scheduler.preemption_events() >= 1);
    assert_eq!(scheduler.kv_used_pages(), 0);
}

/// The multi-layer preemption scenario under [`EvictionMode::Swap`]: the
/// victim's *whole decoder stack* (one cache per layer) parks in the
/// arena as a unit and re-adopts as a unit. Completions stay bitwise
/// equal to the sequential decoder-stack reference and identical to the
/// recompute run — all three layers' worth of bytes transit the arena.
#[test]
fn swapped_multi_layer_stacks_park_and_resume_as_a_unit() {
    let spec = TraceSpec {
        sequences: 2,
        prompt: (2, 2),
        decode: (4, 4),
        dk: 4,
        arrival_gap: (0, 0),
        priority_classes: 1,
        seed: 0xCAFE,
    };
    let mut runs = Vec::new();
    for eviction in [EvictionMode::Recompute, EvictionMode::Swap] {
        let config = ServeConfig {
            max_in_flight: 2,
            kv_pages: 9,
            page_size: 2,
            arrival_window: 0,
            prefill_chunk: 2,
            admission: AdmissionMode::PagedUsage,
            eviction,
            swap_bytes: usize::MAX,
        };
        let (mut scheduler, _, models) = build_mixed_scheduler(2, config);
        let stacked = models[1].0;
        let model_trace: Vec<ModelTraceEvent<f64>> =
            generate_model_trace(&spec, &[(stacked, models[1].1)]);
        let bound = mixed_starvation_bound(&[], &model_trace, &config);
        let completions = drive_mixed(&mut scheduler, &[], &model_trace, bound);
        check_mixed_completions(&scheduler, &[], &model_trace, &completions);
        assert!(
            completions.iter().any(|c| c.preemptions > 0),
            "{eviction:?}: this workload must preempt a multi-layer sequence"
        );
        if eviction == EvictionMode::Swap {
            // The victim is a 3-layer f64 stack: its park must move a
            // stack's worth of bytes, not a single layer's.
            assert!(
                scheduler.swap_peak_bytes() > 0,
                "swap mode must park the evicted stack"
            );
            assert_eq!(scheduler.swap_fallbacks(), 0);
            assert_eq!(scheduler.swap_parked_bytes(), 0, "drained ⇒ arena empty");
        }
        runs.push(completions);
    }
    let (recompute, swap) = (&runs[0], &runs[1]);
    assert_eq!(recompute.len(), swap.len());
    for (r, s) in recompute.iter().zip(swap) {
        assert_eq!(r.id, s.id);
        assert_eq!(
            r.completed,
            s.completed,
            "seq {}: completion tick differs",
            r.id.as_u64()
        );
        assert_eq!(r.preemptions, s.preemptions);
        assert_eq!(
            r.output,
            s.output,
            "seq {}: output differs across modes",
            r.id.as_u64()
        );
    }
}
