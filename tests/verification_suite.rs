//! The paper's verification protocol (Section V-A), end to end across
//! crates: every kernel vs the masked-SDP reference at L = 256, dk = 32,
//! uniform [0,1) inputs, `allclose(atol=1e-8, rtol=1e-5, equal_nan=true)`.

use graph_attention::core::{run_paper_verification, run_verification_at};
use graph_attention::parallel::ThreadPool;

#[test]
fn paper_protocol_all_kernels_pass() {
    let pool = ThreadPool::new(4);
    let records = run_paper_verification(&pool);
    assert!(!records.is_empty());
    let mut kernels_seen = std::collections::BTreeSet::new();
    for r in &records {
        kernels_seen.insert(r.kernel.clone());
        assert!(
            r.passed,
            "{} on {} failed the paper tolerance: max |Δ| = {:.3e}",
            r.kernel, r.mask, r.max_abs_diff
        );
    }
    // All six paper kernels plus the DIA extension must be covered.
    for kernel in [
        "COO",
        "CSR",
        "Local",
        "Dilated-1D",
        "Dilated-2D",
        "Global",
        "DIA",
    ] {
        assert!(kernels_seen.contains(kernel), "missing kernel {kernel}");
    }
}

#[test]
fn protocol_holds_at_other_shapes() {
    let pool = ThreadPool::new(2);
    for (l, dk, seed) in [(64, 8, 1u64), (128, 16, 2), (96, 48, 3)] {
        let records = run_verification_at(&pool, l, dk, seed);
        for r in records {
            assert!(
                r.passed,
                "L={l} dk={dk}: {} on {} failed (max |Δ| = {:.3e})",
                r.kernel, r.mask, r.max_abs_diff
            );
        }
    }
}
