//! Incremental decode: KV-cached autoregressive generation through the
//! engine's rectangular-geometry serving surface.
//!
//! The serving loop this example walks through:
//!
//! 1. **Chunked prefill** — the prompt's queries run as windows against
//!    the full prompt KV, one flattened launch, bitwise identical to the
//!    square forward over the prompt;
//! 2. **Per-token decode** — each generated token appends its K/V rows to
//!    a `KvCache` and computes a single decode row, reproducing the last
//!    row of the square forward over the tokens so far at `O(window · d)`
//!    cost instead of the naive `O(L · window · d)` recompute;
//! 3. **Multi-head decode** — the same loop through a full
//!    `MultiHeadAttention` layer (all heads batched per step);
//! 4. **KV-sharded decode** — the decode row merged across simulated
//!    devices via the `(O, l, m)` softmax-state reduction.
//!
//! ```text
//! cargo run --release --example incremental_decode [-- --quick]
//! ```

use graph_attention::core::{KvCache, MultiHeadAttention};
use graph_attention::distributed::kv_sharded_decode;
use graph_attention::prelude::*;
use graph_attention::tensor::init::gaussian_matrix;
use std::time::Instant;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let prompt = if quick { 256 } else { 4_096 };
    let generate = if quick { 16 } else { 128 };
    let dk = if quick { 16 } else { 64 };
    let window = if quick { 8 } else { 64 };
    let chunk = prompt / 4;
    let total = prompt + generate;

    let engine = AttentionEngine::new();
    println!(
        "engine: {} worker threads · prompt {prompt} + {generate} generated tokens, window {window}",
        engine.threads()
    );

    // One length-free plan serves the prefill chunks AND every decode step.
    let plan = engine
        .compile(&[AttentionKernel::Local { n: window }])
        .expect("window plan");
    let (q, k, v) = init::qkv::<f32>(total, dk, 42);

    // --- 1. Chunked prefill ----------------------------------------------
    let mut cache = KvCache::single(dk, dk);
    let t = Instant::now();
    let prefill_out = engine
        .prefill_chunked(
            &plan,
            &q.rows_slice(0, prompt),
            &k.rows_slice(0, prompt),
            &v.rows_slice(0, prompt),
            chunk,
            &mut cache,
        )
        .expect("prefill");
    let t_prefill = t.elapsed().as_secs_f64();
    let square = engine
        .run(
            &plan,
            &q.rows_slice(0, prompt),
            &k.rows_slice(0, prompt),
            &v.rows_slice(0, prompt),
        )
        .expect("square forward");
    println!(
        "prefill: {} chunks of ≤{chunk} rows in {:.4} s — bitwise equal to the square forward: {}",
        prompt.div_ceil(chunk),
        t_prefill,
        prefill_out == square
    );
    assert_eq!(prefill_out, square, "chunked prefill must be bitwise exact");

    // --- 2. Cached decode vs naive recompute ------------------------------
    let t = Instant::now();
    let mut last = Matrix::zeros(1, dk);
    for step in prompt..total {
        last = engine
            .decode_step(
                &plan,
                &q.rows_slice(step, step + 1),
                &k.rows_slice(step, step + 1),
                &v.rows_slice(step, step + 1),
                &mut cache,
            )
            .expect("decode step");
    }
    let t_cached = t.elapsed().as_secs_f64();

    // Naive baseline: recompute the full square forward per token and keep
    // its last row (what serving without a KV cache would pay).
    let t = Instant::now();
    let mut naive_last = Matrix::zeros(1, dk);
    for step in prompt..total {
        let full = engine
            .run(
                &plan,
                &q.rows_slice(0, step + 1),
                &k.rows_slice(0, step + 1),
                &v.rows_slice(0, step + 1),
            )
            .expect("naive forward");
        naive_last.row_mut(0).copy_from_slice(full.row(step));
    }
    let t_naive = t.elapsed().as_secs_f64();
    assert_eq!(
        last, naive_last,
        "cached decode must be bitwise the naive recompute's last row"
    );
    println!(
        "decode: {generate} tokens — cached {:.4} s ({:.0} tok/s) vs naive recompute {:.4} s ({:.0} tok/s): {:.1}× speedup, outputs bitwise equal",
        t_cached,
        generate as f64 / t_cached,
        t_naive,
        generate as f64 / t_naive,
        t_naive / t_cached
    );

    // --- 3. Multi-head decode ---------------------------------------------
    let heads = 4;
    let d_model = heads * dk;
    let layer: MultiHeadAttention<f32> = MultiHeadAttention::new_random(d_model, heads, dk, 7);
    let x = gaussian_matrix(total, d_model, 1.0, 11);
    let mut layer_cache = layer.new_cache();
    let _ = layer
        .forward_prefill(
            &engine,
            &plan,
            &mut layer_cache,
            &x.rows_slice(0, prompt),
            chunk,
        )
        .expect("layer prefill");
    let t = Instant::now();
    let mut layer_last = Matrix::zeros(1, d_model);
    for step in prompt..total {
        layer_last = layer
            .forward_decode(
                &engine,
                &plan,
                &mut layer_cache,
                &x.rows_slice(step, step + 1),
            )
            .expect("layer decode");
    }
    let t_layer = t.elapsed().as_secs_f64();
    let reference = layer
        .forward_on(&engine, &plan, &x)
        .expect("layer full forward");
    let exact = layer_last.row(0) == reference.row(total - 1);
    println!(
        "multi-head: {heads} heads × {generate} decode steps in {:.4} s ({:.0} tok/s) — last row matches the full forward: {exact}",
        t_layer,
        generate as f64 / t_layer
    );
    assert!(
        exact,
        "multi-head decode must match the full forward's last row"
    );

    // --- 4. KV-sharded decode ---------------------------------------------
    let shards = 4;
    let q_last = q.rows_slice(total - 1, total);
    let sharded = kv_sharded_decode(
        &engine,
        &AttentionKernel::Local { n: window },
        &q_last,
        &cache,
        shards,
    );
    let matches = paper_allclose(&sharded.cast::<f64>(), &last.cast::<f64>());
    println!(
        "sharded: decode row merged across {shards} simulated KV shards matches the cached row: {matches}"
    );
    assert!(matches, "shard-merged decode must match the cached decode");
}
