//! Distributed sparse attention, simulated: partition a Longformer mask
//! across devices, compare uniform vs degree-balanced partitioning, model
//! the communication traffic against a dense all-gather, and execute both
//! decompositions to show they are exact.
//!
//! This is the paper's Section VI-A future work ("distributed memory
//! versions … along with graph partitioning techniques to load balance")
//! built on the single-node substrate.
//!
//! ```text
//! cargo run --release --example distributed_simulation [-- --quick]
//! ```
//!
//! `--quick` shrinks the context for smoke tests.

use graph_attention::distributed::{
    analyze, kv_sharded_attention, row_distributed_attention, CommStats, RowPartition,
};
use graph_attention::prelude::*;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let l = if quick { 2_048 } else { 8_192 };
    let dk = 64;
    let devices = 8;
    let engine = AttentionEngine::new();

    // Longformer mask: window ±64 plus 4 global tokens — globally dense
    // rows are exactly what breaks naive sequence partitioning.
    let mask = longformer(l, 64, vec![0, 1, 2, 3]).to_csr();
    println!(
        "mask: {} edges (Sf = {:.4}), {} devices\n",
        mask.nnz(),
        mask.sparsity_factor(),
        devices
    );

    // --- Partitioning: uniform vs degree-balanced ------------------------
    let uniform = RowPartition::uniform(l, devices);
    let balanced = RowPartition::degree_balanced(&mask, devices);
    println!("load imbalance (max/mean edge load per device):");
    println!("  uniform contiguous : {:.3}", uniform.imbalance(&mask));
    println!("  degree-balanced    : {:.3}", balanced.imbalance(&mask));

    // --- Communication model ---------------------------------------------
    let elem_bytes = 2; // FP16 wire format
    let stats = analyze(&mask, &balanced, dk, elem_bytes);
    let all_gather = CommStats::all_gather_bytes(&balanced, dk, elem_bytes);
    println!("\ncommunication for one attention pass (K/V pulls, FP16):");
    println!(
        "  sparse mask traffic: {:.2} MiB",
        stats.total_bytes() as f64 / (1 << 20) as f64
    );
    println!(
        "  dense all-gather   : {:.2} MiB  ({:.1}x more)",
        all_gather as f64 / (1 << 20) as f64,
        all_gather as f64 / stats.total_bytes() as f64
    );
    let makespan = stats.makespan(dk, 5e9, 10e9); // 5 GFLOP/s/device, 10 GB/s links
    println!(
        "  modeled makespan   : {:.1} ms (5 GFLOP/s, 10 GB/s links)",
        makespan * 1e3
    );

    // --- Executed decompositions, verified exact --------------------------
    let (q, k, v) = init::qkv::<f32>(l, dk, 3);
    let plan = engine
        .compile(&[AttentionKernel::Csr(&mask)])
        .expect("mask plan");
    let single = engine.run(&plan, &q, &k, &v).unwrap();

    let by_rows = row_distributed_attention(&engine, &mask, &q, &k, &v, &balanced);
    println!(
        "\nrow-distributed result identical to single-device: {}",
        paper_allclose(&by_rows.cast::<f64>(), &single.cast::<f64>())
    );

    let by_shards = kv_sharded_attention(&engine, &mask, &q, &k, &v, devices);
    println!(
        "KV-sharded (ring-style) result identical:           {}",
        paper_allclose(&by_shards.cast::<f64>(), &single.cast::<f64>())
    );
    println!(
        "\nthe KV-shard merge uses the online-softmax state merge — the same rule\n\
         that makes the paper's sequential kernel composition exact (Fig. 6)."
    );
}
