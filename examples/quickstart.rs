//! Quickstart: sparse attention as a graph computation in ~40 lines.
//!
//! Builds a Longformer-style mask, runs the work-optimal CSR kernel, checks
//! the result against the dense masked-SDP reference, and shows how much
//! work sparsity saved.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use graph_attention::prelude::*;

fn main() {
    let l = 1024; // context length (tokens = graph vertices)
    let dk = 64; // embedding dimension

    // 1. A worker pool — the row-parallel execution substrate.
    let pool = ThreadPool::new(gpa_parallel::default_threads());

    // 2. The token graph: Longformer = sliding window ∪ global tokens.
    let mask = longformer(l, 16, vec![0, l / 2]);
    let csr = mask.to_csr();
    println!(
        "mask: {} edges over {}² cells  (sparsity factor {:.4})",
        csr.nnz(),
        l,
        csr.sparsity_factor()
    );

    // 3. Uniform [0,1) Q/K/V, as in the paper's verification setup.
    let (q, k, v) = init::qkv::<f32>(l, dk, 42);

    // 4. Graph-processing attention: one dot product per edge, nothing more.
    let counter = WorkCounter::new();
    let opts = KernelOptions::new().with_counter(&counter);
    let output = csr_attention(&pool, &csr, &q, &k, &v, &opts).expect("valid inputs");
    println!(
        "CSR kernel: {} dot products for {} edges  (work-optimal: {})",
        counter.dot_products(),
        csr.nnz(),
        counter.report().is_work_optimal(csr.nnz() as u64)
    );

    // 5. Verify against the dense masked-SDP reference (paper Sec. V-A).
    let reference = masked_sdp(&pool, &mask.to_dense(), &q, &k, &v, &KernelOptions::new())
        .expect("valid inputs");
    println!(
        "matches dense reference: {}  (max |Δ| = {:.2e})",
        paper_allclose(&output, &reference),
        output.max_abs_diff(&reference)
    );

    // 6. The point of it all: dense attention would have cost L² dots.
    let dense_work = (l * l) as f64;
    println!(
        "work saved vs dense attention: {:.1}×",
        dense_work / counter.dot_products() as f64
    );
}
