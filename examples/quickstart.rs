//! Quickstart: sparse attention as a graph computation in ~40 lines.
//!
//! Builds a Longformer-style mask, compiles it into an engine plan, runs
//! the work-optimal CSR kernel, checks the result against the dense
//! masked-SDP reference, and shows how much work sparsity saved.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use graph_attention::prelude::*;

fn main() {
    let l = 1024; // context length (tokens = graph vertices)
    let dk = 64; // embedding dimension

    // 1. The engine — worker pool + launch policy, and the front door to
    //    every kernel. Work counting is a builder switch.
    let engine = AttentionEngine::builder().count_work(true).build();

    // 2. The token graph: Longformer = sliding window ∪ global tokens.
    let mask = longformer(l, 16, vec![0, l / 2]);
    let csr = mask.to_csr();
    println!(
        "mask: {} edges over {}² cells  (sparsity factor {:.4})",
        csr.nnz(),
        l,
        csr.sparsity_factor()
    );

    // 3. Compile the kernel selection into a reusable plan — geometry
    //    validated here, once, not on every run.
    let plan = engine
        .compile(&[AttentionKernel::Csr(&csr)])
        .expect("valid plan");

    // 4. Uniform [0,1) Q/K/V, as in the paper's verification setup.
    let (q, k, v) = init::qkv::<f32>(l, dk, 42);

    // 5. Graph-processing attention: one dot product per edge, nothing more.
    let output = engine.run(&plan, &q, &k, &v).expect("valid inputs");
    let report = engine.work_report().expect("counting enabled");
    println!(
        "CSR kernel: {} dot products for {} edges  (work-optimal: {})",
        report.dot_products,
        csr.nnz(),
        report.is_work_optimal(csr.nnz() as u64)
    );

    // 6. Verify against the dense masked-SDP reference (paper Sec. V-A).
    let dense = DenseMask::from_csr(&csr);
    let sdp_plan = engine
        .compile(&[AttentionKernel::SdpMasked(&dense)])
        .expect("valid plan");
    let reference = engine.run(&sdp_plan, &q, &k, &v).expect("valid inputs");
    println!(
        "matches dense reference: {}  (max |Δ| = {:.2e})",
        paper_allclose(&output, &reference),
        output.max_abs_diff(&reference)
    );

    // 7. The point of it all: dense attention would have cost L² dots.
    let dense_work = (l * l) as f64;
    println!(
        "work saved vs dense attention: {:.1}×",
        dense_work / report.dot_products as f64
    );
}
