//! Batched serving: many concurrent Longformer-style requests through one
//! engine — the workload the `AttentionEngine` API exists for.
//!
//! A serving process holds one engine (one pool, one launch policy) and a
//! handful of compiled plans; requests arrive with ragged lengths and are
//! executed per batch in a **single** flattened launch, so short sequences
//! stop paying a full pool launch each. The example measures that win
//! directly (batched vs one-launch-per-request) and verifies the batched
//! outputs are element-exact against independent runs.
//!
//! ```text
//! cargo run --release --example batched_serving [-- --quick]
//! ```
//!
//! `--quick` shrinks the batch for smoke tests.

use graph_attention::prelude::*;
use std::time::Instant;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let n_requests = if quick { 8 } else { 32 };
    let base_len = if quick { 256 } else { 1_024 };
    let dk = 64;
    let window = 32;

    // One engine per process: pool + launch policy, built once.
    let engine = AttentionEngine::new();
    println!(
        "engine: {} worker threads, {n_requests} concurrent requests",
        engine.threads()
    );

    // --- Part 1: ragged batch through one implicit-window plan -----------
    // Implicit kernels pin no context length, so ONE compiled plan serves
    // every request length in the batch.
    let ragged_plan = engine
        .compile(&[AttentionKernel::Local { n: window }])
        .expect("window plan");
    let seqs: Vec<(Matrix<f32>, Matrix<f32>, Matrix<f32>)> = (0..n_requests)
        .map(|r| {
            // Ragged lengths: 1×..3× the base length, deterministic.
            let l = base_len + (r * 7919) % (2 * base_len);
            init::qkv(l, dk, 1000 + r as u64)
        })
        .collect();
    let requests: Vec<AttentionRequest<'_, f32>> = seqs
        .iter()
        .map(|(q, k, v)| AttentionRequest::new(q, k, v))
        .collect();
    let total_tokens: usize = requests.iter().map(|r| r.rows()).sum();
    println!(
        "ragged batch: {} requests, {} total tokens (lengths {}..{})",
        requests.len(),
        total_tokens,
        requests.iter().map(|r| r.rows()).min().unwrap(),
        requests.iter().map(|r| r.rows()).max().unwrap(),
    );

    let t = Instant::now();
    let batched = engine.run_batch(&ragged_plan, &requests).expect("batch");
    let t_batched = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let sequential: Vec<Matrix<f32>> = seqs
        .iter()
        .map(|(q, k, v)| engine.run(&ragged_plan, q, k, v).expect("single run"))
        .collect();
    let t_sequential = t.elapsed().as_secs_f64();

    let exact = batched.iter().zip(sequential.iter()).all(|(a, b)| a == b);
    println!("one batched launch:         {t_batched:.4} s");
    println!("{n_requests} sequential launches:     {t_sequential:.4} s");
    println!(
        "batching speedup: {:.2}×, outputs element-exact: {exact}",
        t_sequential / t_batched
    );
    assert!(exact, "batched execution must be element-exact");

    // --- Part 2: fixed-length Longformer plan shared across a batch ------
    // Global tokens pin the context length, so same-length requests (the
    // common padded-serving setup) share one Longformer composition plan.
    let l = 2 * base_len;
    let globals = GlobalSet::new(l, vec![0]);
    let longformer_plan = engine
        .compile(&[
            AttentionKernel::Local { n: window },
            AttentionKernel::Global {
                globals: &globals,
                n_sub: window,
            },
        ])
        .expect("Longformer plan");
    let docs: Vec<(Matrix<f32>, Matrix<f32>, Matrix<f32>)> = (0..n_requests)
        .map(|r| init::qkv(l, dk, 2000 + r as u64))
        .collect();
    let doc_requests: Vec<AttentionRequest<'_, f32>> = docs
        .iter()
        .map(|(q, k, v)| AttentionRequest::new(q, k, v))
        .collect();

    let t = Instant::now();
    let outs = engine
        .run_batch(&longformer_plan, &doc_requests)
        .expect("Longformer batch");
    let elapsed = t.elapsed().as_secs_f64();
    println!(
        "\n{} plan: {} docs × {l} tokens in {elapsed:.4} s ({:.0} tokens/s)",
        longformer_plan.describe(),
        outs.len(),
        (outs.len() * l) as f64 / elapsed
    );

    // Spot-check one request against the reference CSR union.
    let union = longformer(l, window, vec![0]).to_csr();
    let reference = engine
        .run_kernel(
            AttentionKernel::Csr(&union),
            &docs[0].0,
            &docs[0].1,
            &docs[0].2,
        )
        .expect("reference");
    let matches = paper_allclose(&outs[0].cast::<f64>(), &reference.cast::<f64>());
    println!("batched Longformer matches CSR-of-union reference: {matches}");
    assert!(
        matches,
        "composed-plan batch must match the union reference"
    );
}
