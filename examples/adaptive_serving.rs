//! Content-adaptive sparse serving: static and routed block-diagonal
//! attention mixed in one scheduler, with per-request pattern selection.
//!
//! The loop this example walks through:
//!
//! 1. **Register** four length-free plans — two static patterns (Local,
//!    Dilated) and two content-routed ones (a bare `Routed` kernel and a
//!    Local + Routed composition sharing one router spec);
//! 2. **Replay** a seeded trace whose requests either name a plan
//!    explicitly or submit as [`PatternChoice::Auto`], letting the
//!    scheduler rank the registered plans by estimated work for the
//!    prompt length and spend the pool's free-page headroom on the
//!    densest pattern it can afford;
//! 3. **Verify** every completion bitwise against the sequential
//!    one-sequence-at-a-time serve of its *resolved* plan, and report
//!    which patterns `Auto` actually picked under pressure.
//!
//! ```text
//! cargo run --release --example adaptive_serving [-- --quick]
//! ```

use graph_attention::prelude::*;
use graph_attention::serve::{generate_trace, sequential_reference, PlanId, TraceSpec};
use std::time::Instant;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let sequences = if quick { 12 } else { 48 };
    let prompt = if quick { (16, 64) } else { (128, 512) };
    let decode = if quick { (4, 12) } else { (32, 64) };
    let dk = if quick { 16 } else { 64 };
    let window = if quick { 8 } else { 32 };
    let groups = if quick { 2 } else { 4 };

    let page_size = 16usize;
    let config = ServeConfig {
        max_in_flight: 8,
        // A deliberately tight paged pool: Auto requests admitted while it
        // is full fall down the ranking to the sparser patterns, and
        // decode growth past the pool forces preemption.
        kv_pages: (3usize * (prompt.1 + decode.1)).div_ceil(page_size),
        page_size,
        arrival_window: 1,
        prefill_chunk: prompt.0 / 2,
        admission: AdmissionMode::PagedUsage,
        eviction: EvictionMode::Recompute,
        swap_bytes: usize::MAX,
    };
    let mut scheduler: Scheduler<'static, f32> =
        Scheduler::new(AttentionEngine::new(), config).expect("valid config");

    // Two static plans and two routed ones. The composed plan runs Local
    // and Routed as a pipeline; both routed plans hash tokens into groups
    // with the same deterministic router, so a token's group never depends
    // on batch shape, chunking, or thread count.
    let spec_seed = 0xB10C_u64;
    let named: Vec<(PlanId, &str)> = vec![
        (
            scheduler
                .register_plan(AttentionPlan::single(AttentionKernel::Local { n: window }).unwrap())
                .unwrap(),
            "Local",
        ),
        (
            scheduler
                .register_plan(
                    AttentionPlan::single(AttentionKernel::Dilated1d { w: window, r: 2 }).unwrap(),
                )
                .unwrap(),
            "Dilated",
        ),
        (
            scheduler
                .register_plan(
                    AttentionPlan::single(AttentionKernel::Routed {
                        groups,
                        seed: spec_seed,
                        causal: true,
                    })
                    .unwrap(),
                )
                .unwrap(),
            "Routed",
        ),
        (
            scheduler
                .register_plan(
                    AttentionPlan::new(&[
                        AttentionKernel::Local { n: window },
                        AttentionKernel::Routed {
                            groups,
                            seed: spec_seed,
                            causal: true,
                        },
                    ])
                    .unwrap(),
                )
                .unwrap(),
            "Local→Routed",
        ),
    ];
    println!(
        "plans: {} · pool {} pages × {} tokens · ≤{} in flight · chunk {}",
        named.iter().map(|(_, n)| *n).collect::<Vec<_>>().join(", "),
        config.kv_pages,
        config.page_size,
        config.max_in_flight,
        config.prefill_chunk
    );

    // Half the requests name a plan; the rest let admission decide.
    let mut patterns: Vec<PatternChoice> = named.iter().map(|&(p, _)| p.into()).collect();
    patterns.push(PatternChoice::Auto);
    let trace = generate_trace::<f32, _>(
        &TraceSpec {
            sequences,
            prompt,
            decode,
            dk,
            arrival_gap: (0, 2),
            priority_classes: 2,
            seed: 42,
        },
        &patterns,
    );
    let total_tokens: usize = trace.iter().map(|e| e.request.q.rows()).sum();
    let auto_submitted = trace
        .iter()
        .filter(|e| e.request.pattern == PatternChoice::Auto)
        .count();
    println!(
        "workload: {sequences} sequences ({auto_submitted} Auto), {total_tokens} tokens, prompts {prompt:?}, decode {decode:?}\n"
    );

    // --- 2. Replay: every tick, one batched launch per distinct plan ----
    let started = Instant::now();
    let mut completions = Vec::new();
    let mut next = 0usize;
    let mut launches = 0usize;
    let mut max_plans_in_tick = 0usize;
    while next < trace.len() || !scheduler.is_idle() {
        while next < trace.len() && trace[next].at <= scheduler.now() {
            scheduler
                .submit(trace[next].request.clone())
                .expect("valid request");
            next += 1;
        }
        let report = scheduler.tick().expect("healthy workload");
        launches += report.launches;
        max_plans_in_tick = max_plans_in_tick.max(report.launches);
        completions.extend(report.completed);
    }
    let t_adaptive = started.elapsed().as_secs_f64();
    println!(
        "adaptive: {} sequences in {} ticks / {launches} launches — {:.4} s, {:.0} tok/s",
        completions.len(),
        scheduler.now(),
        t_adaptive,
        total_tokens as f64 / t_adaptive
    );
    println!(
        "          up to {max_plans_in_tick} plans batched in one tick · {} preemption events",
        scheduler.preemption_events()
    );

    // Where did the Auto requests land? Count resolved plans.
    let mut resolved = vec![0usize; named.len()];
    for c in &completions {
        let original = &trace[c.id.as_u64() as usize].request.pattern;
        if *original == PatternChoice::Auto {
            let plan = c.target.plan().expect("plan workload");
            let slot = named.iter().position(|&(p, _)| p == plan).unwrap();
            resolved[slot] += 1;
        }
    }
    let summary: Vec<String> = named
        .iter()
        .zip(&resolved)
        .filter(|&(_, &n)| n > 0)
        .map(|(&(_, name), &n)| format!("{n}× {name}"))
        .collect();
    println!(
        "          Auto resolved under pool pressure: {}",
        summary.join(", ")
    );

    // --- 3. Bitwise check against the sequential serve ------------------
    let mut checked = 0usize;
    for c in &completions {
        let plan = c.target.plan().expect("plan workload");
        let expect = sequential_reference(
            scheduler.engine(),
            scheduler.plan(plan),
            &trace[c.id.as_u64() as usize].request,
            config.prefill_chunk,
        )
        .expect("reference serves");
        assert_eq!(
            c.output, expect,
            "adaptive batching must be bitwise the sequential serve"
        );
        checked += 1;
    }
    println!(
        "\nall {checked} outputs bitwise equal to the per-plan sequential reference · routing adapted the pattern, not one bit of the math"
    );
}
