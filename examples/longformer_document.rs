//! Long-document inference with a Longformer-style multi-head layer.
//!
//! The scenario from the paper's introduction: a document far beyond a
//! dense-attention budget, processed with local + global sparse attention.
//! A full multi-head attention sub-layer (projections → per-head graph
//! kernels → output projection) runs over a synthetic 16k-token document
//! through one [`AttentionEngine`] — all heads batched into a single
//! launch — and the same layer with dense FlashAttention provides the
//! runtime comparison.
//!
//! ```text
//! cargo run --release --example longformer_document [-- --quick]
//! ```
//!
//! `--quick` shrinks the document for smoke tests.

use graph_attention::prelude::*;
use std::time::Instant;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let l = if quick { 2_048 } else { 16_384 }; // document length in tokens
    let d_model = 128;
    let heads = 4;
    let dk = 32;
    let window = 64; // local context per direction
    let engine = AttentionEngine::new();

    // Synthetic token embeddings (a real pipeline would come from an
    // embedding table; Gaussian activations exercise the same code path).
    let x: Matrix<f32> = init::gaussian_matrix(l, d_model, 1.0, 7);

    // One attention sub-layer with Xavier-initialized projections.
    let layer: MultiHeadAttention<f32> = MultiHeadAttention::new_random(d_model, heads, dk, 3);

    // Longformer attention: CLS token global, sliding window elsewhere —
    // composed from the implicit kernels, so no mask is materialized.
    let globals = GlobalSet::new(l, vec![0]);

    println!("document: {l} tokens, layer: {heads} heads × dk {dk}, window ±{window}");

    // Plans compile once; the layer (and any number of future requests)
    // reuse them.
    let local_plan = engine
        .compile(&[AttentionKernel::Local { n: window }])
        .expect("local plan");
    let t = Instant::now();
    let sparse_out = layer
        .forward_on(&engine, &local_plan, &x)
        .expect("sparse forward");
    let local_time = t.elapsed().as_secs_f64();
    println!("local-window forward:       {local_time:.3} s");

    // Composition: window + global CLS token (exact Longformer semantics
    // requires a shared softmax state — the compiled plan chains both
    // kernels per row inside one launch).
    let longformer_plan = engine
        .compile(&[
            AttentionKernel::Local { n: window },
            AttentionKernel::Global {
                globals: &globals,
                n_sub: window,
            },
        ])
        .expect("Longformer plan");
    let (q, k, v) = init::qkv::<f32>(l, dk, 11);
    let t = Instant::now();
    let composed = engine
        .run(&longformer_plan, &q, &k, &v)
        .expect("composition");
    println!(
        "single-head {}:   {:.3} s ({} output rows)",
        longformer_plan.describe(),
        t.elapsed().as_secs_f64(),
        composed.rows()
    );

    // Dense baseline on the same layer for the speed comparison.
    let flash_plan = engine
        .compile(&[AttentionKernel::Flash])
        .expect("flash plan");
    let t = Instant::now();
    let dense_out = layer
        .forward_on(&engine, &flash_plan, &x)
        .expect("dense forward");
    let dense_time = t.elapsed().as_secs_f64();
    println!("dense FlashAttention layer: {dense_time:.3} s");

    println!(
        "\nsparse layer speedup: {:.1}×  (outputs differ by design: different mask)",
        dense_time / local_time
    );
    assert_eq!(sparse_out.shape(), dense_out.shape());

    // Work accounting: what the window actually saved.
    let sparse_edges = LocalWindow::new(l, window).nnz() as f64;
    let dense_edges = (l as f64) * (l as f64);
    println!(
        "attention edges: {:.2e} sparse vs {:.2e} dense ({:.0}× fewer)",
        sparse_edges,
        dense_edges,
        dense_edges / sparse_edges
    );
}
