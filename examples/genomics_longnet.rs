//! Ultra-long genomic sequence modeling with the LongNet dilation ladder —
//! the application domain that motivates the paper ("for applications such
//! as genomics, at least 4-5 orders of magnitude of increase in context
//! length is needed", Section I).
//!
//! A synthetic DNA sequence of one million nucleotides is embedded and run
//! through the implicit local kernel at the LongNet sparsity schedule
//! `Sf = 2730/L`; the capacity model then reports how far the same
//! algorithms scale on the paper's A100.
//!
//! ```text
//! cargo run --release --example genomics_longnet [-- --quick]
//! ```
//!
//! `--quick` shrinks the sequence for smoke tests.

use graph_attention::memmodel::{
    max_context_length, Accounting, DType, MemAlgorithm, MemConfig, A100_80GB,
};
use graph_attention::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Synthetic nucleotide string (A/C/G/T) of length `n`.
fn synthetic_dna(n: usize, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| b"ACGT"[rng.gen_range(0..4)]).collect()
}

/// Embed each base as a learned-ish 16-dim vector: one-hot mixed with a
/// positional ramp, standing in for a nucleotide embedding table.
fn embed(dna: &[u8], dk: usize) -> Matrix<f32> {
    Matrix::from_fn(dna.len(), dk, |i, j| {
        let base = match dna[i] {
            b'A' => 0usize,
            b'C' => 1,
            b'G' => 2,
            _ => 3,
        };
        let one_hot = if j % 4 == base { 1.0 } else { 0.0 };
        let pos = ((i as f32 * 0.001).sin() + 1.0) * 0.05;
        one_hot * 0.9 + pos
    })
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let l = if quick { 65_536 } else { 1_000_000 }; // one megabase (or a slice of it)
    let dk = 16;
    let engine = AttentionEngine::new();

    println!("generating {l}-nucleotide synthetic sequence…");
    let dna = synthetic_dna(l, 1234);
    let embedded = embed(&dna, dk);

    // LongNet schedule: Sf = 2730/L → window from the sparsity solver.
    let sf = gpa_masks::longnet_sparsity_factor(l);
    let window = gpa_masks::local_window_for_sparsity(l, sf);
    println!("LongNet schedule: Sf = {sf:.2e} → local window ±{window}");

    // The ladder itself, for reference.
    let ladder = LongNetPattern::with_defaults(l);
    println!(
        "LongNet dilation ladder: {:?} (segment, dilation) levels",
        ladder.configs()
    );

    // Single-head attention over the megabase (Q = K = V = embeddings),
    // through a compiled implicit-local plan — nothing materialized.
    let plan = engine
        .compile(&[AttentionKernel::Local { n: window }])
        .expect("LongNet plan");
    let t = Instant::now();
    let out = engine
        .run(&plan, &embedded, &embedded, &embedded)
        .expect("megabase attention");
    let secs = t.elapsed().as_secs_f64();
    println!(
        "attention over {l} tokens: {secs:.2} s on the CPU substrate ({} × {} output)",
        out.rows(),
        out.cols()
    );
    let edges = LocalWindow::new(l, window).nnz() as f64;
    println!(
        "work: {:.2e} edges vs {:.0e} dense — {:.0}× saved",
        edges,
        (l as f64) * (l as f64),
        (l as f64) * (l as f64) / edges
    );

    // How far does this go on the paper's hardware? (Fig. 4 / Table II.)
    println!(
        "\ncapacity on one {} (FP16, dk = 64, Sf = 1e-4):",
        A100_80GB.name
    );
    for algo in [
        MemAlgorithm::SdpMasked,
        MemAlgorithm::Csr,
        MemAlgorithm::Local,
    ] {
        let cfg = MemConfig {
            algo,
            dtype: DType::F16,
            d_total: 64,
            heads: 1,
            sf: 1e-4,
            accounting: Accounting::PaperCalibrated,
        };
        let max_l = max_context_length(&A100_80GB, &cfg).unwrap();
        println!("  {:<24} max L = {max_l:>12}", algo.label());
    }
    println!(
        "\nthe implicit kernels reach the paper's 160 M-token headline; 32 such\n\
         GPUs at 25% memory headroom cover the 1-billion-token genomics target\n\
         (paper Section VI-B)."
    );
}
