//! Continuous-batching serving: many concurrent sequences through one
//! scheduler-owned engine, mixed prefill and decode in every launch.
//!
//! The loop this example walks through:
//!
//! 1. **Build** a `Scheduler` owning an `AttentionEngine`, with an
//!    explicit admission policy: max in-flight sequences, a paged KV
//!    pool (admission charged on current page usage, preemption under
//!    pressure), an arrival-batching window, and a prefill chunk size;
//! 2. **Replay** a seeded workload trace (mixed prompt lengths, decode
//!    lengths, two priority classes, two kernels) on the virtual clock —
//!    every tick flattens all runnable prefill chunks and decode rows
//!    into one batched launch per plan;
//! 3. **Verify** every completed sequence bitwise against the naive
//!    one-sequence-at-a-time serve, and compare wall time.
//!
//! ```text
//! cargo run --release --example continuous_serving [-- --quick]
//! ```

use graph_attention::prelude::*;
use graph_attention::serve::{generate_trace, sequential_reference, TraceSpec};
use std::time::Instant;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let sequences = if quick { 12 } else { 48 };
    let prompt = if quick { (16, 64) } else { (128, 512) };
    let decode = if quick { (4, 12) } else { (32, 64) };
    let dk = if quick { 16 } else { 64 };
    let window = if quick { 8 } else { 32 };

    let page_size = 16usize;
    let config = ServeConfig {
        max_in_flight: 8,
        // A pool sized well below 8 × worst-case length: paged admission
        // packs by current usage and preempts if decode growth outruns it.
        kv_pages: (4usize * (prompt.1 + decode.1)).div_ceil(page_size),
        page_size,
        arrival_window: 1,
        prefill_chunk: prompt.0 / 2,
        admission: AdmissionMode::PagedUsage,
        eviction: EvictionMode::Recompute,
        swap_bytes: usize::MAX,
    };
    let mut scheduler: Scheduler<'static, f32> =
        Scheduler::new(AttentionEngine::new(), config).expect("valid config");
    println!(
        "scheduler: {} worker threads · ≤{} in flight · {} pages × {} tokens KV pool · chunk {}",
        scheduler.engine().threads(),
        config.max_in_flight,
        config.kv_pages,
        config.page_size,
        config.prefill_chunk
    );

    // Two length-free plans; each request names one — per-plan queues,
    // one batched launch per plan per tick.
    let plans = vec![
        scheduler
            .register_plan(AttentionPlan::single(AttentionKernel::Local { n: window }).unwrap())
            .unwrap(),
        scheduler
            .register_plan(
                AttentionPlan::single(AttentionKernel::Dilated1d { w: window, r: 2 }).unwrap(),
            )
            .unwrap(),
    ];

    let trace = generate_trace::<f32, _>(
        &TraceSpec {
            sequences,
            prompt,
            decode,
            dk,
            arrival_gap: (0, 2),
            priority_classes: 2,
            seed: 42,
        },
        &plans,
    );
    let total_tokens: usize = trace.iter().map(|e| e.request.q.rows()).sum();
    println!(
        "workload: {sequences} sequences, {total_tokens} tokens, prompts {prompt:?}, decode {decode:?}, 2 priority classes\n"
    );

    // --- 2. Replay on the virtual clock, one batched launch per tick ----
    let started = Instant::now();
    let mut completions = Vec::new();
    let mut next = 0usize;
    let mut peak_in_flight = 0usize;
    let mut peak_pages = 0usize;
    let mut launches = 0usize;
    let mut rows = 0usize;
    while next < trace.len() || !scheduler.is_idle() {
        while next < trace.len() && trace[next].at <= scheduler.now() {
            scheduler
                .submit(trace[next].request.clone())
                .expect("valid request");
            next += 1;
        }
        let report = scheduler.tick().expect("healthy workload");
        peak_in_flight = peak_in_flight.max(scheduler.in_flight_len());
        peak_pages = peak_pages.max(scheduler.kv_used_pages());
        launches += report.launches;
        rows += report.rows_computed;
        completions.extend(report.completed);
    }
    let t_continuous = started.elapsed().as_secs_f64();
    let ticks = scheduler.now();
    let mut latencies: Vec<u64> = completions.iter().map(|c| c.latency_ticks()).collect();
    latencies.sort_unstable();
    println!(
        "continuous: {} sequences in {ticks} ticks / {launches} launches ({rows} rows) — {:.4} s, {:.0} tok/s",
        completions.len(),
        t_continuous,
        total_tokens as f64 / t_continuous
    );
    println!(
        "            peak {} sequences in flight · latency p50 {} / p99 {} ticks",
        peak_in_flight,
        latencies[latencies.len() / 2],
        latencies[(latencies.len() * 99).div_ceil(100) - 1]
    );
    println!(
        "            page pool: peak {peak_pages}/{} pages mapped · {} preemption events · {} free at drain",
        scheduler.kv_total_pages(),
        scheduler.preemption_events(),
        scheduler.kv_free_pages()
    );

    // --- 3. The naive baseline: one sequence at a time ------------------
    let started = Instant::now();
    let mut checked = 0usize;
    for c in &completions {
        let plan = c.target.plan().expect("a plan-only workload");
        let expect = sequential_reference(
            scheduler.engine(),
            scheduler.plan(plan),
            &trace[c.id.as_u64() as usize].request,
            config.prefill_chunk,
        )
        .expect("reference serves");
        assert_eq!(
            c.output, expect,
            "continuous batching must be bitwise the sequential serve"
        );
        checked += 1;
    }
    let t_sequential = started.elapsed().as_secs_f64();
    println!(
        "sequential: same {checked} sequences one at a time — {:.4} s, {:.0} tok/s",
        t_sequential,
        total_tokens as f64 / t_sequential
    );
    println!(
        "\nall {checked} outputs bitwise equal to the sequential reference · batching changed the schedule, not one bit"
    );
}
