//! Attention over an *arbitrary* graph — the "graph computing view" in its
//! most literal form.
//!
//! The paper's kernels are work-optimal "over arbitrary attention masks";
//! this example builds a mask that is not any standard pattern: a synthetic
//! molecule-like graph (a backbone chain with random long-range contacts,
//! like residue contact maps in protein modeling), compiles it into an
//! engine plan, and confirms both correctness and work-optimality.
//!
//! ```text
//! cargo run --release --example custom_graph_mask [-- --quick]
//! ```
//!
//! `--quick` shrinks the graph for smoke tests.

use graph_attention::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A chain-plus-contacts graph: each node linked to its chain neighbors,
/// plus `contacts` random symmetric long-range edges, plus self-loops.
fn contact_graph(n: usize, contacts: usize, seed: u64) -> CsrMask {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for i in 0..n {
        edges.push((i, i)); // self-loop: every token attends to itself
        if i + 1 < n {
            edges.push((i, i + 1)); // chain forward
            edges.push((i + 1, i)); // chain backward
        }
    }
    for _ in 0..contacts {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        edges.push((a, b));
        edges.push((b, a)); // symmetric contact
    }
    CsrMask::from_coo(&CooMask::from_entries(n, n, edges).expect("valid edges"))
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let n = if quick { 1_024 } else { 4_096 }; // residues / tokens / graph vertices
    let dk = 32;
    let engine = AttentionEngine::builder().count_work(true).build();

    let graph = contact_graph(n, 3 * n, 99);
    println!(
        "contact graph: {} vertices, {} directed edges (Sf = {:.4})",
        n,
        graph.nnz(),
        graph.sparsity_factor()
    );
    let stats = graph_attention::sparse::degree_stats(&graph);
    println!(
        "degrees: min {}, mean {:.1}, max {} (imbalance {:.2})",
        stats.min, stats.mean, stats.max, stats.imbalance
    );

    // Node features as Q/K/V.
    let (q, k, v) = init::qkv::<f32>(n, dk, 5);

    // Work-optimal attention over the arbitrary graph.
    let csr_plan = engine
        .compile(&[AttentionKernel::Csr(&graph)])
        .expect("graph plan");
    let out = engine
        .run(&csr_plan, &q, &k, &v)
        .expect("attention over graph");
    let report = engine.work_report().expect("counting enabled");
    println!(
        "CSR kernel: {} dot products == {} edges → work optimal: {}",
        report.dot_products,
        graph.nnz(),
        report.is_work_optimal(graph.nnz() as u64)
    );

    // The same graph runs through the COO format too (binary search).
    let coo = graph.to_coo();
    let coo_plan = engine
        .compile(&[AttentionKernel::Coo(&coo, CooSearch::Binary)])
        .expect("COO plan");
    let out_coo = engine.run(&coo_plan, &q, &k, &v).expect("COO run");
    println!(
        "COO (binary search) agrees with CSR: {}",
        paper_allclose(&out_coo.cast::<f64>(), &out.cast::<f64>())
    );

    // Verify against the dense reference on a subsample (full dense check
    // at 4096 is cheap enough too).
    let dense = DenseMask::from_csr(&graph);
    let reference = engine
        .run_kernel(AttentionKernel::SdpMasked(&dense), &q, &k, &v)
        .expect("reference");
    println!(
        "matches dense masked-SDP reference: {} (max |Δ| = {:.2e})",
        paper_allclose(&out, &reference),
        out.max_abs_diff(&reference)
    );
}
