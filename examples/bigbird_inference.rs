//! BigBird-style classification inference: all three mask components
//! (local + global + random) composed three ways, with identical outputs —
//! the Fig. 6 scenario as an application. Each approach is one compiled
//! engine plan; the composition runs as a single launch with all three
//! kernels chained per row.
//!
//! ```text
//! cargo run --release --example bigbird_inference [-- --quick]
//! ```
//!
//! `--quick` shrinks the context for smoke tests.

use graph_attention::prelude::*;
use std::time::Instant;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let l = if quick { 2_048 } else { 8_192 };
    let dk = 64;
    let window = 50; // paper Fig. 6: local size 50 per direction
    let random_sf = 0.001; // paper Fig. 6: random sparsity
    let engine = AttentionEngine::new();

    // Three designated global tokens (e.g. [CLS] plus two separators).
    let globals = GlobalSet::new(l, vec![0, l / 2, l - 1]);
    let gi: Vec<usize> = globals.indices().iter().map(|&g| g as usize).collect();

    let (q, k, v) = init::qkv::<f32>(l, dk, 21);

    // Mask as one union (for SDP and single-CSR runs).
    let union = bigbird(l, window, gi, random_sf, 0xB16B).to_csr();
    println!(
        "BigBird mask: {} edges (Sf = {:.5})",
        union.nnz(),
        union.sparsity_factor()
    );

    // Approach 1: dense masked SDP (the PyTorch way).
    let dense = DenseMask::from_csr(&union);
    let sdp_plan = engine
        .compile(&[AttentionKernel::SdpMasked(&dense)])
        .expect("SDP plan");
    let t = Instant::now();
    let via_sdp = engine.run(&sdp_plan, &q, &k, &v).unwrap();
    let t_sdp = t.elapsed().as_secs_f64();

    // Approach 2: one work-optimal CSR call.
    let csr_plan = engine
        .compile(&[AttentionKernel::Csr(&union)])
        .expect("CSR plan");
    let t = Instant::now();
    let via_csr = engine.run(&csr_plan, &q, &k, &v).unwrap();
    let t_csr = t.elapsed().as_secs_f64();

    // Approach 3: sequential kernel composition — implicit local and
    // global kernels plus a CSR step for the random remainder, compiled
    // into one plan.
    let covered = LocalWindow::new(l, window)
        .to_csr()
        .union(&graph_attention::masks::GlobalMinusLocal::new(globals.clone(), window).to_csr());
    let random_rest = graph_attention::masks::RandomUniform::new(l, random_sf, 0xB16B)
        .to_csr()
        .difference(&covered);
    let composed_plan = engine
        .compile(&[
            AttentionKernel::Local { n: window },
            AttentionKernel::Global {
                globals: &globals,
                n_sub: window,
            },
            AttentionKernel::Csr(&random_rest),
        ])
        .expect("composition plan");
    let t = Instant::now();
    let via_composed = engine.run(&composed_plan, &q, &k, &v).unwrap();
    let t_comp = t.elapsed().as_secs_f64();

    println!("SDP (masked):        {t_sdp:.3} s");
    println!(
        "CSR (single call):   {t_csr:.3} s  ({:.1}× vs SDP)",
        t_sdp / t_csr
    );
    println!(
        "{:<20} {t_comp:.3} s  ({:.1}× vs SDP)",
        format!("{}:", composed_plan.describe()),
        t_sdp / t_comp
    );

    // All three compute the same attention (paper: "outputs of each
    // approach were deemed identical").
    println!(
        "outputs identical: CSR≍SDP {}, composed≍CSR {}",
        paper_allclose(&via_csr.cast::<f64>(), &via_sdp.cast::<f64>()),
        paper_allclose(&via_composed.cast::<f64>(), &via_csr.cast::<f64>()),
    );

    // A classification head would pool the [CLS] row:
    let cls = via_csr.row(0);
    let score: f32 = cls.iter().sum::<f32>() / cls.len() as f32;
    println!("[CLS] mean activation (demo classifier input): {score:.4}");
}
