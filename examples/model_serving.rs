//! Decoder-stack serving: a 12-layer Full/Sparse model with per-layer
//! paged KV caches, served by the continuous-batching scheduler under
//! page pressure.
//!
//! The loop this example walks through:
//!
//! 1. **Compile** a `DecoderModel` from the bookend pattern
//!    `FFFSSSSSSFFF` — full local attention in the first and last three
//!    layers, dilated sparse attention in the middle six — and register
//!    it with a `Scheduler`;
//! 2. **Replay** a seeded model workload on the virtual clock. Every
//!    sequence holds one KV cache *per layer* (12 × its page bill), the
//!    pool is sized well below the workload's worst case, and every tick
//!    advances all sequences through all 12 layers in one launch per
//!    layer — preempting whole stacks (all 12 caches retained and
//!    re-adopted) when decode growth outruns the free list;
//! 3. **Verify** every completion bitwise against the naive
//!    one-sequence-at-a-time decoder-stack serve.
//!
//! ```text
//! cargo run --release --example model_serving [-- --quick]
//! ```

use graph_attention::prelude::*;
use graph_attention::serve::{generate_model_trace, sequential_model_reference, TraceSpec};
use std::time::Instant;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let sequences = if quick { 6 } else { 24 };
    let prompt: (usize, usize) = if quick { (8, 24) } else { (64, 192) };
    let decode: (usize, usize) = if quick { (4, 10) } else { (16, 48) };
    let (heads, dk) = if quick { (2, 8) } else { (4, 16) };
    let d_model = heads * dk;
    let window = if quick { 4 } else { 16 };

    // The paper's bookend arrangement: full attention where locality
    // matters most (early feature mixing, late readout), sparse dilated
    // attention through the middle where the context is long.
    let pattern = LayerPattern::parse("FFFSSSSSSFFF").expect("valid pattern");
    let model = DecoderModel::new(
        pattern.clone(),
        vec![
            (
                'F',
                AttentionPlan::single(AttentionKernel::Local { n: window }).unwrap(),
            ),
            (
                'S',
                AttentionPlan::single(AttentionKernel::Dilated1d { w: window, r: 2 }).unwrap(),
            ),
        ],
        d_model,
        heads,
        dk,
        0xB00C,
    )
    .expect("composable plans");
    let layers = model.layers();
    println!("model: {layers} layers ({pattern}) · d_model {d_model} · {heads} heads × dk {dk}");

    // Page arithmetic: a sequence of `total` tokens holds
    // `layers × ceil(total / page_size)` pages at completion. Size the
    // pool at roughly 3 sequences' worst case — well below the
    // workload's — so paged admission packs by usage and preemption
    // fires under decode growth.
    let page_size = 8usize;
    let worst = layers * (prompt.1 + decode.1).div_ceil(page_size);
    let config = ServeConfig {
        max_in_flight: 6,
        kv_pages: 3 * worst,
        page_size,
        arrival_window: 1,
        prefill_chunk: prompt.0 / 2,
        admission: AdmissionMode::PagedUsage,
        eviction: EvictionMode::Recompute,
        swap_bytes: usize::MAX,
    };
    let mut scheduler: Scheduler<'static, f32> =
        Scheduler::new(AttentionEngine::new(), config).expect("valid config");
    let model_id = scheduler.register_model(model);
    println!(
        "scheduler: {} worker threads · ≤{} in flight · {} pages × {} tokens KV pool · chunk {}",
        scheduler.engine().threads(),
        config.max_in_flight,
        config.kv_pages,
        config.page_size,
        config.prefill_chunk
    );
    println!(
        "page bill: a {}-token sequence holds {} pages ({} per layer × {layers} layers)\n",
        prompt.1 + decode.1,
        worst,
        (prompt.1 + decode.1).div_ceil(page_size),
    );

    let trace = generate_model_trace::<f32>(
        &TraceSpec {
            sequences,
            prompt,
            decode,
            dk,
            arrival_gap: (0, 2),
            priority_classes: 2,
            seed: 42,
        },
        &[(model_id, d_model)],
    );
    let total_tokens: usize = trace.iter().map(|e| e.request.x.rows()).sum();
    println!(
        "workload: {sequences} sequences, {total_tokens} tokens, prompts {prompt:?}, decode {decode:?}, 2 priority classes\n"
    );

    // --- Replay on the virtual clock, one launch per layer per tick -----
    let started = Instant::now();
    let mut completions = Vec::new();
    let mut next = 0usize;
    let mut peak_in_flight = 0usize;
    let mut peak_pages = 0usize;
    let mut launches = 0usize;
    let mut rows = 0usize;
    while next < trace.len() || !scheduler.is_idle() {
        while next < trace.len() && trace[next].at <= scheduler.now() {
            scheduler
                .submit_model(trace[next].request.clone())
                .expect("valid request");
            next += 1;
        }
        let report = scheduler.tick().expect("healthy workload");
        peak_in_flight = peak_in_flight.max(scheduler.in_flight_len());
        peak_pages = peak_pages.max(scheduler.kv_used_pages());
        launches += report.launches;
        rows += report.rows_computed;
        completions.extend(report.completed);
    }
    let t_continuous = started.elapsed().as_secs_f64();
    let ticks = scheduler.now();
    let mut latencies: Vec<u64> = completions.iter().map(|c| c.latency_ticks()).collect();
    latencies.sort_unstable();
    println!(
        "continuous: {} sequences in {ticks} ticks / {launches} layer launches ({rows} rows) — {:.4} s, {:.0} tok/s",
        completions.len(),
        t_continuous,
        total_tokens as f64 / t_continuous
    );
    println!(
        "            peak {} stacks in flight · latency p50 {} / p99 {} ticks",
        peak_in_flight,
        latencies[latencies.len() / 2],
        latencies[(latencies.len() * 99).div_ceil(100) - 1]
    );
    println!(
        "            page pool: peak {peak_pages}/{} pages mapped · {} preemption events · {} free at drain",
        scheduler.kv_total_pages(),
        scheduler.preemption_events(),
        scheduler.kv_free_pages()
    );

    // --- The naive baseline: one stack at a time ------------------------
    let started = Instant::now();
    let mut checked = 0usize;
    let mut preempted = 0usize;
    for c in &completions {
        let model = c.target.model().expect("a model-only workload");
        let expect = sequential_model_reference(
            scheduler.engine(),
            scheduler.model(model),
            &trace[c.id.as_u64() as usize].request,
            config.prefill_chunk,
        )
        .expect("reference serves");
        assert_eq!(
            c.output, expect,
            "batched stack serving must be bitwise the sequential serve"
        );
        checked += 1;
        preempted += usize::from(c.preemptions > 0);
    }
    let t_sequential = started.elapsed().as_secs_f64();
    println!(
        "sequential: same {checked} stacks one at a time — {:.4} s, {:.0} tok/s",
        t_sequential,
        total_tokens as f64 / t_sequential
    );
    println!(
        "\nall {checked} outputs bitwise equal to the sequential reference ({preempted} preempted-and-resumed with every layer's cache retained) · batching changed the schedule, not one bit"
    );
}
