#![warn(missing_docs)]
//! # graph-attention
//!
//! Facade crate for the graph-processing sparse attention library — a Rust
//! reproduction of *"Longer Attention Span: Increasing Transformer Context
//! Length with Sparse Graph Processing Techniques"* (IPDPS 2025).
//!
//! ## Architecture
//!
//! ```text
//!            ┌────────────────────────────────────────────┐
//!            │ gpa-core: graph attention kernels           │
//!            │  COO · CSR · Local · Dilated-1D/2D · Global │
//!            │  + masked-SDP & Flash baselines, multi-head │
//!            └───────┬──────────────┬───────────┬─────────┘
//!         ┌──────────┴───┐  ┌───────┴────┐  ┌───┴────────────┐
//!         │ gpa-masks    │  │ gpa-sparse │  │ gpa-parallel   │
//!         │ patterns,    │  │ COO/CSR/   │  │ thread pool,   │
//!         │ presets,     │  │ bitmask    │  │ grid schedule, │
//!         │ Sf solvers   │  │            │  │ work counters  │
//!         └──────┬───────┘  └──────┬─────┘  └───┬────────────┘
//!                └───────┬────────┴─────────────┘
//!                   ┌────┴──────┐   ┌──────────────┐
//!                   │ gpa-tensor│   │ gpa-memmodel │ (capacity model,
//!                   │ Matrix,f16│   │ Fig. 4/Tab. II)│  independent)
//!                   └───────────┘   └──────────────┘
//! ```
//!
//! The quickest way in is the [`prelude`]; `examples/quickstart.rs` is the
//! same flow at full size, `examples/batched_serving.rs` shows the batched
//! serving loop, and `examples/continuous_serving.rs` drives the
//! continuous-batching scheduler ([`serve`]) over a seeded workload trace.
//!
//! ## Quickstart
//!
//! Build an [`core::AttentionEngine`] (the single front door to every
//! kernel), compile a Longformer-style mask into a reusable plan, run the
//! work-optimal CSR kernel — over one sequence and over a batch — and
//! check the result against the dense masked-SDP reference:
//!
//! ```
//! use graph_attention::prelude::*;
//!
//! let engine = AttentionEngine::with_threads(2);
//! let (l, dk) = (64, 8);
//!
//! // Sliding window ∪ global tokens, materialized as CSR and compiled
//! // into a plan: geometry is validated once, here, not per launch.
//! let mask = longformer(l, 4, vec![0]).to_csr();
//! let plan = engine.compile(&[AttentionKernel::Csr(&mask)]).unwrap();
//!
//! // Seeded uniform [0, 1) Q/K/V, as in the paper's verification setup.
//! let (q, k, v) = init::qkv::<f64>(l, dk, 42);
//!
//! // One dot product per mask edge — "true sparsity".
//! let out = engine.run(&plan, &q, &k, &v).unwrap();
//! assert_eq!(out.shape(), (l, dk));
//!
//! // The same plan serves whole batches in a single flattened launch,
//! // element-exact with the per-sequence runs.
//! let (q2, k2, v2) = init::qkv::<f64>(l, dk, 43);
//! let outs = engine
//!     .run_batch(
//!         &plan,
//!         &[AttentionRequest::new(&q, &k, &v), AttentionRequest::new(&q2, &k2, &v2)],
//!     )
//!     .unwrap();
//! assert_eq!(outs[0], out);
//!
//! // The graph kernel matches the dense masked-SDP baseline.
//! let dense = DenseMask::from_csr(&mask);
//! let reference = engine
//!     .run_kernel(AttentionKernel::SdpMasked(&dense), &q, &k, &v)
//!     .unwrap();
//! assert!(paper_allclose(&out, &reference));
//!
//! // Serving geometry: chunked prefill fills a KV cache (bitwise equal to
//! // the square forward for any chunk split), then each generated token
//! // decodes as a single cached row — the last row of the square forward
//! // over everything so far.
//! let window_plan = engine.compile(&[AttentionKernel::Local { n: 4 }]).unwrap();
//! let mut cache = KvCache::single(dk, dk);
//! let prefill = engine
//!     .prefill_chunked(&window_plan, &q, &k, &v, 16, &mut cache)
//!     .unwrap();
//! assert_eq!(prefill, engine.run(&window_plan, &q, &k, &v).unwrap());
//!
//! let (q_t, k_t, v_t) = init::qkv::<f64>(1, dk, 99);
//! let token_out = engine
//!     .decode_step(&window_plan, &q_t, &k_t, &v_t, &mut cache)
//!     .unwrap();
//! assert_eq!(token_out.shape(), (1, dk));
//! assert_eq!(cache.len(), l + 1);
//! ```
//!
//! The pre-engine free functions (`csr_attention(&pool, …)` and friends)
//! remain available as the low-level per-kernel API.

pub use gpa_core as core;
pub use gpa_distributed as distributed;
pub use gpa_masks as masks;
pub use gpa_memmodel as memmodel;
pub use gpa_model as model;
pub use gpa_parallel as parallel;
pub use gpa_serve as serve;
pub use gpa_sparse as sparse;
pub use gpa_tensor as tensor;

/// Common imports for applications built on graph-processing attention.
pub mod prelude {
    pub use gpa_core::{
        csr_attention, flash_attention, local_attention, masked_sdp, pattern_attention,
        run_composed, AttentionEngine, AttentionEngineBuilder, AttentionKernel, AttentionPlan,
        AttentionRequest, AttentionState, CooSearch, Geometry, KernelOptions, KvCache,
        MultiHeadAttention, RoutedSpec, Router, Routing,
    };
    pub use gpa_masks::{bigbird, longformer, GlobalSet, LocalWindow, LongNetPattern, MaskPattern};
    pub use gpa_model::{DecoderModel, LayerPattern, ModelKvState};
    pub use gpa_parallel::{Schedule, ThreadPool, WorkCounter};
    pub use gpa_serve::{
        AdmissionMode, EvictionMode, ModelRequest, PatternChoice, Scheduler, ServeConfig,
        ServeRequest, ServeTarget,
    };
    pub use gpa_sparse::{CooMask, CsrMask, DenseMask};
    pub use gpa_tensor::{init, paper_allclose, Matrix, Real};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_names_resolve() {
        use crate::prelude::*;
        let engine = AttentionEngine::with_threads(1);
        let (q, k, v) = init::qkv::<f32>(8, 4, 0);
        let mask = LocalWindow::new(8, 1).to_csr();
        let plan = engine.compile(&[AttentionKernel::Csr(&mask)]).unwrap();
        let out = engine.run(&plan, &q, &k, &v).unwrap();
        assert_eq!(out.shape(), (8, 4));
        // The legacy free-function surface stays available.
        let legacy =
            csr_attention(engine.pool(), &mask, &q, &k, &v, &KernelOptions::new()).unwrap();
        assert_eq!(out, legacy);
    }
}
