#![warn(missing_docs)]
//! # gpa-parallel — row-parallel execution substrate
//!
//! The paper runs its kernels as CUDA grids: one block per attention row,
//! shared-memory online softmax inside each block. This crate is the CPU
//! stand-in for that substrate (see DESIGN.md §1 for the substitution
//! argument):
//!
//! - [`ThreadPool`]: persistent work-stealing workers — submitted jobs land
//!   in a lock-free injector, each worker owns a Chase–Lev deque, and idle
//!   workers steal from randomized victims with spin/yield backoff before
//!   parking — so repeated kernel launches pay neither thread-spawn cost
//!   nor queue-lock contention ([`PoolMetrics`] counts the traffic);
//! - [`parallel_for()`] / [`parallel_for_stats`]: scoped row-parallel launch
//!   with selectable [`Schedule`] (static-contiguous, CUDA-like
//!   block-cyclic, or dynamic range stealing) and per-worker busy-time
//!   statistics for the load-imbalance analyses of Section V-C;
//! - [`RowWriter`] / [`CellWriter`]: disjoint-row mutable access to shared
//!   output buffers without per-element atomics;
//! - [`RaggedSpace`]: flattened (sequence, row) index spaces, so a batch of
//!   ragged-length sequences runs as one launch instead of one per sequence;
//! - [`WorkCounter`] / [`LocalTally`]: operation counting that backs the
//!   paper's work-optimality claim (Section IV-B).

pub mod metrics;
pub mod parallel_for;
pub mod pool;
pub mod ragged;
pub mod shared;

pub use metrics::{LocalTally, PoolMetrics, PoolReport, WorkCounter, WorkReport};
pub use parallel_for::{
    for_each_index, parallel_for, parallel_for_stats, spin_work, time_best, LaunchStats, Schedule,
};
pub use pool::{default_threads, global_pool, on_worker_thread, ThreadPool};
pub use ragged::RaggedSpace;
pub use shared::{CellWriter, RowWriter};
