//! Work-counting instrumentation for the work-optimality claims.
//!
//! Section IV-B argues the graph kernels are *work optimal*: they perform
//! exactly `O(Sf·L²·d)` operations — one query–key dot product per non-zero
//! of the attention mask, and nothing else. [`WorkCounter`] lets the
//! instrumented kernel variants prove that empirically: tests assert
//! `dot_products == nnz(mask)` for every kernel and mask.
//!
//! Counting is designed to stay off the hot path: workers accumulate into a
//! local `u64` and flush once per block via [`WorkCounter::add_dot_products`].
//!
//! [`PoolMetrics`] plays the same role for the work-stealing substrate
//! itself: every counter is a relaxed `AtomicU64`, so observing the pool
//! (steals, parks, injector traffic) never serializes the lock-free
//! submit/steal paths it measures.

use std::sync::atomic::{AtomicU64, Ordering};

/// Cross-thread tally of the operations a kernel performed.
#[derive(Debug, Default)]
pub struct WorkCounter {
    dot_products: AtomicU64,
    output_updates: AtomicU64,
    neighbor_searches: AtomicU64,
}

impl WorkCounter {
    /// Fresh counter with all tallies at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `n` query–key dot products (one per mask non-zero).
    #[inline]
    pub fn add_dot_products(&self, n: u64) {
        self.dot_products.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` output-accumulator updates.
    #[inline]
    pub fn add_output_updates(&self, n: u64) {
        self.output_updates.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` elements scanned while locating row bounds — the COO
    /// kernel's search overhead (Section V-C's explanation of COO's cost).
    #[inline]
    pub fn add_neighbor_searches(&self, n: u64) {
        self.neighbor_searches.fetch_add(n, Ordering::Relaxed);
    }

    /// Total dot products so far.
    pub fn dot_products(&self) -> u64 {
        self.dot_products.load(Ordering::Relaxed)
    }

    /// Total output updates so far.
    pub fn output_updates(&self) -> u64 {
        self.output_updates.load(Ordering::Relaxed)
    }

    /// Total search steps so far.
    pub fn neighbor_searches(&self) -> u64 {
        self.neighbor_searches.load(Ordering::Relaxed)
    }

    /// Reset all tallies.
    pub fn reset(&self) {
        self.dot_products.store(0, Ordering::Relaxed);
        self.output_updates.store(0, Ordering::Relaxed);
        self.neighbor_searches.store(0, Ordering::Relaxed);
    }

    /// Snapshot of all tallies.
    pub fn report(&self) -> WorkReport {
        WorkReport {
            dot_products: self.dot_products(),
            output_updates: self.output_updates(),
            neighbor_searches: self.neighbor_searches(),
        }
    }
}

/// Immutable snapshot of a [`WorkCounter`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkReport {
    /// Query–key dot products performed.
    pub dot_products: u64,
    /// Output accumulator updates performed.
    pub output_updates: u64,
    /// Elements scanned during row-bound searches (COO only).
    pub neighbor_searches: u64,
}

impl WorkReport {
    /// The work-optimality check of Section IV-B: a kernel is work optimal
    /// on a mask with `nnz` non-zeros iff it performed exactly `nnz` dot
    /// products.
    pub fn is_work_optimal(&self, nnz: u64) -> bool {
        self.dot_products == nnz
    }
}

/// Relaxed atomic counters for the work-stealing pool: injector traffic,
/// steal attempts/successes, parks, range steals, and jobs executed.
///
/// Updates are single relaxed RMWs — no ordering, no locks — so enabling
/// metrics costs nothing on the paths being measured. Relaxed counters
/// still sum exactly: `fetch_add` is atomic regardless of ordering, so no
/// increment is ever lost (only *observation* of in-flight increments is
/// unordered). [`PoolMetrics::report`] takes a snapshot.
#[derive(Debug, Default)]
pub struct PoolMetrics {
    jobs_executed: AtomicU64,
    injector_pushes: AtomicU64,
    injector_pops: AtomicU64,
    steal_attempts: AtomicU64,
    steals: AtomicU64,
    range_steals: AtomicU64,
    parks: AtomicU64,
}

impl PoolMetrics {
    /// Fresh counters, all zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count one executed job.
    #[inline]
    pub fn count_job(&self) {
        self.jobs_executed.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one job pushed into the injector.
    #[inline]
    pub fn count_injector_push(&self) {
        self.injector_pushes.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one successful injector batch-steal.
    #[inline]
    pub fn count_injector_pop(&self) {
        self.injector_pops.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one steal probe against a victim deque.
    #[inline]
    pub fn count_steal_attempt(&self) {
        self.steal_attempts.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one successful steal from a victim deque.
    #[inline]
    pub fn count_steal(&self) {
        self.steals.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one `Schedule::Dynamic` range span stolen from a sibling.
    #[inline]
    pub fn count_range_steal(&self) {
        self.range_steals.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one worker parking on the Condvar.
    #[inline]
    pub fn count_park(&self) {
        self.parks.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of all counters.
    pub fn report(&self) -> PoolReport {
        PoolReport {
            jobs_executed: self.jobs_executed.load(Ordering::Relaxed),
            injector_pushes: self.injector_pushes.load(Ordering::Relaxed),
            injector_pops: self.injector_pops.load(Ordering::Relaxed),
            steal_attempts: self.steal_attempts.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            range_steals: self.range_steals.load(Ordering::Relaxed),
            parks: self.parks.load(Ordering::Relaxed),
        }
    }
}

/// Immutable snapshot of a [`PoolMetrics`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolReport {
    /// Jobs executed by workers.
    pub jobs_executed: u64,
    /// Jobs pushed into the global injector.
    pub injector_pushes: u64,
    /// Successful batch-steals from the injector.
    pub injector_pops: u64,
    /// Steal probes against victim deques (successful or not).
    pub steal_attempts: u64,
    /// Successful steals from victim deques.
    pub steals: u64,
    /// `Schedule::Dynamic` range spans stolen from siblings.
    pub range_steals: u64,
    /// Times a worker parked on the wakeup Condvar.
    pub parks: u64,
}

/// Per-worker local tally that flushes into a shared [`WorkCounter`] on
/// drop — one atomic RMW per block instead of per dot product.
pub struct LocalTally<'a> {
    counter: &'a WorkCounter,
    dot_products: u64,
    output_updates: u64,
    neighbor_searches: u64,
}

impl<'a> LocalTally<'a> {
    /// Start a local tally against `counter`.
    pub fn new(counter: &'a WorkCounter) -> Self {
        LocalTally {
            counter,
            dot_products: 0,
            output_updates: 0,
            neighbor_searches: 0,
        }
    }

    /// Count one dot product.
    #[inline(always)]
    pub fn dot(&mut self) {
        self.dot_products += 1;
    }

    /// Count one output update.
    #[inline(always)]
    pub fn update(&mut self) {
        self.output_updates += 1;
    }

    /// Count `n` output updates at once — for blocked inner loops that
    /// fold several value rows per sweep (e.g. the SDP baseline's
    /// score·V accumulation).
    #[inline(always)]
    pub fn updated(&mut self, n: u64) {
        self.output_updates += n;
    }

    /// Count `n` search steps.
    #[inline(always)]
    pub fn searched(&mut self, n: u64) {
        self.neighbor_searches += n;
    }
}

impl Drop for LocalTally<'_> {
    fn drop(&mut self) {
        if self.dot_products > 0 {
            self.counter.add_dot_products(self.dot_products);
        }
        if self.output_updates > 0 {
            self.counter.add_output_updates(self.output_updates);
        }
        if self.neighbor_searches > 0 {
            self.counter.add_neighbor_searches(self.neighbor_searches);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel_for::{parallel_for, Schedule};
    use crate::pool::ThreadPool;

    #[test]
    fn tallies_accumulate_and_reset() {
        let c = WorkCounter::new();
        c.add_dot_products(10);
        c.add_dot_products(5);
        c.add_output_updates(3);
        c.add_neighbor_searches(7);
        assert_eq!(c.dot_products(), 15);
        assert_eq!(c.output_updates(), 3);
        assert_eq!(c.neighbor_searches(), 7);
        let r = c.report();
        assert_eq!(r.dot_products, 15);
        assert!(r.is_work_optimal(15));
        assert!(!r.is_work_optimal(14));
        c.reset();
        assert_eq!(c.report().dot_products, 0);
    }

    #[test]
    fn local_tally_flushes_on_drop() {
        let c = WorkCounter::new();
        {
            let mut t = LocalTally::new(&c);
            for _ in 0..42 {
                t.dot();
            }
            t.update();
            t.searched(9);
            assert_eq!(c.dot_products(), 0, "not flushed until drop");
        }
        assert_eq!(c.dot_products(), 42);
        assert_eq!(c.output_updates(), 1);
        assert_eq!(c.neighbor_searches(), 9);
    }

    #[test]
    fn concurrent_tallies_do_not_lose_counts() {
        let pool = ThreadPool::new(8);
        let c = WorkCounter::new();
        let n = 10_000usize;
        parallel_for(&pool, n, Schedule::Dynamic { grain: 64 }, |range| {
            let mut t = LocalTally::new(&c);
            for _ in range {
                t.dot();
                t.update();
            }
        });
        assert_eq!(c.dot_products(), n as u64);
        assert_eq!(c.output_updates(), n as u64);
    }

    #[test]
    fn pool_metrics_sum_consistently_across_threads() {
        // Relaxed ordering must not lose increments: 8 raw threads hammer
        // every counter concurrently and the totals must be exact.
        let m = std::sync::Arc::new(PoolMetrics::new());
        let per = 50_000u64;
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let m = std::sync::Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..per {
                        m.count_job();
                        m.count_steal_attempt();
                        m.count_steal();
                        m.count_range_steal();
                        m.count_injector_push();
                        m.count_injector_pop();
                        m.count_park();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let r = m.report();
        let want = 8 * per;
        assert_eq!(r.jobs_executed, want);
        assert_eq!(r.steal_attempts, want);
        assert_eq!(r.steals, want);
        assert_eq!(r.range_steals, want);
        assert_eq!(r.injector_pushes, want);
        assert_eq!(r.injector_pops, want);
        assert_eq!(r.parks, want);
    }

    #[test]
    fn pool_metrics_account_for_a_real_launch() {
        // The pool's own accounting must balance: every injector push is
        // eventually popped (batch-steals count once per batch, so pops ≤
        // pushes), and every submitted job executes exactly once.
        let pool = ThreadPool::new(4);
        for _ in 0..16 {
            parallel_for(&pool, 512, Schedule::Dynamic { grain: 8 }, |range| {
                std::hint::black_box(range.len());
            });
        }
        let r = pool.metrics().report();
        assert_eq!(r.jobs_executed, r.injector_pushes);
        assert!(r.injector_pops <= r.injector_pushes);
        assert!(r.injector_pops > 0);
    }
}
