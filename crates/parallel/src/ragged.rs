//! Flattened (segment, row) index spaces for batched launches.
//!
//! A batched attention launch runs many sequences of different lengths in
//! *one* `parallel_for` over the concatenated row space, so short sequences
//! stop paying a full pool launch each. [`RaggedSpace`] is the address
//! translation for that flattening: it concatenates per-segment lengths
//! into a single `0..total` index space and maps global ranges back to
//! `(segment, local row range)` pieces, splitting at segment boundaries.
//!
//! The translation is defined for *every* global sub-range, not just the
//! blocks a fixed schedule would produce — which is what lets
//! `Schedule::Dynamic` carve the flat space into stealable spans whose
//! boundaries move at runtime: however a steal splits the space,
//! [`RaggedSpace::for_each_segment`] resolves the pieces to the same
//! `(segment, rows)` work items.

use std::ops::Range;

/// Concatenation of variable-length segments into one flat index space.
///
/// Segment `s` of length `len_of(s)` occupies the half-open global range
/// `segment_range(s)`; the whole space is `0..total()`.
#[derive(Clone, Debug)]
pub struct RaggedSpace {
    /// `offsets[s]..offsets[s + 1]` is segment `s`'s global range.
    offsets: Vec<usize>,
}

impl RaggedSpace {
    /// Build from per-segment lengths (zero-length segments are allowed —
    /// they simply occupy no indices).
    pub fn new<I: IntoIterator<Item = usize>>(lens: I) -> Self {
        let mut offsets = vec![0usize];
        for len in lens {
            let last = *offsets.last().expect("offsets never empty");
            offsets.push(last + len);
        }
        RaggedSpace { offsets }
    }

    /// Total number of flat indices (sum of segment lengths).
    pub fn total(&self) -> usize {
        *self.offsets.last().expect("offsets never empty")
    }

    /// Number of segments.
    pub fn segments(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Length of segment `s`.
    pub fn len_of(&self, s: usize) -> usize {
        self.offsets[s + 1] - self.offsets[s]
    }

    /// Global index range occupied by segment `s`.
    pub fn segment_range(&self, s: usize) -> Range<usize> {
        self.offsets[s]..self.offsets[s + 1]
    }

    /// Map a global index to `(segment, local index)`.
    ///
    /// # Panics
    /// Panics if `global >= total()`.
    pub fn locate(&self, global: usize) -> (usize, usize) {
        assert!(
            global < self.total(),
            "index {global} out of ragged space of {}",
            self.total()
        );
        // partition_point: count of offsets <= global; offsets[0] = 0 is
        // always <= global, so the result is >= 1 and s is its predecessor.
        let s = self.offsets.partition_point(|&o| o <= global) - 1;
        (s, global - self.offsets[s])
    }

    /// Split a global range into `(segment, local range)` pieces, in
    /// ascending order. Empty segments inside the range are skipped; an
    /// empty input range invokes `f` zero times.
    pub fn for_each_segment(&self, range: Range<usize>, mut f: impl FnMut(usize, Range<usize>)) {
        if range.start >= range.end {
            return;
        }
        let (mut s, _) = self.locate(range.start);
        while s < self.segments() && self.offsets[s] < range.end {
            let seg = self.segment_range(s);
            let lo = seg.start.max(range.start);
            let hi = seg.end.min(range.end);
            if lo < hi {
                f(s, (lo - seg.start)..(hi - seg.start));
            }
            s += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_and_lengths() {
        let space = RaggedSpace::new([3usize, 0, 5, 2]);
        assert_eq!(space.total(), 10);
        assert_eq!(space.segments(), 4);
        assert_eq!(space.len_of(0), 3);
        assert_eq!(space.len_of(1), 0);
        assert_eq!(space.segment_range(2), 3..8);
    }

    #[test]
    fn locate_every_index() {
        let lens = [3usize, 0, 5, 2];
        let space = RaggedSpace::new(lens);
        let mut expected = Vec::new();
        for (s, &len) in lens.iter().enumerate() {
            for i in 0..len {
                expected.push((s, i));
            }
        }
        for (g, &want) in expected.iter().enumerate() {
            assert_eq!(space.locate(g), want, "global {g}");
        }
    }

    #[test]
    #[should_panic(expected = "out of ragged space")]
    fn locate_rejects_out_of_range() {
        RaggedSpace::new([2usize]).locate(2);
    }

    #[test]
    fn segment_splitting_covers_any_range_exactly_once() {
        let lens = [4usize, 1, 0, 7, 3];
        let space = RaggedSpace::new(lens);
        let total = space.total();
        for lo in 0..=total {
            for hi in lo..=total {
                let mut seen = vec![0usize; total];
                let mut last_segment = None;
                space.for_each_segment(lo..hi, |s, local| {
                    assert!(!local.is_empty(), "empty piece for segment {s}");
                    // Pieces arrive in ascending segment order.
                    if let Some(prev) = last_segment {
                        assert!(s > prev);
                    }
                    last_segment = Some(s);
                    for i in local {
                        seen[space.segment_range(s).start + i] += 1;
                    }
                });
                for (g, &hits) in seen.iter().enumerate() {
                    let want = usize::from(g >= lo && g < hi);
                    assert_eq!(hits, want, "range {lo}..{hi}, global {g}");
                }
            }
        }
    }

    #[test]
    fn empty_space_is_inert() {
        let space = RaggedSpace::new(std::iter::empty());
        assert_eq!(space.total(), 0);
        assert_eq!(space.segments(), 0);
        space.for_each_segment(0..0, |_, _| panic!("no segments to visit"));
    }

    #[test]
    fn all_zero_segments() {
        let space = RaggedSpace::new([0usize, 0, 0]);
        assert_eq!(space.total(), 0);
        assert_eq!(space.segments(), 3);
        space.for_each_segment(0..0, |_, _| panic!("nothing to visit"));
    }
}
