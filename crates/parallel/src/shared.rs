//! Disjoint shared-memory access for row-parallel kernels.
//!
//! Every attention kernel writes row `i` of the output matrix from exactly
//! one block (the paper's shared-memory CUDA model). [`RowWriter`] gives
//! workers mutable access to *disjoint* rows of one borrowed buffer without
//! per-element atomics; disjointness is guaranteed by the launch schedule
//! (each index in `0..n` is dispatched to exactly one block — tested in
//! `parallel_for`).

use std::cell::UnsafeCell;
use std::marker::PhantomData;

/// Mutable row-sliced view over a borrowed buffer, shareable across the
/// workers of one parallel launch.
///
/// `RowWriter` hands out `&mut [T]` row slices through a shared reference.
/// It is sound if and only if no two concurrent `row_mut` calls target the
/// same row — which the `parallel_for` schedules guarantee by construction
/// (disjoint ranges). The unsafety is confined to `row_mut`; everything
/// else is ordinary borrowing.
pub struct RowWriter<'a, T> {
    data: *const UnsafeCell<T>,
    rows: usize,
    row_len: usize,
    _borrow: PhantomData<&'a mut [T]>,
}

// SAFETY: RowWriter only allows access to the underlying buffer via
// `row_mut`, whose contract requires callers to access disjoint rows.
// Transferring the view across threads is therefore as safe as
// transferring `&mut [T]` split into disjoint chunks.
unsafe impl<T: Send> Send for RowWriter<'_, T> {}
unsafe impl<T: Send> Sync for RowWriter<'_, T> {}

impl<'a, T> RowWriter<'a, T> {
    /// View `buffer` as `rows` rows of `row_len` elements.
    ///
    /// # Panics
    /// Panics if `buffer.len() != rows * row_len`.
    pub fn new(buffer: &'a mut [T], rows: usize, row_len: usize) -> Self {
        assert_eq!(
            buffer.len(),
            rows * row_len,
            "buffer length {} != {rows} rows × {row_len}",
            buffer.len()
        );
        RowWriter {
            data: buffer.as_mut_ptr() as *const UnsafeCell<T>,
            rows,
            row_len,
            _borrow: PhantomData,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Elements per row.
    pub fn row_len(&self) -> usize {
        self.row_len
    }

    /// Mutable access to row `i`.
    ///
    /// # Safety
    /// No other `row_mut(i)` borrow for the same `i` may be live anywhere
    /// (including on other threads). The row-parallel launch schedules
    /// satisfy this: each row index is dispatched to exactly one block.
    #[allow(clippy::mut_from_ref)]
    #[inline(always)]
    pub unsafe fn row_mut(&self, i: usize) -> &mut [T] {
        assert!(i < self.rows, "row {i} out of {} rows", self.rows);
        // SAFETY (deref): `data` points into a live `&'a mut [T]` of exactly
        // rows×row_len elements (checked in `new`), so the offset is in
        // bounds. Uniqueness of the &mut is the caller's contract above.
        unsafe {
            let start = self.data.add(i * self.row_len) as *mut T;
            std::slice::from_raw_parts_mut(start, self.row_len)
        }
    }
}

/// A set of per-row scalar cells (`l` and `m` statistics vectors in
/// Algorithm 1) with the same disjoint-row contract as [`RowWriter`].
pub struct CellWriter<'a, T> {
    inner: RowWriter<'a, T>,
}

impl<'a, T> CellWriter<'a, T> {
    /// View `buffer` as one cell per row.
    pub fn new(buffer: &'a mut [T]) -> Self {
        let rows = buffer.len();
        CellWriter {
            inner: RowWriter::new(buffer, rows, 1),
        }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.inner.rows()
    }

    /// True when there are no cells.
    pub fn is_empty(&self) -> bool {
        self.inner.rows() == 0
    }

    /// Mutable access to cell `i`.
    ///
    /// # Safety
    /// Same contract as [`RowWriter::row_mut`]: cell `i` must not be
    /// concurrently accessed.
    #[allow(clippy::mut_from_ref)]
    #[inline(always)]
    pub unsafe fn cell_mut(&self, i: usize) -> &mut T {
        // SAFETY: forwarded contract.
        unsafe { &mut self.inner.row_mut(i)[0] }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel_for::{parallel_for, Schedule};
    use crate::pool::ThreadPool;

    #[test]
    fn rows_are_independent() {
        let mut buf = vec![0u64; 8 * 4];
        {
            let writer = RowWriter::new(&mut buf, 8, 4);
            // Serial use: write each row once.
            for i in 0..8 {
                let row = unsafe { writer.row_mut(i) };
                for (j, v) in row.iter_mut().enumerate() {
                    *v = (i * 10 + j) as u64;
                }
            }
        }
        assert_eq!(buf[0..4], [0, 1, 2, 3]);
        assert_eq!(buf[28..32], [70, 71, 72, 73]);
    }

    #[test]
    fn parallel_disjoint_writes_are_complete() {
        let pool = ThreadPool::new(4);
        let n = 512;
        let d = 8;
        let mut buf = vec![0u64; n * d];
        {
            let writer = RowWriter::new(&mut buf, n, d);
            parallel_for(&pool, n, Schedule::cuda_like(), |range| {
                for i in range {
                    // SAFETY: `parallel_for` dispatches each row exactly once.
                    let row = unsafe { writer.row_mut(i) };
                    for (j, v) in row.iter_mut().enumerate() {
                        *v = (i * d + j) as u64;
                    }
                }
            });
        }
        for (idx, v) in buf.iter().enumerate() {
            assert_eq!(*v, idx as u64);
        }
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn out_of_range_row_panics() {
        let mut buf = vec![0u8; 4];
        let writer = RowWriter::new(&mut buf, 2, 2);
        let _ = unsafe { writer.row_mut(2) };
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn shape_mismatch_panics() {
        let mut buf = vec![0u8; 5];
        let _ = RowWriter::new(&mut buf, 2, 2);
    }

    #[test]
    fn cell_writer_covers_all_cells() {
        let pool = ThreadPool::new(4);
        let mut stats = vec![0.0f64; 300];
        {
            let cells = CellWriter::new(&mut stats);
            assert_eq!(cells.len(), 300);
            assert!(!cells.is_empty());
            parallel_for(&pool, 300, Schedule::Dynamic { grain: 7 }, |range| {
                for i in range {
                    // SAFETY: disjoint dispatch per index.
                    unsafe { *cells.cell_mut(i) = i as f64 * 0.5 };
                }
            });
        }
        for (i, v) in stats.iter().enumerate() {
            assert_eq!(*v, i as f64 * 0.5);
        }
    }
}
