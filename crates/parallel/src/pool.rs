//! Persistent work-stealing worker pool.
//!
//! The attention kernels launch thousands of short row-parallel regions
//! (10 warm-up + 15 timed iterations per configuration in the paper's
//! protocol), and per-token decode serves one tiny launch per tick — so
//! both thread-spawn cost *and* per-launch queue overhead must stay off
//! the hot path. Workers are kept alive for the process lifetime and fed
//! through a lock-free substrate (`shims/crossbeam`'s `deque` module):
//!
//! - submitted jobs land in a shared lock-free [`Injector`];
//! - each worker owns a Chase–Lev deque; idle workers first drain a batch
//!   from the injector onto their own deque, then steal from randomly
//!   chosen victims, then back off (spin → yield) before parking on a
//!   Condvar. The submit fast path never takes a lock — it only notifies
//!   when the sleeper count (an atomic mirror) says someone is parked.
//! - [`CountLatch`] completion signalling is an atomic countdown; its
//!   Condvar is touched only for the final park/unpark.
//!
//! Every steal/park/injector event is tallied into relaxed
//! [`PoolMetrics`] counters (see [`crate::metrics`]), so instrumentation
//! does not serialize the lock-free path.
//!
//! Scoped (non-`'static`) parallel regions are built on top in
//! [`mod@crate::parallel_for`]; this module only provides the raw `'static`
//! job execution and the completion latch.

use crate::metrics::PoolMetrics;
use crossbeam::deque::{Injector, Steal, Stealer, Worker as Deque};
use parking_lot::{Condvar, Mutex};
use std::cell::Cell;
use std::sync::atomic::{fence, AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Capacity of each worker's local deque. Batches pulled from the
/// injector are bounded well below this, so overflow back to the
/// injector is a cold path.
const LOCAL_QUEUE_CAP: usize = 256;
/// Capacity of the shared injector ring. A launch enqueues at most one
/// job per worker, so worst-case occupancy is a few concurrent launches.
const INJECTOR_CAP: usize = 4096;
/// Pure-spin rounds of the idle backoff before yielding the timeslice.
const SPIN_ROUNDS: u32 = 8;
/// Yield rounds of the idle backoff before parking on the Condvar.
const YIELD_ROUNDS: u32 = 8;

thread_local! {
    /// Set while a pool worker is executing a job — used to detect nested
    /// parallel regions (which would deadlock a bounded pool) and run them
    /// inline instead.
    static IN_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// True when called from inside a pool worker thread.
pub fn on_worker_thread() -> bool {
    IN_POOL_WORKER.with(|f| f.get())
}

/// Tiny xorshift generator for randomized victim selection. Statistical
/// quality is irrelevant here — it only decorrelates which victim each
/// worker probes first, so thieves don't convoy on worker 0.
struct VictimRng(u64);

impl VictimRng {
    fn new(seed: u64) -> Self {
        VictimRng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    #[inline]
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// State shared between the pool handle and every worker thread.
struct Shared {
    injector: Injector<Job>,
    stealers: Vec<Stealer<Job>>,
    shutdown: AtomicBool,
    /// Lock-free mirror of "how many workers are parked": submitters only
    /// touch `sleep_lock` when this is non-zero, so an all-busy pool never
    /// contends on the Condvar.
    sleepers: AtomicUsize,
    sleep_lock: Mutex<()>,
    wakeup: Condvar,
    metrics: PoolMetrics,
}

impl Shared {
    /// True when any queue in the pool holds a runnable job.
    fn has_work(&self) -> bool {
        !self.injector.is_empty() || self.stealers.iter().any(|s| !s.is_empty())
    }

    /// Find the next job for worker `index`: local deque first, then a
    /// batch from the injector, then steal from randomized victims.
    fn find_job(&self, local: &Deque<Job>, index: usize, rng: &mut VictimRng) -> Option<Job> {
        if let Some(job) = local.pop() {
            return Some(job);
        }
        loop {
            match self.injector.steal_batch_and_pop(local) {
                Steal::Success(job) => {
                    self.metrics.count_injector_pop();
                    // The batch landed on our deque; siblings parked before
                    // it existed need a nudge to come steal their share.
                    if !local.is_empty() {
                        self.notify_sleeper();
                    }
                    return Some(job);
                }
                Steal::Retry => continue,
                Steal::Empty => break,
            }
        }
        let n = self.stealers.len();
        if n > 1 {
            let start = rng.next() as usize % n;
            let mut saw_retry = true;
            while saw_retry {
                saw_retry = false;
                for k in 0..n {
                    let victim = (start + k) % n;
                    if victim == index {
                        continue;
                    }
                    self.metrics.count_steal_attempt();
                    match self.stealers[victim].steal() {
                        Steal::Success(job) => {
                            self.metrics.count_steal();
                            return Some(job);
                        }
                        Steal::Retry => saw_retry = true,
                        Steal::Empty => {}
                    }
                }
            }
        }
        None
    }

    /// Wake one parked worker if the sleeper mirror says there is one.
    #[inline]
    fn notify_sleeper(&self) {
        fence(Ordering::SeqCst);
        if self.sleepers.load(Ordering::Relaxed) > 0 {
            // Taking the lock orders this notify after any in-progress
            // park's work-recheck, closing the lost-wakeup window.
            let _guard = self.sleep_lock.lock();
            self.wakeup.notify_one();
        }
    }

    /// Park until new work (or shutdown) is signalled. The sleeper count
    /// is raised *before* the final work re-check (with a SeqCst fence in
    /// between) so a submitter either sees the sleeper and notifies, or
    /// pushed early enough for the re-check to see the job.
    fn park(&self) {
        let mut guard = self.sleep_lock.lock();
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        fence(Ordering::SeqCst);
        if self.has_work() || self.shutdown.load(Ordering::Acquire) {
            self.sleepers.fetch_sub(1, Ordering::SeqCst);
            return;
        }
        self.metrics.count_park();
        self.wakeup.wait(&mut guard);
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
    }
}

fn worker_loop(shared: &Shared, local: Deque<Job>, index: usize) {
    IN_POOL_WORKER.with(|f| f.set(true));
    let mut rng = VictimRng::new(index as u64 + 1);
    let mut backoff = 0u32;
    loop {
        if let Some(job) = shared.find_job(&local, index, &mut rng) {
            backoff = 0;
            // Count before running: a job's last action is its latch
            // count-down, so counting after would let a caller woken by
            // that latch observe the job as "not yet executed".
            shared.metrics.count_job();
            job();
            continue;
        }
        // Only exit once the pool is shutting down AND no queue holds
        // work, so pending jobs are drained rather than leaked.
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        if backoff < SPIN_ROUNDS {
            std::hint::spin_loop();
            backoff += 1;
        } else if backoff < SPIN_ROUNDS + YIELD_ROUNDS {
            std::thread::yield_now();
            backoff += 1;
        } else {
            shared.park();
            backoff = 0;
        }
    }
}

/// A fixed-size persistent work-stealing thread pool.
///
/// Workers exit when the pool is dropped (after draining queued jobs).
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    threads: usize,
}

impl ThreadPool {
    /// Create a pool with `threads` workers (at least 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let deques: Vec<Deque<Job>> = (0..threads)
            .map(|_| Deque::with_capacity(LOCAL_QUEUE_CAP))
            .collect();
        let shared = Arc::new(Shared {
            injector: Injector::with_capacity(INJECTOR_CAP),
            stealers: deques.iter().map(|d| d.stealer()).collect(),
            shutdown: AtomicBool::new(false),
            sleepers: AtomicUsize::new(0),
            sleep_lock: Mutex::new(()),
            wakeup: Condvar::new(),
            metrics: PoolMetrics::new(),
        });
        let mut handles = Vec::with_capacity(threads);
        for (idx, local) in deques.into_iter().enumerate() {
            let shared = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name(format!("gpa-worker-{idx}"))
                .spawn(move || worker_loop(&shared, local, idx))
                .expect("failed to spawn pool worker");
            handles.push(handle);
        }
        ThreadPool {
            shared,
            handles,
            threads,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Substrate counters (steals, parks, injector pops, jobs executed).
    pub fn metrics(&self) -> &PoolMetrics {
        &self.shared.metrics
    }

    /// Submit a `'static` job. Panics if the pool has shut down.
    pub(crate) fn submit(&self, job: Job) {
        assert!(
            !self.shared.shutdown.load(Ordering::Acquire),
            "thread pool has shut down"
        );
        self.shared.injector.push(job);
        self.shared.metrics.count_injector_push();
        self.shared.notify_sleeper();
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Lock-then-notify: a worker between its shutdown re-check and
        // `wait` still holds the lock, so acquiring it here orders this
        // broadcast after that worker is actually parked.
        drop(self.shared.sleep_lock.lock());
        self.shared.wakeup.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Count-down latch: waits until `count` workers have called
/// [`CountLatch::count_down`].
///
/// The count lives in an atomic, so signalling completion is one relaxed
/// RMW; the Mutex/Condvar pair is touched only by the *last* count-down
/// (to unpark the waiter) and by a waiter that actually has to sleep.
pub struct CountLatch {
    remaining: AtomicUsize,
    lock: Mutex<()>,
    all_done: Condvar,
}

impl CountLatch {
    /// Latch expecting `count` completions.
    pub fn new(count: usize) -> Arc<Self> {
        Arc::new(CountLatch {
            remaining: AtomicUsize::new(count),
            lock: Mutex::new(()),
            all_done: Condvar::new(),
        })
    }

    /// Record one completion.
    pub fn count_down(&self) {
        let prev = self.remaining.fetch_sub(1, Ordering::Release);
        debug_assert!(prev > 0, "latch count underflow");
        if prev == 1 {
            // Synchronize with every earlier count_down before waking the
            // waiter, then take the lock so the notify cannot slot between
            // the waiter's re-check and its wait.
            fence(Ordering::Acquire);
            drop(self.lock.lock());
            self.all_done.notify_all();
        }
    }

    /// Block until all completions arrive.
    pub fn wait(&self) {
        // Short launches usually finish within this bounded spin, skipping
        // the Condvar entirely.
        for _ in 0..64 {
            if self.remaining.load(Ordering::Acquire) == 0 {
                return;
            }
            std::hint::spin_loop();
        }
        let mut guard = self.lock.lock();
        while self.remaining.load(Ordering::Acquire) > 0 {
            self.all_done.wait(&mut guard);
        }
    }
}

/// The process-wide default pool, sized by `GPA_THREADS` or the machine's
/// available parallelism.
pub fn global_pool() -> &'static ThreadPool {
    use std::sync::OnceLock;
    static POOL: OnceLock<ThreadPool> = OnceLock::new();
    POOL.get_or_init(|| ThreadPool::new(default_threads()))
}

/// Thread count policy: `GPA_THREADS` env var if set, else available
/// parallelism.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("GPA_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn jobs_run_and_latch_releases() {
        let pool = ThreadPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        let latch = CountLatch::new(100);
        for _ in 0..100 {
            let c = counter.clone();
            let l = latch.clone();
            pool.submit(Box::new(move || {
                c.fetch_add(1, Ordering::Relaxed);
                l.count_down();
            }));
        }
        latch.wait();
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        assert_eq!(pool.metrics().report().jobs_executed, 100);
    }

    #[test]
    fn worker_flag_visible_inside_jobs() {
        let pool = ThreadPool::new(2);
        let latch = CountLatch::new(1);
        let seen = Arc::new(AtomicUsize::new(0));
        {
            let l = latch.clone();
            let s = seen.clone();
            pool.submit(Box::new(move || {
                if on_worker_thread() {
                    s.store(1, Ordering::Relaxed);
                }
                l.count_down();
            }));
        }
        latch.wait();
        assert_eq!(seen.load(Ordering::Relaxed), 1);
        assert!(!on_worker_thread(), "caller thread is not a worker");
    }

    #[test]
    fn drop_joins_workers() {
        let pool = ThreadPool::new(3);
        let latch = CountLatch::new(10);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let c = counter.clone();
            let l = latch.clone();
            pool.submit(Box::new(move || {
                std::thread::sleep(std::time::Duration::from_millis(2));
                c.fetch_add(1, Ordering::Relaxed);
                l.count_down();
            }));
        }
        latch.wait();
        drop(pool); // must not hang or abort
        assert_eq!(counter.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn drop_drains_pending_jobs() {
        // Jobs still queued when the pool drops are executed, not leaked —
        // the shutdown flag only stops workers once every queue is empty.
        let pool = ThreadPool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..200 {
            let c = counter.clone();
            pool.submit(Box::new(move || {
                c.fetch_add(1, Ordering::Relaxed);
            }));
        }
        drop(pool);
        assert_eq!(counter.load(Ordering::Relaxed), 200);
    }

    #[test]
    fn zero_thread_request_clamps_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.threads(), 1);
        let latch = CountLatch::new(1);
        let l = latch.clone();
        pool.submit(Box::new(move || l.count_down()));
        latch.wait();
    }

    #[test]
    fn parked_workers_wake_for_new_work() {
        let pool = ThreadPool::new(4);
        // Let the workers run through their backoff and park.
        std::thread::sleep(std::time::Duration::from_millis(20));
        let latch = CountLatch::new(8);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..8 {
            let c = counter.clone();
            let l = latch.clone();
            pool.submit(Box::new(move || {
                c.fetch_add(1, Ordering::Relaxed);
                l.count_down();
            }));
        }
        latch.wait();
        assert_eq!(counter.load(Ordering::Relaxed), 8);
        // With a 20ms idle window the workers must actually have parked —
        // otherwise the backoff never hands the CPU back.
        assert!(pool.metrics().report().parks > 0, "workers never parked");
    }

    #[test]
    fn global_pool_is_singleton() {
        let a = global_pool() as *const ThreadPool;
        let b = global_pool() as *const ThreadPool;
        assert_eq!(a, b);
        assert!(global_pool().threads() >= 1);
    }
}
