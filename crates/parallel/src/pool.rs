//! Persistent worker pool.
//!
//! The attention kernels launch thousands of short row-parallel regions
//! (10 warm-up + 15 timed iterations per configuration in the paper's
//! protocol), so spawning OS threads per launch would dominate the
//! measurement. This pool keeps workers alive for the process lifetime and
//! feeds them type-erased jobs over a crossbeam channel.
//!
//! Scoped (non-`'static`) parallel regions are built on top in
//! [`mod@crate::parallel_for`]; this module only provides the raw `'static`
//! job
//! execution and the completion latch.

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};
use std::cell::Cell;
use std::sync::Arc;
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

thread_local! {
    /// Set while a pool worker is executing a job — used to detect nested
    /// parallel regions (which would deadlock a bounded pool) and run them
    /// inline instead.
    static IN_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// True when called from inside a pool worker thread.
pub fn on_worker_thread() -> bool {
    IN_POOL_WORKER.with(|f| f.get())
}

/// A fixed-size persistent thread pool.
///
/// Workers exit when the pool is dropped (the job channel disconnects).
pub struct ThreadPool {
    sender: Sender<Job>,
    handles: Vec<JoinHandle<()>>,
    threads: usize,
}

impl ThreadPool {
    /// Create a pool with `threads` workers (at least 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let (sender, receiver): (Sender<Job>, Receiver<Job>) = unbounded();
        let mut handles = Vec::with_capacity(threads);
        for idx in 0..threads {
            let rx = receiver.clone();
            let handle = std::thread::Builder::new()
                .name(format!("gpa-worker-{idx}"))
                .spawn(move || {
                    IN_POOL_WORKER.with(|f| f.set(true));
                    // Exit cleanly when the channel disconnects on pool drop.
                    while let Ok(job) = rx.recv() {
                        job();
                    }
                })
                .expect("failed to spawn pool worker");
            handles.push(handle);
        }
        ThreadPool {
            sender,
            handles,
            threads,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Submit a `'static` job. Panics if the pool has shut down.
    pub(crate) fn submit(&self, job: Job) {
        self.sender.send(job).expect("thread pool has shut down");
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Closing the channel lets every worker's `recv` fail and the
        // thread exit; then join them so no worker outlives the pool.
        let (dead_tx, _) = unbounded::<Job>();
        let old = std::mem::replace(&mut self.sender, dead_tx);
        drop(old);
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Count-down latch: waits until `count` workers have called [`CountLatch::count_down`].
pub struct CountLatch {
    remaining: Mutex<usize>,
    all_done: Condvar,
}

impl CountLatch {
    /// Latch expecting `count` completions.
    pub fn new(count: usize) -> Arc<Self> {
        Arc::new(CountLatch {
            remaining: Mutex::new(count),
            all_done: Condvar::new(),
        })
    }

    /// Record one completion.
    pub fn count_down(&self) {
        let mut remaining = self.remaining.lock();
        debug_assert!(*remaining > 0, "latch count underflow");
        *remaining -= 1;
        if *remaining == 0 {
            self.all_done.notify_all();
        }
    }

    /// Block until all completions arrive.
    pub fn wait(&self) {
        let mut remaining = self.remaining.lock();
        while *remaining > 0 {
            self.all_done.wait(&mut remaining);
        }
    }
}

/// The process-wide default pool, sized by `GPA_THREADS` or the machine's
/// available parallelism.
pub fn global_pool() -> &'static ThreadPool {
    use std::sync::OnceLock;
    static POOL: OnceLock<ThreadPool> = OnceLock::new();
    POOL.get_or_init(|| ThreadPool::new(default_threads()))
}

/// Thread count policy: `GPA_THREADS` env var if set, else available
/// parallelism.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("GPA_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn jobs_run_and_latch_releases() {
        let pool = ThreadPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        let latch = CountLatch::new(100);
        for _ in 0..100 {
            let c = counter.clone();
            let l = latch.clone();
            pool.submit(Box::new(move || {
                c.fetch_add(1, Ordering::Relaxed);
                l.count_down();
            }));
        }
        latch.wait();
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn worker_flag_visible_inside_jobs() {
        let pool = ThreadPool::new(2);
        let latch = CountLatch::new(1);
        let seen = Arc::new(AtomicUsize::new(0));
        {
            let l = latch.clone();
            let s = seen.clone();
            pool.submit(Box::new(move || {
                if on_worker_thread() {
                    s.store(1, Ordering::Relaxed);
                }
                l.count_down();
            }));
        }
        latch.wait();
        assert_eq!(seen.load(Ordering::Relaxed), 1);
        assert!(!on_worker_thread(), "caller thread is not a worker");
    }

    #[test]
    fn drop_joins_workers() {
        let pool = ThreadPool::new(3);
        let latch = CountLatch::new(10);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let c = counter.clone();
            let l = latch.clone();
            pool.submit(Box::new(move || {
                std::thread::sleep(std::time::Duration::from_millis(2));
                c.fetch_add(1, Ordering::Relaxed);
                l.count_down();
            }));
        }
        latch.wait();
        drop(pool); // must not hang or abort
        assert_eq!(counter.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn zero_thread_request_clamps_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.threads(), 1);
        let latch = CountLatch::new(1);
        let l = latch.clone();
        pool.submit(Box::new(move || l.count_down()));
        latch.wait();
    }

    #[test]
    fn global_pool_is_singleton() {
        let a = global_pool() as *const ThreadPool;
        let b = global_pool() as *const ThreadPool;
        assert_eq!(a, b);
        assert!(global_pool().threads() >= 1);
    }
}
