//! Scoped row-parallel execution — the simulated CUDA grid.
//!
//! The paper's kernels are "parallelized along the L dimension,
//! simultaneously operating on rows of the attention matrix" (Section IV-B),
//! with one CUDA block per row. [`parallel_for`] reproduces that model on a
//! CPU worker pool: the index space `0..n` is split into *blocks* (chunks of
//! rows) that are assigned to workers according to a [`Schedule`].
//!
//! Scheduling matters for fidelity: the paper attributes the Global kernel's
//! poor scaling to block-level load imbalance ("the algorithm can only be as
//! fast as its slowest block"). [`Schedule::StaticContiguous`] and
//! [`Schedule::BlockCyclic`] reproduce a hardware-like fixed assignment,
//! while [`Schedule::Dynamic`] is the work-stealing ablation (A2 in
//! DESIGN.md): each participant starts with a contiguous span of rows,
//! claims `grain` rows at a time from its front, and when its span runs dry
//! steals half of a randomly chosen sibling's remaining span — real range
//! stealing, not a shared counter, so the common case is an uncontended CAS
//! on a cache line the worker owns. Which worker executes a row never
//! affects the row's result, so outputs stay bitwise identical across
//! schedules and thread counts (pinned by `tests/determinism.rs`).

use crate::metrics::PoolMetrics;
use crate::pool::{on_worker_thread, CountLatch, ThreadPool};
use parking_lot::Mutex;
use std::any::Any;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How row blocks are assigned to workers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Schedule {
    /// Split `0..n` into one contiguous span per worker. This is the
    /// classic static decomposition; worst-case imbalance when heavy rows
    /// cluster.
    StaticContiguous,
    /// Round-robin blocks of `chunk` rows over workers (worker `w` takes
    /// blocks `w, w+W, w+2W, …`), mimicking a CUDA grid where consecutive
    /// blocks land on different SMs. Fixed assignment: no stealing.
    BlockCyclic {
        /// Rows per block.
        chunk: usize,
    },
    /// Work stealing: each worker claims `grain` rows at a time from the
    /// front of its own contiguous span and steals half of a sibling's
    /// span when it runs dry. Self-balancing; the ablation schedule.
    Dynamic {
        /// Rows claimed per grab.
        grain: usize,
    },
}

impl Schedule {
    /// The workspace default: block-cyclic with one row per block, the
    /// closest CPU analogue of the paper's one-block-per-row CUDA launch.
    pub fn cuda_like() -> Self {
        Schedule::BlockCyclic { chunk: 1 }
    }
}

impl Default for Schedule {
    fn default() -> Self {
        // Dynamic with a modest grain is the best general-purpose default;
        // grain 16 is the knee of the substrates grain sweep (see
        // results/baselines/substrates.csv — grain 1 pays ~7× in claim
        // traffic on an empty body, and while grain 64 shaves the noop
        // launch further, batched engine runs show no gain over 16 at
        // half the stealable granularity). Kernels that want to reproduce
        // the paper's imbalance phenomena ask for a fixed schedule
        // explicitly.
        Schedule::Dynamic { grain: 16 }
    }
}

/// Per-launch execution statistics, used by the load-imbalance analyses.
#[derive(Clone, Debug, Default)]
pub struct LaunchStats {
    /// Busy time per worker (seconds).
    pub worker_busy: Vec<f64>,
    /// Rows processed per worker.
    pub worker_rows: Vec<usize>,
    /// Wall-clock time of the whole launch (seconds).
    pub elapsed: f64,
}

impl LaunchStats {
    /// Max-over-mean busy time: 1.0 = perfectly balanced. The paper's
    /// "slowest block" effect shows up as values ≫ 1.
    pub fn imbalance(&self) -> f64 {
        let busy: Vec<f64> = self
            .worker_busy
            .iter()
            .copied()
            .filter(|w| w.is_finite())
            .collect();
        if busy.is_empty() {
            return 1.0;
        }
        let max = busy.iter().cloned().fold(0.0, f64::max);
        let mean = busy.iter().sum::<f64>() / busy.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

/// Run `body` over every index range covering `0..n` in parallel on `pool`.
///
/// `body` receives disjoint `Range<usize>` blocks whose union is `0..n`.
/// Blocks arriving at the same worker arrive in order; across workers there
/// is no ordering. The call returns only after every block completed.
/// Panics inside `body` are forwarded to the caller after all workers have
/// quiesced.
///
/// Called from inside a pool worker (nested parallelism), the body runs
/// inline on the calling thread to avoid pool starvation.
pub fn parallel_for<F>(pool: &ThreadPool, n: usize, schedule: Schedule, body: F)
where
    F: Fn(Range<usize>) + Sync,
{
    let _ = parallel_for_impl(pool, n, schedule, &body, false);
}

/// As [`parallel_for`], additionally returning per-worker timing for the
/// load-imbalance experiments.
pub fn parallel_for_stats<F>(
    pool: &ThreadPool,
    n: usize,
    schedule: Schedule,
    body: F,
) -> LaunchStats
where
    F: Fn(Range<usize>) + Sync,
{
    parallel_for_impl(pool, n, schedule, &body, true)
}

/// A participant's remaining rows, packed as `(start << 32) | end` in one
/// atomic word so claims and steals are single CAS operations. The value
/// fully encodes the span, which makes the CAS protocol immune to ABA: a
/// compare-exchange that succeeds on `(s, e)` is operating on exactly the
/// span `(s, e)`, whatever the word held in between.
struct SpanSlot(AtomicU64);

#[inline]
fn pack(start: u64, end: u64) -> u64 {
    (start << 32) | end
}

#[inline]
fn unpack(word: u64) -> (u64, u64) {
    (word >> 32, word & 0xFFFF_FFFF)
}

impl SpanSlot {
    fn new(start: usize, end: usize) -> Self {
        SpanSlot(AtomicU64::new(pack(start as u64, end as u64)))
    }

    /// Claim up to `grain` rows from the front (owner side).
    fn claim_front(&self, grain: u64) -> Option<Range<usize>> {
        let mut cur = self.0.load(Ordering::Acquire);
        loop {
            let (start, end) = unpack(cur);
            if start >= end {
                return None;
            }
            let take = grain.min(end - start);
            match self.0.compare_exchange_weak(
                cur,
                pack(start + take, end),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(start as usize..(start + take) as usize),
                Err(now) => cur = now,
            }
        }
    }

    /// Steal roughly half the span from the tail (thief side). Every CAS
    /// failure means another participant shrank this span, so the retry
    /// loop terminates.
    fn steal_tail(&self) -> Option<Range<usize>> {
        let mut cur = self.0.load(Ordering::Acquire);
        loop {
            let (start, end) = unpack(cur);
            if start >= end {
                return None;
            }
            let take = (end - start).div_ceil(2);
            let split = end - take;
            match self.0.compare_exchange_weak(
                cur,
                pack(start, split),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(split as usize..end as usize),
                Err(now) => cur = now,
            }
        }
    }

    /// Install a stolen range as this participant's new span. Plain store:
    /// only the owner writes its own slot outside the CAS protocol, and
    /// only while the slot is empty (thieves never CAS an empty span).
    fn install(&self, range: &Range<usize>) {
        self.0.store(
            pack(range.start as u64, range.end as u64),
            Ordering::Release,
        );
    }
}

/// Lock-free per-participant timing slot for [`parallel_for_stats`]:
/// written once by its participant, read after the latch.
#[derive(Default)]
struct StatSlot {
    busy_bits: AtomicU64,
    rows: AtomicU64,
}

/// Shared context for one launch; lives on the caller's stack for the
/// duration of the launch and is only ever accessed through the raw pointer
/// below while the caller blocks on the latch.
struct LaunchCtx<'a, F> {
    body: &'a F,
    n: usize,
    schedule: Schedule,
    workers: usize,
    /// Per-participant stealable spans (`Schedule::Dynamic` with `n` small
    /// enough to pack; empty otherwise).
    spans: Vec<SpanSlot>,
    /// Shared-counter fallback for `Dynamic` when `n` exceeds the packed
    /// span range (≥ 2³² rows).
    next: AtomicUsize,
    /// Fast sibling-panicked flag; checked per block without taking the
    /// payload lock.
    panicked: AtomicBool,
    panic_slot: Mutex<Option<Box<dyn Any + Send>>>,
    stats: Option<Vec<StatSlot>>,
    metrics: &'a PoolMetrics,
}

impl<F> LaunchCtx<'_, F>
where
    F: Fn(Range<usize>) + Sync,
{
    /// Worker `w`'s share of the index space under the launch schedule.
    fn run_worker(&self, w: usize) {
        let mut rows = 0usize;
        let started = Instant::now();
        let guarded = |range: Range<usize>, rows: &mut usize| {
            *rows += range.len();
            // Stop early if a sibling panicked — keeps failure latency low
            // on large launches.
            if self.panicked.load(Ordering::Relaxed) {
                return;
            }
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| (self.body)(range))) {
                self.panicked.store(true, Ordering::Relaxed);
                let mut slot = self.panic_slot.lock();
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
        };
        match self.schedule {
            Schedule::StaticContiguous => {
                let per = self.n.div_ceil(self.workers);
                let lo = (w * per).min(self.n);
                let hi = ((w + 1) * per).min(self.n);
                if lo < hi {
                    guarded(lo..hi, &mut rows);
                }
            }
            Schedule::BlockCyclic { chunk } => {
                let chunk = chunk.max(1);
                let mut block = w;
                loop {
                    let lo = block * chunk;
                    if lo >= self.n {
                        break;
                    }
                    let hi = (lo + chunk).min(self.n);
                    guarded(lo..hi, &mut rows);
                    block += self.workers;
                }
            }
            Schedule::Dynamic { grain } => {
                let grain = grain.max(1) as u64;
                if self.spans.is_empty() {
                    // Fallback: huge index spaces use the shared counter.
                    let grain = grain as usize;
                    loop {
                        let lo = self.next.fetch_add(grain, Ordering::Relaxed);
                        if lo >= self.n {
                            break;
                        }
                        let hi = (lo + grain).min(self.n);
                        guarded(lo..hi, &mut rows);
                    }
                } else {
                    self.run_stealing(w, grain, &guarded, &mut rows);
                }
            }
        }
        if let Some(stats) = &self.stats {
            let slot = &stats[w];
            slot.busy_bits
                .store(started.elapsed().as_secs_f64().to_bits(), Ordering::Relaxed);
            slot.rows.store(rows as u64, Ordering::Relaxed);
        }
    }

    /// The `Dynamic` steady state: drain the own span from the front, then
    /// steal half of a randomized sibling's remainder and repeat until no
    /// span anywhere holds rows.
    fn run_stealing(
        &self,
        w: usize,
        grain: u64,
        guarded: &impl Fn(Range<usize>, &mut usize),
        rows: &mut usize,
    ) {
        // Decorrelate which victim each participant probes first.
        let mut seed = (w as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        'drain: loop {
            while let Some(range) = self.spans[w].claim_front(grain) {
                guarded(range, rows);
            }
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            let start = seed as usize % self.workers;
            for k in 0..self.workers {
                let victim = (start + k) % self.workers;
                if victim == w {
                    continue;
                }
                if let Some(stolen) = self.spans[victim].steal_tail() {
                    self.metrics.count_range_steal();
                    self.spans[w].install(&stolen);
                    continue 'drain;
                }
            }
            // Every span was observed empty; any row still unclaimed lives
            // in a span some thief just installed — and that thief drains
            // its own span before ever stealing again, so coverage holds.
            return;
        }
    }
}

fn parallel_for_impl<F>(
    pool: &ThreadPool,
    n: usize,
    schedule: Schedule,
    body: &F,
    want_stats: bool,
) -> LaunchStats
where
    F: Fn(Range<usize>) + Sync,
{
    let launch_start = Instant::now();
    if n == 0 {
        return LaunchStats::default();
    }

    // Inline fallbacks: single worker pools, tiny launches, or nested calls
    // from inside a worker (which would starve the pool).
    let workers = pool.threads().min(n);
    if workers <= 1 || on_worker_thread() {
        let started = Instant::now();
        body(0..n);
        let busy = started.elapsed().as_secs_f64();
        return LaunchStats {
            worker_busy: vec![busy],
            worker_rows: vec![n],
            elapsed: launch_start.elapsed().as_secs_f64(),
        };
    }

    let spans = if matches!(schedule, Schedule::Dynamic { .. }) && n < u32::MAX as usize {
        // Balanced contiguous seed spans, refined by stealing at runtime.
        let per = n.div_ceil(workers);
        (0..workers)
            .map(|w| SpanSlot::new((w * per).min(n), ((w + 1) * per).min(n)))
            .collect()
    } else {
        Vec::new()
    };
    let ctx = LaunchCtx {
        body,
        n,
        schedule,
        workers,
        spans,
        next: AtomicUsize::new(0),
        panicked: AtomicBool::new(false),
        panic_slot: Mutex::new(None),
        stats: want_stats.then(|| (0..workers).map(|_| StatSlot::default()).collect()),
        metrics: pool.metrics(),
    };

    // Type- and lifetime-erasure shim: a monomorphised function pointer is
    // `'static` even though `F` (and the data it borrows) is not, so the
    // boxed job below never mentions `F`.
    unsafe fn worker_shim<F: Fn(Range<usize>) + Sync>(ctx_addr: usize, w: usize) {
        // SAFETY: see the block comment at the call site.
        let ctx = unsafe { &*(ctx_addr as *const LaunchCtx<'_, F>) };
        ctx.run_worker(w);
    }
    let shim: unsafe fn(usize, usize) = worker_shim::<F>;

    // SAFETY: the context (and through it the caller's closure and any
    // borrowed data) outlives every worker's use of it because this function
    // blocks on the latch until all `workers` jobs have signalled
    // completion, and the latch count-down is the last action of each job.
    // The pointer round-trip erases the stack lifetime so the job can be
    // boxed as 'static; no job retains the pointer past count_down.
    let ctx_addr = &ctx as *const LaunchCtx<'_, F> as usize;
    let latch = CountLatch::new(workers);
    for w in 0..workers {
        let latch = Arc::clone(&latch);
        pool.submit(Box::new(move || {
            // SAFETY: `ctx_addr` points to the caller's live LaunchCtx; the
            // caller blocks on the latch until after this call returns.
            unsafe { shim(ctx_addr, w) };
            latch.count_down();
        }));
    }
    latch.wait();

    if let Some(payload) = ctx.panic_slot.lock().take() {
        resume_unwind(payload);
    }

    let mut out = LaunchStats {
        elapsed: launch_start.elapsed().as_secs_f64(),
        ..LaunchStats::default()
    };
    if let Some(stats) = ctx.stats {
        for slot in stats {
            out.worker_busy
                .push(f64::from_bits(slot.busy_bits.load(Ordering::Relaxed)));
            out.worker_rows
                .push(slot.rows.load(Ordering::Relaxed) as usize);
        }
    }
    out
}

/// Convenience: run `body(i)` for every `i` in `0..n` on the global pool
/// with the default schedule.
pub fn for_each_index<F>(pool: &ThreadPool, n: usize, body: F)
where
    F: Fn(usize) + Sync,
{
    parallel_for(pool, n, Schedule::default(), |range| {
        for i in range {
            body(i);
        }
    });
}

/// Minimum elapsed time over `iters` timed executions of `f` (seconds).
/// Small utility shared by tests; the benchmark protocol lives in
/// `gpa-bench`.
pub fn time_best<F: FnMut()>(iters: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters.max(1) {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// Sleep-free busy work used by scheduling tests (returns a value dependent
/// on `spins` so the optimizer cannot remove the loop).
pub fn spin_work(spins: usize) -> u64 {
    let mut acc = 0u64;
    for i in 0..spins {
        // black_box inside the loop: each iteration must execute even at
        // high opt-levels, or scheduling tests lose their workload.
        acc = std::hint::black_box(acc.wrapping_mul(6364136223846793005).wrapping_add(i as u64));
    }
    acc
}

/// Duration helper for stats assertions in tests.
pub fn as_duration(secs: f64) -> Duration {
    Duration::from_secs_f64(secs.max(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn pool4() -> ThreadPool {
        ThreadPool::new(4)
    }

    fn covered_exactly_once(n: usize, schedule: Schedule) {
        let pool = pool4();
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        parallel_for(&pool, n, schedule, |range| {
            for i in range {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "index {i} under {schedule:?}");
        }
    }

    #[test]
    fn full_coverage_all_schedules() {
        for n in [1usize, 2, 3, 7, 64, 1000, 1003] {
            covered_exactly_once(n, Schedule::StaticContiguous);
            covered_exactly_once(n, Schedule::BlockCyclic { chunk: 1 });
            covered_exactly_once(n, Schedule::BlockCyclic { chunk: 5 });
            covered_exactly_once(n, Schedule::Dynamic { grain: 1 });
            covered_exactly_once(n, Schedule::Dynamic { grain: 7 });
        }
    }

    #[test]
    fn span_pack_roundtrip_and_protocol() {
        let slot = SpanSlot::new(10, 30);
        assert_eq!(slot.claim_front(4), Some(10..14));
        // Steal takes half of the remainder (16 rows → 8 from the tail).
        assert_eq!(slot.steal_tail(), Some(22..30));
        assert_eq!(slot.claim_front(100), Some(14..22));
        assert_eq!(slot.claim_front(1), None);
        assert_eq!(slot.steal_tail(), None, "empty spans cannot be stolen");
        slot.install(&(5..7));
        assert_eq!(slot.claim_front(10), Some(5..7));
    }

    #[test]
    fn empty_range_is_noop() {
        let pool = pool4();
        parallel_for(&pool, 0, Schedule::default(), |_| {
            panic!("body must not run for n = 0")
        });
    }

    #[test]
    fn zero_chunk_and_grain_are_clamped() {
        covered_exactly_once(10, Schedule::BlockCyclic { chunk: 0 });
        covered_exactly_once(10, Schedule::Dynamic { grain: 0 });
    }

    #[test]
    fn panics_propagate_to_caller() {
        let pool = pool4();
        let result = catch_unwind(AssertUnwindSafe(|| {
            parallel_for(&pool, 100, Schedule::default(), |range| {
                if range.contains(&37) {
                    panic!("boom at 37");
                }
            });
        }));
        let payload = result.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .or_else(|| payload.downcast_ref::<String>().map(|s| s.as_str()))
            .unwrap_or("");
        assert!(msg.contains("boom"), "got: {msg}");

        // Pool still usable after the panic.
        let sum = AtomicU64::new(0);
        parallel_for(&pool, 10, Schedule::default(), |range| {
            for i in range {
                sum.fetch_add(i as u64, Ordering::Relaxed);
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), 45);
    }

    #[test]
    fn nested_calls_run_inline() {
        let pool = pool4();
        let total = AtomicU64::new(0);
        parallel_for(&pool, 8, Schedule::default(), |outer| {
            for _ in outer {
                // Nested launch must not deadlock.
                parallel_for(&pool, 4, Schedule::default(), |inner| {
                    for _ in inner {
                        total.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn parallel_sum_matches_serial() {
        let pool = ThreadPool::new(8);
        let data: Vec<u64> = (0..100_000).map(|i| (i * 2654435761) % 1000).collect();
        let expected: u64 = data.iter().sum();
        let got = AtomicU64::new(0);
        parallel_for(
            &pool,
            data.len(),
            Schedule::Dynamic { grain: 128 },
            |range| {
                let local: u64 = data[range].iter().sum();
                got.fetch_add(local, Ordering::Relaxed);
            },
        );
        assert_eq!(got.load(Ordering::Relaxed), expected);
    }

    #[test]
    fn stats_cover_all_rows() {
        let pool = pool4();
        let stats = parallel_for_stats(&pool, 1000, Schedule::BlockCyclic { chunk: 8 }, |range| {
            spin_work(range.len() * 10);
        });
        assert_eq!(stats.worker_rows.iter().sum::<usize>(), 1000);
        assert!(stats.elapsed >= 0.0);
        assert!(stats.imbalance() >= 1.0 - 1e-9);
        assert!(!stats.worker_busy.is_empty());
    }

    #[test]
    fn dynamic_stats_cover_all_rows_with_stealing() {
        let pool = pool4();
        // Heavy head: the first span's owner is slow, so siblings must
        // steal from it to finish — rows still sum exactly.
        let stats = parallel_for_stats(&pool, 256, Schedule::Dynamic { grain: 2 }, |range| {
            for i in range {
                spin_work(if i < 64 { 20_000 } else { 10 });
            }
        });
        assert_eq!(stats.worker_rows.iter().sum::<usize>(), 256);
    }

    #[test]
    fn static_contiguous_shows_imbalance_on_skewed_work() {
        let pool = pool4();
        // All heavy rows in the first quarter → the first worker does ~all
        // the work under a contiguous static split.
        let n = 64;
        let heavy = n / 4;
        let stats = parallel_for_stats(&pool, n, Schedule::StaticContiguous, |range| {
            for i in range {
                if i < heavy {
                    spin_work(400_000);
                } else {
                    spin_work(100);
                }
            }
        });
        assert!(
            stats.imbalance() > 1.5,
            "expected skew, imbalance = {}",
            stats.imbalance()
        );

        // The dynamic schedule balances the same workload far better.
        let stats_dyn = parallel_for_stats(&pool, n, Schedule::Dynamic { grain: 1 }, |range| {
            for i in range {
                if i < heavy {
                    spin_work(400_000);
                } else {
                    spin_work(100);
                }
            }
        });
        assert!(
            stats_dyn.imbalance() < stats.imbalance(),
            "dynamic {} vs static {}",
            stats_dyn.imbalance(),
            stats.imbalance()
        );
    }

    #[test]
    fn for_each_index_sees_every_index() {
        let pool = pool4();
        let n = 257;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        for_each_index(&pool, n, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn borrowed_output_buffer_is_written() {
        // The scoped-lifetime erasure must let workers write into a caller
        // buffer through an UnsafeCell-free route: disjoint &mut access via
        // raw parts is modeled here with per-index atomics in other tests;
        // this test uses the common real pattern of splitting outputs.
        let pool = pool4();
        let n = 1024;
        let out: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        parallel_for(&pool, n, Schedule::cuda_like(), |range| {
            for i in range {
                out[i].store((i * i) as u64, Ordering::Relaxed);
            }
        });
        for (i, o) in out.iter().enumerate() {
            assert_eq!(o.load(Ordering::Relaxed), (i * i) as u64);
        }
    }

    #[test]
    fn time_best_returns_finite_positive() {
        let t = time_best(3, || {
            spin_work(1000);
        });
        assert!(t.is_finite() && t >= 0.0);
    }

    #[test]
    fn as_duration_clamps_negative() {
        assert_eq!(as_duration(-1.0), Duration::ZERO);
    }
}
