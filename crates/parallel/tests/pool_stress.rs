//! Seeded stress harness for the work-stealing pool, gated behind
//! `GPA_STRESS` like the serving-simulation soak (`GPA_STRESS=1 cargo test
//! -p gpa-parallel --test pool_stress`). No registry access means no
//! `loom`; instead this drives real threads through high-churn schedules —
//! rapid launch storms, skewed stealing workloads, and pool teardown with
//! jobs still queued — and checks the exactly-once invariants after each.

use gpa_parallel::{parallel_for, parallel_for_stats, Schedule, ThreadPool};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn stress_enabled() -> bool {
    std::env::var("GPA_STRESS").is_ok_and(|v| v != "0")
}

struct XorShift(u64);
impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

#[test]
fn stress_launch_storm_exactly_once() {
    if !stress_enabled() {
        return;
    }
    // Thousands of small launches with seeded random n/schedule/grain —
    // the decode-serving shape. Every index must be visited exactly once
    // per launch, under maximal launch-path churn.
    for threads in [2usize, 4, 8] {
        let pool = ThreadPool::new(threads);
        let mut rng = XorShift(0xC0FF_EE00 + threads as u64);
        for round in 0..2_000 {
            let n = 1 + (rng.next() % 97) as usize;
            let schedule = match rng.next() % 4 {
                0 => Schedule::StaticContiguous,
                1 => Schedule::BlockCyclic {
                    chunk: 1 + (rng.next() % 8) as usize,
                },
                2 => Schedule::Dynamic {
                    grain: 1 + (rng.next() % 8) as usize,
                },
                _ => Schedule::Dynamic { grain: 16 },
            };
            let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            parallel_for(&pool, n, schedule, |range| {
                for i in range {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            });
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(
                    h.load(Ordering::Relaxed),
                    1,
                    "round {round}: index {i} of {n} under {schedule:?} ({threads} threads)"
                );
            }
        }
        let report = pool.metrics().report();
        assert_eq!(report.jobs_executed, report.injector_pushes);
    }
}

#[test]
fn stress_skewed_stealing_conserves_rows() {
    if !stress_enabled() {
        return;
    }
    // Pathologically skewed workloads force heavy range stealing; the
    // per-worker row tallies must still sum to n every time.
    let pool = ThreadPool::new(4);
    let mut rng = XorShift(0xDEAD_BEEF);
    let mut range_steals_seen = 0u64;
    for _ in 0..300 {
        let n = 64 + (rng.next() % 512) as usize;
        let hot = (rng.next() % n as u64) as usize;
        let stats = parallel_for_stats(&pool, n, Schedule::Dynamic { grain: 1 }, |range| {
            for i in range {
                gpa_parallel::spin_work(if i == hot { 200_000 } else { 50 });
            }
        });
        assert_eq!(stats.worker_rows.iter().sum::<usize>(), n);
        range_steals_seen = pool.metrics().report().range_steals;
    }
    // On a multi-core host stealing is effectively guaranteed here; on a
    // single-core box the whole launch may run inline. Only assert that
    // the counter moved if more than one worker ever ran concurrently.
    if std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        > 1
    {
        assert!(range_steals_seen > 0, "skewed loads never stole a range");
    }
}

#[test]
fn stress_concurrent_launchers_share_one_pool() {
    if !stress_enabled() {
        return;
    }
    // Several caller threads issue launches against the same pool at once
    // (the engine's run_batch pattern under concurrent serving) — jobs
    // from different launches interleave in the injector and deques.
    let pool = Arc::new(ThreadPool::new(4));
    let total = Arc::new(AtomicUsize::new(0));
    let callers: Vec<_> = (0..4)
        .map(|c| {
            let pool = Arc::clone(&pool);
            let total = Arc::clone(&total);
            std::thread::spawn(move || {
                let mut rng = XorShift(0x5EED + c as u64);
                let mut local = 0usize;
                for _ in 0..500 {
                    let n = 1 + (rng.next() % 256) as usize;
                    let sum = AtomicUsize::new(0);
                    parallel_for(&pool, n, Schedule::Dynamic { grain: 4 }, |range| {
                        sum.fetch_add(range.len(), Ordering::Relaxed);
                    });
                    assert_eq!(sum.load(Ordering::Relaxed), n);
                    local += n;
                }
                total.fetch_add(local, Ordering::Relaxed);
            })
        })
        .collect();
    for c in callers {
        c.join().unwrap();
    }
    assert!(total.load(Ordering::Relaxed) > 0);
}

#[test]
fn stress_teardown_with_queued_jobs() {
    if !stress_enabled() {
        return;
    }
    // Pools are created, loaded, and dropped in a tight loop; drop must
    // drain every queued job (no leaks, no lost executions, no hangs).
    for seed in 0..50u64 {
        let pool = ThreadPool::new(2 + (seed % 3) as usize);
        let counter = Arc::new(AtomicUsize::new(0));
        let n = 100 + (seed * 7 % 400) as usize;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        parallel_for(&pool, n, Schedule::Dynamic { grain: 3 }, |range| {
            for i in range {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        counter.fetch_add(
            hits.iter()
                .map(|h| h.load(Ordering::Relaxed))
                .sum::<usize>(),
            Ordering::Relaxed,
        );
        drop(pool);
        assert_eq!(counter.load(Ordering::Relaxed), n, "seed {seed}");
    }
}
