//! Sequence slots — a budgeted pool of per-sequence KV caches.
//!
//! A serving scheduler keeps one [`KvCache`] per in-flight sequence, and
//! the resource that actually limits how many sequences can be in flight
//! is the *total* number of cached tokens across all of them (the KV
//! memory budget — the axis "The Sparse Frontier" maps serving trade-offs
//! along). [`SlotPool`] owns that accounting: each sequence is admitted
//! into a slot with an up-front **token reservation** (its prompt plus
//! every token it may generate), the pool refuses allocations that would
//! overshoot the budget, and releasing a slot returns its reservation.
//! Reserving the worst case at admission is what makes the budget
//! invariant checkable per tick: a sequence that was admitted can always
//! grow to its declared length without any mid-flight eviction.

use crate::cache::KvCache;
use gpa_tensor::Real;

/// Opaque handle to one live slot in a [`SlotPool`].
///
/// Handles are invalidated by [`SlotPool::release`]; using a released
/// handle panics (slots are recycled, so a stale handle is a logic error,
/// not a recoverable condition).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SlotId {
    index: usize,
    generation: u64,
}

struct Slot<T> {
    cache: KvCache<T>,
    reserved: usize,
    generation: u64,
}

/// A pool of per-sequence [`KvCache`]s under one global token budget.
///
/// ```
/// use gpa_core::SlotPool;
///
/// let mut pool: SlotPool<f32> = SlotPool::new(100);
/// let a = pool.try_allocate(1, 8, 8, 60).expect("fits");
/// assert!(pool.try_allocate(1, 8, 8, 50).is_none(), "would exceed budget");
/// pool.cache_mut(a).append(0, &[0.0; 8], &[0.0; 8]);
/// assert_eq!(pool.used_tokens(), 1);
/// pool.release(a);
/// assert_eq!(pool.reserved_tokens(), 0);
/// ```
pub struct SlotPool<T> {
    slots: Vec<Option<Slot<T>>>,
    free: Vec<usize>,
    budget: usize,
    reserved: usize,
    next_generation: u64,
}

impl<T: Real> SlotPool<T> {
    /// Empty pool with a total reservation budget of `budget_tokens`
    /// cached tokens (summed across all live slots).
    pub fn new(budget_tokens: usize) -> Self {
        SlotPool {
            slots: Vec::new(),
            free: Vec::new(),
            budget: budget_tokens,
            reserved: 0,
            next_generation: 0,
        }
    }

    /// The pool's total token budget.
    pub fn budget_tokens(&self) -> usize {
        self.budget
    }

    /// Tokens currently reserved by live slots.
    pub fn reserved_tokens(&self) -> usize {
        self.reserved
    }

    /// Unreserved headroom, in tokens.
    pub fn available_tokens(&self) -> usize {
        self.budget - self.reserved
    }

    /// Tokens actually cached right now, summed across live slots (always
    /// ≤ [`Self::reserved_tokens`] when every slot stays within its
    /// reservation).
    pub fn used_tokens(&self) -> usize {
        self.slots
            .iter()
            .flatten()
            .map(|s| s.cache.len() * s.cache.heads())
            .sum()
    }

    /// Number of live slots.
    pub fn len(&self) -> usize {
        self.slots.iter().flatten().count()
    }

    /// True when no slots are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when a reservation of `tokens` would fit the remaining budget.
    pub fn can_reserve(&self, tokens: usize) -> bool {
        tokens <= self.available_tokens()
    }

    /// Allocate a slot holding an empty `heads`-head cache (`dk`/`dv` key
    /// and value dimensions) with a reservation of `reserve_tokens`
    /// cache rows (`tokens × heads` for a multi-head slot). Returns `None`
    /// — without mutating anything — when the reservation does not fit.
    pub fn try_allocate(
        &mut self,
        heads: usize,
        dk: usize,
        dv: usize,
        reserve_tokens: usize,
    ) -> Option<SlotId> {
        let rows = reserve_tokens.checked_mul(heads)?;
        if !self.can_reserve(rows) {
            return None;
        }
        self.reserved += rows;
        let generation = self.next_generation;
        self.next_generation += 1;
        let slot = Slot {
            cache: KvCache::new(heads, dk, dv),
            reserved: rows,
            generation,
        };
        let index = match self.free.pop() {
            Some(index) => {
                self.slots[index] = Some(slot);
                index
            }
            None => {
                self.slots.push(Some(slot));
                self.slots.len() - 1
            }
        };
        Some(SlotId { index, generation })
    }

    fn slot(&self, id: SlotId) -> &Slot<T> {
        let slot = self.slots[id.index].as_ref().expect("released slot");
        assert_eq!(slot.generation, id.generation, "stale slot handle");
        slot
    }

    /// The slot's cache.
    ///
    /// # Panics
    /// Panics on a released or stale handle.
    pub fn cache(&self, id: SlotId) -> &KvCache<T> {
        &self.slot(id).cache
    }

    /// The slot's cache, mutably.
    ///
    /// # Panics
    /// Panics on a released or stale handle.
    pub fn cache_mut(&mut self, id: SlotId) -> &mut KvCache<T> {
        let slot = self.slots[id.index].as_mut().expect("released slot");
        assert_eq!(slot.generation, id.generation, "stale slot handle");
        &mut slot.cache
    }

    /// The slot's token reservation, in cache rows.
    ///
    /// # Panics
    /// Panics on a released or stale handle.
    pub fn reservation(&self, id: SlotId) -> usize {
        self.slot(id).reserved
    }

    /// Release a slot, returning its reservation to the budget and its
    /// cache (with whatever tokens it still holds) to the caller.
    ///
    /// # Panics
    /// Panics on a released or stale handle.
    pub fn release(&mut self, id: SlotId) -> KvCache<T> {
        let slot = self.slots[id.index].take().expect("released slot");
        assert_eq!(slot.generation, id.generation, "stale slot handle");
        self.reserved -= slot.reserved;
        self.free.push(id.index);
        slot.cache
    }

    /// Assert the pool's budget invariants: total reservations within the
    /// budget, and every live slot's cache within its own reservation.
    /// The serving simulation calls this after every scheduler tick.
    ///
    /// # Panics
    /// Panics when an invariant is violated.
    pub fn assert_within_budget(&self) {
        assert!(
            self.reserved <= self.budget,
            "reserved {} tokens exceed the budget {}",
            self.reserved,
            self.budget
        );
        for slot in self.slots.iter().flatten() {
            let rows = slot.cache.len() * slot.cache.heads();
            assert!(
                rows <= slot.reserved,
                "slot holds {rows} cache rows but reserved only {}",
                slot.reserved
            );
        }
    }
}

impl<T: Real> std::fmt::Debug for SlotPool<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlotPool")
            .field("slots", &self.len())
            .field("budget_tokens", &self.budget)
            .field("reserved_tokens", &self.reserved)
            .field("used_tokens", &self.used_tokens())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_respects_the_budget() {
        let mut pool: SlotPool<f64> = SlotPool::new(10);
        let a = pool.try_allocate(1, 4, 4, 6).unwrap();
        assert_eq!(pool.reserved_tokens(), 6);
        assert_eq!(pool.available_tokens(), 4);
        assert!(pool.can_reserve(4));
        assert!(!pool.can_reserve(5));
        // A reservation that does not fit leaves the pool untouched.
        assert!(pool.try_allocate(1, 4, 4, 5).is_none());
        assert_eq!(pool.reserved_tokens(), 6);
        let b = pool.try_allocate(1, 4, 4, 4).unwrap();
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.available_tokens(), 0);
        pool.assert_within_budget();
        pool.release(a);
        assert_eq!(pool.reserved_tokens(), 4);
        pool.release(b);
        assert!(pool.is_empty());
        assert_eq!(pool.available_tokens(), 10);
    }

    #[test]
    fn multi_head_reservations_count_rows_per_head() {
        let mut pool: SlotPool<f32> = SlotPool::new(8);
        // 2 heads × 3 tokens = 6 rows of the budget.
        let id = pool.try_allocate(2, 4, 4, 3).unwrap();
        assert_eq!(pool.reserved_tokens(), 6);
        assert_eq!(pool.reservation(id), 6);
        assert!(pool.try_allocate(2, 4, 4, 2).is_none(), "4 rows > 2 left");
        for h in 0..2 {
            pool.cache_mut(id).append(h, &[0.0; 4], &[0.0; 4]);
        }
        assert_eq!(pool.used_tokens(), 2);
        pool.assert_within_budget();
    }

    #[test]
    fn released_cache_keeps_its_tokens() {
        let mut pool: SlotPool<f64> = SlotPool::new(4);
        let id = pool.try_allocate(1, 2, 2, 2).unwrap();
        pool.cache_mut(id).append(0, &[1.0, 2.0], &[3.0, 4.0]);
        let cache = pool.release(id);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.k(0).row(0), &[1.0, 2.0]);
    }

    #[test]
    fn slot_indices_are_recycled_but_handles_are_not() {
        let mut pool: SlotPool<f64> = SlotPool::new(8);
        let a = pool.try_allocate(1, 2, 2, 2).unwrap();
        pool.release(a);
        let b = pool.try_allocate(1, 2, 2, 2).unwrap();
        // Recycled index, fresh generation: `a` must no longer resolve.
        assert_ne!(a, b);
        assert_eq!(pool.cache(b).len(), 0);
        let stale = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = pool.cache(a);
        }));
        assert!(stale.is_err(), "stale handle must panic");
    }

    #[test]
    #[should_panic(expected = "released slot")]
    fn released_handle_panics() {
        let mut pool: SlotPool<f64> = SlotPool::new(8);
        let a = pool.try_allocate(1, 2, 2, 2).unwrap();
        pool.release(a);
        let _ = pool.cache(a);
    }

    #[test]
    #[should_panic(expected = "cache rows but reserved only")]
    fn overgrown_slot_fails_the_budget_check() {
        let mut pool: SlotPool<f64> = SlotPool::new(8);
        let a = pool.try_allocate(1, 2, 2, 1).unwrap();
        pool.cache_mut(a).append(0, &[0.0; 2], &[0.0; 2]);
        pool.cache_mut(a).append(0, &[0.0; 2], &[0.0; 2]);
        pool.assert_within_budget();
    }

    #[test]
    fn debug_formats() {
        let pool: SlotPool<f32> = SlotPool::new(3);
        assert!(format!("{pool:?}").contains("SlotPool"));
    }
}
