//! Batched plan execution — many sequences and query windows, one launch.
//!
//! The paper's kernels are "single-batch and single-headed" (Section IV-B):
//! every sequence pays a full pool launch. This module removes that tax for
//! serving-style workloads: a batch of (possibly ragged-length) requests is
//! flattened into one `(sequence, row)` index space via
//! [`gpa_parallel::RaggedSpace`] and executed in a **single**
//! `parallel_for`, with every plan step chained per row against that row's
//! softmax state. Each request carries its own [`Geometry`], so one launch
//! freely mixes full squares, chunked-prefill windows, and single-row
//! KV-cached decode requests. Per-row work is identical — same step order,
//! same neighbor order, same [`crate::driver::absorb_edge`] recurrence — so
//! batched outputs are element-exact with independent per-sequence runs
//! (property-tested in `tests/batching.rs` and `tests/geometry.rs`).

use crate::baselines::{flash_attention, masked_sdp};
use crate::dispatch::AttentionKernel;
use crate::driver::absorb_edge;
use crate::error::AttnError;
use crate::geometry::Geometry;
use crate::options::KernelOptions;
use crate::plan::AttentionPlan;
use crate::routing::Routing;
use crate::state::AttentionState;
use gpa_parallel::{parallel_for, CellWriter, LocalTally, RaggedSpace, RowWriter, ThreadPool};
use gpa_tensor::{attention_scale, Matrix, Real};

/// One request's borrowed Q/K/V triple plus its query-window geometry in a
/// batched launch.
///
/// Requests in one batch may differ in context length (ragged batches),
/// key dimension, value dimension, and geometry (full squares, prefill
/// chunks, decode rows) — each is validated against the plan
/// independently.
#[derive(Clone, Copy)]
pub struct AttentionRequest<'a, T> {
    /// Query matrix, `geometry.q_rows × dk`.
    pub q: &'a Matrix<T>,
    /// Key matrix, `geometry.kv_rows × dk`.
    pub k: &'a Matrix<T>,
    /// Value matrix, `geometry.kv_rows × dv`.
    pub v: &'a Matrix<T>,
    /// The query window this request computes.
    pub geometry: Geometry,
    /// This sequence's token-to-group assignment, required exactly when
    /// the plan has routed steps ([`AttentionPlan::routing_spec`]). Attach
    /// with [`AttentionRequest::with_routing`].
    pub routing: Option<&'a Routing>,
}

impl<'a, T: Real> AttentionRequest<'a, T> {
    /// Borrow one sequence's Q/K/V at the inferred geometry: query rows
    /// starting at absolute offset 0 over `K`'s row count (the full square
    /// when `Q` and `K` have equally many rows; a prefix window or a
    /// rectangular explicit-mask request otherwise).
    pub fn new(q: &'a Matrix<T>, k: &'a Matrix<T>, v: &'a Matrix<T>) -> Self {
        AttentionRequest {
            q,
            k,
            v,
            geometry: Geometry::window(0, q.rows(), k.rows()),
            routing: None,
        }
    }

    /// Borrow a query window: `Q` holds rows
    /// `q_offset .. q_offset + Q.rows` of the logical sequence whose
    /// key/value set is `K`/`V` — the chunked-prefill request shape.
    pub fn windowed(q: &'a Matrix<T>, k: &'a Matrix<T>, v: &'a Matrix<T>, q_offset: usize) -> Self {
        AttentionRequest {
            q,
            k,
            v,
            geometry: Geometry::window(q_offset, q.rows(), k.rows()),
            routing: None,
        }
    }

    /// Borrow a KV-cached decode request: `Q` is the newest token's single
    /// query row and `K`/`V` the cache contents (newest token included).
    ///
    /// # Panics
    /// Panics if `K` is empty (decode needs at least the new token).
    pub fn decode(q: &'a Matrix<T>, k: &'a Matrix<T>, v: &'a Matrix<T>) -> Self {
        AttentionRequest {
            q,
            k,
            v,
            geometry: Geometry::decode(k.rows()),
            routing: None,
        }
    }

    /// Attach this sequence's [`Routing`] — required when the plan has
    /// routed steps, ignored otherwise. `None` detaches.
    pub fn with_routing(mut self, routing: Option<&'a Routing>) -> Self {
        self.routing = routing;
        self
    }

    /// Number of query rows (output rows).
    pub fn rows(&self) -> usize {
        self.q.rows()
    }
}

/// One sequence's pending decode token in a multi-sequence batched decode
/// launch ([`crate::AttentionEngine::decode_steps_batched`]): the new
/// token's query/key/value rows plus exclusive access to that sequence's
/// cache.
///
/// The engine validates every step **before** mutating any cache, appends
/// every step's K/V rows, runs all decode rows as one flattened launch,
/// and on failure truncates every cache back — so a batch of steps either
/// all land or none do.
pub struct DecodeStep<'a, T> {
    /// The new token's query row, `1 × dk`.
    pub q_t: &'a Matrix<T>,
    /// The new token's key row, `1 × dk`.
    pub k_t: &'a Matrix<T>,
    /// The new token's value row, `1 × dv`.
    pub v_t: &'a Matrix<T>,
    /// The sequence's single-head cache (appended to by the launch).
    pub cache: &'a mut crate::cache::KvCache<T>,
}

/// Split a query matrix into `(window start, owned row chunk)` pieces of at
/// most `chunk` rows — the request shape chunked prefill feeds to
/// [`execute_batch`], shared by the engine- and multi-head-level prefill
/// paths.
pub(crate) fn chunk_windows<T: Real>(q: &Matrix<T>, chunk: usize) -> Vec<(usize, Matrix<T>)> {
    let rows = q.rows();
    (0..rows)
        .step_by(chunk)
        .map(|a| (a, q.rows_slice(a, (a + chunk).min(rows))))
        .collect()
}

/// Execute a plan over a batch, returning one output matrix per request.
///
/// Graph-kernel plans run as one flattened launch. Dense-baseline plans
/// (single-step by construction) fall back to the reference baseline per
/// request, so their outputs stay bit-identical with the standalone
/// [`masked_sdp`] / [`flash_attention`] calls.
pub(crate) fn execute_batch<T: Real>(
    pool: &ThreadPool,
    plan: &AttentionPlan<'_>,
    opts: &KernelOptions<'_>,
    requests: &[AttentionRequest<'_, T>],
) -> Result<Vec<Matrix<T>>, AttnError> {
    if !plan.is_composable() {
        for r in requests {
            plan.validate_request(r.geometry, r.q, r.k, r.v)?;
        }
        return requests
            .iter()
            .map(|r| match plan.steps()[0] {
                AttentionKernel::SdpMasked(mask) => masked_sdp(pool, mask, r.q, r.k, r.v, opts),
                AttentionKernel::Flash => flash_attention(pool, r.q, r.k, r.v, opts),
                _ => unreachable!("non-composable plans hold exactly one dense baseline"),
            })
            .collect();
    }
    let states = execute_batch_states(pool, plan, opts, requests)?;
    Ok(states
        .into_iter()
        .map(AttentionState::into_output)
        .collect())
}

/// Check one request's routing against the plan: a routed plan needs a
/// routing built under exactly its spec, covering the whole key/value set
/// when any routed step is noncausal and at least the query window's end
/// otherwise (a decode row may run with routing grown only that far). A
/// static plan silently ignores any attached routing.
fn validate_routing<T: Real>(
    plan: &AttentionPlan<'_>,
    r: &AttentionRequest<'_, T>,
) -> Result<(), AttnError> {
    let Some(spec) = plan.routing_spec() else {
        return Ok(());
    };
    let Some(routing) = r.routing else {
        return Err(AttnError::RoutingMismatch {
            what: "a routed plan needs each request's Routing attached",
        });
    };
    if routing.spec() != spec {
        return Err(AttnError::RoutingMismatch {
            what: "the request's routing was built under a different spec",
        });
    }
    if plan.routed_full_kv() {
        // A noncausal routed step streams whole groups, so the routing
        // must cover the key/value set exactly — no more (stale members
        // past the KV set would be out of bounds), no fewer.
        if routing.len() != r.k.rows() {
            return Err(AttnError::RoutingMismatch {
                what: "a noncausal routed plan needs routing over the exact key/value set",
            });
        }
    } else if routing.len() < r.geometry.q_end() {
        return Err(AttnError::RoutingMismatch {
            what: "the request's routing does not cover its query window",
        });
    }
    Ok(())
}

/// As [`execute_batch`], but returning the full per-request
/// [`AttentionState`]s — the `(O, l, m)` triples distributed reductions
/// merge across devices. Graph-kernel plans only.
pub(crate) fn execute_batch_states<T: Real>(
    pool: &ThreadPool,
    plan: &AttentionPlan<'_>,
    opts: &KernelOptions<'_>,
    requests: &[AttentionRequest<'_, T>],
) -> Result<Vec<AttentionState<T>>, AttnError> {
    if !plan.is_composable() {
        return Err(AttnError::BadParameter {
            what: "dense baselines cannot run into a shared state",
        });
    }
    for r in requests {
        plan.validate_request(r.geometry, r.q, r.k, r.v)?;
        validate_routing(plan, r)?;
    }
    let mut states: Vec<AttentionState<T>> = requests
        .iter()
        .map(|r| AttentionState::new(r.q.rows(), r.v.cols()))
        .collect();
    let space = RaggedSpace::new(requests.iter().map(|r| r.q.rows()));
    if space.total() == 0 {
        return Ok(states);
    }

    // Per-request execution context: writers over that request's state
    // plus the launch-invariant scalars resolved once.
    struct SeqCtx<'s, T> {
        o: RowWriter<'s, T>,
        l: CellWriter<'s, T>,
        m: CellWriter<'s, T>,
        scale: T,
        kv_len: usize,
        q_offset: usize,
        routing: Option<&'s Routing>,
    }
    let ctxs: Vec<SeqCtx<'_, T>> = states
        .iter_mut()
        .zip(requests)
        .map(|(state, r)| {
            let (rows, dv) = (r.q.rows(), r.v.cols());
            SeqCtx {
                o: RowWriter::new(state.o.as_mut_slice(), rows, dv),
                l: CellWriter::new(&mut state.l),
                m: CellWriter::new(&mut state.m),
                scale: match opts.scale {
                    Some(s) => T::from_f64(s),
                    None => attention_scale(r.q.cols()),
                },
                kv_len: r.k.rows(),
                q_offset: r.geometry.q_offset,
                routing: r.routing,
            }
        })
        .collect();

    parallel_for(pool, space.total(), opts.schedule, |range| {
        let mut tally = opts.counter.map(LocalTally::new);
        space.for_each_segment(range, |s, local| {
            let req = &requests[s];
            let ctx = &ctxs[s];
            for i in local {
                let q_row = req.q.row(i);
                // SAFETY: `parallel_for` dispatches each flat index to
                // exactly one block and `for_each_segment` maps flat
                // indices to (sequence, row) bijectively, so row `i` of
                // sequence `s` is accessed by this worker only.
                let o_row = unsafe { ctx.o.row_mut(i) };
                let m_i = unsafe { ctx.m.cell_mut(i) };
                let l_i = unsafe { ctx.l.cell_mut(i) };
                let mut absorb = |j: usize| {
                    debug_assert!(
                        j < ctx.kv_len,
                        "neighbor {j} out of key/value set {}",
                        ctx.kv_len
                    );
                    absorb_edge(
                        q_row,
                        req.k.row(j),
                        req.v.row(j),
                        ctx.scale,
                        m_i,
                        l_i,
                        o_row,
                    );
                    if let Some(t) = tally.as_mut() {
                        t.dot();
                        t.update();
                    }
                };
                // Chain every plan step against this row's shared state —
                // the sequential-composition semantics, one row at a time.
                // Kernels see the *absolute* query index, so windows of a
                // longer sequence stream exactly the square run's rows.
                for step in plan.steps() {
                    step.stream_row(
                        ctx.kv_len,
                        ctx.q_offset + i,
                        ctx.routing,
                        opts.counter,
                        &mut absorb,
                    );
                }
            }
        });
    });

    drop(ctxs);
    Ok(states)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{csr_attention, local_attention, CooSearch};
    use gpa_masks::{GlobalSet, LocalWindow, MaskPattern, RandomUniform};
    use gpa_parallel::{ThreadPool, WorkCounter};
    use gpa_tensor::init::qkv;

    fn pool() -> ThreadPool {
        ThreadPool::new(4)
    }

    #[test]
    fn batch_of_one_is_exactly_the_single_run() {
        let l = 32;
        let (q, k, v) = qkv::<f64>(l, 8, 70);
        let p = pool();
        let opts = KernelOptions::new();
        let plan = AttentionPlan::single(AttentionKernel::Local { n: 3 }).unwrap();
        let batched = execute_batch(&p, &plan, &opts, &[AttentionRequest::new(&q, &k, &v)])
            .unwrap()
            .pop()
            .unwrap();
        let single = local_attention(&p, 3, &q, &k, &v, &opts).unwrap();
        assert_eq!(batched, single, "must be element-exact, not just close");
    }

    #[test]
    fn ragged_batch_matches_per_sequence_runs_exactly() {
        let p = pool();
        let opts = KernelOptions::new();
        let plan = AttentionPlan::single(AttentionKernel::Local { n: 2 }).unwrap();
        let seqs: Vec<_> = [7usize, 33, 1, 64, 12]
            .iter()
            .enumerate()
            .map(|(s, &l)| qkv::<f64>(l, 8, 100 + s as u64))
            .collect();
        let reqs: Vec<_> = seqs
            .iter()
            .map(|(q, k, v)| AttentionRequest::new(q, k, v))
            .collect();
        let batched = execute_batch(&p, &plan, &opts, &reqs).unwrap();
        for ((q, k, v), out) in seqs.iter().zip(batched.iter()) {
            let single = local_attention(&p, 2, q, k, v, &opts).unwrap();
            assert_eq!(*out, single);
        }
    }

    #[test]
    fn composed_plan_equals_manual_state_threading() {
        let l = 40;
        let n = 3;
        let (q, k, v) = qkv::<f64>(l, 8, 71);
        let p = pool();
        let opts = KernelOptions::new();
        let globals = GlobalSet::new(l, vec![0, 17, 29]);
        let plan = AttentionPlan::new(&[
            AttentionKernel::Local { n },
            AttentionKernel::Global {
                globals: &globals,
                n_sub: n,
            },
        ])
        .unwrap();
        let batched = execute_batch(&p, &plan, &opts, &[AttentionRequest::new(&q, &k, &v)])
            .unwrap()
            .pop()
            .unwrap();

        let mut state = AttentionState::new(l, v.cols());
        for step in plan.steps() {
            step.run_into(&p, &q, &k, &v, &opts, &mut state).unwrap();
        }
        assert_eq!(batched, state.into_output());
    }

    #[test]
    fn dense_plans_fall_back_to_reference_baselines() {
        let l = 16;
        let (q, k, v) = qkv::<f64>(l, 4, 72);
        let p = pool();
        let opts = KernelOptions::new();
        let plan = AttentionPlan::single(AttentionKernel::Flash).unwrap();
        let reqs = [
            AttentionRequest::new(&q, &k, &v),
            AttentionRequest::new(&q, &k, &v),
        ];
        let outs = execute_batch(&p, &plan, &opts, &reqs).unwrap();
        let single = flash_attention(&p, &q, &k, &v, &opts).unwrap();
        assert_eq!(outs[0], single);
        assert_eq!(outs[1], single);
        // But no shared states for dense plans.
        assert!(matches!(
            execute_batch_states(&p, &plan, &opts, &reqs),
            Err(AttnError::BadParameter { .. })
        ));
    }

    #[test]
    fn empty_batch_is_fine() {
        let p = pool();
        let plan = AttentionPlan::single(AttentionKernel::Local { n: 1 }).unwrap();
        let outs: Vec<Matrix<f64>> = execute_batch(&p, &plan, &KernelOptions::new(), &[]).unwrap();
        assert!(outs.is_empty());
    }

    #[test]
    fn work_counter_tallies_whole_batch() {
        let l = 24;
        let p = pool();
        let counter = WorkCounter::new();
        let opts = KernelOptions::new().with_counter(&counter);
        let pat = LocalWindow::new(l, 2);
        let csr = pat.to_csr();
        let plan = AttentionPlan::single(AttentionKernel::Csr(&csr)).unwrap();
        let seqs: Vec<_> = (0..3).map(|s| qkv::<f64>(l, 4, 200 + s)).collect();
        let reqs: Vec<_> = seqs
            .iter()
            .map(|(q, k, v)| AttentionRequest::new(q, k, v))
            .collect();
        let _ = execute_batch(&p, &plan, &opts, &reqs).unwrap();
        assert_eq!(counter.dot_products(), 3 * pat.nnz() as u64);
    }

    #[test]
    fn coo_search_cost_counted_in_batches_too() {
        let l = 32;
        let p = pool();
        let pat = RandomUniform::new(l, 0.2, 5);
        let coo = pat.to_coo();
        let (q, k, v) = qkv::<f64>(l, 4, 73);

        let counter_single = WorkCounter::new();
        let opts_single = KernelOptions::new().with_counter(&counter_single);
        let _ =
            crate::kernels::coo_attention(&p, &coo, CooSearch::Linear, &q, &k, &v, &opts_single)
                .unwrap();

        let counter_batch = WorkCounter::new();
        let opts_batch = KernelOptions::new().with_counter(&counter_batch);
        let plan = AttentionPlan::single(AttentionKernel::Coo(&coo, CooSearch::Linear)).unwrap();
        let _ =
            execute_batch(&p, &plan, &opts_batch, &[AttentionRequest::new(&q, &k, &v)]).unwrap();
        assert_eq!(
            counter_batch.report(),
            counter_single.report(),
            "batched instrumentation must match the standalone kernel"
        );
    }

    #[test]
    fn mixed_good_and_bad_requests_fail_before_any_work() {
        let p = pool();
        let mask = LocalWindow::new(16, 1).to_csr();
        let plan = AttentionPlan::single(AttentionKernel::Csr(&mask)).unwrap();
        let (q, k, v) = qkv::<f64>(16, 4, 74);
        let (q_bad, k_bad, v_bad) = qkv::<f64>(17, 4, 74);
        let err = execute_batch(
            &p,
            &plan,
            &KernelOptions::new(),
            &[
                AttentionRequest::new(&q, &k, &v),
                AttentionRequest::new(&q_bad, &k_bad, &v_bad),
            ],
        )
        .unwrap_err();
        assert!(matches!(err, AttnError::MaskShapeMismatch { .. }));
    }

    #[test]
    fn one_launch_mixes_squares_prefill_chunks_and_decode_rows() {
        // The serving batch shape this module exists for: a full square, a
        // prefill chunk of a second sequence, and a decode row of a third,
        // all flattened into ONE parallel_for.
        let p = pool();
        let opts = KernelOptions::new();
        let plan = AttentionPlan::single(AttentionKernel::Local { n: 3 }).unwrap();
        let (qa, ka, va) = qkv::<f64>(20, 8, 80);
        let (qb, kb, vb) = qkv::<f64>(32, 8, 81);
        let (qc, kc, vc) = qkv::<f64>(11, 8, 82);
        let qb_chunk = qb.rows_slice(8, 24);
        let qc_last = qc.rows_slice(10, 11);
        let outs = execute_batch(
            &p,
            &plan,
            &opts,
            &[
                AttentionRequest::new(&qa, &ka, &va),
                AttentionRequest::windowed(&qb_chunk, &kb, &vb, 8),
                AttentionRequest::decode(&qc_last, &kc, &vc),
            ],
        )
        .unwrap();
        // Each output is bitwise a row range of the full square run.
        let full_a = local_attention(&p, 3, &qa, &ka, &va, &opts).unwrap();
        assert_eq!(outs[0], full_a);
        let full_b = local_attention(&p, 3, &qb, &kb, &vb, &opts).unwrap();
        for i in 0..16 {
            assert_eq!(outs[1].row(i), full_b.row(8 + i), "chunk row {i}");
        }
        let full_c = local_attention(&p, 3, &qc, &kc, &vc, &opts).unwrap();
        assert_eq!(outs[2].row(0), full_c.row(10));
    }

    #[test]
    fn rectangular_csr_requests_run_in_batches() {
        // A distributed row-slice shape: 4 query rows against 16 keys.
        let full = LocalWindow::new(16, 2).to_csr();
        let entries: Vec<(usize, usize)> = (0..4)
            .flat_map(|r| full.row(r).iter().map(move |&c| (r, c as usize)))
            .collect();
        let rect = gpa_sparse::CsrMask::from_coo(
            &gpa_sparse::CooMask::from_entries(4, 16, entries).unwrap(),
        );
        let (q_full, k, v) = qkv::<f64>(16, 4, 75);
        let q = q_full.rows_slice(0, 4);
        let p = pool();
        let plan = AttentionPlan::single(AttentionKernel::Csr(&rect)).unwrap();
        let out = execute_batch(
            &p,
            &plan,
            &KernelOptions::new(),
            &[AttentionRequest::new(&q, &k, &v)],
        )
        .unwrap()
        .pop()
        .unwrap();
        // Rows must match the square kernel's first rows.
        let square = csr_attention(&p, &full, &q_full, &k, &v, &KernelOptions::new()).unwrap();
        for i in 0..4 {
            assert_eq!(out.row(i), square.row(i), "row {i}");
        }
    }
}
