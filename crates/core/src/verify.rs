//! The paper's verification protocol (Section V-A), as a reusable harness.
//!
//! "The query, key, and value matrices had context lengths of 256 and
//! embedded dimensions of 32; each was created from the uniform random
//! distribution [0, 1) … Resulting outputs were compared using PyTorch's
//! `allclose` function with an absolute tolerance of 1e−8, a relative
//! tolerance of 1e−5, and NaN values set to equal."
//!
//! [`run_paper_verification`] executes exactly that protocol: every graph
//! kernel against the masked-SDP reference, across representative masks of
//! varied sparsity, in `f64` (the reference comparison precision; see
//! DESIGN.md §1 on FP16 storage emulation).

use crate::baselines::masked_sdp;
use crate::dispatch::AttentionKernel;
use crate::kernels::CooSearch;
use crate::options::KernelOptions;
use gpa_masks::{
    Dilated1d, Dilated2d, GlobalMask, GlobalMinusLocal, GlobalSet, LocalWindow, MaskPattern,
    RandomUniform, Union,
};
use gpa_parallel::ThreadPool;
use gpa_sparse::{DenseMask, DiaMask};
use gpa_tensor::init::qkv;
use gpa_tensor::{allclose, Matrix};

/// The paper's verification shape: `L = 256`.
pub const PAPER_L: usize = 256;
/// The paper's verification embedding: `dk = 32`.
pub const PAPER_DK: usize = 32;
/// The paper's absolute tolerance.
pub const PAPER_ATOL: f64 = 1e-8;
/// The paper's relative tolerance.
pub const PAPER_RTOL: f64 = 1e-5;

/// Absolute tolerance for the FP16-storage KV path
/// ([`crate::KvPrecision::F16`]).
///
/// Binary16 rounding perturbs each stored key/value element by at most
/// one part in 2¹¹ (relative, normal range). For the verification inputs
/// (uniform `[0, 1)`, `dk = 32`) that bounds each attention score shift
/// by `≲ √dk · 2⁻¹¹ ≈ 3e−3`, the softmax weight shift by twice that, and
/// the convex-combination output by their sum — comfortably inside `1e−2`
/// while still two orders tighter than any qualitative failure.
pub const F16_KV_ATOL: f64 = 1e-2;
/// Relative tolerance for the FP16-storage KV path (same argument as
/// [`F16_KV_ATOL`]).
pub const F16_KV_RTOL: f64 = 1e-2;

/// Outcome of one kernel-vs-reference comparison.
#[derive(Clone, Debug)]
pub struct VerificationRecord {
    /// Kernel display name.
    pub kernel: String,
    /// Mask description.
    pub mask: String,
    /// Mask sparsity factor.
    pub sparsity_factor: f64,
    /// Largest absolute element difference against the reference.
    pub max_abs_diff: f64,
    /// Whether the paper's allclose criterion held.
    pub passed: bool,
}

/// Compare a kernel output against the masked-SDP reference under the
/// paper's tolerances.
pub fn record_comparison(
    kernel: &str,
    mask: &str,
    sparsity_factor: f64,
    output: &Matrix<f64>,
    reference: &Matrix<f64>,
) -> VerificationRecord {
    VerificationRecord {
        kernel: kernel.to_string(),
        mask: mask.to_string(),
        sparsity_factor,
        max_abs_diff: output.max_abs_diff(reference),
        passed: allclose(output, reference, PAPER_ATOL, PAPER_RTOL, true),
    }
}

/// Run the full Section V-A protocol. Returns one record per
/// (kernel, mask) pair; `passed` must hold for every record.
pub fn run_paper_verification(pool: &ThreadPool) -> Vec<VerificationRecord> {
    run_verification_at(pool, PAPER_L, PAPER_DK, 0xA77E)
}

/// The same protocol at arbitrary shape/seed (used by property tests).
pub fn run_verification_at(
    pool: &ThreadPool,
    l: usize,
    dk: usize,
    seed: u64,
) -> Vec<VerificationRecord> {
    let (q, k, v) = qkv::<f64>(l, dk, seed);
    let opts = KernelOptions::new();
    let mut records = Vec::new();

    // Mask suite: the paper's pattern families at varied sparsity levels.
    let window = (l / 16).max(1);
    let local = LocalWindow::new(l, window);
    let dil1 = Dilated1d::new(l, 2 * window + 1, 1);
    let dil2 = Dilated2d::new(l, (l / 8).max(2), 1);
    let globals = GlobalSet::evenly_spaced(l, 3);
    let gml = GlobalMinusLocal::new(globals.clone(), window);
    let random = RandomUniform::new(l, 0.05, seed ^ 1);
    let longformer = Union::new(
        LocalWindow::new(l, window),
        GlobalMask::new(globals.clone()),
    );

    // Explicit kernels across every mask family.
    let masks: Vec<(&str, Box<dyn MaskPattern>)> = vec![
        ("local", Box::new(local)),
        ("dilated-1d", Box::new(dil1)),
        ("dilated-2d", Box::new(dil2)),
        ("global-minus-local", Box::new(gml)),
        ("random", Box::new(random)),
        ("longformer-union", Box::new(longformer)),
    ];

    for (mask_name, pattern) in &masks {
        let dense = pattern.to_dense();
        let reference = masked_sdp(pool, &dense, &q, &k, &v, &opts)
            .expect("reference SDP must accept verification inputs");
        let sf = pattern.sparsity_factor();

        let csr = pattern.to_csr();
        let coo = csr.to_coo();
        let out = AttentionKernel::Csr(&csr)
            .run(pool, &q, &k, &v, &opts)
            .unwrap();
        records.push(record_comparison("CSR", mask_name, sf, &out, &reference));

        let out = AttentionKernel::Coo(&coo, CooSearch::Linear)
            .run(pool, &q, &k, &v, &opts)
            .unwrap();
        records.push(record_comparison("COO", mask_name, sf, &out, &reference));
    }

    // Implicit kernels against their exact mask's reference.
    {
        let pat = LocalWindow::new(l, window);
        let reference = masked_sdp(pool, &pat.to_dense(), &q, &k, &v, &opts).unwrap();
        let out = AttentionKernel::Local { n: window }
            .run(pool, &q, &k, &v, &opts)
            .unwrap();
        records.push(record_comparison(
            "Local",
            "local",
            pat.sparsity_factor(),
            &out,
            &reference,
        ));
    }
    {
        let w = 2 * window + 1;
        let pat = Dilated1d::new(l, w, 1);
        let reference = masked_sdp(pool, &pat.to_dense(), &q, &k, &v, &opts).unwrap();
        let out = AttentionKernel::Dilated1d { w, r: 1 }
            .run(pool, &q, &k, &v, &opts)
            .unwrap();
        records.push(record_comparison(
            "Dilated-1D",
            "dilated-1d",
            pat.sparsity_factor(),
            &out,
            &reference,
        ));
    }
    {
        let bs = (l / 8).max(2);
        let pat = Dilated2d::new(l, bs, 1);
        let reference = masked_sdp(pool, &pat.to_dense(), &q, &k, &v, &opts).unwrap();
        let out = AttentionKernel::Dilated2d {
            block_size: bs,
            r: 1,
        }
        .run(pool, &q, &k, &v, &opts)
        .unwrap();
        records.push(record_comparison(
            "Dilated-2D",
            "dilated-2d",
            pat.sparsity_factor(),
            &out,
            &reference,
        ));
    }
    {
        let pat = GlobalMinusLocal::new(globals.clone(), window);
        let reference = masked_sdp(pool, &pat.to_dense(), &q, &k, &v, &opts).unwrap();
        let out = AttentionKernel::Global {
            globals: &globals,
            n_sub: window,
        }
        .run(pool, &q, &k, &v, &opts)
        .unwrap();
        records.push(record_comparison(
            "Global",
            "global-minus-local",
            pat.sparsity_factor(),
            &out,
            &reference,
        ));
    }
    // The DIA kernel (Section VI-A's sparse-representation extension)
    // against an asymmetric multi-band mask no implicit kernel covers.
    {
        let w = window as i64;
        let band = DiaMask::new(l, vec![-(l as i64) / 2, -w, -1, 0, 1, w, (l as i64) / 3])
            .expect("band offsets fit the context");
        let reference = masked_sdp(
            pool,
            &DenseMask::from_csr(&band.to_csr()),
            &q,
            &k,
            &v,
            &opts,
        )
        .unwrap();
        let out = AttentionKernel::Dia(&band)
            .run(pool, &q, &k, &v, &opts)
            .unwrap();
        records.push(record_comparison(
            "DIA",
            "diagonal-band",
            band.nnz() as f64 / (l as f64 * l as f64),
            &out,
            &reference,
        ));
    }

    // The routed block-diagonal kernels (content-adaptive sparsity): the
    // reference materializes the router's data-dependent mask explicitly
    // and runs it through the dense masked SDP — the routed kernel never
    // sees the materialized mask, so agreement proves the implicit
    // enumeration matches the mask it claims to compute.
    {
        let spec = crate::routing::RoutedSpec {
            groups: 4,
            seed: seed ^ 0x707ED,
        };
        let routing = crate::routing::Router::new(spec).route(&q);
        for causal in [false, true] {
            let mut entries = Vec::new();
            for i in 0..l {
                let g = routing.group_of(i) as usize;
                for &j in routing.members(g) {
                    let j = j as usize;
                    if causal && j > i {
                        break;
                    }
                    entries.push((i, j));
                }
            }
            let nnz = entries.len();
            let csr = gpa_sparse::CsrMask::from_coo(
                &gpa_sparse::CooMask::from_entries(l, l, entries).expect("entries are in range"),
            );
            let reference =
                masked_sdp(pool, &DenseMask::from_csr(&csr), &q, &k, &v, &opts).unwrap();
            let out = AttentionKernel::Routed {
                groups: spec.groups,
                seed: spec.seed,
                causal,
            }
            .run(pool, &q, &k, &v, &opts)
            .unwrap();
            records.push(record_comparison(
                if causal { "Routed-causal" } else { "Routed" },
                "routed-block-diagonal",
                nnz as f64 / (l as f64 * l as f64),
                &out,
                &reference,
            ));
        }
    }

    records
}

/// Verify the FP16-storage KV path ([`crate::KvPrecision::F16`]) against
/// native-precision storage for **every** composable kernel.
///
/// Each kernel prefetches `l − 1` tokens into two caches — one native,
/// one F16 — and decodes the final token through both; the outputs must
/// agree within [`F16_KV_ATOL`]/[`F16_KV_RTOL`]. One record per kernel;
/// `passed` must hold for all of them.
pub fn run_f16_kv_verification(threads: usize) -> Vec<VerificationRecord> {
    f16_kv_verification_at(threads, PAPER_L / 4, PAPER_DK, 0xF16)
}

/// [`run_f16_kv_verification`] at an arbitrary decode shape — the
/// property-test surface. `l` must be at least 16 so every kernel's
/// geometry (windows, dilation blocks, global pivots, band offsets) fits;
/// `dk` must stay ≤ [`PAPER_DK`], the head width the
/// [`F16_KV_ATOL`] bound is derived for.
pub fn f16_kv_verification_at(
    threads: usize,
    l: usize,
    dk: usize,
    seed: u64,
) -> Vec<VerificationRecord> {
    use crate::cache::KvPrecision;
    use crate::engine::AttentionEngine;

    assert!(l >= 16, "l must fit every kernel's geometry");
    assert!(
        dk <= PAPER_DK,
        "the documented f16 bound is derived for dk ≤ 32"
    );
    let (q, k, v) = qkv::<f64>(l, dk, seed);
    let window = (l / 16).max(1);
    let globals = GlobalSet::evenly_spaced(l, 3);
    let csr = LocalWindow::new(l, window).to_csr();
    let coo = csr.to_coo();
    let band = DiaMask::new(l, vec![-(window as i64), -1, 0]).expect("offsets fit");
    let kernels: Vec<(&str, AttentionKernel<'_>)> = vec![
        ("Local", AttentionKernel::Local { n: window }),
        (
            "Dilated-1D",
            AttentionKernel::Dilated1d {
                w: 2 * window + 1,
                r: 1,
            },
        ),
        (
            "Dilated-2D",
            AttentionKernel::Dilated2d {
                block_size: (l / 8).max(2),
                r: 1,
            },
        ),
        (
            "Global",
            AttentionKernel::Global {
                globals: &globals,
                n_sub: window,
            },
        ),
        ("CSR", AttentionKernel::Csr(&csr)),
        ("COO", AttentionKernel::Coo(&coo, CooSearch::Linear)),
        ("DIA", AttentionKernel::Dia(&band)),
    ];

    let native = AttentionEngine::with_threads(threads);
    let f16 = AttentionEngine::builder()
        .threads(threads)
        .kv_precision(KvPrecision::F16)
        .build();
    debug_assert_eq!(f16.kv_precision(), KvPrecision::F16);

    let prompt_k = k.rows_slice(0, l - 1);
    let prompt_v = v.rows_slice(0, l - 1);
    let (q_t, k_t, v_t) = (
        q.rows_slice(l - 1, l),
        k.rows_slice(l - 1, l),
        v.rows_slice(l - 1, l),
    );

    let mut records = Vec::new();
    for (name, kernel) in &kernels {
        let plan = crate::plan::AttentionPlan::single(*kernel).expect("kernel compiles");
        let decode = |engine: &AttentionEngine| {
            let mut cache = engine.new_cache::<f64>(dk, dk);
            cache.extend(0, &prompt_k, &prompt_v);
            engine
                .decode_step(&plan, &q_t, &k_t, &v_t, &mut cache)
                .expect("decode over the full-length cache")
        };
        let reference = decode(&native);
        let output = decode(&f16);
        records.push(VerificationRecord {
            kernel: name.to_string(),
            mask: "f16-kv decode".to_string(),
            sparsity_factor: f64::NAN,
            max_abs_diff: output.max_abs_diff(&reference),
            passed: allclose(&output, &reference, F16_KV_ATOL, F16_KV_RTOL, true),
        });
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_protocol_passes_for_all_kernels() {
        let pool = ThreadPool::new(4);
        let records = run_paper_verification(&pool);
        // 6 masks × 2 explicit kernels + 4 implicit kernels + DIA
        // + routed block-diagonal (noncausal and causal).
        assert_eq!(records.len(), 19);
        assert!(
            records.iter().any(|r| r.kernel == "DIA"),
            "the DIA kernel must be covered by the Section V-A protocol"
        );
        assert!(
            records.iter().any(|r| r.kernel == "Routed")
                && records.iter().any(|r| r.kernel == "Routed-causal"),
            "both routed variants must be covered by the Section V-A protocol"
        );
        for r in &records {
            assert!(
                r.passed,
                "{} on {} failed: max_abs_diff = {:.3e}",
                r.kernel, r.mask, r.max_abs_diff
            );
        }
    }

    #[test]
    fn f16_kv_storage_stays_within_documented_bounds() {
        let records = run_f16_kv_verification(2);
        assert_eq!(records.len(), 7, "every composable kernel must be gated");
        for r in &records {
            assert!(
                r.passed,
                "{} f16-kv decode out of bounds: max_abs_diff = {:.3e}",
                r.kernel, r.max_abs_diff
            );
        }
        // The gate must not be vacuous: quantization really perturbs the
        // stored rows, so some kernel must show a nonzero difference.
        assert!(
            records.iter().any(|r| r.max_abs_diff > 0.0),
            "f16 storage produced bitwise-identical outputs — quantization is not applied"
        );
    }

    #[test]
    fn verification_covers_varied_sparsity() {
        let pool = ThreadPool::new(2);
        let records = run_verification_at(&pool, 64, 8, 99);
        let sfs: Vec<f64> = records.iter().map(|r| r.sparsity_factor).collect();
        let min = sfs.iter().cloned().fold(1.0, f64::min);
        let max = sfs.iter().cloned().fold(0.0, f64::max);
        assert!(min < 0.15, "suite must include sparse masks (min {min})");
        assert!(max > 0.15, "suite must include denser masks (max {max})");
        assert!(records.iter().all(|r| r.passed));
    }
}
