//! Dense baselines the paper compares against: masked SDP (PyTorch-style)
//! and dense FlashAttention.

pub mod flash;
pub mod sdp;

pub use flash::{flash_attention, flash_attention_tiled, DEFAULT_TILE};
pub use sdp::{masked_sdp, masked_sdp_skipping};
