//! FlashAttention-style dense baseline (Dao et al. 2022).
//!
//! The paper benchmarks against FlashAttention as "the most efficient
//! attention implementation" (Section III): *dense* `O(L²·d)` work, but only
//! `O(L)` extra memory because scores are never materialized — each query
//! row streams over K/V tiles maintaining online-softmax statistics, with
//! normalization deferred to the end of the row (the FlashAttention-2
//! refinement).
//!
//! Two properties carry the paper's comparisons and both hold here:
//! work is independent of any mask (it is unmasked, dense attention), and
//! memory beyond Q/K/V/O is two `O(L)` statistics vectors — which is why
//! its max context length in Table II matches the implicit-mask kernels.

use crate::driver::validate;
use crate::error::AttnError;
use crate::options::KernelOptions;
use crate::state::AttentionState;
use gpa_parallel::{parallel_for, LocalTally, RowWriter, ThreadPool};
use gpa_tensor::ops::dot;
use gpa_tensor::{Matrix, Real};

/// Default K/V tile width (rows of K/V per inner block). 64 keeps a tile of
/// K, V in L1/L2 for the d range the paper sweeps (64–256); ablation A3
/// sweeps this.
pub const DEFAULT_TILE: usize = 64;

/// Dense FlashAttention-style forward pass with K/V tiling.
pub fn flash_attention<T: Real>(
    pool: &ThreadPool,
    q: &Matrix<T>,
    k: &Matrix<T>,
    v: &Matrix<T>,
    opts: &KernelOptions<'_>,
) -> Result<Matrix<T>, AttnError> {
    flash_attention_tiled(pool, q, k, v, DEFAULT_TILE, opts)
}

/// Dense FlashAttention-style forward pass with an explicit tile size.
pub fn flash_attention_tiled<T: Real>(
    pool: &ThreadPool,
    q: &Matrix<T>,
    k: &Matrix<T>,
    v: &Matrix<T>,
    tile: usize,
    opts: &KernelOptions<'_>,
) -> Result<Matrix<T>, AttnError> {
    if tile == 0 {
        return Err(AttnError::BadParameter {
            what: "tile size must be positive",
        });
    }
    if q.rows() != k.rows() {
        return Err(AttnError::ContextLengthMismatch {
            q: q.rows(),
            k: k.rows(),
            v: v.rows(),
        });
    }
    let probe = AttentionState::new(q.rows(), v.cols());
    let (l_ctx, dv, scale) = validate(q, k, v, opts, &probe)?;
    let mut out = Matrix::zeros(l_ctx, dv);
    let writer = RowWriter::new(out.as_mut_slice(), l_ctx, dv);

    parallel_for(pool, l_ctx, opts.schedule, |range| {
        let mut tally = opts.counter.map(LocalTally::new);
        // Per-tile score buffer, reused across rows.
        let mut scores = vec![T::ZERO; tile];
        for i in range {
            let q_row = q.row(i);
            // SAFETY: disjoint row dispatch per parallel_for's contract.
            let o_row = unsafe { writer.row_mut(i) };
            o_row.fill(T::ZERO);

            // Unnormalized accumulator with deferred division
            // (FlashAttention-2 style): o_acc tracks Σ exp(w−m)·V.
            let mut m = T::neg_infinity();
            let mut l_sum = T::ZERO;

            let mut t0 = 0usize;
            while t0 < l_ctx {
                let t1 = (t0 + tile).min(l_ctx);
                let tl = t1 - t0;
                // Tile pass 1: scores and tile max.
                let mut tile_max = T::neg_infinity();
                for (s, j) in scores[..tl].iter_mut().zip(t0..t1) {
                    let w = dot(q_row, k.row(j)) * scale;
                    *s = w;
                    tile_max = tile_max.max(w);
                    if let Some(t) = tally.as_mut() {
                        t.dot();
                    }
                }
                // Rescale running state once per tile.
                let m_new = m.max(tile_max);
                let alpha = if m == T::neg_infinity() {
                    T::ZERO
                } else {
                    (m - m_new).exp()
                };
                if alpha != T::ONE {
                    for o in o_row.iter_mut() {
                        *o *= alpha;
                    }
                    l_sum *= alpha;
                }
                // Tile pass 2: accumulate exp-weighted values.
                for (s, j) in scores[..tl].iter().zip(t0..t1) {
                    let p = (*s - m_new).exp();
                    l_sum += p;
                    for (o, &vv) in o_row.iter_mut().zip(v.row(j).iter()) {
                        *o += p * vv;
                    }
                    if let Some(t) = tally.as_mut() {
                        t.update();
                    }
                }
                m = m_new;
                t0 = t1;
            }
            // Deferred normalization.
            if l_sum != T::ZERO {
                let inv = l_sum.recip();
                for o in o_row.iter_mut() {
                    *o *= inv;
                }
            }
        }
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::sdp::masked_sdp;
    use gpa_parallel::{ThreadPool, WorkCounter};
    use gpa_sparse::DenseMask;
    use gpa_tensor::init::qkv;
    use gpa_tensor::paper_allclose;

    fn pool() -> ThreadPool {
        ThreadPool::new(4)
    }

    #[test]
    fn flash_equals_dense_sdp_with_full_mask() {
        let l = 100;
        let (q, k, v) = qkv::<f64>(l, 16, 31);
        let p = pool();
        let flash = flash_attention(&p, &q, &k, &v, &KernelOptions::new()).unwrap();
        let sdp = masked_sdp(
            &p,
            &DenseMask::ones(l, l),
            &q,
            &k,
            &v,
            &KernelOptions::new(),
        )
        .unwrap();
        assert!(paper_allclose(&flash, &sdp));
    }

    #[test]
    fn tile_size_does_not_change_results() {
        let l = 70;
        let (q, k, v) = qkv::<f64>(l, 8, 32);
        let p = pool();
        let base = flash_attention_tiled(&p, &q, &k, &v, 64, &KernelOptions::new()).unwrap();
        for tile in [1usize, 3, 16, 70, 128] {
            let t = flash_attention_tiled(&p, &q, &k, &v, tile, &KernelOptions::new()).unwrap();
            assert!(paper_allclose(&t, &base), "tile={tile}");
        }
    }

    #[test]
    fn flash_work_is_always_dense() {
        let l = 32;
        let (q, k, v) = qkv::<f64>(l, 4, 33);
        let counter = WorkCounter::new();
        let opts = KernelOptions::new().with_counter(&counter);
        let _ = flash_attention(&pool(), &q, &k, &v, &opts).unwrap();
        assert_eq!(counter.dot_products(), (l * l) as u64);
    }

    #[test]
    fn zero_tile_rejected() {
        let (q, k, v) = qkv::<f64>(8, 4, 0);
        assert!(matches!(
            flash_attention_tiled(&pool(), &q, &k, &v, 0, &KernelOptions::new()),
            Err(AttnError::BadParameter { .. })
        ));
    }

    #[test]
    fn f32_flash_is_accurate() {
        let l = 128;
        let (q, k, v) = qkv::<f64>(l, 32, 34);
        let p = pool();
        let hi = flash_attention(&p, &q, &k, &v, &KernelOptions::new()).unwrap();
        let lo = flash_attention(
            &p,
            &q.cast::<f32>(),
            &k.cast::<f32>(),
            &v.cast::<f32>(),
            &KernelOptions::new(),
        )
        .unwrap();
        assert!(hi.max_abs_diff(&lo.cast::<f64>()) < 1e-5);
    }
}
