//! The masked scaled-dot-product baseline — our stand-in for PyTorch's
//! `scaled_dot_product_attention` with an explicit binary mask.
//!
//! Faithful to how the paper characterizes the state of the art
//! (Section III): it "performs a dense matrix multiplication of Q and K …
//! sets the excess terms corresponding to the zero entries in the attention
//! mask to −∞, performs a row-wise softmax … and finally a \[dense\] matrix
//! multiplication … with the V matrix". The work is `O(L²·d)` in both
//! passes *regardless of the mask's sparsity* — the property that makes its
//! runtime flat across the sparsity sweep in Fig. 3.
//!
//! The implementation is row-parallel and materializes one score row per
//! row in flight (not the full `L×L` matrix), so large-`L` benchmarks fit
//! in host memory. The capacity model (`gpa-memmodel`) still accounts the
//! full `L×L` buffer, as on the GPU.

use crate::driver::validate;
use crate::error::AttnError;
use crate::options::KernelOptions;
use crate::state::AttentionState;
use gpa_parallel::{parallel_for, LocalTally, RowWriter, ThreadPool};
use gpa_sparse::DenseMask;
use gpa_tensor::ops::{dot, weighted_sum_into};
use gpa_tensor::softmax::softmax_slice;
use gpa_tensor::{Matrix, Real};

/// Masked SDP attention. Computes **all** `L²` scores, masks, softmaxes,
/// then takes **all** `L²` weighted-value products (zero weights included),
/// mirroring the dense baseline's operation count.
pub fn masked_sdp<T: Real>(
    pool: &ThreadPool,
    mask: &DenseMask,
    q: &Matrix<T>,
    k: &Matrix<T>,
    v: &Matrix<T>,
    opts: &KernelOptions<'_>,
) -> Result<Matrix<T>, AttnError> {
    let state = AttentionState::new(q.rows(), v.cols());
    let (l_ctx, dv, scale) = validate(q, k, v, opts, &state)?;
    if q.rows() != k.rows() {
        return Err(AttnError::ContextLengthMismatch {
            q: q.rows(),
            k: k.rows(),
            v: v.rows(),
        });
    }
    if mask.rows() != l_ctx || mask.cols() != l_ctx {
        return Err(AttnError::MaskShapeMismatch {
            mask: (mask.rows(), mask.cols()),
            l: l_ctx,
        });
    }
    let mut out = Matrix::zeros(l_ctx, dv);
    let writer = RowWriter::new(out.as_mut_slice(), l_ctx, dv);

    parallel_for(pool, l_ctx, opts.schedule, |range| {
        let mut tally = opts.counter.map(LocalTally::new);
        // Workhorse buffers reused across the chunk's rows.
        let mut scores = vec![T::ZERO; l_ctx];
        let mut weights = vec![T::ZERO; l_ctx];
        for i in range {
            let q_row = q.row(i);
            // Pass 1: dense QKᵀ row + mask to −∞.
            for (j, s) in scores.iter_mut().enumerate() {
                let w = dot(q_row, k.row(j)) * scale;
                *s = if mask.get(i, j) { w } else { T::neg_infinity() };
                if let Some(t) = tally.as_mut() {
                    t.dot();
                }
            }
            // Row softmax (fully masked rows produce zeros).
            softmax_slice(&scores, &mut weights);
            // Pass 2: dense weighted sum over all L value rows, blocked
            // four value rows per output sweep (dense semantics: zero
            // weights still multiply, so the op count stays L per row).
            // SAFETY: each row dispatched to exactly one block.
            let o_row = unsafe { writer.row_mut(i) };
            o_row.fill(T::ZERO);
            weighted_sum_into(o_row, &weights, v);
            if let Some(t) = tally.as_mut() {
                t.updated(weights.len() as u64);
            }
        }
    });
    Ok(out)
}

/// Masked SDP where fully dense work is *skipped* for masked entries —
/// not a paper baseline, but the "ideal sparse SDP" used in tests to
/// confirm both formulations agree numerically.
pub fn masked_sdp_skipping<T: Real>(
    pool: &ThreadPool,
    mask: &DenseMask,
    q: &Matrix<T>,
    k: &Matrix<T>,
    v: &Matrix<T>,
    opts: &KernelOptions<'_>,
) -> Result<Matrix<T>, AttnError> {
    let state = AttentionState::new(q.rows(), v.cols());
    let (l_ctx, dv, scale) = validate(q, k, v, opts, &state)?;
    if q.rows() != k.rows() {
        return Err(AttnError::ContextLengthMismatch {
            q: q.rows(),
            k: k.rows(),
            v: v.rows(),
        });
    }
    if mask.rows() != l_ctx || mask.cols() != l_ctx {
        return Err(AttnError::MaskShapeMismatch {
            mask: (mask.rows(), mask.cols()),
            l: l_ctx,
        });
    }
    let mut out = Matrix::zeros(l_ctx, dv);
    let writer = RowWriter::new(out.as_mut_slice(), l_ctx, dv);

    parallel_for(pool, l_ctx, opts.schedule, |range| {
        let mut scores = vec![T::ZERO; l_ctx];
        let mut weights = vec![T::ZERO; l_ctx];
        for i in range {
            let q_row = q.row(i);
            for (j, s) in scores.iter_mut().enumerate() {
                *s = if mask.get(i, j) {
                    dot(q_row, k.row(j)) * scale
                } else {
                    T::neg_infinity()
                };
            }
            softmax_slice(&scores, &mut weights);
            // SAFETY: disjoint row dispatch.
            let o_row = unsafe { writer.row_mut(i) };
            o_row.fill(T::ZERO);
            for (j, &w) in weights.iter().enumerate() {
                if w != T::ZERO {
                    for (o, &vv) in o_row.iter_mut().zip(v.row(j).iter()) {
                        *o += w * vv;
                    }
                }
            }
        }
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpa_masks::{LocalWindow, MaskPattern, RandomUniform};
    use gpa_parallel::{ThreadPool, WorkCounter};
    use gpa_tensor::init::qkv;
    use gpa_tensor::{allclose, paper_allclose};

    fn pool() -> ThreadPool {
        ThreadPool::new(4)
    }

    #[test]
    fn dense_mask_equals_unmasked_softmax_attention() {
        // With an all-ones mask, SDP is plain attention; cross-check one row
        // by hand.
        let l = 12;
        let (q, k, v) = qkv::<f64>(l, 4, 3);
        let mask = DenseMask::ones(l, l);
        let out = masked_sdp(&pool(), &mask, &q, &k, &v, &KernelOptions::new()).unwrap();

        let scale = 0.5; // 1/√4
        let i = 5;
        let scores: Vec<f64> = (0..l).map(|j| dot(q.row(i), k.row(j)) * scale).collect();
        let mut w = vec![0.0; l];
        softmax_slice(&scores, &mut w);
        for c in 0..4 {
            let expect: f64 = (0..l).map(|j| w[j] * v.get(j, c)).sum();
            assert!((out.get(i, c) - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn dense_and_skipping_agree() {
        let l = 40;
        let (q, k, v) = qkv::<f64>(l, 8, 5);
        let mask = RandomUniform::new(l, 0.3, 2).to_dense();
        let p = pool();
        let a = masked_sdp(&p, &mask, &q, &k, &v, &KernelOptions::new()).unwrap();
        let b = masked_sdp_skipping(&p, &mask, &q, &k, &v, &KernelOptions::new()).unwrap();
        assert!(paper_allclose(&a, &b));
    }

    #[test]
    fn fully_masked_rows_are_zero() {
        let l = 10;
        let (q, k, v) = qkv::<f64>(l, 4, 7);
        let mut mask = DenseMask::zeros(l, l);
        // Leave row 3 fully masked; give others a diagonal.
        for i in 0..l {
            if i != 3 {
                mask.set(i, i, true);
            }
        }
        let out = masked_sdp(&pool(), &mask, &q, &k, &v, &KernelOptions::new()).unwrap();
        assert!(out.row(3).iter().all(|&x| x == 0.0));
        // Unmasked diagonal rows equal V's row exactly (softmax of one).
        for i in 0..l {
            if i != 3 {
                assert!(allclose(
                    &Matrix::from_vec(1, 4, out.row(i).to_vec()),
                    &Matrix::from_vec(1, 4, v.row(i).to_vec()),
                    1e-12,
                    1e-12,
                    false
                ));
            }
        }
    }

    #[test]
    fn sdp_work_is_dense_regardless_of_sparsity() {
        // The defining property: dot products = L² even for a nearly empty
        // mask (this is what makes SDP flat in Fig. 3).
        let l = 24;
        let (q, k, v) = qkv::<f64>(l, 4, 8);
        let mask = LocalWindow::new(l, 0).to_dense(); // diagonal only
        let counter = WorkCounter::new();
        let opts = KernelOptions::new().with_counter(&counter);
        let _ = masked_sdp(&pool(), &mask, &q, &k, &v, &opts).unwrap();
        assert_eq!(counter.dot_products(), (l * l) as u64);
        assert_eq!(counter.output_updates(), (l * l) as u64);
    }

    #[test]
    fn mask_shape_mismatch_rejected() {
        let (q, k, v) = qkv::<f64>(8, 4, 0);
        let mask = DenseMask::ones(9, 9);
        assert!(matches!(
            masked_sdp(&pool(), &mask, &q, &k, &v, &KernelOptions::new()),
            Err(AttnError::MaskShapeMismatch { .. })
        ));
    }
}
