#![warn(missing_docs)]
//! # gpa-core — graph-processing attention kernels
//!
//! The primary contribution of *"Longer Attention Span: Increasing
//! Transformer Context Length with Sparse Graph Processing Techniques"*
//! (IPDPS 2025), reimplemented as a CPU library: masked attention as a
//! graph computation, where tokens are vertices, mask non-zeros are edges,
//! and each row's output is produced by streaming its neighbors through an
//! online softmax (Algorithm 1). Every kernel performs **exactly one dot
//! product per mask non-zero** — "true sparsity", work-optimal
//! `O(Sf·L²·d)` — and the instrumentation to prove it is built in.
//!
//! ## Kernels (Section IV-B)
//!
//! - Explicit masks: [`kernels::coo_attention`] (with the paper's
//!   linear row-bound search or a binary-search ablation),
//!   [`kernels::csr_attention`];
//! - Implicit "ordered sparsity": [`kernels::local_attention`],
//!   [`kernels::dilated1d_attention`], [`kernels::dilated2d_attention`],
//!   [`kernels::global_attention`];
//! - Arbitrary patterns without materialization:
//!   [`driver::pattern_attention`].
//!
//! ## Baselines (Section III)
//!
//! [`baselines::masked_sdp`] (PyTorch-style dense SDP with −∞ masking) and
//! [`baselines::flash_attention`] (dense online-softmax tiling).
//!
//! ## The engine: compiled plans, batched execution, serving geometry
//!
//! [`AttentionEngine`] is the recommended entry point: it owns the worker
//! pool and launch policy, **compiles** kernel compositions into reusable
//! [`AttentionPlan`]s (geometry constraints validated once), and
//! **executes batches** of ragged-length sequences in a single flattened
//! launch ([`AttentionEngine::run_batch`]). Every request carries a
//! [`Geometry`] query window, so one launch mixes full squares,
//! chunked-prefill windows ([`AttentionEngine::prefill_chunked`]), and
//! KV-cached decode rows ([`AttentionEngine::decode_step`] over a
//! [`KvCache`]). The per-kernel free functions below remain as the
//! low-level API over an explicit pool.
//!
//! ## Composition and extensions
//!
//! Graph kernels update a resumable [`AttentionState`], so sequential calls
//! over disjoint masks compute exact attention over the union
//! ([`dispatch::run_composed`], or a multi-step [`AttentionPlan`]) — the
//! paper's Fig. 6 evaluation mode. [`multihead`] provides the multi-head
//! extension the paper lists as future work; [`verify`] reproduces the
//! Section V-A verification protocol.

pub mod baselines;
pub mod batch;
pub mod cache;
pub mod dispatch;
pub mod driver;
pub mod engine;
pub mod error;
pub mod geometry;
pub mod kernels;
pub mod multihead;
pub mod options;
pub mod pages;
pub mod plan;
pub mod routing;
pub mod state;
pub mod verify;

pub use baselines::{flash_attention, flash_attention_tiled, masked_sdp};
pub use batch::{AttentionRequest, DecodeStep};
pub use cache::{KvCache, KvPrecision};
pub use dispatch::{run_composed, AttentionKernel};
pub use driver::{absorb_edge, graph_attention_into, pattern_attention, pattern_attention_into};
pub use engine::{AttentionEngine, AttentionEngineBuilder};
pub use error::AttnError;
pub use geometry::Geometry;
pub use kernels::{
    coo_attention, coo_attention_into, csr_attention, csr_attention_into, dia_attention,
    dia_attention_into, dia_attention_windowed_into, dilated1d_attention, dilated1d_attention_into,
    dilated1d_attention_windowed_into, dilated2d_attention, dilated2d_attention_into,
    dilated2d_attention_windowed_into, global_attention, global_attention_into,
    global_attention_windowed_into, local_attention, local_attention_into,
    local_attention_windowed_into, CooSearch,
};
pub use multihead::{
    concat_heads, multi_head_attention, split_heads, LayerDecodeStep, MultiHeadAttention,
    ProjectedHeads,
};
pub use options::KernelOptions;
pub use pages::{PagePool, SeqId, SwapArena, SwapTicket};
pub use plan::AttentionPlan;
pub use routing::{RoutedSpec, Router, Routing};
pub use state::AttentionState;
pub use verify::{
    f16_kv_verification_at, run_f16_kv_verification, run_paper_verification, run_verification_at,
    VerificationRecord,
};

#[cfg(test)]
mod proptests {
    use super::*;
    use gpa_masks::{MaskPattern, RandomUniform};
    use gpa_parallel::ThreadPool;
    use gpa_tensor::init::qkv;
    use gpa_tensor::paper_allclose;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// For random masks of any density, CSR kernel output equals the
        /// dense masked-SDP reference under the paper's tolerances.
        #[test]
        fn csr_equals_reference_on_random_masks(
            l in 4usize..48,
            dk in 1usize..24,
            p in 0.0f64..1.0,
            seed in 0u64..1000,
        ) {
            let pool = ThreadPool::new(2);
            let (q, k, v) = qkv::<f64>(l, dk, seed);
            let pat = RandomUniform::new(l, p, seed ^ 0xDEAD);
            let reference = masked_sdp(&pool, &pat.to_dense(), &q, &k, &v, &KernelOptions::new()).unwrap();
            let out = csr_attention(&pool, &pat.to_csr(), &q, &k, &v, &KernelOptions::new()).unwrap();
            prop_assert!(paper_allclose(&out, &reference));
        }

        /// Splitting a random mask into two disjoint halves and composing
        /// the kernels equals a single call over the whole mask.
        #[test]
        fn composition_over_any_split(
            l in 4usize..32,
            p in 0.05f64..0.6,
            seed in 0u64..500,
        ) {
            let pool = ThreadPool::new(2);
            let (q, k, v) = qkv::<f64>(l, 8, seed);
            let full = RandomUniform::new(l, p, seed).to_csr();
            // Split by column parity — disjoint by construction.
            let mut even_entries = Vec::new();
            let mut odd_entries = Vec::new();
            for (r, c) in full.iter() {
                if c % 2 == 0 { even_entries.push((r, c)); } else { odd_entries.push((r, c)); }
            }
            let a = gpa_sparse::CsrMask::from_coo(
                &gpa_sparse::CooMask::from_entries(l, l, even_entries).unwrap());
            let b = gpa_sparse::CsrMask::from_coo(
                &gpa_sparse::CooMask::from_entries(l, l, odd_entries).unwrap());

            let composed = run_composed(
                &pool,
                &[AttentionKernel::Csr(&a), AttentionKernel::Csr(&b)],
                &q, &k, &v, &KernelOptions::new(),
            ).unwrap();
            let single = csr_attention(&pool, &full, &q, &k, &v, &KernelOptions::new()).unwrap();
            prop_assert!(paper_allclose(&composed, &single));
        }

        /// F16 KV storage stays within the documented error bounds of
        /// native storage for **all seven** composable kernels, at any
        /// decode shape — the property behind the fixed-shape gate in
        /// [`verify::run_f16_kv_verification`].
        #[test]
        fn f16_kv_decode_within_bounds_at_any_shape(
            l_octets in 2usize..10,
            dk in 4usize..33,
            seed in 0u64..10_000,
        ) {
            let l = 8 * l_octets;
            let records = verify::f16_kv_verification_at(2, l, dk, seed);
            prop_assert_eq!(records.len(), 7);
            for r in &records {
                prop_assert!(
                    r.passed,
                    "{} f16-kv decode out of bounds at l={} dk={}: {:.3e}",
                    r.kernel, l, dk, r.max_abs_diff
                );
            }
        }

        /// At any shape, group count, and seed: the router's `K` groups
        /// partition all `N` tokens (no token unrouted, group sizes sum to
        /// `N`), and routed attention is **bitwise** the dense attention of
        /// each group run in isolation — each group's rows gathered into a
        /// submatrix and pushed through the CSR kernel under an all-ones
        /// mask, the same `absorb_edge` recurrence in the same ascending
        /// member order.
        #[test]
        fn routed_attention_is_bitwise_per_group_dense(
            l in 2usize..48,
            dk in 1usize..16,
            groups in 1usize..6,
            seed in 0u64..10_000,
        ) {
            let pool = ThreadPool::new(2);
            let (q, k, v) = qkv::<f64>(l, dk, seed);
            let spec = RoutedSpec { groups, seed: seed ^ 0xBEEF };
            let routing = Router::new(spec).route(&q);

            let total: usize = (0..groups).map(|g| routing.members(g).len()).sum();
            prop_assert!(total == l, "group sizes must sum to N");
            let mut seen = vec![false; l];
            for g in 0..groups {
                for &t in routing.members(g) {
                    prop_assert!(!seen[t as usize], "token {} routed twice", t);
                    seen[t as usize] = true;
                }
            }
            prop_assert!(seen.iter().all(|&s| s), "no token may go unrouted");

            let out = AttentionKernel::Routed { groups, seed: spec.seed, causal: false }
                .run(&pool, &q, &k, &v, &KernelOptions::new())
                .unwrap();
            for g in 0..groups {
                let idx: Vec<usize> = routing.members(g).iter().map(|&t| t as usize).collect();
                if idx.is_empty() { continue; }
                let (qg, kg, vg) = (q.gather_rows(&idx), k.gather_rows(&idx), v.gather_rows(&idx));
                let all_ones = gpa_sparse::CsrMask::from_coo(
                    &gpa_sparse::CooMask::from_entries(
                        idx.len(),
                        idx.len(),
                        (0..idx.len())
                            .flat_map(|r| (0..idx.len()).map(move |c| (r, c)))
                            .collect::<Vec<_>>(),
                    )
                    .unwrap(),
                );
                let dense_group =
                    csr_attention(&pool, &all_ones, &qg, &kg, &vg, &KernelOptions::new()).unwrap();
                for (r, &t) in idx.iter().enumerate() {
                    prop_assert!(
                        out.row(t) == dense_group.row(r),
                        "group {} token {} must be bitwise the per-group dense run", g, t
                    );
                }
            }
        }

        /// Output rows are convex combinations of value rows: every output
        /// coordinate lies within the min/max of the attended values.
        #[test]
        fn outputs_are_convex_combinations(
            l in 2usize..32,
            p in 0.1f64..0.9,
            seed in 0u64..500,
        ) {
            let pool = ThreadPool::new(2);
            let (q, k, v) = qkv::<f64>(l, 8, seed);
            let pat = RandomUniform::new(l, p, seed ^ 7);
            let csr = pat.to_csr();
            let out = csr_attention(&pool, &csr, &q, &k, &v, &KernelOptions::new()).unwrap();
            for i in 0..l {
                let neighbors = csr.row(i);
                if neighbors.is_empty() { continue; }
                for c in 0..v.cols() {
                    let lo = neighbors.iter().map(|&j| v.get(j as usize, c)).fold(f64::INFINITY, f64::min);
                    let hi = neighbors.iter().map(|&j| v.get(j as usize, c)).fold(f64::NEG_INFINITY, f64::max);
                    let val = out.get(i, c);
                    prop_assert!(val >= lo - 1e-9 && val <= hi + 1e-9,
                        "row {i} col {c}: {val} outside [{lo}, {hi}]");
                }
            }
        }
    }
}
