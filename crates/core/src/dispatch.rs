//! Uniform kernel dispatch — one name per algorithm the paper benchmarks.
//!
//! The benchmark harness, the multi-head layer, and the examples all select
//! algorithms at runtime; [`AttentionKernel`] is that selector. Graph
//! kernels (everything except the dense baselines) are *composable*: a
//! sequence of them can be run against one shared [`AttentionState`], which
//! is how Fig. 6's "Loc + Glo" and "Loc + Glo + CSR" series are produced.

use crate::baselines::{flash_attention, masked_sdp};
use crate::error::AttnError;
use crate::kernels::{
    coo_attention_into, csr_attention_into, dia_attention_into, dilated1d_attention_into,
    dilated2d_attention_into, global_attention_into, local_attention_into, CooSearch,
};
use crate::options::KernelOptions;
use crate::plan::GeometrySpec;
use crate::routing::{RoutedSpec, Router, Routing};
use crate::state::AttentionState;
use gpa_masks::GlobalSet;
use gpa_parallel::{ThreadPool, WorkCounter};
use gpa_sparse::{CooMask, CsrMask, DenseMask, DiaMask};
use gpa_tensor::{Matrix, Real};

/// An attention algorithm selection.
#[derive(Clone, Copy)]
pub enum AttentionKernel<'a> {
    /// Explicit COO mask with the given row-bound search strategy.
    Coo(&'a CooMask, CooSearch),
    /// Explicit CSR mask.
    Csr(&'a CsrMask),
    /// Explicit DIA (diagonal-band) mask.
    Dia(&'a DiaMask),
    /// Implicit local window (`|i−j| ≤ n`).
    Local {
        /// Window per direction.
        n: usize,
    },
    /// Implicit 1-D dilated window.
    Dilated1d {
        /// Window width (strict).
        w: usize,
        /// Dilation factor.
        r: usize,
    },
    /// Implicit 2-D dilated diagonal blocks.
    Dilated2d {
        /// Block edge length.
        block_size: usize,
        /// Dilation factor.
        r: usize,
    },
    /// Implicit global-minus-local attention.
    Global {
        /// Global token set.
        globals: &'a GlobalSet,
        /// Local window subtracted from the global rows/columns.
        n_sub: usize,
    },
    /// Content-adaptive routed block-diagonal attention: tokens are
    /// routed into `groups` timelines by the seeded scorer
    /// ([`crate::Router`]) and each query attends its own group. The
    /// kernel holds only the `(groups, seed)` configuration; the
    /// per-sequence [`crate::Routing`] rides on the request (or is
    /// computed from `Q` for standalone square runs), so one compiled
    /// plan serves many differently-routed sequences in one launch.
    Routed {
        /// Number of groups tokens are routed into (positive).
        groups: usize,
        /// Seed of the router's projection directions.
        seed: u64,
        /// Restrict each row to group members at or before it — the
        /// prefill/decode-consistent variant.
        causal: bool,
    },
    /// Dense masked SDP baseline (not composable).
    SdpMasked(&'a DenseMask),
    /// Dense FlashAttention baseline (not composable).
    Flash,
}

impl AttentionKernel<'_> {
    /// Short display name matching the paper's figure legends.
    pub fn name(&self) -> &'static str {
        match self {
            AttentionKernel::Coo(_, CooSearch::Linear) => "COO",
            AttentionKernel::Coo(_, CooSearch::Binary) => "COO (binary search)",
            AttentionKernel::Csr(_) => "CSR",
            AttentionKernel::Dia(_) => "DIA",
            AttentionKernel::Local { .. } => "Local",
            AttentionKernel::Dilated1d { .. } => "Dilated-1D",
            AttentionKernel::Dilated2d { .. } => "Dilated-2D",
            AttentionKernel::Global { .. } => "Global",
            AttentionKernel::Routed { .. } => "Routed",
            AttentionKernel::SdpMasked(_) => "PyTorch SDP (Masked)",
            AttentionKernel::Flash => "FlashAttention",
        }
    }

    /// True for graph kernels that can share an [`AttentionState`].
    pub fn is_composable(&self) -> bool {
        !matches!(self, AttentionKernel::SdpMasked(_) | AttentionKernel::Flash)
    }

    /// Validate kernel parameters that do not depend on the inputs — the
    /// checks an [`crate::plan::AttentionPlan`] performs once at compile
    /// time instead of on every launch.
    pub(crate) fn validate_params(&self) -> Result<(), AttnError> {
        match self {
            AttentionKernel::Dilated1d { w: 0, .. } => Err(AttnError::BadParameter {
                what: "dilated window width w must be positive",
            }),
            AttentionKernel::Dilated2d { block_size: 0, .. } => Err(AttnError::BadParameter {
                what: "block_size must be positive",
            }),
            AttentionKernel::Routed { groups: 0, .. } => Err(AttnError::BadParameter {
                what: "routed group count must be positive",
            }),
            _ => Ok(()),
        }
    }

    /// The geometry constraints this kernel imposes on a query window,
    /// merged across steps by [`crate::plan::AttentionPlan::new`]:
    ///
    /// - explicit masks (COO/CSR) are indexed by **absolute** query row, so
    ///   they bound `q_offset + q_rows` by their row count and pin
    ///   `kv_rows` to their column count;
    /// - Global and DIA pin `kv_rows` to their context length and require
    ///   a window (`q_offset + q_rows ≤ kv_rows`);
    /// - the implicit patterns require only a window;
    /// - the dense baselines run exclusively at the full square geometry.
    pub(crate) fn geometry_spec(&self) -> GeometrySpec {
        let mut spec = GeometrySpec::default();
        match self {
            AttentionKernel::Coo(mask, _) => {
                spec.kv_pin = Some(mask.cols());
                spec.q_abs_bound = Some(mask.rows());
            }
            AttentionKernel::Csr(mask) => {
                spec.kv_pin = Some(mask.cols());
                spec.q_abs_bound = Some(mask.rows());
            }
            AttentionKernel::Dia(mask) => {
                spec.kv_pin = Some(mask.context_len());
                spec.requires_window = true;
            }
            AttentionKernel::Global { globals, .. } => {
                spec.kv_pin = Some(globals.context_len());
                spec.requires_window = true;
            }
            AttentionKernel::SdpMasked(mask) => {
                spec.kv_pin = Some(mask.cols());
                spec.q_pin = Some(mask.rows());
                spec.requires_square = true;
            }
            AttentionKernel::Local { .. }
            | AttentionKernel::Dilated1d { .. }
            | AttentionKernel::Dilated2d { .. }
            | AttentionKernel::Routed { .. } => {
                spec.requires_window = true;
            }
            AttentionKernel::Flash => {
                spec.requires_square = true;
            }
        }
        spec
    }

    /// Enumerate (ascending) the neighbors of **absolute** query row `i`
    /// under key/value set size `kv_len` — the public form of the per-row
    /// rule, used by the distributed layer to build shard-restricted decode
    /// masks without materializing the kernel's full pattern.
    ///
    /// # Panics
    /// Panics on dense baselines (they have no sparse row rule), on
    /// [`AttentionKernel::Routed`] (its rule needs a per-sequence
    /// [`Routing`] — use [`Self::for_each_neighbor_with`]), and, for the
    /// implicit kernels, if `i >= kv_len` (outside the logical square).
    pub fn for_each_neighbor(&self, kv_len: usize, i: usize, f: &mut dyn FnMut(usize)) {
        assert!(
            !matches!(self, AttentionKernel::Routed { .. }),
            "a routed kernel's row rule needs its sequence's Routing"
        );
        self.for_each_neighbor_with(kv_len, i, None, f);
    }

    /// As [`Self::for_each_neighbor`], with the per-sequence [`Routing`] a
    /// routed kernel enumerates from. Non-routed kernels ignore `routing`.
    ///
    /// # Panics
    /// Panics on dense baselines, on a routed kernel given no routing (or
    /// one too short to cover row `i`), and, for the implicit kernels, if
    /// `i >= kv_len`.
    pub fn for_each_neighbor_with(
        &self,
        kv_len: usize,
        i: usize,
        routing: Option<&Routing>,
        f: &mut dyn FnMut(usize),
    ) {
        assert!(
            self.is_composable(),
            "dense baselines have no per-row neighbor rule"
        );
        self.stream_row(kv_len, i, routing, None, f);
    }

    /// Stream **absolute** row `i`'s neighbors under key/value set size
    /// `kv_len` — the per-row enumeration rule each kernel's launch wraps
    /// in a `parallel_for`, exposed so the batched plan executor can
    /// interleave many sequences and query windows (and chain plan steps)
    /// inside one launch. `counter` receives the COO linear-search cost;
    /// edge work is tallied by the caller's absorb hook. Dense baselines
    /// have no row rule.
    ///
    /// # Panics
    /// Panics on dense baselines; the plan layer never compiles them into
    /// a streamed step.
    pub(crate) fn stream_row(
        &self,
        kv_len: usize,
        i: usize,
        routing: Option<&Routing>,
        counter: Option<&WorkCounter>,
        absorb: &mut dyn FnMut(usize),
    ) {
        use crate::kernels::{dia, explicit, implicit};
        match self {
            AttentionKernel::Coo(mask, search) => {
                explicit::coo_row(mask, *search, i, counter, absorb)
            }
            AttentionKernel::Csr(mask) => explicit::csr_row(mask, i, absorb),
            AttentionKernel::Dia(mask) => dia::dia_row(mask, i, absorb),
            AttentionKernel::Local { n } => implicit::local_row(kv_len, *n, i, absorb),
            AttentionKernel::Dilated1d { w, r } => {
                implicit::dilated1d_row(kv_len, *w, *r, i, absorb)
            }
            AttentionKernel::Dilated2d { block_size, r } => {
                implicit::dilated2d_row(kv_len, *block_size, *r, i, absorb)
            }
            AttentionKernel::Global { globals, n_sub } => {
                implicit::global_row(kv_len, globals, *n_sub, i, absorb)
            }
            AttentionKernel::Routed { causal, .. } => {
                let routing = routing.expect("a routed step needs its sequence's Routing");
                assert!(
                    routing.len() > i,
                    "routing covers {} tokens but row {i} was requested",
                    routing.len()
                );
                crate::routing::routed_row(routing, *causal, i, absorb)
            }
            AttentionKernel::SdpMasked(_) | AttentionKernel::Flash => {
                unreachable!("dense baselines are executed whole, not streamed per row")
            }
        }
    }

    /// Run into an existing state (graph kernels only).
    pub fn run_into<T: Real>(
        &self,
        pool: &ThreadPool,
        q: &Matrix<T>,
        k: &Matrix<T>,
        v: &Matrix<T>,
        opts: &KernelOptions<'_>,
        state: &mut AttentionState<T>,
    ) -> Result<(), AttnError> {
        match self {
            AttentionKernel::Coo(mask, search) => {
                coo_attention_into(pool, mask, *search, q, k, v, opts, state)
            }
            AttentionKernel::Csr(mask) => csr_attention_into(pool, mask, q, k, v, opts, state),
            AttentionKernel::Dia(mask) => dia_attention_into(pool, mask, q, k, v, opts, state),
            AttentionKernel::Local { n } => local_attention_into(pool, *n, q, k, v, opts, state),
            AttentionKernel::Dilated1d { w, r } => {
                dilated1d_attention_into(pool, *w, *r, q, k, v, opts, state)
            }
            AttentionKernel::Dilated2d { block_size, r } => {
                dilated2d_attention_into(pool, *block_size, *r, q, k, v, opts, state)
            }
            AttentionKernel::Global { globals, n_sub } => {
                global_attention_into(pool, globals, *n_sub, q, k, v, opts, state)
            }
            AttentionKernel::Routed {
                groups,
                seed,
                causal,
            } => {
                self.validate_params()?;
                // The standalone square form: route Q's own rows. Windowed
                // and cached launches go through plans, which carry the
                // sequence's routing on the request instead.
                if q.rows() != k.rows() {
                    return Err(AttnError::ContextLengthMismatch {
                        q: q.rows(),
                        k: k.rows(),
                        v: v.rows(),
                    });
                }
                let routing = Router::new(RoutedSpec {
                    groups: *groups,
                    seed: *seed,
                })
                .route(q);
                let causal = *causal;
                crate::driver::graph_attention_into(pool, q, k, v, opts, state, move |i, absorb| {
                    crate::routing::routed_row(&routing, causal, i, absorb)
                })
            }
            AttentionKernel::SdpMasked(_) | AttentionKernel::Flash => {
                Err(AttnError::BadParameter {
                    what: "dense baselines cannot run into a shared state",
                })
            }
        }
    }

    /// Run standalone and return the output.
    pub fn run<T: Real>(
        &self,
        pool: &ThreadPool,
        q: &Matrix<T>,
        k: &Matrix<T>,
        v: &Matrix<T>,
        opts: &KernelOptions<'_>,
    ) -> Result<Matrix<T>, AttnError> {
        match self {
            AttentionKernel::SdpMasked(mask) => masked_sdp(pool, mask, q, k, v, opts),
            AttentionKernel::Flash => flash_attention(pool, q, k, v, opts),
            _ => {
                let mut state = AttentionState::new(q.rows(), v.cols());
                self.run_into(pool, q, k, v, opts, &mut state)?;
                Ok(state.into_output())
            }
        }
    }
}

/// Run a sequence of composable kernels against one shared state — the
/// paper's "sequential kernel call" evaluation mode (Fig. 6). The masks
/// must be pairwise disjoint for the result to equal single-kernel
/// attention over their union (otherwise shared edges are double-counted).
///
/// Since the engine redesign this compiles the composition into an
/// [`crate::AttentionPlan`] and executes it as **one** launch (all steps
/// chained per row) instead of one launch per kernel; per-row edge order —
/// and therefore the output — is unchanged.
pub fn run_composed<T: Real>(
    pool: &ThreadPool,
    kernels: &[AttentionKernel<'_>],
    q: &Matrix<T>,
    k: &Matrix<T>,
    v: &Matrix<T>,
    opts: &KernelOptions<'_>,
) -> Result<Matrix<T>, AttnError> {
    if kernels.is_empty() {
        // Historical behavior: an empty composition is a fresh state.
        return Ok(AttentionState::new(q.rows(), v.cols()).into_output());
    }
    let plan = crate::plan::AttentionPlan::new(kernels)?;
    if !plan.is_composable() {
        return Err(AttnError::BadParameter {
            what: "dense baselines cannot run into a shared state",
        });
    }
    let mut outs = crate::batch::execute_batch(
        pool,
        &plan,
        opts,
        &[crate::batch::AttentionRequest::new(q, k, v)],
    )?;
    Ok(outs.pop().expect("one request, one output"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpa_masks::{GlobalMinusLocal, LocalWindow, MaskPattern, RandomUniform, Union};
    use gpa_tensor::init::qkv;
    use gpa_tensor::paper_allclose;

    fn pool() -> ThreadPool {
        ThreadPool::new(4)
    }

    #[test]
    fn names_and_composability() {
        let csr = LocalWindow::new(4, 1).to_csr();
        assert_eq!(AttentionKernel::Csr(&csr).name(), "CSR");
        assert!(AttentionKernel::Csr(&csr).is_composable());
        assert!(!AttentionKernel::Flash.is_composable());
        assert_eq!(AttentionKernel::Local { n: 1 }.name(), "Local");
    }

    #[test]
    fn local_then_global_equals_csr_of_longformer_union() {
        // The Fig. 6 equivalence: Loc ∘ Glo == CSR(local ∪ global).
        let l = 40;
        let n = 3;
        let (q, k, v) = qkv::<f64>(l, 8, 55);
        let p = pool();
        let globals = GlobalSet::new(l, vec![0, 17, 29]);

        let composed = run_composed(
            &p,
            &[
                AttentionKernel::Local { n },
                AttentionKernel::Global {
                    globals: &globals,
                    n_sub: n,
                },
            ],
            &q,
            &k,
            &v,
            &KernelOptions::new(),
        )
        .unwrap();

        let union = Union::new(
            LocalWindow::new(l, n),
            gpa_masks::GlobalMask::new(globals.clone()),
        )
        .to_csr();
        let single = AttentionKernel::Csr(&union)
            .run(&p, &q, &k, &v, &KernelOptions::new())
            .unwrap();
        assert!(paper_allclose(&composed, &single));
    }

    #[test]
    fn three_way_bigbird_composition_matches_union() {
        // Loc ∘ Glo ∘ CSR(random ∖ covered) == CSR(local ∪ global ∪ random).
        let l = 36;
        let n = 2;
        let (q, k, v) = qkv::<f64>(l, 8, 56);
        let p = pool();
        let globals = GlobalSet::new(l, vec![0, 18]);
        let local = LocalWindow::new(l, n);
        let gml = GlobalMinusLocal::new(globals.clone(), n);
        let random = RandomUniform::new(l, 0.05, 4);

        // Random edges not already covered by local/global parts.
        let covered = local.to_csr().union(&gml.to_csr());
        let random_rest = random.to_csr().difference(&covered);

        let composed = run_composed(
            &p,
            &[
                AttentionKernel::Local { n },
                AttentionKernel::Global {
                    globals: &globals,
                    n_sub: n,
                },
                AttentionKernel::Csr(&random_rest),
            ],
            &q,
            &k,
            &v,
            &KernelOptions::new(),
        )
        .unwrap();

        let union = covered.union(&random.to_csr());
        let single = AttentionKernel::Csr(&union)
            .run(&p, &q, &k, &v, &KernelOptions::new())
            .unwrap();
        assert!(paper_allclose(&composed, &single));
    }

    #[test]
    fn dia_dispatch_matches_direct_call() {
        use gpa_sparse::DiaMask;
        let l = 32;
        let (q, k, v) = qkv::<f64>(l, 8, 58);
        let p = pool();
        let dia = DiaMask::new(l, vec![-4, -1, 0, 1, 9]).unwrap();
        assert_eq!(AttentionKernel::Dia(&dia).name(), "DIA");
        assert!(AttentionKernel::Dia(&dia).is_composable());
        let via_dispatch = AttentionKernel::Dia(&dia)
            .run(&p, &q, &k, &v, &KernelOptions::new())
            .unwrap();
        let via_direct =
            crate::kernels::dia_attention(&p, &dia, &q, &k, &v, &KernelOptions::new()).unwrap();
        assert_eq!(via_dispatch, via_direct);
    }

    #[test]
    fn baselines_refuse_shared_state() {
        let (q, k, v) = qkv::<f64>(8, 4, 0);
        let mut state = AttentionState::new(8, 4);
        let err = AttentionKernel::Flash
            .run_into(&pool(), &q, &k, &v, &KernelOptions::new(), &mut state)
            .unwrap_err();
        assert!(matches!(err, AttnError::BadParameter { .. }));
    }

    #[test]
    fn dispatch_run_matches_direct_calls() {
        let l = 24;
        let (q, k, v) = qkv::<f64>(l, 8, 57);
        let p = pool();
        let pat = LocalWindow::new(l, 2);
        let csr = pat.to_csr();
        let via_dispatch = AttentionKernel::Csr(&csr)
            .run(&p, &q, &k, &v, &KernelOptions::new())
            .unwrap();
        let via_direct =
            crate::kernels::csr_attention(&p, &csr, &q, &k, &v, &KernelOptions::new()).unwrap();
        assert_eq!(via_dispatch, via_direct);
    }
}
