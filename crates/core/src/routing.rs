//! Content-adaptive routing: the data-dependent counterpart of the
//! static masks.
//!
//! A [`Router`] assigns every token to one of `K` groups ("timelines" in
//! HyperGraph terminology) by scoring that token's **own** query row
//! against `K` seeded projection directions and taking the argmax — no
//! learned weights, no stored state beyond the `(groups, seed)` pair in
//! [`RoutedSpec`]. Attention is then block-diagonal over the groups:
//! each query attends exactly its group's tokens, so the `K` groups
//! partition all `N` tokens (full coverage) and expected work drops from
//! `O(N²)` to `O(N²/K)`.
//!
//! Determinism is the load-bearing property. The assignment of token `i`
//! is a pure function of `(spec, q[i])` — independent of batch shape,
//! chunk boundaries, thread count, and every other token — so a decode
//! row routes identically to the same row inside a square forward, and a
//! preempted sequence that re-routes its retained query rows re-adopts
//! the exact same grouping. The scorer accumulates in `f64` with a
//! strict-`>` lowest-index-wins argmax ([`gpa_tensor::argmax`]), so ties
//! cannot flip under reordering.

use gpa_tensor::{argmax, Matrix, Real};

/// Configuration of a routed block-diagonal pattern: the group count and
/// the projection seed. Two routed kernels compose (and a cached routing
/// is reusable) exactly when their specs are equal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RoutedSpec {
    /// Number of groups `K` tokens are routed into (must be positive).
    pub groups: usize,
    /// Seed of the projection directions.
    pub seed: u64,
}

/// SplitMix64 — the standard 64-bit finalizer, used here as a stateless
/// hash from `(seed, group, dim)` to a projection weight.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The deterministic top-1 scoring router. Stateless beyond its
/// [`RoutedSpec`]: projection weights are hashed on the fly, so the
/// router works at any key dimension without re-seeding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Router {
    spec: RoutedSpec,
}

impl Router {
    /// A router for the given spec.
    pub fn new(spec: RoutedSpec) -> Self {
        Router { spec }
    }

    /// This router's spec.
    pub fn spec(&self) -> RoutedSpec {
        self.spec
    }

    /// Projection weight of dimension `d` in group `g`'s scoring
    /// direction, in `[-1, 1)`.
    pub fn projection(&self, g: usize, d: usize) -> f64 {
        let h = splitmix64(
            self.spec.seed
                ^ (g as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
                ^ (d as u64).wrapping_mul(0x9E37_79B1_85EB_CA87),
        );
        ((h >> 11) as f64) / ((1u64 << 53) as f64) * 2.0 - 1.0
    }

    /// The group one query row routes to: argmax over the `K` projection
    /// scores, ties broken toward the lowest group index.
    pub fn group_of_row<T: Real>(&self, row: &[T]) -> u32 {
        let scores: Vec<f64> = (0..self.spec.groups)
            .map(|g| {
                row.iter()
                    .enumerate()
                    .map(|(d, &x)| x.to_f64() * self.projection(g, d))
                    .sum()
            })
            .collect();
        argmax(&scores) as u32
    }

    /// Route every row of `q` into a fresh [`Routing`].
    pub fn route<T: Real>(&self, q: &Matrix<T>) -> Routing {
        let mut routing = Routing::empty(self.spec);
        routing.extend(q);
        routing
    }
}

/// The materialized group assignment of one sequence's tokens — the
/// per-sequence state a routed kernel enumerates neighbors from. Grows
/// append-only as a sequence decodes ([`Routing::extend`]) and truncates
/// with its KV cache on rollback ([`Routing::truncate`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Routing {
    spec: RoutedSpec,
    /// Group of each routed token, indexed by absolute token position.
    assign: Vec<u32>,
    /// Member tokens of each group, ascending (append order).
    members: Vec<Vec<u32>>,
}

impl Routing {
    /// An empty routing for `spec` — no tokens assigned yet.
    ///
    /// # Panics
    /// Panics if `spec.groups` is zero.
    pub fn empty(spec: RoutedSpec) -> Self {
        assert!(spec.groups > 0, "a routing needs at least one group");
        Routing {
            spec,
            assign: Vec::new(),
            members: vec![Vec::new(); spec.groups],
        }
    }

    /// The spec this routing was built under.
    pub fn spec(&self) -> RoutedSpec {
        self.spec
    }

    /// Number of routed tokens.
    pub fn len(&self) -> usize {
        self.assign.len()
    }

    /// True when no tokens are routed.
    pub fn is_empty(&self) -> bool {
        self.assign.is_empty()
    }

    /// Group assignment of every routed token, by absolute position.
    pub fn assignments(&self) -> &[u32] {
        &self.assign
    }

    /// The group token `i` belongs to.
    pub fn group_of(&self, i: usize) -> u32 {
        self.assign[i]
    }

    /// Member tokens of group `g`, in ascending token order.
    pub fn members(&self, g: usize) -> &[u32] {
        &self.members[g]
    }

    /// Route the rows of `q` as the next `q.rows()` tokens, appending to
    /// the existing assignment. Each row's group depends only on that row
    /// and the spec, so extending row by row, chunk by chunk, or all at
    /// once produces identical assignments.
    pub fn extend<T: Real>(&mut self, q: &Matrix<T>) {
        let router = Router::new(self.spec);
        for i in 0..q.rows() {
            let g = router.group_of_row(q.row(i));
            self.members[g as usize].push(self.assign.len() as u32);
            self.assign.push(g);
        }
    }

    /// Drop every routed token past the first `tokens` — the rollback
    /// counterpart of [`Routing::extend`], mirroring
    /// [`crate::KvCache::truncate`]. A no-op when already shorter.
    pub fn truncate(&mut self, tokens: usize) {
        if tokens >= self.assign.len() {
            return;
        }
        for &g in &self.assign[tokens..] {
            self.members[g as usize].pop();
        }
        self.assign.truncate(tokens);
    }
}

/// Stream row `i`'s routed block-diagonal neighbors: the members of
/// `i`'s own group, ascending; under `causal`, only those at or before
/// `i`. Row `i` is always a member of its own group, so no row attends
/// an empty set.
#[inline]
pub(crate) fn routed_row(routing: &Routing, causal: bool, i: usize, absorb: &mut dyn FnMut(usize)) {
    let g = routing.group_of(i);
    for &j in routing.members(g as usize) {
        let j = j as usize;
        if causal && j > i {
            break;
        }
        absorb(j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpa_tensor::init::qkv;

    fn spec(groups: usize, seed: u64) -> RoutedSpec {
        RoutedSpec { groups, seed }
    }

    #[test]
    fn groups_partition_every_token() {
        let (q, _, _) = qkv::<f64>(37, 8, 5);
        let routing = Router::new(spec(4, 0x5EED)).route(&q);
        assert_eq!(routing.len(), 37);
        let total: usize = (0..4).map(|g| routing.members(g).len()).sum();
        assert_eq!(total, 37, "group sizes must sum to N");
        let mut seen = [false; 37];
        for g in 0..4 {
            for &t in routing.members(g) {
                assert!(!seen[t as usize], "token routed twice");
                seen[t as usize] = true;
                assert_eq!(routing.group_of(t as usize), g as u32);
            }
        }
        assert!(seen.iter().all(|&s| s), "no token may go unrouted");
    }

    #[test]
    fn extension_order_is_irrelevant() {
        let (q, _, _) = qkv::<f64>(24, 6, 9);
        let whole = Router::new(spec(3, 42)).route(&q);
        let mut incremental = Routing::empty(spec(3, 42));
        incremental.extend(&q.rows_slice(0, 10));
        incremental.extend(&q.rows_slice(10, 11));
        incremental.extend(&q.rows_slice(11, 24));
        assert_eq!(whole, incremental);
    }

    #[test]
    fn truncate_rolls_back_extend() {
        let (q, _, _) = qkv::<f64>(16, 4, 11);
        let mut routing = Router::new(spec(4, 3)).route(&q.rows_slice(0, 10));
        let snapshot = routing.clone();
        routing.extend(&q.rows_slice(10, 16));
        routing.truncate(10);
        assert_eq!(routing, snapshot);
        routing.truncate(99); // longer: no-op
        assert_eq!(routing, snapshot);
    }

    #[test]
    fn seed_changes_the_grouping() {
        let (q, _, _) = qkv::<f64>(64, 8, 13);
        let a = Router::new(spec(4, 1)).route(&q);
        let b = Router::new(spec(4, 2)).route(&q);
        assert_ne!(a.assignments(), b.assignments());
    }

    #[test]
    fn single_group_routes_everything_together() {
        let (q, _, _) = qkv::<f64>(12, 4, 17);
        let routing = Router::new(spec(1, 0)).route(&q);
        assert!(routing.assignments().iter().all(|&g| g == 0));
        assert_eq!(routing.members(0).len(), 12);
    }

    #[test]
    fn routed_row_is_causal_block_diagonal() {
        let (q, _, _) = qkv::<f64>(20, 4, 19);
        let routing = Router::new(spec(3, 7)).route(&q);
        for i in 0..20 {
            let mut full = Vec::new();
            routed_row(&routing, false, i, &mut |j| full.push(j));
            let g = routing.group_of(i);
            assert_eq!(
                full,
                routing
                    .members(g as usize)
                    .iter()
                    .map(|&j| j as usize)
                    .collect::<Vec<_>>()
            );
            assert!(full.windows(2).all(|w| w[0] < w[1]), "ascending order");
            let mut causal = Vec::new();
            routed_row(&routing, true, i, &mut |j| causal.push(j));
            assert_eq!(
                causal,
                full.iter().copied().filter(|&j| j <= i).collect::<Vec<_>>()
            );
            assert_eq!(causal.last(), Some(&i), "a row always attends itself");
        }
    }

    #[test]
    fn projections_are_stable_and_bounded() {
        let r = Router::new(spec(8, 0xABCD));
        for g in 0..8 {
            for d in 0..32 {
                let w = r.projection(g, d);
                assert!((-1.0..1.0).contains(&w));
                assert_eq!(w, r.projection(g, d));
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one group")]
    fn zero_groups_rejected() {
        let _ = Routing::empty(spec(0, 1));
    }
}
