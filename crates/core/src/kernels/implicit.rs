//! Implicit-mask ("ordered sparsity") kernels: local, 1-D dilated, 2-D
//! dilated, and global (Section IV-B).
//!
//! No mask is materialized anywhere: neighbor indices are "calculated
//! relative to the index token of a row" by closed-form arithmetic, which
//! is what lets these kernels reach FlashAttention-class context lengths
//! (Table II — only `O(L)` statistics beyond Q/K/V/O).
//!
//! Every row rule takes the **absolute** query index within a logical
//! `kv_rows × kv_rows` square, so the kernels run on any
//! [`Geometry`] window of a longer sequence — a prefill chunk, a single
//! KV-cached decode row, or the classic full square. The `*_into`
//! functions below are thin [`Geometry::square`] wrappers over the
//! `*_windowed_into` general forms.

use crate::driver::graph_attention_into;
use crate::error::AttnError;
use crate::geometry::Geometry;
use crate::options::KernelOptions;
use crate::state::AttentionState;
use gpa_masks::{Dilated1d, GlobalSet, LocalWindow};
use gpa_parallel::ThreadPool;
use gpa_tensor::{Matrix, Real};

/// Validate a windowed launch: `Q` carries the window's rows, `K`/`V` the
/// key/value set, and the window must lie inside the logical square.
/// (`K.rows == V.rows`, `dk`, and the state shape are checked by the
/// driver.)
fn check_window<T: Real>(
    geometry: Geometry,
    q: &Matrix<T>,
    k: &Matrix<T>,
    v: &Matrix<T>,
) -> Result<(), AttnError> {
    if q.rows() != geometry.q_rows || k.rows() != geometry.kv_rows {
        return Err(AttnError::ContextLengthMismatch {
            q: q.rows(),
            k: k.rows(),
            v: v.rows(),
        });
    }
    geometry.check_window()
}

/// Stream row `i`'s local-window neighbors — the single enumeration rule
/// shared by the standalone kernel and the batched plan executor.
#[inline]
pub(crate) fn local_row(l: usize, n: usize, i: usize, absorb: &mut dyn FnMut(usize)) {
    let (lo, hi) = LocalWindow::row_range(l, n, i);
    for j in lo..=hi {
        absorb(j);
    }
}

/// Stream row `i`'s 1-D dilated neighbors.
#[inline]
pub(crate) fn dilated1d_row(l: usize, w: usize, r: usize, i: usize, absorb: &mut dyn FnMut(usize)) {
    let stride = r + 1;
    let steps = Dilated1d::steps(w, r);
    // Backward arm, nearest-last for cache reuse of low j… the order is
    // irrelevant to the math (online softmax); walk ascending.
    let back = steps.min(i / stride);
    for s in (1..=back).rev() {
        absorb(i - s * stride);
    }
    absorb(i);
    let fwd = steps.min((l - 1 - i) / stride);
    for s in 1..=fwd {
        absorb(i + s * stride);
    }
}

/// Stream row `i`'s 2-D dilated (diagonal block) neighbors.
#[inline]
pub(crate) fn dilated2d_row(
    l: usize,
    block_size: usize,
    r: usize,
    i: usize,
    absorb: &mut dyn FnMut(usize),
) {
    let stride = r + 1;
    if (i % block_size) % stride != 0 {
        return; // unselected row attends to nothing
    }
    let start = (i / block_size) * block_size;
    let end = (start + block_size).min(l);
    let mut j = start;
    while j < end {
        absorb(j);
        j += stride;
    }
}

/// Stream row `i`'s global-minus-local neighbors.
#[inline]
pub(crate) fn global_row(
    l: usize,
    globals: &GlobalSet,
    n_sub: usize,
    i: usize,
    absorb: &mut dyn FnMut(usize),
) {
    let (lo, hi) = LocalWindow::row_range(l, n_sub, i);
    if globals.contains(i) {
        // Global row: everything outside the subtracted window.
        for j in 0..lo {
            absorb(j);
        }
        for j in hi + 1..l {
            absorb(j);
        }
    } else {
        // Non-global row: global columns outside the window.
        for &g in globals.indices() {
            let g = g as usize;
            if g < lo || g > hi {
                absorb(g);
            }
        }
    }
}

/// Local attention (`|i−j| ≤ n`) over any query window: row `i` of the
/// state/output is absolute row `geometry.q_offset + i` of the logical
/// `kv_rows × kv_rows` problem.
#[allow(clippy::too_many_arguments)] // geometry + the paper's parameterization
pub fn local_attention_windowed_into<T: Real>(
    pool: &ThreadPool,
    n: usize,
    geometry: Geometry,
    q: &Matrix<T>,
    k: &Matrix<T>,
    v: &Matrix<T>,
    opts: &KernelOptions<'_>,
    state: &mut AttentionState<T>,
) -> Result<(), AttnError> {
    check_window(geometry, q, k, v)?;
    let (l, off) = (geometry.kv_rows, geometry.q_offset);
    graph_attention_into(pool, q, k, v, opts, state, move |i, absorb| {
        local_row(l, n, off + i, absorb)
    })
}

/// Local windowed attention (`|i−j| ≤ n`) into an existing state —
/// square-geometry wrapper over [`local_attention_windowed_into`].
pub fn local_attention_into<T: Real>(
    pool: &ThreadPool,
    n: usize,
    q: &Matrix<T>,
    k: &Matrix<T>,
    v: &Matrix<T>,
    opts: &KernelOptions<'_>,
    state: &mut AttentionState<T>,
) -> Result<(), AttnError> {
    local_attention_windowed_into(pool, n, Geometry::square(q.rows()), q, k, v, opts, state)
}

/// Local windowed attention with a fresh state.
pub fn local_attention<T: Real>(
    pool: &ThreadPool,
    n: usize,
    q: &Matrix<T>,
    k: &Matrix<T>,
    v: &Matrix<T>,
    opts: &KernelOptions<'_>,
) -> Result<Matrix<T>, AttnError> {
    let mut state = AttentionState::new(q.rows(), v.cols());
    local_attention_into(pool, n, q, k, v, opts, &mut state)?;
    Ok(state.into_output())
}

/// 1-D dilated attention over any query window (see
/// [`local_attention_windowed_into`] for the geometry convention).
#[allow(clippy::too_many_arguments)] // geometry + the paper's parameterization
pub fn dilated1d_attention_windowed_into<T: Real>(
    pool: &ThreadPool,
    w: usize,
    r: usize,
    geometry: Geometry,
    q: &Matrix<T>,
    k: &Matrix<T>,
    v: &Matrix<T>,
    opts: &KernelOptions<'_>,
    state: &mut AttentionState<T>,
) -> Result<(), AttnError> {
    if w == 0 {
        return Err(AttnError::BadParameter {
            what: "dilated window width w must be positive",
        });
    }
    check_window(geometry, q, k, v)?;
    let (l, off) = (geometry.kv_rows, geometry.q_offset);
    graph_attention_into(pool, q, k, v, opts, state, move |i, absorb| {
        dilated1d_row(l, w, r, off + i, absorb)
    })
}

/// 1-D dilated attention (`|i−j| < w ∧ |i−j| mod (r+1) = 0`) into state —
/// square-geometry wrapper over [`dilated1d_attention_windowed_into`].
#[allow(clippy::too_many_arguments)] // the paper's kernel parameterization
pub fn dilated1d_attention_into<T: Real>(
    pool: &ThreadPool,
    w: usize,
    r: usize,
    q: &Matrix<T>,
    k: &Matrix<T>,
    v: &Matrix<T>,
    opts: &KernelOptions<'_>,
    state: &mut AttentionState<T>,
) -> Result<(), AttnError> {
    dilated1d_attention_windowed_into(pool, w, r, Geometry::square(q.rows()), q, k, v, opts, state)
}

/// 1-D dilated attention with a fresh state.
pub fn dilated1d_attention<T: Real>(
    pool: &ThreadPool,
    w: usize,
    r: usize,
    q: &Matrix<T>,
    k: &Matrix<T>,
    v: &Matrix<T>,
    opts: &KernelOptions<'_>,
) -> Result<Matrix<T>, AttnError> {
    let mut state = AttentionState::new(q.rows(), v.cols());
    dilated1d_attention_into(pool, w, r, q, k, v, opts, &mut state)?;
    Ok(state.into_output())
}

/// 2-D dilated (block) attention over any query window (see
/// [`local_attention_windowed_into`] for the geometry convention).
#[allow(clippy::too_many_arguments)] // geometry + the paper's parameterization
pub fn dilated2d_attention_windowed_into<T: Real>(
    pool: &ThreadPool,
    block_size: usize,
    r: usize,
    geometry: Geometry,
    q: &Matrix<T>,
    k: &Matrix<T>,
    v: &Matrix<T>,
    opts: &KernelOptions<'_>,
    state: &mut AttentionState<T>,
) -> Result<(), AttnError> {
    if block_size == 0 {
        return Err(AttnError::BadParameter {
            what: "block_size must be positive",
        });
    }
    check_window(geometry, q, k, v)?;
    let (l, off) = (geometry.kv_rows, geometry.q_offset);
    graph_attention_into(pool, q, k, v, opts, state, move |i, absorb| {
        dilated2d_row(l, block_size, r, off + i, absorb)
    })
}

/// 2-D dilated (block) attention into state: diagonal blocks of
/// `block_size`, in-block offsets dilated by `r` on both axes —
/// square-geometry wrapper over [`dilated2d_attention_windowed_into`].
#[allow(clippy::too_many_arguments)] // the paper's kernel parameterization
pub fn dilated2d_attention_into<T: Real>(
    pool: &ThreadPool,
    block_size: usize,
    r: usize,
    q: &Matrix<T>,
    k: &Matrix<T>,
    v: &Matrix<T>,
    opts: &KernelOptions<'_>,
    state: &mut AttentionState<T>,
) -> Result<(), AttnError> {
    dilated2d_attention_windowed_into(
        pool,
        block_size,
        r,
        Geometry::square(q.rows()),
        q,
        k,
        v,
        opts,
        state,
    )
}

/// 2-D dilated attention with a fresh state.
pub fn dilated2d_attention<T: Real>(
    pool: &ThreadPool,
    block_size: usize,
    r: usize,
    q: &Matrix<T>,
    k: &Matrix<T>,
    v: &Matrix<T>,
    opts: &KernelOptions<'_>,
) -> Result<Matrix<T>, AttnError> {
    let mut state = AttentionState::new(q.rows(), v.cols());
    dilated2d_attention_into(pool, block_size, r, q, k, v, opts, &mut state)?;
    Ok(state.into_output())
}

/// Global (non-local) attention into state — the paper's composition
/// primitive: the full global mask for token set `globals` *minus* the
/// local window `|i−j| ≤ n_sub`, so that chaining
/// `local(n_sub)` → `global(globals, n_sub)` covers the Longformer union
/// exactly once.
#[allow(clippy::too_many_arguments)] // the paper's kernel parameterization
pub fn global_attention_into<T: Real>(
    pool: &ThreadPool,
    globals: &GlobalSet,
    n_sub: usize,
    q: &Matrix<T>,
    k: &Matrix<T>,
    v: &Matrix<T>,
    opts: &KernelOptions<'_>,
    state: &mut AttentionState<T>,
) -> Result<(), AttnError> {
    global_attention_windowed_into(
        pool,
        globals,
        n_sub,
        Geometry::square(q.rows()),
        q,
        k,
        v,
        opts,
        state,
    )
}

/// Global (non-local) attention over any query window (see
/// [`local_attention_windowed_into`] for the geometry convention). The
/// global set's context length pins `kv_rows`.
#[allow(clippy::too_many_arguments)] // geometry + the paper's parameterization
pub fn global_attention_windowed_into<T: Real>(
    pool: &ThreadPool,
    globals: &GlobalSet,
    n_sub: usize,
    geometry: Geometry,
    q: &Matrix<T>,
    k: &Matrix<T>,
    v: &Matrix<T>,
    opts: &KernelOptions<'_>,
    state: &mut AttentionState<T>,
) -> Result<(), AttnError> {
    check_window(geometry, q, k, v)?;
    let (l, off) = (geometry.kv_rows, geometry.q_offset);
    if globals.context_len() != l {
        return Err(AttnError::MaskShapeMismatch {
            mask: (globals.context_len(), globals.context_len()),
            l,
        });
    }
    graph_attention_into(pool, q, k, v, opts, state, move |i, absorb| {
        global_row(l, globals, n_sub, off + i, absorb)
    })
}

/// Global (non-local) attention with a fresh state.
pub fn global_attention<T: Real>(
    pool: &ThreadPool,
    globals: &GlobalSet,
    n_sub: usize,
    q: &Matrix<T>,
    k: &Matrix<T>,
    v: &Matrix<T>,
    opts: &KernelOptions<'_>,
) -> Result<Matrix<T>, AttnError> {
    let mut state = AttentionState::new(q.rows(), v.cols());
    global_attention_into(pool, globals, n_sub, q, k, v, opts, &mut state)?;
    Ok(state.into_output())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::explicit::csr_attention;
    use gpa_masks::{Dilated2d, GlobalMinusLocal, MaskPattern};
    use gpa_parallel::{ThreadPool, WorkCounter};
    use gpa_tensor::init::qkv;
    use gpa_tensor::paper_allclose;

    fn pool() -> ThreadPool {
        ThreadPool::new(4)
    }

    #[test]
    fn local_matches_csr_of_same_mask() {
        let l = 64;
        let (q, k, v) = qkv::<f64>(l, 16, 21);
        let p = pool();
        for n in [0usize, 1, 5, 63, 200] {
            let implicit = local_attention(&p, n, &q, &k, &v, &KernelOptions::new()).unwrap();
            let explicit = csr_attention(
                &p,
                &LocalWindow::new(l, n).to_csr(),
                &q,
                &k,
                &v,
                &KernelOptions::new(),
            )
            .unwrap();
            assert!(paper_allclose(&implicit, &explicit), "n={n}");
        }
    }

    #[test]
    fn dilated1d_matches_csr_of_same_mask() {
        let l = 48;
        let (q, k, v) = qkv::<f64>(l, 8, 22);
        let p = pool();
        for (w, r) in [(1usize, 0usize), (5, 1), (9, 2), (64, 3)] {
            let implicit =
                dilated1d_attention(&p, w, r, &q, &k, &v, &KernelOptions::new()).unwrap();
            let explicit = csr_attention(
                &p,
                &Dilated1d::new(l, w, r).to_csr(),
                &q,
                &k,
                &v,
                &KernelOptions::new(),
            )
            .unwrap();
            assert!(paper_allclose(&implicit, &explicit), "w={w} r={r}");
        }
    }

    #[test]
    fn dilated2d_matches_csr_of_same_mask() {
        let l = 40;
        let (q, k, v) = qkv::<f64>(l, 8, 23);
        let p = pool();
        for (bs, r) in [(4usize, 0usize), (8, 1), (7, 2), (40, 1)] {
            let implicit =
                dilated2d_attention(&p, bs, r, &q, &k, &v, &KernelOptions::new()).unwrap();
            let explicit = csr_attention(
                &p,
                &Dilated2d::new(l, bs, r).to_csr(),
                &q,
                &k,
                &v,
                &KernelOptions::new(),
            )
            .unwrap();
            assert!(paper_allclose(&implicit, &explicit), "bs={bs} r={r}");
        }
    }

    #[test]
    fn global_matches_csr_of_global_minus_local() {
        let l = 36;
        let (q, k, v) = qkv::<f64>(l, 8, 24);
        let p = pool();
        for g in [0usize, 1, 3] {
            for n in [0usize, 2] {
                let globals = GlobalSet::evenly_spaced(l, g);
                let implicit =
                    global_attention(&p, &globals, n, &q, &k, &v, &KernelOptions::new()).unwrap();
                let explicit = csr_attention(
                    &p,
                    &GlobalMinusLocal::new(globals.clone(), n).to_csr(),
                    &q,
                    &k,
                    &v,
                    &KernelOptions::new(),
                )
                .unwrap();
                assert!(paper_allclose(&implicit, &explicit), "g={g} n={n}");
            }
        }
    }

    #[test]
    fn implicit_kernels_are_work_optimal() {
        let l = 30;
        let (q, k, v) = qkv::<f64>(l, 8, 25);
        let p = pool();
        let counter = WorkCounter::new();
        let opts = KernelOptions::new().with_counter(&counter);

        let _ = local_attention(&p, 3, &q, &k, &v, &opts).unwrap();
        assert_eq!(counter.dot_products(), LocalWindow::new(l, 3).nnz() as u64);

        counter.reset();
        let _ = dilated1d_attention(&p, 7, 1, &q, &k, &v, &opts).unwrap();
        assert_eq!(counter.dot_products(), Dilated1d::new(l, 7, 1).nnz() as u64);

        counter.reset();
        let _ = dilated2d_attention(&p, 6, 1, &q, &k, &v, &opts).unwrap();
        assert_eq!(counter.dot_products(), Dilated2d::new(l, 6, 1).nnz() as u64);

        counter.reset();
        let globals = GlobalSet::evenly_spaced(l, 2);
        let _ = global_attention(&p, &globals, 1, &q, &k, &v, &opts).unwrap();
        assert_eq!(
            counter.dot_products(),
            GlobalMinusLocal::new(globals, 1).to_csr().nnz() as u64
        );
    }

    #[test]
    fn bad_parameters_rejected() {
        let (q, k, v) = qkv::<f64>(8, 4, 0);
        let p = pool();
        assert!(matches!(
            dilated1d_attention(&p, 0, 1, &q, &k, &v, &KernelOptions::new()),
            Err(AttnError::BadParameter { .. })
        ));
        assert!(matches!(
            dilated2d_attention(&p, 0, 1, &q, &k, &v, &KernelOptions::new()),
            Err(AttnError::BadParameter { .. })
        ));
        let wrong_globals = GlobalSet::prefix(9, 1);
        assert!(matches!(
            global_attention(&p, &wrong_globals, 0, &q, &k, &v, &KernelOptions::new()),
            Err(AttnError::MaskShapeMismatch { .. })
        ));
    }

    #[test]
    fn windowed_rows_are_bitwise_rows_of_the_square_run() {
        let l = 48;
        let (q, k, v) = qkv::<f64>(l, 8, 26);
        let p = pool();
        let opts = KernelOptions::new();
        let square = local_attention(&p, 5, &q, &k, &v, &opts).unwrap();
        for (off, rows) in [(0usize, 48usize), (0, 7), (13, 9), (47, 1)] {
            let q_win = q.rows_slice(off, off + rows);
            let mut state = AttentionState::new(rows, v.cols());
            local_attention_windowed_into(
                &p,
                5,
                Geometry::window(off, rows, l),
                &q_win,
                &k,
                &v,
                &opts,
                &mut state,
            )
            .unwrap();
            let out = state.into_output();
            for i in 0..rows {
                assert_eq!(out.row(i), square.row(off + i), "off={off} row={i}");
            }
        }
    }

    #[test]
    fn window_overhang_rejected() {
        let l = 16;
        let (q, k, v) = qkv::<f64>(l, 4, 27);
        let q_win = q.rows_slice(10, 16);
        let mut state = AttentionState::new(6, v.cols());
        let err = local_attention_windowed_into(
            &pool(),
            2,
            Geometry::window(11, 6, l), // 11 + 6 > 16
            &q_win,
            &k,
            &v,
            &KernelOptions::new(),
            &mut state,
        )
        .unwrap_err();
        assert!(matches!(err, AttnError::WindowMismatch { .. }));
    }

    #[test]
    fn f32_kernels_match_f64_loosely() {
        let l = 64;
        let (q, k, v) = qkv::<f64>(l, 16, 30);
        let (q32, k32, v32) = (q.cast::<f32>(), k.cast::<f32>(), v.cast::<f32>());
        let p = pool();
        let hi = local_attention(&p, 4, &q, &k, &v, &KernelOptions::new()).unwrap();
        let lo = local_attention(&p, 4, &q32, &k32, &v32, &KernelOptions::new()).unwrap();
        assert!(hi.max_abs_diff(&lo.cast::<f64>()) < 1e-5);
    }
}
