//! The six graph-processing attention kernels of Section IV-B.
//!
//! | Kernel | Mask | Module |
//! |---|---|---|
//! | COO (linear / binary search) | explicit | [`explicit`] |
//! | CSR | explicit | [`explicit`] |
//! | Local | implicit | [`implicit`] |
//! | 1-D Dilated | implicit | [`implicit`] |
//! | 2-D Dilated | implicit | [`implicit`] |
//! | Global (non-local) | implicit | [`implicit`] |

pub mod dia;
pub mod explicit;
pub mod implicit;

pub use dia::{dia_attention, dia_attention_into, dia_attention_windowed_into};
pub use explicit::{
    coo_attention, coo_attention_into, csr_attention, csr_attention_into, CooSearch,
};
pub use implicit::{
    dilated1d_attention, dilated1d_attention_into, dilated1d_attention_windowed_into,
    dilated2d_attention, dilated2d_attention_into, dilated2d_attention_windowed_into,
    global_attention, global_attention_into, global_attention_windowed_into, local_attention,
    local_attention_into, local_attention_windowed_into,
};
