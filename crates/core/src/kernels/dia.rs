//! DIA (diagonal-format) kernel — the "sophisticated sparse representation
//! for specific attention mask patterns" extension of Section VI-A.
//!
//! For banded masks, the explicit mask shrinks from `O(Sf·L²)` (CSR/COO) to
//! `O(#diagonals)` while remaining a *data structure* rather than a
//! hard-coded pattern: the kernel reaches the same context lengths as the
//! implicit local/dilated kernels (Table II) but accepts arbitrary diagonal
//! sets, e.g. unions of several windows or asymmetric lookback bands.

use crate::driver::graph_attention_into;
use crate::error::AttnError;
use crate::geometry::Geometry;
use crate::options::KernelOptions;
use crate::state::AttentionState;
use gpa_parallel::ThreadPool;
use gpa_sparse::DiaMask;
use gpa_tensor::{Matrix, Real};

/// Stream row `i`'s diagonal-band neighbors — the single enumeration rule
/// shared by the standalone kernel and the batched plan executor.
#[inline]
pub(crate) fn dia_row(mask: &DiaMask, i: usize, absorb: &mut dyn FnMut(usize)) {
    let l = mask.context_len() as i64;
    let i = i as i64;
    for &d in mask.offsets() {
        let j = i + d;
        if j >= 0 && j < l {
            absorb(j as usize);
        }
    }
}

/// DIA attention over any query window: the mask's context length pins
/// `kv_rows`, and output row `i` is absolute row `geometry.q_offset + i`
/// of the banded square problem. A band of non-positive offsets is the
/// causal-decode showcase — its rows never look forward, so KV-cached
/// decode reproduces the full square forward bitwise.
#[allow(clippy::too_many_arguments)] // geometry + the paper's parameterization
pub fn dia_attention_windowed_into<T: Real>(
    pool: &ThreadPool,
    mask: &DiaMask,
    geometry: Geometry,
    q: &Matrix<T>,
    k: &Matrix<T>,
    v: &Matrix<T>,
    opts: &KernelOptions<'_>,
    state: &mut AttentionState<T>,
) -> Result<(), AttnError> {
    if q.rows() != geometry.q_rows || k.rows() != geometry.kv_rows {
        return Err(AttnError::ContextLengthMismatch {
            q: q.rows(),
            k: k.rows(),
            v: v.rows(),
        });
    }
    if mask.context_len() != geometry.kv_rows {
        return Err(AttnError::MaskShapeMismatch {
            mask: (mask.context_len(), mask.context_len()),
            l: geometry.kv_rows,
        });
    }
    geometry.check_window()?;
    let off = geometry.q_offset;
    graph_attention_into(pool, q, k, v, opts, state, move |i, absorb| {
        dia_row(mask, off + i, absorb)
    })
}

/// DIA attention into an existing state (composable) — square-geometry
/// wrapper over [`dia_attention_windowed_into`].
pub fn dia_attention_into<T: Real>(
    pool: &ThreadPool,
    mask: &DiaMask,
    q: &Matrix<T>,
    k: &Matrix<T>,
    v: &Matrix<T>,
    opts: &KernelOptions<'_>,
    state: &mut AttentionState<T>,
) -> Result<(), AttnError> {
    dia_attention_windowed_into(pool, mask, Geometry::square(q.rows()), q, k, v, opts, state)
}

/// DIA attention with a fresh state; returns the output matrix.
pub fn dia_attention<T: Real>(
    pool: &ThreadPool,
    mask: &DiaMask,
    q: &Matrix<T>,
    k: &Matrix<T>,
    v: &Matrix<T>,
    opts: &KernelOptions<'_>,
) -> Result<Matrix<T>, AttnError> {
    let mut state = AttentionState::new(q.rows(), v.cols());
    dia_attention_into(pool, mask, q, k, v, opts, &mut state)?;
    Ok(state.into_output())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::explicit::csr_attention;
    use crate::kernels::implicit::{dilated1d_attention, local_attention};
    use gpa_parallel::{ThreadPool, WorkCounter};
    use gpa_tensor::init::qkv;
    use gpa_tensor::paper_allclose;

    fn pool() -> ThreadPool {
        ThreadPool::new(4)
    }

    #[test]
    fn dia_matches_local_kernel() {
        let l = 60;
        let (q, k, v) = qkv::<f64>(l, 8, 41);
        let p = pool();
        for n in [0usize, 2, 7, 100] {
            let dia = DiaMask::local(l, n);
            let a = dia_attention(&p, &dia, &q, &k, &v, &KernelOptions::new()).unwrap();
            let b = local_attention(&p, n, &q, &k, &v, &KernelOptions::new()).unwrap();
            assert!(paper_allclose(&a, &b), "n={n}");
        }
    }

    #[test]
    fn dia_matches_dilated_kernel() {
        let l = 48;
        let (q, k, v) = qkv::<f64>(l, 8, 42);
        let p = pool();
        for (w, r) in [(1usize, 0usize), (7, 1), (13, 3)] {
            let dia = DiaMask::dilated1d(l, w, r);
            let a = dia_attention(&p, &dia, &q, &k, &v, &KernelOptions::new()).unwrap();
            let b = dilated1d_attention(&p, w, r, &q, &k, &v, &KernelOptions::new()).unwrap();
            assert!(paper_allclose(&a, &b), "w={w} r={r}");
        }
    }

    #[test]
    fn arbitrary_band_matches_csr() {
        // An asymmetric multi-band mask no implicit kernel covers.
        let l = 40;
        let (q, k, v) = qkv::<f64>(l, 8, 43);
        let p = pool();
        let dia = DiaMask::new(l, vec![-20, -3, -1, 0, 2, 5, 30]).unwrap();
        let a = dia_attention(&p, &dia, &q, &k, &v, &KernelOptions::new()).unwrap();
        let b = csr_attention(&p, &dia.to_csr(), &q, &k, &v, &KernelOptions::new()).unwrap();
        assert!(paper_allclose(&a, &b));
    }

    #[test]
    fn dia_is_work_optimal() {
        let l = 36;
        let (q, k, v) = qkv::<f64>(l, 8, 44);
        let dia = DiaMask::new(l, vec![-5, 0, 1, 9]).unwrap();
        let counter = WorkCounter::new();
        let opts = KernelOptions::new().with_counter(&counter);
        let _ = dia_attention(&pool(), &dia, &q, &k, &v, &opts).unwrap();
        assert_eq!(counter.dot_products(), dia.nnz() as u64);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let (q, k, v) = qkv::<f64>(8, 4, 0);
        let dia = DiaMask::local(9, 1);
        assert!(matches!(
            dia_attention(&pool(), &dia, &q, &k, &v, &KernelOptions::new()),
            Err(AttnError::MaskShapeMismatch { .. })
        ));
    }
}
