//! Explicit-mask kernels: COO and CSR (Section IV-B).
//!
//! Both receive the sparse mask (graph) as input and stream each row's
//! neighbors through the online-softmax driver. The difference the paper
//! measures (Fig. 3) is *how a row finds its neighbors*:
//!
//! - **CSR**: two offset loads give the neighbor slice — O(1) per row;
//! - **COO**: the kernel must *search* for its row's segment. The paper's
//!   implementation scans linearly from position 0, so "the search cost
//!   grows as the algorithm strays farther from row zero" — the reason COO
//!   underperforms every other kernel. [`CooSearch::Linear`] reproduces
//!   that; [`CooSearch::Binary`] is the fix studied as ablation A1.

use crate::driver::graph_attention_into;
use crate::error::AttnError;
use crate::options::KernelOptions;
use crate::state::AttentionState;
use gpa_parallel::{LocalTally, ThreadPool, WorkCounter};
use gpa_sparse::{CooMask, CsrMask};
use gpa_tensor::{Matrix, Real};

/// Row-bound search strategy for the COO kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CooSearch {
    /// Scan from the start of the index vectors, as the paper's kernel
    /// does. Cost grows linearly with the row position.
    #[default]
    Linear,
    /// Binary search on the sorted row-index vector (ablation A1).
    Binary,
}

/// Stream row `i`'s neighbors from a CSR mask — the single enumeration
/// rule shared by the standalone kernel and the batched plan executor.
#[inline]
pub(crate) fn csr_row(mask: &CsrMask, i: usize, absorb: &mut dyn FnMut(usize)) {
    for &j in mask.row(i) {
        absorb(j as usize);
    }
}

/// Stream row `i`'s neighbors from a COO mask under the given search
/// strategy. The linear search's scanned-prefix length is flushed to
/// `counter` (a per-row quantity, distinct from the driver's per-edge
/// tally).
#[inline]
pub(crate) fn coo_row(
    mask: &CooMask,
    search: CooSearch,
    i: usize,
    counter: Option<&WorkCounter>,
    absorb: &mut dyn FnMut(usize),
) {
    let cols = mask.col_indices();
    let (lo, hi) = match search {
        CooSearch::Linear => {
            let (lo, hi, scanned) = mask.row_bounds_linear(i);
            if let Some(counter) = counter {
                let mut t = LocalTally::new(counter);
                t.searched(scanned as u64);
            }
            (lo, hi)
        }
        CooSearch::Binary => mask.row_bounds_binary(i),
    };
    for &j in &cols[lo..hi] {
        absorb(j as usize);
    }
}

/// CSR attention into an existing state (composable).
pub fn csr_attention_into<T: Real>(
    pool: &ThreadPool,
    mask: &CsrMask,
    q: &Matrix<T>,
    k: &Matrix<T>,
    v: &Matrix<T>,
    opts: &KernelOptions<'_>,
    state: &mut AttentionState<T>,
) -> Result<(), AttnError> {
    check_mask_shape(mask.rows(), mask.cols(), q.rows(), k.rows())?;
    graph_attention_into(pool, q, k, v, opts, state, |i, absorb| {
        csr_row(mask, i, absorb)
    })
}

/// CSR attention with a fresh state; returns the output matrix.
pub fn csr_attention<T: Real>(
    pool: &ThreadPool,
    mask: &CsrMask,
    q: &Matrix<T>,
    k: &Matrix<T>,
    v: &Matrix<T>,
    opts: &KernelOptions<'_>,
) -> Result<Matrix<T>, AttnError> {
    let mut state = AttentionState::new(q.rows(), v.cols());
    csr_attention_into(pool, mask, q, k, v, opts, &mut state)?;
    Ok(state.into_output())
}

/// COO attention into an existing state.
///
/// With [`CooSearch::Linear`] the kernel reproduces the paper's per-row
/// prefix scan (instrumented via the options' work counter as
/// `neighbor_searches`).
#[allow(clippy::too_many_arguments)] // the paper's kernel parameterization
pub fn coo_attention_into<T: Real>(
    pool: &ThreadPool,
    mask: &CooMask,
    search: CooSearch,
    q: &Matrix<T>,
    k: &Matrix<T>,
    v: &Matrix<T>,
    opts: &KernelOptions<'_>,
    state: &mut AttentionState<T>,
) -> Result<(), AttnError> {
    check_mask_shape(mask.rows(), mask.cols(), q.rows(), k.rows())?;
    graph_attention_into(pool, q, k, v, opts, state, |i, absorb| {
        coo_row(mask, search, i, opts.counter, absorb)
    })
}

/// COO attention with a fresh state; returns the output matrix.
pub fn coo_attention<T: Real>(
    pool: &ThreadPool,
    mask: &CooMask,
    search: CooSearch,
    q: &Matrix<T>,
    k: &Matrix<T>,
    v: &Matrix<T>,
    opts: &KernelOptions<'_>,
) -> Result<Matrix<T>, AttnError> {
    let mut state = AttentionState::new(q.rows(), v.cols());
    coo_attention_into(pool, mask, search, q, k, v, opts, &mut state)?;
    Ok(state.into_output())
}

/// Explicit masks are rectangular: `rows` must match the query count and
/// `cols` the key/value count (equal for self-attention; different for
/// cross-attention or a distributed row slice).
fn check_mask_shape(rows: usize, cols: usize, l_q: usize, l_kv: usize) -> Result<(), AttnError> {
    if rows != l_q || cols != l_kv {
        return Err(AttnError::MaskShapeMismatch {
            mask: (rows, cols),
            l: l_q,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::sdp::masked_sdp;
    use gpa_masks::{LocalWindow, MaskPattern, RandomUniform};
    use gpa_parallel::{ThreadPool, WorkCounter};
    use gpa_tensor::init::qkv;
    use gpa_tensor::paper_allclose;

    fn pool() -> ThreadPool {
        ThreadPool::new(4)
    }

    #[test]
    fn csr_matches_reference_on_random_mask() {
        let l = 48;
        let (q, k, v) = qkv::<f64>(l, 16, 7);
        let pat = RandomUniform::new(l, 0.2, 3);
        let csr = pat.to_csr();
        let out = csr_attention(&pool(), &csr, &q, &k, &v, &KernelOptions::new()).unwrap();
        let reference =
            masked_sdp(&pool(), &pat.to_dense(), &q, &k, &v, &KernelOptions::new()).unwrap();
        assert!(paper_allclose(&out, &reference));
    }

    #[test]
    fn coo_linear_and_binary_agree_with_csr() {
        let l = 40;
        let (q, k, v) = qkv::<f64>(l, 8, 11);
        let pat = RandomUniform::new(l, 0.15, 9);
        let coo = pat.to_coo();
        let csr = pat.to_csr();
        let p = pool();
        let via_csr = csr_attention(&p, &csr, &q, &k, &v, &KernelOptions::new()).unwrap();
        let via_lin = coo_attention(
            &p,
            &coo,
            CooSearch::Linear,
            &q,
            &k,
            &v,
            &KernelOptions::new(),
        )
        .unwrap();
        let via_bin = coo_attention(
            &p,
            &coo,
            CooSearch::Binary,
            &q,
            &k,
            &v,
            &KernelOptions::new(),
        )
        .unwrap();
        assert!(paper_allclose(&via_lin, &via_csr));
        assert!(paper_allclose(&via_bin, &via_csr));
    }

    #[test]
    fn kernels_are_work_optimal() {
        let l = 32;
        let (q, k, v) = qkv::<f64>(l, 8, 2);
        let pat = LocalWindow::new(l, 3);
        let p = pool();

        let counter = WorkCounter::new();
        let opts = KernelOptions::new().with_counter(&counter);
        let _ = csr_attention(&p, &pat.to_csr(), &q, &k, &v, &opts).unwrap();
        assert!(counter.report().is_work_optimal(pat.nnz() as u64));

        counter.reset();
        let _ = coo_attention(&p, &pat.to_coo(), CooSearch::Linear, &q, &k, &v, &opts).unwrap();
        assert!(counter.report().is_work_optimal(pat.nnz() as u64));
        // The linear search scanned a prefix per row: strictly positive for
        // any mask with entries beyond row 0.
        assert!(counter.neighbor_searches() > 0);

        counter.reset();
        let _ = coo_attention(&p, &pat.to_coo(), CooSearch::Binary, &q, &k, &v, &opts).unwrap();
        assert!(counter.report().is_work_optimal(pat.nnz() as u64));
        assert_eq!(counter.neighbor_searches(), 0);
    }

    #[test]
    fn linear_search_cost_is_quadratic_in_rows() {
        // Σ_rows (prefix length) ≈ nnz·L/2 for a uniform mask — the COO
        // pathology from Fig. 3.
        let l = 64;
        let pat = LocalWindow::new(l, 1);
        let coo = pat.to_coo();
        let (q, k, v) = qkv::<f64>(l, 4, 3);
        let counter = WorkCounter::new();
        let opts = KernelOptions::new().with_counter(&counter);
        let _ = coo_attention(&pool(), &coo, CooSearch::Linear, &q, &k, &v, &opts).unwrap();
        let nnz = pat.nnz() as u64;
        assert!(
            counter.neighbor_searches() > nnz * (l as u64) / 4,
            "searches {} should scale with nnz·L (nnz={nnz}, L={l})",
            counter.neighbor_searches()
        );
    }

    #[test]
    fn mask_shape_mismatch_is_rejected() {
        let (q, k, v) = qkv::<f64>(8, 4, 0);
        let wrong = LocalWindow::new(9, 1).to_csr();
        let err = csr_attention(&pool(), &wrong, &q, &k, &v, &KernelOptions::new()).unwrap_err();
        assert!(matches!(err, AttnError::MaskShapeMismatch { .. }));
    }

    #[test]
    fn empty_mask_produces_zero_output() {
        let (q, k, v) = qkv::<f64>(6, 4, 1);
        let empty = CsrMask::empty(6, 6);
        let out = csr_attention(&pool(), &empty, &q, &k, &v, &KernelOptions::new()).unwrap();
        assert!(out.as_slice().iter().all(|&x| x == 0.0));
    }
}
