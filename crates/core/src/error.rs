//! Error type for the attention kernels' public API.

use std::fmt;

/// Input validation failure for an attention kernel call.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AttnError {
    /// Q, K, V, or the output state disagree on the context length `L`.
    ContextLengthMismatch {
        /// Rows of Q.
        q: usize,
        /// Rows of K.
        k: usize,
        /// Rows of V.
        v: usize,
    },
    /// Q and K disagree on the key dimension `dk`.
    KeyDimMismatch {
        /// Columns of Q.
        q: usize,
        /// Columns of K.
        k: usize,
    },
    /// The output/state shape does not match `(L, dv)`.
    StateShapeMismatch {
        /// Expected shape.
        expected: (usize, usize),
        /// Actual shape.
        actual: (usize, usize),
    },
    /// The mask's shape does not match the context length.
    MaskShapeMismatch {
        /// Mask rows/cols.
        mask: (usize, usize),
        /// Context length from Q.
        l: usize,
    },
    /// The query window falls outside the logical square attention problem
    /// (`q_offset + q_rows > kv_rows`).
    WindowMismatch {
        /// Absolute index of the first query row.
        q_offset: usize,
        /// Number of query rows.
        q_rows: usize,
        /// Number of key/value rows.
        kv_rows: usize,
    },
    /// A mask parameter is invalid for this kernel (e.g. zero block size).
    BadParameter {
        /// Human-readable description.
        what: &'static str,
    },
    /// A routed plan and its request disagree about routing: incompatible
    /// routed steps in one plan, a missing or wrong-spec
    /// [`crate::Routing`], or a routing that does not cover the request's
    /// tokens.
    RoutingMismatch {
        /// Human-readable description.
        what: &'static str,
    },
}

impl fmt::Display for AttnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttnError::ContextLengthMismatch { q, k, v } => {
                write!(f, "Q/K/V row counts differ: {q}/{k}/{v}")
            }
            AttnError::KeyDimMismatch { q, k } => {
                write!(f, "Q has dk={q} but K has dk={k}")
            }
            AttnError::StateShapeMismatch { expected, actual } => write!(
                f,
                "state shape {actual:?} does not match expected {expected:?}"
            ),
            AttnError::MaskShapeMismatch { mask, l } => {
                write!(f, "mask shape {mask:?} does not match context length {l}")
            }
            AttnError::WindowMismatch {
                q_offset,
                q_rows,
                kv_rows,
            } => write!(
                f,
                "query window {q_offset}..{} exceeds key/value context {kv_rows}",
                q_offset + q_rows
            ),
            AttnError::BadParameter { what } => write!(f, "bad kernel parameter: {what}"),
            AttnError::RoutingMismatch { what } => write!(f, "routing mismatch: {what}"),
        }
    }
}

impl std::error::Error for AttnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = AttnError::ContextLengthMismatch { q: 1, k: 2, v: 3 };
        assert!(e.to_string().contains("1/2/3"));
        let e = AttnError::KeyDimMismatch { q: 64, k: 32 };
        assert!(e.to_string().contains("64"));
        let e = AttnError::BadParameter {
            what: "w must be positive",
        };
        assert!(e.to_string().contains("w must be positive"));
        let e = AttnError::WindowMismatch {
            q_offset: 6,
            q_rows: 3,
            kv_rows: 8,
        };
        assert!(e.to_string().contains("6..9"));
        let e = AttnError::RoutingMismatch {
            what: "a routed plan needs a routing",
        };
        assert!(e.to_string().contains("routing mismatch"));
    }
}
