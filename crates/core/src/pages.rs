//! Paged KV allocation — fixed-size pages, a free list, per-sequence page
//! tables.
//!
//! A serving scheduler keeps one [`KvCache`] per in-flight sequence, and
//! the resource that limits how many sequences can be in flight is total
//! KV memory. The predecessor of this module (`SlotPool`) accounted for
//! that memory by **worst-case reservation**: a sequence reserved its full
//! prompt-plus-generated length at admission, so a 16-token prompt under a
//! 4096-token cap held 4096 tokens of budget from its first tick. That
//! makes budgets trivially safe — and leaves almost all of the memory
//! idle, which is exactly the failure mode PagedAttention removes.
//!
//! [`PagePool`] is the paged replacement. Capacity is a fixed set of
//! pages of [`PagePool::page_size`] tokens each; every live sequence owns
//! a **page table** (a list of physical page ids) that grows only when an
//! append crosses a page boundary, and a free-page list hands ids out and
//! takes them back. A sequence therefore costs what it *currently* caches,
//! rounded up to whole pages — admission can pack the pool by usage, and a
//! scheduler that oversubscribes recovers by releasing a victim's pages
//! (evict-and-recompute; see `gpa-serve`).
//!
//! Physically, each sequence's K/V rows stay in one contiguous
//! [`KvCache`] — the page table governs *capacity*, not data layout, so
//! kernels keep borrowing whole `K`/`V` matrices with zero copies and the
//! library's bitwise guarantees are untouched. Page ids are still real:
//! finite, conserved (`free + mapped == total`, asserted by
//! [`PagePool::assert_page_invariants`]), and never double-mapped.
//!
//! **Evict-and-swap** rides behind that same accounting layer: a
//! [`SwapArena`] is the host-side parking lot for evicted caches. Instead
//! of dropping a victim's cache and rebuilding it row by row on resume
//! (evict-and-recompute, `O(context)`), a scheduler releases the victim's
//! pages and [`SwapArena::try_park`]s the whole per-layer cache stack —
//! K/V rows, f16 payloads, and routing state move as-is, `O(1)` in
//! context length. Resume is [`SwapArena::take`] + [`PagePool::try_adopt`]
//! (all-or-nothing), splicing the identical bytes back under a fresh page
//! table. Arena capacity is accounted in **bytes**
//! ([`KvCache::kv_bytes`]), parking is all-or-nothing, and conservation
//! extends across both structures: every cached token is either pool-paged
//! or arena-parked, never both, never lost
//! ([`SwapArena::assert_swap_invariants`]).
//!
//! Handles are generation-checked exactly as before: using a released or
//! stale [`SeqId`] / [`SwapTicket`] panics, because indices are recycled
//! and a stale handle is a logic error, not a recoverable condition.

use crate::cache::KvCache;
use gpa_tensor::{Matrix, Real};

/// Opaque handle to one live sequence in a [`PagePool`].
///
/// Handles are invalidated by [`PagePool::release`]; using a released
/// handle panics (sequence indices are recycled, so a stale handle is a
/// logic error, not a recoverable condition).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SeqId {
    index: usize,
    generation: u64,
}

struct PagedSeq<T> {
    cache: KvCache<T>,
    /// Physical page ids backing this sequence, in logical order; always
    /// exactly `ceil(cache.len() / page_size)` entries between calls.
    pages: Vec<usize>,
    generation: u64,
}

/// A pool of per-sequence [`KvCache`]s under block-paged allocation.
///
/// A pool entry is one growable cache: single-head for the engine's bare
/// serving decode surface ([`Self::allocate`]), or multi-head for one
/// decoder-stack *layer* ([`Self::allocate_heads`] — a model holds one
/// entry per layer, so page budgets count every layer). Pages account
/// cached **tokens**; head count, like `dk`, only widens the rows.
///
/// ```
/// use gpa_core::PagePool;
///
/// // 4 pages of 4 tokens each: room for 16 cached tokens in total.
/// let mut pool: PagePool<f32> = PagePool::new(4, 4);
/// let a = pool.allocate(8, 8);
/// assert_eq!(pool.pages_held(a), 0, "pages allocate on append, not up front");
/// assert!(pool.try_append(a, &[0.0; 8], &[0.0; 8]));
/// assert_eq!((pool.pages_held(a), pool.free_pages()), (1, 3));
/// let cache = pool.release(a);
/// assert_eq!(cache.len(), 1, "the cache keeps its tokens");
/// assert_eq!(pool.free_pages(), 4, "the pages come back");
/// ```
pub struct PagePool<T> {
    page_size: usize,
    total_pages: usize,
    /// Free physical page ids, popped from the back (LIFO reuse).
    free: Vec<usize>,
    seqs: Vec<Option<PagedSeq<T>>>,
    free_seqs: Vec<usize>,
    next_generation: u64,
}

impl<T: Real> PagePool<T> {
    /// Empty pool of `total_pages` pages, each holding `page_size` cached
    /// tokens.
    ///
    /// # Panics
    /// Panics if `page_size` is zero.
    pub fn new(total_pages: usize, page_size: usize) -> Self {
        assert!(page_size > 0, "page size must be positive");
        PagePool {
            page_size,
            total_pages,
            // Reversed so pop() hands out ids 0, 1, 2, … in order.
            free: (0..total_pages).rev().collect(),
            seqs: Vec::new(),
            free_seqs: Vec::new(),
            next_generation: 0,
        }
    }

    /// Tokens per page.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Total pages in the pool, free or mapped.
    pub fn total_pages(&self) -> usize {
        self.total_pages
    }

    /// Pages on the free list.
    pub fn free_pages(&self) -> usize {
        self.free.len()
    }

    /// Pages mapped into live page tables.
    pub fn used_pages(&self) -> usize {
        self.total_pages - self.free.len()
    }

    /// Pages needed to cache `tokens` tokens: `ceil(tokens / page_size)`.
    pub fn pages_for(&self, tokens: usize) -> usize {
        tokens.div_ceil(self.page_size)
    }

    /// Tokens actually cached right now, summed across live sequences.
    pub fn used_tokens(&self) -> usize {
        self.seqs.iter().flatten().map(|s| s.cache.len()).sum()
    }

    /// Number of live sequences.
    pub fn len(&self) -> usize {
        self.seqs.iter().flatten().count()
    }

    /// True when no sequences are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Admit a sequence: an empty single-head cache (`dk`/`dv` key and
    /// value dimensions) with an empty page table. Allocation itself
    /// costs nothing — pages are taken only when appends need them — so
    /// this cannot fail.
    pub fn allocate(&mut self, dk: usize, dv: usize) -> SeqId {
        self.install(KvCache::single(dk, dv), Vec::new())
    }

    /// Admit a multi-head sequence — one model *layer*'s cache in a
    /// decoder stack, where every layer of every sequence is its own pool
    /// entry so page budgets count all layers. Pages account **tokens**
    /// (the cache length); the head count is a row-width multiplier, like
    /// `dk`, and does not change the page arithmetic.
    pub fn allocate_heads(&mut self, heads: usize, dk: usize, dv: usize) -> SeqId {
        self.install(KvCache::new(heads, dk, dv), Vec::new())
    }

    /// Adopt an already-populated cache (e.g. one retained by a preempted
    /// sequence), allocating the pages its tokens occupy. Returns the
    /// cache untouched when the free list cannot cover it — the all-or-
    /// nothing resume path.
    pub fn try_adopt(&mut self, cache: KvCache<T>) -> Result<SeqId, KvCache<T>> {
        let needed = cache.len().div_ceil(self.page_size);
        if needed > self.free.len() {
            return Err(cache);
        }
        let mut pages = Vec::with_capacity(needed);
        for _ in 0..needed {
            pages.push(self.free.pop().expect("counted above"));
        }
        Ok(self.install(cache, pages))
    }

    fn install(&mut self, cache: KvCache<T>, pages: Vec<usize>) -> SeqId {
        let generation = self.next_generation;
        self.next_generation += 1;
        let seq = PagedSeq {
            cache,
            pages,
            generation,
        };
        let index = match self.free_seqs.pop() {
            Some(index) => {
                self.seqs[index] = Some(seq);
                index
            }
            None => {
                self.seqs.push(Some(seq));
                self.seqs.len() - 1
            }
        };
        SeqId { index, generation }
    }

    fn seq(&self, id: SeqId) -> &PagedSeq<T> {
        let seq = self.seqs[id.index].as_ref().expect("released sequence");
        assert_eq!(seq.generation, id.generation, "stale sequence handle");
        seq
    }

    fn seq_mut(&mut self, id: SeqId) -> &mut PagedSeq<T> {
        let seq = self.seqs[id.index].as_mut().expect("released sequence");
        assert_eq!(seq.generation, id.generation, "stale sequence handle");
        seq
    }

    /// The sequence's cache.
    ///
    /// # Panics
    /// Panics on a released or stale handle.
    pub fn cache(&self, id: SeqId) -> &KvCache<T> {
        &self.seq(id).cache
    }

    /// Pages currently mapped by the sequence's page table.
    ///
    /// # Panics
    /// Panics on a released or stale handle.
    pub fn pages_held(&self, id: SeqId) -> usize {
        self.seq(id).pages.len()
    }

    /// The sequence's page table — physical page ids in logical order.
    ///
    /// # Panics
    /// Panics on a released or stale handle.
    pub fn page_table(&self, id: SeqId) -> &[usize] {
        &self.seq(id).pages
    }

    /// Grow the page table at `index` to cover `tokens` tokens. Returns
    /// false — without mutating anything — when the free list cannot
    /// supply the missing pages.
    fn grow_to(&mut self, index: usize, tokens: usize) -> bool {
        let needed = tokens.div_ceil(self.page_size);
        let held = self.seqs[index]
            .as_ref()
            .expect("live sequence")
            .pages
            .len();
        let missing = needed.saturating_sub(held);
        if missing > self.free.len() {
            return false;
        }
        let seq = self.seqs[index].as_mut().expect("live sequence");
        for _ in 0..missing {
            seq.pages.push(self.free.pop().expect("counted above"));
        }
        true
    }

    /// Append a prompt's worth of K/V rows, allocating whatever pages the
    /// new length needs. Atomic: returns false — no pages taken, no rows
    /// appended — when the pages do not fit.
    ///
    /// # Panics
    /// Panics on a released or stale handle, or on `k`/`v` shape
    /// mismatches (as [`KvCache::extend`]).
    pub fn try_extend(&mut self, id: SeqId, k: &Matrix<T>, v: &Matrix<T>) -> bool {
        let tokens = self.seq(id).cache.len() + k.rows();
        if !self.grow_to(id.index, tokens) {
            return false;
        }
        self.seq_mut(id).cache.extend(0, k, v);
        true
    }

    /// Append one decode token's K/V rows, allocating a fresh page when
    /// the append crosses a page boundary. Atomic: returns false — no
    /// page taken, no row appended — when a needed page is not free.
    ///
    /// # Panics
    /// Panics on a released or stale handle, or on row-width mismatches
    /// (as [`KvCache::append`]).
    pub fn try_append(&mut self, id: SeqId, k_row: &[T], v_row: &[T]) -> bool {
        let tokens = self.seq(id).cache.len() + 1;
        if !self.grow_to(id.index, tokens) {
            return false;
        }
        self.seq_mut(id).cache.append(0, k_row, v_row);
        true
    }

    /// Append per-head K/V rows — `ks[h]`/`vs[h]` go to head `h`, all
    /// heads gaining the same number of tokens — allocating whatever
    /// pages the new length needs. Atomic: returns false — no pages
    /// taken, no rows appended — when the pages do not fit.
    ///
    /// # Panics
    /// Panics on a released or stale handle, when the slice lengths do
    /// not match the cache's head count, when the heads disagree on row
    /// count, or on shape mismatches (as [`KvCache::extend`]).
    pub fn try_extend_heads(&mut self, id: SeqId, ks: &[Matrix<T>], vs: &[Matrix<T>]) -> bool {
        let heads = self.seq(id).cache.heads();
        assert_eq!(ks.len(), heads, "one K matrix per head");
        assert_eq!(vs.len(), heads, "one V matrix per head");
        let rows = ks[0].rows();
        assert!(
            ks.iter().chain(vs.iter()).all(|m| m.rows() == rows),
            "heads must gain the same number of tokens"
        );
        let tokens = self.seq(id).cache.len() + rows;
        if !self.grow_to(id.index, tokens) {
            return false;
        }
        let seq = self.seq_mut(id);
        for (h, (k, v)) in ks.iter().zip(vs).enumerate() {
            seq.cache.extend(h, k, v);
        }
        true
    }

    /// Route `q`'s rows as the sequence's next tokens on head `head` —
    /// the passthrough to [`KvCache::extend_routing`]. Routing costs no
    /// pages (it is `O(1)` words per token), so this cannot fail for
    /// capacity reasons.
    ///
    /// # Errors
    /// As [`KvCache::extend_routing`] — the head was previously routed
    /// under a different spec.
    ///
    /// # Panics
    /// Panics on a released or stale handle.
    pub fn extend_routing(
        &mut self,
        id: SeqId,
        spec: crate::routing::RoutedSpec,
        head: usize,
        q: &Matrix<T>,
    ) -> Result<(), crate::error::AttnError> {
        self.seq_mut(id).cache.extend_routing(spec, head, q)
    }

    /// Drop every cached token past the first `tokens`, returning the
    /// pages the shorter length no longer needs to the free list — the
    /// rollback path when a launch fails after its appends landed.
    ///
    /// # Panics
    /// Panics on a released or stale handle.
    pub fn truncate(&mut self, id: SeqId, tokens: usize) {
        // Validate the handle, then split the borrow: the sequence entry
        // and the free list are disjoint fields.
        let _ = self.seq(id);
        let seq = self.seqs[id.index].as_mut().expect("live sequence");
        if tokens >= seq.cache.len() {
            return;
        }
        seq.cache.truncate(tokens);
        let keep = tokens.div_ceil(self.page_size);
        while seq.pages.len() > keep {
            let page = seq.pages.pop().expect("longer than keep");
            self.free.push(page);
        }
    }

    /// Release a sequence, returning every mapped page to the free list
    /// and the cache (with whatever tokens it still holds) to the caller.
    ///
    /// # Panics
    /// Panics on a released or stale handle.
    pub fn release(&mut self, id: SeqId) -> KvCache<T> {
        let seq = self.seqs[id.index].take().expect("released sequence");
        assert_eq!(seq.generation, id.generation, "stale sequence handle");
        // Pop from the back: pages return in reverse allocation order,
        // keeping reuse LIFO and fully deterministic.
        let mut pages = seq.pages;
        while let Some(page) = pages.pop() {
            self.free.push(page);
        }
        self.free_seqs.push(id.index);
        seq.cache
    }

    /// Assert the pool's paging invariants: page conservation
    /// (`free + mapped == total`), no page mapped twice (across page
    /// tables or the free list), and every page table exactly covering its
    /// cache (`ceil(len / page_size)` entries). The serving simulation
    /// calls this after every scheduler tick.
    ///
    /// # Panics
    /// Panics when an invariant is violated.
    pub fn assert_page_invariants(&self) {
        let mapped: usize = self.seqs.iter().flatten().map(|s| s.pages.len()).sum();
        assert_eq!(
            self.free.len() + mapped,
            self.total_pages,
            "pages leaked: {} free + {mapped} mapped != {} total",
            self.free.len(),
            self.total_pages
        );
        let mut seen = vec![false; self.total_pages];
        let mut claim = |page: usize, owner: &str| {
            assert!(page < self.total_pages, "{owner} maps unknown page {page}");
            assert!(
                !seen[page],
                "page {page} double-mapped (second owner: {owner})"
            );
            seen[page] = true;
        };
        for &page in &self.free {
            claim(page, "free list");
        }
        for seq in self.seqs.iter().flatten() {
            for &page in &seq.pages {
                claim(page, "a page table");
            }
            assert_eq!(
                seq.pages.len(),
                seq.cache.len().div_ceil(self.page_size),
                "page table does not exactly cover {} cached tokens",
                seq.cache.len()
            );
        }
    }
}

impl<T: Real> std::fmt::Debug for PagePool<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PagePool")
            .field("sequences", &self.len())
            .field("page_size", &self.page_size)
            .field("total_pages", &self.total_pages)
            .field("free_pages", &self.free.len())
            .field("used_tokens", &self.used_tokens())
            .finish()
    }
}

/// Opaque handle to one parked cache stack in a [`SwapArena`].
///
/// Tickets are invalidated by [`SwapArena::take`]; using a taken ticket
/// panics (entry indices are recycled, so a stale ticket is a logic
/// error, not a recoverable condition — exactly the [`SeqId`] contract).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SwapTicket {
    index: usize,
    generation: u64,
}

struct SwapEntry<T> {
    /// The victim's per-layer caches, in layer order (a bare attention
    /// sequence parks a single-element stack).
    caches: Vec<KvCache<T>>,
    bytes: usize,
    generation: u64,
}

/// Host-side parking lot for evicted [`KvCache`] stacks — the
/// evict-and-**swap** half of preemption.
///
/// When a scheduler preempts a sequence it releases the victim's pages
/// back to the [`PagePool`] and, instead of dropping the caches and
/// rebuilding them row by row on resume, parks the whole per-layer stack
/// here. The caches move by value — K/V rows, f16 payloads, and routing
/// state untouched — so resume is a splice ([`Self::take`] +
/// [`PagePool::try_adopt`]), `O(1)` in context length.
///
/// Capacity is accounted in **bytes** of K/V payload
/// ([`KvCache::kv_bytes`]); parking is all-or-nothing: a stack that does
/// not fit is handed back untouched and the caller falls back to
/// evict-and-recompute. Conservation across pool and arena is asserted by
/// [`Self::assert_swap_invariants`] plus the scheduler's ledger checks.
///
/// ```
/// use gpa_core::{PagePool, SwapArena};
///
/// let mut pool: PagePool<f32> = PagePool::new(2, 2);
/// let mut arena: SwapArena<f32> = SwapArena::new(1 << 20);
/// let seq = pool.allocate(4, 4);
/// assert!(pool.try_append(seq, &[0.5; 4], &[0.25; 4]));
///
/// // Preempt: pages go back to the pool, the cache parks in the arena.
/// let cache = pool.release(seq);
/// let ticket = arena.try_park(vec![cache]).expect("fits the arena");
/// assert_eq!(pool.free_pages(), 2);
/// assert_eq!(arena.parked_bytes(), 4 * (4 + 4) * 1);
///
/// // Resume: take the stack and re-adopt its pages — no re-extension.
/// let mut stack = arena.take(ticket);
/// let seq = pool.try_adopt(stack.pop().unwrap()).expect("pages are free");
/// assert_eq!(pool.cache(seq).len(), 1);
/// assert_eq!(pool.cache(seq).k(0).row(0), &[0.5; 4]);
/// assert!(arena.is_empty());
/// ```
pub struct SwapArena<T> {
    capacity_bytes: usize,
    parked_bytes: usize,
    peak_bytes: usize,
    entries: Vec<Option<SwapEntry<T>>>,
    free: Vec<usize>,
    next_generation: u64,
}

impl<T: Real> SwapArena<T> {
    /// Empty arena holding at most `capacity_bytes` bytes of parked K/V
    /// payload.
    pub fn new(capacity_bytes: usize) -> Self {
        SwapArena {
            capacity_bytes,
            parked_bytes: 0,
            peak_bytes: 0,
            entries: Vec::new(),
            free: Vec::new(),
            next_generation: 0,
        }
    }

    /// Arena with no byte cap — every park succeeds.
    pub fn unbounded() -> Self {
        Self::new(usize::MAX)
    }

    /// The byte cap this arena enforces.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Bytes of K/V payload currently parked.
    pub fn parked_bytes(&self) -> usize {
        self.parked_bytes
    }

    /// High-water mark of [`Self::parked_bytes`] over the arena's life.
    pub fn peak_bytes(&self) -> usize {
        self.peak_bytes
    }

    /// Cached tokens currently parked, summed over stacks and layers.
    pub fn parked_tokens(&self) -> usize {
        self.entries
            .iter()
            .flatten()
            .flat_map(|e| e.caches.iter())
            .map(|c| c.len())
            .sum()
    }

    /// Number of parked stacks.
    pub fn len(&self) -> usize {
        self.entries.iter().flatten().count()
    }

    /// True when nothing is parked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Park a per-layer cache stack. All-or-nothing on the byte cap:
    /// returns the stack untouched, in order, when its
    /// [`KvCache::kv_bytes`] total would push [`Self::parked_bytes`] past
    /// [`Self::capacity_bytes`] — the caller then falls back to
    /// evict-and-recompute.
    pub fn try_park(&mut self, caches: Vec<KvCache<T>>) -> Result<SwapTicket, Vec<KvCache<T>>> {
        let bytes: usize = caches.iter().map(KvCache::kv_bytes).sum();
        if self.parked_bytes.saturating_add(bytes) > self.capacity_bytes {
            return Err(caches);
        }
        self.parked_bytes += bytes;
        self.peak_bytes = self.peak_bytes.max(self.parked_bytes);
        let generation = self.next_generation;
        self.next_generation += 1;
        let entry = SwapEntry {
            caches,
            bytes,
            generation,
        };
        let index = match self.free.pop() {
            Some(index) => {
                self.entries[index] = Some(entry);
                index
            }
            None => {
                self.entries.push(Some(entry));
                self.entries.len() - 1
            }
        };
        Ok(SwapTicket { index, generation })
    }

    /// Take a parked stack back, in the layer order it was parked, and
    /// reclaim its arena bytes. The ticket is dead afterwards.
    ///
    /// # Panics
    /// Panics on a taken or stale ticket.
    pub fn take(&mut self, ticket: SwapTicket) -> Vec<KvCache<T>> {
        let entry = self.entries[ticket.index]
            .take()
            .expect("taken swap ticket");
        assert_eq!(entry.generation, ticket.generation, "stale swap ticket");
        self.parked_bytes -= entry.bytes;
        self.free.push(ticket.index);
        entry.caches
    }

    /// Bytes the ticket's stack holds in the arena — the scheduler's
    /// ledger cross-check.
    ///
    /// # Panics
    /// Panics on a taken or stale ticket.
    pub fn bytes_of(&self, ticket: SwapTicket) -> usize {
        let entry = self.entries[ticket.index]
            .as_ref()
            .expect("taken swap ticket");
        assert_eq!(entry.generation, ticket.generation, "stale swap ticket");
        entry.bytes
    }

    /// Assert the arena's accounting invariants: the parked-byte ledger
    /// equals the recomputed sum of every entry's [`KvCache::kv_bytes`],
    /// the ledger never exceeds capacity, and the peak covers the
    /// current level. The serving simulation calls this (via the
    /// scheduler) after every tick, alongside
    /// [`PagePool::assert_page_invariants`] — together they pin that
    /// every cached token is either pool-paged or arena-parked.
    ///
    /// # Panics
    /// Panics when an invariant is violated.
    pub fn assert_swap_invariants(&self) {
        let recomputed: usize = self
            .entries
            .iter()
            .flatten()
            .map(|e| {
                let bytes: usize = e.caches.iter().map(KvCache::kv_bytes).sum();
                assert_eq!(e.bytes, bytes, "entry ledger drifted from its caches");
                bytes
            })
            .sum();
        assert_eq!(
            self.parked_bytes, recomputed,
            "arena ledger drifted: {} recorded, {recomputed} recomputed",
            self.parked_bytes
        );
        assert!(
            self.parked_bytes <= self.capacity_bytes,
            "arena over capacity: {} parked > {} cap",
            self.parked_bytes,
            self.capacity_bytes
        );
        assert!(self.peak_bytes >= self.parked_bytes, "peak below current");
    }
}

impl<T: Real> std::fmt::Debug for SwapArena<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SwapArena")
            .field("stacks", &self.len())
            .field("parked_bytes", &self.parked_bytes)
            .field("peak_bytes", &self.peak_bytes)
            .field("capacity_bytes", &self.capacity_bytes)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpa_tensor::init::qkv;

    #[test]
    fn pages_allocate_on_append_and_round_up() {
        let mut pool: PagePool<f64> = PagePool::new(3, 4);
        assert_eq!((pool.total_pages(), pool.page_size()), (3, 4));
        assert_eq!(pool.pages_for(0), 0);
        assert_eq!(pool.pages_for(4), 1);
        assert_eq!(pool.pages_for(5), 2);
        let a = pool.allocate(2, 2);
        assert_eq!(pool.pages_held(a), 0);
        for t in 0..5 {
            assert!(pool.try_append(a, &[t as f64; 2], &[0.0; 2]));
        }
        // 5 tokens over 4-token pages: two pages, partially filled second.
        assert_eq!(pool.pages_held(a), 2);
        assert_eq!(pool.page_table(a), &[0, 1]);
        assert_eq!(pool.free_pages(), 1);
        assert_eq!(pool.used_tokens(), 5);
        pool.assert_page_invariants();
    }

    #[test]
    fn failed_append_takes_nothing() {
        let mut pool: PagePool<f64> = PagePool::new(1, 2);
        let a = pool.allocate(2, 2);
        assert!(pool.try_append(a, &[0.0; 2], &[0.0; 2]));
        assert!(pool.try_append(a, &[1.0; 2], &[1.0; 2]), "same page");
        // Third token needs a second page; none is free.
        assert!(!pool.try_append(a, &[2.0; 2], &[2.0; 2]));
        assert_eq!(pool.cache(a).len(), 2, "failed append left no row");
        assert_eq!(pool.pages_held(a), 1);
        pool.assert_page_invariants();
    }

    #[test]
    fn failed_extend_is_atomic() {
        let mut pool: PagePool<f64> = PagePool::new(2, 4);
        let a = pool.allocate(3, 3);
        let (_, k, v) = qkv::<f64>(9, 3, 1);
        // 9 tokens need 3 pages; only 2 exist. Nothing moves.
        assert!(!pool.try_extend(a, &k, &v));
        assert_eq!(pool.cache(a).len(), 0);
        assert_eq!(pool.free_pages(), 2);
        let (_, k, v) = qkv::<f64>(8, 3, 2);
        assert!(pool.try_extend(a, &k, &v));
        assert_eq!(pool.cache(a).len(), 8);
        assert_eq!(pool.pages_held(a), 2);
        assert_eq!(pool.cache(a).k(0).row(3), k.row(3), "rows land in order");
        pool.assert_page_invariants();
    }

    #[test]
    fn truncate_returns_excess_pages() {
        let mut pool: PagePool<f32> = PagePool::new(4, 2);
        let a = pool.allocate(2, 2);
        let (_, k, v) = qkv::<f32>(7, 2, 3);
        assert!(pool.try_extend(a, &k, &v));
        assert_eq!((pool.pages_held(a), pool.free_pages()), (4, 0));
        pool.truncate(a, 3);
        assert_eq!(pool.cache(a).len(), 3);
        assert_eq!((pool.pages_held(a), pool.free_pages()), (2, 2));
        pool.truncate(a, 9); // longer than the cache: no-op
        assert_eq!(pool.cache(a).len(), 3);
        pool.truncate(a, 0);
        assert_eq!((pool.pages_held(a), pool.free_pages()), (0, 4));
        pool.assert_page_invariants();
    }

    #[test]
    fn release_returns_pages_and_cache() {
        let mut pool: PagePool<f64> = PagePool::new(2, 2);
        let a = pool.allocate(2, 2);
        assert!(pool.try_append(a, &[1.0, 2.0], &[3.0, 4.0]));
        let cache = pool.release(a);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.k(0).row(0), &[1.0, 2.0]);
        assert_eq!(pool.free_pages(), 2);
        assert!(pool.is_empty());
        pool.assert_page_invariants();
    }

    #[test]
    fn freed_pages_are_reused() {
        let mut pool: PagePool<f64> = PagePool::new(2, 1);
        let a = pool.allocate(2, 2);
        let b = pool.allocate(2, 2);
        assert!(pool.try_append(a, &[0.0; 2], &[0.0; 2]));
        assert!(pool.try_append(b, &[0.0; 2], &[0.0; 2]));
        assert!(!pool.try_append(a, &[0.0; 2], &[0.0; 2]), "pool exhausted");
        pool.release(b);
        assert!(pool.try_append(a, &[0.0; 2], &[0.0; 2]), "b's page freed");
        assert_eq!(pool.pages_held(a), 2);
        assert_eq!(pool.len(), 1);
        pool.assert_page_invariants();
    }

    #[test]
    fn sequence_indices_are_recycled_but_handles_are_not() {
        let mut pool: PagePool<f64> = PagePool::new(4, 2);
        let a = pool.allocate(2, 2);
        pool.release(a);
        let b = pool.allocate(2, 2);
        // Recycled index, fresh generation: `a` must no longer resolve.
        assert_ne!(a, b);
        assert_eq!(pool.cache(b).len(), 0);
        let stale = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = pool.cache(a);
        }));
        assert!(stale.is_err(), "stale handle must panic");
    }

    #[test]
    #[should_panic(expected = "released sequence")]
    fn released_handle_panics() {
        let mut pool: PagePool<f64> = PagePool::new(2, 2);
        let a = pool.allocate(2, 2);
        pool.release(a);
        let _ = pool.cache(a);
    }

    #[test]
    fn multi_head_entries_charge_tokens_not_heads() {
        let mut pool: PagePool<f64> = PagePool::new(4, 2);
        let a = pool.allocate_heads(3, 2, 2);
        assert_eq!(pool.cache(a).heads(), 3);
        let ks: Vec<Matrix<f64>> = (0..3).map(|h| qkv::<f64>(3, 2, h as u64).1).collect();
        let vs: Vec<Matrix<f64>> = (0..3).map(|h| qkv::<f64>(3, 2, 9 + h as u64).2).collect();
        assert!(pool.try_extend_heads(a, &ks, &vs));
        // 3 tokens over 2-token pages: 2 pages, regardless of 3 heads.
        assert_eq!(pool.pages_held(a), 2);
        assert_eq!(pool.cache(a).len(), 3);
        assert_eq!(pool.cache(a).k(2).row(1), ks[2].row(1));
        // A failing multi-head extend takes nothing from any head.
        let ks: Vec<Matrix<f64>> = (0..3).map(|h| qkv::<f64>(6, 2, 20 + h as u64).1).collect();
        let vs: Vec<Matrix<f64>> = (0..3).map(|h| qkv::<f64>(6, 2, 30 + h as u64).2).collect();
        assert!(!pool.try_extend_heads(a, &ks, &vs), "9 tokens need 5 pages");
        assert_eq!(pool.cache(a).len(), 3);
        assert_eq!(pool.pages_held(a), 2);
        pool.assert_page_invariants();
    }

    #[test]
    fn adopt_takes_pages_for_retained_tokens_or_nothing() {
        let mut pool: PagePool<f64> = PagePool::new(2, 2);
        let a = pool.allocate_heads(2, 2, 2);
        let ks: Vec<Matrix<f64>> = (0..2).map(|h| qkv::<f64>(3, 2, h as u64).1).collect();
        let vs: Vec<Matrix<f64>> = (0..2).map(|h| qkv::<f64>(3, 2, 5 + h as u64).2).collect();
        assert!(pool.try_extend_heads(a, &ks, &vs));
        let retained = pool.release(a);
        assert_eq!(pool.free_pages(), 2);
        // Adoption under pressure: one page held elsewhere, 3 tokens need
        // 2 pages — refused, cache handed back intact.
        let b = pool.allocate(2, 2);
        assert!(pool.try_append(b, &[0.0; 2], &[0.0; 2]));
        let retained = match pool.try_adopt(retained) {
            Err(cache) => cache,
            Ok(_) => panic!("adoption must fail without pages"),
        };
        assert_eq!(retained.len(), 3, "refused adoption returns the cache");
        pool.assert_page_invariants();
        // With the squatter gone, adoption restores the exact bytes.
        pool.release(b);
        let c = pool.try_adopt(retained).expect("pages are free now");
        assert_eq!(pool.cache(c).len(), 3);
        assert_eq!(pool.pages_held(c), 2);
        assert_eq!(pool.cache(c).k(1).row(2), ks[1].row(2));
        pool.assert_page_invariants();
    }

    #[test]
    #[should_panic(expected = "page size must be positive")]
    fn zero_page_size_rejected() {
        let _ = PagePool::<f32>::new(4, 0);
    }

    #[test]
    fn debug_formats() {
        let pool: PagePool<f32> = PagePool::new(3, 2);
        assert!(format!("{pool:?}").contains("PagePool"));
        let arena: SwapArena<f32> = SwapArena::unbounded();
        assert!(format!("{arena:?}").contains("SwapArena"));
    }

    /// A two-layer stack with distinct rows per layer, for swap tests.
    fn stack(tokens: usize, seed: u64) -> Vec<KvCache<f64>> {
        (0..2)
            .map(|layer| {
                let mut cache = KvCache::new(1, 2, 2);
                let (_, k, v) = qkv::<f64>(tokens, 2, seed + layer);
                cache.extend(0, &k, &v);
                cache
            })
            .collect()
    }

    #[test]
    fn park_and_take_roundtrips_the_exact_stack() {
        let mut arena: SwapArena<f64> = SwapArena::unbounded();
        let parked = stack(3, 7);
        let expect: Vec<Vec<f64>> = parked.iter().map(|c| c.k(0).row(2).to_vec()).collect();
        let bytes: usize = parked.iter().map(KvCache::kv_bytes).sum();
        let ticket = arena.try_park(parked).expect("unbounded");
        assert_eq!(arena.len(), 1);
        assert_eq!(arena.parked_bytes(), bytes);
        assert_eq!(arena.parked_tokens(), 6, "3 tokens x 2 layers");
        assert_eq!(arena.bytes_of(ticket), bytes);
        arena.assert_swap_invariants();
        let taken = arena.take(ticket);
        assert_eq!(taken.len(), 2, "layer order preserved");
        for (layer, cache) in taken.iter().enumerate() {
            assert_eq!(cache.k(0).row(2), &expect[layer][..]);
        }
        assert!(arena.is_empty());
        assert_eq!(arena.parked_bytes(), 0);
        assert_eq!(arena.peak_bytes(), bytes, "peak survives the take");
        arena.assert_swap_invariants();
    }

    #[test]
    fn over_capacity_park_returns_the_stack_untouched() {
        // One layer of 3 tokens x (2+2) widths x 8 bytes = 96; two layers
        // = 192 bytes. Cap below that refuses all-or-nothing.
        let mut arena: SwapArena<f64> = SwapArena::new(191);
        let refused = match arena.try_park(stack(3, 1)) {
            Err(stack) => stack,
            Ok(_) => panic!("park must refuse past the byte cap"),
        };
        assert_eq!(refused.len(), 2, "refusal returns every layer in order");
        assert_eq!(refused[0].len(), 3);
        assert_eq!(arena.parked_bytes(), 0);
        assert_eq!(arena.peak_bytes(), 0, "refusal leaves no trace");
        arena.assert_swap_invariants();
        // At exactly the cap, the same stack parks.
        let mut arena: SwapArena<f64> = SwapArena::new(192);
        assert!(arena.try_park(stack(3, 1)).is_ok());
        assert!(
            arena.try_park(vec![KvCache::<f64>::single(1, 1)]).is_ok(),
            "an empty cache costs zero bytes"
        );
        arena.assert_swap_invariants();
    }

    #[test]
    fn ticket_indices_are_recycled_but_tickets_are_not() {
        let mut arena: SwapArena<f64> = SwapArena::unbounded();
        let a = arena.try_park(stack(1, 0)).unwrap();
        let _ = arena.take(a);
        let b = arena.try_park(stack(2, 1)).unwrap();
        assert_ne!(a, b, "recycled index, fresh generation");
        let stale = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = arena.bytes_of(a);
        }));
        assert!(stale.is_err(), "stale ticket must panic");
        assert_eq!(arena.take(b).len(), 2);
    }

    #[test]
    #[should_panic(expected = "taken swap ticket")]
    fn taken_ticket_panics() {
        let mut arena: SwapArena<f64> = SwapArena::unbounded();
        let a = arena.try_park(stack(1, 0)).unwrap();
        let _ = arena.take(a);
        let _ = arena.take(a);
    }

    #[test]
    fn peak_bytes_tracks_the_high_water_mark() {
        let mut arena: SwapArena<f64> = SwapArena::unbounded();
        let a = arena.try_park(stack(2, 0)).unwrap();
        let b = arena.try_park(stack(4, 1)).unwrap();
        let high = arena.parked_bytes();
        let _ = arena.take(a);
        let _ = arena.take(b);
        let c = arena.try_park(stack(1, 2)).unwrap();
        assert!(arena.parked_bytes() < high);
        assert_eq!(arena.peak_bytes(), high);
        let _ = arena.take(c);
        arena.assert_swap_invariants();
    }
}
