//! Paged KV allocation — fixed-size pages, a free list, per-sequence page
//! tables.
//!
//! A serving scheduler keeps one [`KvCache`] per in-flight sequence, and
//! the resource that limits how many sequences can be in flight is total
//! KV memory. The predecessor of this module (`SlotPool`) accounted for
//! that memory by **worst-case reservation**: a sequence reserved its full
//! prompt-plus-generated length at admission, so a 16-token prompt under a
//! 4096-token cap held 4096 tokens of budget from its first tick. That
//! makes budgets trivially safe — and leaves almost all of the memory
//! idle, which is exactly the failure mode PagedAttention removes.
//!
//! [`PagePool`] is the paged replacement. Capacity is a fixed set of
//! pages of [`PagePool::page_size`] tokens each; every live sequence owns
//! a **page table** (a list of physical page ids) that grows only when an
//! append crosses a page boundary, and a free-page list hands ids out and
//! takes them back. A sequence therefore costs what it *currently* caches,
//! rounded up to whole pages — admission can pack the pool by usage, and a
//! scheduler that oversubscribes recovers by releasing a victim's pages
//! (evict-and-recompute; see `gpa-serve`).
//!
//! Physically, each sequence's K/V rows stay in one contiguous
//! [`KvCache`] — the page table governs *capacity*, not data layout, so
//! kernels keep borrowing whole `K`/`V` matrices with zero copies and the
//! library's bitwise guarantees are untouched. Page ids are still real:
//! finite, conserved (`free + mapped == total`, asserted by
//! [`PagePool::assert_page_invariants`]), and never double-mapped. A
//! physically scattered layout (and with it evict-and-swap instead of
//! evict-and-recompute) would slot in behind the same table without
//! changing this API.
//!
//! Handles are generation-checked exactly as before: using a released or
//! stale [`SeqId`] panics, because sequence indices are recycled and a
//! stale handle is a logic error, not a recoverable condition.

use crate::cache::KvCache;
use gpa_tensor::{Matrix, Real};

/// Opaque handle to one live sequence in a [`PagePool`].
///
/// Handles are invalidated by [`PagePool::release`]; using a released
/// handle panics (sequence indices are recycled, so a stale handle is a
/// logic error, not a recoverable condition).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SeqId {
    index: usize,
    generation: u64,
}

struct PagedSeq<T> {
    cache: KvCache<T>,
    /// Physical page ids backing this sequence, in logical order; always
    /// exactly `ceil(cache.len() / page_size)` entries between calls.
    pages: Vec<usize>,
    generation: u64,
}

/// A pool of per-sequence [`KvCache`]s under block-paged allocation.
///
/// A pool entry is one growable cache: single-head for the engine's bare
/// serving decode surface ([`Self::allocate`]), or multi-head for one
/// decoder-stack *layer* ([`Self::allocate_heads`] — a model holds one
/// entry per layer, so page budgets count every layer). Pages account
/// cached **tokens**; head count, like `dk`, only widens the rows.
///
/// ```
/// use gpa_core::PagePool;
///
/// // 4 pages of 4 tokens each: room for 16 cached tokens in total.
/// let mut pool: PagePool<f32> = PagePool::new(4, 4);
/// let a = pool.allocate(8, 8);
/// assert_eq!(pool.pages_held(a), 0, "pages allocate on append, not up front");
/// assert!(pool.try_append(a, &[0.0; 8], &[0.0; 8]));
/// assert_eq!((pool.pages_held(a), pool.free_pages()), (1, 3));
/// let cache = pool.release(a);
/// assert_eq!(cache.len(), 1, "the cache keeps its tokens");
/// assert_eq!(pool.free_pages(), 4, "the pages come back");
/// ```
pub struct PagePool<T> {
    page_size: usize,
    total_pages: usize,
    /// Free physical page ids, popped from the back (LIFO reuse).
    free: Vec<usize>,
    seqs: Vec<Option<PagedSeq<T>>>,
    free_seqs: Vec<usize>,
    next_generation: u64,
}

impl<T: Real> PagePool<T> {
    /// Empty pool of `total_pages` pages, each holding `page_size` cached
    /// tokens.
    ///
    /// # Panics
    /// Panics if `page_size` is zero.
    pub fn new(total_pages: usize, page_size: usize) -> Self {
        assert!(page_size > 0, "page size must be positive");
        PagePool {
            page_size,
            total_pages,
            // Reversed so pop() hands out ids 0, 1, 2, … in order.
            free: (0..total_pages).rev().collect(),
            seqs: Vec::new(),
            free_seqs: Vec::new(),
            next_generation: 0,
        }
    }

    /// Tokens per page.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Total pages in the pool, free or mapped.
    pub fn total_pages(&self) -> usize {
        self.total_pages
    }

    /// Pages on the free list.
    pub fn free_pages(&self) -> usize {
        self.free.len()
    }

    /// Pages mapped into live page tables.
    pub fn used_pages(&self) -> usize {
        self.total_pages - self.free.len()
    }

    /// Pages needed to cache `tokens` tokens: `ceil(tokens / page_size)`.
    pub fn pages_for(&self, tokens: usize) -> usize {
        tokens.div_ceil(self.page_size)
    }

    /// Tokens actually cached right now, summed across live sequences.
    pub fn used_tokens(&self) -> usize {
        self.seqs.iter().flatten().map(|s| s.cache.len()).sum()
    }

    /// Number of live sequences.
    pub fn len(&self) -> usize {
        self.seqs.iter().flatten().count()
    }

    /// True when no sequences are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Admit a sequence: an empty single-head cache (`dk`/`dv` key and
    /// value dimensions) with an empty page table. Allocation itself
    /// costs nothing — pages are taken only when appends need them — so
    /// this cannot fail.
    pub fn allocate(&mut self, dk: usize, dv: usize) -> SeqId {
        self.install(KvCache::single(dk, dv), Vec::new())
    }

    /// Admit a multi-head sequence — one model *layer*'s cache in a
    /// decoder stack, where every layer of every sequence is its own pool
    /// entry so page budgets count all layers. Pages account **tokens**
    /// (the cache length); the head count is a row-width multiplier, like
    /// `dk`, and does not change the page arithmetic.
    pub fn allocate_heads(&mut self, heads: usize, dk: usize, dv: usize) -> SeqId {
        self.install(KvCache::new(heads, dk, dv), Vec::new())
    }

    /// Adopt an already-populated cache (e.g. one retained by a preempted
    /// sequence), allocating the pages its tokens occupy. Returns the
    /// cache untouched when the free list cannot cover it — the all-or-
    /// nothing resume path.
    pub fn try_adopt(&mut self, cache: KvCache<T>) -> Result<SeqId, KvCache<T>> {
        let needed = cache.len().div_ceil(self.page_size);
        if needed > self.free.len() {
            return Err(cache);
        }
        let mut pages = Vec::with_capacity(needed);
        for _ in 0..needed {
            pages.push(self.free.pop().expect("counted above"));
        }
        Ok(self.install(cache, pages))
    }

    fn install(&mut self, cache: KvCache<T>, pages: Vec<usize>) -> SeqId {
        let generation = self.next_generation;
        self.next_generation += 1;
        let seq = PagedSeq {
            cache,
            pages,
            generation,
        };
        let index = match self.free_seqs.pop() {
            Some(index) => {
                self.seqs[index] = Some(seq);
                index
            }
            None => {
                self.seqs.push(Some(seq));
                self.seqs.len() - 1
            }
        };
        SeqId { index, generation }
    }

    fn seq(&self, id: SeqId) -> &PagedSeq<T> {
        let seq = self.seqs[id.index].as_ref().expect("released sequence");
        assert_eq!(seq.generation, id.generation, "stale sequence handle");
        seq
    }

    fn seq_mut(&mut self, id: SeqId) -> &mut PagedSeq<T> {
        let seq = self.seqs[id.index].as_mut().expect("released sequence");
        assert_eq!(seq.generation, id.generation, "stale sequence handle");
        seq
    }

    /// The sequence's cache.
    ///
    /// # Panics
    /// Panics on a released or stale handle.
    pub fn cache(&self, id: SeqId) -> &KvCache<T> {
        &self.seq(id).cache
    }

    /// Pages currently mapped by the sequence's page table.
    ///
    /// # Panics
    /// Panics on a released or stale handle.
    pub fn pages_held(&self, id: SeqId) -> usize {
        self.seq(id).pages.len()
    }

    /// The sequence's page table — physical page ids in logical order.
    ///
    /// # Panics
    /// Panics on a released or stale handle.
    pub fn page_table(&self, id: SeqId) -> &[usize] {
        &self.seq(id).pages
    }

    /// Grow the page table at `index` to cover `tokens` tokens. Returns
    /// false — without mutating anything — when the free list cannot
    /// supply the missing pages.
    fn grow_to(&mut self, index: usize, tokens: usize) -> bool {
        let needed = tokens.div_ceil(self.page_size);
        let held = self.seqs[index]
            .as_ref()
            .expect("live sequence")
            .pages
            .len();
        let missing = needed.saturating_sub(held);
        if missing > self.free.len() {
            return false;
        }
        let seq = self.seqs[index].as_mut().expect("live sequence");
        for _ in 0..missing {
            seq.pages.push(self.free.pop().expect("counted above"));
        }
        true
    }

    /// Append a prompt's worth of K/V rows, allocating whatever pages the
    /// new length needs. Atomic: returns false — no pages taken, no rows
    /// appended — when the pages do not fit.
    ///
    /// # Panics
    /// Panics on a released or stale handle, or on `k`/`v` shape
    /// mismatches (as [`KvCache::extend`]).
    pub fn try_extend(&mut self, id: SeqId, k: &Matrix<T>, v: &Matrix<T>) -> bool {
        let tokens = self.seq(id).cache.len() + k.rows();
        if !self.grow_to(id.index, tokens) {
            return false;
        }
        self.seq_mut(id).cache.extend(0, k, v);
        true
    }

    /// Append one decode token's K/V rows, allocating a fresh page when
    /// the append crosses a page boundary. Atomic: returns false — no
    /// page taken, no row appended — when a needed page is not free.
    ///
    /// # Panics
    /// Panics on a released or stale handle, or on row-width mismatches
    /// (as [`KvCache::append`]).
    pub fn try_append(&mut self, id: SeqId, k_row: &[T], v_row: &[T]) -> bool {
        let tokens = self.seq(id).cache.len() + 1;
        if !self.grow_to(id.index, tokens) {
            return false;
        }
        self.seq_mut(id).cache.append(0, k_row, v_row);
        true
    }

    /// Append per-head K/V rows — `ks[h]`/`vs[h]` go to head `h`, all
    /// heads gaining the same number of tokens — allocating whatever
    /// pages the new length needs. Atomic: returns false — no pages
    /// taken, no rows appended — when the pages do not fit.
    ///
    /// # Panics
    /// Panics on a released or stale handle, when the slice lengths do
    /// not match the cache's head count, when the heads disagree on row
    /// count, or on shape mismatches (as [`KvCache::extend`]).
    pub fn try_extend_heads(&mut self, id: SeqId, ks: &[Matrix<T>], vs: &[Matrix<T>]) -> bool {
        let heads = self.seq(id).cache.heads();
        assert_eq!(ks.len(), heads, "one K matrix per head");
        assert_eq!(vs.len(), heads, "one V matrix per head");
        let rows = ks[0].rows();
        assert!(
            ks.iter().chain(vs.iter()).all(|m| m.rows() == rows),
            "heads must gain the same number of tokens"
        );
        let tokens = self.seq(id).cache.len() + rows;
        if !self.grow_to(id.index, tokens) {
            return false;
        }
        let seq = self.seq_mut(id);
        for (h, (k, v)) in ks.iter().zip(vs).enumerate() {
            seq.cache.extend(h, k, v);
        }
        true
    }

    /// Route `q`'s rows as the sequence's next tokens on head `head` —
    /// the passthrough to [`KvCache::extend_routing`]. Routing costs no
    /// pages (it is `O(1)` words per token), so this cannot fail for
    /// capacity reasons.
    ///
    /// # Errors
    /// As [`KvCache::extend_routing`] — the head was previously routed
    /// under a different spec.
    ///
    /// # Panics
    /// Panics on a released or stale handle.
    pub fn extend_routing(
        &mut self,
        id: SeqId,
        spec: crate::routing::RoutedSpec,
        head: usize,
        q: &Matrix<T>,
    ) -> Result<(), crate::error::AttnError> {
        self.seq_mut(id).cache.extend_routing(spec, head, q)
    }

    /// Drop every cached token past the first `tokens`, returning the
    /// pages the shorter length no longer needs to the free list — the
    /// rollback path when a launch fails after its appends landed.
    ///
    /// # Panics
    /// Panics on a released or stale handle.
    pub fn truncate(&mut self, id: SeqId, tokens: usize) {
        // Validate the handle, then split the borrow: the sequence entry
        // and the free list are disjoint fields.
        let _ = self.seq(id);
        let seq = self.seqs[id.index].as_mut().expect("live sequence");
        if tokens >= seq.cache.len() {
            return;
        }
        seq.cache.truncate(tokens);
        let keep = tokens.div_ceil(self.page_size);
        while seq.pages.len() > keep {
            let page = seq.pages.pop().expect("longer than keep");
            self.free.push(page);
        }
    }

    /// Release a sequence, returning every mapped page to the free list
    /// and the cache (with whatever tokens it still holds) to the caller.
    ///
    /// # Panics
    /// Panics on a released or stale handle.
    pub fn release(&mut self, id: SeqId) -> KvCache<T> {
        let seq = self.seqs[id.index].take().expect("released sequence");
        assert_eq!(seq.generation, id.generation, "stale sequence handle");
        // Pop from the back: pages return in reverse allocation order,
        // keeping reuse LIFO and fully deterministic.
        let mut pages = seq.pages;
        while let Some(page) = pages.pop() {
            self.free.push(page);
        }
        self.free_seqs.push(id.index);
        seq.cache
    }

    /// Assert the pool's paging invariants: page conservation
    /// (`free + mapped == total`), no page mapped twice (across page
    /// tables or the free list), and every page table exactly covering its
    /// cache (`ceil(len / page_size)` entries). The serving simulation
    /// calls this after every scheduler tick.
    ///
    /// # Panics
    /// Panics when an invariant is violated.
    pub fn assert_page_invariants(&self) {
        let mapped: usize = self.seqs.iter().flatten().map(|s| s.pages.len()).sum();
        assert_eq!(
            self.free.len() + mapped,
            self.total_pages,
            "pages leaked: {} free + {mapped} mapped != {} total",
            self.free.len(),
            self.total_pages
        );
        let mut seen = vec![false; self.total_pages];
        let mut claim = |page: usize, owner: &str| {
            assert!(page < self.total_pages, "{owner} maps unknown page {page}");
            assert!(
                !seen[page],
                "page {page} double-mapped (second owner: {owner})"
            );
            seen[page] = true;
        };
        for &page in &self.free {
            claim(page, "free list");
        }
        for seq in self.seqs.iter().flatten() {
            for &page in &seq.pages {
                claim(page, "a page table");
            }
            assert_eq!(
                seq.pages.len(),
                seq.cache.len().div_ceil(self.page_size),
                "page table does not exactly cover {} cached tokens",
                seq.cache.len()
            );
        }
    }
}

impl<T: Real> std::fmt::Debug for PagePool<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PagePool")
            .field("sequences", &self.len())
            .field("page_size", &self.page_size)
            .field("total_pages", &self.total_pages)
            .field("free_pages", &self.free.len())
            .field("used_tokens", &self.used_tokens())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpa_tensor::init::qkv;

    #[test]
    fn pages_allocate_on_append_and_round_up() {
        let mut pool: PagePool<f64> = PagePool::new(3, 4);
        assert_eq!((pool.total_pages(), pool.page_size()), (3, 4));
        assert_eq!(pool.pages_for(0), 0);
        assert_eq!(pool.pages_for(4), 1);
        assert_eq!(pool.pages_for(5), 2);
        let a = pool.allocate(2, 2);
        assert_eq!(pool.pages_held(a), 0);
        for t in 0..5 {
            assert!(pool.try_append(a, &[t as f64; 2], &[0.0; 2]));
        }
        // 5 tokens over 4-token pages: two pages, partially filled second.
        assert_eq!(pool.pages_held(a), 2);
        assert_eq!(pool.page_table(a), &[0, 1]);
        assert_eq!(pool.free_pages(), 1);
        assert_eq!(pool.used_tokens(), 5);
        pool.assert_page_invariants();
    }

    #[test]
    fn failed_append_takes_nothing() {
        let mut pool: PagePool<f64> = PagePool::new(1, 2);
        let a = pool.allocate(2, 2);
        assert!(pool.try_append(a, &[0.0; 2], &[0.0; 2]));
        assert!(pool.try_append(a, &[1.0; 2], &[1.0; 2]), "same page");
        // Third token needs a second page; none is free.
        assert!(!pool.try_append(a, &[2.0; 2], &[2.0; 2]));
        assert_eq!(pool.cache(a).len(), 2, "failed append left no row");
        assert_eq!(pool.pages_held(a), 1);
        pool.assert_page_invariants();
    }

    #[test]
    fn failed_extend_is_atomic() {
        let mut pool: PagePool<f64> = PagePool::new(2, 4);
        let a = pool.allocate(3, 3);
        let (_, k, v) = qkv::<f64>(9, 3, 1);
        // 9 tokens need 3 pages; only 2 exist. Nothing moves.
        assert!(!pool.try_extend(a, &k, &v));
        assert_eq!(pool.cache(a).len(), 0);
        assert_eq!(pool.free_pages(), 2);
        let (_, k, v) = qkv::<f64>(8, 3, 2);
        assert!(pool.try_extend(a, &k, &v));
        assert_eq!(pool.cache(a).len(), 8);
        assert_eq!(pool.pages_held(a), 2);
        assert_eq!(pool.cache(a).k(0).row(3), k.row(3), "rows land in order");
        pool.assert_page_invariants();
    }

    #[test]
    fn truncate_returns_excess_pages() {
        let mut pool: PagePool<f32> = PagePool::new(4, 2);
        let a = pool.allocate(2, 2);
        let (_, k, v) = qkv::<f32>(7, 2, 3);
        assert!(pool.try_extend(a, &k, &v));
        assert_eq!((pool.pages_held(a), pool.free_pages()), (4, 0));
        pool.truncate(a, 3);
        assert_eq!(pool.cache(a).len(), 3);
        assert_eq!((pool.pages_held(a), pool.free_pages()), (2, 2));
        pool.truncate(a, 9); // longer than the cache: no-op
        assert_eq!(pool.cache(a).len(), 3);
        pool.truncate(a, 0);
        assert_eq!((pool.pages_held(a), pool.free_pages()), (0, 4));
        pool.assert_page_invariants();
    }

    #[test]
    fn release_returns_pages_and_cache() {
        let mut pool: PagePool<f64> = PagePool::new(2, 2);
        let a = pool.allocate(2, 2);
        assert!(pool.try_append(a, &[1.0, 2.0], &[3.0, 4.0]));
        let cache = pool.release(a);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.k(0).row(0), &[1.0, 2.0]);
        assert_eq!(pool.free_pages(), 2);
        assert!(pool.is_empty());
        pool.assert_page_invariants();
    }

    #[test]
    fn freed_pages_are_reused() {
        let mut pool: PagePool<f64> = PagePool::new(2, 1);
        let a = pool.allocate(2, 2);
        let b = pool.allocate(2, 2);
        assert!(pool.try_append(a, &[0.0; 2], &[0.0; 2]));
        assert!(pool.try_append(b, &[0.0; 2], &[0.0; 2]));
        assert!(!pool.try_append(a, &[0.0; 2], &[0.0; 2]), "pool exhausted");
        pool.release(b);
        assert!(pool.try_append(a, &[0.0; 2], &[0.0; 2]), "b's page freed");
        assert_eq!(pool.pages_held(a), 2);
        assert_eq!(pool.len(), 1);
        pool.assert_page_invariants();
    }

    #[test]
    fn sequence_indices_are_recycled_but_handles_are_not() {
        let mut pool: PagePool<f64> = PagePool::new(4, 2);
        let a = pool.allocate(2, 2);
        pool.release(a);
        let b = pool.allocate(2, 2);
        // Recycled index, fresh generation: `a` must no longer resolve.
        assert_ne!(a, b);
        assert_eq!(pool.cache(b).len(), 0);
        let stale = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = pool.cache(a);
        }));
        assert!(stale.is_err(), "stale handle must panic");
    }

    #[test]
    #[should_panic(expected = "released sequence")]
    fn released_handle_panics() {
        let mut pool: PagePool<f64> = PagePool::new(2, 2);
        let a = pool.allocate(2, 2);
        pool.release(a);
        let _ = pool.cache(a);
    }

    #[test]
    fn multi_head_entries_charge_tokens_not_heads() {
        let mut pool: PagePool<f64> = PagePool::new(4, 2);
        let a = pool.allocate_heads(3, 2, 2);
        assert_eq!(pool.cache(a).heads(), 3);
        let ks: Vec<Matrix<f64>> = (0..3).map(|h| qkv::<f64>(3, 2, h as u64).1).collect();
        let vs: Vec<Matrix<f64>> = (0..3).map(|h| qkv::<f64>(3, 2, 9 + h as u64).2).collect();
        assert!(pool.try_extend_heads(a, &ks, &vs));
        // 3 tokens over 2-token pages: 2 pages, regardless of 3 heads.
        assert_eq!(pool.pages_held(a), 2);
        assert_eq!(pool.cache(a).len(), 3);
        assert_eq!(pool.cache(a).k(2).row(1), ks[2].row(1));
        // A failing multi-head extend takes nothing from any head.
        let ks: Vec<Matrix<f64>> = (0..3).map(|h| qkv::<f64>(6, 2, 20 + h as u64).1).collect();
        let vs: Vec<Matrix<f64>> = (0..3).map(|h| qkv::<f64>(6, 2, 30 + h as u64).2).collect();
        assert!(!pool.try_extend_heads(a, &ks, &vs), "9 tokens need 5 pages");
        assert_eq!(pool.cache(a).len(), 3);
        assert_eq!(pool.pages_held(a), 2);
        pool.assert_page_invariants();
    }

    #[test]
    fn adopt_takes_pages_for_retained_tokens_or_nothing() {
        let mut pool: PagePool<f64> = PagePool::new(2, 2);
        let a = pool.allocate_heads(2, 2, 2);
        let ks: Vec<Matrix<f64>> = (0..2).map(|h| qkv::<f64>(3, 2, h as u64).1).collect();
        let vs: Vec<Matrix<f64>> = (0..2).map(|h| qkv::<f64>(3, 2, 5 + h as u64).2).collect();
        assert!(pool.try_extend_heads(a, &ks, &vs));
        let retained = pool.release(a);
        assert_eq!(pool.free_pages(), 2);
        // Adoption under pressure: one page held elsewhere, 3 tokens need
        // 2 pages — refused, cache handed back intact.
        let b = pool.allocate(2, 2);
        assert!(pool.try_append(b, &[0.0; 2], &[0.0; 2]));
        let retained = match pool.try_adopt(retained) {
            Err(cache) => cache,
            Ok(_) => panic!("adoption must fail without pages"),
        };
        assert_eq!(retained.len(), 3, "refused adoption returns the cache");
        pool.assert_page_invariants();
        // With the squatter gone, adoption restores the exact bytes.
        pool.release(b);
        let c = pool.try_adopt(retained).expect("pages are free now");
        assert_eq!(pool.cache(c).len(), 3);
        assert_eq!(pool.pages_held(c), 2);
        assert_eq!(pool.cache(c).k(1).row(2), ks[1].row(2));
        pool.assert_page_invariants();
    }

    #[test]
    #[should_panic(expected = "page size must be positive")]
    fn zero_page_size_rejected() {
        let _ = PagePool::<f32>::new(4, 0);
    }

    #[test]
    fn debug_formats() {
        let pool: PagePool<f32> = PagePool::new(3, 2);
        assert!(format!("{pool:?}").contains("PagePool"));
    }
}
