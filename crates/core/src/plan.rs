//! Compiled attention plans — validate once, execute many times.
//!
//! A plan is a kernel composition promoted to a first-class value: the
//! Fig. 6 "Loc + Glo + CSR" chaining, which callers previously expressed by
//! threading an [`crate::AttentionState`] through manual kernel calls,
//! compiles into an [`AttentionPlan`] whose geometry and parameters are
//! checked **once**. The [`crate::AttentionEngine`] then executes the plan
//! against one sequence or a whole batch without re-validating per launch,
//! which is where plan reuse pays off in serving loops (the same mask
//! usually outlives thousands of requests).

use crate::dispatch::AttentionKernel;
use crate::error::AttnError;
use gpa_tensor::{Matrix, Real};

/// A validated, reusable kernel composition.
///
/// Build one with [`AttentionPlan::new`] (or
/// [`crate::AttentionEngine::compile`]). Steps run in order against one
/// shared softmax state per sequence, so a multi-step plan over pairwise
/// disjoint masks computes exact attention over their union — the paper's
/// sequential-composition semantics, now launched as **one** parallel
/// region instead of one per step.
#[derive(Clone)]
pub struct AttentionPlan<'a> {
    steps: Vec<AttentionKernel<'a>>,
    /// Shape `(Q rows, K/V rows)` pinned by explicit masks / global sets,
    /// if any step pins one.
    fixed_shape: Option<(usize, usize)>,
    /// True if any step requires `Q rows == K/V rows`.
    requires_square: bool,
}

impl<'a> AttentionPlan<'a> {
    /// Compile a kernel composition into a plan.
    ///
    /// Validation performed here (and never again at execution time):
    ///
    /// - the composition is non-empty;
    /// - dense baselines ([`AttentionKernel::SdpMasked`],
    ///   [`AttentionKernel::Flash`]) appear only as single-step plans —
    ///   they cannot share a softmax state;
    /// - kernel parameters are well-formed (positive dilated widths /
    ///   block sizes);
    /// - every step that pins a geometry (explicit masks, global sets)
    ///   agrees on one `(rows, cols)` shape, and square-only steps are not
    ///   combined with a rectangular mask.
    pub fn new(kernels: &[AttentionKernel<'a>]) -> Result<Self, AttnError> {
        if kernels.is_empty() {
            return Err(AttnError::BadParameter {
                what: "a plan needs at least one kernel",
            });
        }
        if kernels.len() > 1 && kernels.iter().any(|k| !k.is_composable()) {
            return Err(AttnError::BadParameter {
                what: "dense baselines cannot run into a shared state",
            });
        }
        let mut fixed_shape: Option<(usize, usize)> = None;
        let mut requires_square = false;
        for kernel in kernels {
            kernel.validate_params()?;
            let (fixed, square) = kernel.geometry();
            requires_square |= square;
            if let Some(shape) = fixed {
                match fixed_shape {
                    None => fixed_shape = Some(shape),
                    Some(prev) if prev != shape => {
                        return Err(AttnError::MaskShapeMismatch {
                            mask: shape,
                            l: prev.0,
                        });
                    }
                    Some(_) => {}
                }
            }
        }
        if requires_square {
            if let Some((rows, cols)) = fixed_shape {
                if rows != cols {
                    return Err(AttnError::MaskShapeMismatch {
                        mask: (rows, cols),
                        l: cols,
                    });
                }
            }
        }
        Ok(AttentionPlan {
            steps: kernels.to_vec(),
            fixed_shape,
            requires_square,
        })
    }

    /// Single-kernel plan.
    pub fn single(kernel: AttentionKernel<'a>) -> Result<Self, AttnError> {
        Self::new(std::slice::from_ref(&kernel))
    }

    /// The compiled steps, in execution order.
    pub fn steps(&self) -> &[AttentionKernel<'a>] {
        &self.steps
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// A compiled plan is never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// True when every step is a graph kernel (shares one softmax state);
    /// false for single-step dense-baseline plans.
    pub fn is_composable(&self) -> bool {
        self.steps.iter().all(|k| k.is_composable())
    }

    /// The `(Q rows, K/V rows)` shape pinned by the plan's masks, if any.
    /// `None` means the plan runs at any (square, if
    /// [`Self::requires_square`]) geometry — the property that lets one
    /// implicit-kernel plan serve a ragged batch.
    pub fn fixed_shape(&self) -> Option<(usize, usize)> {
        self.fixed_shape
    }

    /// True if the plan requires `Q rows == K/V rows`.
    pub fn requires_square(&self) -> bool {
        self.requires_square
    }

    /// Display label: step names joined with `" + "`, matching the paper's
    /// figure legends (`"Local + Global + CSR"`).
    pub fn describe(&self) -> String {
        self.steps
            .iter()
            .map(|k| k.name())
            .collect::<Vec<_>>()
            .join(" + ")
    }

    /// Validate one request's geometry against the plan — the per-request
    /// half of validation (the per-plan half ran in [`Self::new`]).
    pub(crate) fn validate_request<T: Real>(
        &self,
        q: &Matrix<T>,
        k: &Matrix<T>,
        v: &Matrix<T>,
    ) -> Result<(), AttnError> {
        if k.rows() != v.rows() || (self.requires_square && q.rows() != k.rows()) {
            return Err(AttnError::ContextLengthMismatch {
                q: q.rows(),
                k: k.rows(),
                v: v.rows(),
            });
        }
        if q.cols() != k.cols() {
            return Err(AttnError::KeyDimMismatch {
                q: q.cols(),
                k: k.cols(),
            });
        }
        if q.cols() == 0 {
            return Err(AttnError::BadParameter {
                what: "dk must be positive",
            });
        }
        if let Some((rows, cols)) = self.fixed_shape {
            if q.rows() != rows || k.rows() != cols {
                return Err(AttnError::MaskShapeMismatch {
                    mask: (rows, cols),
                    l: q.rows(),
                });
            }
        }
        Ok(())
    }
}

impl std::fmt::Debug for AttentionPlan<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AttentionPlan")
            .field("steps", &self.describe())
            .field("fixed_shape", &self.fixed_shape)
            .field("requires_square", &self.requires_square)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpa_masks::{GlobalSet, LocalWindow, MaskPattern};
    use gpa_sparse::DenseMask;
    use gpa_tensor::init::qkv;

    #[test]
    fn empty_plan_rejected() {
        assert!(matches!(
            AttentionPlan::new(&[]),
            Err(AttnError::BadParameter { .. })
        ));
    }

    #[test]
    fn dense_baseline_only_single_step() {
        let single = AttentionPlan::single(AttentionKernel::Flash).unwrap();
        assert!(!single.is_composable());
        assert_eq!(single.describe(), "FlashAttention");
        assert!(matches!(
            AttentionPlan::new(&[AttentionKernel::Flash, AttentionKernel::Local { n: 1 }]),
            Err(AttnError::BadParameter { .. })
        ));
    }

    #[test]
    fn parameter_validation_happens_at_compile_time() {
        assert!(matches!(
            AttentionPlan::single(AttentionKernel::Dilated1d { w: 0, r: 1 }),
            Err(AttnError::BadParameter { .. })
        ));
        assert!(matches!(
            AttentionPlan::single(AttentionKernel::Dilated2d {
                block_size: 0,
                r: 1
            }),
            Err(AttnError::BadParameter { .. })
        ));
    }

    #[test]
    fn geometry_consistency_across_steps() {
        let a = LocalWindow::new(16, 1).to_csr();
        let b = LocalWindow::new(24, 1).to_csr();
        // Two explicit masks agreeing on shape: fine.
        let plan =
            AttentionPlan::new(&[AttentionKernel::Csr(&a), AttentionKernel::Csr(&a)]).unwrap();
        assert_eq!(plan.fixed_shape(), Some((16, 16)));
        assert_eq!(plan.len(), 2);
        // Disagreeing: rejected at compile time.
        assert!(matches!(
            AttentionPlan::new(&[AttentionKernel::Csr(&a), AttentionKernel::Csr(&b)]),
            Err(AttnError::MaskShapeMismatch { .. })
        ));
    }

    #[test]
    fn implicit_plans_run_at_any_length() {
        let plan = AttentionPlan::new(&[
            AttentionKernel::Local { n: 2 },
            AttentionKernel::Dilated1d { w: 5, r: 1 },
        ])
        .unwrap();
        assert!(plan.fixed_shape().is_none());
        assert!(plan.requires_square());
        let (q, k, v) = qkv::<f64>(12, 4, 0);
        plan.validate_request(&q, &k, &v).unwrap();
        let (q2, k2, v2) = qkv::<f64>(40, 4, 0);
        plan.validate_request(&q2, &k2, &v2).unwrap();
    }

    #[test]
    fn global_set_pins_the_length() {
        let globals = GlobalSet::new(20, vec![0]);
        let plan = AttentionPlan::new(&[
            AttentionKernel::Local { n: 2 },
            AttentionKernel::Global {
                globals: &globals,
                n_sub: 2,
            },
        ])
        .unwrap();
        assert_eq!(plan.fixed_shape(), Some((20, 20)));
        assert_eq!(plan.describe(), "Local + Global");
        let (q, k, v) = qkv::<f64>(12, 4, 0);
        assert!(matches!(
            plan.validate_request(&q, &k, &v),
            Err(AttnError::MaskShapeMismatch { .. })
        ));
    }

    #[test]
    fn request_validation_catches_bad_inputs() {
        let plan = AttentionPlan::single(AttentionKernel::Local { n: 1 }).unwrap();
        let (q, k, _) = qkv::<f64>(8, 4, 0);
        let (_, _, v_wrong) = qkv::<f64>(9, 4, 0);
        assert!(matches!(
            plan.validate_request(&q, &k, &v_wrong),
            Err(AttnError::ContextLengthMismatch { .. })
        ));
        let (q2, _, _) = qkv::<f64>(8, 6, 0);
        let (_, k2, v2) = qkv::<f64>(8, 4, 0);
        assert!(matches!(
            plan.validate_request(&q2, &k2, &v2),
            Err(AttnError::KeyDimMismatch { .. })
        ));
    }

    #[test]
    fn square_only_step_rejects_rectangular_mask() {
        let rect = gpa_sparse::CsrMask::empty(4, 8);
        // Rectangular CSR alone: fine (cross-attention / row slices).
        let plan = AttentionPlan::single(AttentionKernel::Csr(&rect)).unwrap();
        assert!(!plan.requires_square());
        // Combined with a square-only implicit kernel: rejected.
        assert!(matches!(
            AttentionPlan::new(&[AttentionKernel::Csr(&rect), AttentionKernel::Local { n: 1 }]),
            Err(AttnError::MaskShapeMismatch { .. })
        ));
    }

    #[test]
    fn sdp_plan_has_dense_geometry() {
        let dense = DenseMask::ones(6, 6);
        let plan = AttentionPlan::single(AttentionKernel::SdpMasked(&dense)).unwrap();
        assert_eq!(plan.fixed_shape(), Some((6, 6)));
        assert!(!plan.is_composable());
        assert!(!plan.is_empty());
    }
}
