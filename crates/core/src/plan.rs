//! Compiled attention plans — validate once, execute many times.
//!
//! A plan is a kernel composition promoted to a first-class value: the
//! Fig. 6 "Loc + Glo + CSR" chaining, which callers previously expressed by
//! threading an [`crate::AttentionState`] through manual kernel calls,
//! compiles into an [`AttentionPlan`] whose geometry constraints and
//! parameters are checked **once**. The [`crate::AttentionEngine`] then
//! executes the plan against single sequences, ragged batches, prefill
//! chunks, and KV-cached decode rows without re-deriving per-step
//! constraints per launch — the same compiled plan serves every
//! [`Geometry`] its kernels admit, which is how one implicit-kernel plan
//! outlives thousands of requests *and* every decode step of each.

use crate::dispatch::AttentionKernel;
use crate::error::AttnError;
use crate::geometry::Geometry;
use crate::routing::RoutedSpec;
use gpa_tensor::{Matrix, Real};

/// Merged geometry constraints of a plan's steps, computed once at compile
/// time and checked in O(1) per request.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) struct GeometrySpec {
    /// Exact `kv_rows` required (explicit mask columns, global/DIA context
    /// length).
    pub kv_pin: Option<usize>,
    /// Upper bound on the absolute query range `q_offset + q_rows`
    /// (explicit mask rows — masks are indexed by absolute query row).
    pub q_abs_bound: Option<usize>,
    /// Exact `q_rows` (and `q_offset == 0`) required — dense SDP masks.
    pub q_pin: Option<usize>,
    /// Queries must lie inside the logical square
    /// (`q_offset + q_rows ≤ kv_rows`) — every implicit kernel.
    pub requires_window: bool,
    /// Only the full square geometry is accepted — dense baselines.
    pub requires_square: bool,
}

impl GeometrySpec {
    /// Merge another step's constraints into this spec, rejecting
    /// contradictions (two masks pinning different key/value lengths).
    fn merge(&mut self, other: GeometrySpec) -> Result<(), AttnError> {
        match (self.kv_pin, other.kv_pin) {
            (Some(a), Some(b)) if a != b => {
                return Err(AttnError::MaskShapeMismatch { mask: (b, b), l: a });
            }
            (None, Some(b)) => self.kv_pin = Some(b),
            _ => {}
        }
        match (self.q_pin, other.q_pin) {
            (Some(a), Some(b)) if a != b => {
                return Err(AttnError::MaskShapeMismatch { mask: (b, b), l: a });
            }
            (None, Some(b)) => self.q_pin = Some(b),
            _ => {}
        }
        self.q_abs_bound = match (self.q_abs_bound, other.q_abs_bound) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.requires_window |= other.requires_window;
        self.requires_square |= other.requires_square;
        Ok(())
    }
}

/// A validated, reusable kernel composition.
///
/// Build one with [`AttentionPlan::new`] (or
/// [`crate::AttentionEngine::compile`]). Steps run in order against one
/// shared softmax state per sequence, so a multi-step plan over pairwise
/// disjoint masks computes exact attention over their union — the paper's
/// sequential-composition semantics, now launched as **one** parallel
/// region instead of one per step.
#[derive(Clone)]
pub struct AttentionPlan<'a> {
    steps: Vec<AttentionKernel<'a>>,
    spec: GeometrySpec,
    /// The shared `(groups, seed)` of the plan's routed steps, if any.
    routing: Option<RoutedSpec>,
    /// True when a routed step is noncausal — its rows attend group
    /// members *ahead* of them, so a request must route its whole
    /// key/value set, not just the rows up to its query window.
    routed_full_kv: bool,
}

impl<'a> AttentionPlan<'a> {
    /// Compile a kernel composition into a plan.
    ///
    /// Validation performed here (and never again at execution time):
    ///
    /// - the composition is non-empty;
    /// - dense baselines ([`AttentionKernel::SdpMasked`],
    ///   [`AttentionKernel::Flash`]) appear only as single-step plans —
    ///   they cannot share a softmax state;
    /// - kernel parameters are well-formed (positive dilated widths /
    ///   block sizes);
    /// - the steps' geometry constraints merge consistently: masks pinning
    ///   a key/value length agree on one value, and square-only steps are
    ///   not pinned to a rectangular dense mask.
    pub fn new(kernels: &[AttentionKernel<'a>]) -> Result<Self, AttnError> {
        if kernels.is_empty() {
            return Err(AttnError::BadParameter {
                what: "a plan needs at least one kernel",
            });
        }
        if kernels.len() > 1 && kernels.iter().any(|k| !k.is_composable()) {
            return Err(AttnError::BadParameter {
                what: "dense baselines cannot run into a shared state",
            });
        }
        let mut spec = GeometrySpec::default();
        let mut routing: Option<RoutedSpec> = None;
        let mut routed_full_kv = false;
        for kernel in kernels {
            kernel.validate_params()?;
            spec.merge(kernel.geometry_spec())?;
            if let AttentionKernel::Routed {
                groups,
                seed,
                causal,
            } = kernel
            {
                let this = RoutedSpec {
                    groups: *groups,
                    seed: *seed,
                };
                match routing {
                    Some(prev) if prev != this => {
                        return Err(AttnError::RoutingMismatch {
                            what: "routed steps of one plan must share groups and seed",
                        });
                    }
                    _ => routing = Some(this),
                }
                routed_full_kv |= !causal;
            }
        }
        if spec.requires_square {
            if let (Some(q), Some(kv)) = (spec.q_pin, spec.kv_pin) {
                if q != kv {
                    return Err(AttnError::MaskShapeMismatch {
                        mask: (q, kv),
                        l: kv,
                    });
                }
            }
        }
        if let (Some(q), Some(bound)) = (spec.q_pin, spec.q_abs_bound) {
            if q > bound {
                return Err(AttnError::MaskShapeMismatch {
                    mask: (bound, spec.kv_pin.unwrap_or(bound)),
                    l: q,
                });
            }
        }
        Ok(AttentionPlan {
            steps: kernels.to_vec(),
            spec,
            routing,
            routed_full_kv,
        })
    }

    /// Single-kernel plan.
    pub fn single(kernel: AttentionKernel<'a>) -> Result<Self, AttnError> {
        Self::new(std::slice::from_ref(&kernel))
    }

    /// The compiled steps, in execution order.
    pub fn steps(&self) -> &[AttentionKernel<'a>] {
        &self.steps
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// A compiled plan is never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// True when every step is a graph kernel (shares one softmax state);
    /// false for single-step dense-baseline plans.
    pub fn is_composable(&self) -> bool {
        self.steps.iter().all(|k| k.is_composable())
    }

    /// The `kv_rows` value pinned by the plan's masks, if any. `None`
    /// means the plan runs at any key/value length — the property that
    /// lets one implicit-kernel plan serve a ragged batch *and* every step
    /// of a growing decode cache.
    pub fn kv_pin(&self) -> Option<usize> {
        self.spec.kv_pin
    }

    /// Upper bound on the absolute query range (`q_offset + q_rows`)
    /// imposed by explicit masks, if any.
    pub fn q_bound(&self) -> Option<usize> {
        self.spec.q_abs_bound
    }

    /// True if the plan's queries must lie inside the logical square
    /// (`q_offset + q_rows ≤ kv_rows`) — any implicit-kernel step.
    pub fn requires_window(&self) -> bool {
        self.spec.requires_window
    }

    /// True if the plan only accepts the full square geometry (dense
    /// baselines).
    pub fn requires_square(&self) -> bool {
        self.spec.requires_square
    }

    /// The `(groups, seed)` shared by the plan's routed steps, if any —
    /// `None` for a fully static plan. Requests against a routed plan
    /// must carry a [`crate::Routing`] built under exactly this spec.
    pub fn routing_spec(&self) -> Option<RoutedSpec> {
        self.routing
    }

    /// True when a routed step is noncausal, requiring a request's
    /// routing to cover its **whole** key/value set (causal-only routed
    /// plans need routing only up to the query window's end, which is
    /// what lets a decode row run with the routing grown so far).
    pub fn routed_full_kv(&self) -> bool {
        self.routed_full_kv
    }

    /// Estimated mask non-zeros (edges = dot products) of one sequence of
    /// length `l` under this plan — the admission cost model behind
    /// content-adaptive pattern selection. Static steps are enumerated
    /// exactly through their row rules (clamped to any pinned geometry);
    /// routed steps are analytic expectations, `l²/K` (halved when
    /// causal), since the actual grouping depends on data the policy has
    /// not routed yet.
    pub fn estimated_edges(&self, l: usize) -> u64 {
        self.steps
            .iter()
            .map(|step| match step {
                AttentionKernel::Routed { groups, causal, .. } => {
                    let dense = (l as u64) * (l as u64);
                    let block = dense / (*groups as u64).max(1);
                    if *causal {
                        block.div_ceil(2)
                    } else {
                        block
                    }
                }
                _ => {
                    let kv = self.spec.kv_pin.unwrap_or(l).min(l);
                    let rows = self.spec.q_abs_bound.unwrap_or(kv).min(kv);
                    let mut edges = 0u64;
                    for i in 0..rows {
                        step.for_each_neighbor(kv, i, &mut |_| edges += 1);
                    }
                    edges
                }
            })
            .sum()
    }

    /// Display label: step names joined with `" + "`, matching the paper's
    /// figure legends (`"Local + Global + CSR"`).
    pub fn describe(&self) -> String {
        self.steps
            .iter()
            .map(|k| k.name())
            .collect::<Vec<_>>()
            .join(" + ")
    }

    /// Validate one request's inputs and window against the plan — the
    /// per-request half of validation (the per-plan half ran in
    /// [`Self::new`]). O(1) regardless of step count.
    pub(crate) fn validate_request<T: Real>(
        &self,
        geometry: Geometry,
        q: &Matrix<T>,
        k: &Matrix<T>,
        v: &Matrix<T>,
    ) -> Result<(), AttnError> {
        if q.rows() != geometry.q_rows
            || k.rows() != geometry.kv_rows
            || v.rows() != geometry.kv_rows
        {
            return Err(AttnError::ContextLengthMismatch {
                q: q.rows(),
                k: k.rows(),
                v: v.rows(),
            });
        }
        if q.cols() != k.cols() {
            return Err(AttnError::KeyDimMismatch {
                q: q.cols(),
                k: k.cols(),
            });
        }
        if q.cols() == 0 {
            return Err(AttnError::BadParameter {
                what: "dk must be positive",
            });
        }
        if let Some(pin) = self.spec.kv_pin {
            if geometry.kv_rows != pin {
                return Err(AttnError::MaskShapeMismatch {
                    mask: (self.spec.q_abs_bound.unwrap_or(pin), pin),
                    l: geometry.kv_rows,
                });
            }
        }
        if let Some(pin) = self.spec.q_pin {
            if geometry.q_rows != pin || geometry.q_offset != 0 {
                return Err(AttnError::MaskShapeMismatch {
                    mask: (pin, self.spec.kv_pin.unwrap_or(pin)),
                    l: geometry.q_rows,
                });
            }
        }
        if let Some(bound) = self.spec.q_abs_bound {
            if geometry.q_end() > bound {
                return Err(AttnError::MaskShapeMismatch {
                    mask: (bound, self.spec.kv_pin.unwrap_or(bound)),
                    l: geometry.q_end(),
                });
            }
        }
        if self.spec.requires_window {
            geometry.check_window()?;
        }
        if self.spec.requires_square && !geometry.is_square() {
            return Err(AttnError::ContextLengthMismatch {
                q: geometry.q_rows,
                k: geometry.kv_rows,
                v: geometry.kv_rows,
            });
        }
        Ok(())
    }
}

impl std::fmt::Debug for AttentionPlan<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AttentionPlan")
            .field("steps", &self.describe())
            .field("kv_pin", &self.spec.kv_pin)
            .field("q_bound", &self.spec.q_abs_bound)
            .field("requires_window", &self.spec.requires_window)
            .field("requires_square", &self.spec.requires_square)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpa_masks::{GlobalSet, LocalWindow, MaskPattern};
    use gpa_sparse::DenseMask;
    use gpa_tensor::init::qkv;

    fn validate_square<'a, T: Real>(
        plan: &AttentionPlan<'_>,
        q: &'a Matrix<T>,
        k: &'a Matrix<T>,
        v: &'a Matrix<T>,
    ) -> Result<(), AttnError> {
        plan.validate_request(Geometry::window(0, q.rows(), k.rows()), q, k, v)
    }

    #[test]
    fn empty_plan_rejected() {
        assert!(matches!(
            AttentionPlan::new(&[]),
            Err(AttnError::BadParameter { .. })
        ));
    }

    #[test]
    fn dense_baseline_only_single_step() {
        let single = AttentionPlan::single(AttentionKernel::Flash).unwrap();
        assert!(!single.is_composable());
        assert_eq!(single.describe(), "FlashAttention");
        assert!(matches!(
            AttentionPlan::new(&[AttentionKernel::Flash, AttentionKernel::Local { n: 1 }]),
            Err(AttnError::BadParameter { .. })
        ));
    }

    #[test]
    fn parameter_validation_happens_at_compile_time() {
        assert!(matches!(
            AttentionPlan::single(AttentionKernel::Dilated1d { w: 0, r: 1 }),
            Err(AttnError::BadParameter { .. })
        ));
        assert!(matches!(
            AttentionPlan::single(AttentionKernel::Dilated2d {
                block_size: 0,
                r: 1
            }),
            Err(AttnError::BadParameter { .. })
        ));
    }

    #[test]
    fn geometry_consistency_across_steps() {
        let a = LocalWindow::new(16, 1).to_csr();
        let b = LocalWindow::new(24, 1).to_csr();
        // Two explicit masks agreeing on shape: fine.
        let plan =
            AttentionPlan::new(&[AttentionKernel::Csr(&a), AttentionKernel::Csr(&a)]).unwrap();
        assert_eq!(plan.kv_pin(), Some(16));
        assert_eq!(plan.q_bound(), Some(16));
        assert_eq!(plan.len(), 2);
        // Disagreeing key/value lengths: rejected at compile time.
        assert!(matches!(
            AttentionPlan::new(&[AttentionKernel::Csr(&a), AttentionKernel::Csr(&b)]),
            Err(AttnError::MaskShapeMismatch { .. })
        ));
    }

    #[test]
    fn implicit_plans_run_at_any_length_and_any_window() {
        let plan = AttentionPlan::new(&[
            AttentionKernel::Local { n: 2 },
            AttentionKernel::Dilated1d { w: 5, r: 1 },
        ])
        .unwrap();
        assert!(plan.kv_pin().is_none());
        assert!(plan.requires_window());
        assert!(!plan.requires_square());
        let (q, k, v) = qkv::<f64>(12, 4, 0);
        validate_square(&plan, &q, &k, &v).unwrap();
        let (q2, k2, v2) = qkv::<f64>(40, 4, 0);
        validate_square(&plan, &q2, &k2, &v2).unwrap();
        // A prefill chunk and a decode row validate against the same plan.
        let chunk = q2.rows_slice(8, 20);
        plan.validate_request(Geometry::window(8, 12, 40), &chunk, &k2, &v2)
            .unwrap();
        let last = q2.rows_slice(39, 40);
        plan.validate_request(Geometry::decode(40), &last, &k2, &v2)
            .unwrap();
        // But the window must stay inside the logical square.
        assert!(matches!(
            plan.validate_request(Geometry::window(30, 12, 40), &chunk, &k2, &v2),
            Err(AttnError::WindowMismatch { .. })
        ));
    }

    #[test]
    fn global_set_pins_the_kv_length() {
        let globals = GlobalSet::new(20, vec![0]);
        let plan = AttentionPlan::new(&[
            AttentionKernel::Local { n: 2 },
            AttentionKernel::Global {
                globals: &globals,
                n_sub: 2,
            },
        ])
        .unwrap();
        assert_eq!(plan.kv_pin(), Some(20));
        assert_eq!(plan.describe(), "Local + Global");
        let (q, k, v) = qkv::<f64>(12, 4, 0);
        assert!(matches!(
            validate_square(&plan, &q, &k, &v),
            Err(AttnError::MaskShapeMismatch { .. })
        ));
        // A query window against the pinned length is fine.
        let (q20, k20, v20) = qkv::<f64>(20, 4, 0);
        let win = q20.rows_slice(5, 12);
        plan.validate_request(Geometry::window(5, 7, 20), &win, &k20, &v20)
            .unwrap();
    }

    #[test]
    fn request_validation_catches_bad_inputs() {
        let plan = AttentionPlan::single(AttentionKernel::Local { n: 1 }).unwrap();
        let (q, k, _) = qkv::<f64>(8, 4, 0);
        let (_, _, v_wrong) = qkv::<f64>(9, 4, 0);
        assert!(matches!(
            validate_square(&plan, &q, &k, &v_wrong),
            Err(AttnError::ContextLengthMismatch { .. })
        ));
        let (q2, _, _) = qkv::<f64>(8, 6, 0);
        let (_, k2, v2) = qkv::<f64>(8, 4, 0);
        assert!(matches!(
            validate_square(&plan, &q2, &k2, &v2),
            Err(AttnError::KeyDimMismatch { .. })
        ));
    }

    #[test]
    fn rectangular_mask_composes_with_implicit_kernels_as_a_window() {
        // Since the geometry refactor, a rectangular CSR (4 query rows over
        // 8 keys, indexed by absolute row) composes with implicit kernels:
        // the pair runs as a query window of the logical 8×8 problem.
        let rect = gpa_sparse::CsrMask::empty(4, 8);
        let plan =
            AttentionPlan::new(&[AttentionKernel::Csr(&rect), AttentionKernel::Local { n: 1 }])
                .unwrap();
        assert_eq!(plan.kv_pin(), Some(8));
        assert_eq!(plan.q_bound(), Some(4));
        assert!(plan.requires_window());
        let (q8, k8, v8) = qkv::<f64>(8, 4, 0);
        let win = q8.rows_slice(0, 4);
        plan.validate_request(Geometry::window(0, 4, 8), &win, &k8, &v8)
            .unwrap();
        // Queries beyond the mask's absolute row bound are rejected.
        let deep = q8.rows_slice(2, 6);
        assert!(matches!(
            plan.validate_request(Geometry::window(2, 4, 8), &deep, &k8, &v8),
            Err(AttnError::MaskShapeMismatch { .. })
        ));
    }

    #[test]
    fn routed_steps_must_share_one_spec() {
        let routed = AttentionKernel::Routed {
            groups: 4,
            seed: 7,
            causal: true,
        };
        let plan = AttentionPlan::new(&[AttentionKernel::Local { n: 2 }, routed]).unwrap();
        assert_eq!(plan.routing_spec(), Some(RoutedSpec { groups: 4, seed: 7 }));
        assert!(!plan.routed_full_kv(), "causal-only plan");
        assert!(plan.requires_window());
        assert_eq!(plan.describe(), "Local + Routed");

        // A noncausal routed step flips the full-KV requirement.
        let noncausal = AttentionKernel::Routed {
            groups: 4,
            seed: 7,
            causal: false,
        };
        let plan = AttentionPlan::new(&[routed, noncausal]).unwrap();
        assert!(plan.routed_full_kv());

        // Disagreeing specs are rejected at compile time.
        let other = AttentionKernel::Routed {
            groups: 8,
            seed: 7,
            causal: true,
        };
        assert!(matches!(
            AttentionPlan::new(&[routed, other]),
            Err(AttnError::RoutingMismatch { .. })
        ));
        // Zero groups are a parameter error, caught before geometry.
        assert!(matches!(
            AttentionPlan::single(AttentionKernel::Routed {
                groups: 0,
                seed: 1,
                causal: false,
            }),
            Err(AttnError::BadParameter { .. })
        ));
        // Static plans report no routing spec.
        let plain = AttentionPlan::single(AttentionKernel::Local { n: 2 }).unwrap();
        assert_eq!(plain.routing_spec(), None);
    }

    #[test]
    fn estimated_edges_rank_patterns_sensibly() {
        let l = 128;
        let local = AttentionPlan::single(AttentionKernel::Local { n: 2 }).unwrap();
        // Local n=2: rows attend up to 5 neighbors — exact enumeration.
        let edges = local.estimated_edges(l);
        assert!(edges > 0 && edges <= 5 * l as u64);
        let routed = AttentionPlan::single(AttentionKernel::Routed {
            groups: 4,
            seed: 1,
            causal: false,
        })
        .unwrap();
        assert_eq!(
            routed.estimated_edges(l),
            (l as u64 * l as u64) / 4,
            "routed expectation is l²/K"
        );
        let causal = AttentionPlan::single(AttentionKernel::Routed {
            groups: 4,
            seed: 1,
            causal: true,
        })
        .unwrap();
        assert_eq!(causal.estimated_edges(l), (l as u64 * l as u64) / 8);
        // The cost model orders sparse-local < routed < dense-ish.
        assert!(local.estimated_edges(l) < causal.estimated_edges(l));
    }

    #[test]
    fn sdp_plan_has_dense_geometry() {
        let dense = DenseMask::ones(6, 6);
        let plan = AttentionPlan::single(AttentionKernel::SdpMasked(&dense)).unwrap();
        assert_eq!(plan.kv_pin(), Some(6));
        assert!(plan.requires_square());
        assert!(!plan.is_composable());
        assert!(!plan.is_empty());
        // Dense baselines accept only the full square geometry.
        let (q, k, v) = qkv::<f64>(6, 4, 0);
        validate_square(&plan, &q, &k, &v).unwrap();
        let one = q.rows_slice(5, 6);
        assert!(plan
            .validate_request(Geometry::decode(6), &one, &k, &v)
            .is_err());
    }
}
