//! Query-window geometry — the shape vocabulary of rectangular attention.
//!
//! The paper's kernels (Section IV) are written for square `L×L`
//! self-attention, but serving workloads are dominated by *rectangular*
//! launches: chunked prefill computes a window of query rows against the
//! full key/value prefix, and KV-cached autoregressive decode computes a
//! single query row against everything generated so far. [`Geometry`]
//! names that shape once — `q_rows` query rows starting at absolute
//! position `q_offset` inside a logical `kv_rows × kv_rows` attention
//! problem — and every layer of the stack (row enumerators, plans, the
//! batch executor, the engine's serving entry points) speaks it.
//!
//! The invariant that makes the refactor safe: a kernel's per-row neighbor
//! rule depends only on the *absolute* query index and the key/value count,
//! so any window of a longer sequence streams exactly the rows the square
//! kernel would have streamed. Chunked prefill over any split is therefore
//! bitwise identical to the full square forward, and a decode step
//! reproduces the last row of the square forward over the tokens so far
//! (property-tested in `tests/geometry.rs`).

use crate::error::AttnError;

/// A window of query rows over a logical square attention problem.
///
/// `q_rows` queries starting at absolute row `q_offset`, attending into a
/// key/value set of `kv_rows` rows. The implicit kernels interpret their
/// mask rule over the logical `kv_rows × kv_rows` square and evaluate only
/// the rows `q_offset .. q_offset + q_rows` of it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Geometry {
    /// Number of query rows in this window (output rows of the launch).
    pub q_rows: usize,
    /// Number of key/value rows — the context length of the logical mask.
    pub kv_rows: usize,
    /// Absolute index of the first query row within the logical sequence.
    pub q_offset: usize,
}

impl Geometry {
    /// The classic square self-attention geometry: all `l` rows, offset 0.
    pub fn square(l: usize) -> Self {
        Geometry {
            q_rows: l,
            kv_rows: l,
            q_offset: 0,
        }
    }

    /// A prefill-chunk window: `q_rows` queries starting at `q_offset`,
    /// against `kv_rows` keys/values.
    pub fn window(q_offset: usize, q_rows: usize, kv_rows: usize) -> Self {
        Geometry {
            q_rows,
            kv_rows,
            q_offset,
        }
    }

    /// The KV-cached decode geometry: one query row — the newest token —
    /// against a cache of `kv_rows` entries (which already includes it).
    ///
    /// # Panics
    /// Panics if `kv_rows == 0` (decode needs at least the new token).
    pub fn decode(kv_rows: usize) -> Self {
        assert!(kv_rows > 0, "decode needs at least one cached token");
        Geometry {
            q_rows: 1,
            kv_rows,
            q_offset: kv_rows - 1,
        }
    }

    /// One past the last absolute query row: `q_offset + q_rows`.
    pub fn q_end(&self) -> usize {
        self.q_offset + self.q_rows
    }

    /// True for the full square geometry (`q_offset == 0`,
    /// `q_rows == kv_rows`) — the only shape the dense baselines accept.
    pub fn is_square(&self) -> bool {
        self.q_offset == 0 && self.q_rows == self.kv_rows
    }

    /// True when the query rows lie inside the logical square
    /// (`q_end() ≤ kv_rows`) — required by every implicit kernel, whose
    /// row rules index the `kv_rows × kv_rows` mask.
    pub fn is_window(&self) -> bool {
        self.q_end() <= self.kv_rows
    }

    /// Reject geometries whose query rows fall outside the logical square.
    pub(crate) fn check_window(&self) -> Result<(), AttnError> {
        if self.is_window() {
            Ok(())
        } else {
            Err(AttnError::WindowMismatch {
                q_offset: self.q_offset,
                q_rows: self.q_rows,
                kv_rows: self.kv_rows,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_window_decode_shapes() {
        let s = Geometry::square(8);
        assert_eq!(s, Geometry::window(0, 8, 8));
        assert!(s.is_square() && s.is_window());
        assert_eq!(s.q_end(), 8);

        let w = Geometry::window(3, 2, 8);
        assert!(!w.is_square());
        assert!(w.is_window());
        assert_eq!(w.q_end(), 5);

        let d = Geometry::decode(5);
        assert_eq!(d, Geometry::window(4, 1, 5));
        assert!(d.is_window());
        assert!(!d.is_square());
        // A length-1 sequence's decode step IS the square forward.
        assert!(Geometry::decode(1).is_square());
    }

    #[test]
    fn window_check_rejects_overhang() {
        assert!(Geometry::window(6, 3, 8).check_window().is_err());
        assert!(Geometry::window(6, 2, 8).check_window().is_ok());
        assert!(matches!(
            Geometry::window(0, 9, 8).check_window(),
            Err(AttnError::WindowMismatch {
                q_offset: 0,
                q_rows: 9,
                kv_rows: 8
            })
        ));
    }

    #[test]
    #[should_panic(expected = "at least one cached token")]
    fn decode_needs_a_token() {
        let _ = Geometry::decode(0);
    }
}
