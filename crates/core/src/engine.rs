//! `AttentionEngine` — the single front door to every kernel.
//!
//! An engine owns the execution substrate (worker pool) and the launch
//! policy (schedule, scale override, optional work counting), compiles
//! kernel compositions into reusable [`AttentionPlan`]s, and executes them
//! against single sequences or whole batches:
//!
//! ```
//! use gpa_core::{AttentionEngine, AttentionKernel, AttentionRequest};
//! use gpa_tensor::init::qkv;
//!
//! let engine = AttentionEngine::with_threads(2);
//! let plan = engine.compile(&[AttentionKernel::Local { n: 4 }]).unwrap();
//!
//! // One sequence…
//! let (q, k, v) = qkv::<f32>(64, 8, 1);
//! let out = engine.run(&plan, &q, &k, &v).unwrap();
//! assert_eq!(out.shape(), (64, 8));
//!
//! // …or a ragged batch through the same plan, in one launch.
//! let (q2, k2, v2) = qkv::<f32>(48, 8, 2);
//! let outs = engine
//!     .run_batch(
//!         &plan,
//!         &[AttentionRequest::new(&q, &k, &v), AttentionRequest::new(&q2, &k2, &v2)],
//!     )
//!     .unwrap();
//! assert_eq!(outs.len(), 2);
//! ```
//!
//! The free kernel functions ([`crate::csr_attention`] and friends) remain
//! as the low-level per-kernel API over an explicit pool; the engine is the
//! recommended entry point for applications, and everything in this
//! workspace (multi-head layer, distributed executors, benchmark harness,
//! examples) now runs through it.

use crate::batch::{execute_batch, execute_batch_states, AttentionRequest};
use crate::dispatch::AttentionKernel;
use crate::error::AttnError;
use crate::options::KernelOptions;
use crate::plan::AttentionPlan;
use crate::state::AttentionState;
use gpa_parallel::{default_threads, Schedule, ThreadPool, WorkCounter, WorkReport};
use gpa_tensor::{Matrix, Real};

/// Builder for [`AttentionEngine`] — threads, schedule, scale, work
/// counting.
#[derive(Clone, Copy, Debug, Default)]
pub struct AttentionEngineBuilder {
    threads: Option<usize>,
    schedule: Schedule,
    scale: Option<f64>,
    count_work: bool,
}

impl AttentionEngineBuilder {
    /// Worker-thread count (default: `GPA_THREADS` or all cores).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Row-block scheduling policy for every launch this engine issues.
    pub fn schedule(mut self, schedule: Schedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Override the attention scale (default: Eq. (1)'s `1/√dk`).
    pub fn scale(mut self, scale: f64) -> Self {
        self.scale = Some(scale);
        self
    }

    /// Attach an engine-owned [`WorkCounter`] so every run is tallied —
    /// read it back via [`AttentionEngine::work_report`].
    pub fn count_work(mut self, enabled: bool) -> Self {
        self.count_work = enabled;
        self
    }

    /// Build the engine (spawns the worker pool).
    pub fn build(self) -> AttentionEngine {
        AttentionEngine {
            pool: ThreadPool::new(self.threads.unwrap_or_else(default_threads)),
            schedule: self.schedule,
            scale: self.scale,
            counter: self.count_work.then(WorkCounter::new),
        }
    }
}

/// The workspace's execution front door: a worker pool plus launch policy,
/// compiling and running [`AttentionPlan`]s. See the [module
/// docs](self) for an end-to-end example.
pub struct AttentionEngine {
    pool: ThreadPool,
    schedule: Schedule,
    scale: Option<f64>,
    counter: Option<WorkCounter>,
}

impl Default for AttentionEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl AttentionEngine {
    /// Engine with default policy and the library's default thread count.
    pub fn new() -> Self {
        Self::builder().build()
    }

    /// Engine with an explicit worker count and default policy.
    pub fn with_threads(threads: usize) -> Self {
        Self::builder().threads(threads).build()
    }

    /// Start configuring an engine.
    pub fn builder() -> AttentionEngineBuilder {
        AttentionEngineBuilder::default()
    }

    /// The engine's worker pool — the escape hatch for the low-level
    /// per-kernel functions and research code that needs custom launches.
    pub fn pool(&self) -> &ThreadPool {
        &self.pool
    }

    /// Worker-thread count.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// The engine's scheduling policy.
    pub fn schedule(&self) -> Schedule {
        self.schedule
    }

    /// The launch options every engine run uses ­— schedule, scale, and
    /// the engine's counter, in [`KernelOptions`] form for interop with the
    /// free kernel functions.
    pub fn options(&self) -> KernelOptions<'_> {
        KernelOptions {
            schedule: self.schedule,
            counter: self.counter.as_ref(),
            scale: self.scale,
        }
    }

    /// The engine-owned work counter, when enabled at build time.
    pub fn work_counter(&self) -> Option<&WorkCounter> {
        self.counter.as_ref()
    }

    /// Snapshot of the engine's work tallies (None unless built with
    /// `count_work(true)`).
    pub fn work_report(&self) -> Option<WorkReport> {
        self.counter.as_ref().map(WorkCounter::report)
    }

    /// Reset the engine's work tallies.
    pub fn reset_work(&self) {
        if let Some(counter) = &self.counter {
            counter.reset();
        }
    }

    /// Compile a kernel composition into a reusable plan (geometry and
    /// parameters validated once — see [`AttentionPlan::new`]).
    pub fn compile<'a>(
        &self,
        kernels: &[AttentionKernel<'a>],
    ) -> Result<AttentionPlan<'a>, AttnError> {
        AttentionPlan::new(kernels)
    }

    /// Run a plan over one sequence.
    pub fn run<T: Real>(
        &self,
        plan: &AttentionPlan<'_>,
        q: &Matrix<T>,
        k: &Matrix<T>,
        v: &Matrix<T>,
    ) -> Result<Matrix<T>, AttnError> {
        let mut outs = self.run_batch(plan, &[AttentionRequest::new(q, k, v)])?;
        Ok(outs.pop().expect("one request, one output"))
    }

    /// Run a plan over a batch of requests in one flattened launch,
    /// returning one output per request (in order). Requests may have
    /// ragged lengths when the plan's geometry allows it
    /// ([`AttentionPlan::fixed_shape`] is `None`).
    pub fn run_batch<T: Real>(
        &self,
        plan: &AttentionPlan<'_>,
        requests: &[AttentionRequest<'_, T>],
    ) -> Result<Vec<Matrix<T>>, AttnError> {
        execute_batch(&self.pool, plan, &self.options(), requests)
    }

    /// As [`Self::run_batch`] with caller-supplied [`KernelOptions`] — for
    /// callers that sweep schedules or attach their own counters (the
    /// benchmark ablations) while still going through the engine's pool
    /// and plan executor.
    pub fn run_batch_with<T: Real>(
        &self,
        plan: &AttentionPlan<'_>,
        opts: &KernelOptions<'_>,
        requests: &[AttentionRequest<'_, T>],
    ) -> Result<Vec<Matrix<T>>, AttnError> {
        execute_batch(&self.pool, plan, opts, requests)
    }

    /// Run a graph-kernel plan over a batch and return the full per-request
    /// [`AttentionState`]s — the `(O, l, m)` triples a distributed
    /// reduction merges across devices.
    pub fn run_batch_states<T: Real>(
        &self,
        plan: &AttentionPlan<'_>,
        requests: &[AttentionRequest<'_, T>],
    ) -> Result<Vec<AttentionState<T>>, AttnError> {
        execute_batch_states(&self.pool, plan, &self.options(), requests)
    }

    /// Compile-and-run convenience for one-shot kernel calls.
    pub fn run_kernel<T: Real>(
        &self,
        kernel: AttentionKernel<'_>,
        q: &Matrix<T>,
        k: &Matrix<T>,
        v: &Matrix<T>,
    ) -> Result<Matrix<T>, AttnError> {
        self.run(&AttentionPlan::single(kernel)?, q, k, v)
    }
}

impl std::fmt::Debug for AttentionEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AttentionEngine")
            .field("threads", &self.threads())
            .field("schedule", &self.schedule)
            .field("scale", &self.scale)
            .field("count_work", &self.counter.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{csr_attention, local_attention};
    use gpa_masks::{LocalWindow, MaskPattern};
    use gpa_tensor::init::qkv;

    #[test]
    fn builder_configures_policy() {
        let engine = AttentionEngine::builder()
            .threads(2)
            .schedule(Schedule::StaticContiguous)
            .scale(1.0)
            .count_work(true)
            .build();
        assert_eq!(engine.threads(), 2);
        assert_eq!(engine.schedule(), Schedule::StaticContiguous);
        let opts = engine.options();
        assert_eq!(opts.scale, Some(1.0));
        assert!(opts.counter.is_some());
        assert!(engine.work_report().is_some());
    }

    #[test]
    fn engine_run_matches_free_function() {
        let engine = AttentionEngine::with_threads(4);
        let l = 48;
        let (q, k, v) = qkv::<f64>(l, 8, 80);
        let mask = LocalWindow::new(l, 3).to_csr();
        let plan = engine.compile(&[AttentionKernel::Csr(&mask)]).unwrap();
        let via_engine = engine.run(&plan, &q, &k, &v).unwrap();
        let via_free = csr_attention(engine.pool(), &mask, &q, &k, &v, &engine.options()).unwrap();
        assert_eq!(via_engine, via_free);
    }

    #[test]
    fn engine_counts_work_across_runs() {
        let engine = AttentionEngine::builder()
            .threads(2)
            .count_work(true)
            .build();
        let l = 20;
        let (q, k, v) = qkv::<f64>(l, 4, 81);
        let pat = LocalWindow::new(l, 2);
        let plan = engine.compile(&[AttentionKernel::Local { n: 2 }]).unwrap();
        let _ = engine.run(&plan, &q, &k, &v).unwrap();
        let _ = engine.run(&plan, &q, &k, &v).unwrap();
        let report = engine.work_report().unwrap();
        assert_eq!(report.dot_products, 2 * pat.nnz() as u64);
        engine.reset_work();
        assert_eq!(engine.work_report().unwrap().dot_products, 0);
    }

    #[test]
    fn engine_scale_override_applies() {
        let engine = AttentionEngine::builder().threads(2).scale(0.0).build();
        let l = 16;
        let (q, k, v) = qkv::<f64>(l, 4, 82);
        let plan = engine.compile(&[AttentionKernel::Local { n: 2 }]).unwrap();
        let flat = engine.run(&plan, &q, &k, &v).unwrap();
        let default_engine = AttentionEngine::with_threads(2);
        let scaled = default_engine.run(&plan, &q, &k, &v).unwrap();
        assert!(flat.max_abs_diff(&scaled) > 1e-9);
    }

    #[test]
    fn run_kernel_convenience() {
        let engine = AttentionEngine::with_threads(2);
        let (q, k, v) = qkv::<f64>(24, 8, 83);
        let out = engine
            .run_kernel(AttentionKernel::Local { n: 2 }, &q, &k, &v)
            .unwrap();
        let direct = local_attention(engine.pool(), 2, &q, &k, &v, &engine.options()).unwrap();
        assert_eq!(out, direct);
    }

    #[test]
    fn compile_rejects_bad_compositions_before_any_data_exists() {
        let engine = AttentionEngine::with_threads(1);
        assert!(engine.compile(&[]).is_err());
        assert!(engine
            .compile(&[AttentionKernel::Flash, AttentionKernel::Flash])
            .is_err());
    }

    #[test]
    fn debug_formats() {
        let engine = AttentionEngine::with_threads(1);
        let s = format!("{engine:?}");
        assert!(s.contains("AttentionEngine"));
    }
}
