//! `AttentionEngine` — the single front door to every kernel.
//!
//! An engine owns the execution substrate (worker pool) and the launch
//! policy (schedule, scale override, optional work counting), compiles
//! kernel compositions into reusable [`AttentionPlan`]s, and executes them
//! against single sequences or whole batches:
//!
//! ```
//! use gpa_core::{AttentionEngine, AttentionKernel, AttentionRequest};
//! use gpa_tensor::init::qkv;
//!
//! let engine = AttentionEngine::with_threads(2);
//! let plan = engine.compile(&[AttentionKernel::Local { n: 4 }]).unwrap();
//!
//! // One sequence…
//! let (q, k, v) = qkv::<f32>(64, 8, 1);
//! let out = engine.run(&plan, &q, &k, &v).unwrap();
//! assert_eq!(out.shape(), (64, 8));
//!
//! // …or a ragged batch through the same plan, in one launch.
//! let (q2, k2, v2) = qkv::<f32>(48, 8, 2);
//! let outs = engine
//!     .run_batch(
//!         &plan,
//!         &[AttentionRequest::new(&q, &k, &v), AttentionRequest::new(&q2, &k2, &v2)],
//!     )
//!     .unwrap();
//! assert_eq!(outs.len(), 2);
//! ```
//!
//! The free kernel functions ([`crate::csr_attention`] and friends) remain
//! as the low-level per-kernel API over an explicit pool; the engine is the
//! recommended entry point for applications, and everything in this
//! workspace (multi-head layer, distributed executors, benchmark harness,
//! examples) now runs through it.

use crate::batch::{execute_batch, execute_batch_states, AttentionRequest, DecodeStep};
use crate::cache::{KvCache, KvPrecision};
use crate::dispatch::AttentionKernel;
use crate::error::AttnError;
use crate::options::KernelOptions;
use crate::plan::AttentionPlan;
use crate::routing::Router;
use crate::state::AttentionState;
use gpa_parallel::{default_threads, Schedule, ThreadPool, WorkCounter, WorkReport};
use gpa_tensor::{Matrix, Real};

/// Builder for [`AttentionEngine`] — threads, schedule, scale, work
/// counting.
#[derive(Clone, Copy, Debug, Default)]
pub struct AttentionEngineBuilder {
    threads: Option<usize>,
    schedule: Schedule,
    scale: Option<f64>,
    count_work: bool,
    kv_precision: KvPrecision,
}

impl AttentionEngineBuilder {
    /// Worker-thread count (default: `GPA_THREADS` or all cores).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Row-block scheduling policy for every launch this engine issues.
    pub fn schedule(mut self, schedule: Schedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Override the attention scale (default: Eq. (1)'s `1/√dk`).
    pub fn scale(mut self, scale: f64) -> Self {
        self.scale = Some(scale);
        self
    }

    /// Attach an engine-owned [`WorkCounter`] so every run is tallied —
    /// read it back via [`AttentionEngine::work_report`].
    pub fn count_work(mut self, enabled: bool) -> Self {
        self.count_work = enabled;
        self
    }

    /// Storage precision for KV caches created through
    /// [`AttentionEngine::new_cache`] — [`KvPrecision::F16`] emulates the
    /// FP16-storage/full-precision-compute serving configuration
    /// (quantize on append, compute in `T`; the verification suite gates
    /// its error bounds, see [`crate::verify::F16_KV_ATOL`]).
    pub fn kv_precision(mut self, precision: KvPrecision) -> Self {
        self.kv_precision = precision;
        self
    }

    /// Build the engine (spawns the worker pool).
    pub fn build(self) -> AttentionEngine {
        AttentionEngine {
            pool: ThreadPool::new(self.threads.unwrap_or_else(default_threads)),
            schedule: self.schedule,
            scale: self.scale,
            counter: self.count_work.then(WorkCounter::new),
            kv_precision: self.kv_precision,
        }
    }
}

/// The workspace's execution front door: a worker pool plus launch policy,
/// compiling and running [`AttentionPlan`]s. See the [module
/// docs](self) for an end-to-end example.
pub struct AttentionEngine {
    pool: ThreadPool,
    schedule: Schedule,
    scale: Option<f64>,
    counter: Option<WorkCounter>,
    kv_precision: KvPrecision,
}

impl Default for AttentionEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl AttentionEngine {
    /// Engine with default policy and the library's default thread count.
    pub fn new() -> Self {
        Self::builder().build()
    }

    /// Engine with an explicit worker count and default policy.
    pub fn with_threads(threads: usize) -> Self {
        Self::builder().threads(threads).build()
    }

    /// Start configuring an engine.
    pub fn builder() -> AttentionEngineBuilder {
        AttentionEngineBuilder::default()
    }

    /// The engine's worker pool — the escape hatch for the low-level
    /// per-kernel functions and research code that needs custom launches.
    pub fn pool(&self) -> &ThreadPool {
        &self.pool
    }

    /// Worker-thread count.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// The engine's scheduling policy.
    pub fn schedule(&self) -> Schedule {
        self.schedule
    }

    /// The KV storage precision this engine's caches use.
    pub fn kv_precision(&self) -> KvPrecision {
        self.kv_precision
    }

    /// An empty single-head [`KvCache`] for this engine's serving surface
    /// ([`Self::prefill_chunked`] / [`Self::decode_step`]), created with
    /// the engine's [`KvPrecision`].
    pub fn new_cache<T: Real>(&self, dk: usize, dv: usize) -> KvCache<T> {
        KvCache::with_precision(1, dk, dv, self.kv_precision)
    }

    /// The launch options every engine run uses ­— schedule, scale, and
    /// the engine's counter, in [`KernelOptions`] form for interop with the
    /// free kernel functions.
    pub fn options(&self) -> KernelOptions<'_> {
        KernelOptions {
            schedule: self.schedule,
            counter: self.counter.as_ref(),
            scale: self.scale,
        }
    }

    /// The engine-owned work counter, when enabled at build time.
    pub fn work_counter(&self) -> Option<&WorkCounter> {
        self.counter.as_ref()
    }

    /// Snapshot of the engine's work tallies (None unless built with
    /// `count_work(true)`).
    pub fn work_report(&self) -> Option<WorkReport> {
        self.counter.as_ref().map(WorkCounter::report)
    }

    /// Reset the engine's work tallies.
    pub fn reset_work(&self) {
        if let Some(counter) = &self.counter {
            counter.reset();
        }
    }

    /// Compile a kernel composition into a reusable plan (geometry and
    /// parameters validated once — see [`AttentionPlan::new`]).
    pub fn compile<'a>(
        &self,
        kernels: &[AttentionKernel<'a>],
    ) -> Result<AttentionPlan<'a>, AttnError> {
        AttentionPlan::new(kernels)
    }

    /// Run a plan over one sequence. A routed plan routes `q`'s rows
    /// itself, so the convenience entry needs no caller-held
    /// [`crate::Routing`] (batched callers attach one per request via
    /// [`AttentionRequest::with_routing`]).
    pub fn run<T: Real>(
        &self,
        plan: &AttentionPlan<'_>,
        q: &Matrix<T>,
        k: &Matrix<T>,
        v: &Matrix<T>,
    ) -> Result<Matrix<T>, AttnError> {
        let routing = plan.routing_spec().map(|spec| Router::new(spec).route(q));
        let request = AttentionRequest::new(q, k, v).with_routing(routing.as_ref());
        let mut outs = self.run_batch(plan, &[request])?;
        Ok(outs.pop().expect("one request, one output"))
    }

    /// Run a plan over a batch of requests in one flattened launch,
    /// returning one output per request (in order). Requests may have
    /// ragged lengths when the plan's geometry allows it
    /// ([`AttentionPlan::kv_pin`] is `None`), and may mix full squares,
    /// prefill-chunk windows, and decode rows — each request carries its
    /// own [`crate::Geometry`].
    pub fn run_batch<T: Real>(
        &self,
        plan: &AttentionPlan<'_>,
        requests: &[AttentionRequest<'_, T>],
    ) -> Result<Vec<Matrix<T>>, AttnError> {
        execute_batch(&self.pool, plan, &self.options(), requests)
    }

    /// As [`Self::run_batch`] with caller-supplied [`KernelOptions`] — for
    /// callers that sweep schedules or attach their own counters (the
    /// benchmark ablations) while still going through the engine's pool
    /// and plan executor.
    pub fn run_batch_with<T: Real>(
        &self,
        plan: &AttentionPlan<'_>,
        opts: &KernelOptions<'_>,
        requests: &[AttentionRequest<'_, T>],
    ) -> Result<Vec<Matrix<T>>, AttnError> {
        execute_batch(&self.pool, plan, opts, requests)
    }

    /// Run a graph-kernel plan over a batch and return the full per-request
    /// [`AttentionState`]s — the `(O, l, m)` triples a distributed
    /// reduction merges across devices.
    pub fn run_batch_states<T: Real>(
        &self,
        plan: &AttentionPlan<'_>,
        requests: &[AttentionRequest<'_, T>],
    ) -> Result<Vec<AttentionState<T>>, AttnError> {
        execute_batch_states(&self.pool, plan, &self.options(), requests)
    }

    /// Chunked prefill: append a prompt's `K`/`V` rows to `cache`
    /// (single-head), then compute the prompt's query rows in windows of
    /// `chunk` rows — **one** flattened launch mixing every chunk, each a
    /// [`crate::Geometry`] window against the full cache contents.
    ///
    /// Because the kernels see absolute query indices, the stitched output
    /// is bitwise identical to the square forward over the cache for *any*
    /// chunk split (property-tested in `tests/geometry.rs`). Returns the
    /// prompt's `q.rows() × dv` outputs.
    pub fn prefill_chunked<T: Real>(
        &self,
        plan: &AttentionPlan<'_>,
        q: &Matrix<T>,
        k: &Matrix<T>,
        v: &Matrix<T>,
        chunk: usize,
        cache: &mut KvCache<T>,
    ) -> Result<Matrix<T>, AttnError> {
        if cache.heads() != 1 {
            return Err(AttnError::BadParameter {
                what: "engine-level prefill takes a single-head cache",
            });
        }
        if chunk == 0 {
            return Err(AttnError::BadParameter {
                what: "prefill chunk size must be positive",
            });
        }
        if q.rows() != k.rows() || q.rows() != v.rows() {
            return Err(AttnError::ContextLengthMismatch {
                q: q.rows(),
                k: k.rows(),
                v: v.rows(),
            });
        }
        if k.cols() != cache.dk() || v.cols() != cache.dv() {
            return Err(AttnError::BadParameter {
                what: "K/V widths do not match the cache's dk/dv",
            });
        }
        let prior = cache.len();
        cache.extend(0, k, v);
        // A routed plan routes the whole prompt up front — one pure
        // per-row pass, so any chunk split sees identical assignments.
        if let Some(spec) = plan.routing_spec() {
            if let Err(e) = cache.extend_routing(spec, 0, q) {
                cache.truncate(prior);
                return Err(e);
            }
        }
        let prompt = q.rows();
        let chunks = crate::batch::chunk_windows(q, chunk);
        let result = {
            let cache = &*cache;
            let requests: Vec<AttentionRequest<'_, T>> = chunks
                .iter()
                .map(|(a, q_chunk)| {
                    AttentionRequest::windowed(q_chunk, cache.k(0), cache.v(0), prior + a)
                        .with_routing(cache.routing(0))
                })
                .collect();
            execute_batch(&self.pool, plan, &self.options(), &requests)
        };
        let outs = match result {
            Ok(outs) => outs,
            Err(e) => {
                // Per-request validation failed (e.g. a length-pinned or
                // dense plan): roll the append back so the cache still
                // mirrors the logical token stream.
                cache.truncate(prior);
                return Err(e);
            }
        };
        let mut stitched = Matrix::zeros(prompt, v.cols());
        for ((a, _), out) in chunks.iter().zip(outs.iter()) {
            for i in 0..out.rows() {
                stitched.row_mut(a + i).copy_from_slice(out.row(i));
            }
        }
        Ok(stitched)
    }

    /// One KV-cached decode step: append the new token's key/value rows
    /// (`k_t`/`v_t`, one row each) to `cache` (single-head), then compute
    /// the token's attention output — a single
    /// [`crate::Geometry::decode`] row over the cache, exactly the last
    /// row of the square forward over every token cached so far.
    ///
    /// Graph-kernel plans only (a dense baseline has no incremental form);
    /// implicit-kernel plans pin no length, so **one** compiled plan
    /// serves every step of the growing cache.
    pub fn decode_step<T: Real>(
        &self,
        plan: &AttentionPlan<'_>,
        q_t: &Matrix<T>,
        k_t: &Matrix<T>,
        v_t: &Matrix<T>,
        cache: &mut KvCache<T>,
    ) -> Result<Matrix<T>, AttnError> {
        let mut steps = [DecodeStep {
            q_t,
            k_t,
            v_t,
            cache,
        }];
        let mut outs = self.decode_steps_batched(plan, &mut steps)?;
        Ok(outs.pop().expect("one step, one output"))
    }

    /// Batched decode: advance **many sequences** by one token each in a
    /// single flattened launch — the continuous-batching hot path, where
    /// per-token launch overhead (which dominates `decode_latency` at
    /// small windows) is paid once per *tick* instead of once per
    /// sequence.
    ///
    /// Each [`DecodeStep`] appends its token's K/V rows to its own cache
    /// and computes that sequence's single decode row; sequences may have
    /// ragged cache lengths and key/value dimensions. Per-row work is
    /// identical to N independent [`Self::decode_step`] calls, so outputs
    /// are **bitwise identical** to them (property-tested in
    /// `tests/geometry.rs`).
    ///
    /// All steps are validated before any cache is mutated, and a failed
    /// launch truncates every cache back to its prior length — the batch
    /// is atomic: all sequences advance or none do.
    pub fn decode_steps_batched<T: Real>(
        &self,
        plan: &AttentionPlan<'_>,
        steps: &mut [DecodeStep<'_, T>],
    ) -> Result<Vec<Matrix<T>>, AttnError> {
        if !plan.is_composable() {
            return Err(AttnError::BadParameter {
                what: "dense baselines have no KV-cached decode form",
            });
        }
        // Validate every step before mutating any cache.
        for step in steps.iter() {
            if step.cache.heads() != 1 {
                return Err(AttnError::BadParameter {
                    what: "engine-level decode takes a single-head cache",
                });
            }
            if step.q_t.rows() != 1 || step.k_t.rows() != 1 || step.v_t.rows() != 1 {
                return Err(AttnError::ContextLengthMismatch {
                    q: step.q_t.rows(),
                    k: step.k_t.rows(),
                    v: step.v_t.rows(),
                });
            }
            if step.k_t.cols() != step.cache.dk() || step.v_t.cols() != step.cache.dv() {
                return Err(AttnError::BadParameter {
                    what: "K/V widths do not match the cache's dk/dv",
                });
            }
        }
        let priors: Vec<usize> = steps.iter().map(|s| s.cache.len()).collect();
        for step in steps.iter_mut() {
            step.cache.append(0, step.k_t.row(0), step.v_t.row(0));
        }
        if let Some(spec) = plan.routing_spec() {
            // Route each new token from its query row — the same pure
            // per-row function prefill used, so the decode row joins the
            // exact group the square forward would put it in.
            let routed: Result<(), AttnError> = steps
                .iter_mut()
                .try_for_each(|step| step.cache.extend_routing(spec, 0, step.q_t));
            if let Err(e) = routed {
                // Every step already appended its token; roll them all back.
                for (step, &prior) in steps.iter_mut().zip(&priors) {
                    step.cache.truncate(prior);
                }
                return Err(e);
            }
        }
        let result = {
            let requests: Vec<AttentionRequest<'_, T>> = steps
                .iter()
                .map(|s| {
                    AttentionRequest::decode(s.q_t, s.cache.k(0), s.cache.v(0))
                        .with_routing(s.cache.routing(0))
                })
                .collect();
            execute_batch(&self.pool, plan, &self.options(), &requests)
        };
        match result {
            Ok(outs) => Ok(outs),
            Err(e) => {
                // Roll every append back: a failed batch must not leave a
                // phantom token in any sequence's cache.
                for (step, &prior) in steps.iter_mut().zip(&priors) {
                    step.cache.truncate(prior);
                }
                Err(e)
            }
        }
    }

    /// Compile-and-run convenience for one-shot kernel calls.
    pub fn run_kernel<T: Real>(
        &self,
        kernel: AttentionKernel<'_>,
        q: &Matrix<T>,
        k: &Matrix<T>,
        v: &Matrix<T>,
    ) -> Result<Matrix<T>, AttnError> {
        self.run(&AttentionPlan::single(kernel)?, q, k, v)
    }
}

impl std::fmt::Debug for AttentionEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AttentionEngine")
            .field("threads", &self.threads())
            .field("schedule", &self.schedule)
            .field("scale", &self.scale)
            .field("count_work", &self.counter.is_some())
            .field("kv_precision", &self.kv_precision)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{csr_attention, local_attention};
    use gpa_masks::{LocalWindow, MaskPattern};
    use gpa_tensor::init::qkv;

    #[test]
    fn builder_configures_policy() {
        let engine = AttentionEngine::builder()
            .threads(2)
            .schedule(Schedule::StaticContiguous)
            .scale(1.0)
            .count_work(true)
            .build();
        assert_eq!(engine.threads(), 2);
        assert_eq!(engine.schedule(), Schedule::StaticContiguous);
        let opts = engine.options();
        assert_eq!(opts.scale, Some(1.0));
        assert!(opts.counter.is_some());
        assert!(engine.work_report().is_some());
    }

    #[test]
    fn engine_run_matches_free_function() {
        let engine = AttentionEngine::with_threads(4);
        let l = 48;
        let (q, k, v) = qkv::<f64>(l, 8, 80);
        let mask = LocalWindow::new(l, 3).to_csr();
        let plan = engine.compile(&[AttentionKernel::Csr(&mask)]).unwrap();
        let via_engine = engine.run(&plan, &q, &k, &v).unwrap();
        let via_free = csr_attention(engine.pool(), &mask, &q, &k, &v, &engine.options()).unwrap();
        assert_eq!(via_engine, via_free);
    }

    #[test]
    fn engine_counts_work_across_runs() {
        let engine = AttentionEngine::builder()
            .threads(2)
            .count_work(true)
            .build();
        let l = 20;
        let (q, k, v) = qkv::<f64>(l, 4, 81);
        let pat = LocalWindow::new(l, 2);
        let plan = engine.compile(&[AttentionKernel::Local { n: 2 }]).unwrap();
        let _ = engine.run(&plan, &q, &k, &v).unwrap();
        let _ = engine.run(&plan, &q, &k, &v).unwrap();
        let report = engine.work_report().unwrap();
        assert_eq!(report.dot_products, 2 * pat.nnz() as u64);
        engine.reset_work();
        assert_eq!(engine.work_report().unwrap().dot_products, 0);
    }

    #[test]
    fn engine_scale_override_applies() {
        let engine = AttentionEngine::builder().threads(2).scale(0.0).build();
        let l = 16;
        let (q, k, v) = qkv::<f64>(l, 4, 82);
        let plan = engine.compile(&[AttentionKernel::Local { n: 2 }]).unwrap();
        let flat = engine.run(&plan, &q, &k, &v).unwrap();
        let default_engine = AttentionEngine::with_threads(2);
        let scaled = default_engine.run(&plan, &q, &k, &v).unwrap();
        assert!(flat.max_abs_diff(&scaled) > 1e-9);
    }

    #[test]
    fn run_kernel_convenience() {
        let engine = AttentionEngine::with_threads(2);
        let (q, k, v) = qkv::<f64>(24, 8, 83);
        let out = engine
            .run_kernel(AttentionKernel::Local { n: 2 }, &q, &k, &v)
            .unwrap();
        let direct = local_attention(engine.pool(), 2, &q, &k, &v, &engine.options()).unwrap();
        assert_eq!(out, direct);
    }

    #[test]
    fn prefill_chunked_is_bitwise_the_square_forward() {
        let engine = AttentionEngine::with_threads(3);
        let l = 40;
        let (q, k, v) = qkv::<f64>(l, 8, 84);
        let plan = engine.compile(&[AttentionKernel::Local { n: 4 }]).unwrap();
        let full = engine.run(&plan, &q, &k, &v).unwrap();
        for chunk in [1usize, 7, 16, 40, 100] {
            let mut cache = crate::KvCache::single(8, 8);
            let out = engine
                .prefill_chunked(&plan, &q, &k, &v, chunk, &mut cache)
                .unwrap();
            assert_eq!(out, full, "chunk={chunk}");
            assert_eq!(cache.len(), l);
        }
    }

    #[test]
    fn decode_step_reproduces_the_square_prefix_rows() {
        let engine = AttentionEngine::with_threads(2);
        let l = 24;
        let (q, k, v) = qkv::<f64>(l, 4, 85);
        let plan = engine.compile(&[AttentionKernel::Local { n: 3 }]).unwrap();
        let mut cache = crate::KvCache::single(4, 4);
        for t in 0..l {
            let out = engine
                .decode_step(
                    &plan,
                    &q.rows_slice(t, t + 1),
                    &k.rows_slice(t, t + 1),
                    &v.rows_slice(t, t + 1),
                    &mut cache,
                )
                .unwrap();
            // Exactly the last row of the square forward over tokens 0..=t.
            let prefix = engine
                .run(
                    &plan,
                    &q.rows_slice(0, t + 1),
                    &k.rows_slice(0, t + 1),
                    &v.rows_slice(0, t + 1),
                )
                .unwrap();
            assert_eq!(out.row(0), prefix.row(t), "step {t}");
        }
        assert_eq!(cache.len(), l);
    }

    #[test]
    fn decode_steps_batched_matches_independent_steps() {
        let engine = AttentionEngine::with_threads(3);
        let plan = engine.compile(&[AttentionKernel::Local { n: 2 }]).unwrap();
        let lens = [5usize, 12, 1];
        let seqs: Vec<_> = lens
            .iter()
            .enumerate()
            .map(|(i, &l)| qkv::<f64>(l + 1, 4, 90 + i as u64))
            .collect();
        let mut batched_caches: Vec<crate::KvCache<f64>> = lens
            .iter()
            .zip(&seqs)
            .map(|(&l, (_, k, v))| {
                let mut c = crate::KvCache::single(4, 4);
                c.extend(0, &k.rows_slice(0, l), &v.rows_slice(0, l));
                c
            })
            .collect();
        let mut independent_caches = batched_caches.clone();
        let toks: Vec<_> = lens
            .iter()
            .zip(&seqs)
            .map(|(&l, (q, k, v))| {
                (
                    q.rows_slice(l, l + 1),
                    k.rows_slice(l, l + 1),
                    v.rows_slice(l, l + 1),
                )
            })
            .collect();
        let mut steps: Vec<DecodeStep<'_, f64>> = batched_caches
            .iter_mut()
            .zip(&toks)
            .map(|(cache, (q_t, k_t, v_t))| DecodeStep {
                q_t,
                k_t,
                v_t,
                cache,
            })
            .collect();
        let batched = engine.decode_steps_batched(&plan, &mut steps).unwrap();
        for (i, ((q_t, k_t, v_t), cache)) in
            toks.iter().zip(independent_caches.iter_mut()).enumerate()
        {
            let single = engine.decode_step(&plan, q_t, k_t, v_t, cache).unwrap();
            assert_eq!(batched[i], single, "sequence {i}");
        }
        for (i, (a, b)) in batched_caches.iter().zip(&independent_caches).enumerate() {
            assert_eq!(a.len(), b.len(), "sequence {i} cache length");
            assert_eq!(a.k(0), b.k(0), "sequence {i} cached keys");
        }
    }

    #[test]
    fn failed_batched_decode_rolls_every_cache_back() {
        // A length-pinned plan that passes the pre-append checks but fails
        // per-request validation must roll back the appends of EVERY
        // sequence in the batch, not only the offending one.
        let engine = AttentionEngine::with_threads(1);
        let globals = gpa_masks::GlobalSet::new(99, vec![0]);
        let pinned = engine
            .compile(&[AttentionKernel::Global {
                globals: &globals,
                n_sub: 0,
            }])
            .unwrap();
        let lens = [3usize, 7];
        let seqs: Vec<_> = lens
            .iter()
            .enumerate()
            .map(|(i, &l)| qkv::<f64>(l + 1, 4, 95 + i as u64))
            .collect();
        let mut caches: Vec<crate::KvCache<f64>> = lens
            .iter()
            .zip(&seqs)
            .map(|(&l, (_, k, v))| {
                let mut c = crate::KvCache::single(4, 4);
                c.extend(0, &k.rows_slice(0, l), &v.rows_slice(0, l));
                c
            })
            .collect();
        let toks: Vec<_> = lens
            .iter()
            .zip(&seqs)
            .map(|(&l, (q, k, v))| {
                (
                    q.rows_slice(l, l + 1),
                    k.rows_slice(l, l + 1),
                    v.rows_slice(l, l + 1),
                )
            })
            .collect();
        let mut steps: Vec<DecodeStep<'_, f64>> = caches
            .iter_mut()
            .zip(&toks)
            .map(|(cache, (q_t, k_t, v_t))| DecodeStep {
                q_t,
                k_t,
                v_t,
                cache,
            })
            .collect();
        assert!(engine.decode_steps_batched(&pinned, &mut steps).is_err());
        for (i, (&l, cache)) in lens.iter().zip(&caches).enumerate() {
            assert_eq!(cache.len(), l, "sequence {i} must be rolled back");
        }
        // The rolled-back caches still decode fine under a healthy plan.
        let ok = engine.compile(&[AttentionKernel::Local { n: 1 }]).unwrap();
        let mut steps: Vec<DecodeStep<'_, f64>> = caches
            .iter_mut()
            .zip(&toks)
            .map(|(cache, (q_t, k_t, v_t))| DecodeStep {
                q_t,
                k_t,
                v_t,
                cache,
            })
            .collect();
        let outs = engine.decode_steps_batched(&ok, &mut steps).unwrap();
        assert_eq!(outs.len(), 2);
        for (&l, cache) in lens.iter().zip(&caches) {
            assert_eq!(cache.len(), l + 1);
        }
    }

    #[test]
    fn serving_surface_rejects_bad_inputs() {
        let engine = AttentionEngine::with_threads(1);
        let plan = engine.compile(&[AttentionKernel::Local { n: 1 }]).unwrap();
        let (q, k, v) = qkv::<f64>(4, 4, 86);
        let mut multi = crate::KvCache::new(2, 4, 4);
        assert!(engine
            .prefill_chunked(&plan, &q, &k, &v, 2, &mut multi)
            .is_err());
        let mut cache = crate::KvCache::single(4, 4);
        assert!(engine
            .prefill_chunked(&plan, &q, &k, &v, 0, &mut cache)
            .is_err());
        assert!(engine.decode_step(&plan, &q, &k, &v, &mut cache).is_err());
        let flash = engine.compile(&[AttentionKernel::Flash]).unwrap();
        let one = q.rows_slice(0, 1);
        assert!(engine
            .decode_step(&flash, &one, &one, &one, &mut cache)
            .is_err());
        // Nothing was appended by the failed calls.
        assert!(cache.is_empty());
    }

    #[test]
    fn failed_launches_roll_the_cache_back() {
        // A plan that passes the pre-append checks but fails per-request
        // validation (length-pinned Global at the wrong context) must not
        // leave phantom tokens behind.
        let engine = AttentionEngine::with_threads(1);
        let (q, k, v) = qkv::<f64>(4, 4, 87);
        let globals = gpa_masks::GlobalSet::new(99, vec![0]);
        let pinned = engine
            .compile(&[AttentionKernel::Global {
                globals: &globals,
                n_sub: 0,
            }])
            .unwrap();
        let mut cache = crate::KvCache::single(4, 4);
        assert!(engine
            .prefill_chunked(&pinned, &q, &k, &v, 2, &mut cache)
            .is_err());
        assert!(cache.is_empty(), "failed prefill must roll back");

        let ok = engine.compile(&[AttentionKernel::Local { n: 1 }]).unwrap();
        engine
            .prefill_chunked(&ok, &q, &k, &v, 2, &mut cache)
            .unwrap();
        let one = q.rows_slice(0, 1);
        assert!(engine
            .decode_step(&pinned, &one, &one, &one, &mut cache)
            .is_err());
        assert_eq!(cache.len(), 4, "failed decode must roll back");
        // Width mismatches are rejected before any mutation.
        let wide = Matrix::<f64>::zeros(1, 5);
        assert!(engine
            .decode_step(&ok, &one, &wide, &one, &mut cache)
            .is_err());
        assert_eq!(cache.len(), 4);
        // And the rolled-back cache still decodes correctly.
        engine
            .decode_step(&ok, &one, &one, &one, &mut cache)
            .unwrap();
        assert_eq!(cache.len(), 5);
    }

    #[test]
    fn compile_rejects_bad_compositions_before_any_data_exists() {
        let engine = AttentionEngine::with_threads(1);
        assert!(engine.compile(&[]).is_err());
        assert!(engine
            .compile(&[AttentionKernel::Flash, AttentionKernel::Flash])
            .is_err());
    }

    #[test]
    fn debug_formats() {
        let engine = AttentionEngine::with_threads(1);
        let s = format!("{engine:?}");
        assert!(s.contains("AttentionEngine"));
    }
}
