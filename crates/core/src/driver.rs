//! The Algorithm 1 driver: row-parallel neighbor streaming with online
//! softmax.
//!
//! Every graph kernel in this crate is an instantiation of
//! [`graph_attention_into`] with a different neighbor-enumeration rule —
//! exactly the role `Get_Neighbors(G, i, Pa)` plays in the paper's
//! Algorithm 1. The per-edge update [`absorb_edge`] is the normalized
//! output recurrence written in the paper:
//!
//! ```text
//! W      = Qi · Kj / √dk
//! m_new  = max(m, W)
//! l_new  = l·exp(m − m_new) + exp(W − m_new)
//! Oi     = (l_new)⁻¹ · [ l·exp(m − m_new)·Oi + exp(W − m_new)·Vj ]
//! ```
//!
//! Because `O` stays normalized after every edge, kernels can be chained on
//! one [`AttentionState`] (local ∘ global composition, Section V-F).

use crate::error::AttnError;
use crate::options::KernelOptions;
use crate::state::AttentionState;
use gpa_masks::MaskPattern;
use gpa_parallel::{parallel_for, CellWriter, LocalTally, RowWriter, ThreadPool};
use gpa_tensor::ops::{dot, scale_axpy};
use gpa_tensor::{attention_scale, Matrix, Real};

/// Absorb one edge `(i → j)` into row `i`'s normalized accumulator.
///
/// `q_row`/`o_row` are row `i` of `Q`/`O`; `k_row`/`v_row` are row `j` of
/// `K`/`V`; `m`/`l` are row `i`'s running softmax statistics.
#[inline(always)]
pub fn absorb_edge<T: Real>(
    q_row: &[T],
    k_row: &[T],
    v_row: &[T],
    scale: T,
    m: &mut T,
    l: &mut T,
    o_row: &mut [T],
) {
    let w = dot(q_row, k_row) * scale;
    let m_new = (*m).max(w);
    // First edge: m = −∞ ⇒ alpha = exp(−∞ − w) = 0, so the old (zero)
    // accumulator is dropped and O becomes exactly Vj.
    let alpha = (*m - m_new).exp();
    let p = (w - m_new).exp();
    let l_new = *l * alpha + p;
    let c_old = *l * alpha / l_new;
    let c_new = p / l_new;
    scale_axpy(o_row, c_old, c_new, v_row);
    *m = m_new;
    *l = l_new;
}

/// Validate `Q`, `K`, `V`, and the state, returning `(L_q, dv, scale)`.
///
/// `Q` may have a different row count than `K`/`V` (rectangular masks:
/// cross-attention, or a distributed device's row slice against the full
/// key/value set); `K` and `V` must pair up. Kernels that require a square
/// geometry (the implicit patterns and dense baselines) enforce
/// `Q.rows == K.rows` themselves.
pub(crate) fn validate<T: Real>(
    q: &Matrix<T>,
    k: &Matrix<T>,
    v: &Matrix<T>,
    opts: &KernelOptions<'_>,
    state: &AttentionState<T>,
) -> Result<(usize, usize, T), AttnError> {
    if k.rows() != v.rows() {
        return Err(AttnError::ContextLengthMismatch {
            q: q.rows(),
            k: k.rows(),
            v: v.rows(),
        });
    }
    if q.cols() != k.cols() {
        return Err(AttnError::KeyDimMismatch {
            q: q.cols(),
            k: k.cols(),
        });
    }
    if q.cols() == 0 {
        return Err(AttnError::BadParameter {
            what: "dk must be positive",
        });
    }
    state.check_shape(q.rows(), v.cols())?;
    let scale = match opts.scale {
        Some(s) => T::from_f64(s),
        None => attention_scale(q.cols()),
    };
    Ok((q.rows(), v.cols(), scale))
}

/// Run Algorithm 1 with a custom neighbor rule.
///
/// `neighbors(i, absorb)` must invoke `absorb(j)` once per mask non-zero
/// `(i, j)`; edges may arrive in any order (online softmax is
/// order-insensitive up to rounding). The rule is consulted once per row,
/// from worker threads.
pub fn graph_attention_into<T, F>(
    pool: &ThreadPool,
    q: &Matrix<T>,
    k: &Matrix<T>,
    v: &Matrix<T>,
    opts: &KernelOptions<'_>,
    state: &mut AttentionState<T>,
    neighbors: F,
) -> Result<(), AttnError>
where
    T: Real,
    F: Fn(usize, &mut dyn FnMut(usize)) + Sync,
{
    let (l_ctx, dv, scale) = validate(q, k, v, opts, state)?;
    let kv_len = k.rows();
    let o_writer = RowWriter::new(state.o.as_mut_slice(), l_ctx, dv);
    let l_cells = CellWriter::new(&mut state.l);
    let m_cells = CellWriter::new(&mut state.m);

    parallel_for(pool, l_ctx, opts.schedule, |range| {
        let mut tally = opts.counter.map(LocalTally::new);
        for i in range {
            let q_row = q.row(i);
            // SAFETY: `parallel_for` dispatches each row index to exactly
            // one block, so row i's output/stat cells are accessed by this
            // worker only.
            let o_row = unsafe { o_writer.row_mut(i) };
            let m_i = unsafe { m_cells.cell_mut(i) };
            let l_i = unsafe { l_cells.cell_mut(i) };
            let mut absorb = |j: usize| {
                debug_assert!(j < kv_len, "neighbor {j} out of key/value set {kv_len}");
                absorb_edge(q_row, k.row(j), v.row(j), scale, m_i, l_i, o_row);
                if let Some(t) = tally.as_mut() {
                    t.dot();
                    t.update();
                }
            };
            neighbors(i, &mut absorb);
        }
    });
    Ok(())
}

/// Attention over *any* [`MaskPattern`] without materializing it: rows are
/// enumerated through the pattern's implicit rule. This is the
/// "work-optimal over arbitrary attention masks" entry point; the named
/// kernels in [`crate::kernels`] are specializations with cheaper
/// per-row enumeration.
pub fn pattern_attention_into<T: Real>(
    pool: &ThreadPool,
    pattern: &dyn MaskPattern,
    q: &Matrix<T>,
    k: &Matrix<T>,
    v: &Matrix<T>,
    opts: &KernelOptions<'_>,
    state: &mut AttentionState<T>,
) -> Result<(), AttnError> {
    if pattern.context_len() != q.rows() || pattern.context_len() != k.rows() {
        return Err(AttnError::MaskShapeMismatch {
            mask: (pattern.context_len(), pattern.context_len()),
            l: q.rows(),
        });
    }
    // Reusing one neighbor buffer per absorb call would race across rows of
    // a chunk; a thread-local buffer per call keeps this allocation-light
    // without unsafety. Rows are typically sparse, so the buffer is small.
    graph_attention_into(pool, q, k, v, opts, state, |i, absorb| {
        let mut buf = Vec::new();
        pattern.append_row(i, &mut buf);
        for &j in &buf {
            absorb(j as usize);
        }
    })
}

/// Convenience wrapper: fresh state, returns the output matrix.
pub fn pattern_attention<T: Real>(
    pool: &ThreadPool,
    pattern: &dyn MaskPattern,
    q: &Matrix<T>,
    k: &Matrix<T>,
    v: &Matrix<T>,
    opts: &KernelOptions<'_>,
) -> Result<Matrix<T>, AttnError> {
    let mut state = AttentionState::new(q.rows(), v.cols());
    pattern_attention_into(pool, pattern, q, k, v, opts, &mut state)?;
    Ok(state.into_output())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpa_masks::LocalWindow;
    use gpa_parallel::ThreadPool;
    use gpa_tensor::init::qkv;
    use gpa_tensor::softmax::softmax_slice;

    fn pool() -> ThreadPool {
        ThreadPool::new(4)
    }

    /// Brute-force masked attention for a single row.
    fn reference_row(
        q: &Matrix<f64>,
        k: &Matrix<f64>,
        v: &Matrix<f64>,
        i: usize,
        cols: &[usize],
    ) -> Vec<f64> {
        let scale = 1.0 / (q.cols() as f64).sqrt();
        let scores: Vec<f64> = cols
            .iter()
            .map(|&j| dot(q.row(i), k.row(j)) * scale)
            .collect();
        let mut w = vec![0.0; scores.len()];
        softmax_slice(&scores, &mut w);
        let mut out = vec![0.0; v.cols()];
        for (wi, &j) in w.iter().zip(cols.iter()) {
            for (o, &vv) in out.iter_mut().zip(v.row(j).iter()) {
                *o += wi * vv;
            }
        }
        out
    }

    #[test]
    fn absorb_edge_single_matches_softmax_of_one() {
        let q = [1.0f64, 0.0];
        let k = [0.5f64, 0.5];
        let v = [2.0f64, -1.0];
        let mut m = f64::NEG_INFINITY;
        let mut l = 0.0;
        let mut o = [0.0f64, 0.0];
        absorb_edge(&q, &k, &v, 1.0, &mut m, &mut l, &mut o);
        // One edge: softmax weight 1 → O = V.
        assert_eq!(o, v);
        assert_eq!(m, 0.5);
        assert!((l - 1.0).abs() < 1e-15);
    }

    #[test]
    fn absorb_is_order_insensitive() {
        let (q, _k, _v) = qkv::<f64>(1, 4, 5);
        // Stream the same 3 synthetic edges in two orders.
        let edges: Vec<(Vec<f64>, Vec<f64>)> = (0..3)
            .map(|t| {
                (
                    (0..4).map(|j| ((t * 4 + j) as f64).sin()).collect(),
                    (0..4).map(|j| ((t * 4 + j) as f64).cos()).collect(),
                )
            })
            .collect();
        let run = |order: &[usize]| {
            let mut m = f64::NEG_INFINITY;
            let mut l = 0.0;
            let mut o = vec![0.0f64; 4];
            for &e in order {
                absorb_edge(
                    q.row(0),
                    &edges[e].0,
                    &edges[e].1,
                    0.5,
                    &mut m,
                    &mut l,
                    &mut o,
                );
            }
            o
        };
        let a = run(&[0, 1, 2]);
        let b = run(&[2, 0, 1]);
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn pattern_attention_matches_row_reference() {
        let l = 32;
        let (q, k, v) = qkv::<f64>(l, 8, 42);
        let pat = LocalWindow::new(l, 3);
        let out = pattern_attention(&pool(), &pat, &q, &k, &v, &KernelOptions::new()).unwrap();
        for i in 0..l {
            let cols: Vec<usize> = (0..l).filter(|&j| pat.contains(i, j)).collect();
            let expect = reference_row(&q, &k, &v, i, &cols);
            for (a, b) in out.row(i).iter().zip(expect.iter()) {
                assert!((a - b).abs() < 1e-12, "row {i}");
            }
        }
    }

    #[test]
    fn empty_mask_rows_stay_zero() {
        // Window 0 on row 0 only … use a pattern with an empty row: local
        // window 0 has the diagonal, so build a custom empty-row pattern via
        // Dilated2d where unselected rows attend nothing.
        use gpa_masks::Dilated2d;
        let l = 12;
        let (q, k, v) = qkv::<f64>(l, 4, 1);
        let pat = Dilated2d::new(l, 4, 1); // odd in-block offsets attend nothing
        let out = pattern_attention(&pool(), &pat, &q, &k, &v, &KernelOptions::new()).unwrap();
        for i in 0..l {
            if (i % 4) % 2 != 0 {
                assert!(out.row(i).iter().all(|&x| x == 0.0), "row {i} must be zero");
            } else {
                assert!(
                    out.row(i).iter().any(|&x| x != 0.0),
                    "row {i} must be nonzero"
                );
            }
        }
    }

    #[test]
    fn dimension_validation() {
        let q: Matrix<f64> = Matrix::zeros(4, 8);
        let k: Matrix<f64> = Matrix::zeros(5, 8);
        let v: Matrix<f64> = Matrix::zeros(4, 8);
        let mut state = AttentionState::new(4, 8);
        let err = graph_attention_into(
            &pool(),
            &q,
            &k,
            &v,
            &KernelOptions::new(),
            &mut state,
            |_, _| {},
        )
        .unwrap_err();
        assert!(matches!(err, AttnError::ContextLengthMismatch { .. }));

        let k: Matrix<f64> = Matrix::zeros(4, 6);
        let err = graph_attention_into(
            &pool(),
            &q,
            &k,
            &v,
            &KernelOptions::new(),
            &mut state,
            |_, _| {},
        )
        .unwrap_err();
        assert!(matches!(err, AttnError::KeyDimMismatch { .. }));

        let k: Matrix<f64> = Matrix::zeros(4, 8);
        let mut bad_state = AttentionState::new(3, 8);
        let err = graph_attention_into(
            &pool(),
            &q,
            &k,
            &v,
            &KernelOptions::new(),
            &mut bad_state,
            |_, _| {},
        )
        .unwrap_err();
        assert!(matches!(err, AttnError::StateShapeMismatch { .. }));
    }

    #[test]
    fn work_counter_counts_every_edge() {
        use gpa_parallel::WorkCounter;
        let l = 20;
        let (q, k, v) = qkv::<f64>(l, 4, 9);
        let pat = LocalWindow::new(l, 2);
        let counter = WorkCounter::new();
        let opts = KernelOptions::new().with_counter(&counter);
        let _ = pattern_attention(&pool(), &pat, &q, &k, &v, &opts).unwrap();
        assert_eq!(counter.dot_products(), pat.nnz() as u64);
        assert_eq!(counter.output_updates(), pat.nnz() as u64);
    }

    #[test]
    fn scale_override_changes_result() {
        let l = 8;
        let (q, k, v) = qkv::<f64>(l, 4, 2);
        let pat = LocalWindow::new(l, 2);
        let p = pool();
        let a = pattern_attention(&p, &pat, &q, &k, &v, &KernelOptions::new()).unwrap();
        let b =
            pattern_attention(&p, &pat, &q, &k, &v, &KernelOptions::new().with_scale(0.0)).unwrap();
        // Scale 0 ⇒ uniform weights; results must differ from scaled ones.
        assert!(a.max_abs_diff(&b) > 1e-9);
    }
}
