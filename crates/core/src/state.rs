//! Resumable attention state — Algorithm 1's `(O, l, m)` triple.
//!
//! Every graph kernel updates an [`AttentionState`] in place. Because the
//! output accumulator is kept in the *normalized* form of Algorithm 1
//! (`O` is always the exact attention output over the edges absorbed so
//! far), sequential kernel calls over disjoint masks compose exactly:
//! running the local kernel and then the global kernel on the same state
//! yields precisely Longformer attention (Fig. 6's "Loc + Glo" series).

use crate::error::AttnError;
use gpa_tensor::{Matrix, Real};

/// Per-row online-softmax statistics plus the normalized output accumulator.
#[derive(Clone)]
pub struct AttentionState<T> {
    /// Normalized output accumulator, `L × dv`.
    pub o: Matrix<T>,
    /// Row normalizers: `l[i] = Σ exp(w − m[i])` over absorbed edges.
    pub l: Vec<T>,
    /// Row running maxima of attention scores.
    pub m: Vec<T>,
}

impl<T: Real> std::fmt::Debug for AttentionState<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AttentionState")
            .field("rows", &self.o.rows())
            .field("dv", &self.o.cols())
            .field(
                "absorbed_rows",
                &self.l.iter().filter(|&&l| l != T::ZERO).count(),
            )
            .finish()
    }
}

impl<T: Real> AttentionState<T> {
    /// Fresh state for `l_ctx` rows and value dimension `dv`:
    /// `O = 0`, `l = 0`, `m = −∞` (Algorithm 1's initialization).
    pub fn new(l_ctx: usize, dv: usize) -> Self {
        AttentionState {
            o: Matrix::zeros(l_ctx, dv),
            l: vec![T::ZERO; l_ctx],
            m: vec![T::neg_infinity(); l_ctx],
        }
    }

    /// Context length `L`.
    pub fn context_len(&self) -> usize {
        self.o.rows()
    }

    /// Value dimension `dv`.
    pub fn dv(&self) -> usize {
        self.o.cols()
    }

    /// The attention output. Because updates keep `O` normalized, this is
    /// a free conversion — rows with no absorbed edges are zero, matching
    /// the masked-SDP convention for fully masked rows.
    pub fn into_output(self) -> Matrix<T> {
        self.o
    }

    /// Borrowed view of the current output.
    pub fn output(&self) -> &Matrix<T> {
        &self.o
    }

    /// Validate this state against expected dimensions.
    pub fn check_shape(&self, l_ctx: usize, dv: usize) -> Result<(), AttnError> {
        if self.o.shape() != (l_ctx, dv) || self.l.len() != l_ctx || self.m.len() != l_ctx {
            return Err(AttnError::StateShapeMismatch {
                expected: (l_ctx, dv),
                actual: self.o.shape(),
            });
        }
        Ok(())
    }

    /// True if no edges have been absorbed into any row.
    pub fn is_fresh(&self) -> bool {
        self.l.iter().all(|&l| l == T::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_state_matches_algorithm1_init() {
        let s: AttentionState<f64> = AttentionState::new(4, 3);
        assert_eq!(s.context_len(), 4);
        assert_eq!(s.dv(), 3);
        assert!(s.is_fresh());
        assert!(s.m.iter().all(|&m| m == f64::NEG_INFINITY));
        assert!(s.l.iter().all(|&l| l == 0.0));
        assert!(s.output().as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn shape_check() {
        let s: AttentionState<f32> = AttentionState::new(4, 3);
        assert!(s.check_shape(4, 3).is_ok());
        assert!(matches!(
            s.check_shape(5, 3),
            Err(AttnError::StateShapeMismatch { .. })
        ));
        assert!(s.check_shape(4, 2).is_err());
    }

    #[test]
    fn into_output_is_the_accumulator() {
        let mut s: AttentionState<f64> = AttentionState::new(2, 2);
        s.o.set(1, 1, 7.0);
        let out = s.into_output();
        assert_eq!(out.get(1, 1), 7.0);
    }
}
