//! Kernel launch options.
//!
//! [`KernelOptions`] parameterizes one launch of the low-level per-kernel
//! functions. Applications normally configure the same knobs once on an
//! [`crate::AttentionEngine`] (whose [`crate::AttentionEngine::options`]
//! produces this struct), so options only need to be built by hand when
//! sweeping schedules or attaching ad-hoc counters.

use gpa_parallel::{Schedule, WorkCounter};

/// Options shared by every attention kernel launch.
#[derive(Clone, Copy, Default)]
pub struct KernelOptions<'a> {
    /// Row-block scheduling policy. The default (dynamic, modest grain) is
    /// the best general-purpose choice; pass [`Schedule::cuda_like`] or
    /// [`Schedule::StaticContiguous`] to reproduce the paper's fixed
    /// block-to-SM assignment in the load-imbalance experiments.
    pub schedule: Schedule,
    /// Optional work counter. When set, kernels tally one dot product and
    /// one output update per absorbed edge (plus COO search steps), which
    /// the work-optimality tests compare against the mask's nnz.
    pub counter: Option<&'a WorkCounter>,
    /// Override for the attention scale. `None` uses Eq. (1)'s `1/√dk`.
    pub scale: Option<f64>,
}

impl<'a> KernelOptions<'a> {
    /// Default options (dynamic schedule, no instrumentation, `1/√dk`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Attach a work counter.
    pub fn with_counter(mut self, counter: &'a WorkCounter) -> Self {
        self.counter = Some(counter);
        self
    }

    /// Select a scheduling policy.
    pub fn with_schedule(mut self, schedule: Schedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Override the attention scale factor.
    pub fn with_scale(mut self, scale: f64) -> Self {
        self.scale = Some(scale);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let c = WorkCounter::new();
        let o = KernelOptions::new()
            .with_schedule(Schedule::StaticContiguous)
            .with_scale(1.0)
            .with_counter(&c);
        assert_eq!(o.schedule, Schedule::StaticContiguous);
        assert_eq!(o.scale, Some(1.0));
        assert!(o.counter.is_some());
    }
}
