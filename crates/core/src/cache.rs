//! KV cache — per-head key/value storage for incremental decode.
//!
//! Autoregressive generation recomputes nothing: each new token appends
//! its key/value rows to a [`KvCache`] and attends over the cache with a
//! single-row [`crate::Geometry::decode`] window (the regime where sparse
//! attention's per-token cost is `O(row nnz · d)` instead of the dense
//! `O(L · d)` — InAttention's linear inference-time scaling). The cache is
//! plain growable row storage: one `(K, V)` matrix pair per head, appended
//! a row at a time (amortized `O(d)` per token via
//! [`gpa_tensor::Matrix::push_row`]) and borrowed directly by
//! [`crate::AttentionRequest`]s — no copies on the decode hot path.

use crate::error::AttnError;
use crate::routing::{RoutedSpec, Routing};
use gpa_tensor::{Matrix, Real, F16};

/// Storage precision of a [`KvCache`].
///
/// `F16` emulates FP16 KV storage with full-precision compute (the common
/// serving configuration): every appended key/value element is rounded
/// through IEEE binary16 ([`gpa_tensor::F16`]) and stored as the nearest
/// representable value, while all downstream arithmetic stays in `T`.
/// Quantization is idempotent — re-appending already-quantized rows (the
/// scheduler's preemption rebuild path) is exact.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum KvPrecision {
    /// Store keys/values exactly as computed (in `T`).
    #[default]
    Native,
    /// Round keys/values to the nearest IEEE binary16 value on append.
    F16,
}

/// Round one value to the nearest IEEE binary16, staying in `T`.
#[inline(always)]
fn to_f16<T: Real>(x: T) -> T {
    T::from_f64(F16::from_f64(x.to_f64()).to_f64())
}

/// Round every element of a freshly appended row to binary16 in place.
fn quantize_row<T: Real>(row: &mut [T]) {
    for x in row.iter_mut() {
        *x = to_f16(*x);
    }
}

/// Growable per-head key/value storage for one sequence.
///
/// Single-head callers (the engine's [`crate::AttentionEngine::decode_step`]
/// surface) build it with [`KvCache::single`]; the multi-head layer keeps
/// one entry per head ([`crate::MultiHeadAttention::forward_decode`]).
/// Storage precision is fixed at construction ([`KvPrecision`], default
/// native).
#[derive(Clone)]
pub struct KvCache<T> {
    /// `(K, V)` per head; `K` is `len × dk`, `V` is `len × dv`.
    heads: Vec<(Matrix<T>, Matrix<T>)>,
    precision: KvPrecision,
    /// Per-head token routing for routed plans — created lazily by the
    /// first [`KvCache::extend_routing`], absent for static sequences.
    /// Rides in the cache so every rollback path ([`KvCache::truncate`])
    /// keeps routing and tokens consistent by construction.
    routing: Option<Vec<Routing>>,
}

impl<T: Real> std::fmt::Debug for KvCache<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KvCache")
            .field("heads", &self.heads())
            .field("tokens", &self.len())
            .field("dk", &self.dk())
            .field("dv", &self.dv())
            .field("precision", &self.precision)
            .finish()
    }
}

impl<T: Real> KvCache<T> {
    /// Empty cache for `heads` heads with key dimension `dk` and value
    /// dimension `dv`.
    ///
    /// # Panics
    /// Panics if `heads`, `dk`, or `dv` is zero.
    pub fn new(heads: usize, dk: usize, dv: usize) -> Self {
        Self::with_precision(heads, dk, dv, KvPrecision::Native)
    }

    /// As [`KvCache::new`] with an explicit storage precision.
    ///
    /// # Panics
    /// Panics if `heads`, `dk`, or `dv` is zero.
    pub fn with_precision(heads: usize, dk: usize, dv: usize, precision: KvPrecision) -> Self {
        assert!(heads > 0, "a cache needs at least one head");
        assert!(dk > 0 && dv > 0, "key/value dimensions must be positive");
        KvCache {
            heads: (0..heads)
                .map(|_| (Matrix::zeros(0, dk), Matrix::zeros(0, dv)))
                .collect(),
            precision,
            routing: None,
        }
    }

    /// Single-head cache — the engine-level decode surface.
    pub fn single(dk: usize, dv: usize) -> Self {
        Self::new(1, dk, dv)
    }

    /// This cache's storage precision.
    pub fn precision(&self) -> KvPrecision {
        self.precision
    }

    /// Number of heads.
    pub fn heads(&self) -> usize {
        self.heads.len()
    }

    /// Key dimension.
    pub fn dk(&self) -> usize {
        self.heads[0].0.cols()
    }

    /// Value dimension.
    pub fn dv(&self) -> usize {
        self.heads[0].1.cols()
    }

    /// Number of cached tokens (uniform across heads between appends).
    pub fn len(&self) -> usize {
        debug_assert!(
            self.heads
                .iter()
                .all(|(k, v)| k.rows() == self.heads[0].0.rows() && v.rows() == k.rows()),
            "heads hold different token counts — a per-token append is incomplete"
        );
        self.heads[0].0.rows()
    }

    /// True when no tokens are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes of K/V payload this cache holds:
    /// `heads × len × (dk + dv) × size_of::<T>()`. This is the quantity a
    /// host-side [`crate::SwapArena`] accounts when a preempted sequence
    /// parks its cache instead of dropping it. [`KvPrecision::F16`] rounds
    /// values but stores them in `T`, so precision does not change the
    /// byte count.
    pub fn kv_bytes(&self) -> usize {
        self.heads() * self.len() * (self.dk() + self.dv()) * std::mem::size_of::<T>()
    }

    /// Append one token's key/value rows to head `head`.
    ///
    /// # Panics
    /// Panics if the rows do not match the cache's `dk`/`dv` — checked for
    /// *both* rows before either is pushed, so a bad call never leaves `K`
    /// and `V` with diverged row counts.
    pub fn append(&mut self, head: usize, k_row: &[T], v_row: &[T]) {
        let precision = self.precision;
        let (k, v) = &mut self.heads[head];
        assert_eq!(k_row.len(), k.cols(), "key row width mismatch");
        assert_eq!(v_row.len(), v.cols(), "value row width mismatch");
        k.push_row(k_row);
        v.push_row(v_row);
        if precision == KvPrecision::F16 {
            quantize_row(k.row_mut(k.rows() - 1));
            quantize_row(v.row_mut(v.rows() - 1));
        }
    }

    /// Bulk-append a prompt's key/value rows to head `head` — the prefill
    /// fill path.
    ///
    /// # Panics
    /// Panics if `k`/`v` disagree on rows or do not match `dk`/`dv` (both
    /// checked before any mutation).
    pub fn extend(&mut self, head: usize, k: &Matrix<T>, v: &Matrix<T>) {
        assert_eq!(k.rows(), v.rows(), "K/V row counts differ");
        let precision = self.precision;
        let (ck, cv) = &mut self.heads[head];
        assert_eq!(k.cols(), ck.cols(), "key width mismatch");
        assert_eq!(v.cols(), cv.cols(), "value width mismatch");
        ck.reserve_rows(k.rows());
        cv.reserve_rows(v.rows());
        for i in 0..k.rows() {
            ck.push_row(k.row(i));
            cv.push_row(v.row(i));
            if precision == KvPrecision::F16 {
                quantize_row(ck.row_mut(ck.rows() - 1));
                quantize_row(cv.row_mut(cv.rows() - 1));
            }
        }
    }

    /// The cached keys of head `head`, `len × dk`.
    pub fn k(&self, head: usize) -> &Matrix<T> {
        &self.heads[head].0
    }

    /// The cached values of head `head`, `len × dv`.
    pub fn v(&self, head: usize) -> &Matrix<T> {
        &self.heads[head].1
    }

    /// The routing of head `head`, if this sequence runs a routed plan
    /// and the head has been routed ([`KvCache::extend_routing`]).
    pub fn routing(&self, head: usize) -> Option<&Routing> {
        self.routing.as_ref().map(|r| &r[head])
    }

    /// Route `q`'s rows as head `head`'s next `q.rows()` tokens under
    /// `spec`, creating the per-head routing state on first use.
    ///
    /// Routing a row is a pure function of `(spec, q_row)`, so extending
    /// chunk by chunk, token by token, or re-extending after a
    /// [`KvCache::truncate`] rollback reproduces identical assignments —
    /// the property that keeps decode, chunked prefill, and
    /// evict-and-resume routing-consistent.
    ///
    /// # Errors
    /// [`AttnError::RoutingMismatch`] when the head was previously routed
    /// under a different spec.
    pub fn extend_routing(
        &mut self,
        spec: RoutedSpec,
        head: usize,
        q: &Matrix<T>,
    ) -> Result<(), AttnError> {
        let heads = self.heads.len();
        let routing = self
            .routing
            .get_or_insert_with(|| vec![Routing::empty(spec); heads]);
        if routing[head].spec() != spec {
            return Err(AttnError::RoutingMismatch {
                what: "this cache's routing was built under a different spec",
            });
        }
        routing[head].extend(q);
        Ok(())
    }

    /// Drop every token past the first `tokens` on every head — the
    /// rollback the engine uses when an append succeeded but the launch
    /// that followed it failed validation. Routing state truncates with
    /// the tokens, so a rolled-back cache never carries routing for rows
    /// it no longer holds.
    pub fn truncate(&mut self, tokens: usize) {
        for (k, v) in &mut self.heads {
            k.truncate_rows(tokens);
            v.truncate_rows(tokens);
        }
        if let Some(routing) = &mut self.routing {
            for r in routing {
                r.truncate(tokens);
            }
        }
    }

    /// Drop every cached token, keeping the configuration, head count,
    /// and allocated capacity — sequence reset in a serving loop.
    pub fn clear(&mut self) {
        self.truncate(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpa_tensor::init::qkv;

    #[test]
    fn append_and_extend_grow_all_views() {
        let mut cache: KvCache<f64> = KvCache::new(2, 4, 3);
        assert_eq!(cache.heads(), 2);
        assert_eq!((cache.dk(), cache.dv()), (4, 3));
        assert!(cache.is_empty());

        for h in 0..2 {
            cache.append(h, &[1.0, 2.0, 3.0, 4.0], &[5.0, 6.0, 7.0]);
        }
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.k(1).row(0), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(cache.v(0).row(0), &[5.0, 6.0, 7.0]);

        let (_, k, _) = qkv::<f64>(5, 4, 1);
        let (_, _, v) = qkv::<f64>(5, 3, 2);
        for h in 0..2 {
            cache.extend(h, &k, &v);
        }
        assert_eq!(cache.len(), 6);
        assert_eq!(cache.k(0).row(3), k.row(2));

        cache.clear();
        assert!(cache.is_empty());
        assert_eq!((cache.dk(), cache.dv()), (4, 3));
    }

    #[test]
    fn kv_bytes_counts_heads_tokens_and_both_widths() {
        let mut cache: KvCache<f64> = KvCache::new(2, 4, 3);
        assert_eq!(cache.kv_bytes(), 0);
        let (_, k, _) = qkv::<f64>(5, 4, 1);
        let (_, _, v) = qkv::<f64>(5, 3, 2);
        for h in 0..2 {
            cache.extend(h, &k, &v);
        }
        // 2 heads × 5 tokens × (4 + 3) columns × 8 bytes.
        assert_eq!(cache.kv_bytes(), 2 * 5 * 7 * 8);
        cache.truncate(2);
        assert_eq!(cache.kv_bytes(), 2 * 2 * 7 * 8);
    }

    #[test]
    #[should_panic(expected = "at least one head")]
    fn zero_heads_rejected() {
        let _ = KvCache::<f32>::new(0, 4, 4);
    }

    #[test]
    #[should_panic(expected = "key row width mismatch")]
    fn wrong_row_width_rejected() {
        let mut cache: KvCache<f32> = KvCache::single(4, 4);
        cache.append(0, &[1.0, 2.0], &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "value row width mismatch")]
    fn wrong_value_width_rejected_before_any_push() {
        // Both widths are checked before either row lands, so a bad call
        // can never leave K and V with diverged row counts.
        let mut cache: KvCache<f32> = KvCache::single(2, 2);
        cache.append(0, &[1.0, 2.0], &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn f16_cache_rounds_appends_to_binary16() {
        let mut cache: KvCache<f64> = KvCache::with_precision(1, 2, 2, KvPrecision::F16);
        assert_eq!(cache.precision(), KvPrecision::F16);
        // 0.1 is not binary16-representable; 0.5 and 1.0 are exact.
        cache.append(0, &[0.1, 0.5], &[1.0, 0.3]);
        let k = cache.k(0).row(0);
        assert_ne!(k[0], 0.1, "non-representable values must be rounded");
        assert!((k[0] - 0.1).abs() < 1e-4, "…but only to the nearest f16");
        assert_eq!(k[1], 0.5);
        assert_eq!(cache.v(0).row(0)[0], 1.0);
        // Idempotent: re-appending stored rows reproduces them exactly
        // (the preemption-rebuild path).
        let (stored_k, stored_v) = (k.to_vec(), cache.v(0).row(0).to_vec());
        cache.append(0, &stored_k, &stored_v);
        assert_eq!(cache.k(0).row(1), &stored_k[..]);
        assert_eq!(cache.v(0).row(1), &stored_v[..]);
    }

    #[test]
    fn f16_extend_matches_per_row_append() {
        let (_, k, v) = qkv::<f32>(6, 4, 11);
        let mut bulk: KvCache<f32> = KvCache::with_precision(1, 4, 4, KvPrecision::F16);
        bulk.extend(0, &k, &v);
        let mut single: KvCache<f32> = KvCache::with_precision(1, 4, 4, KvPrecision::F16);
        for i in 0..k.rows() {
            single.append(0, k.row(i), v.row(i));
        }
        assert_eq!(bulk.k(0), single.k(0));
        assert_eq!(bulk.v(0), single.v(0));
        // And the quantized storage differs from native storage.
        let mut native: KvCache<f32> = KvCache::single(4, 4);
        native.extend(0, &k, &v);
        assert_ne!(bulk.k(0), native.k(0));
    }

    #[test]
    fn routing_rides_the_cache_and_rolls_back_with_it() {
        use crate::routing::{RoutedSpec, Router};
        let spec = RoutedSpec { groups: 3, seed: 9 };
        let (q, k, v) = qkv::<f64>(12, 4, 21);
        let mut cache: KvCache<f64> = KvCache::new(2, 4, 4);
        assert!(cache.routing(0).is_none(), "no routing until extended");
        for h in 0..2 {
            cache.extend(h, &k, &v);
            cache.extend_routing(spec, h, &q).unwrap();
        }
        let expect = Router::new(spec).route(&q);
        assert_eq!(cache.routing(1), Some(&expect));
        // Wrong spec is rejected without touching state.
        let err = cache
            .extend_routing(RoutedSpec { groups: 4, seed: 9 }, 0, &q)
            .unwrap_err();
        assert!(matches!(err, AttnError::RoutingMismatch { .. }));
        assert_eq!(cache.routing(0), Some(&expect));
        // Truncation rolls tokens and routing back together; re-extending
        // the retained rows reproduces the assignment bit for bit.
        cache.truncate(7);
        assert_eq!(cache.routing(0).unwrap().len(), 7);
        cache.extend_routing(spec, 0, &q.rows_slice(7, 12)).unwrap();
        assert_eq!(cache.routing(0), Some(&expect));
    }

    #[test]
    fn truncate_rolls_back_appends() {
        let mut cache: KvCache<f64> = KvCache::new(2, 2, 2);
        for h in 0..2 {
            cache.append(h, &[1.0, 2.0], &[3.0, 4.0]);
            cache.append(h, &[5.0, 6.0], &[7.0, 8.0]);
        }
        cache.truncate(1);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.k(1).row(0), &[1.0, 2.0]);
        cache.truncate(9); // longer than the cache: no-op
        assert_eq!(cache.len(), 1);
    }
}
