//! KV cache — per-head key/value storage for incremental decode.
//!
//! Autoregressive generation recomputes nothing: each new token appends
//! its key/value rows to a [`KvCache`] and attends over the cache with a
//! single-row [`crate::Geometry::decode`] window (the regime where sparse
//! attention's per-token cost is `O(row nnz · d)` instead of the dense
//! `O(L · d)` — InAttention's linear inference-time scaling). The cache is
//! plain growable row storage: one `(K, V)` matrix pair per head, appended
//! a row at a time (amortized `O(d)` per token via
//! [`gpa_tensor::Matrix::push_row`]) and borrowed directly by
//! [`crate::AttentionRequest`]s — no copies on the decode hot path.

use gpa_tensor::{Matrix, Real};

/// Growable per-head key/value storage for one sequence.
///
/// Single-head callers (the engine's [`crate::AttentionEngine::decode_step`]
/// surface) build it with [`KvCache::single`]; the multi-head layer keeps
/// one entry per head ([`crate::MultiHeadAttention::forward_decode`]).
#[derive(Clone)]
pub struct KvCache<T> {
    /// `(K, V)` per head; `K` is `len × dk`, `V` is `len × dv`.
    heads: Vec<(Matrix<T>, Matrix<T>)>,
}

impl<T: Real> std::fmt::Debug for KvCache<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KvCache")
            .field("heads", &self.heads())
            .field("tokens", &self.len())
            .field("dk", &self.dk())
            .field("dv", &self.dv())
            .finish()
    }
}

impl<T: Real> KvCache<T> {
    /// Empty cache for `heads` heads with key dimension `dk` and value
    /// dimension `dv`.
    ///
    /// # Panics
    /// Panics if `heads`, `dk`, or `dv` is zero.
    pub fn new(heads: usize, dk: usize, dv: usize) -> Self {
        assert!(heads > 0, "a cache needs at least one head");
        assert!(dk > 0 && dv > 0, "key/value dimensions must be positive");
        KvCache {
            heads: (0..heads)
                .map(|_| (Matrix::zeros(0, dk), Matrix::zeros(0, dv)))
                .collect(),
        }
    }

    /// Single-head cache — the engine-level decode surface.
    pub fn single(dk: usize, dv: usize) -> Self {
        Self::new(1, dk, dv)
    }

    /// Number of heads.
    pub fn heads(&self) -> usize {
        self.heads.len()
    }

    /// Key dimension.
    pub fn dk(&self) -> usize {
        self.heads[0].0.cols()
    }

    /// Value dimension.
    pub fn dv(&self) -> usize {
        self.heads[0].1.cols()
    }

    /// Number of cached tokens (uniform across heads between appends).
    pub fn len(&self) -> usize {
        debug_assert!(
            self.heads
                .iter()
                .all(|(k, v)| k.rows() == self.heads[0].0.rows() && v.rows() == k.rows()),
            "heads hold different token counts — a per-token append is incomplete"
        );
        self.heads[0].0.rows()
    }

    /// True when no tokens are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append one token's key/value rows to head `head`.
    ///
    /// # Panics
    /// Panics if the rows do not match the cache's `dk`/`dv` — checked for
    /// *both* rows before either is pushed, so a bad call never leaves `K`
    /// and `V` with diverged row counts.
    pub fn append(&mut self, head: usize, k_row: &[T], v_row: &[T]) {
        let (k, v) = &mut self.heads[head];
        assert_eq!(k_row.len(), k.cols(), "key row width mismatch");
        assert_eq!(v_row.len(), v.cols(), "value row width mismatch");
        k.push_row(k_row);
        v.push_row(v_row);
    }

    /// Bulk-append a prompt's key/value rows to head `head` — the prefill
    /// fill path.
    ///
    /// # Panics
    /// Panics if `k`/`v` disagree on rows or do not match `dk`/`dv` (both
    /// checked before any mutation).
    pub fn extend(&mut self, head: usize, k: &Matrix<T>, v: &Matrix<T>) {
        assert_eq!(k.rows(), v.rows(), "K/V row counts differ");
        let (ck, cv) = &mut self.heads[head];
        assert_eq!(k.cols(), ck.cols(), "key width mismatch");
        assert_eq!(v.cols(), cv.cols(), "value width mismatch");
        ck.reserve_rows(k.rows());
        cv.reserve_rows(v.rows());
        for i in 0..k.rows() {
            ck.push_row(k.row(i));
            cv.push_row(v.row(i));
        }
    }

    /// The cached keys of head `head`, `len × dk`.
    pub fn k(&self, head: usize) -> &Matrix<T> {
        &self.heads[head].0
    }

    /// The cached values of head `head`, `len × dv`.
    pub fn v(&self, head: usize) -> &Matrix<T> {
        &self.heads[head].1
    }

    /// Drop every token past the first `tokens` on every head — the
    /// rollback the engine uses when an append succeeded but the launch
    /// that followed it failed validation.
    pub fn truncate(&mut self, tokens: usize) {
        for (k, v) in &mut self.heads {
            k.truncate_rows(tokens);
            v.truncate_rows(tokens);
        }
    }

    /// Drop every cached token, keeping the configuration, head count,
    /// and allocated capacity — sequence reset in a serving loop.
    pub fn clear(&mut self) {
        self.truncate(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpa_tensor::init::qkv;

    #[test]
    fn append_and_extend_grow_all_views() {
        let mut cache: KvCache<f64> = KvCache::new(2, 4, 3);
        assert_eq!(cache.heads(), 2);
        assert_eq!((cache.dk(), cache.dv()), (4, 3));
        assert!(cache.is_empty());

        for h in 0..2 {
            cache.append(h, &[1.0, 2.0, 3.0, 4.0], &[5.0, 6.0, 7.0]);
        }
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.k(1).row(0), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(cache.v(0).row(0), &[5.0, 6.0, 7.0]);

        let (_, k, _) = qkv::<f64>(5, 4, 1);
        let (_, _, v) = qkv::<f64>(5, 3, 2);
        for h in 0..2 {
            cache.extend(h, &k, &v);
        }
        assert_eq!(cache.len(), 6);
        assert_eq!(cache.k(0).row(3), k.row(2));

        cache.clear();
        assert!(cache.is_empty());
        assert_eq!((cache.dk(), cache.dv()), (4, 3));
    }

    #[test]
    #[should_panic(expected = "at least one head")]
    fn zero_heads_rejected() {
        let _ = KvCache::<f32>::new(0, 4, 4);
    }

    #[test]
    #[should_panic(expected = "key row width mismatch")]
    fn wrong_row_width_rejected() {
        let mut cache: KvCache<f32> = KvCache::single(4, 4);
        cache.append(0, &[1.0, 2.0], &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "value row width mismatch")]
    fn wrong_value_width_rejected_before_any_push() {
        // Both widths are checked before either row lands, so a bad call
        // can never leave K and V with diverged row counts.
        let mut cache: KvCache<f32> = KvCache::single(2, 2);
        cache.append(0, &[1.0, 2.0], &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn truncate_rolls_back_appends() {
        let mut cache: KvCache<f64> = KvCache::new(2, 2, 2);
        for h in 0..2 {
            cache.append(h, &[1.0, 2.0], &[3.0, 4.0]);
            cache.append(h, &[5.0, 6.0], &[7.0, 8.0]);
        }
        cache.truncate(1);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.k(1).row(0), &[1.0, 2.0]);
        cache.truncate(9); // longer than the cache: no-op
        assert_eq!(cache.len(), 1);
    }
}
