//! Multi-head attention on top of the single-head graph kernels.
//!
//! The paper's kernels are "single-batch and single-headed … though it is
//! trivial to scale them to a multi-headed approach" (Section IV-B) and
//! lists multi-head support as the immediate next step (Section VI-A).
//! This module is that extension: head-sliced projections, one kernel run
//! per head (the mask is shared across heads, as in Longformer/BigBird),
//! concatenation, and an output projection — a full transformer attention
//! sub-layer usable by the examples.
//!
//! Since the engine redesign, the per-head runs are dispatched through the
//! batched plan executor: all heads of one forward pass flatten into a
//! **single** pool launch instead of one launch per head (outputs are
//! unchanged — per-row work is identical).

use crate::batch::{execute_batch, AttentionRequest};
use crate::cache::KvCache;
use crate::dispatch::AttentionKernel;
use crate::engine::AttentionEngine;
use crate::error::AttnError;
use crate::options::KernelOptions;
use crate::plan::AttentionPlan;
use crate::routing::{Router, Routing};
use gpa_parallel::ThreadPool;
use gpa_tensor::init::xavier_uniform;
use gpa_tensor::ops::matmul;
use gpa_tensor::{Matrix, Real};

/// Per-head slices of a packed `L × (heads·dk)` projection.
pub fn split_heads<T: Real>(packed: &Matrix<T>, heads: usize) -> Vec<Matrix<T>> {
    assert!(heads > 0, "heads must be positive");
    assert_eq!(
        packed.cols() % heads,
        0,
        "packed width {} not divisible by {heads} heads",
        packed.cols()
    );
    let dk = packed.cols() / heads;
    (0..heads)
        .map(|h| Matrix::from_fn(packed.rows(), dk, |i, j| packed.get(i, h * dk + j)))
        .collect()
}

/// Concatenate per-head outputs back into `L × (heads·dk)`.
pub fn concat_heads<T: Real>(heads: &[Matrix<T>]) -> Matrix<T> {
    assert!(!heads.is_empty(), "no heads to concatenate");
    let l = heads[0].rows();
    let dk = heads[0].cols();
    assert!(
        heads.iter().all(|h| h.shape() == (l, dk)),
        "head shapes differ"
    );
    Matrix::from_fn(l, heads.len() * dk, |i, j| heads[j / dk].get(i, j % dk))
}

/// Per-head `(Q, K, V)` projections of an input window — what
/// [`MultiHeadAttention::project_qkv`] returns (`heads` matrices each).
pub type ProjectedHeads<T> = (Vec<Matrix<T>>, Vec<Matrix<T>>, Vec<Matrix<T>>);

/// One sequence's pending decode token in a multi-sequence batched layer
/// decode ([`MultiHeadAttention::forward_decode_batched`]): the new
/// token's `1 × d_model` input plus exclusive access to that sequence's
/// per-head cache.
pub struct LayerDecodeStep<'a, T> {
    /// The new token's input row, `1 × d_model`.
    pub x_t: &'a Matrix<T>,
    /// The sequence's per-head cache (see
    /// [`MultiHeadAttention::new_cache`]).
    pub cache: &'a mut KvCache<T>,
}

/// A multi-head attention layer with learned (randomly initialized)
/// projections.
pub struct MultiHeadAttention<T> {
    wq: Matrix<T>,
    wk: Matrix<T>,
    wv: Matrix<T>,
    wo: Matrix<T>,
    heads: usize,
}

impl<T: Real> MultiHeadAttention<T> {
    /// Layer with `heads` heads of dimension `dk` over a `d_model` stream,
    /// Xavier-initialized from `seed`.
    ///
    /// # Panics
    /// Panics if `heads == 0` or `dk == 0`.
    pub fn new_random(d_model: usize, heads: usize, dk: usize, seed: u64) -> Self {
        assert!(heads > 0 && dk > 0, "heads and dk must be positive");
        let inner = heads * dk;
        MultiHeadAttention {
            wq: xavier_uniform(d_model, inner, seed),
            wk: xavier_uniform(d_model, inner, seed.wrapping_add(1)),
            wv: xavier_uniform(d_model, inner, seed.wrapping_add(2)),
            wo: xavier_uniform(inner, d_model, seed.wrapping_add(3)),
            heads,
        }
    }

    /// Number of heads.
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Head dimension.
    pub fn dk(&self) -> usize {
        self.wq.cols() / self.heads
    }

    /// Model dimension.
    pub fn d_model(&self) -> usize {
        self.wq.rows()
    }

    /// Forward pass: project, run `kernel` per head (same mask every head),
    /// concatenate, project out. Input and output are `L × d_model`.
    ///
    /// All heads run as **one** batched launch through the plan executor.
    pub fn forward(
        &self,
        pool: &ThreadPool,
        x: &Matrix<T>,
        kernel: &AttentionKernel<'_>,
        opts: &KernelOptions<'_>,
    ) -> Result<Matrix<T>, AttnError> {
        let plan = AttentionPlan::single(*kernel)?;
        self.forward_inner(pool, x, &plan, opts)
    }

    /// Forward pass through an [`AttentionEngine`] and a compiled plan —
    /// the engine-native entry point: the plan (usually shared with many
    /// other layers/requests) is compiled once, and the engine's pool and
    /// launch policy apply.
    pub fn forward_on(
        &self,
        engine: &AttentionEngine,
        plan: &AttentionPlan<'_>,
        x: &Matrix<T>,
    ) -> Result<Matrix<T>, AttnError> {
        self.forward_inner(engine.pool(), x, plan, &engine.options())
    }

    /// An empty [`KvCache`] sized for this layer (one entry per head, the
    /// layer's `dk` as both key and value dimension).
    pub fn new_cache(&self) -> KvCache<T> {
        KvCache::new(self.heads, self.dk(), self.dk())
    }

    /// As [`Self::new_cache`], created with `engine`'s
    /// [`crate::KvPrecision`] — the way a serving stack opts a layer's
    /// cache into FP16 KV storage alongside the engine flag.
    pub fn new_cache_on(&self, engine: &AttentionEngine) -> KvCache<T> {
        KvCache::with_precision(self.heads, self.dk(), self.dk(), engine.kv_precision())
    }

    /// Project an input window (`R × d_model`) into per-head `(Q, K, V)`
    /// triples — the building block callers batching *across* layers (a
    /// decoder stack) use to assemble their own attention requests; the
    /// `forward_*` methods on this type wrap the same projections.
    ///
    /// # Panics
    /// Panics when `x` is not `d_model` wide.
    pub fn project_qkv(&self, x: &Matrix<T>) -> ProjectedHeads<T> {
        assert_eq!(x.cols(), self.d_model(), "input width must be d_model");
        let q = matmul(x, &self.wq);
        let k = matmul(x, &self.wk);
        let v = matmul(x, &self.wv);
        (
            split_heads(&q, self.heads),
            split_heads(&k, self.heads),
            split_heads(&v, self.heads),
        )
    }

    /// Concatenate per-head attention outputs (`R × dk` each, one per
    /// head) and apply the output projection, yielding `R × d_model` —
    /// the inverse bookend of [`Self::project_qkv`].
    ///
    /// # Panics
    /// Panics when the slice length or shapes disagree with the layer.
    pub fn combine_heads(&self, head_outs: &[Matrix<T>]) -> Matrix<T> {
        assert_eq!(head_outs.len(), self.heads, "one output per head");
        matmul(&concat_heads(head_outs), &self.wo)
    }

    /// Chunked prefill through the KV cache: project the prompt `x`
    /// (`P × d_model`), append every head's K/V rows to `cache`, and
    /// compute the prompt's outputs in query windows of `chunk` rows —
    /// all heads × all chunks flattened into **one** launch. Returns the
    /// `P × d_model` prompt outputs (identical to [`Self::forward_on`]
    /// over the same tokens when the cache started empty).
    pub fn forward_prefill(
        &self,
        engine: &AttentionEngine,
        plan: &AttentionPlan<'_>,
        cache: &mut KvCache<T>,
        x: &Matrix<T>,
        chunk: usize,
    ) -> Result<Matrix<T>, AttnError> {
        self.check_cache(cache)?;
        if chunk == 0 {
            return Err(AttnError::BadParameter {
                what: "prefill chunk size must be positive",
            });
        }
        if x.cols() != self.d_model() {
            return Err(AttnError::StateShapeMismatch {
                expected: (x.rows(), self.d_model()),
                actual: x.shape(),
            });
        }
        let q = matmul(x, &self.wq);
        let k = matmul(x, &self.wk);
        let v = matmul(x, &self.wv);
        let qh = split_heads(&q, self.heads);
        let kh = split_heads(&k, self.heads);
        let vh = split_heads(&v, self.heads);
        let prior = cache.len();
        for h in 0..self.heads {
            cache.extend(h, &kh[h], &vh[h]);
        }
        // Routed plans: every head routes its own queries under the shared
        // spec — different projections, different groupings, one rule.
        if let Some(spec) = plan.routing_spec() {
            let routed: Result<(), AttnError> =
                (0..self.heads).try_for_each(|h| cache.extend_routing(spec, h, &qh[h]));
            if let Err(e) = routed {
                cache.truncate(prior);
                return Err(e);
            }
        }
        let prompt = x.rows();
        let chunks: Vec<(usize, usize, Matrix<T>)> = (0..self.heads)
            .flat_map(|h| {
                crate::batch::chunk_windows(&qh[h], chunk)
                    .into_iter()
                    .map(move |(a, q_chunk)| (h, a, q_chunk))
            })
            .collect();
        let result = {
            let cache = &*cache;
            let requests: Vec<AttentionRequest<'_, T>> = chunks
                .iter()
                .map(|(h, a, q_chunk)| {
                    AttentionRequest::windowed(q_chunk, cache.k(*h), cache.v(*h), prior + a)
                        .with_routing(cache.routing(*h))
                })
                .collect();
            execute_batch(engine.pool(), plan, &engine.options(), &requests)
        };
        let outs = match result {
            Ok(outs) => outs,
            Err(e) => {
                // Roll every head's append back: a failed prefill must not
                // leave phantom tokens in the cache.
                cache.truncate(prior);
                return Err(e);
            }
        };

        let dk = self.dk();
        let mut packed = Matrix::zeros(prompt, self.heads * dk);
        for ((h, a, _), out) in chunks.iter().zip(outs.iter()) {
            for i in 0..out.rows() {
                packed.row_mut(a + i)[h * dk..(h + 1) * dk].copy_from_slice(out.row(i));
            }
        }
        Ok(matmul(&packed, &self.wo))
    }

    /// One KV-cached decode step: project the new token `x_t`
    /// (`1 × d_model`), append each head's K/V row to `cache`, run every
    /// head's single-row decode window as **one** batched launch, and
    /// project the concatenated head outputs back to `1 × d_model`.
    pub fn forward_decode(
        &self,
        engine: &AttentionEngine,
        plan: &AttentionPlan<'_>,
        cache: &mut KvCache<T>,
        x_t: &Matrix<T>,
    ) -> Result<Matrix<T>, AttnError> {
        self.check_cache(cache)?;
        if !plan.is_composable() {
            return Err(AttnError::BadParameter {
                what: "dense baselines have no KV-cached decode form",
            });
        }
        if x_t.rows() != 1 || x_t.cols() != self.d_model() {
            return Err(AttnError::StateShapeMismatch {
                expected: (1, self.d_model()),
                actual: x_t.shape(),
            });
        }
        let q = matmul(x_t, &self.wq);
        let k = matmul(x_t, &self.wk);
        let v = matmul(x_t, &self.wv);
        let qh = split_heads(&q, self.heads);
        let kh = split_heads(&k, self.heads);
        let vh = split_heads(&v, self.heads);
        let prior = cache.len();
        for h in 0..self.heads {
            cache.append(h, kh[h].row(0), vh[h].row(0));
        }
        if let Some(spec) = plan.routing_spec() {
            let routed: Result<(), AttnError> =
                (0..self.heads).try_for_each(|h| cache.extend_routing(spec, h, &qh[h]));
            if let Err(e) = routed {
                cache.truncate(prior);
                return Err(e);
            }
        }
        let result = {
            let cache = &*cache;
            let requests: Vec<AttentionRequest<'_, T>> = (0..self.heads)
                .map(|h| {
                    AttentionRequest::decode(&qh[h], cache.k(h), cache.v(h))
                        .with_routing(cache.routing(h))
                })
                .collect();
            execute_batch(engine.pool(), plan, &engine.options(), &requests)
        };
        match result {
            Ok(outs) => {
                let packed = concat_heads(&outs);
                Ok(matmul(&packed, &self.wo))
            }
            Err(e) => {
                // Roll every head's append back — no phantom token on error.
                cache.truncate(prior);
                Err(e)
            }
        }
    }

    /// Batched decode: advance many sequences through this layer by one
    /// token each — `sequences × heads` single-row decode requests
    /// flattened into **one** launch (the continuous-batching shape, one
    /// level up from [`crate::AttentionEngine::decode_steps_batched`]).
    ///
    /// Per-row work is identical to per-sequence [`Self::forward_decode`]
    /// calls, so each returned `1 × d_model` output is bitwise identical
    /// to them. Every step is validated before any cache is mutated, and
    /// a failed launch rolls every sequence's appends back.
    pub fn forward_decode_batched(
        &self,
        engine: &AttentionEngine,
        plan: &AttentionPlan<'_>,
        steps: &mut [LayerDecodeStep<'_, T>],
    ) -> Result<Vec<Matrix<T>>, AttnError> {
        if !plan.is_composable() {
            return Err(AttnError::BadParameter {
                what: "dense baselines have no KV-cached decode form",
            });
        }
        // Validate every step before mutating any cache.
        for step in steps.iter() {
            self.check_cache(step.cache)?;
            if step.x_t.rows() != 1 || step.x_t.cols() != self.d_model() {
                return Err(AttnError::StateShapeMismatch {
                    expected: (1, self.d_model()),
                    actual: step.x_t.shape(),
                });
            }
        }
        // Project every token, then append all heads of all sequences.
        let projected: Vec<ProjectedHeads<T>> = steps
            .iter()
            .map(|step| {
                let q = matmul(step.x_t, &self.wq);
                let k = matmul(step.x_t, &self.wk);
                let v = matmul(step.x_t, &self.wv);
                (
                    split_heads(&q, self.heads),
                    split_heads(&k, self.heads),
                    split_heads(&v, self.heads),
                )
            })
            .collect();
        let priors: Vec<usize> = steps.iter().map(|s| s.cache.len()).collect();
        for (step, (_, kh, vh)) in steps.iter_mut().zip(&projected) {
            for h in 0..self.heads {
                step.cache.append(h, kh[h].row(0), vh[h].row(0));
            }
        }
        if let Some(spec) = plan.routing_spec() {
            let routed: Result<(), AttnError> =
                steps.iter_mut().zip(&projected).try_for_each(|(step, p)| {
                    (0..self.heads).try_for_each(|h| step.cache.extend_routing(spec, h, &p.0[h]))
                });
            if let Err(e) = routed {
                for (step, &prior) in steps.iter_mut().zip(&priors) {
                    step.cache.truncate(prior);
                }
                return Err(e);
            }
        }
        let result = {
            let requests: Vec<AttentionRequest<'_, T>> = steps
                .iter()
                .zip(&projected)
                .flat_map(|(step, (qh, _, _))| {
                    (0..self.heads).map(move |h| {
                        AttentionRequest::decode(&qh[h], step.cache.k(h), step.cache.v(h))
                            .with_routing(step.cache.routing(h))
                    })
                })
                .collect();
            execute_batch(engine.pool(), plan, &engine.options(), &requests)
        };
        match result {
            Ok(outs) => Ok(outs
                .chunks(self.heads)
                .map(|head_outs| matmul(&concat_heads(head_outs), &self.wo))
                .collect()),
            Err(e) => {
                // Roll every sequence's appends back — no phantom tokens.
                for (step, &prior) in steps.iter_mut().zip(&priors) {
                    step.cache.truncate(prior);
                }
                Err(e)
            }
        }
    }

    fn check_cache(&self, cache: &KvCache<T>) -> Result<(), AttnError> {
        if cache.heads() != self.heads || cache.dk() != self.dk() || cache.dv() != self.dk() {
            return Err(AttnError::BadParameter {
                what: "cache does not match the layer's heads/dk (use new_cache)",
            });
        }
        Ok(())
    }

    fn forward_inner(
        &self,
        pool: &ThreadPool,
        x: &Matrix<T>,
        plan: &AttentionPlan<'_>,
        opts: &KernelOptions<'_>,
    ) -> Result<Matrix<T>, AttnError> {
        if x.cols() != self.d_model() {
            return Err(AttnError::StateShapeMismatch {
                expected: (x.rows(), self.d_model()),
                actual: x.shape(),
            });
        }
        let q = matmul(x, &self.wq);
        let k = matmul(x, &self.wk);
        let v = matmul(x, &self.wv);
        let qh = split_heads(&q, self.heads);
        let kh = split_heads(&k, self.heads);
        let vh = split_heads(&v, self.heads);

        // Cacheless forward: route each head's queries on the fly.
        let routings: Option<Vec<Routing>> = plan.routing_spec().map(|spec| {
            let router = Router::new(spec);
            qh.iter().map(|q| router.route(q)).collect()
        });
        let requests: Vec<AttentionRequest<'_, T>> = (0..self.heads)
            .map(|h| {
                AttentionRequest::new(&qh[h], &kh[h], &vh[h])
                    .with_routing(routings.as_ref().map(|r| &r[h]))
            })
            .collect();
        let outs = execute_batch(pool, plan, opts, &requests)?;
        let packed = concat_heads(&outs);
        Ok(matmul(&packed, &self.wo))
    }
}

/// Run one kernel independently per pre-projected head triple — the
/// "trivial extension" form for callers that manage their own projections.
/// The heads execute as one batched launch.
pub fn multi_head_attention<T: Real>(
    pool: &ThreadPool,
    kernel: &AttentionKernel<'_>,
    qs: &[Matrix<T>],
    ks: &[Matrix<T>],
    vs: &[Matrix<T>],
    opts: &KernelOptions<'_>,
) -> Result<Vec<Matrix<T>>, AttnError> {
    assert_eq!(qs.len(), ks.len());
    assert_eq!(qs.len(), vs.len());
    let plan = AttentionPlan::single(*kernel)?;
    let requests: Vec<AttentionRequest<'_, T>> = qs
        .iter()
        .zip(ks.iter())
        .zip(vs.iter())
        .map(|((q, k), v)| AttentionRequest::new(q, k, v))
        .collect();
    execute_batch(pool, &plan, opts, &requests)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpa_masks::{LocalWindow, MaskPattern};
    use gpa_tensor::init::{gaussian_matrix, qkv};
    use gpa_tensor::paper_allclose;

    fn pool() -> ThreadPool {
        ThreadPool::new(4)
    }

    #[test]
    fn split_concat_roundtrip() {
        let m: Matrix<f64> = Matrix::from_fn(6, 12, |i, j| (i * 12 + j) as f64);
        let heads = split_heads(&m, 3);
        assert_eq!(heads.len(), 3);
        assert_eq!(heads[0].shape(), (6, 4));
        assert_eq!(heads[2].get(1, 0), m.get(1, 8));
        let back = concat_heads(&heads);
        assert_eq!(back, m);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn split_requires_divisible_width() {
        let m: Matrix<f32> = Matrix::zeros(2, 10);
        let _ = split_heads(&m, 3);
    }

    #[test]
    fn multi_head_equals_per_head_single_calls() {
        let l = 20;
        let heads = 4;
        let per: Vec<(Matrix<f64>, Matrix<f64>, Matrix<f64>)> =
            (0..heads).map(|h| qkv(l, 8, 100 + h as u64)).collect();
        let qs: Vec<_> = per.iter().map(|t| t.0.clone()).collect();
        let ks: Vec<_> = per.iter().map(|t| t.1.clone()).collect();
        let vs: Vec<_> = per.iter().map(|t| t.2.clone()).collect();
        let p = pool();
        let kernel = AttentionKernel::Local { n: 2 };
        let multi =
            multi_head_attention(&p, &kernel, &qs, &ks, &vs, &KernelOptions::new()).unwrap();
        for h in 0..heads {
            let single = kernel
                .run(&p, &qs[h], &ks[h], &vs[h], &KernelOptions::new())
                .unwrap();
            assert!(paper_allclose(&multi[h], &single), "head {h}");
        }
    }

    #[test]
    fn layer_forward_shapes_and_determinism() {
        let l = 16;
        let layer: MultiHeadAttention<f64> = MultiHeadAttention::new_random(32, 4, 8, 9);
        assert_eq!(layer.heads(), 4);
        assert_eq!(layer.dk(), 8);
        assert_eq!(layer.d_model(), 32);
        let x = gaussian_matrix(l, 32, 1.0, 77);
        let p = pool();
        let a = layer
            .forward(
                &p,
                &x,
                &AttentionKernel::Local { n: 3 },
                &KernelOptions::new(),
            )
            .unwrap();
        assert_eq!(a.shape(), (l, 32));
        let b = layer
            .forward(
                &p,
                &x,
                &AttentionKernel::Local { n: 3 },
                &KernelOptions::new(),
            )
            .unwrap();
        assert_eq!(a, b, "forward must be deterministic");
    }

    #[test]
    fn layer_kernel_choice_changes_output_but_not_shape() {
        let l = 12;
        let layer: MultiHeadAttention<f64> = MultiHeadAttention::new_random(16, 2, 4, 3);
        let x = gaussian_matrix(l, 16, 1.0, 5);
        let p = pool();
        let mask = LocalWindow::new(l, 1).to_csr();
        let local = layer
            .forward(
                &p,
                &x,
                &AttentionKernel::Local { n: 1 },
                &KernelOptions::new(),
            )
            .unwrap();
        let csr = layer
            .forward(&p, &x, &AttentionKernel::Csr(&mask), &KernelOptions::new())
            .unwrap();
        // Same mask, different kernel → same numbers.
        assert!(paper_allclose(&local, &csr));
        let flash = layer
            .forward(&p, &x, &AttentionKernel::Flash, &KernelOptions::new())
            .unwrap();
        // Different (dense) mask → different numbers, same shape.
        assert_eq!(flash.shape(), (l, 16));
        assert!(flash.max_abs_diff(&local) > 1e-9);
    }

    #[test]
    fn forward_on_engine_matches_pool_forward() {
        let l = 16;
        let layer: MultiHeadAttention<f64> = MultiHeadAttention::new_random(32, 4, 8, 9);
        let x = gaussian_matrix(l, 32, 1.0, 78);
        let engine = crate::AttentionEngine::with_threads(4);
        let plan = engine.compile(&[AttentionKernel::Local { n: 3 }]).unwrap();
        let via_engine = layer.forward_on(&engine, &plan, &x).unwrap();
        let via_pool = layer
            .forward(
                engine.pool(),
                &x,
                &AttentionKernel::Local { n: 3 },
                &engine.options(),
            )
            .unwrap();
        assert_eq!(via_engine, via_pool);
    }

    #[test]
    fn project_and_combine_reassemble_the_forward_bitwise() {
        let l = 10;
        let layer: MultiHeadAttention<f64> = MultiHeadAttention::new_random(24, 3, 8, 17);
        let x = gaussian_matrix(l, 24, 1.0, 55);
        let engine = crate::AttentionEngine::with_threads(2);
        let plan = engine.compile(&[AttentionKernel::Local { n: 2 }]).unwrap();
        let (qh, kh, vh) = layer.project_qkv(&x);
        assert_eq!((qh.len(), kh.len(), vh.len()), (3, 3, 3));
        assert_eq!(qh[0].shape(), (l, 8));
        let requests: Vec<AttentionRequest<'_, f64>> = (0..3)
            .map(|h| AttentionRequest::new(&qh[h], &kh[h], &vh[h]))
            .collect();
        let outs = engine.run_batch(&plan, &requests).unwrap();
        let combined = layer.combine_heads(&outs);
        let forward = layer.forward_on(&engine, &plan, &x).unwrap();
        assert_eq!(combined, forward, "hand-assembled pass must be bitwise");
    }

    #[test]
    fn prefill_then_decode_matches_full_forwards_bitwise() {
        let l = 18;
        let prompt = 11;
        let layer: MultiHeadAttention<f64> = MultiHeadAttention::new_random(24, 3, 8, 21);
        let x = gaussian_matrix(l, 24, 1.0, 90);
        let engine = crate::AttentionEngine::with_threads(3);
        let plan = engine.compile(&[AttentionKernel::Local { n: 2 }]).unwrap();

        // Chunked prefill of the prompt == the full forward over it.
        let mut cache = layer.new_cache();
        let x_prompt = x.rows_slice(0, prompt);
        let prefill = layer
            .forward_prefill(&engine, &plan, &mut cache, &x_prompt, 4)
            .unwrap();
        let full_prompt = layer.forward_on(&engine, &plan, &x_prompt).unwrap();
        assert_eq!(prefill, full_prompt);
        assert_eq!(cache.len(), prompt);

        // Every decode step == the last row of the forward over its prefix.
        for t in prompt..l {
            let out = layer
                .forward_decode(&engine, &plan, &mut cache, &x.rows_slice(t, t + 1))
                .unwrap();
            let prefix = layer
                .forward_on(&engine, &plan, &x.rows_slice(0, t + 1))
                .unwrap();
            assert_eq!(out.row(0), prefix.row(t), "step {t}");
        }
        assert_eq!(cache.len(), l);
    }

    #[test]
    fn batched_layer_decode_matches_per_sequence_decode_bitwise() {
        let layer: MultiHeadAttention<f64> = MultiHeadAttention::new_random(24, 3, 8, 21);
        let engine = crate::AttentionEngine::with_threads(3);
        let plan = engine.compile(&[AttentionKernel::Local { n: 2 }]).unwrap();
        // Three sequences at ragged context lengths, prefilled via the
        // single-sequence path.
        let lens = [4usize, 9, 1];
        let xs: Vec<Matrix<f64>> = lens
            .iter()
            .enumerate()
            .map(|(i, &l)| gaussian_matrix(l + 1, 24, 1.0, 60 + i as u64))
            .collect();
        let mut batched_caches: Vec<KvCache<f64>> = Vec::new();
        for (x, &l) in xs.iter().zip(&lens) {
            let mut cache = layer.new_cache();
            layer
                .forward_prefill(&engine, &plan, &mut cache, &x.rows_slice(0, l), 4)
                .unwrap();
            batched_caches.push(cache);
        }
        let mut independent_caches = batched_caches.clone();
        let toks: Vec<Matrix<f64>> = xs
            .iter()
            .zip(&lens)
            .map(|(x, &l)| x.rows_slice(l, l + 1))
            .collect();
        let mut steps: Vec<LayerDecodeStep<'_, f64>> = batched_caches
            .iter_mut()
            .zip(&toks)
            .map(|(cache, x_t)| LayerDecodeStep { x_t, cache })
            .collect();
        let batched = layer
            .forward_decode_batched(&engine, &plan, &mut steps)
            .unwrap();
        assert_eq!(batched.len(), 3);
        for (i, (x_t, cache)) in toks.iter().zip(independent_caches.iter_mut()).enumerate() {
            let single = layer.forward_decode(&engine, &plan, cache, x_t).unwrap();
            assert_eq!(batched[i], single, "sequence {i}");
        }
        // A failed batched launch rolls every sequence back.
        let globals = gpa_masks::GlobalSet::new(99, vec![0]);
        let pinned = engine
            .compile(&[AttentionKernel::Global {
                globals: &globals,
                n_sub: 0,
            }])
            .unwrap();
        let before: Vec<usize> = batched_caches.iter().map(KvCache::len).collect();
        let mut steps: Vec<LayerDecodeStep<'_, f64>> = batched_caches
            .iter_mut()
            .zip(&toks)
            .map(|(cache, x_t)| LayerDecodeStep { x_t, cache })
            .collect();
        assert!(layer
            .forward_decode_batched(&engine, &pinned, &mut steps)
            .is_err());
        for (i, (cache, &prior)) in batched_caches.iter().zip(&before).enumerate() {
            assert_eq!(cache.len(), prior, "sequence {i} must be rolled back");
        }
    }

    #[test]
    fn decode_rejects_mismatched_cache_and_inputs() {
        let layer: MultiHeadAttention<f64> = MultiHeadAttention::new_random(16, 2, 4, 3);
        let engine = crate::AttentionEngine::with_threads(1);
        let plan = engine.compile(&[AttentionKernel::Local { n: 1 }]).unwrap();
        let mut wrong_cache: KvCache<f64> = KvCache::new(3, 4, 4);
        let x_t = gaussian_matrix(1, 16, 1.0, 91);
        assert!(layer
            .forward_decode(&engine, &plan, &mut wrong_cache, &x_t)
            .is_err());
        let mut cache = layer.new_cache();
        let x_two = gaussian_matrix(2, 16, 1.0, 92);
        assert!(layer
            .forward_decode(&engine, &plan, &mut cache, &x_two)
            .is_err());
        assert!(layer
            .forward_prefill(&engine, &plan, &mut cache, &x_two, 0)
            .is_err());
        assert!(cache.is_empty());
        // A plan that fails per-request validation rolls every head back.
        let globals = gpa_masks::GlobalSet::new(99, vec![0]);
        let pinned = engine
            .compile(&[AttentionKernel::Global {
                globals: &globals,
                n_sub: 0,
            }])
            .unwrap();
        assert!(layer
            .forward_prefill(&engine, &pinned, &mut cache, &x_two, 1)
            .is_err());
        assert!(cache.is_empty(), "failed prefill must roll back");
        let x_t = gaussian_matrix(1, 16, 1.0, 93);
        assert!(layer
            .forward_decode(&engine, &pinned, &mut cache, &x_t)
            .is_err());
        assert!(cache.is_empty(), "failed decode must roll back");
    }

    #[test]
    fn wrong_input_width_rejected() {
        let layer: MultiHeadAttention<f64> = MultiHeadAttention::new_random(16, 2, 4, 3);
        let x: Matrix<f64> = Matrix::zeros(4, 15);
        assert!(matches!(
            layer.forward(&pool(), &x, &AttentionKernel::Flash, &KernelOptions::new()),
            Err(AttnError::StateShapeMismatch { .. })
        ));
    }
}
