//! Communication-volume model for sequence-parallel sparse attention.
//!
//! Under sequence parallelism each device owns a contiguous token block —
//! its slice of Q, K, and V. To compute attention for its rows, a device
//! must *pull* the K/V rows of every remote neighbor its mask references
//! (the paper's Algorithm 1 `Pull(Kj)`/`Pull(Vj)` crossing the network
//! instead of HBM). Dense attention all-gathers everything (`LongNet …
//! requires all-gather of K, Q matrices`, Section III); a sparse mask only
//! needs the *distinct* remote neighbors, which is where the graph view
//! pays off again.

use crate::partition::RowPartition;
use gpa_sparse::CsrMask;

/// Per-device work and traffic for one attention pass.
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceCost {
    /// Mask edges the device computes (dot products).
    pub local_edges: u64,
    /// Distinct remote K/V rows it must receive.
    pub remote_rows: u64,
    /// Bytes received: `remote_rows × 2 × dk × elem_bytes` (K and V).
    pub recv_bytes: u64,
}

/// Whole-cluster communication statistics.
#[derive(Clone, Debug)]
pub struct CommStats {
    /// Per-device costs, in partition order.
    pub devices: Vec<DeviceCost>,
}

impl CommStats {
    /// Total bytes on the wire.
    pub fn total_bytes(&self) -> u64 {
        self.devices.iter().map(|d| d.recv_bytes).sum()
    }

    /// Total computed edges (equals the mask's nnz).
    pub fn total_edges(&self) -> u64 {
        self.devices.iter().map(|d| d.local_edges).sum()
    }

    /// The all-gather baseline: every device receives every remote K/V row
    /// regardless of the mask (dense sequence parallelism).
    pub fn all_gather_bytes(partition: &RowPartition, dk: usize, elem_bytes: usize) -> u64 {
        let l = partition.context_len() as u64;
        partition
            .ranges()
            .iter()
            .map(|r| (l - r.len() as u64) * 2 * dk as u64 * elem_bytes as u64)
            .sum()
    }

    /// Simple makespan model: per device,
    /// `edges·2·dk / flops + recv_bytes / bandwidth`, maximized over
    /// devices (compute and transfer not overlapped — a conservative
    /// bound).
    pub fn makespan(&self, dk: usize, flops_per_sec: f64, bytes_per_sec: f64) -> f64 {
        self.devices
            .iter()
            .map(|d| {
                let compute = d.local_edges as f64 * 2.0 * dk as f64 / flops_per_sec;
                let transfer = d.recv_bytes as f64 / bytes_per_sec;
                compute + transfer
            })
            .fold(0.0, f64::max)
    }
}

/// Analyze a mask under a partition: per-device edges, distinct remote
/// neighbors, and received bytes for `dk`-wide K/V rows of `elem_bytes`
/// elements.
pub fn analyze(
    mask: &CsrMask,
    partition: &RowPartition,
    dk: usize,
    elem_bytes: usize,
) -> CommStats {
    let mut devices = Vec::with_capacity(partition.devices());
    for range in partition.ranges() {
        let mut local_edges = 0u64;
        // Distinct remote columns via a sorted merge over the block's rows
        // (rows are sorted; collect + dedup keeps this simple and exact).
        let mut remote: Vec<u32> = Vec::new();
        for row in range.clone() {
            for &c in mask.row(row) {
                local_edges += 1;
                let cu = c as usize;
                if !range.contains(&cu) {
                    remote.push(c);
                }
            }
        }
        remote.sort_unstable();
        remote.dedup();
        let remote_rows = remote.len() as u64;
        devices.push(DeviceCost {
            local_edges,
            remote_rows,
            recv_bytes: remote_rows * 2 * dk as u64 * elem_bytes as u64,
        });
    }
    CommStats { devices }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpa_masks::{GlobalMask, GlobalSet, LocalWindow, MaskPattern, Union};

    #[test]
    fn local_mask_only_talks_to_halo() {
        // Window ±2 with blocks of 8: each interior device pulls exactly 2
        // halo rows per side.
        let l = 32;
        let mask = LocalWindow::new(l, 2).to_csr();
        let part = RowPartition::uniform(l, 4);
        let stats = analyze(&mask, &part, 16, 4);
        assert_eq!(stats.total_edges(), mask.nnz() as u64);
        // Interior devices: 2 rows from each side.
        assert_eq!(stats.devices[1].remote_rows, 4);
        assert_eq!(stats.devices[2].remote_rows, 4);
        // Edge devices: one-sided halo.
        assert_eq!(stats.devices[0].remote_rows, 2);
        assert_eq!(stats.devices[3].remote_rows, 2);
        // recv_bytes = remote × 2 × dk × bytes.
        assert_eq!(stats.devices[0].recv_bytes, 2 * 2 * 16 * 4);
    }

    #[test]
    fn sparse_traffic_beats_all_gather() {
        let l = 128;
        let mask = LocalWindow::new(l, 3).to_csr();
        let part = RowPartition::uniform(l, 8);
        let stats = analyze(&mask, &part, 64, 2);
        let dense = CommStats::all_gather_bytes(&part, 64, 2);
        assert!(
            stats.total_bytes() * 10 < dense,
            "sparse {} vs all-gather {dense}",
            stats.total_bytes()
        );
    }

    #[test]
    fn global_tokens_are_pulled_by_everyone() {
        let l = 64;
        let globals = GlobalSet::new(l, vec![0]);
        let mask = Union::new(LocalWindow::new(l, 1), GlobalMask::new(globals)).to_csr();
        let part = RowPartition::uniform(l, 4);
        let stats = analyze(&mask, &part, 8, 4);
        // Every non-owner device must pull row 0 (the global token).
        for (d, range) in part.ranges().iter().enumerate() {
            if !range.contains(&0) {
                assert!(stats.devices[d].remote_rows >= 1, "device {d}");
            }
        }
    }

    #[test]
    fn makespan_dominated_by_heaviest_device() {
        let l = 40;
        let mask = LocalWindow::new(l, 2).to_csr();
        let part = RowPartition::uniform(l, 4);
        let stats = analyze(&mask, &part, 16, 4);
        let ms = stats.makespan(16, 1e9, 1e8);
        let per_device: Vec<f64> = stats
            .devices
            .iter()
            .map(|d| d.local_edges as f64 * 2.0 * 16.0 / 1e9 + d.recv_bytes as f64 / 1e8)
            .collect();
        let max = per_device.iter().cloned().fold(0.0, f64::max);
        assert!((ms - max).abs() < 1e-15);
    }
}
