//! Contiguous row partitioning with load balance — the "graph partitioning
//! techniques to load balance work across the nodes" of Section VI-A.
//!
//! Sequence parallelism assigns each device a contiguous block of tokens.
//! For uniform masks an equal split is balanced, but for masks with skewed
//! row degrees (global tokens!) the device holding the dense rows becomes
//! the straggler. [`RowPartition::degree_balanced`] solves the classic
//! chain-partitioning problem — split `0..L` into `p` contiguous ranges
//! minimizing the maximum per-range edge count — by binary search over the
//! bottleneck capacity with a greedy feasibility sweep.

use gpa_sparse::CsrMask;
use std::ops::Range;

/// A partition of `0..l` into contiguous per-device row ranges.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RowPartition {
    l: usize,
    ranges: Vec<Range<usize>>,
}

impl RowPartition {
    /// Equal-sized contiguous split (the sequence-parallel default).
    pub fn uniform(l: usize, devices: usize) -> RowPartition {
        let devices = devices.max(1);
        let per = l.div_ceil(devices.min(l.max(1)));
        let mut ranges = Vec::new();
        let mut start = 0;
        while start < l {
            let end = (start + per).min(l);
            ranges.push(start..end);
            start = end;
        }
        if ranges.is_empty() {
            ranges.push(0..0);
        }
        RowPartition { l, ranges }
    }

    /// Degree-balanced contiguous split: minimizes the maximum per-device
    /// edge count over all ways to cut `0..l` into at most `devices`
    /// contiguous ranges.
    pub fn degree_balanced(mask: &CsrMask, devices: usize) -> RowPartition {
        let l = mask.rows();
        let devices = devices.max(1);
        if l == 0 {
            // One empty device range (not a collected 0..0 sequence).
            #[allow(clippy::single_range_in_vec_init)]
            return RowPartition {
                l,
                ranges: vec![0..0],
            };
        }
        let degrees: Vec<u64> = (0..l).map(|r| mask.degree(r) as u64).collect();
        let total: u64 = degrees.iter().sum();
        let max_single = degrees.iter().copied().max().unwrap_or(0);

        // Binary search the bottleneck capacity.
        let (mut lo, mut hi) = (max_single, total.max(max_single));
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if chunks_needed(&degrees, mid) <= devices {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        let capacity = lo;

        // Greedy sweep materializes the cuts.
        let mut ranges = Vec::with_capacity(devices);
        let mut start = 0usize;
        let mut acc = 0u64;
        for (i, &d) in degrees.iter().enumerate() {
            if acc + d > capacity && i > start {
                ranges.push(start..i);
                start = i;
                acc = 0;
            }
            acc += d;
        }
        ranges.push(start..l);
        RowPartition { l, ranges }
    }

    /// Number of devices (ranges).
    pub fn devices(&self) -> usize {
        self.ranges.len()
    }

    /// Context length covered.
    pub fn context_len(&self) -> usize {
        self.l
    }

    /// The per-device row ranges.
    pub fn ranges(&self) -> &[Range<usize>] {
        &self.ranges
    }

    /// Which device owns row `i`.
    pub fn owner(&self, i: usize) -> usize {
        debug_assert!(i < self.l);
        self.ranges
            .iter()
            .position(|r| r.contains(&i))
            .expect("partition covers 0..l")
    }

    /// Per-device edge counts under a mask.
    pub fn edge_loads(&self, mask: &CsrMask) -> Vec<u64> {
        self.ranges
            .iter()
            .map(|r| r.clone().map(|row| mask.degree(row) as u64).sum())
            .collect()
    }

    /// Max-over-mean edge load: 1.0 = perfectly balanced.
    pub fn imbalance(&self, mask: &CsrMask) -> f64 {
        let loads = self.edge_loads(mask);
        let max = *loads.iter().max().unwrap_or(&0) as f64;
        let mean = loads.iter().sum::<u64>() as f64 / loads.len().max(1) as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

/// Greedy count of contiguous chunks needed so no chunk exceeds `capacity`.
fn chunks_needed(degrees: &[u64], capacity: u64) -> usize {
    let mut chunks = 1usize;
    let mut acc = 0u64;
    for &d in degrees {
        if acc + d > capacity && acc > 0 {
            chunks += 1;
            acc = 0;
        }
        acc += d;
        if d > capacity {
            // Unsplittable row beyond capacity: caller's binary search
            // starts at max degree, so this cannot happen.
            unreachable!("capacity below max row degree");
        }
    }
    chunks
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpa_sparse::CooMask;

    fn mask_from(entries: Vec<(usize, usize)>, n: usize) -> CsrMask {
        CsrMask::from_coo(&CooMask::from_entries(n, n, entries).unwrap())
    }

    #[test]
    fn uniform_covers_everything() {
        for (l, p) in [(10usize, 3usize), (7, 7), (5, 10), (100, 4)] {
            let part = RowPartition::uniform(l, p);
            let covered: usize = part.ranges().iter().map(|r| r.len()).sum();
            assert_eq!(covered, l, "l={l} p={p}");
            // Contiguous and ordered.
            let mut next = 0;
            for r in part.ranges() {
                assert_eq!(r.start, next);
                next = r.end;
            }
            assert!(part.devices() <= p.max(1));
        }
    }

    #[test]
    fn owner_is_consistent() {
        let part = RowPartition::uniform(20, 3);
        for i in 0..20 {
            let d = part.owner(i);
            assert!(part.ranges()[d].contains(&i));
        }
    }

    #[test]
    fn degree_balanced_beats_uniform_on_skewed_masks() {
        // Global-token shape: rows 0..3 dense, the rest nearly empty — the
        // exact pathology sequence parallelism hits with global attention.
        let n = 64;
        let mut entries = Vec::new();
        for g in 0..4 {
            for j in 0..n {
                entries.push((g, j));
            }
        }
        for i in 4..n {
            entries.push((i, i));
        }
        let mask = mask_from(entries, n);

        let uniform = RowPartition::uniform(n, 4);
        let balanced = RowPartition::degree_balanced(&mask, 4);
        assert!(
            balanced.imbalance(&mask) < uniform.imbalance(&mask),
            "balanced {} vs uniform {}",
            balanced.imbalance(&mask),
            uniform.imbalance(&mask)
        );
        // Still a complete contiguous cover.
        let covered: usize = balanced.ranges().iter().map(|r| r.len()).sum();
        assert_eq!(covered, n);
        assert!(balanced.devices() <= 4);
    }

    #[test]
    fn balanced_is_optimal_on_uniform_degrees() {
        // With equal degrees the chain-optimal partition is the even split.
        let n = 24;
        let entries: Vec<(usize, usize)> =
            (0..n).flat_map(|i| [(i, i), (i, (i + 1) % n)]).collect();
        let mask = mask_from(entries, n);
        let part = RowPartition::degree_balanced(&mask, 4);
        let loads = part.edge_loads(&mask);
        assert_eq!(loads.iter().sum::<u64>(), mask.nnz() as u64);
        assert!(
            part.imbalance(&mask) < 1.2,
            "imbalance {}",
            part.imbalance(&mask)
        );
    }

    #[test]
    fn single_device_and_empty() {
        let mask = mask_from(vec![(0, 0)], 4);
        let part = RowPartition::degree_balanced(&mask, 1);
        assert_eq!(part.devices(), 1);
        assert_eq!(part.ranges()[0], 0..4);
        let empty = RowPartition::degree_balanced(&CsrMask::empty(0, 0), 3);
        assert_eq!(empty.devices(), 1);
    }
}
