//! Executed distributed simulation: the two decompositions of Algorithm 1,
//! run locally with one simulated device at a time and verified exact.
//!
//! - **Row decomposition** (sequence parallelism over queries): each device
//!   computes the attention rows it owns. Rows are independent, so results
//!   concatenate — this is the easy direction the paper's kernels already
//!   parallelize within a node.
//! - **KV-shard decomposition** (ring-attention style): each device holds a
//!   *column* shard of K/V; every device computes a partial
//!   `AttentionState` for **all** rows restricted to its shard's columns,
//!   and the per-row `(m, l, O)` states are then merged across devices with
//!   the online-softmax merge rule. Exactness of this merge is the
//!   correctness core of any distributed version of the paper's kernels.
//!
//! Both executors run on an [`AttentionEngine`]: each simulated device's
//! work is compiled into an [`AttentionPlan`] (its row slice or column
//! shard of the mask) and dispatched through the engine, instead of the
//! hand-rolled per-device kernel loops of the pre-engine API.

use crate::partition::RowPartition;
use gpa_core::{
    AttentionEngine, AttentionKernel, AttentionPlan, AttentionRequest, AttentionState, KvCache,
};
use gpa_sparse::{CooMask, CsrMask};
use gpa_tensor::{merge_normalized, Matrix, OnlineSoftmaxState, Real};

/// Row-decomposed execution: each device's row slice compiles to a
/// rectangular-CSR plan (its rows × all columns) executed on the engine;
/// outputs are stitched back together.
pub fn row_distributed_attention<T: Real>(
    engine: &AttentionEngine,
    mask: &CsrMask,
    q: &Matrix<T>,
    k: &Matrix<T>,
    v: &Matrix<T>,
    partition: &RowPartition,
) -> Matrix<T> {
    assert_eq!(
        partition.context_len(),
        q.rows(),
        "partition/context mismatch"
    );
    let mut out = Matrix::zeros(q.rows(), v.cols());
    for range in partition.ranges() {
        if range.is_empty() {
            continue;
        }
        // Device-local mask: only this device's rows (renumbered to 0..len).
        let entries: Vec<(usize, usize)> = range
            .clone()
            .flat_map(|row| {
                mask.row(row)
                    .iter()
                    .map(move |&c| (row - range.start, c as usize))
            })
            .collect();
        let local_mask = CsrMask::from_coo(
            &CooMask::from_entries(range.len(), mask.cols(), entries)
                .expect("rows of a valid mask remain valid"),
        );
        // Device-local Q slice; K/V stay whole (pulled remotely on demand —
        // the traffic `comm::analyze` accounts for). The plan's mask is
        // rectangular (local rows × all columns), which the plan geometry
        // supports directly.
        let q_local = q.rows_slice(range.start, range.end);
        let plan = AttentionPlan::single(AttentionKernel::Csr(&local_mask))
            .expect("a row slice of a valid mask compiles");
        let device_out = engine
            .run(&plan, &q_local, k, v)
            .expect("validated device slice executes");
        for (i, row) in range.clone().enumerate() {
            out.row_mut(row).copy_from_slice(device_out.row(i));
        }
    }
    out
}

/// Row-decomposed execution of an *implicit* kernel via query windows: each
/// device's row slice becomes a windowed request of the same compiled plan
/// (its rows at their absolute offset, against the full K/V), so **no mask
/// is materialized anywhere** — the geometry refactor's distributed
/// dividend. All device slices execute as one batched launch, which is
/// also the single-launch shape a real multi-process version would issue
/// per device.
///
/// # Panics
/// Panics if the kernel is a dense baseline or pins a key/value length
/// other than `q.rows()`.
pub fn row_distributed_windowed_attention<T: Real>(
    engine: &AttentionEngine,
    kernel: &AttentionKernel<'_>,
    q: &Matrix<T>,
    k: &Matrix<T>,
    v: &Matrix<T>,
    partition: &RowPartition,
) -> Matrix<T> {
    assert_eq!(
        partition.context_len(),
        q.rows(),
        "partition/context mismatch"
    );
    let plan = AttentionPlan::single(*kernel).expect("distributed kernel compiles");
    let q_slices: Vec<(usize, Matrix<T>)> = partition
        .ranges()
        .iter()
        .filter(|range| !range.is_empty())
        .map(|range| (range.start, q.rows_slice(range.start, range.end)))
        .collect();
    let requests: Vec<AttentionRequest<'_, T>> = q_slices
        .iter()
        .map(|(start, q_local)| AttentionRequest::windowed(q_local, k, v, *start))
        .collect();
    let outs = engine
        .run_batch(&plan, &requests)
        .expect("validated device windows execute");
    let mut out = Matrix::zeros(q.rows(), v.cols());
    for ((start, _), device_out) in q_slices.iter().zip(outs.iter()) {
        for i in 0..device_out.rows() {
            out.row_mut(start + i).copy_from_slice(device_out.row(i));
        }
    }
    out
}

/// KV-shard (ring-style) execution: `shards` devices each own a contiguous
/// column range of K/V; each shard's column-restricted mask compiles to a
/// plan whose full per-row [`AttentionState`] the engine returns, and the
/// partial states are merged exactly.
pub fn kv_sharded_attention<T: Real>(
    engine: &AttentionEngine,
    mask: &CsrMask,
    q: &Matrix<T>,
    k: &Matrix<T>,
    v: &Matrix<T>,
    shards: usize,
) -> Matrix<T> {
    let l = q.rows();
    let partition = RowPartition::uniform(l, shards.max(1));
    let mut merged: Option<AttentionState<T>> = None;

    for shard in partition.ranges() {
        // Mask restricted to this shard's columns.
        let entries: Vec<(usize, usize)> =
            mask.iter().filter(|&(_, c)| shard.contains(&c)).collect();
        let shard_mask = CsrMask::from_coo(
            &CooMask::from_entries(l, l, entries).expect("subset of a valid mask"),
        );
        let plan = AttentionPlan::single(AttentionKernel::Csr(&shard_mask))
            .expect("a column shard of a valid mask compiles");
        let partial = engine
            .run_batch_states(&plan, &[AttentionRequest::new(q, k, v)])
            .expect("validated shard inputs")
            .pop()
            .expect("one request, one state");

        merged = Some(match merged.take() {
            None => partial,
            Some(mut acc) => {
                // Exact distributed reduction: merge per-row (m, l, O).
                for i in 0..l {
                    let mut sa = OnlineSoftmaxState {
                        m: acc.m[i],
                        l: acc.l[i],
                    };
                    let sb = OnlineSoftmaxState {
                        m: partial.m[i],
                        l: partial.l[i],
                    };
                    merge_normalized(&mut sa, acc.o.row_mut(i), &sb, partial.o.row(i));
                    acc.m[i] = sa.m;
                    acc.l[i] = sa.l;
                }
                acc
            }
        });
    }
    merged
        .map(|s| s.into_output())
        .unwrap_or_else(|| Matrix::zeros(l, v.cols()))
}

/// KV-sharded decode — the sharding showcase of the geometry refactor: one
/// query row (the newest token of a [`KvCache`]) computed against `shards`
/// simulated devices, each owning a contiguous column range of the cache.
///
/// Each shard enumerates the decode row's neighbors through the kernel's
/// own row rule ([`AttentionKernel::for_each_neighbor`] at the absolute
/// index), keeps only its columns, and runs them as a single-row
/// [`gpa_core::Geometry::decode`] request; the per-shard `(O, l, m)`
/// softmax states then merge exactly, the same reduction a ring of devices
/// would perform. The result equals the last row of the square forward
/// over the cache (verified in tests).
///
/// # Panics
/// Panics if the cache is empty or multi-head, or the kernel is a dense
/// baseline.
pub fn kv_sharded_decode<T: Real>(
    engine: &AttentionEngine,
    kernel: &AttentionKernel<'_>,
    q_t: &Matrix<T>,
    cache: &KvCache<T>,
    shards: usize,
) -> Matrix<T> {
    assert_eq!(
        cache.heads(),
        1,
        "decode sharding takes a single-head cache"
    );
    let kv_len = cache.len();
    assert!(kv_len > 0, "decode needs at least one cached token");
    let t = kv_len - 1;
    let mut neighbors = Vec::new();
    kernel.for_each_neighbor(kv_len, t, &mut |j| neighbors.push(j));

    let partition = RowPartition::uniform(kv_len, shards.max(1));
    let mut merged: Option<AttentionState<T>> = None;
    for shard in partition.ranges() {
        let entries: Vec<(usize, usize)> = neighbors
            .iter()
            .copied()
            .filter(|j| shard.contains(j))
            .map(|j| (t, j))
            .collect();
        if entries.is_empty() {
            continue; // this shard owns none of the row's edges
        }
        let shard_mask = CsrMask::from_coo(
            &CooMask::from_entries(t + 1, kv_len, entries).expect("row-t entries are in range"),
        );
        let plan = AttentionPlan::single(AttentionKernel::Csr(&shard_mask))
            .expect("a shard of one decode row compiles");
        let partial = engine
            .run_batch_states(
                &plan,
                &[AttentionRequest::decode(q_t, cache.k(0), cache.v(0))],
            )
            .expect("validated shard inputs")
            .pop()
            .expect("one request, one state");
        merged = Some(match merged.take() {
            None => partial,
            Some(mut acc) => {
                let mut sa = OnlineSoftmaxState {
                    m: acc.m[0],
                    l: acc.l[0],
                };
                let sb = OnlineSoftmaxState {
                    m: partial.m[0],
                    l: partial.l[0],
                };
                merge_normalized(&mut sa, acc.o.row_mut(0), &sb, partial.o.row(0));
                acc.m[0] = sa.m;
                acc.l[0] = sa.l;
                acc
            }
        });
    }
    merged
        .map(|s| s.into_output())
        .unwrap_or_else(|| Matrix::zeros(1, cache.dv()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpa_core::{csr_attention, KernelOptions};
    use gpa_masks::{
        longformer, GlobalMask, GlobalSet, LocalWindow, MaskPattern, RandomUniform, Union,
    };
    use gpa_tensor::init::qkv;
    use gpa_tensor::paper_allclose;

    fn engine() -> AttentionEngine {
        AttentionEngine::with_threads(4)
    }

    #[test]
    fn row_distribution_is_exact_for_any_device_count() {
        let l = 96;
        let (q, k, v) = qkv::<f64>(l, 8, 61);
        let mask = longformer(l, 3, vec![0, 48]).to_csr();
        let e = engine();
        let single = csr_attention(e.pool(), &mask, &q, &k, &v, &KernelOptions::new()).unwrap();
        for devices in [1usize, 2, 3, 7, 96] {
            let part = RowPartition::uniform(l, devices);
            let distributed = row_distributed_attention(&e, &mask, &q, &k, &v, &part);
            assert!(paper_allclose(&distributed, &single), "devices = {devices}");
        }
    }

    #[test]
    fn row_distribution_exact_with_balanced_partition() {
        let l = 64;
        let (q, k, v) = qkv::<f64>(l, 8, 62);
        let mask = Union::new(
            LocalWindow::new(l, 2),
            GlobalMask::new(GlobalSet::new(l, vec![0, 1])),
        )
        .to_csr();
        let e = engine();
        let part = RowPartition::degree_balanced(&mask, 4);
        let single = csr_attention(e.pool(), &mask, &q, &k, &v, &KernelOptions::new()).unwrap();
        let distributed = row_distributed_attention(&e, &mask, &q, &k, &v, &part);
        assert!(paper_allclose(&distributed, &single));
    }

    #[test]
    fn windowed_row_distribution_is_exact_without_materializing_masks() {
        let l = 72;
        let (q, k, v) = qkv::<f64>(l, 8, 65);
        let e = engine();
        let kernel = AttentionKernel::Local { n: 4 };
        let plan = AttentionPlan::single(kernel).unwrap();
        let single = e.run(&plan, &q, &k, &v).unwrap();
        for devices in [1usize, 2, 5, 72] {
            let part = RowPartition::uniform(l, devices);
            let distributed = row_distributed_windowed_attention(&e, &kernel, &q, &k, &v, &part);
            // Windows stream the same absolute rows ⇒ bitwise equality.
            assert_eq!(distributed, single, "devices = {devices}");
        }
    }

    #[test]
    fn kv_sharded_decode_matches_the_square_forward_last_row() {
        let l = 40;
        let (q, k, v) = qkv::<f64>(l, 8, 66);
        let e = engine();
        let globals = GlobalSet::evenly_spaced(l, 3);
        let kernels = [
            AttentionKernel::Local { n: 5 },
            AttentionKernel::Dilated1d { w: 9, r: 2 },
            AttentionKernel::Global {
                globals: &globals,
                n_sub: 0,
            },
        ];
        let mut cache = KvCache::single(8, 8);
        cache.extend(0, &k, &v);
        let q_t = q.rows_slice(l - 1, l);
        for kernel in &kernels {
            let plan = AttentionPlan::single(*kernel).unwrap();
            let single = e.run(&plan, &q, &k, &v).unwrap();
            for shards in [1usize, 2, 3, 7, 40] {
                let sharded = kv_sharded_decode(&e, kernel, &q_t, &cache, shards);
                assert_eq!(sharded.shape(), (1, 8));
                let mut row = Matrix::zeros(1, 8);
                row.row_mut(0).copy_from_slice(single.row(l - 1));
                assert!(
                    paper_allclose(&sharded, &row),
                    "{} shards = {shards}",
                    kernel.name()
                );
            }
        }
    }

    #[test]
    fn kv_sharding_is_exact_for_any_shard_count() {
        let l = 80;
        let (q, k, v) = qkv::<f64>(l, 16, 63);
        let mask = RandomUniform::new(l, 0.15, 9).to_csr();
        let e = engine();
        let single = csr_attention(e.pool(), &mask, &q, &k, &v, &KernelOptions::new()).unwrap();
        for shards in [1usize, 2, 4, 5, 80] {
            let sharded = kv_sharded_attention(&e, &mask, &q, &k, &v, shards);
            assert!(paper_allclose(&sharded, &single), "shards = {shards}");
        }
    }

    #[test]
    fn kv_sharding_handles_empty_shards_and_rows() {
        // A mask whose edges all live in the first columns: later shards
        // contribute nothing, and some rows have no edges at all.
        let l = 24;
        let (q, k, v) = qkv::<f64>(l, 4, 64);
        let entries: Vec<(usize, usize)> = (0..l / 2).map(|i| (i, i % 3)).collect();
        let mask = CsrMask::from_coo(&CooMask::from_entries(l, l, entries).unwrap());
        let e = engine();
        let single = csr_attention(e.pool(), &mask, &q, &k, &v, &KernelOptions::new()).unwrap();
        let sharded = kv_sharded_attention(&e, &mask, &q, &k, &v, 6);
        assert!(paper_allclose(&sharded, &single));
        // Fully masked rows stay zero through the merge.
        for i in l / 2..l {
            assert!(sharded.row(i).iter().all(|&x| x == 0.0), "row {i}");
        }
    }
}
