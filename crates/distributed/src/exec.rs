//! Executed distributed simulation: the two decompositions of Algorithm 1,
//! run locally with one simulated device at a time and verified exact.
//!
//! - **Row decomposition** (sequence parallelism over queries): each device
//!   computes the attention rows it owns. Rows are independent, so results
//!   concatenate — this is the easy direction the paper's kernels already
//!   parallelize within a node.
//! - **KV-shard decomposition** (ring-attention style): each device holds a
//!   *column* shard of K/V; every device computes a partial
//!   `AttentionState` for **all** rows restricted to its shard's columns,
//!   and the per-row `(m, l, O)` states are then merged across devices with
//!   the online-softmax merge rule. Exactness of this merge is the
//!   correctness core of any distributed version of the paper's kernels.
//!
//! Both executors run on an [`AttentionEngine`]: each simulated device's
//! work is compiled into an [`AttentionPlan`] (its row slice or column
//! shard of the mask) and dispatched through the engine, instead of the
//! hand-rolled per-device kernel loops of the pre-engine API.

use crate::partition::RowPartition;
use gpa_core::{AttentionEngine, AttentionKernel, AttentionPlan, AttentionRequest, AttentionState};
use gpa_sparse::{CooMask, CsrMask};
use gpa_tensor::{merge_normalized, Matrix, OnlineSoftmaxState, Real};

/// Row-decomposed execution: each device's row slice compiles to a
/// rectangular-CSR plan (its rows × all columns) executed on the engine;
/// outputs are stitched back together.
pub fn row_distributed_attention<T: Real>(
    engine: &AttentionEngine,
    mask: &CsrMask,
    q: &Matrix<T>,
    k: &Matrix<T>,
    v: &Matrix<T>,
    partition: &RowPartition,
) -> Matrix<T> {
    assert_eq!(
        partition.context_len(),
        q.rows(),
        "partition/context mismatch"
    );
    let mut out = Matrix::zeros(q.rows(), v.cols());
    for range in partition.ranges() {
        if range.is_empty() {
            continue;
        }
        // Device-local mask: only this device's rows (renumbered to 0..len).
        let entries: Vec<(usize, usize)> = range
            .clone()
            .flat_map(|row| {
                mask.row(row)
                    .iter()
                    .map(move |&c| (row - range.start, c as usize))
            })
            .collect();
        let local_mask = CsrMask::from_coo(
            &CooMask::from_entries(range.len(), mask.cols(), entries)
                .expect("rows of a valid mask remain valid"),
        );
        // Device-local Q slice; K/V stay whole (pulled remotely on demand —
        // the traffic `comm::analyze` accounts for). The plan's mask is
        // rectangular (local rows × all columns), which the plan geometry
        // supports directly.
        let q_local = q.rows_slice(range.start, range.end);
        let plan = AttentionPlan::single(AttentionKernel::Csr(&local_mask))
            .expect("a row slice of a valid mask compiles");
        let device_out = engine
            .run(&plan, &q_local, k, v)
            .expect("validated device slice executes");
        for (i, row) in range.clone().enumerate() {
            out.row_mut(row).copy_from_slice(device_out.row(i));
        }
    }
    out
}

/// KV-shard (ring-style) execution: `shards` devices each own a contiguous
/// column range of K/V; each shard's column-restricted mask compiles to a
/// plan whose full per-row [`AttentionState`] the engine returns, and the
/// partial states are merged exactly.
pub fn kv_sharded_attention<T: Real>(
    engine: &AttentionEngine,
    mask: &CsrMask,
    q: &Matrix<T>,
    k: &Matrix<T>,
    v: &Matrix<T>,
    shards: usize,
) -> Matrix<T> {
    let l = q.rows();
    let partition = RowPartition::uniform(l, shards.max(1));
    let mut merged: Option<AttentionState<T>> = None;

    for shard in partition.ranges() {
        // Mask restricted to this shard's columns.
        let entries: Vec<(usize, usize)> =
            mask.iter().filter(|&(_, c)| shard.contains(&c)).collect();
        let shard_mask = CsrMask::from_coo(
            &CooMask::from_entries(l, l, entries).expect("subset of a valid mask"),
        );
        let plan = AttentionPlan::single(AttentionKernel::Csr(&shard_mask))
            .expect("a column shard of a valid mask compiles");
        let partial = engine
            .run_batch_states(&plan, &[AttentionRequest::new(q, k, v)])
            .expect("validated shard inputs")
            .pop()
            .expect("one request, one state");

        merged = Some(match merged.take() {
            None => partial,
            Some(mut acc) => {
                // Exact distributed reduction: merge per-row (m, l, O).
                for i in 0..l {
                    let mut sa = OnlineSoftmaxState {
                        m: acc.m[i],
                        l: acc.l[i],
                    };
                    let sb = OnlineSoftmaxState {
                        m: partial.m[i],
                        l: partial.l[i],
                    };
                    merge_normalized(&mut sa, acc.o.row_mut(i), &sb, partial.o.row(i));
                    acc.m[i] = sa.m;
                    acc.l[i] = sa.l;
                }
                acc
            }
        });
    }
    merged
        .map(|s| s.into_output())
        .unwrap_or_else(|| Matrix::zeros(l, v.cols()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpa_core::{csr_attention, KernelOptions};
    use gpa_masks::{
        longformer, GlobalMask, GlobalSet, LocalWindow, MaskPattern, RandomUniform, Union,
    };
    use gpa_tensor::init::qkv;
    use gpa_tensor::paper_allclose;

    fn engine() -> AttentionEngine {
        AttentionEngine::with_threads(4)
    }

    #[test]
    fn row_distribution_is_exact_for_any_device_count() {
        let l = 96;
        let (q, k, v) = qkv::<f64>(l, 8, 61);
        let mask = longformer(l, 3, vec![0, 48]).to_csr();
        let e = engine();
        let single = csr_attention(e.pool(), &mask, &q, &k, &v, &KernelOptions::new()).unwrap();
        for devices in [1usize, 2, 3, 7, 96] {
            let part = RowPartition::uniform(l, devices);
            let distributed = row_distributed_attention(&e, &mask, &q, &k, &v, &part);
            assert!(paper_allclose(&distributed, &single), "devices = {devices}");
        }
    }

    #[test]
    fn row_distribution_exact_with_balanced_partition() {
        let l = 64;
        let (q, k, v) = qkv::<f64>(l, 8, 62);
        let mask = Union::new(
            LocalWindow::new(l, 2),
            GlobalMask::new(GlobalSet::new(l, vec![0, 1])),
        )
        .to_csr();
        let e = engine();
        let part = RowPartition::degree_balanced(&mask, 4);
        let single = csr_attention(e.pool(), &mask, &q, &k, &v, &KernelOptions::new()).unwrap();
        let distributed = row_distributed_attention(&e, &mask, &q, &k, &v, &part);
        assert!(paper_allclose(&distributed, &single));
    }

    #[test]
    fn kv_sharding_is_exact_for_any_shard_count() {
        let l = 80;
        let (q, k, v) = qkv::<f64>(l, 16, 63);
        let mask = RandomUniform::new(l, 0.15, 9).to_csr();
        let e = engine();
        let single = csr_attention(e.pool(), &mask, &q, &k, &v, &KernelOptions::new()).unwrap();
        for shards in [1usize, 2, 4, 5, 80] {
            let sharded = kv_sharded_attention(&e, &mask, &q, &k, &v, shards);
            assert!(paper_allclose(&sharded, &single), "shards = {shards}");
        }
    }

    #[test]
    fn kv_sharding_handles_empty_shards_and_rows() {
        // A mask whose edges all live in the first columns: later shards
        // contribute nothing, and some rows have no edges at all.
        let l = 24;
        let (q, k, v) = qkv::<f64>(l, 4, 64);
        let entries: Vec<(usize, usize)> = (0..l / 2).map(|i| (i, i % 3)).collect();
        let mask = CsrMask::from_coo(&CooMask::from_entries(l, l, entries).unwrap());
        let e = engine();
        let single = csr_attention(e.pool(), &mask, &q, &k, &v, &KernelOptions::new()).unwrap();
        let sharded = kv_sharded_attention(&e, &mask, &q, &k, &v, 6);
        assert!(paper_allclose(&sharded, &single));
        // Fully masked rows stay zero through the merge.
        for i in l / 2..l {
            assert!(sharded.row(i).iter().all(|&x| x == 0.0), "row {i}");
        }
    }
}
