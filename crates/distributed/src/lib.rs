#![warn(missing_docs)]
//! # gpa-distributed — distributed-memory simulation
//!
//! The paper's stated next step (Section VI-A): "to support distributed
//! training across multiple nodes, we will implement distributed memory
//! versions of the algorithms … along with graph partitioning techniques to
//! load balance work across the nodes." This crate builds that layer as a
//! *simulation* on the single-node substrate:
//!
//! - [`partition`]: contiguous sequence partitioning, uniform and
//!   degree-balanced (optimal chain partitioning), with load metrics;
//! - [`comm`]: per-device communication-volume analysis — distinct remote
//!   K/V rows a sparse mask actually needs vs the dense all-gather
//!   baseline — plus a simple makespan model;
//! - [`exec`]: *executed* decompositions verified exact against the
//!   single-device kernels: row distribution (sequence parallelism) — via
//!   explicit mask slices or, for implicit kernels, mask-free
//!   [`gpa_core::Geometry`] query windows — and ring-style KV sharding,
//!   whose per-row softmax-state merge is the correctness core of any
//!   distributed online-softmax attention. KV-cached decode is the
//!   sharding showcase ([`exec::kv_sharded_decode`]): one query row
//!   merged across shards through the same `(O, l, m)` reduction.

pub mod comm;
pub mod exec;
pub mod partition;

pub use comm::{analyze, CommStats, DeviceCost};
pub use exec::{
    kv_sharded_attention, kv_sharded_decode, row_distributed_attention,
    row_distributed_windowed_attention,
};
pub use partition::RowPartition;

#[cfg(test)]
mod proptests {
    use super::*;
    use gpa_core::{csr_attention, AttentionEngine, KernelOptions};
    use gpa_masks::{MaskPattern, RandomUniform};
    use gpa_tensor::init::qkv;
    use gpa_tensor::paper_allclose;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Both decompositions are exact for random masks and device counts.
        #[test]
        fn decompositions_are_exact(
            l in 8usize..48,
            p in 0.05f64..0.7,
            devices in 1usize..6,
            seed in 0u64..300,
        ) {
            let engine = AttentionEngine::with_threads(2);
            let (q, k, v) = qkv::<f64>(l, 8, seed);
            let mask = RandomUniform::new(l, p, seed ^ 3).to_csr();
            let single = csr_attention(engine.pool(), &mask, &q, &k, &v, &KernelOptions::new()).unwrap();

            let part = RowPartition::uniform(l, devices);
            let rows = row_distributed_attention(&engine, &mask, &q, &k, &v, &part);
            prop_assert!(paper_allclose(&rows, &single));

            let sharded = kv_sharded_attention(&engine, &mask, &q, &k, &v, devices);
            prop_assert!(paper_allclose(&sharded, &single));
        }

        /// Partition invariants: full disjoint contiguous cover; edge loads
        /// sum to nnz; balanced never worse than uniform.
        #[test]
        fn partition_invariants(
            l in 1usize..128,
            p in 0.01f64..0.5,
            devices in 1usize..10,
            seed in 0u64..300,
        ) {
            let mask = RandomUniform::new(l, p, seed).to_csr();
            for part in [RowPartition::uniform(l, devices),
                         RowPartition::degree_balanced(&mask, devices)] {
                let covered: usize = part.ranges().iter().map(|r| r.len()).sum();
                prop_assert_eq!(covered, l);
                let mut next = 0;
                for r in part.ranges() {
                    prop_assert_eq!(r.start, next);
                    next = r.end;
                }
                prop_assert_eq!(part.edge_loads(&mask).iter().sum::<u64>(), mask.nnz() as u64);
            }
            let uni = RowPartition::uniform(l, devices);
            let bal = RowPartition::degree_balanced(&mask, devices);
            prop_assert!(bal.edge_loads(&mask).iter().max() <= uni.edge_loads(&mask).iter().max());
        }

        /// Communication accounting: edges conserved; remote rows bounded by
        /// the shard-external context.
        #[test]
        fn comm_invariants(
            l in 4usize..64,
            p in 0.05f64..0.6,
            devices in 1usize..6,
            seed in 0u64..300,
        ) {
            let mask = RandomUniform::new(l, p, seed).to_csr();
            let part = RowPartition::uniform(l, devices);
            let stats = analyze(&mask, &part, 16, 2);
            prop_assert_eq!(stats.total_edges(), mask.nnz() as u64);
            for (d, range) in part.ranges().iter().enumerate() {
                let outside = (l - range.len()) as u64;
                prop_assert!(stats.devices[d].remote_rows <= outside);
            }
            prop_assert!(stats.total_bytes() <= CommStats::all_gather_bytes(&part, 16, 2));
        }
    }
}
