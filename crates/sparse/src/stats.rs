//! Degree statistics and load-imbalance indicators for attention masks.
//!
//! Section V-C explains the Global kernel's slower scaling by the *shape* of
//! its sparsity: a few rows are (almost) fully dense while the rest are
//! nearly empty, so a row-parallel launch "can only be as fast as its
//! slowest block". These statistics quantify that skew for any mask.

use crate::csr::CsrMask;

/// Row-degree summary of a mask.
#[derive(Clone, Debug, PartialEq)]
pub struct DegreeStats {
    /// Minimum row degree.
    pub min: usize,
    /// Maximum row degree — the "slowest block" proxy.
    pub max: usize,
    /// Mean row degree.
    pub mean: f64,
    /// Population standard deviation of row degrees.
    pub std: f64,
    /// `max / mean`: ≥ 1, equal to 1 only for perfectly uniform masks.
    /// Large values predict block-level load imbalance under row-parallel
    /// execution.
    pub imbalance: f64,
}

/// Compute [`DegreeStats`] for a CSR mask.
pub fn degree_stats(mask: &CsrMask) -> DegreeStats {
    let rows = mask.rows();
    if rows == 0 {
        return DegreeStats {
            min: 0,
            max: 0,
            mean: 0.0,
            std: 0.0,
            imbalance: 1.0,
        };
    }
    let mut min = usize::MAX;
    let mut max = 0usize;
    let mut sum = 0usize;
    let mut sum_sq = 0.0f64;
    for r in 0..rows {
        let d = mask.degree(r);
        min = min.min(d);
        max = max.max(d);
        sum += d;
        sum_sq += (d * d) as f64;
    }
    let mean = sum as f64 / rows as f64;
    let var = (sum_sq / rows as f64 - mean * mean).max(0.0);
    DegreeStats {
        min,
        max,
        mean,
        std: var.sqrt(),
        imbalance: if mean > 0.0 { max as f64 / mean } else { 1.0 },
    }
}

/// Histogram of row degrees with `buckets` equal-width bins over
/// `[0, max_degree]`. Returns `(bin_upper_bounds, counts)`.
pub fn degree_histogram(mask: &CsrMask, buckets: usize) -> (Vec<usize>, Vec<usize>) {
    let buckets = buckets.max(1);
    let stats = degree_stats(mask);
    let width = (stats.max + 1).div_ceil(buckets);
    let mut counts = vec![0usize; buckets];
    for r in 0..mask.rows() {
        let bin = (mask.degree(r) / width.max(1)).min(buckets - 1);
        counts[bin] += 1;
    }
    let bounds = (1..=buckets).map(|b| b * width).collect();
    (bounds, counts)
}

/// Total serial work of a mask under the paper's cost model:
/// `nnz · d` multiply-adds for the score pass plus the same for the value
/// pass (Section IV-B's `O(Sf·L²·d)`).
pub fn serial_work(mask: &CsrMask, d: usize) -> u64 {
    2 * mask.nnz() as u64 * d as u64
}

/// Critical-path work under infinite row parallelism: the densest row's
/// work, `max_degree · d · 2`. The ratio `serial_work / critical_path` is
/// the maximum useful parallel speedup — bounded by the "slowest block".
pub fn critical_path_work(mask: &CsrMask, d: usize) -> u64 {
    2 * degree_stats(mask).max as u64 * d as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMask;

    fn mask_from(entries: Vec<(usize, usize)>, n: usize) -> CsrMask {
        CsrMask::from_coo(&CooMask::from_entries(n, n, entries).unwrap())
    }

    #[test]
    fn uniform_mask_has_no_imbalance() {
        // Diagonal: every row degree 1.
        let m = mask_from((0..8).map(|i| (i, i)).collect(), 8);
        let s = degree_stats(&m);
        assert_eq!((s.min, s.max), (1, 1));
        assert_eq!(s.mean, 1.0);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.imbalance, 1.0);
    }

    #[test]
    fn global_like_mask_is_imbalanced() {
        // Row 0 attends everywhere; other rows attend only to column 0 —
        // the global-token shape from Fig. 2.
        let mut entries: Vec<(usize, usize)> = (0..16).map(|j| (0, j)).collect();
        entries.extend((1..16).map(|i| (i, 0)));
        let m = mask_from(entries, 16);
        let s = degree_stats(&m);
        assert_eq!(s.max, 16);
        assert_eq!(s.min, 1);
        assert!(s.imbalance > 5.0, "imbalance = {}", s.imbalance);
    }

    #[test]
    fn histogram_partitions_rows() {
        let mut entries: Vec<(usize, usize)> = (0..10).map(|j| (0, j)).collect();
        entries.push((1, 0));
        let m = mask_from(entries, 10);
        let (bounds, counts) = degree_histogram(&m, 4);
        assert_eq!(bounds.len(), 4);
        assert_eq!(counts.iter().sum::<usize>(), 10);
    }

    #[test]
    fn work_model_counts_two_passes() {
        let m = mask_from(vec![(0, 0), (0, 1), (1, 1)], 2);
        assert_eq!(serial_work(&m, 64), 2 * 3 * 64);
        assert_eq!(critical_path_work(&m, 64), 2 * 2 * 64);
    }

    #[test]
    fn empty_mask_stats() {
        let m = CsrMask::empty(0, 0);
        let s = degree_stats(&m);
        assert_eq!(s.max, 0);
        assert_eq!(s.imbalance, 1.0);
    }
}
