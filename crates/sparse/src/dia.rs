//! DIA (diagonal) mask format — the paper's future-work direction of
//! "more sophisticated sparse matrix representation formats for specific
//! attention mask patterns to reduce their storage overheads"
//! (Section VI-A).
//!
//! Banded attention masks (local windows, 1-D dilated windows, and any
//! union of them) are fully described by their set of *diagonal offsets*
//! `d = j − i`: storage is `O(#diagonals)` — independent of `L` — versus
//! `O(Sf·L²)` for CSR/COO. This makes the explicit-mask kernel reach the
//! same context lengths as the implicit kernels while staying programmable
//! (arbitrary diagonal sets, not just contiguous or strided windows).

use crate::coo::CooMask;
use crate::csr::CsrMask;
use crate::error::SparseError;
use crate::Idx;

/// Banded binary mask: `mask(i, j) = 1 ⇔ (j − i) ∈ offsets`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DiaMask {
    l: usize,
    /// Sorted, deduplicated diagonal offsets (`0` = main diagonal,
    /// positive = above).
    offsets: Vec<i64>,
}

impl DiaMask {
    /// Build from arbitrary offsets (sorted and deduplicated; offsets that
    /// cannot intersect an `l×l` matrix are rejected).
    pub fn new(l: usize, mut offsets: Vec<i64>) -> Result<Self, SparseError> {
        offsets.sort_unstable();
        offsets.dedup();
        if let Some(&bad) = offsets
            .iter()
            .find(|&&d| d.unsigned_abs() as usize >= l.max(1))
        {
            return Err(SparseError::OutOfBounds {
                row: 0,
                col: bad.unsigned_abs() as usize,
                rows: l,
                cols: l,
            });
        }
        Ok(DiaMask { l, offsets })
    }

    /// The local window `|i−j| ≤ n` as diagonals `−n..=n`.
    pub fn local(l: usize, n: usize) -> Self {
        let n = n.min(l.saturating_sub(1)) as i64;
        DiaMask {
            l,
            offsets: (-n..=n).collect(),
        }
    }

    /// The paper's 1-D dilated window `|i−j| < w ∧ |i−j| mod (r+1) = 0` as
    /// strided diagonals.
    pub fn dilated1d(l: usize, w: usize, r: usize) -> Self {
        if w == 0 || l == 0 {
            return DiaMask { l, offsets: vec![] };
        }
        let stride = (r + 1) as i64;
        let k = ((w - 1) / (r + 1)) as i64;
        let k = k.min(l.saturating_sub(1) as i64 / stride);
        let offsets = (-k..=k).map(|s| s * stride).collect();
        DiaMask { l, offsets }
    }

    /// Context length.
    pub fn context_len(&self) -> usize {
        self.l
    }

    /// The diagonal offsets.
    pub fn offsets(&self) -> &[i64] {
        &self.offsets
    }

    /// Number of diagonals — the storage cost (in offsets, not `O(L²)`).
    pub fn num_diagonals(&self) -> usize {
        self.offsets.len()
    }

    /// Exact non-zero count: diagonal `d` holds `L − |d|` entries.
    pub fn nnz(&self) -> usize {
        self.offsets
            .iter()
            .map(|d| self.l - d.unsigned_abs() as usize)
            .sum()
    }

    /// Sparsity factor `Sf = NNZ / L²`.
    pub fn sparsity_factor(&self) -> f64 {
        if self.l == 0 {
            return 0.0;
        }
        self.nnz() as f64 / (self.l as f64 * self.l as f64)
    }

    /// Membership test by binary search over the offsets.
    pub fn contains(&self, i: usize, j: usize) -> bool {
        if i >= self.l || j >= self.l {
            return false;
        }
        self.offsets.binary_search(&(j as i64 - i as i64)).is_ok()
    }

    /// The in-bounds neighbor columns of row `i`, ascending.
    pub fn row_neighbors(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        let l = self.l as i64;
        let i = i as i64;
        self.offsets.iter().filter_map(move |&d| {
            let j = i + d;
            (j >= 0 && j < l).then_some(j as usize)
        })
    }

    /// Materialize as CSR (for comparisons; defeats the storage advantage).
    pub fn to_csr(&self) -> CsrMask {
        let mut row_offsets = Vec::with_capacity(self.l + 1);
        row_offsets.push(0usize);
        let mut col_idx: Vec<Idx> = Vec::with_capacity(self.nnz());
        for i in 0..self.l {
            col_idx.extend(self.row_neighbors(i).map(|j| j as Idx));
            row_offsets.push(col_idx.len());
        }
        CsrMask::from_parts(self.l, self.l, row_offsets, col_idx)
            .expect("diagonal enumeration yields valid CSR")
    }

    /// Materialize as COO.
    pub fn to_coo(&self) -> CooMask {
        self.to_csr().to_coo()
    }

    /// Union of two diagonal masks of the same length.
    ///
    /// # Panics
    /// Panics if context lengths differ.
    pub fn union(&self, other: &DiaMask) -> DiaMask {
        assert_eq!(self.l, other.l, "context lengths differ");
        let mut offsets = self.offsets.clone();
        offsets.extend_from_slice(&other.offsets);
        DiaMask::new(self.l, offsets).expect("offsets already validated")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_equivalence() {
        let dia = DiaMask::local(20, 3);
        assert_eq!(dia.num_diagonals(), 7);
        // nnz = (2n+1)L − n(n+1) = 7·20 − 12 = 128.
        assert_eq!(dia.nnz(), 128);
        assert!(dia.contains(5, 8));
        assert!(!dia.contains(5, 9));
        assert!(dia.contains(0, 3));
        assert!(dia.contains(3, 0)); // |3-0| ≤ 3 ⇒ contained
    }

    #[test]
    fn dilated_equivalence_with_pattern_predicate() {
        let (l, w, r) = (30, 9, 2);
        let dia = DiaMask::dilated1d(l, w, r);
        for i in 0..l {
            for j in 0..l {
                let d = i.abs_diff(j);
                let expect = d < w && d % (r + 1) == 0;
                assert_eq!(dia.contains(i, j), expect, "({i},{j})");
            }
        }
    }

    #[test]
    fn row_neighbors_sorted_and_clipped() {
        let dia = DiaMask::local(10, 2);
        let row0: Vec<usize> = dia.row_neighbors(0).collect();
        assert_eq!(row0, vec![0, 1, 2]);
        let row9: Vec<usize> = dia.row_neighbors(9).collect();
        assert_eq!(row9, vec![7, 8, 9]);
        let row5: Vec<usize> = dia.row_neighbors(5).collect();
        assert_eq!(row5, vec![3, 4, 5, 6, 7]);
    }

    #[test]
    fn csr_roundtrip_preserves_membership() {
        let dia = DiaMask::dilated1d(25, 7, 1);
        let csr = dia.to_csr();
        assert_eq!(csr.nnz(), dia.nnz());
        for i in 0..25 {
            for j in 0..25 {
                assert_eq!(csr.contains(i, j), dia.contains(i, j));
            }
        }
    }

    #[test]
    fn constructor_validates_offsets() {
        assert!(DiaMask::new(4, vec![0, 3, -3]).is_ok());
        assert!(DiaMask::new(4, vec![4]).is_err());
        assert!(DiaMask::new(4, vec![-4]).is_err());
        // Dedup + sort.
        let m = DiaMask::new(8, vec![2, -1, 2, 0]).unwrap();
        assert_eq!(m.offsets(), &[-1, 0, 2]);
    }

    #[test]
    fn union_merges_offsets() {
        let a = DiaMask::local(12, 1);
        let b = DiaMask::new(12, vec![-6, 6]).unwrap();
        let u = a.union(&b);
        assert_eq!(u.offsets(), &[-6, -1, 0, 1, 6]);
        assert_eq!(u.nnz(), a.nnz() + b.nnz());
    }

    #[test]
    fn storage_is_independent_of_length() {
        let small = DiaMask::local(100, 5);
        let huge = DiaMask::local(100_000_000, 5);
        assert_eq!(small.num_diagonals(), huge.num_diagonals());
        assert!(huge.nnz() > 1_000_000_000);
    }

    #[test]
    fn empty_and_degenerate() {
        let empty = DiaMask::new(5, vec![]).unwrap();
        assert_eq!(empty.nnz(), 0);
        assert_eq!(empty.sparsity_factor(), 0.0);
        let zero_l = DiaMask::dilated1d(0, 5, 1);
        assert_eq!(zero_l.nnz(), 0);
    }
}
