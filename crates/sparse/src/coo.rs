//! COO (coordinate) attention-mask storage.
//!
//! The paper's first explicit-mask kernel receives "the row indices, column
//! indices, and values vectors" (Section IV-B). Attention masks are binary,
//! so the values vector is implicit (all ones) and a mask non-zero is fully
//! described by its `(row, col)` pair. Entries are kept sorted by
//! `(row, col)` and deduplicated — the layout the paper's COO kernel assumes
//! ("a selection of ordered coordinates (grouped rows and sorted columns)").

use crate::error::SparseError;
use crate::Idx;

/// Binary sparse mask in coordinate format, sorted by `(row, col)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CooMask {
    rows: usize,
    cols: usize,
    row_idx: Vec<Idx>,
    col_idx: Vec<Idx>,
}

impl CooMask {
    /// Empty mask of the given shape.
    pub fn empty(rows: usize, cols: usize) -> Self {
        CooMask {
            rows,
            cols,
            row_idx: Vec::new(),
            col_idx: Vec::new(),
        }
    }

    /// Build from arbitrary (unsorted, possibly duplicated) entries.
    /// Entries are sorted and deduplicated.
    pub fn from_entries(
        rows: usize,
        cols: usize,
        mut entries: Vec<(usize, usize)>,
    ) -> Result<Self, SparseError> {
        check_shape(rows, cols)?;
        for &(r, c) in &entries {
            if r >= rows || c >= cols {
                return Err(SparseError::OutOfBounds {
                    row: r,
                    col: c,
                    rows,
                    cols,
                });
            }
        }
        entries.sort_unstable();
        entries.dedup();
        let mut row_idx = Vec::with_capacity(entries.len());
        let mut col_idx = Vec::with_capacity(entries.len());
        for (r, c) in entries {
            row_idx.push(r as Idx);
            col_idx.push(c as Idx);
        }
        Ok(CooMask {
            rows,
            cols,
            row_idx,
            col_idx,
        })
    }

    /// Build from parallel index vectors that must already be sorted by
    /// `(row, col)` without duplicates — the zero-copy constructor used by
    /// mask generators.
    pub fn from_sorted_vecs(
        rows: usize,
        cols: usize,
        row_idx: Vec<Idx>,
        col_idx: Vec<Idx>,
    ) -> Result<Self, SparseError> {
        check_shape(rows, cols)?;
        if row_idx.len() != col_idx.len() {
            return Err(SparseError::LengthMismatch {
                rows_len: row_idx.len(),
                cols_len: col_idx.len(),
            });
        }
        for i in 0..row_idx.len() {
            let (r, c) = (row_idx[i] as usize, col_idx[i] as usize);
            if r >= rows || c >= cols {
                return Err(SparseError::OutOfBounds {
                    row: r,
                    col: c,
                    rows,
                    cols,
                });
            }
            if i > 0 {
                let prev = (row_idx[i - 1], col_idx[i - 1]);
                let cur = (row_idx[i], col_idx[i]);
                if prev == cur {
                    return Err(SparseError::Duplicate { row: r, col: c });
                }
                if prev > cur {
                    return Err(SparseError::Unsorted { position: i });
                }
            }
        }
        Ok(CooMask {
            rows,
            cols,
            row_idx,
            col_idx,
        })
    }

    /// Number of rows (queries).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (keys).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of non-zero entries (graph edges).
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// Sparsity factor `Sf = NNZ / TE` (Eq. 2 of the paper).
    pub fn sparsity_factor(&self) -> f64 {
        if self.rows == 0 || self.cols == 0 {
            return 0.0;
        }
        self.nnz() as f64 / (self.rows as f64 * self.cols as f64)
    }

    /// Sorted row-index vector.
    pub fn row_indices(&self) -> &[Idx] {
        &self.row_idx
    }

    /// Column-index vector, sorted within each row.
    pub fn col_indices(&self) -> &[Idx] {
        &self.col_idx
    }

    /// Iterate all `(row, col)` entries in `(row, col)` order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.row_idx
            .iter()
            .zip(self.col_idx.iter())
            .map(|(&r, &c)| (r as usize, c as usize))
    }

    /// Membership test by binary search.
    pub fn contains(&self, row: usize, col: usize) -> bool {
        let (lo, hi) = self.row_bounds_binary(row);
        self.col_idx[lo..hi].binary_search(&(col as Idx)).is_ok()
    }

    /// The half-open `[lo, hi)` range of entry positions belonging to `row`,
    /// found by binary search. Used by the optimized COO kernel variant
    /// (ablation A1).
    pub fn row_bounds_binary(&self, row: usize) -> (usize, usize) {
        let r = row as Idx;
        let lo = self.row_idx.partition_point(|&x| x < r);
        let hi = self.row_idx.partition_point(|&x| x <= r);
        (lo, hi)
    }

    /// The `[lo, hi)` range of positions for `row` found by *linear scan
    /// from the front*, as the paper's COO kernel does ("the current
    /// algorithm must search to find the limits of a row … the search cost
    /// grows as the algorithm strays farther from row zero", Section V-C).
    ///
    /// Returns `(lo, hi, scanned)` where `scanned` is the number of elements
    /// inspected — the instrumented cost of the search.
    pub fn row_bounds_linear(&self, row: usize) -> (usize, usize, usize) {
        let r = row as Idx;
        let mut pos = 0usize;
        let n = self.row_idx.len();
        while pos < n && self.row_idx[pos] < r {
            pos += 1;
        }
        let lo = pos;
        while pos < n && self.row_idx[pos] == r {
            pos += 1;
        }
        (lo, pos, pos.min(n))
    }

    /// Decompose into `(rows, cols, row_idx, col_idx)` vectors.
    pub fn into_parts(self) -> (usize, usize, Vec<Idx>, Vec<Idx>) {
        (self.rows, self.cols, self.row_idx, self.col_idx)
    }
}

pub(crate) fn check_shape(rows: usize, cols: usize) -> Result<(), SparseError> {
    if rows > Idx::MAX as usize + 1 {
        return Err(SparseError::IndexOverflow { dim: rows });
    }
    if cols > Idx::MAX as usize + 1 {
        return Err(SparseError::IndexOverflow { dim: cols });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CooMask {
        CooMask::from_entries(4, 4, vec![(2, 1), (0, 0), (0, 3), (2, 2), (3, 0)]).unwrap()
    }

    #[test]
    fn entries_are_sorted_and_counted() {
        let m = sample();
        assert_eq!(m.nnz(), 5);
        assert_eq!(m.rows(), 4);
        assert_eq!(m.cols(), 4);
        let entries: Vec<_> = m.iter().collect();
        assert_eq!(entries, vec![(0, 0), (0, 3), (2, 1), (2, 2), (3, 0)]);
    }

    #[test]
    fn duplicates_are_merged() {
        let m = CooMask::from_entries(2, 2, vec![(1, 1), (1, 1), (0, 0)]).unwrap();
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let err = CooMask::from_entries(2, 2, vec![(2, 0)]).unwrap_err();
        assert!(matches!(err, SparseError::OutOfBounds { row: 2, .. }));
    }

    #[test]
    fn sorted_constructor_validates() {
        // Unsorted.
        let err = CooMask::from_sorted_vecs(3, 3, vec![1, 0], vec![0, 0]).unwrap_err();
        assert!(matches!(err, SparseError::Unsorted { position: 1 }));
        // Duplicate.
        let err = CooMask::from_sorted_vecs(3, 3, vec![1, 1], vec![2, 2]).unwrap_err();
        assert!(matches!(err, SparseError::Duplicate { row: 1, col: 2 }));
        // Length mismatch.
        let err = CooMask::from_sorted_vecs(3, 3, vec![0], vec![]).unwrap_err();
        assert!(matches!(err, SparseError::LengthMismatch { .. }));
        // Valid.
        let ok = CooMask::from_sorted_vecs(3, 3, vec![0, 1, 1], vec![2, 0, 1]).unwrap();
        assert_eq!(ok.nnz(), 3);
    }

    #[test]
    fn sparsity_factor_matches_definition() {
        let m = sample();
        assert!((m.sparsity_factor() - 5.0 / 16.0).abs() < 1e-15);
        let empty = CooMask::empty(0, 0);
        assert_eq!(empty.sparsity_factor(), 0.0);
    }

    #[test]
    fn row_bounds_binary_and_linear_agree() {
        let m = sample();
        for row in 0..4 {
            let (blo, bhi) = m.row_bounds_binary(row);
            let (llo, lhi, _) = m.row_bounds_linear(row);
            assert_eq!((blo, bhi), (llo, lhi), "row {row}");
        }
        // Row 1 is empty: bounds must be an empty range.
        let (lo, hi) = m.row_bounds_binary(1);
        assert_eq!(lo, hi);
    }

    #[test]
    fn linear_scan_cost_grows_with_row() {
        let m = sample();
        let (.., scan0) = m.row_bounds_linear(0);
        let (.., scan3) = m.row_bounds_linear(3);
        assert!(
            scan3 > scan0,
            "later rows must scan more: {scan0} vs {scan3}"
        );
    }

    #[test]
    fn contains_finds_members_only() {
        let m = sample();
        assert!(m.contains(2, 1));
        assert!(m.contains(0, 3));
        assert!(!m.contains(0, 1));
        assert!(!m.contains(1, 0));
    }
}
