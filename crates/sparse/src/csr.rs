//! CSR (compressed sparse row) attention-mask storage.
//!
//! The paper's best-performing explicit-mask kernel takes "the row offset,
//! column indices, and values vectors" (Section IV-B). For a binary mask,
//! row `i`'s neighbor list is the slice
//! `col_idx[row_offsets[i] .. row_offsets[i+1]]` — exactly the adjacency
//! list of vertex `i` in the paper's graph view, so `Get_Neighbors(G, i)`
//! is a two-load slice lookup with no searching (the advantage over COO
//! highlighted in Section V-C).

use crate::coo::{check_shape, CooMask};
use crate::error::SparseError;
use crate::Idx;

/// Binary sparse mask in CSR format.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CsrMask {
    rows: usize,
    cols: usize,
    row_offsets: Vec<usize>,
    col_idx: Vec<Idx>,
}

impl CsrMask {
    /// Empty mask of the given shape.
    pub fn empty(rows: usize, cols: usize) -> Self {
        CsrMask {
            rows,
            cols,
            row_offsets: vec![0; rows + 1],
            col_idx: Vec::new(),
        }
    }

    /// Build from raw CSR vectors, validating all invariants.
    pub fn from_parts(
        rows: usize,
        cols: usize,
        row_offsets: Vec<usize>,
        col_idx: Vec<Idx>,
    ) -> Result<Self, SparseError> {
        check_shape(rows, cols)?;
        if row_offsets.len() != rows + 1 {
            return Err(SparseError::BadOffsets {
                reason: "row_offsets length must be rows + 1",
            });
        }
        if row_offsets.first() != Some(&0) {
            return Err(SparseError::BadOffsets {
                reason: "row_offsets must start at 0",
            });
        }
        if row_offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(SparseError::BadOffsets {
                reason: "row_offsets must be non-decreasing",
            });
        }
        if *row_offsets.last().unwrap() != col_idx.len() {
            return Err(SparseError::BadOffsets {
                reason: "last offset must equal col_idx length",
            });
        }
        for r in 0..rows {
            let slice = &col_idx[row_offsets[r]..row_offsets[r + 1]];
            for (k, &c) in slice.iter().enumerate() {
                if c as usize >= cols {
                    return Err(SparseError::OutOfBounds {
                        row: r,
                        col: c as usize,
                        rows,
                        cols,
                    });
                }
                if k > 0 {
                    match slice[k - 1].cmp(&c) {
                        std::cmp::Ordering::Greater => {
                            return Err(SparseError::Unsorted {
                                position: row_offsets[r] + k,
                            })
                        }
                        std::cmp::Ordering::Equal => {
                            return Err(SparseError::Duplicate {
                                row: r,
                                col: c as usize,
                            })
                        }
                        std::cmp::Ordering::Less => {}
                    }
                }
            }
        }
        Ok(CsrMask {
            rows,
            cols,
            row_offsets,
            col_idx,
        })
    }

    /// Convert from COO (entries already sorted by `(row, col)`).
    pub fn from_coo(coo: &CooMask) -> Self {
        let rows = coo.rows();
        let mut row_offsets = vec![0usize; rows + 1];
        for &r in coo.row_indices() {
            row_offsets[r as usize + 1] += 1;
        }
        for i in 0..rows {
            row_offsets[i + 1] += row_offsets[i];
        }
        CsrMask {
            rows,
            cols: coo.cols(),
            row_offsets,
            col_idx: coo.col_indices().to_vec(),
        }
    }

    /// Convert to COO.
    pub fn to_coo(&self) -> CooMask {
        let mut row_idx = Vec::with_capacity(self.nnz());
        for r in 0..self.rows {
            let deg = self.row_offsets[r + 1] - self.row_offsets[r];
            row_idx.extend(std::iter::repeat(r as Idx).take(deg));
        }
        CooMask::from_sorted_vecs(self.rows, self.cols, row_idx, self.col_idx.clone())
            .expect("CSR invariants imply valid COO")
    }

    /// Number of rows (queries).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (keys).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of non-zeros (graph edges).
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Sparsity factor `Sf = NNZ / TE` (Eq. 2).
    pub fn sparsity_factor(&self) -> f64 {
        if self.rows == 0 || self.cols == 0 {
            return 0.0;
        }
        self.nnz() as f64 / (self.rows as f64 * self.cols as f64)
    }

    /// Row offset vector (`rows + 1` entries).
    pub fn row_offsets(&self) -> &[usize] {
        &self.row_offsets
    }

    /// Flat column-index vector.
    pub fn col_indices(&self) -> &[Idx] {
        &self.col_idx
    }

    /// Neighbor list of vertex `row` — `Get_Neighbors` from Algorithm 1.
    #[inline(always)]
    pub fn row(&self, row: usize) -> &[Idx] {
        &self.col_idx[self.row_offsets[row]..self.row_offsets[row + 1]]
    }

    /// Degree (number of neighbors) of `row`.
    #[inline]
    pub fn degree(&self, row: usize) -> usize {
        self.row_offsets[row + 1] - self.row_offsets[row]
    }

    /// Membership test by binary search within the row.
    pub fn contains(&self, row: usize, col: usize) -> bool {
        self.row(row).binary_search(&(col as Idx)).is_ok()
    }

    /// Iterate all `(row, col)` entries in `(row, col)` order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.rows).flat_map(move |r| self.row(r).iter().map(move |&c| (r, c as usize)))
    }

    /// Union with another mask of the same shape (set union of edges).
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn union(&self, other: &CsrMask) -> CsrMask {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "mask shapes differ"
        );
        let mut row_offsets = Vec::with_capacity(self.rows + 1);
        row_offsets.push(0usize);
        let mut col_idx = Vec::with_capacity(self.nnz() + other.nnz());
        for r in 0..self.rows {
            let (a, b) = (self.row(r), other.row(r));
            merge_sorted_unique(a, b, &mut col_idx);
            row_offsets.push(col_idx.len());
        }
        CsrMask {
            rows: self.rows,
            cols: self.cols,
            row_offsets,
            col_idx,
        }
    }

    /// Set difference `self \ other` (edges in `self` not in `other`).
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn difference(&self, other: &CsrMask) -> CsrMask {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "mask shapes differ"
        );
        let mut row_offsets = Vec::with_capacity(self.rows + 1);
        row_offsets.push(0usize);
        let mut col_idx = Vec::new();
        for r in 0..self.rows {
            let b = other.row(r);
            for &c in self.row(r) {
                if b.binary_search(&c).is_err() {
                    col_idx.push(c);
                }
            }
            row_offsets.push(col_idx.len());
        }
        CsrMask {
            rows: self.rows,
            cols: self.cols,
            row_offsets,
            col_idx,
        }
    }

    /// Set intersection of two masks.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn intersection(&self, other: &CsrMask) -> CsrMask {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "mask shapes differ"
        );
        let mut row_offsets = Vec::with_capacity(self.rows + 1);
        row_offsets.push(0usize);
        let mut col_idx = Vec::new();
        for r in 0..self.rows {
            let b = other.row(r);
            for &c in self.row(r) {
                if b.binary_search(&c).is_ok() {
                    col_idx.push(c);
                }
            }
            row_offsets.push(col_idx.len());
        }
        CsrMask {
            rows: self.rows,
            cols: self.cols,
            row_offsets,
            col_idx,
        }
    }

    /// True if the two masks share no edges (needed for exact sequential
    /// kernel composition).
    pub fn is_disjoint(&self, other: &CsrMask) -> bool {
        self.intersection(other).nnz() == 0
    }
}

/// Merge two sorted unique slices into `out`, keeping sorted-unique order.
fn merge_sorted_unique(a: &[Idx], b: &[Idx], out: &mut Vec<Idx>) {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_coo() -> CooMask {
        CooMask::from_entries(4, 5, vec![(0, 1), (0, 4), (1, 0), (3, 2), (3, 3), (3, 4)]).unwrap()
    }

    #[test]
    fn coo_roundtrip() {
        let coo = sample_coo();
        let csr = CsrMask::from_coo(&coo);
        assert_eq!(csr.nnz(), coo.nnz());
        assert_eq!(csr.to_coo(), coo);
    }

    #[test]
    fn rows_and_degrees() {
        let csr = CsrMask::from_coo(&sample_coo());
        assert_eq!(csr.row(0), &[1, 4]);
        assert_eq!(csr.row(1), &[0]);
        assert_eq!(csr.row(2), &[] as &[Idx]);
        assert_eq!(csr.row(3), &[2, 3, 4]);
        assert_eq!(csr.degree(3), 3);
        assert_eq!(csr.degree(2), 0);
    }

    #[test]
    fn from_parts_validates() {
        // Happy path.
        let ok = CsrMask::from_parts(2, 3, vec![0, 2, 3], vec![0, 2, 1]).unwrap();
        assert_eq!(ok.nnz(), 3);
        // Wrong offsets length.
        assert!(CsrMask::from_parts(2, 3, vec![0, 1], vec![0]).is_err());
        // Non-monotone offsets.
        assert!(CsrMask::from_parts(2, 3, vec![0, 2, 1], vec![0, 1]).is_err());
        // Mismatched last offset.
        assert!(CsrMask::from_parts(2, 3, vec![0, 1, 1], vec![0, 1]).is_err());
        // First offset not zero.
        assert!(CsrMask::from_parts(2, 3, vec![1, 1, 2], vec![0, 1]).is_err());
        // Column out of range.
        assert!(CsrMask::from_parts(1, 2, vec![0, 1], vec![5]).is_err());
        // Unsorted columns within a row.
        assert!(matches!(
            CsrMask::from_parts(1, 4, vec![0, 2], vec![2, 1]).unwrap_err(),
            SparseError::Unsorted { .. }
        ));
        // Duplicate column within a row.
        assert!(matches!(
            CsrMask::from_parts(1, 4, vec![0, 2], vec![2, 2]).unwrap_err(),
            SparseError::Duplicate { .. }
        ));
    }

    #[test]
    fn iter_matches_coo_order() {
        let coo = sample_coo();
        let csr = CsrMask::from_coo(&coo);
        let a: Vec<_> = csr.iter().collect();
        let b: Vec<_> = coo.iter().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn union_difference_intersection_laws() {
        let a =
            CsrMask::from_coo(&CooMask::from_entries(3, 3, vec![(0, 0), (1, 1), (2, 0)]).unwrap());
        let b =
            CsrMask::from_coo(&CooMask::from_entries(3, 3, vec![(0, 0), (1, 2), (2, 1)]).unwrap());
        let u = a.union(&b);
        assert_eq!(u.nnz(), 5); // (0,0) shared
        let i = a.intersection(&b);
        assert_eq!(i.nnz(), 1);
        assert!(i.contains(0, 0));
        let d = a.difference(&b);
        assert_eq!(d.nnz(), 2);
        assert!(d.contains(1, 1) && d.contains(2, 0));
        // a = (a ∖ b) ∪ (a ∩ b)
        assert_eq!(d.union(&i), a);
        // disjointness
        assert!(d.is_disjoint(&b));
        assert!(!a.is_disjoint(&b));
    }

    #[test]
    fn empty_mask_behaves() {
        let e = CsrMask::empty(3, 3);
        assert_eq!(e.nnz(), 0);
        assert_eq!(e.sparsity_factor(), 0.0);
        assert_eq!(e.row(1), &[] as &[Idx]);
        assert!(!e.contains(0, 0));
    }

    #[test]
    fn contains_binary_search() {
        let csr = CsrMask::from_coo(&sample_coo());
        assert!(csr.contains(3, 3));
        assert!(!csr.contains(3, 0));
        assert!(!csr.contains(2, 2));
    }
}
