//! Dense bitset mask — the `L×L` 0-1 attention-mask view.
//!
//! The reference SDP baseline and the verification protocol work with the
//! mask as a dense boolean matrix (the way PyTorch receives it). One bit per
//! element keeps `L = 24_576` masks at 72 MiB instead of 4.8 GiB.

use crate::coo::CooMask;
use crate::csr::CsrMask;
use crate::Idx;

/// Dense binary mask backed by a `u64` bitset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DenseMask {
    rows: usize,
    cols: usize,
    words_per_row: usize,
    bits: Vec<u64>,
}

impl DenseMask {
    /// All-zero (fully masked) matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let words_per_row = cols.div_ceil(64);
        DenseMask {
            rows,
            cols,
            words_per_row,
            bits: vec![0; rows * words_per_row],
        }
    }

    /// All-one (dense attention) matrix.
    pub fn ones(rows: usize, cols: usize) -> Self {
        let mut m = DenseMask::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m.set(i, j, true);
            }
        }
        m
    }

    /// Build from a predicate `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> bool) -> Self {
        let mut m = DenseMask::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                if f(i, j) {
                    m.set(i, j, true);
                }
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Read bit `(i, j)`.
    #[inline(always)]
    pub fn get(&self, i: usize, j: usize) -> bool {
        debug_assert!(i < self.rows && j < self.cols);
        let word = self.bits[i * self.words_per_row + j / 64];
        (word >> (j % 64)) & 1 == 1
    }

    /// Write bit `(i, j)`.
    #[inline(always)]
    pub fn set(&mut self, i: usize, j: usize, value: bool) {
        debug_assert!(i < self.rows && j < self.cols);
        let word = &mut self.bits[i * self.words_per_row + j / 64];
        if value {
            *word |= 1 << (j % 64);
        } else {
            *word &= !(1 << (j % 64));
        }
    }

    /// Count of set bits.
    pub fn nnz(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Sparsity factor `Sf = NNZ / TE` (Eq. 2).
    pub fn sparsity_factor(&self) -> f64 {
        if self.rows == 0 || self.cols == 0 {
            return 0.0;
        }
        self.nnz() as f64 / (self.rows as f64 * self.cols as f64)
    }

    /// Convert to COO (sorted, deduplicated by construction).
    pub fn to_coo(&self) -> CooMask {
        let mut row_idx = Vec::new();
        let mut col_idx = Vec::new();
        for i in 0..self.rows {
            for j in 0..self.cols {
                if self.get(i, j) {
                    row_idx.push(i as Idx);
                    col_idx.push(j as Idx);
                }
            }
        }
        CooMask::from_sorted_vecs(self.rows, self.cols, row_idx, col_idx)
            .expect("bitset iteration yields sorted unique entries")
    }

    /// Convert to CSR.
    pub fn to_csr(&self) -> CsrMask {
        CsrMask::from_coo(&self.to_coo())
    }

    /// Build from COO.
    pub fn from_coo(coo: &CooMask) -> Self {
        let mut m = DenseMask::zeros(coo.rows(), coo.cols());
        for (r, c) in coo.iter() {
            m.set(r, c, true);
        }
        m
    }

    /// Build from CSR.
    pub fn from_csr(csr: &CsrMask) -> Self {
        let mut m = DenseMask::zeros(csr.rows(), csr.cols());
        for (r, c) in csr.iter() {
            m.set(r, c, true);
        }
        m
    }

    /// Element-wise OR with another mask of the same shape.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn or(&self, other: &DenseMask) -> DenseMask {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let mut out = self.clone();
        for (w, o) in out.bits.iter_mut().zip(other.bits.iter()) {
            *w |= o;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip_across_word_boundaries() {
        let mut m = DenseMask::zeros(2, 130);
        for j in [0usize, 1, 63, 64, 65, 127, 128, 129] {
            m.set(1, j, true);
            assert!(m.get(1, j), "col {j}");
            assert!(!m.get(0, j), "row 0 untouched");
        }
        m.set(1, 64, false);
        assert!(!m.get(1, 64));
    }

    #[test]
    fn nnz_and_sparsity() {
        let mut m = DenseMask::zeros(4, 4);
        assert_eq!(m.nnz(), 0);
        m.set(0, 0, true);
        m.set(3, 3, true);
        assert_eq!(m.nnz(), 2);
        assert!((m.sparsity_factor() - 0.125).abs() < 1e-15);
        let ones = DenseMask::ones(3, 3);
        assert_eq!(ones.nnz(), 9);
        assert_eq!(ones.sparsity_factor(), 1.0);
    }

    #[test]
    fn conversions_roundtrip() {
        let m = DenseMask::from_fn(9, 13, |i, j| (i * 13 + j) % 5 == 0);
        let coo = m.to_coo();
        let csr = m.to_csr();
        assert_eq!(DenseMask::from_coo(&coo), m);
        assert_eq!(DenseMask::from_csr(&csr), m);
        assert_eq!(coo.nnz(), m.nnz());
        assert_eq!(csr.nnz(), m.nnz());
    }

    #[test]
    fn or_is_set_union() {
        let a = DenseMask::from_fn(5, 5, |i, j| i == j);
        let b = DenseMask::from_fn(5, 5, |i, j| i + j == 4);
        let u = a.or(&b);
        assert_eq!(u.nnz(), 9); // diagonal (5) + anti-diagonal (5) − shared center (1)
        assert!(u.get(2, 2));
        assert!(u.get(0, 4));
        assert!(u.get(0, 0));
    }
}
