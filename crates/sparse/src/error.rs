//! Error type for checked sparse-structure constructors.

use std::fmt;

/// Validation failure when building or converting a sparse mask.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SparseError {
    /// An entry's row or column exceeds the declared shape.
    OutOfBounds {
        /// Offending row index.
        row: usize,
        /// Offending column index.
        col: usize,
        /// Declared number of rows.
        rows: usize,
        /// Declared number of columns.
        cols: usize,
    },
    /// COO entries were required to be sorted by `(row, col)` but are not.
    Unsorted {
        /// Position of the first out-of-order entry.
        position: usize,
    },
    /// The same `(row, col)` pair appears more than once.
    Duplicate {
        /// Row of the duplicated entry.
        row: usize,
        /// Column of the duplicated entry.
        col: usize,
    },
    /// CSR `row_offsets` is malformed (wrong length, non-monotone, or the
    /// final offset disagrees with the column-index count).
    BadOffsets {
        /// Human-readable reason.
        reason: &'static str,
    },
    /// Parallel COO vectors have different lengths.
    LengthMismatch {
        /// Length of the row-index vector.
        rows_len: usize,
        /// Length of the column-index vector.
        cols_len: usize,
    },
    /// Shape too large for the 32-bit index representation.
    IndexOverflow {
        /// The dimension that overflowed.
        dim: usize,
    },
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::OutOfBounds {
                row,
                col,
                rows,
                cols,
            } => write!(f, "entry ({row}, {col}) outside {rows}x{cols} mask"),
            SparseError::Unsorted { position } => {
                write!(
                    f,
                    "COO entries not sorted by (row, col) at position {position}"
                )
            }
            SparseError::Duplicate { row, col } => {
                write!(f, "duplicate entry ({row}, {col})")
            }
            SparseError::BadOffsets { reason } => write!(f, "malformed CSR offsets: {reason}"),
            SparseError::LengthMismatch { rows_len, cols_len } => write!(
                f,
                "COO index vectors differ in length: rows {rows_len}, cols {cols_len}"
            ),
            SparseError::IndexOverflow { dim } => {
                write!(f, "dimension {dim} exceeds the u32 index space")
            }
        }
    }
}

impl std::error::Error for SparseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SparseError::OutOfBounds {
            row: 5,
            col: 9,
            rows: 4,
            cols: 4,
        };
        assert!(e.to_string().contains("(5, 9)"));
        assert!(e.to_string().contains("4x4"));
        let e = SparseError::BadOffsets {
            reason: "not monotone",
        };
        assert!(e.to_string().contains("not monotone"));
    }
}
