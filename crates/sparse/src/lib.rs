#![warn(missing_docs)]
//! # gpa-sparse — sparse mask substrate
//!
//! The paper's graph view of attention stores the mask as the adjacency
//! structure of a token graph. This crate provides the two explicit storage
//! formats the kernels consume —
//!
//! - [`CooMask`]: sorted coordinate pairs (the paper's COO kernel input,
//!   including the linear row-bound search that explains its cost profile),
//! - [`CsrMask`]: row offsets + column indices (the paper's
//!   best-performing explicit format), with set-algebra combinators
//!   (union / difference / intersection) used to compose mask patterns,
//!
//! — plus [`DenseMask`], a bitset view for the SDP baseline and
//! verification, and [`stats`] with the degree/imbalance statistics behind
//! the Section V-C load-balance analysis.
//!
//! Column indices are stored as `u32` ([`Idx`]): the paper's largest
//! context length (160 M, Section V-D) fits comfortably, and halving index
//! bytes matters because explicit-mask memory is the capacity limiter
//! (Table II).

pub mod coo;
pub mod csr;
pub mod dense_mask;
pub mod dia;
pub mod error;
pub mod stats;

/// Index type for rows/columns in sparse storage (u32: enough for the
/// paper's 160 M-token contexts while halving mask memory vs u64).
pub type Idx = u32;

pub use coo::CooMask;
pub use csr::CsrMask;
pub use dense_mask::DenseMask;
pub use dia::DiaMask;
pub use error::SparseError;
pub use stats::{critical_path_work, degree_histogram, degree_stats, serial_work, DegreeStats};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_entries(n: usize) -> impl Strategy<Value = Vec<(usize, usize)>> {
        proptest::collection::vec((0..n, 0..n), 0..200)
    }

    proptest! {
        /// COO → CSR → COO is the identity.
        #[test]
        fn coo_csr_roundtrip(entries in arb_entries(40)) {
            let coo = CooMask::from_entries(40, 40, entries).unwrap();
            let csr = CsrMask::from_coo(&coo);
            prop_assert_eq!(csr.to_coo(), coo);
        }

        /// Dense ↔ sparse conversions preserve membership exactly.
        #[test]
        fn dense_sparse_membership(entries in arb_entries(24)) {
            let coo = CooMask::from_entries(24, 24, entries).unwrap();
            let dense = DenseMask::from_coo(&coo);
            let csr = CsrMask::from_coo(&coo);
            for i in 0..24 {
                for j in 0..24 {
                    prop_assert_eq!(dense.get(i, j), coo.contains(i, j));
                    prop_assert_eq!(dense.get(i, j), csr.contains(i, j));
                }
            }
            prop_assert_eq!(dense.nnz(), coo.nnz());
        }

        /// Set-algebra identities: |A∪B| + |A∩B| = |A| + |B|, and
        /// A = (A∖B) ∪ (A∩B) with the two parts disjoint.
        #[test]
        fn set_algebra_identities(ea in arb_entries(20), eb in arb_entries(20)) {
            let a = CsrMask::from_coo(&CooMask::from_entries(20, 20, ea).unwrap());
            let b = CsrMask::from_coo(&CooMask::from_entries(20, 20, eb).unwrap());
            let union = a.union(&b);
            let inter = a.intersection(&b);
            let diff = a.difference(&b);
            prop_assert_eq!(union.nnz() + inter.nnz(), a.nnz() + b.nnz());
            prop_assert_eq!(diff.union(&inter), a.clone());
            prop_assert!(diff.is_disjoint(&b));
            // Union is commutative.
            prop_assert_eq!(union, b.union(&a));
        }

        /// Linear and binary row-bound searches agree on every row, and the
        /// linear scan inspects exactly the prefix up to the row's end.
        #[test]
        fn row_bounds_agree(entries in arb_entries(32)) {
            let coo = CooMask::from_entries(32, 32, entries).unwrap();
            for row in 0..32 {
                let (blo, bhi) = coo.row_bounds_binary(row);
                let (llo, lhi, scanned) = coo.row_bounds_linear(row);
                prop_assert_eq!((blo, bhi), (llo, lhi));
                prop_assert!(scanned >= bhi);
                prop_assert!(scanned <= coo.nnz());
            }
        }

        /// Degree stats are consistent with direct degree computation.
        #[test]
        fn degree_stats_consistent(entries in arb_entries(16)) {
            let csr = CsrMask::from_coo(&CooMask::from_entries(16, 16, entries).unwrap());
            let s = degree_stats(&csr);
            let degrees: Vec<usize> = (0..16).map(|r| csr.degree(r)).collect();
            prop_assert_eq!(s.max, *degrees.iter().max().unwrap());
            prop_assert_eq!(s.min, *degrees.iter().min().unwrap());
            let mean = degrees.iter().sum::<usize>() as f64 / 16.0;
            prop_assert!((s.mean - mean).abs() < 1e-12);
            prop_assert!(s.imbalance >= 1.0 - 1e-12 || s.mean == 0.0);
        }
    }
}
