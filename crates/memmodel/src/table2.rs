//! Table II: theoretical maximum context lengths on one A100-80GB at
//! `Sf = 1e-4`, with the paper's published values embedded for side-by-side
//! comparison and regression testing.

use crate::device::A100_80GB;
use crate::layout::{Accounting, DType, MemAlgorithm, MemConfig};
use crate::solve::max_context_length;

/// One (dtype, dk, heads) row group of Table II.
#[derive(Clone, Copy, Debug)]
pub struct Table2RowSpec {
    /// Tensor precision.
    pub dtype: DType,
    /// Total embedding width.
    pub d_total: usize,
    /// Head count.
    pub heads: usize,
}

/// The six row groups of Table II.
pub const TABLE2_ROWS: [Table2RowSpec; 6] = [
    Table2RowSpec {
        dtype: DType::F32,
        d_total: 64,
        heads: 1,
    },
    Table2RowSpec {
        dtype: DType::F32,
        d_total: 128,
        heads: 1,
    },
    Table2RowSpec {
        dtype: DType::F32,
        d_total: 4096,
        heads: 32,
    },
    Table2RowSpec {
        dtype: DType::F16,
        d_total: 64,
        heads: 1,
    },
    Table2RowSpec {
        dtype: DType::F16,
        d_total: 128,
        heads: 1,
    },
    Table2RowSpec {
        dtype: DType::F16,
        d_total: 4096,
        heads: 32,
    },
];

/// The paper's published Table II value for a (row, algorithm) cell;
/// `None` marks "Unsupported".
pub fn paper_value(row: &Table2RowSpec, algo: MemAlgorithm) -> Option<u64> {
    use DType::*;
    use MemAlgorithm::*;
    let key = (row.dtype, row.d_total, algo);
    let v: Option<u64> = match key {
        (F32, 64, SdpMasked) => Some(146_416),
        (F32, 64, Csr) => Some(9_732_519),
        (F32, 64, Coo) => Some(8_038_418),
        (F32, 64, Flash) => None,
        (F32, 64, Local) => Some(83_235_801),
        (F32, 64, Global) => Some(83_235_769),
        (F32, 64, Dilated1d) => Some(83_235_801),
        (F32, 64, Dilated2d) => Some(83_235_801),

        (F32, 128, SdpMasked) => Some(146_288),
        (F32, 128, Csr) => Some(9_152_140),
        (F32, 128, Coo) => Some(7_644_258),
        (F32, 128, Flash) => None,
        (F32, 128, Local) => Some(41_779_838),
        (F32, 128, Global) => Some(41_779_830),
        (F32, 128, Dilated1d) => Some(41_779_838),
        (F32, 128, Dilated2d) => Some(41_779_838),

        (F32, 4096, SdpMasked) => Some(25_651),
        (F32, 4096, Csr) => Some(950_434),
        (F32, 4096, Coo) => Some(865_272),
        (F32, 4096, Flash) => None,
        (F32, 4096, Local) => Some(1_305_620),
        (F32, 4096, Global) => Some(1_305_620),
        (F32, 4096, Dilated1d) => Some(1_305_620),
        (F32, 4096, Dilated2d) => Some(1_305_620),

        (F16, 64, SdpMasked) => Some(207_116),
        (F16, 64, Csr) => Some(14_013_926),
        (F16, 64, Coo) => Some(9_009_893),
        (F16, 64, Flash) => Some(166_471_601),
        (F16, 64, Local) => Some(166_471_601),
        (F16, 64, Global) => Some(166_471_472),
        (F16, 64, Dilated1d) => Some(166_471_601),
        (F16, 64, Dilated2d) => Some(166_471_601),

        (F16, 128, SdpMasked) => Some(206_988),
        (F16, 128, Csr) => Some(13_416_404),
        (F16, 128, Coo) => Some(8_764_655),
        (F16, 128, Flash) => Some(83_559_676),
        (F16, 128, Local) => Some(83_559_676),
        (F16, 128, Global) => Some(83_559_643),
        (F16, 128, Dilated1d) => Some(83_559_676),
        (F16, 128, Dilated2d) => Some(83_559_676),

        (F16, 4096, SdpMasked) => Some(36_381),
        (F16, 4096, Csr) => Some(1_601_190),
        (F16, 4096, Coo) => Some(1_200_336),
        (F16, 4096, Flash) => Some(2_611_240),
        (F16, 4096, Local) => Some(2_611_240),
        (F16, 4096, Global) => Some(2_611_239),
        (F16, 4096, Dilated1d) => Some(2_611_240),
        (F16, 4096, Dilated2d) => Some(2_611_240),

        _ => None,
    };
    v
}

/// One computed Table II cell.
#[derive(Clone, Debug)]
pub struct Table2Cell {
    /// Algorithm of this column.
    pub algo: MemAlgorithm,
    /// Our model's maximum context length (`None` = unsupported).
    pub ours: Option<u64>,
    /// The paper's published value.
    pub paper: Option<u64>,
}

impl Table2Cell {
    /// Relative deviation from the paper value (`None` when either side is
    /// unsupported or the paper value is zero).
    pub fn relative_error(&self) -> Option<f64> {
        match (self.ours, self.paper) {
            (Some(a), Some(b)) if b > 0 => Some((a as f64 - b as f64).abs() / b as f64),
            _ => None,
        }
    }
}

/// Compute one row group of Table II (all eight algorithms) at `Sf = 1e-4`
/// with the given accounting mode.
pub fn table2_row(spec: &Table2RowSpec, accounting: Accounting) -> Vec<Table2Cell> {
    MemAlgorithm::ALL
        .iter()
        .map(|&algo| {
            let cfg = MemConfig {
                algo,
                dtype: spec.dtype,
                d_total: spec.d_total,
                heads: spec.heads,
                sf: 1e-4,
                accounting,
            };
            Table2Cell {
                algo,
                ours: max_context_length(&A100_80GB, &cfg),
                paper: paper_value(spec, algo),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrated_model_reproduces_paper_table2() {
        // Tolerances: the O(L)-memory algorithms should land within a few
        // rows; the quadratic-term algorithms within 0.5% (the paper's
        // linear-term accounting is not fully specified — EXPERIMENTS.md).
        for spec in &TABLE2_ROWS {
            for cell in table2_row(spec, Accounting::PaperCalibrated) {
                match (cell.ours, cell.paper) {
                    (Some(ours), Some(paper)) => {
                        let rel = cell.relative_error().unwrap();
                        assert!(
                            rel < 0.005,
                            "{:?} {}d {}h {}: ours {} vs paper {} (rel {:.4})",
                            spec.dtype,
                            spec.d_total,
                            spec.heads,
                            cell.algo.label(),
                            ours,
                            paper,
                            rel
                        );
                    }
                    (None, None) => {} // FlashAttention FP32
                    (ours, paper) => {
                        panic!(
                            "support mismatch for {:?}: {ours:?} vs {paper:?}",
                            cell.algo
                        )
                    }
                }
            }
        }
    }

    #[test]
    fn flash_and_local_agree_exactly_in_fp16() {
        // Both are QKVO + 2 stats vectors: identical capacity — the paper's
        // "identical context lengths to FlashAttention" claim.
        for spec in TABLE2_ROWS.iter().filter(|s| s.dtype == DType::F16) {
            let row = table2_row(spec, Accounting::PaperCalibrated);
            let flash = row.iter().find(|c| c.algo == MemAlgorithm::Flash).unwrap();
            let local = row.iter().find(|c| c.algo == MemAlgorithm::Local).unwrap();
            assert_eq!(flash.ours, local.ours);
        }
    }

    #[test]
    fn ordering_matches_paper_claims() {
        // SDP ≪ COO < CSR < Global ≤ Local/Dilated for the single-head rows.
        let spec = TABLE2_ROWS[3]; // FP16, dk 64
        let row = table2_row(&spec, Accounting::PaperCalibrated);
        let get = |a: MemAlgorithm| {
            row.iter()
                .find(|c| c.algo == a)
                .and_then(|c| c.ours)
                .unwrap()
        };
        assert!(get(MemAlgorithm::SdpMasked) < get(MemAlgorithm::Coo));
        assert!(get(MemAlgorithm::Coo) < get(MemAlgorithm::Csr));
        assert!(get(MemAlgorithm::Csr) < get(MemAlgorithm::Global));
        assert!(get(MemAlgorithm::Global) <= get(MemAlgorithm::Local));
        // Roughly two orders of magnitude between SDP and CSR (paper:
        // "nearly two orders of magnitude longer").
        let ratio = get(MemAlgorithm::Csr) as f64 / get(MemAlgorithm::SdpMasked) as f64;
        assert!(ratio > 50.0, "ratio {ratio}");
    }

    #[test]
    fn principled_mode_is_self_consistent() {
        // Our implementation's accounting must also produce a valid table
        // (weaker check: monotone orderings hold).
        let spec = TABLE2_ROWS[3];
        let row = table2_row(&spec, Accounting::Principled);
        let get = |a: MemAlgorithm| {
            row.iter()
                .find(|c| c.algo == a)
                .and_then(|c| c.ours)
                .unwrap()
        };
        assert!(get(MemAlgorithm::SdpMasked) < get(MemAlgorithm::Coo));
        assert!(get(MemAlgorithm::Coo) <= get(MemAlgorithm::Csr) * 2);
        assert!(get(MemAlgorithm::Local) >= get(MemAlgorithm::Csr));
    }
}
