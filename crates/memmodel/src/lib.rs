#![warn(missing_docs)]
//! # gpa-memmodel — accelerator memory model
//!
//! The analytic half of the paper's evaluation: "theoretical context length
//! limits … calculated by solving inequalities that relate the total GPU
//! memory to the amount of memory occupied by tensors during runtime"
//! (Section V-D). This crate reproduces Fig. 4 and Table II:
//!
//! - [`device`]: the three paper GPUs (Table I) as memory budgets;
//! - [`layout`]: per-algorithm byte accounting, in two modes — the paper's
//!   (reverse-engineered from Table II, accurate to ≲0.5%) and a
//!   principled account of this repository's own data structures;
//! - [`solve`]: exact integer max-`L` via monotone bisection;
//! - [`table2`] / [`fig4`]: the published table and figure, with the
//!   paper's values embedded for regression testing.

pub mod device;
pub mod fig4;
pub mod layout;
pub mod solve;
pub mod table2;

pub use device::{DeviceProfile, A100_80GB, GIB, L40_48GB, V100_32GB};
pub use fig4::{fig4_all_panels, fig4_panel, sparsity_grid, Fig4Panel, Fig4Series};
pub use layout::{bytes_required, Accounting, DType, MemAlgorithm, MemConfig};
pub use solve::{capacity_curve, max_context_length};
pub use table2::{paper_value, table2_row, Table2Cell, Table2RowSpec, TABLE2_ROWS};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_algo() -> impl Strategy<Value = MemAlgorithm> {
        proptest::sample::select(MemAlgorithm::ALL.to_vec())
    }

    proptest! {
        /// The solver's answer is always tight: L fits, L+1 does not.
        #[test]
        fn solver_tightness(
            algo in arb_algo(),
            d_exp in 4usize..9,
            sf in 1e-5f64..0.99,
            mem_gib in 1u64..128,
        ) {
            let device = DeviceProfile::custom("x", mem_gib * GIB);
            let cfg = MemConfig {
                algo,
                dtype: DType::F16,
                d_total: 1 << d_exp,
                heads: 1,
                sf,
                accounting: Accounting::PaperCalibrated,
            };
            if let Some(l) = max_context_length(&device, &cfg) {
                let budget = device.mem_bytes as f64;
                prop_assert!(bytes_required(&cfg, l as f64) <= budget);
                prop_assert!(bytes_required(&cfg, (l + 1) as f64) > budget);
            }
        }

        /// Capacity is monotone: more memory never shrinks max L; a denser
        /// mask never grows it.
        #[test]
        fn capacity_monotonicity(
            algo in arb_algo(),
            sf_lo in 1e-5f64..1e-2,
            sf_mult in 1.5f64..50.0,
        ) {
            let cfg_sparse = MemConfig {
                algo,
                dtype: DType::F16,
                d_total: 64,
                heads: 1,
                sf: sf_lo,
                accounting: Accounting::PaperCalibrated,
            };
            let mut cfg_dense = cfg_sparse;
            cfg_dense.sf = (sf_lo * sf_mult).min(1.0);
            let a = max_context_length(&A100_80GB, &cfg_sparse);
            let b = max_context_length(&A100_80GB, &cfg_dense);
            if let (Some(a), Some(b)) = (a, b) {
                prop_assert!(a >= b, "sparser {a} must be ≥ denser {b}");
            }
            let small = DeviceProfile::custom("s", 8 * GIB);
            let c = max_context_length(&small, &cfg_sparse);
            if let (Some(a), Some(c)) = (a, c) {
                prop_assert!(a >= c);
            }
        }
    }
}
