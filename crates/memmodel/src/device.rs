//! Accelerator device profiles (paper Table I).
//!
//! The capacity experiments (Fig. 4, Table II) depend only on a device's
//! memory size; these profiles carry the three GPUs of the paper's test
//! systems plus a way to describe any other budget (e.g. "25% of an A100",
//! the training headroom assumption of Section VI-B).

/// A device whose memory capacity bounds the attention working set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeviceProfile {
    /// Display name.
    pub name: &'static str,
    /// Usable memory in bytes.
    pub mem_bytes: u64,
}

/// GiB → bytes.
pub const GIB: u64 = 1 << 30;

/// NVIDIA A100 SXM4 80 GB — the paper's headline device.
pub const A100_80GB: DeviceProfile = DeviceProfile {
    name: "NVIDIA A100 (SXM4 80GB)",
    mem_bytes: 80 * GIB,
};

/// NVIDIA L40 48 GB.
pub const L40_48GB: DeviceProfile = DeviceProfile {
    name: "NVIDIA L40 (48GB)",
    mem_bytes: 48 * GIB,
};

/// NVIDIA V100 SXM2 32 GB.
pub const V100_32GB: DeviceProfile = DeviceProfile {
    name: "NVIDIA V100 (SXM2 32GB)",
    mem_bytes: 32 * GIB,
};

impl DeviceProfile {
    /// A custom memory budget.
    pub const fn custom(name: &'static str, mem_bytes: u64) -> Self {
        DeviceProfile { name, mem_bytes }
    }

    /// This device with only a fraction of memory available to attention
    /// (Section VI-B assumes 25% headroom during training).
    pub fn with_fraction(&self, fraction: f64) -> DeviceProfile {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "fraction {fraction} outside (0, 1]"
        );
        DeviceProfile {
            name: self.name,
            mem_bytes: (self.mem_bytes as f64 * fraction) as u64,
        }
    }

    /// All three paper devices (Table I order: A100, L40, V100).
    pub fn paper_devices() -> [DeviceProfile; 3] {
        [A100_80GB, L40_48GB, V100_32GB]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacities_match_table1() {
        assert_eq!(A100_80GB.mem_bytes, 85_899_345_920);
        assert_eq!(L40_48GB.mem_bytes, 51_539_607_552);
        assert_eq!(V100_32GB.mem_bytes, 34_359_738_368);
    }

    #[test]
    fn fraction_scales_memory() {
        let quarter = A100_80GB.with_fraction(0.25);
        assert_eq!(quarter.mem_bytes, 20 * GIB);
        assert_eq!(quarter.name, A100_80GB.name);
    }

    #[test]
    #[should_panic(expected = "outside (0, 1]")]
    fn zero_fraction_rejected() {
        let _ = A100_80GB.with_fraction(0.0);
    }
}
