//! Max-context-length solver: the largest `L` whose working set fits the
//! device (the inequality solving of Section V-D).

use crate::device::DeviceProfile;
use crate::layout::{bytes_required, MemConfig};

/// The largest integer context length `L ≥ 0` with
/// `bytes_required(cfg, L) ≤ device.mem_bytes`, found by monotone bisection.
///
/// Returns 0 if even `L = 1` does not fit, and `None` if the algorithm does
/// not support the configuration's data type (FlashAttention FP32).
pub fn max_context_length(device: &DeviceProfile, cfg: &MemConfig) -> Option<u64> {
    if !cfg.algo.supports(cfg.dtype) {
        return None;
    }
    let budget = device.mem_bytes as f64;
    if bytes_required(cfg, 1.0) > budget {
        return Some(0);
    }
    // Exponential search for an upper bound…
    let mut hi = 1u64;
    while bytes_required(cfg, hi as f64) <= budget {
        hi = hi.saturating_mul(2);
        if hi >= 1 << 62 {
            break;
        }
    }
    // …then bisect for the last fitting length.
    let mut lo = hi / 2; // known to fit
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        if bytes_required(cfg, mid as f64) <= budget {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(lo)
}

/// Convenience: solve for each sparsity factor in `sfs`, returning
/// `(sf, max_L)` pairs — one Fig. 4 curve.
pub fn capacity_curve(
    device: &DeviceProfile,
    base: &MemConfig,
    sfs: &[f64],
) -> Vec<(f64, Option<u64>)> {
    sfs.iter()
        .map(|&sf| {
            let mut cfg = *base;
            cfg.sf = sf;
            (sf, max_context_length(device, &cfg))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{A100_80GB, V100_32GB};
    use crate::layout::{Accounting, DType, MemAlgorithm};

    fn cfg(algo: MemAlgorithm, dtype: DType, d: usize, h: usize, sf: f64) -> MemConfig {
        MemConfig {
            algo,
            dtype,
            d_total: d,
            heads: h,
            sf,
            accounting: Accounting::PaperCalibrated,
        }
    }

    #[test]
    fn solution_is_tight() {
        let c = cfg(MemAlgorithm::Csr, DType::F16, 64, 1, 1e-4);
        let l = max_context_length(&A100_80GB, &c).unwrap();
        let budget = A100_80GB.mem_bytes as f64;
        assert!(crate::layout::bytes_required(&c, l as f64) <= budget);
        assert!(crate::layout::bytes_required(&c, (l + 1) as f64) > budget);
    }

    #[test]
    fn more_memory_means_longer_context() {
        let c = cfg(MemAlgorithm::Local, DType::F16, 64, 1, 1e-4);
        let big = max_context_length(&A100_80GB, &c).unwrap();
        let small = max_context_length(&V100_32GB, &c).unwrap();
        assert!(big > small);
        // O(L) algorithms scale linearly with memory: 80/32 = 2.5×.
        let ratio = big as f64 / small as f64;
        assert!((ratio - 2.5).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn flash_fp32_is_none() {
        let c = cfg(MemAlgorithm::Flash, DType::F32, 64, 1, 1e-4);
        assert_eq!(max_context_length(&A100_80GB, &c), None);
    }

    #[test]
    fn sparser_masks_fit_longer_contexts() {
        let mut last = 0;
        for sf in [1e-1, 1e-2, 1e-3, 1e-4] {
            let c = cfg(MemAlgorithm::Csr, DType::F16, 64, 1, sf);
            let l = max_context_length(&A100_80GB, &c).unwrap();
            assert!(l > last, "sf={sf}: {l} vs {last}");
            last = l;
        }
    }

    #[test]
    fn capacity_curve_matches_pointwise_solves() {
        let base = cfg(MemAlgorithm::Coo, DType::F16, 64, 1, 0.0);
        let sfs = [1e-4, 1e-3, 1e-2];
        let curve = capacity_curve(&A100_80GB, &base, &sfs);
        assert_eq!(curve.len(), 3);
        for (sf, l) in curve {
            let mut c = base;
            c.sf = sf;
            assert_eq!(l, max_context_length(&A100_80GB, &c));
        }
    }

    #[test]
    fn tiny_budget_yields_zero() {
        let device = DeviceProfile::custom("tiny", 8);
        let c = cfg(MemAlgorithm::Local, DType::F16, 64, 1, 1e-4);
        assert_eq!(max_context_length(&device, &c), Some(0));
    }
}
