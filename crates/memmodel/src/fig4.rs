//! Fig. 4: maximum context length as a function of the sparsity factor.
//!
//! Four panels — (dk = 64, dk = 128) × (FP32, FP16) — each charting every
//! algorithm family's capacity on one A100-80GB as `Sf` sweeps `[1e-4, 1]`.

use crate::device::DeviceProfile;
use crate::layout::{Accounting, DType, MemAlgorithm, MemConfig};
use crate::solve::capacity_curve;

/// A single algorithm's capacity curve within one panel.
#[derive(Clone, Debug)]
pub struct Fig4Series {
    /// Algorithm.
    pub algo: MemAlgorithm,
    /// `(sf, max_L)` samples; `None` where unsupported.
    pub points: Vec<(f64, Option<u64>)>,
}

/// One Fig. 4 panel: a (dtype, dk) pair with all algorithm curves.
#[derive(Clone, Debug)]
pub struct Fig4Panel {
    /// Tensor precision of this panel.
    pub dtype: DType,
    /// Embedding width of this panel.
    pub d_total: usize,
    /// Capacity curves, one per algorithm.
    pub series: Vec<Fig4Series>,
}

/// Log-spaced sparsity grid from `1e-4` to `1` with `points_per_decade`
/// samples per decade.
pub fn sparsity_grid(points_per_decade: usize) -> Vec<f64> {
    let ppd = points_per_decade.max(1);
    let total = 4 * ppd; // 4 decades: 1e-4 … 1e0
    (0..=total)
        .map(|i| 10f64.powf(-4.0 + i as f64 / ppd as f64))
        .collect()
}

/// Compute one panel on the given device.
pub fn fig4_panel(
    device: &DeviceProfile,
    dtype: DType,
    d_total: usize,
    accounting: Accounting,
    sfs: &[f64],
) -> Fig4Panel {
    let series = MemAlgorithm::ALL
        .iter()
        .map(|&algo| {
            let base = MemConfig {
                algo,
                dtype,
                d_total,
                heads: 1,
                sf: 1e-4,
                accounting,
            };
            Fig4Series {
                algo,
                points: capacity_curve(device, &base, sfs),
            }
        })
        .collect();
    Fig4Panel {
        dtype,
        d_total,
        series,
    }
}

/// All four Fig. 4 panels (dk ∈ {64, 128} × {FP32, FP16}).
pub fn fig4_all_panels(
    device: &DeviceProfile,
    accounting: Accounting,
    sfs: &[f64],
) -> Vec<Fig4Panel> {
    let mut panels = Vec::with_capacity(4);
    for &d in &[64usize, 128] {
        for &dtype in &[DType::F32, DType::F16] {
            panels.push(fig4_panel(device, dtype, d, accounting, sfs));
        }
    }
    panels
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::A100_80GB;

    #[test]
    fn grid_is_log_spaced_and_bounded() {
        let g = sparsity_grid(4);
        assert_eq!(g.len(), 17);
        assert!((g[0] - 1e-4).abs() < 1e-12);
        assert!((g.last().unwrap() - 1.0).abs() < 1e-9);
        assert!(g.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn panel_has_all_algorithms() {
        let panel = fig4_panel(
            &A100_80GB,
            DType::F16,
            64,
            Accounting::PaperCalibrated,
            &sparsity_grid(2),
        );
        assert_eq!(panel.series.len(), MemAlgorithm::ALL.len());
        for s in &panel.series {
            assert_eq!(s.points.len(), 9);
        }
    }

    #[test]
    fn explicit_masks_decay_with_density_implicit_stay_flat() {
        let panel = fig4_panel(
            &A100_80GB,
            DType::F16,
            64,
            Accounting::PaperCalibrated,
            &[1e-4, 1e-2, 1.0],
        );
        for s in &panel.series {
            let ls: Vec<u64> = s.points.iter().filter_map(|(_, l)| *l).collect();
            if ls.is_empty() {
                continue;
            }
            if s.algo.sparsity_dependent() {
                assert!(ls[0] > ls[2], "{:?} should shrink as Sf grows", s.algo);
            } else {
                assert!(
                    ls.windows(2).all(|w| w[0] == w[1]),
                    "{:?} should be flat across Sf",
                    s.algo
                );
            }
        }
    }

    #[test]
    fn fp16_doubles_implicit_capacity_vs_fp32() {
        let sfs = [1e-4];
        let p16 = fig4_panel(
            &A100_80GB,
            DType::F16,
            64,
            Accounting::PaperCalibrated,
            &sfs,
        );
        let p32 = fig4_panel(
            &A100_80GB,
            DType::F32,
            64,
            Accounting::PaperCalibrated,
            &sfs,
        );
        let get = |p: &Fig4Panel, a: MemAlgorithm| {
            p.series.iter().find(|s| s.algo == a).unwrap().points[0]
                .1
                .unwrap()
        };
        let ratio = get(&p16, MemAlgorithm::Local) as f64 / get(&p32, MemAlgorithm::Local) as f64;
        assert!((ratio - 2.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn all_panels_generated() {
        let panels = fig4_all_panels(&A100_80GB, Accounting::PaperCalibrated, &[1e-4, 1e-1]);
        assert_eq!(panels.len(), 4);
        let dims: Vec<(usize, DType)> = panels.iter().map(|p| (p.d_total, p.dtype)).collect();
        assert!(dims.contains(&(64, DType::F16)));
        assert!(dims.contains(&(128, DType::F32)));
    }
}
