//! Per-algorithm memory accounting — the inequalities behind Fig. 4 and
//! Table II.
//!
//! Two accounting modes are provided:
//!
//! - [`Accounting::PaperCalibrated`] reproduces the paper's Table II: its
//!   byte coefficients were reverse-engineered from the published maxima
//!   (EXPERIMENTS.md lists the derivation). Key choices it encodes: the
//!   masked-SDP model stores one `heads × L × L` score tensor in the data
//!   type (the mask itself is not counted); CSR stores int64 row offsets
//!   plus `2·s·heads` bytes per non-zero; COO stores `(8 + s)·heads` bytes
//!   per non-zero; the global kernel adds an int64 index vector of length
//!   `Sf·L/2`.
//! - [`Accounting::Principled`] describes *this repository's* kernels: u32
//!   column indices, usize (8-byte) row offsets, a one-bit dense mask for
//!   the SDP baseline, no materialized attention values anywhere (all graph
//!   kernels stream through online softmax).
//!
//! All quantities are `f64`: capacities are ~10¹¹ and the worst `L²` terms
//! ~10¹⁶·10⁻⁴, well inside `f64`'s exact-integer range for the precision
//! the solver needs (±1 row at the boundary is tolerated by the tests).

/// Floating-point width of tensor data.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DType {
    /// IEEE binary16 (2 bytes).
    F16,
    /// IEEE binary32 (4 bytes).
    F32,
}

impl DType {
    /// Element size in bytes.
    pub fn bytes(self) -> f64 {
        match self {
            DType::F16 => 2.0,
            DType::F32 => 4.0,
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            DType::F16 => "FP16",
            DType::F32 => "FP32",
        }
    }
}

/// The attention algorithms whose capacity the paper charts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemAlgorithm {
    /// Masked SDP (dense score materialization).
    SdpMasked,
    /// CSR explicit-mask graph kernel.
    Csr,
    /// COO explicit-mask graph kernel.
    Coo,
    /// Dense FlashAttention (FP16 only, as in the paper).
    Flash,
    /// Implicit local window kernel.
    Local,
    /// Implicit global (non-local) kernel.
    Global,
    /// Implicit 1-D dilated kernel.
    Dilated1d,
    /// Implicit 2-D dilated kernel.
    Dilated2d,
}

impl MemAlgorithm {
    /// All algorithms in Table II column order.
    pub const ALL: [MemAlgorithm; 8] = [
        MemAlgorithm::SdpMasked,
        MemAlgorithm::Csr,
        MemAlgorithm::Coo,
        MemAlgorithm::Flash,
        MemAlgorithm::Local,
        MemAlgorithm::Global,
        MemAlgorithm::Dilated1d,
        MemAlgorithm::Dilated2d,
    ];

    /// Table II column label.
    pub fn label(self) -> &'static str {
        match self {
            MemAlgorithm::SdpMasked => "SDP (Masked)",
            MemAlgorithm::Csr => "CSR",
            MemAlgorithm::Coo => "COO",
            MemAlgorithm::Flash => "FlashAttention (Dense)",
            MemAlgorithm::Local => "Local",
            MemAlgorithm::Global => "Global",
            MemAlgorithm::Dilated1d => "Dilated (1D)",
            MemAlgorithm::Dilated2d => "Dilated (2D)",
        }
    }

    /// Whether the algorithm supports the data type (the paper marks
    /// FlashAttention FP32 as unsupported).
    pub fn supports(self, dtype: DType) -> bool {
        !(matches!(self, MemAlgorithm::Flash) && dtype == DType::F32)
    }

    /// Whether memory use depends on the sparsity factor (explicit masks
    /// and the global index vector do; the rest are `O(L)` beyond QKVO).
    pub fn sparsity_dependent(self) -> bool {
        matches!(
            self,
            MemAlgorithm::Csr | MemAlgorithm::Coo | MemAlgorithm::Global
        )
    }
}

/// Byte-accounting mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Accounting {
    /// Coefficients calibrated to reproduce the paper's Table II.
    PaperCalibrated,
    /// Exact accounting of this repository's data structures.
    Principled,
}

/// A capacity question: algorithm, precision, head geometry, sparsity.
#[derive(Clone, Copy, Debug)]
pub struct MemConfig {
    /// Algorithm under test.
    pub algo: MemAlgorithm,
    /// Tensor precision.
    pub dtype: DType,
    /// Total embedding width (`dk` of Table II; per-head width × heads).
    pub d_total: usize,
    /// Number of heads.
    pub heads: usize,
    /// Mask sparsity factor `Sf`.
    pub sf: f64,
    /// Accounting mode.
    pub accounting: Accounting,
}

/// Bytes of device memory the algorithm needs at context length `l`.
pub fn bytes_required(cfg: &MemConfig, l: f64) -> f64 {
    let s = cfg.dtype.bytes();
    let h = cfg.heads as f64;
    let d = cfg.d_total as f64;
    let sf = cfg.sf;
    // Q, K, V, O in the data type — common to every algorithm.
    let qkvo = 4.0 * d * s * l;
    // Online-softmax statistics: two vectors per head.
    let stats = 2.0 * s * h * l;
    let nnz = sf * l * l;

    match (cfg.accounting, cfg.algo) {
        // ---- Paper-calibrated Table II accounting -----------------------
        (Accounting::PaperCalibrated, MemAlgorithm::SdpMasked) => {
            // One heads×L×L score tensor; the paper does not count the
            // boolean mask or softmax temporaries.
            qkvo + s * h * l * l
        }
        (Accounting::PaperCalibrated, MemAlgorithm::Csr) => {
            // int64 row offsets + 2·s·h bytes per non-zero (column index
            // sized to the dtype plus per-head score storage, per the
            // published coefficients).
            qkvo + stats + 8.0 * l + 2.0 * s * h * nnz
        }
        (Accounting::PaperCalibrated, MemAlgorithm::Coo) => {
            // int32 row + int32 col + dtype value, all scaled by heads.
            qkvo + stats + (8.0 + s) * h * nnz
        }
        (
            Accounting::PaperCalibrated,
            MemAlgorithm::Flash
            | MemAlgorithm::Local
            | MemAlgorithm::Dilated1d
            | MemAlgorithm::Dilated2d,
        ) => qkvo + stats,
        (Accounting::PaperCalibrated, MemAlgorithm::Global) => {
            // int64 global-token index vector of length g ≈ Sf·L/2.
            qkvo + stats + 8.0 * (sf / 2.0) * l
        }

        // ---- Principled accounting of this repository -------------------
        (Accounting::Principled, MemAlgorithm::SdpMasked) => {
            // Dense bitmask (1 bit per cell) + heads×L×L scores.
            qkvo + s * h * l * l + l * l / 8.0
        }
        (Accounting::Principled, MemAlgorithm::Csr) => {
            // usize offsets + u32 column indices, mask shared across heads;
            // scores are streamed, never stored.
            qkvo + stats + 8.0 * (l + 1.0) + 4.0 * nnz
        }
        (Accounting::Principled, MemAlgorithm::Coo) => {
            // u32 row + u32 col indices, shared across heads.
            qkvo + stats + 8.0 * nnz
        }
        (
            Accounting::Principled,
            MemAlgorithm::Flash
            | MemAlgorithm::Local
            | MemAlgorithm::Dilated1d
            | MemAlgorithm::Dilated2d,
        ) => qkvo + stats,
        (Accounting::Principled, MemAlgorithm::Global) => {
            // u32 global indices, g = L(1 − √(1 − Sf)) exact.
            let g = l * (1.0 - (1.0 - sf).sqrt());
            qkvo + stats + 4.0 * g
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(algo: MemAlgorithm) -> MemConfig {
        MemConfig {
            algo,
            dtype: DType::F16,
            d_total: 64,
            heads: 1,
            sf: 1e-4,
            accounting: Accounting::PaperCalibrated,
        }
    }

    #[test]
    fn bytes_monotone_in_length() {
        for algo in MemAlgorithm::ALL {
            let c = cfg(algo);
            let mut last = 0.0;
            for l in [1.0, 10.0, 1e4, 1e6, 1e8] {
                let b = bytes_required(&c, l);
                assert!(b > last, "{algo:?} at L={l}");
                last = b;
            }
        }
    }

    #[test]
    fn sparse_algorithms_grow_with_sf() {
        for algo in MemAlgorithm::ALL {
            let mut dense = cfg(algo);
            dense.sf = 0.5;
            let sparse = cfg(algo);
            let l = 1e6;
            let diff = bytes_required(&dense, l) - bytes_required(&sparse, l);
            if algo.sparsity_dependent() {
                assert!(diff > 0.0, "{algo:?} should depend on Sf");
            } else {
                assert_eq!(diff, 0.0, "{algo:?} should not depend on Sf");
            }
        }
    }

    #[test]
    fn flash_fp32_unsupported() {
        assert!(!MemAlgorithm::Flash.supports(DType::F32));
        assert!(MemAlgorithm::Flash.supports(DType::F16));
        assert!(MemAlgorithm::Csr.supports(DType::F32));
    }

    #[test]
    fn sdp_quadratic_dominates() {
        let c = cfg(MemAlgorithm::SdpMasked);
        let l = 1e6;
        let total = bytes_required(&c, l);
        let quadratic = 2.0 * l * l;
        assert!(total > quadratic);
        assert!(total < quadratic * 1.01);
    }

    #[test]
    fn principled_csr_is_leaner_than_calibrated_at_fp32() {
        // Our CSR stores u32 column indices only (4 B/nnz, no materialized
        // scores); the paper's accounting spends 2·s bytes per non-zero, so
        // at FP32 (8 B/nnz) our structures fit more. At FP16 the two
        // coincide (4 B/nnz each).
        let mut paper = cfg(MemAlgorithm::Csr);
        paper.dtype = DType::F32;
        let mut ours = paper;
        ours.accounting = Accounting::Principled;
        let l = 1e7;
        assert!(bytes_required(&ours, l) < bytes_required(&paper, l));

        let fp16_paper = cfg(MemAlgorithm::Csr);
        let mut fp16_ours = fp16_paper;
        fp16_ours.accounting = Accounting::Principled;
        let rel = (bytes_required(&fp16_ours, l) - bytes_required(&fp16_paper, l)).abs()
            / bytes_required(&fp16_paper, l);
        assert!(rel < 1e-6, "FP16 accountings should coincide (rel {rel})");
    }
}
