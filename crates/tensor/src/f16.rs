//! Software IEEE 754 binary16 ("half precision").
//!
//! The paper's capacity results (Fig. 4, Table II) and its
//! FlashAttention-compatible runs use FP16 *storage*. No FP16 hardware is
//! assumed here: [`F16`] stores the 16 raw bits and converts through `f32`
//! for arithmetic, exactly like GPU half-precision storage with
//! single-precision accumulate. Conversions implement round-to-nearest-even,
//! matching hardware `cvt` instructions.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// IEEE 754 binary16 value stored as raw bits.
///
/// 1 sign bit, 5 exponent bits (bias 15), 10 mantissa bits.
#[derive(Clone, Copy, Default, PartialEq, Eq)]
pub struct F16(pub u16);

impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0x0000);
    /// One.
    pub const ONE: F16 = F16(0x3C00);
    /// Positive infinity.
    pub const INFINITY: F16 = F16(0x7C00);
    /// Negative infinity.
    pub const NEG_INFINITY: F16 = F16(0xFC00);
    /// A quiet NaN.
    pub const NAN: F16 = F16(0x7E00);
    /// Largest finite value, `65504.0`.
    pub const MAX: F16 = F16(0x7BFF);
    /// Smallest positive normal value, `2^-14`.
    pub const MIN_POSITIVE: F16 = F16(0x0400);
    /// Size of the type in bytes — the constant the memory model uses.
    pub const BYTES: usize = 2;

    /// Convert from `f32` with round-to-nearest-even.
    pub fn from_f32(value: f32) -> F16 {
        let bits = value.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = ((bits >> 23) & 0xFF) as i32;
        let mantissa = bits & 0x007F_FFFF;

        if exp == 0xFF {
            // Infinity or NaN. Preserve NaN-ness by keeping a mantissa bit.
            return if mantissa == 0 {
                F16(sign | 0x7C00)
            } else {
                F16(sign | 0x7E00)
            };
        }

        // Unbiased exponent, then re-biased for binary16.
        let unbiased = exp - 127;
        let half_exp = unbiased + 15;

        if half_exp >= 0x1F {
            // Overflow to infinity.
            return F16(sign | 0x7C00);
        }

        if half_exp <= 0 {
            // Subnormal or underflow to zero.
            if half_exp < -10 {
                return F16(sign); // Too small: signed zero.
            }
            // Add the implicit leading 1, then shift right into subnormal
            // position with round-to-nearest-even.
            let full = mantissa | 0x0080_0000;
            let shift = (14 - half_exp) as u32; // 14..=24
            let sub = full >> shift;
            let rem = full & ((1u32 << shift) - 1);
            let half_way = 1u32 << (shift - 1);
            let rounded = match rem.cmp(&half_way) {
                Ordering::Greater => sub + 1,
                Ordering::Less => sub,
                Ordering::Equal => sub + (sub & 1), // ties to even
            };
            return F16(sign | rounded as u16);
        }

        // Normal number: keep top 10 mantissa bits, round-to-nearest-even.
        let base = (mantissa >> 13) as u16;
        let rem = mantissa & 0x1FFF;
        let rounded = match rem.cmp(&0x1000) {
            Ordering::Greater => base + 1,
            Ordering::Less => base,
            Ordering::Equal => base + (base & 1),
        };
        // Mantissa rounding may carry into the exponent; that is correct
        // (e.g. 2047/2048 rounds up to the next power of two).
        F16((sign | ((half_exp as u16) << 10)).wrapping_add(rounded))
    }

    /// Convert to `f32` (exact: every binary16 value is representable).
    pub fn to_f32(self) -> f32 {
        let sign = ((self.0 & 0x8000) as u32) << 16;
        let exp = (self.0 >> 10) & 0x1F;
        let mantissa = (self.0 & 0x03FF) as u32;

        let bits = match exp {
            0 => {
                if mantissa == 0 {
                    sign // signed zero
                } else {
                    // Subnormal: value = mantissa · 2^-24. Normalize around
                    // the highest set bit p (0..=9): value = 2^(p-24)·(1+f).
                    let p = 31 - mantissa.leading_zeros(); // 0..=9
                    let exp32 = p + 103; // (p - 24) + 127
                    let m = (mantissa ^ (1 << p)) << (23 - p);
                    sign | (exp32 << 23) | m
                }
            }
            0x1F => {
                if mantissa == 0 {
                    sign | 0x7F80_0000
                } else {
                    sign | 0x7FC0_0000 | (mantissa << 13)
                }
            }
            _ => sign | (((exp as u32) + 112) << 23) | (mantissa << 13),
        };
        f32::from_bits(bits)
    }

    /// Convert from `f64` (via `f32`; double rounding is acceptable for the
    /// storage-emulation use cases in this workspace).
    pub fn from_f64(value: f64) -> F16 {
        F16::from_f32(value as f32)
    }

    /// Convert to `f64`.
    pub fn to_f64(self) -> f64 {
        self.to_f32() as f64
    }

    /// Raw bit pattern.
    pub fn to_bits(self) -> u16 {
        self.0
    }

    /// Construct from a raw bit pattern.
    pub fn from_bits(bits: u16) -> F16 {
        F16(bits)
    }

    /// True if the value is NaN.
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7C00) == 0x7C00 && (self.0 & 0x03FF) != 0
    }

    /// True if the value is +∞ or −∞.
    pub fn is_infinite(self) -> bool {
        (self.0 & 0x7FFF) == 0x7C00
    }

    /// True if the value is finite.
    pub fn is_finite(self) -> bool {
        (self.0 & 0x7C00) != 0x7C00
    }

    /// True for subnormal values.
    pub fn is_subnormal(self) -> bool {
        (self.0 & 0x7C00) == 0 && (self.0 & 0x03FF) != 0
    }
}

impl From<f32> for F16 {
    fn from(v: f32) -> Self {
        F16::from_f32(v)
    }
}

impl From<F16> for f32 {
    fn from(v: F16) -> Self {
        v.to_f32()
    }
}

impl PartialOrd for F16 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

macro_rules! f16_binop {
    ($trait:ident, $fn:ident, $op:tt) => {
        impl $trait for F16 {
            type Output = F16;
            fn $fn(self, rhs: F16) -> F16 {
                F16::from_f32(self.to_f32() $op rhs.to_f32())
            }
        }
    };
}

f16_binop!(Add, add, +);
f16_binop!(Sub, sub, -);
f16_binop!(Mul, mul, *);
f16_binop!(Div, div, /);

impl Neg for F16 {
    type Output = F16;
    fn neg(self) -> F16 {
        F16(self.0 ^ 0x8000)
    }
}

impl fmt::Debug for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F16({})", self.to_f32())
    }
}

impl fmt::Display for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_f32(), f)
    }
}

/// Round-trip a slice of `f32` through binary16 storage in place.
///
/// Used to emulate "stored in FP16, computed in FP32" pipelines when
/// checking that kernel accuracy claims survive half-precision inputs.
pub fn quantize_f16_slice(data: &mut [f32]) {
    for v in data.iter_mut() {
        *v = F16::from_f32(*v).to_f32();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_small_integers() {
        for i in -64i32..=64 {
            let h = F16::from_f32(i as f32);
            assert_eq!(h.to_f32(), i as f32, "i={i}");
        }
    }

    #[test]
    fn known_constants() {
        assert_eq!(F16::ONE.to_f32(), 1.0);
        assert_eq!(F16::from_f32(1.0).to_bits(), 0x3C00);
        assert_eq!(F16::from_f32(-2.0).to_bits(), 0xC000);
        assert_eq!(F16::from_f32(65504.0).to_bits(), 0x7BFF);
        assert_eq!(F16::MAX.to_f32(), 65504.0);
        assert_eq!(F16::MIN_POSITIVE.to_f32(), 6.103_515_6e-5);
    }

    #[test]
    fn overflow_to_infinity() {
        assert!(F16::from_f32(65520.0).is_infinite()); // rounds past MAX
        assert!(F16::from_f32(1e9).is_infinite());
        assert!(F16::from_f32(-1e9).to_f32().is_infinite());
        assert!(F16::from_f32(-1e9).to_f32() < 0.0);
    }

    #[test]
    fn underflow_and_subnormals() {
        // Smallest subnormal is 2^-24.
        let tiny = F16::from_f32(2.0_f32.powi(-24));
        assert_eq!(tiny.to_bits(), 0x0001);
        assert_eq!(tiny.to_f32(), 2.0_f32.powi(-24));
        assert!(tiny.is_subnormal());
        // Below half the smallest subnormal: flush to zero.
        assert_eq!(F16::from_f32(2.0_f32.powi(-26)).to_bits(), 0x0000);
        // Signed zero preserved.
        assert_eq!(F16::from_f32(-0.0).to_bits(), 0x8000);
    }

    #[test]
    fn nan_and_infinity_roundtrip() {
        assert!(F16::from_f32(f32::NAN).is_nan());
        assert!(F16::from_f32(f32::INFINITY).is_infinite());
        assert!(F16::NAN.to_f32().is_nan());
        assert_eq!(F16::INFINITY.to_f32(), f32::INFINITY);
        assert_eq!(F16::NEG_INFINITY.to_f32(), f32::NEG_INFINITY);
    }

    #[test]
    fn round_to_nearest_even() {
        // 1 + 2^-11 is exactly halfway between 1.0 and the next f16 value;
        // ties-to-even keeps 1.0 (even mantissa).
        let halfway = 1.0 + 2.0_f32.powi(-11);
        assert_eq!(F16::from_f32(halfway).to_bits(), 0x3C00);
        // Slightly above halfway rounds up.
        let above = 1.0 + 2.0_f32.powi(-11) + 2.0_f32.powi(-20);
        assert_eq!(F16::from_f32(above).to_bits(), 0x3C01);
        // 1 + 3·2^-11 is halfway between 0x3C01 and 0x3C02 → even = 0x3C02.
        let halfway_odd = 1.0 + 3.0 * 2.0_f32.powi(-11);
        assert_eq!(F16::from_f32(halfway_odd).to_bits(), 0x3C02);
    }

    #[test]
    fn mantissa_rounding_carries_into_exponent() {
        // Largest value below 2.0 rounds up to exactly 2.0.
        let just_below_two = 2.0 - 2.0_f32.powi(-12);
        assert_eq!(F16::from_f32(just_below_two).to_f32(), 2.0);
    }

    #[test]
    fn arithmetic_through_f32() {
        let a = F16::from_f32(1.5);
        let b = F16::from_f32(2.25);
        assert_eq!((a + b).to_f32(), 3.75);
        assert_eq!((b - a).to_f32(), 0.75);
        assert_eq!((a * b).to_f32(), 3.375);
        assert_eq!((b / F16::from_f32(0.75)).to_f32(), 3.0);
        assert_eq!((-a).to_f32(), -1.5);
    }

    #[test]
    fn quantize_slice_is_idempotent() {
        let mut v = vec![0.1f32, 1.0, -3.7, 1234.5];
        quantize_f16_slice(&mut v);
        let once = v.clone();
        quantize_f16_slice(&mut v);
        assert_eq!(v, once);
    }

    #[test]
    fn all_bit_patterns_roundtrip_through_f32() {
        // Exhaustive: every finite f16 must convert to f32 and back exactly.
        for bits in 0u16..=u16::MAX {
            let h = F16::from_bits(bits);
            if h.is_nan() {
                assert!(F16::from_f32(h.to_f32()).is_nan());
            } else {
                let rt = F16::from_f32(h.to_f32());
                assert_eq!(rt.to_bits(), bits, "bits={bits:#06x} f32={}", h.to_f32());
            }
        }
    }

    #[test]
    fn ordering_matches_f32() {
        let vals = [-2.0f32, -0.5, 0.0, 0.25, 1.0, 100.0];
        for &a in &vals {
            for &b in &vals {
                assert_eq!(
                    F16::from_f32(a).partial_cmp(&F16::from_f32(b)),
                    a.partial_cmp(&b)
                );
            }
        }
    }
}
