//! The [`Real`] trait: the floating-point abstraction every kernel in this
//! workspace is generic over.
//!
//! Kernels are instantiated at `f32` for performance runs and at `f64` for
//! strict verification against the paper's `torch.allclose` tolerances
//! (Section V-A). Keeping the trait minimal keeps the generic kernels easy
//! for LLVM to auto-vectorize.

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Floating-point scalar used by attention kernels.
///
/// Implemented for `f32` and `f64`. All methods mirror the corresponding
/// `std` float intrinsics and are `#[inline]` so generic kernels compile to
/// the same code as hand-monomorphised ones.
pub trait Real:
    Copy
    + Clone
    + Debug
    + Display
    + PartialOrd
    + PartialEq
    + Default
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;

    /// Negative infinity — the initial value of the running softmax maximum
    /// `m` in Algorithm 1.
    fn neg_infinity() -> Self;
    /// Positive infinity.
    fn infinity() -> Self;
    /// Quiet NaN.
    fn nan() -> Self;

    /// `e^self`.
    fn exp(self) -> Self;
    /// Natural logarithm.
    fn ln(self) -> Self;
    /// `√self`.
    fn sqrt(self) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// IEEE maximum (propagates the larger value, ignores NaN like `f32::max`).
    fn max(self, other: Self) -> Self;
    /// IEEE minimum.
    fn min(self, other: Self) -> Self;
    /// Fused or unfused multiply-add; `self * a + b`.
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// Reciprocal `1 / self`.
    fn recip(self) -> Self;

    /// True if this value is NaN.
    fn is_nan(self) -> bool;
    /// True if this value is finite (neither infinite nor NaN).
    fn is_finite(self) -> bool;

    /// Lossless-ish conversion from `f64` (used for constants and test data).
    fn from_f64(v: f64) -> Self;
    /// Widening conversion to `f64` (used for comparisons and reporting).
    fn to_f64(self) -> f64;
    /// Conversion from `usize` (used for scale factors such as `1/√dk`).
    fn from_usize(v: usize) -> Self;
}

macro_rules! impl_real {
    ($t:ty) => {
        impl Real for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;

            #[inline(always)]
            fn neg_infinity() -> Self {
                <$t>::NEG_INFINITY
            }
            #[inline(always)]
            fn infinity() -> Self {
                <$t>::INFINITY
            }
            #[inline(always)]
            fn nan() -> Self {
                <$t>::NAN
            }
            #[inline(always)]
            fn exp(self) -> Self {
                self.exp()
            }
            #[inline(always)]
            fn ln(self) -> Self {
                self.ln()
            }
            #[inline(always)]
            fn sqrt(self) -> Self {
                self.sqrt()
            }
            #[inline(always)]
            fn abs(self) -> Self {
                self.abs()
            }
            #[inline(always)]
            fn max(self, other: Self) -> Self {
                self.max(other)
            }
            #[inline(always)]
            fn min(self, other: Self) -> Self {
                self.min(other)
            }
            #[inline(always)]
            fn mul_add(self, a: Self, b: Self) -> Self {
                // Plain multiply-add: `fma` is not reliably fast on all
                // targets and changes rounding vs the reference kernels.
                self * a + b
            }
            #[inline(always)]
            fn recip(self) -> Self {
                self.recip()
            }
            #[inline(always)]
            fn is_nan(self) -> bool {
                self.is_nan()
            }
            #[inline(always)]
            fn is_finite(self) -> bool {
                self.is_finite()
            }
            #[inline(always)]
            fn from_f64(v: f64) -> Self {
                v as $t
            }
            #[inline(always)]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline(always)]
            fn from_usize(v: usize) -> Self {
                v as $t
            }
        }
    };
}

impl_real!(f32);
impl_real!(f64);

/// The attention scale factor `1/√dk` from Eq. (1) of the paper.
#[inline]
pub fn attention_scale<T: Real>(dk: usize) -> T {
    T::ONE / T::from_usize(dk).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_match_std() {
        assert_eq!(<f32 as Real>::ZERO, 0.0f32);
        assert_eq!(<f64 as Real>::ONE, 1.0f64);
        assert!(<f32 as Real>::neg_infinity().is_infinite());
        assert!(<f32 as Real>::neg_infinity() < 0.0);
        assert!(<f64 as Real>::nan().is_nan());
    }

    #[test]
    fn max_ignores_nan_like_std() {
        let a: f32 = 1.0;
        assert_eq!(Real::max(a, f32::NAN), 1.0);
        assert_eq!(Real::max(f32::NAN, a), 1.0);
    }

    #[test]
    fn scale_is_inverse_sqrt() {
        let s: f64 = attention_scale(64);
        assert!((s - 0.125).abs() < 1e-15);
        let s32: f32 = attention_scale(16);
        assert!((s32 - 0.25).abs() < 1e-7);
    }

    #[test]
    fn neg_infinity_is_softmax_identity() {
        // exp(-inf) must be exactly 0 so an empty attention row stays zero.
        assert_eq!(<f64 as Real>::neg_infinity().exp(), 0.0);
        assert_eq!(<f32 as Real>::neg_infinity().exp(), 0.0);
    }

    #[test]
    fn conversions_roundtrip() {
        for v in [-1.5f64, 0.0, 3.25, 1e10] {
            assert_eq!(<f64 as Real>::from_f64(v), v);
            assert_eq!(<f64 as Real>::to_f64(v), v);
        }
        assert_eq!(<f32 as Real>::from_usize(7), 7.0f32);
    }
}
