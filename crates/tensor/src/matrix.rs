//! Row-major dense matrix.
//!
//! The only dense container the attention kernels need: `Q`, `K`, `V`, and
//! `O` are all `L×d` row-major matrices (one row per token), matching the
//! layout the paper assumes ("queries packed in a matrix Q ∈ R^{L×dk}").

use crate::real::Real;
use std::fmt;

/// Row-major dense matrix of [`Real`] scalars.
#[derive(Clone, PartialEq)]
pub struct Matrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Real> Matrix<T> {
    /// Zero-filled `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![T::ZERO; rows * cols],
        }
    }

    /// Matrix filled with a constant.
    pub fn filled(rows: usize, cols: usize, value: T) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Build from a generator `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Wrap an existing row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {rows}x{cols}",
            data.len()
        );
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline(always)]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline(always)]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline(always)]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline(always)]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element access (bounds-checked).
    #[inline(always)]
    pub fn get(&self, i: usize, j: usize) -> T {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Element assignment (bounds-checked).
    #[inline(always)]
    pub fn set(&mut self, i: usize, j: usize, v: T) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// Row `i` as a slice — the hot accessor in every kernel.
    #[inline(always)]
    pub fn row(&self, i: usize) -> &[T] {
        let start = i * self.cols;
        &self.data[start..start + self.cols]
    }

    /// Mutable row access.
    #[inline(always)]
    pub fn row_mut(&mut self, i: usize) -> &mut [T] {
        let start = i * self.cols;
        &mut self.data[start..start + self.cols]
    }

    /// The whole backing buffer.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable backing buffer.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consume into the backing buffer.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix<T> {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.set(j, i, self.get(i, j));
            }
        }
        out
    }

    /// A copy of the sub-matrix made of rows `lo..hi`.
    pub fn rows_slice(&self, lo: usize, hi: usize) -> Matrix<T> {
        assert!(lo <= hi && hi <= self.rows);
        Matrix {
            rows: hi - lo,
            cols: self.cols,
            data: self.data[lo * self.cols..hi * self.cols].to_vec(),
        }
    }

    /// A copy of the sub-matrix made of the listed rows, in the listed
    /// order (duplicates allowed) — the grouping primitive routed
    /// attention uses to pull one group's tokens into a contiguous block.
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn gather_rows(&self, idx: &[usize]) -> Matrix<T> {
        let mut data = Vec::with_capacity(idx.len() * self.cols);
        for &i in idx {
            assert!(i < self.rows, "row index {i} out of {} rows", self.rows);
            data.extend_from_slice(self.row(i));
        }
        Matrix {
            rows: idx.len(),
            cols: self.cols,
            data,
        }
    }

    /// Append one row at the bottom — the amortized-O(row) growth step a
    /// KV cache performs once per generated token.
    ///
    /// # Panics
    /// Panics if `row.len() != cols`.
    pub fn push_row(&mut self, row: &[T]) {
        assert_eq!(
            row.len(),
            self.cols,
            "row length {} does not match {} columns",
            row.len(),
            self.cols
        );
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Reserve backing storage for `additional` more rows.
    pub fn reserve_rows(&mut self, additional: usize) {
        self.data.reserve(additional * self.cols);
    }

    /// Drop every row past the first `rows` — the rollback counterpart of
    /// [`Self::push_row`]. A no-op when the matrix is already shorter.
    pub fn truncate_rows(&mut self, rows: usize) {
        if rows < self.rows {
            self.data.truncate(rows * self.cols);
            self.rows = rows;
        }
    }

    /// Map every element.
    pub fn map(&self, f: impl Fn(T) -> T) -> Matrix<T> {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Maximum absolute element-wise difference to another matrix.
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, other: &Matrix<T>) -> f64 {
        assert_eq!(self.shape(), other.shape(), "shape mismatch");
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| (a.to_f64() - b.to_f64()).abs())
            .fold(0.0, f64::max)
    }

    /// Cast to another [`Real`] type through `f64`.
    pub fn cast<U: Real>(&self) -> Matrix<U> {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| U::from_f64(v.to_f64())).collect(),
        }
    }
}

impl<T: Real> fmt::Debug for Matrix<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(6);
        for i in 0..show_rows {
            let show_cols = self.cols.min(8);
            write!(f, "  [")?;
            for j in 0..show_cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.5}", self.get(i, j))?;
            }
            if self.cols > show_cols {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > show_rows {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

/// Element-wise closeness test with `torch.allclose` semantics, the
/// comparison operator the paper's verification protocol uses (Section V-A):
/// `|a − b| ≤ atol + rtol · |b|`, with optional NaN-equals-NaN.
pub fn allclose<T: Real>(
    a: &Matrix<T>,
    b: &Matrix<T>,
    atol: f64,
    rtol: f64,
    equal_nan: bool,
) -> bool {
    if a.shape() != b.shape() {
        return false;
    }
    a.as_slice()
        .iter()
        .zip(b.as_slice().iter())
        .all(|(&x, &y)| scalar_close(x.to_f64(), y.to_f64(), atol, rtol, equal_nan))
}

/// Scalar version of [`allclose`].
#[inline]
pub fn scalar_close(a: f64, b: f64, atol: f64, rtol: f64, equal_nan: bool) -> bool {
    if a.is_nan() || b.is_nan() {
        return equal_nan && a.is_nan() && b.is_nan();
    }
    if a.is_infinite() || b.is_infinite() {
        return a == b;
    }
    (a - b).abs() <= atol + rtol * b.abs()
}

/// The paper's exact verification tolerances: `atol = 1e-8`, `rtol = 1e-5`,
/// NaN values compared equal (Section V-A).
pub fn paper_allclose<T: Real>(a: &Matrix<T>, b: &Matrix<T>) -> bool {
    allclose(a, b, 1e-8, 1e-5, true)
}

/// Index of the largest score, breaking ties toward the **lowest** index —
/// the deterministic selection rule the routed-attention scorer relies on
/// (a strict `>` comparison never displaces an earlier equal score, so the
/// result is independent of evaluation batching or thread count).
///
/// # Panics
/// Panics if `scores` is empty.
pub fn argmax<T: Real>(scores: &[T]) -> usize {
    assert!(!scores.is_empty(), "argmax of an empty slice");
    let mut best = 0;
    for (i, &s) in scores.iter().enumerate().skip(1) {
        if s > scores[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m: Matrix<f64> = Matrix::from_fn(3, 2, |i, j| (i * 10 + j) as f64);
        assert_eq!(m.shape(), (3, 2));
        assert_eq!(m.get(2, 1), 21.0);
        assert_eq!(m.row(1), &[10.0, 11.0]);
        assert_eq!(m.len(), 6);
        assert!(!m.is_empty());
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_checks_length() {
        let _ = Matrix::<f32>::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn row_mut_writes_through() {
        let mut m: Matrix<f32> = Matrix::zeros(2, 3);
        m.row_mut(1)[2] = 5.0;
        assert_eq!(m.get(1, 2), 5.0);
    }

    #[test]
    fn transpose_involution() {
        let m: Matrix<f64> = Matrix::from_fn(4, 3, |i, j| (i * 7 + j * 3) as f64);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().get(2, 3), m.get(3, 2));
    }

    #[test]
    fn rows_slice_extracts_contiguous_rows() {
        let m: Matrix<f64> = Matrix::from_fn(5, 2, |i, j| (i * 2 + j) as f64);
        let s = m.rows_slice(1, 3);
        assert_eq!(s.shape(), (2, 2));
        assert_eq!(s.row(0), m.row(1));
        assert_eq!(s.row(1), m.row(2));
    }

    #[test]
    fn push_row_grows_the_matrix() {
        let mut m: Matrix<f64> = Matrix::zeros(0, 3);
        m.reserve_rows(2);
        m.push_row(&[1.0, 2.0, 3.0]);
        m.push_row(&[4.0, 5.0, 6.0]);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        let grown = m;
        let built: Matrix<f64> = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(grown, built);
    }

    #[test]
    fn truncate_rows_rolls_back_pushes() {
        let mut m: Matrix<f64> = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let before = m.clone();
        m.push_row(&[5.0, 6.0]);
        m.truncate_rows(2);
        assert_eq!(m, before);
        m.truncate_rows(5); // longer than the matrix: no-op
        assert_eq!(m, before);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn push_row_checks_width() {
        let mut m: Matrix<f32> = Matrix::zeros(1, 3);
        m.push_row(&[1.0, 2.0]);
    }

    #[test]
    fn allclose_matches_torch_semantics() {
        let a: Matrix<f64> = Matrix::filled(2, 2, 1.0);
        let mut b = a.clone();
        // Within rtol·|b|.
        b.set(0, 0, 1.0 + 9e-6);
        assert!(paper_allclose(&a, &b));
        // Outside.
        b.set(0, 0, 1.0 + 2e-5);
        assert!(!paper_allclose(&a, &b));
    }

    #[test]
    fn allclose_asymmetry_in_rtol_reference() {
        // rtol multiplies |b| (second argument), like torch.allclose.
        assert!(scalar_close(1.0 + 9e-6, 1.0, 0.0, 1e-5, false));
        assert!(scalar_close(0.0, 1e-9, 1e-8, 0.0, false));
        assert!(!scalar_close(1e-7, 0.0, 1e-8, 1e-5, false));
    }

    #[test]
    fn allclose_nan_handling() {
        let mut a: Matrix<f64> = Matrix::zeros(1, 2);
        let mut b: Matrix<f64> = Matrix::zeros(1, 2);
        a.set(0, 0, f64::NAN);
        b.set(0, 0, f64::NAN);
        assert!(allclose(&a, &b, 1e-8, 1e-5, true));
        assert!(!allclose(&a, &b, 1e-8, 1e-5, false));
    }

    #[test]
    fn allclose_infinity() {
        let mut a: Matrix<f64> = Matrix::zeros(1, 1);
        let mut b: Matrix<f64> = Matrix::zeros(1, 1);
        a.set(0, 0, f64::INFINITY);
        b.set(0, 0, f64::INFINITY);
        assert!(allclose(&a, &b, 1e-8, 1e-5, false));
        b.set(0, 0, f64::NEG_INFINITY);
        assert!(!allclose(&a, &b, 1e-8, 1e-5, false));
    }

    #[test]
    fn allclose_shape_mismatch_is_false() {
        let a: Matrix<f32> = Matrix::zeros(2, 2);
        let b: Matrix<f32> = Matrix::zeros(2, 3);
        assert!(!allclose(&a, &b, 1.0, 1.0, true));
    }

    #[test]
    fn cast_roundtrip_f32_f64() {
        let m: Matrix<f32> = Matrix::from_fn(3, 3, |i, j| (i as f32) - 0.5 * (j as f32));
        let back: Matrix<f32> = m.cast::<f64>().cast::<f32>();
        assert_eq!(m, back);
    }

    #[test]
    fn max_abs_diff_reports_worst_element() {
        let a: Matrix<f64> = Matrix::zeros(2, 2);
        let mut b = a.clone();
        b.set(1, 1, -0.25);
        assert_eq!(a.max_abs_diff(&b), 0.25);
    }

    #[test]
    fn gather_rows_copies_in_listed_order() {
        let m: Matrix<f64> = Matrix::from_fn(4, 2, |i, j| (i * 2 + j) as f64);
        let g = m.gather_rows(&[3, 0, 3]);
        assert_eq!(g.shape(), (3, 2));
        assert_eq!(g.row(0), m.row(3));
        assert_eq!(g.row(1), m.row(0));
        assert_eq!(g.row(2), m.row(3));
        assert_eq!(m.gather_rows(&[]).shape(), (0, 2));
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn gather_rows_checks_bounds() {
        let m: Matrix<f32> = Matrix::zeros(2, 2);
        let _ = m.gather_rows(&[2]);
    }

    #[test]
    fn argmax_breaks_ties_toward_the_lowest_index() {
        assert_eq!(argmax(&[1.0f64, 3.0, 2.0]), 1);
        assert_eq!(argmax(&[2.0f64, 2.0, 2.0]), 0);
        assert_eq!(argmax(&[-1.0f32, -1.0, 0.5, 0.5]), 2);
        assert_eq!(argmax(&[7.0f64]), 0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn argmax_rejects_empty() {
        let _ = argmax::<f64>(&[]);
    }
}
