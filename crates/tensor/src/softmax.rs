//! Online (streaming) softmax — the numerical core of Algorithm 1.
//!
//! The paper's kernels maintain, per attention row, a running maximum `m`, a
//! running normalizer `l`, and a normalized output accumulator `O`, updated
//! once per pulled neighbor (Milakov & Gimelshein 2018; Dao et al. 2022).
//! [`OnlineSoftmaxState`] owns `m` and `l`; the output rescaling factors are
//! returned so the caller can fold its `d`-dimensional accumulator.
//!
//! Two properties make kernel composition work, and both are tested here:
//!
//! 1. **Stream equivalence** — feeding scores one at a time produces the same
//!    weights as materializing the whole row and applying standard softmax.
//! 2. **Merge associativity** — two disjoint streams can be processed
//!    independently and merged; this is why the paper can run `local` and
//!    `global` kernels sequentially and obtain exact Longformer attention.

use crate::real::Real;

/// Per-row running softmax statistics `(m, l)`.
///
/// `m` starts at −∞ and `l` at 0, matching the initialization in Algorithm 1.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OnlineSoftmaxState<T> {
    /// Running maximum of all scores seen so far.
    pub m: T,
    /// Running sum of `exp(score − m)` over all scores seen so far.
    pub l: T,
}

impl<T: Real> Default for OnlineSoftmaxState<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// Rescaling factors produced by one online-softmax update.
///
/// After an update, the caller folds its accumulator as
/// `O ← old_scale · O + new_weight · V` and, at finalize time, divides by `l`
/// — or uses the normalized form `O ← (old_scale · l_old · O + new_weight · V)/l_new`
/// exactly as written in Algorithm 1. Both are supported; see
/// [`OnlineSoftmaxState::update`].
#[derive(Clone, Copy, Debug)]
pub struct SoftmaxUpdate<T> {
    /// `exp(m_old − m_new)`: multiply the existing accumulator by this.
    pub old_scale: T,
    /// `exp(score − m_new)`: weight of the newly pulled value vector.
    pub new_weight: T,
}

impl<T: Real> OnlineSoftmaxState<T> {
    /// Fresh state: `m = −∞`, `l = 0`.
    #[inline]
    pub fn new() -> Self {
        OnlineSoftmaxState {
            m: T::neg_infinity(),
            l: T::ZERO,
        }
    }

    /// True if no score has been absorbed yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.l == T::ZERO && self.m == T::neg_infinity()
    }

    /// Absorb one score `w`; returns the rescaling factors for the caller's
    /// output accumulator. Implements the inner-loop recurrence of
    /// Algorithm 1:
    ///
    /// ```text
    /// m_new = max(m, w)
    /// l_new = l · exp(m − m_new) + exp(w − m_new)
    /// ```
    #[inline(always)]
    pub fn update(&mut self, w: T) -> SoftmaxUpdate<T> {
        let m_new = self.m.max(w);
        if m_new == T::neg_infinity() {
            // Running max and new score are both −∞ (fully masked so far):
            // −∞ − −∞ would be NaN, but semantically nothing contributes.
            return SoftmaxUpdate {
                old_scale: T::ONE,
                new_weight: T::ZERO,
            };
        }
        // exp(−∞ − m_new) = 0 handles the very first update: old state
        // contributes nothing.
        let old_scale = (self.m - m_new).exp();
        let new_weight = (w - m_new).exp();
        self.l = self.l * old_scale + new_weight;
        self.m = m_new;
        SoftmaxUpdate {
            old_scale,
            new_weight,
        }
    }

    /// Merge another state produced from a *disjoint* score stream.
    ///
    /// Returns the scale factors to apply to the two output accumulators:
    /// `O = scale_self · O_self + scale_other · O_other` (for *unnormalized*
    /// accumulators; for Algorithm-1-style normalized accumulators the
    /// factors are `scale · l / l_merged`, see [`merge_normalized`]).
    #[inline]
    pub fn merge(&mut self, other: &OnlineSoftmaxState<T>) -> (T, T) {
        if other.is_empty() {
            return (T::ONE, T::ZERO);
        }
        if self.is_empty() {
            *self = *other;
            return (T::ZERO, T::ONE);
        }
        let m_new = self.m.max(other.m);
        let scale_self = (self.m - m_new).exp();
        let scale_other = (other.m - m_new).exp();
        self.l = self.l * scale_self + other.l * scale_other;
        self.m = m_new;
        (scale_self, scale_other)
    }
}

/// Merge two (state, normalized-accumulator-row) pairs in place:
/// `acc_a ← (l_a·scale_a·acc_a + l_b·scale_b·acc_b) / l_merged`.
///
/// This is the composition rule that lets sequential kernel calls (e.g.
/// `local` then `global`) produce exact attention over the union mask.
pub fn merge_normalized<T: Real>(
    state_a: &mut OnlineSoftmaxState<T>,
    acc_a: &mut [T],
    state_b: &OnlineSoftmaxState<T>,
    acc_b: &[T],
) {
    debug_assert_eq!(acc_a.len(), acc_b.len());
    let l_a = state_a.l;
    let l_b = state_b.l;
    let (scale_a, scale_b) = state_a.merge(state_b);
    let l_merged = state_a.l;
    if l_merged == T::ZERO {
        return; // both empty: accumulators stay zero
    }
    let ca = l_a * scale_a / l_merged;
    let cb = l_b * scale_b / l_merged;
    for (a, &b) in acc_a.iter_mut().zip(acc_b.iter()) {
        *a = *a * ca + b * cb;
    }
}

/// Standard (two-pass, numerically stabilized) softmax of a score slice.
/// Reference implementation for tests and the dense SDP baseline.
///
/// All three passes are explicitly 4-wide unrolled. The max pass is exact
/// under any association, and the normalize pass is elementwise, so both
/// match the scalar loops bitwise; the normalizer sum uses four
/// independent lanes combined in the fixed order `(l0+l1)+(l2+l3)+tail`,
/// which reassociates relative to a strictly sequential sum but is
/// deterministic for a given length (the property the replay tests pin).
///
/// An all-`−∞` row (fully masked) produces all zeros, matching the masked
/// SDP convention the paper verifies against.
pub fn softmax_slice<T: Real>(scores: &[T], out: &mut [T]) {
    debug_assert_eq!(scores.len(), out.len());
    let split = scores.len() & !3;
    let (s_main, s_tail) = scores.split_at(split);
    let mut m4 = [T::neg_infinity(); 4];
    for c in s_main.chunks_exact(4) {
        m4[0] = m4[0].max(c[0]);
        m4[1] = m4[1].max(c[1]);
        m4[2] = m4[2].max(c[2]);
        m4[3] = m4[3].max(c[3]);
    }
    let mut m = (m4[0].max(m4[1])).max(m4[2].max(m4[3]));
    for &s in s_tail {
        m = m.max(s);
    }
    if m == T::neg_infinity() {
        for o in out.iter_mut() {
            *o = T::ZERO;
        }
        return;
    }
    let (o_main, o_tail) = out.split_at_mut(split);
    let mut l4 = [T::ZERO; 4];
    for (co, cs) in o_main.chunks_exact_mut(4).zip(s_main.chunks_exact(4)) {
        let e0 = (cs[0] - m).exp();
        let e1 = (cs[1] - m).exp();
        let e2 = (cs[2] - m).exp();
        let e3 = (cs[3] - m).exp();
        co[0] = e0;
        co[1] = e1;
        co[2] = e2;
        co[3] = e3;
        l4[0] += e0;
        l4[1] += e1;
        l4[2] += e2;
        l4[3] += e3;
    }
    let mut l_tail = T::ZERO;
    for (o, &s) in o_tail.iter_mut().zip(s_tail.iter()) {
        let e = (s - m).exp();
        *o = e;
        l_tail += e;
    }
    let inv = ((l4[0] + l4[1]) + (l4[2] + l4[3]) + l_tail).recip();
    let (o_main, o_tail) = out.split_at_mut(split);
    for co in o_main.chunks_exact_mut(4) {
        co[0] *= inv;
        co[1] *= inv;
        co[2] *= inv;
        co[3] *= inv;
    }
    for o in o_tail.iter_mut() {
        *o *= inv;
    }
}

/// Softmax weights computed by streaming through [`OnlineSoftmaxState`] —
/// used in tests to validate the streaming recurrence itself.
///
/// The stream is consumed in blocks of four using the same merge algebra
/// as [`OnlineSoftmaxState::merge`]: each block contributes its local max
/// and `Σ exp(sᵢ − m_new)` with **one** rescale of the running normalizer,
/// so a block costs 5 `exp`s instead of the scalar recurrence's 8. The
/// block sum is combined in the fixed order `(e0+e1)+(e2+e3)`, making the
/// result deterministic for a given length.
pub fn online_softmax_slice<T: Real>(scores: &[T], out: &mut [T]) {
    debug_assert_eq!(scores.len(), out.len());
    let split = scores.len() & !3;
    let (s_main, s_tail) = scores.split_at(split);
    let mut state: OnlineSoftmaxState<T> = OnlineSoftmaxState::new();
    // First pass: stream the scores, remembering nothing but (m, l).
    for c in s_main.chunks_exact(4) {
        let m_new = state.m.max((c[0].max(c[1])).max(c[2].max(c[3])));
        if m_new == T::neg_infinity() {
            // Fully masked block on a fully masked prefix: nothing
            // contributes (and −∞ − −∞ would be NaN).
            continue;
        }
        let old_scale = (state.m - m_new).exp();
        let e0 = (c[0] - m_new).exp();
        let e1 = (c[1] - m_new).exp();
        let e2 = (c[2] - m_new).exp();
        let e3 = (c[3] - m_new).exp();
        state.l = state.l * old_scale + ((e0 + e1) + (e2 + e3));
        state.m = m_new;
    }
    for &s in s_tail {
        state.update(s);
    }
    if state.l == T::ZERO {
        for o in out.iter_mut() {
            *o = T::ZERO;
        }
        return;
    }
    // Weights are exp(s − m)/l.
    let inv = state.l.recip();
    let m = state.m;
    let (o_main, o_tail) = out.split_at_mut(split);
    for (co, cs) in o_main.chunks_exact_mut(4).zip(s_main.chunks_exact(4)) {
        co[0] = (cs[0] - m).exp() * inv;
        co[1] = (cs[1] - m).exp() * inv;
        co[2] = (cs[2] - m).exp() * inv;
        co[3] = (cs[3] - m).exp() * inv;
    }
    for (o, &s) in o_tail.iter_mut().zip(s_tail.iter()) {
        *o = (s - m).exp() * inv;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_slices_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (&x, &y)) in a.iter().zip(b.iter()).enumerate() {
            assert!((x - y).abs() <= tol, "index {i}: {x} vs {y} (tol {tol})");
        }
    }

    #[test]
    fn online_equals_standard() {
        let scores = vec![0.3, -1.2, 4.5, 0.0, 2.2, -0.7];
        let mut std_out = vec![0.0; scores.len()];
        let mut onl_out = vec![0.0; scores.len()];
        softmax_slice(&scores, &mut std_out);
        online_softmax_slice(&scores, &mut onl_out);
        assert_slices_close(&std_out, &onl_out, 1e-14);
    }

    #[test]
    fn softmax_sums_to_one() {
        let scores = vec![1.0f64, 2.0, 3.0, -10.0];
        let mut out = vec![0.0; 4];
        softmax_slice(&scores, &mut out);
        let s: f64 = out.iter().sum();
        assert!((s - 1.0).abs() < 1e-14);
        assert!(out.iter().all(|&w| w > 0.0));
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let scores = vec![1.0f64, 2.0, 3.0];
        let shifted: Vec<f64> = scores.iter().map(|s| s + 100.0).collect();
        let mut a = vec![0.0; 3];
        let mut b = vec![0.0; 3];
        softmax_slice(&scores, &mut a);
        softmax_slice(&shifted, &mut b);
        assert_slices_close(&a, &b, 1e-13);
    }

    #[test]
    fn fully_masked_row_is_zero() {
        let scores = vec![f64::NEG_INFINITY; 5];
        let mut out = vec![1.0; 5];
        softmax_slice(&scores, &mut out);
        assert_eq!(out, vec![0.0; 5]);
        let mut out2 = vec![1.0; 5];
        online_softmax_slice(&scores, &mut out2);
        assert_eq!(out2, vec![0.0; 5]);
    }

    #[test]
    fn extreme_scores_do_not_overflow() {
        let scores = vec![1000.0f64, 1001.0, 999.0];
        let mut out = vec![0.0; 3];
        softmax_slice(&scores, &mut out);
        assert!(out.iter().all(|w| w.is_finite()));
        let s: f64 = out.iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn update_tracks_max_and_normalizer() {
        let mut st: OnlineSoftmaxState<f64> = OnlineSoftmaxState::new();
        assert!(st.is_empty());
        st.update(2.0);
        assert_eq!(st.m, 2.0);
        assert!((st.l - 1.0).abs() < 1e-15);
        st.update(5.0);
        assert_eq!(st.m, 5.0);
        // l = exp(2-5) + exp(0)
        assert!((st.l - ((-3.0f64).exp() + 1.0)).abs() < 1e-15);
        assert!(!st.is_empty());
    }

    #[test]
    fn first_update_scales_old_accumulator_to_zero_weight() {
        let mut st: OnlineSoftmaxState<f64> = OnlineSoftmaxState::new();
        let u = st.update(3.0);
        assert_eq!(u.old_scale, 0.0); // exp(-inf - 3) = 0
        assert_eq!(u.new_weight, 1.0); // exp(3 - 3) = 1
    }

    #[test]
    fn merge_matches_single_stream() {
        let scores = vec![0.5, -2.0, 3.0, 1.5, -0.5, 2.5, 0.0];
        let (left, right) = scores.split_at(3);

        let mut single: OnlineSoftmaxState<f64> = OnlineSoftmaxState::new();
        for &s in &scores {
            single.update(s);
        }

        let mut a: OnlineSoftmaxState<f64> = OnlineSoftmaxState::new();
        for &s in left {
            a.update(s);
        }
        let mut b: OnlineSoftmaxState<f64> = OnlineSoftmaxState::new();
        for &s in right {
            b.update(s);
        }
        a.merge(&b);

        assert!((a.m - single.m).abs() < 1e-15);
        assert!((a.l - single.l).abs() < 1e-12);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a: OnlineSoftmaxState<f64> = OnlineSoftmaxState::new();
        a.update(1.0);
        a.update(2.0);
        let snapshot = a;
        let empty = OnlineSoftmaxState::new();
        let (sa, sb) = a.merge(&empty);
        assert_eq!(a, snapshot);
        assert_eq!((sa, sb), (1.0, 0.0));

        let mut e: OnlineSoftmaxState<f64> = OnlineSoftmaxState::new();
        let (sa, sb) = e.merge(&snapshot);
        assert_eq!(e, snapshot);
        assert_eq!((sa, sb), (0.0, 1.0));
    }

    #[test]
    fn merge_normalized_composes_attention_outputs() {
        // Simulate two disjoint neighbor streams with 2-dim values and check
        // the merged normalized accumulator equals the full-row softmax
        // combination.
        let scores = [1.0f64, -0.5, 2.0, 0.3];
        let values = [[1.0, 0.0], [0.0, 1.0], [2.0, -1.0], [0.5, 0.5]];

        // Full reference.
        let mut weights = vec![0.0; 4];
        softmax_slice(&scores, &mut weights);
        let expected = [
            weights
                .iter()
                .zip(values.iter())
                .map(|(w, v)| w * v[0])
                .sum::<f64>(),
            weights
                .iter()
                .zip(values.iter())
                .map(|(w, v)| w * v[1])
                .sum::<f64>(),
        ];

        // Two halves, each with a normalized accumulator maintained exactly
        // as Algorithm 1 writes it: O ← (l·exp(m−m_new)·O + exp(w−m_new)·V)/l_new.
        let run = |idx: &[usize]| {
            let mut st: OnlineSoftmaxState<f64> = OnlineSoftmaxState::new();
            let mut acc = [0.0f64; 2];
            for &k in idx {
                let l_old = st.l;
                let u = st.update(scores[k]);
                let l_new = st.l;
                for (a, v) in acc.iter_mut().zip(values[k].iter()) {
                    *a = (l_old * u.old_scale * *a + u.new_weight * v) / l_new;
                }
            }
            (st, acc)
        };

        let (mut st_a, mut acc_a) = run(&[0, 1]);
        let (st_b, acc_b) = run(&[2, 3]);
        merge_normalized(&mut st_a, &mut acc_a, &st_b, &acc_b);

        for (got, want) in acc_a.iter().zip(expected.iter()) {
            assert!((got - want).abs() < 1e-12, "{got} vs {want}");
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Streaming softmax equals two-pass softmax for arbitrary scores.
        #[test]
        fn online_matches_standard(scores in proptest::collection::vec(-50.0f64..50.0, 1..64)) {
            let mut std_out = vec![0.0; scores.len()];
            let mut onl_out = vec![0.0; scores.len()];
            softmax_slice(&scores, &mut std_out);
            online_softmax_slice(&scores, &mut onl_out);
            for (a, b) in std_out.iter().zip(onl_out.iter()) {
                prop_assert!((a - b).abs() < 1e-12);
            }
        }

        /// Merging any split of a stream equals processing it whole.
        #[test]
        fn merge_is_split_invariant(
            scores in proptest::collection::vec(-30.0f64..30.0, 2..48),
            split_frac in 0.0f64..1.0,
        ) {
            let split = ((scores.len() as f64 * split_frac) as usize).min(scores.len());
            let mut whole: OnlineSoftmaxState<f64> = OnlineSoftmaxState::new();
            for &s in &scores { whole.update(s); }

            let mut a: OnlineSoftmaxState<f64> = OnlineSoftmaxState::new();
            for &s in &scores[..split] { a.update(s); }
            let mut b: OnlineSoftmaxState<f64> = OnlineSoftmaxState::new();
            for &s in &scores[split..] { b.update(s); }
            a.merge(&b);

            prop_assert!((a.m - whole.m).abs() < 1e-12);
            prop_assert!((a.l - whole.l).abs() / whole.l.max(1.0) < 1e-12);
        }

        /// Bitwise regression guard for the unrolled two-pass softmax: the
        /// normalizer must combine its four lanes and tail in exactly the
        /// documented order `(l0+l1)+(l2+l3)+tail`, and the max/normalize
        /// passes must stay elementwise-exact. A rewrite that reassociates
        /// the sum changes the default-path bits and fails here.
        #[test]
        fn softmax_slice_bitwise_matches_pinned_order(
            scores in proptest::collection::vec(-30.0f64..30.0, 1..80),
        ) {
            let mut got = vec![0.0; scores.len()];
            softmax_slice(&scores, &mut got);

            let m = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let split = scores.len() & !3;
            let mut lanes = [0.0f64; 4];
            for j in (0..split).step_by(4) {
                for lane in 0..4 {
                    lanes[lane] += (scores[j + lane] - m).exp();
                }
            }
            let mut tail = 0.0;
            for &s in &scores[split..] {
                tail += (s - m).exp();
            }
            let inv = ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]) + tail).recip();
            for (i, &s) in scores.iter().enumerate() {
                let want = (s - m).exp() * inv;
                prop_assert!(
                    got[i].to_bits() == want.to_bits(),
                    "index {}: {} vs {} differ in bits", i, got[i], want
                );
            }
        }

        /// Bitwise regression guard for the block-of-4 streaming softmax:
        /// the recurrence must fold whole blocks with one rescale and the
        /// fixed intra-block sum `(e0+e1)+(e2+e3)`, then finish the tail
        /// with the scalar recurrence.
        #[test]
        fn online_softmax_bitwise_matches_pinned_recurrence(
            scores in proptest::collection::vec(-30.0f64..30.0, 1..80),
        ) {
            let mut got = vec![0.0; scores.len()];
            online_softmax_slice(&scores, &mut got);

            let split = scores.len() & !3;
            let (mut m, mut l) = (f64::NEG_INFINITY, 0.0f64);
            for j in (0..split).step_by(4) {
                let c = &scores[j..j + 4];
                let m_new = m.max((c[0].max(c[1])).max(c[2].max(c[3])));
                let e: Vec<f64> = c.iter().map(|&s| (s - m_new).exp()).collect();
                l = l * (m - m_new).exp() + ((e[0] + e[1]) + (e[2] + e[3]));
                m = m_new;
            }
            for &s in &scores[split..] {
                let m_new = m.max(s);
                l = l * (m - m_new).exp() + (s - m_new).exp();
                m = m_new;
            }
            let inv = l.recip();
            for (i, &s) in scores.iter().enumerate() {
                let want = (s - m).exp() * inv;
                prop_assert!(
                    got[i].to_bits() == want.to_bits(),
                    "index {}: {} vs {} differ in bits", i, got[i], want
                );
            }
        }

        /// l is always positive once a score is absorbed, and m is the true max.
        #[test]
        fn invariants_hold(scores in proptest::collection::vec(-100.0f64..100.0, 1..32)) {
            let mut st: OnlineSoftmaxState<f64> = OnlineSoftmaxState::new();
            for &s in &scores { st.update(s); }
            let true_max = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert_eq!(st.m, true_max);
            prop_assert!(st.l > 0.0);
            prop_assert!(st.l <= scores.len() as f64 + 1e-9);
        }
    }
}
