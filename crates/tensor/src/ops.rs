//! Dense linear-algebra helpers used by the baselines and examples.
//!
//! Only what the attention pipeline needs: dot products, `QKᵀ`-style
//! products, and a cache-blocked general matmul for the projection layers in
//! the examples. The inner loops are written as slice iterator chains so
//! LLVM auto-vectorizes them (see the workspace's HPC guide notes on bounds
//! checks).

use crate::matrix::Matrix;
use crate::real::Real;

/// Dot product of two equal-length slices — the innermost operation of every
/// attention kernel (one per mask non-zero).
///
/// Written as a chunked loop over four independent accumulators: strict
/// IEEE semantics forbid LLVM from reassociating a single-accumulator
/// reduction, so the naive iterator sum compiles to a serial add chain.
/// Independent lanes break that dependency, letting the loop vectorize
/// (and contract each lane's multiply-add into a hardware FMA on targets
/// that have one). The lanes combine once at the end, so the summation
/// order — hence the result — is deterministic for a given length.
#[inline(always)]
pub fn dot<T: Real>(a: &[T], b: &[T]) -> T {
    debug_assert_eq!(a.len(), b.len());
    let split = a.len() & !3;
    let (a_main, a_tail) = a.split_at(split);
    let (b_main, b_tail) = b.split_at(split);
    let mut acc = [T::ZERO; 4];
    for (ca, cb) in a_main.chunks_exact(4).zip(b_main.chunks_exact(4)) {
        acc[0] += ca[0] * cb[0];
        acc[1] += ca[1] * cb[1];
        acc[2] += ca[2] * cb[2];
        acc[3] += ca[3] * cb[3];
    }
    let mut tail = T::ZERO;
    for (&x, &y) in a_tail.iter().zip(b_tail.iter()) {
        tail += x * y;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

/// `out += w · v` — fold one weighted value row into an accumulator.
///
/// Deliberately left as a plain iterator loop: each element is touched by
/// exactly one independent multiply-add, so LLVM already vectorizes the
/// whole loop. A hand-unrolled 4-chunk variant was measured *slower* here
/// (it broke the vectorizer's pattern and fell back to scalar code, a
/// 1.5× regression on engine launches); explicit lane unrolls are
/// reserved for reductions ([`dot`], the softmax normalizer) where strict
/// IEEE ordering is what blocks auto-vectorization.
#[inline(always)]
pub fn axpy<T: Real>(out: &mut [T], w: T, v: &[T]) {
    debug_assert_eq!(out.len(), v.len());
    for (o, &x) in out.iter_mut().zip(v.iter()) {
        *o += w * x;
    }
}

/// `out = s · out + w · v` — the fused rescale-and-accumulate step of
/// Algorithm 1's output update (the per-edge inner loop of every graph
/// kernel).
///
/// Elementwise like [`axpy`] and kept in iterator form for the same
/// reason: the loop auto-vectorizes as written, and hand-unrolling it was
/// measured to defeat the vectorizer.
#[inline(always)]
pub fn scale_axpy<T: Real>(out: &mut [T], s: T, w: T, v: &[T]) {
    debug_assert_eq!(out.len(), v.len());
    for (o, &x) in out.iter_mut().zip(v.iter()) {
        *o = *o * s + w * x;
    }
}

/// `A · Bᵀ` where both are row-major — computes `QKᵀ` without materializing
/// a transpose (rows of `B` are the keys).
pub fn matmul_nt<T: Real>(a: &Matrix<T>, b: &Matrix<T>) -> Matrix<T> {
    assert_eq!(a.cols(), b.cols(), "inner dimensions differ");
    let mut out = Matrix::zeros(a.rows(), b.rows());
    for i in 0..a.rows() {
        let ai = a.row(i);
        let oi = out.row_mut(i);
        for (j, o) in oi.iter_mut().enumerate() {
            *o = dot(ai, b.row(j));
        }
    }
    out
}

/// Cache-blocked `A · B` (row-major × row-major).
pub fn matmul<T: Real>(a: &Matrix<T>, b: &Matrix<T>) -> Matrix<T> {
    assert_eq!(a.cols(), b.rows(), "inner dimensions differ");
    let (m, k) = a.shape();
    let n = b.cols();
    let mut out = Matrix::zeros(m, n);
    // i-k-j loop order: streams through B and OUT rows contiguously.
    const KB: usize = 64;
    for kk in (0..k).step_by(KB) {
        let k_hi = (kk + KB).min(k);
        for i in 0..m {
            let ai = a.row(i);
            for (off, &aip) in ai[kk..k_hi].iter().enumerate() {
                if aip == T::ZERO {
                    continue;
                }
                let bp = b.row(kk + off);
                let oi = out.row_mut(i);
                for (o, &x) in oi.iter_mut().zip(bp.iter()) {
                    *o += aip * x;
                }
            }
        }
    }
    out
}

/// Scale every element: `A · s`.
pub fn scale<T: Real>(a: &Matrix<T>, s: T) -> Matrix<T> {
    a.map(|v| v * s)
}

/// `out += Σ_j weights[j] · v[j]` over **all** rows of `v` — the score·V
/// accumulation of the SDP baseline's second pass, blocked over the
/// transposed access pattern: four value rows are folded per sweep of the
/// output row, so the accumulator is read and written once per *four*
/// weights instead of once per weight (¼ the output-row traffic, and four
/// independent multiplies per element for the FMA pipes).
///
/// Additions per output element happen in ascending-`j`, left-to-right
/// order — exactly the order of applying [`axpy`] for `j = 0, 1, 2, …` —
/// so the result is bitwise identical to the unblocked loop.
pub fn weighted_sum_into<T: Real>(out: &mut [T], weights: &[T], v: &Matrix<T>) {
    assert_eq!(weights.len(), v.rows(), "one weight per value row");
    debug_assert_eq!(out.len(), v.cols());
    let blocks = weights.len() & !3;
    for j in (0..blocks).step_by(4) {
        let (w0, w1, w2, w3) = (weights[j], weights[j + 1], weights[j + 2], weights[j + 3]);
        let (v0, v1, v2, v3) = (v.row(j), v.row(j + 1), v.row(j + 2), v.row(j + 3));
        for (i, o) in out.iter_mut().enumerate() {
            *o = *o + w0 * v0[i] + w1 * v1[i] + w2 * v2[i] + w3 * v3[i];
        }
    }
    for (j, &w) in weights.iter().enumerate().skip(blocks) {
        axpy(out, w, v.row(j));
    }
}

/// Row-wise weighted sum: `out[i] = Σ_j weights[i][j] · v[j]` for a dense
/// weight matrix — the second matmul of the SDP baseline, built on the
/// blocked [`weighted_sum_into`] accumulation.
pub fn weighted_rows<T: Real>(weights: &Matrix<T>, v: &Matrix<T>) -> Matrix<T> {
    assert_eq!(weights.cols(), v.rows(), "inner dimensions differ");
    let mut out = Matrix::zeros(weights.rows(), v.cols());
    for i in 0..weights.rows() {
        weighted_sum_into(out.row_mut(i), weights.row(i), v);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        let a = [1.0f64, 2.0, 3.0];
        let b = [4.0f64, -5.0, 6.0];
        assert_eq!(dot(&a, &b), 12.0);
        let empty: [f64; 0] = [];
        assert_eq!(dot(&empty, &empty), 0.0);
    }

    #[test]
    fn dot_handles_every_chunk_remainder() {
        // Lengths 0..=9 cover main-loop counts 0..2 with tails 0..3.
        for len in 0..10usize {
            let a: Vec<f64> = (0..len).map(|i| (i as f64 + 1.0) * 0.5).collect();
            let b: Vec<f64> = (0..len).map(|i| (i as f64) - 2.5).collect();
            let naive: f64 = a.iter().zip(b.iter()).map(|(&x, &y)| x * y).sum();
            let got = dot(&a, &b);
            assert!((got - naive).abs() < 1e-12, "len={len}: {got} vs {naive}");
        }
    }

    #[test]
    fn dot_is_deterministic_per_length() {
        let a: Vec<f32> = (0..67).map(|i| ((i * 37) % 19) as f32 * 0.3).collect();
        let b: Vec<f32> = (0..67).map(|i| ((i * 11) % 23) as f32 - 9.0).collect();
        assert_eq!(dot(&a, &b), dot(&a, &b));
    }

    #[test]
    fn axpy_accumulates() {
        let mut out = [1.0f64, 1.0];
        axpy(&mut out, 2.0, &[3.0, -1.0]);
        assert_eq!(out, [7.0, -1.0]);
    }

    #[test]
    fn scale_axpy_matches_manual() {
        let mut out = [2.0f64, 4.0];
        scale_axpy(&mut out, 0.5, 3.0, &[1.0, 2.0]);
        assert_eq!(out, [4.0, 8.0]);
    }

    #[test]
    fn matmul_identity() {
        let a: Matrix<f64> = Matrix::from_fn(3, 3, |i, j| (i * 3 + j) as f64);
        let id: Matrix<f64> = Matrix::from_fn(3, 3, |i, j| if i == j { 1.0 } else { 0.0 });
        assert_eq!(matmul(&a, &id), a);
        assert_eq!(matmul(&id, &a), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_vec(2, 3, vec![1.0f64, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0f64, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = matmul(&a, &b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_nt_equals_matmul_with_transpose() {
        let a: Matrix<f64> = Matrix::from_fn(4, 6, |i, j| (i as f64) - 0.3 * (j as f64));
        let b: Matrix<f64> = Matrix::from_fn(5, 6, |i, j| 0.1 * (i as f64) + (j as f64));
        let via_nt = matmul_nt(&a, &b);
        let via_t = matmul(&a, &b.transpose());
        assert!(via_nt.max_abs_diff(&via_t) < 1e-12);
    }

    #[test]
    fn blocked_matmul_matches_naive_on_odd_sizes() {
        // Sizes chosen to not divide the 64-wide k-block.
        let a: Matrix<f64> = Matrix::from_fn(7, 129, |i, j| ((i * 31 + j * 17) % 13) as f64 - 6.0);
        let b: Matrix<f64> = Matrix::from_fn(129, 5, |i, j| ((i * 7 + j * 29) % 11) as f64 - 5.0);
        let blocked = matmul(&a, &b);
        // Naive triple loop.
        let mut naive: Matrix<f64> = Matrix::zeros(7, 5);
        for i in 0..7 {
            for j in 0..5 {
                let mut s = 0.0;
                for p in 0..129 {
                    s += a.get(i, p) * b.get(p, j);
                }
                naive.set(i, j, s);
            }
        }
        assert!(blocked.max_abs_diff(&naive) < 1e-9);
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn mismatched_shapes_panic() {
        let a: Matrix<f32> = Matrix::zeros(2, 3);
        let b: Matrix<f32> = Matrix::zeros(4, 2);
        let _ = matmul(&a, &b);
    }
}

/// Bitwise regression guards for the unrolled kernels: each property pins
/// the exact floating-point evaluation order the doc comments promise, so
/// a future rewrite that silently reassociates a reduction (changing the
/// default-path bits, and with them every recorded replay) fails here
/// instead of in a downstream determinism test.
#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use proptest::test_runner::TestCaseError;

    fn assert_bits_eq(got: &[f64], want: &[f64]) -> Result<(), TestCaseError> {
        for (i, (g, w)) in got.iter().zip(want.iter()).enumerate() {
            prop_assert!(
                g.to_bits() == w.to_bits(),
                "index {}: {} vs {} differ in bits",
                i,
                g,
                w
            );
        }
        Ok(())
    }

    proptest! {
        /// `dot` combines its four lanes and tail in exactly the documented
        /// order `(l0+l1)+(l2+l3)+tail`.
        #[test]
        fn dot_bitwise_matches_pinned_lane_order(
            pairs in proptest::collection::vec((-10.0f64..10.0, -10.0f64..10.0), 0..67),
        ) {
            let a: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let b: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            let split = a.len() & !3;
            let mut lanes = [0.0f64; 4];
            for j in (0..split).step_by(4) {
                for lane in 0..4 {
                    lanes[lane] += a[j + lane] * b[j + lane];
                }
            }
            let mut tail = 0.0;
            for j in split..a.len() {
                tail += a[j] * b[j];
            }
            let want = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]) + tail;
            prop_assert_eq!(dot(&a, &b).to_bits(), want.to_bits());
        }

        /// `axpy` and `scale_axpy` are elementwise: bitwise identical to
        /// the plain scalar loops regardless of unroll width.
        #[test]
        fn axpy_family_bitwise_matches_scalar_loops(
            init in proptest::collection::vec(-5.0f64..5.0, 1..40),
            v in proptest::collection::vec(-5.0f64..5.0, 1..40),
            w in -3.0f64..3.0,
            s in 0.1f64..2.0,
        ) {
            let n = init.len().min(v.len());
            let (init, v) = (&init[..n], &v[..n]);

            let mut got = init.to_vec();
            axpy(&mut got, w, v);
            let mut want = init.to_vec();
            for (o, &x) in want.iter_mut().zip(v.iter()) {
                *o += w * x;
            }
            assert_bits_eq(&got, &want)?;

            let mut got = init.to_vec();
            scale_axpy(&mut got, s, w, v);
            let mut want = init.to_vec();
            for (o, &x) in want.iter_mut().zip(v.iter()) {
                *o = *o * s + w * x;
            }
            assert_bits_eq(&got, &want)?;
        }

        /// The blocked `weighted_sum_into` is bitwise identical to folding
        /// the value rows one at a time with `axpy` in ascending order —
        /// the unblocked loop it replaced in the SDP baseline.
        #[test]
        fn weighted_sum_into_bitwise_matches_axpy_sequence(
            rows in 0usize..11,
            cols in 1usize..9,
            seed in 0u64..1000,
        ) {
            let mix = |i: u64| -> f64 {
                let h = (seed ^ i).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                (h >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            };
            let v: Matrix<f64> = Matrix::from_fn(rows, cols, |i, j| mix((i * cols + j) as u64));
            let weights: Vec<f64> = (0..rows).map(|j| mix(0xABCD + j as u64)).collect();

            let mut got = vec![0.25f64; cols];
            weighted_sum_into(&mut got, &weights, &v);
            let mut want = vec![0.25f64; cols];
            for (j, &w) in weights.iter().enumerate() {
                axpy(&mut want, w, v.row(j));
            }
            assert_bits_eq(&got, &want)?;
        }
    }
}
