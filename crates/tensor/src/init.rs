//! Deterministic random initialization for Q/K/V workloads.
//!
//! The paper's verification and benchmarks create query/key/value matrices
//! "from the uniform random distribution [0, 1)" (Section V-A). Everything
//! here is seeded so that tests and benchmarks are reproducible run-to-run.

use crate::matrix::Matrix;
use crate::real::Real;
use rand::distributions::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Uniform `[0, 1)` matrix — the paper's workload generator.
pub fn uniform_matrix<T: Real>(rows: usize, cols: usize, seed: u64) -> Matrix<T> {
    uniform_range_matrix(rows, cols, 0.0, 1.0, seed)
}

/// Uniform `[lo, hi)` matrix.
pub fn uniform_range_matrix<T: Real>(
    rows: usize,
    cols: usize,
    lo: f64,
    hi: f64,
    seed: u64,
) -> Matrix<T> {
    assert!(lo < hi, "empty range [{lo}, {hi})");
    let mut rng = StdRng::seed_from_u64(seed);
    let dist = Uniform::new(lo, hi);
    let data = (0..rows * cols)
        .map(|_| T::from_f64(dist.sample(&mut rng)))
        .collect();
    Matrix::from_vec(rows, cols, data)
}

/// Standard-normal matrix via Box–Muller (no extra crate needed), scaled by
/// `std`. Useful for realistic transformer activations in examples.
pub fn gaussian_matrix<T: Real>(rows: usize, cols: usize, std: f64, seed: u64) -> Matrix<T> {
    let mut rng = StdRng::seed_from_u64(seed);
    let dist = Uniform::new(0.0f64, 1.0);
    let n = rows * cols;
    let mut data = Vec::with_capacity(n);
    while data.len() < n {
        // Box–Muller transform: two uniforms → two independent normals.
        let u1: f64 = dist.sample(&mut rng).max(f64::MIN_POSITIVE);
        let u2: f64 = dist.sample(&mut rng);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        data.push(T::from_f64(r * theta.cos() * std));
        if data.len() < n {
            data.push(T::from_f64(r * theta.sin() * std));
        }
    }
    Matrix::from_vec(rows, cols, data)
}

/// Xavier/Glorot-uniform initialization for projection weights in the
/// multi-head examples: `U(−√(6/(fan_in+fan_out)), +√(6/(fan_in+fan_out)))`.
pub fn xavier_uniform<T: Real>(fan_in: usize, fan_out: usize, seed: u64) -> Matrix<T> {
    let limit = (6.0 / (fan_in + fan_out) as f64).sqrt();
    uniform_range_matrix(fan_in, fan_out, -limit, limit, seed)
}

/// The standard Q/K/V triple for a given context length and head dimension,
/// seeded independently per matrix (seed, seed+1, seed+2) like the paper's
/// per-tensor `torch.rand` calls.
pub fn qkv<T: Real>(l: usize, dk: usize, seed: u64) -> (Matrix<T>, Matrix<T>, Matrix<T>) {
    (
        uniform_matrix(l, dk, seed),
        uniform_matrix(l, dk, seed.wrapping_add(1)),
        uniform_matrix(l, dk, seed.wrapping_add(2)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_in_range_and_seeded() {
        let a: Matrix<f64> = uniform_matrix(16, 8, 42);
        assert!(a.as_slice().iter().all(|&v| (0.0..1.0).contains(&v)));
        let b: Matrix<f64> = uniform_matrix(16, 8, 42);
        assert_eq!(a, b, "same seed must reproduce");
        let c: Matrix<f64> = uniform_matrix(16, 8, 43);
        assert_ne!(a, c, "different seed must differ");
    }

    #[test]
    fn qkv_matrices_are_distinct() {
        let (q, k, v): (Matrix<f32>, _, _) = qkv(32, 8, 7);
        assert_ne!(q, k);
        assert_ne!(k, v);
        assert_eq!(q.shape(), (32, 8));
    }

    #[test]
    fn gaussian_moments_are_plausible() {
        let m: Matrix<f64> = gaussian_matrix(200, 50, 2.0, 1);
        let n = m.len() as f64;
        let mean: f64 = m.as_slice().iter().sum::<f64>() / n;
        let var: f64 = m
            .as_slice()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / n;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "std {}", var.sqrt());
    }

    #[test]
    fn xavier_limit_respected() {
        let w: Matrix<f64> = xavier_uniform(64, 64, 3);
        let limit = (6.0f64 / 128.0).sqrt();
        assert!(w.as_slice().iter().all(|v| v.abs() <= limit));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn degenerate_range_panics() {
        let _: Matrix<f64> = uniform_range_matrix(1, 1, 1.0, 1.0, 0);
    }
}
