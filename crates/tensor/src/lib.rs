#![warn(missing_docs)]
//! # gpa-tensor — dense numeric substrate
//!
//! Foundation types for the graph-processing attention workspace:
//!
//! - [`Real`]: the f32/f64 scalar abstraction every kernel is generic over;
//! - [`Matrix`]: row-major dense matrices (`Q`, `K`, `V`, `O` are `L×d`);
//! - [`F16`]: software IEEE binary16 for FP16 storage emulation and the
//!   capacity model's byte accounting;
//! - [`softmax`]: online-softmax primitives (Algorithm 1's `(m, l)`
//!   recurrence) with the stream-merge rule that makes sequential kernel
//!   composition exact;
//! - [`init`]: seeded workload generators matching the paper's uniform
//!   `[0, 1)` inputs;
//! - [`ops`]: dot products and blocked matmuls for the dense baselines.

pub mod f16;
pub mod init;
pub mod matrix;
pub mod ops;
pub mod real;
pub mod softmax;

pub use f16::F16;
pub use matrix::{allclose, argmax, paper_allclose, scalar_close, Matrix};
pub use real::{attention_scale, Real};
pub use softmax::{merge_normalized, OnlineSoftmaxState, SoftmaxUpdate};
