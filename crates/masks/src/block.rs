//! Block-sparse and causal masks.
//!
//! Block sparsity is the resolution-limited format the paper positions
//! itself against ("these and other forms of attention are often
//! represented by blocks larger than 1 token … it restricts the resolution
//! of sparsity", Section II-C): [`BlockDiagonal`] is the simplest
//! representative and serves as the block-granular comparison point.
//!
//! Causal masks (lower-triangular, and the banded causal window of Sparse
//! Transformers \[12\]) are the autoregressive-decoding patterns every
//! deployed LLM uses; they compose with every kernel in `gpa-core`.

use crate::pattern::MaskPattern;
use gpa_sparse::Idx;

/// Diagonal blocks of fixed size: `mask(i, j) = 1 ⇔ ⌊i/bs⌋ = ⌊j/bs⌋`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockDiagonal {
    l: usize,
    block_size: usize,
}

impl BlockDiagonal {
    /// Diagonal blocks of `block_size`.
    ///
    /// # Panics
    /// Panics if `block_size == 0`.
    pub fn new(l: usize, block_size: usize) -> Self {
        assert!(block_size > 0, "block_size must be positive");
        BlockDiagonal { l, block_size }
    }

    /// Block edge length.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Closed-form nnz: full blocks contribute `bs²`, the tail `t²`.
    pub fn nnz_closed_form(l: usize, bs: usize) -> u128 {
        let full = (l / bs) as u128;
        let tail = (l % bs) as u128;
        full * (bs as u128) * (bs as u128) + tail * tail
    }
}

impl MaskPattern for BlockDiagonal {
    fn context_len(&self) -> usize {
        self.l
    }

    fn contains(&self, i: usize, j: usize) -> bool {
        i < self.l && j < self.l && i / self.block_size == j / self.block_size
    }

    fn append_row(&self, i: usize, out: &mut Vec<Idx>) {
        let start = (i / self.block_size) * self.block_size;
        let end = (start + self.block_size).min(self.l);
        out.extend((start..end).map(|j| j as Idx));
    }

    fn nnz(&self) -> usize {
        Self::nnz_closed_form(self.l, self.block_size) as usize
    }
}

/// Full causal (lower-triangular) mask: `j ≤ i`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Causal {
    l: usize,
}

impl Causal {
    /// Lower-triangular mask over a length-`l` context.
    pub fn new(l: usize) -> Self {
        Causal { l }
    }

    /// Closed-form nnz: `L(L+1)/2`.
    pub fn nnz_closed_form(l: usize) -> u128 {
        let l = l as u128;
        l * (l + 1) / 2
    }
}

impl MaskPattern for Causal {
    fn context_len(&self) -> usize {
        self.l
    }

    fn contains(&self, i: usize, j: usize) -> bool {
        i < self.l && j <= i
    }

    fn append_row(&self, i: usize, out: &mut Vec<Idx>) {
        out.extend((0..=i).map(|j| j as Idx));
    }

    fn nnz(&self) -> usize {
        Self::nnz_closed_form(self.l) as usize
    }
}

/// Causal sliding window (Sparse Transformers \[12\]): `i − n ≤ j ≤ i`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CausalLocal {
    l: usize,
    n: usize,
}

impl CausalLocal {
    /// Look back at most `n` tokens (plus self).
    pub fn new(l: usize, n: usize) -> Self {
        CausalLocal { l, n }
    }

    /// Backward window size.
    pub fn window(&self) -> usize {
        self.n
    }

    /// Closed-form nnz: `(n+1)·L − n(n+1)/2`, clipped at the start.
    pub fn nnz_closed_form(l: usize, n: usize) -> u128 {
        if l == 0 {
            return 0;
        }
        let l128 = l as u128;
        let n = (n as u128).min(l128 - 1);
        (n + 1) * l128 - n * (n + 1) / 2
    }
}

impl MaskPattern for CausalLocal {
    fn context_len(&self) -> usize {
        self.l
    }

    fn contains(&self, i: usize, j: usize) -> bool {
        i < self.l && j <= i && i - j <= self.n
    }

    fn append_row(&self, i: usize, out: &mut Vec<Idx>) {
        let lo = i.saturating_sub(self.n);
        out.extend((lo..=i).map(|j| j as Idx));
    }

    fn nnz(&self) -> usize {
        Self::nnz_closed_form(self.l, self.n) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::check_pattern_laws;

    #[test]
    fn block_diagonal_laws_and_nnz() {
        for l in [1usize, 7, 16, 33] {
            for bs in [1usize, 2, 8, 50] {
                check_pattern_laws(&BlockDiagonal::new(l, bs));
            }
        }
        // 33 = 4 blocks of 8 + tail 1 → 4·64 + 1.
        assert_eq!(BlockDiagonal::new(33, 8).nnz(), 257);
    }

    #[test]
    fn causal_laws_and_count() {
        for l in [0usize, 1, 10, 31] {
            check_pattern_laws(&Causal::new(l));
        }
        assert_eq!(Causal::new(10).nnz(), 55);
        let c = Causal::new(5);
        assert!(c.contains(4, 0));
        assert!(!c.contains(0, 4));
    }

    #[test]
    fn causal_local_laws() {
        for l in [1usize, 9, 24] {
            for n in [0usize, 1, 5, 30] {
                check_pattern_laws(&CausalLocal::new(l, n));
            }
        }
        // n=0: self-attention only.
        assert_eq!(CausalLocal::new(6, 0).nnz(), 6);
        // n ≥ L−1 degenerates to full causal.
        assert_eq!(CausalLocal::new(12, 100).nnz(), Causal::new(12).nnz());
    }

    #[test]
    fn causal_local_is_intersection_of_parts() {
        use crate::local::LocalWindow;
        let l = 14;
        let n = 3;
        let cl = CausalLocal::new(l, n).to_csr();
        let both = Causal::new(l)
            .to_csr()
            .intersection(&LocalWindow::new(l, n).to_csr());
        assert_eq!(cl, both);
    }

    #[test]
    fn block_diagonal_equals_dilated2d_r0() {
        use crate::dilated::Dilated2d;
        let a = BlockDiagonal::new(20, 6).to_csr();
        let b = Dilated2d::new(20, 6, 0).to_csr();
        assert_eq!(a, b);
    }
}
