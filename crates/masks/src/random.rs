//! Random attention (Fig. 2, orange cells; Section II-C).
//!
//! "Token-token relationships that are chosen from a uniform random
//! distribution". Two variants are provided:
//!
//! - [`RandomUniform`]: each `(i, j)` pair is an edge independently with
//!   probability `p` (so `E[Sf] = p`) — the form the BigBird benchmark in
//!   Fig. 6 uses with `Sf = 0.001`;
//! - [`RandomPerRow`]: exactly `k` random neighbors per row — BigBird's
//!   original "r random keys per query" formulation, which gives perfectly
//!   balanced row degrees.
//!
//! Both are *stateless*: membership is recomputed from a seeded hash /
//! seeded per-row sample, so `contains` and `append_row` stay consistent
//! without materializing anything.

use crate::pattern::MaskPattern;
use gpa_sparse::Idx;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// SplitMix64 — a small, high-quality stateless mixer. Used to derive an
/// i.i.d. uniform per-cell decision from `(seed, i, j)`.
#[inline(always)]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Bernoulli(p) mask: every cell is a non-zero independently with
/// probability `p`.
#[derive(Clone, Copy, Debug)]
pub struct RandomUniform {
    l: usize,
    p: f64,
    seed: u64,
}

impl RandomUniform {
    /// i.i.d. mask with edge probability `p ∈ [0, 1]`.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1]`.
    pub fn new(l: usize, p: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        RandomUniform { l, p, seed }
    }

    /// Edge probability (the expected sparsity factor).
    pub fn probability(&self) -> f64 {
        self.p
    }

    #[inline(always)]
    fn cell_on(&self, i: usize, j: usize) -> bool {
        // Threshold a 53-bit uniform derived from the cell coordinates.
        let h =
            splitmix64(self.seed ^ (i as u64).wrapping_mul(0x9E3779B97F4A7C15) ^ ((j as u64) << 1));
        let u = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < self.p
    }
}

impl MaskPattern for RandomUniform {
    fn context_len(&self) -> usize {
        self.l
    }

    fn contains(&self, i: usize, j: usize) -> bool {
        i < self.l && j < self.l && self.cell_on(i, j)
    }

    fn append_row(&self, i: usize, out: &mut Vec<Idx>) {
        for j in 0..self.l {
            if self.cell_on(i, j) {
                out.push(j as Idx);
            }
        }
    }
}

/// Exactly `k` uniformly chosen neighbors per row (BigBird-style).
#[derive(Clone, Copy, Debug)]
pub struct RandomPerRow {
    l: usize,
    k: usize,
    seed: u64,
}

impl RandomPerRow {
    /// `k` distinct random neighbors per row (clamped to `l`).
    pub fn new(l: usize, k: usize, seed: u64) -> Self {
        RandomPerRow {
            l,
            k: k.min(l),
            seed,
        }
    }

    /// Neighbors per row.
    pub fn per_row(&self) -> usize {
        self.k
    }

    /// The sorted neighbor sample of row `i` (deterministic per seed/row).
    fn row_sample(&self, i: usize) -> Vec<Idx> {
        let mut rng = StdRng::seed_from_u64(splitmix64(self.seed ^ (i as u64)));
        // Partial Fisher–Yates over the column universe via index sampling:
        // for k ≪ l, rejection sampling is cheaper than shuffling 0..l.
        if self.k * 4 >= self.l {
            let mut all: Vec<Idx> = (0..self.l as Idx).collect();
            all.shuffle(&mut rng);
            all.truncate(self.k);
            all.sort_unstable();
            all
        } else {
            let mut picked = Vec::with_capacity(self.k);
            while picked.len() < self.k {
                let c = (splitmix64(rng_next(&mut rng)) % self.l as u64) as Idx;
                if !picked.contains(&c) {
                    picked.push(c);
                }
            }
            picked.sort_unstable();
            picked
        }
    }
}

fn rng_next(rng: &mut StdRng) -> u64 {
    use rand::RngCore;
    rng.next_u64()
}

impl MaskPattern for RandomPerRow {
    fn context_len(&self) -> usize {
        self.l
    }

    fn contains(&self, i: usize, j: usize) -> bool {
        i < self.l && j < self.l && self.row_sample(i).contains(&(j as Idx))
    }

    fn append_row(&self, i: usize, out: &mut Vec<Idx>) {
        out.extend_from_slice(&self.row_sample(i));
    }

    fn nnz(&self) -> usize {
        self.k * self.l
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::check_pattern_laws;

    #[test]
    fn uniform_laws_hold() {
        for p in [0.0, 0.05, 0.5, 1.0] {
            check_pattern_laws(&RandomUniform::new(24, p, 7));
        }
    }

    #[test]
    fn uniform_density_tracks_probability() {
        let m = RandomUniform::new(256, 0.1, 3);
        let sf = m.sparsity_factor();
        assert!((sf - 0.1).abs() < 0.01, "sf = {sf}");
        assert_eq!(RandomUniform::new(64, 0.0, 1).nnz(), 0);
        assert_eq!(RandomUniform::new(64, 1.0, 1).nnz(), 64 * 64);
    }

    #[test]
    fn uniform_is_deterministic_per_seed() {
        let a = RandomUniform::new(32, 0.2, 11).to_csr();
        let b = RandomUniform::new(32, 0.2, 11).to_csr();
        let c = RandomUniform::new(32, 0.2, 12).to_csr();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn bad_probability_panics() {
        let _ = RandomUniform::new(8, 1.5, 0);
    }

    #[test]
    fn per_row_has_exact_degree() {
        let m = RandomPerRow::new(40, 5, 9);
        check_pattern_laws(&m);
        let csr = m.to_csr();
        for r in 0..40 {
            assert_eq!(csr.degree(r), 5, "row {r}");
        }
        assert_eq!(m.nnz(), 200);
    }

    #[test]
    fn per_row_clamps_k() {
        let m = RandomPerRow::new(4, 100, 0);
        assert_eq!(m.per_row(), 4);
        assert_eq!(m.nnz(), 16);
        check_pattern_laws(&m);
    }

    #[test]
    fn per_row_deterministic_and_seed_sensitive() {
        let a = RandomPerRow::new(30, 3, 5).to_csr();
        let b = RandomPerRow::new(30, 3, 5).to_csr();
        let c = RandomPerRow::new(30, 3, 6).to_csr();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
