//! Pattern combinators: union, intersection, difference of masks as rules.
//!
//! Real transformer masks are compositions — Longformer is
//! `local ∪ global`, BigBird adds `∪ random` (Fig. 2). Combinators keep
//! composition at the *pattern* level so `contains`/`append_row` stay
//! implicit; materialization to CSR happens once, at the end, if an
//! explicit kernel needs it.

use crate::pattern::MaskPattern;
use gpa_sparse::Idx;

/// Merge two sorted-unique neighbor lists (union).
fn merge_union(a: &[Idx], b: &[Idx], out: &mut Vec<Idx>) {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
}

/// Union of two patterns: `A(i,j) ∨ B(i,j)`.
pub struct Union<A, B> {
    a: A,
    b: B,
}

impl<A: MaskPattern, B: MaskPattern> Union<A, B> {
    /// Union of `a` and `b`.
    ///
    /// # Panics
    /// Panics if context lengths differ.
    pub fn new(a: A, b: B) -> Self {
        assert_eq!(
            a.context_len(),
            b.context_len(),
            "union of masks with different context lengths"
        );
        Union { a, b }
    }
}

impl<A: MaskPattern, B: MaskPattern> MaskPattern for Union<A, B> {
    fn context_len(&self) -> usize {
        self.a.context_len()
    }

    fn contains(&self, i: usize, j: usize) -> bool {
        self.a.contains(i, j) || self.b.contains(i, j)
    }

    fn append_row(&self, i: usize, out: &mut Vec<Idx>) {
        let mut ra = Vec::new();
        let mut rb = Vec::new();
        self.a.append_row(i, &mut ra);
        self.b.append_row(i, &mut rb);
        merge_union(&ra, &rb, out);
    }
}

/// Intersection of two patterns: `A(i,j) ∧ B(i,j)`.
pub struct Intersection<A, B> {
    a: A,
    b: B,
}

impl<A: MaskPattern, B: MaskPattern> Intersection<A, B> {
    /// Intersection of `a` and `b`.
    ///
    /// # Panics
    /// Panics if context lengths differ.
    pub fn new(a: A, b: B) -> Self {
        assert_eq!(
            a.context_len(),
            b.context_len(),
            "intersection of masks with different context lengths"
        );
        Intersection { a, b }
    }
}

impl<A: MaskPattern, B: MaskPattern> MaskPattern for Intersection<A, B> {
    fn context_len(&self) -> usize {
        self.a.context_len()
    }

    fn contains(&self, i: usize, j: usize) -> bool {
        self.a.contains(i, j) && self.b.contains(i, j)
    }

    fn append_row(&self, i: usize, out: &mut Vec<Idx>) {
        let mut ra = Vec::new();
        self.a.append_row(i, &mut ra);
        out.extend(ra.into_iter().filter(|&j| self.b.contains(i, j as usize)));
    }
}

/// Difference of two patterns: `A(i,j) ∧ ¬B(i,j)`.
pub struct Difference<A, B> {
    a: A,
    b: B,
}

impl<A: MaskPattern, B: MaskPattern> Difference<A, B> {
    /// `a` with `b`'s edges removed.
    ///
    /// # Panics
    /// Panics if context lengths differ.
    pub fn new(a: A, b: B) -> Self {
        assert_eq!(
            a.context_len(),
            b.context_len(),
            "difference of masks with different context lengths"
        );
        Difference { a, b }
    }
}

impl<A: MaskPattern, B: MaskPattern> MaskPattern for Difference<A, B> {
    fn context_len(&self) -> usize {
        self.a.context_len()
    }

    fn contains(&self, i: usize, j: usize) -> bool {
        self.a.contains(i, j) && !self.b.contains(i, j)
    }

    fn append_row(&self, i: usize, out: &mut Vec<Idx>) {
        let mut ra = Vec::new();
        self.a.append_row(i, &mut ra);
        out.extend(ra.into_iter().filter(|&j| !self.b.contains(i, j as usize)));
    }
}

/// Union of an arbitrary number of boxed patterns (used by multi-level
/// presets such as LongNet).
pub struct UnionAll {
    parts: Vec<Box<dyn MaskPattern>>,
    l: usize,
}

impl UnionAll {
    /// Union of all `parts`.
    ///
    /// # Panics
    /// Panics if `parts` is empty or context lengths differ.
    pub fn new(parts: Vec<Box<dyn MaskPattern>>) -> Self {
        assert!(!parts.is_empty(), "UnionAll needs at least one pattern");
        let l = parts[0].context_len();
        assert!(
            parts.iter().all(|p| p.context_len() == l),
            "UnionAll patterns must share a context length"
        );
        UnionAll { parts, l }
    }

    /// Number of unioned patterns.
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// True if there are no parts (unreachable by construction).
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }
}

impl MaskPattern for UnionAll {
    fn context_len(&self) -> usize {
        self.l
    }

    fn contains(&self, i: usize, j: usize) -> bool {
        self.parts.iter().any(|p| p.contains(i, j))
    }

    fn append_row(&self, i: usize, out: &mut Vec<Idx>) {
        let mut acc: Vec<Idx> = Vec::new();
        let mut part_row: Vec<Idx> = Vec::new();
        let mut merged: Vec<Idx> = Vec::new();
        for p in &self.parts {
            part_row.clear();
            p.append_row(i, &mut part_row);
            merged.clear();
            merge_union(&acc, &part_row, &mut merged);
            std::mem::swap(&mut acc, &mut merged);
        }
        out.extend_from_slice(&acc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Causal;
    use crate::global::{GlobalMask, GlobalSet};
    use crate::local::LocalWindow;
    use crate::pattern::check_pattern_laws;
    use crate::random::RandomUniform;

    #[test]
    fn union_laws() {
        let u = Union::new(
            LocalWindow::new(18, 2),
            GlobalMask::new(GlobalSet::new(18, vec![0, 9])),
        );
        check_pattern_laws(&u);
    }

    #[test]
    fn union_matches_csr_union() {
        let a = LocalWindow::new(15, 1);
        let b = RandomUniform::new(15, 0.2, 3);
        let pat = Union::new(a, b).to_csr();
        let csr = LocalWindow::new(15, 1)
            .to_csr()
            .union(&RandomUniform::new(15, 0.2, 3).to_csr());
        assert_eq!(pat, csr);
    }

    #[test]
    fn intersection_and_difference_laws() {
        let i = Intersection::new(LocalWindow::new(14, 3), Causal::new(14));
        check_pattern_laws(&i);
        let d = Difference::new(Causal::new(14), LocalWindow::new(14, 3));
        check_pattern_laws(&d);
        // A = (A∖B) ∪ (A∩B).
        let re_union = Union::new(
            Difference::new(Causal::new(14), LocalWindow::new(14, 3)),
            Intersection::new(Causal::new(14), LocalWindow::new(14, 3)),
        );
        assert_eq!(re_union.to_csr(), Causal::new(14).to_csr());
    }

    #[test]
    #[should_panic(expected = "different context lengths")]
    fn mismatched_lengths_panic() {
        let _ = Union::new(LocalWindow::new(4, 1), LocalWindow::new(5, 1));
    }

    #[test]
    fn union_all_merges_many() {
        let parts: Vec<Box<dyn MaskPattern>> = vec![
            Box::new(LocalWindow::new(20, 1)),
            Box::new(GlobalMask::new(GlobalSet::new(20, vec![5]))),
            Box::new(RandomUniform::new(20, 0.1, 8)),
        ];
        let u = UnionAll::new(parts);
        assert_eq!(u.len(), 3);
        assert!(!u.is_empty());
        check_pattern_laws(&u);
    }

    #[test]
    #[should_panic(expected = "at least one pattern")]
    fn empty_union_all_panics() {
        let _ = UnionAll::new(Vec::new());
    }
}
