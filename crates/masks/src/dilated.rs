//! Dilated windowed attention, 1-D and 2-D (Fig. 2, center; Section II-C).
//!
//! **1-D** follows the paper's pseudocode exactly:
//! `mask(i, j) = |i−j| < w ∧ |i−j| mod (r+1) = 0`
//! — uniform gaps of size `r` inside a window of width `w`. With `r = 0`
//! this degenerates to a local window of `w − 1` in each direction (tested).
//!
//! **2-D** dilates over square blocks along the diagonal (the LongNet-style
//! pattern \[7\]). The paper's pseudocode conflates block size and block
//! count (`floor(i/(L/b))` with `i % b`); we parameterize by an explicit
//! `block_size` and keep dilation within the block:
//! `same_block(i, j) ∧ (i mod bs) mod (r+1) = 0 ∧ (j mod bs) mod (r+1) = 0`.
//! DESIGN.md §6 records the deviation; for the paper's square case
//! (`b × b = L` with `b = √L`) the two parameterizations coincide.

use crate::pattern::MaskPattern;
use gpa_sparse::Idx;

/// 1-D dilated window: `|i−j| < w ∧ |i−j| mod (r+1) = 0`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Dilated1d {
    l: usize,
    w: usize,
    r: usize,
}

impl Dilated1d {
    /// Window width `w` (strict: offsets up to `w−1`) with dilation `r`.
    pub fn new(l: usize, w: usize, r: usize) -> Self {
        Dilated1d { l, w, r }
    }

    /// Window width.
    pub fn width(&self) -> usize {
        self.w
    }

    /// Dilation factor.
    pub fn dilation(&self) -> usize {
        self.r
    }

    /// Number of dilation steps per direction: `K = ⌊(w−1)/(r+1)⌋`.
    #[inline(always)]
    pub fn steps(w: usize, r: usize) -> usize {
        if w == 0 {
            return 0;
        }
        (w - 1) / (r + 1)
    }

    /// Closed-form non-zero count: `(2K+1)·L − (r+1)·K·(K+1)` where
    /// `K = ⌊(w−1)/(r+1)⌋`, with edge clipping (exact while the window fits;
    /// offsets are additionally clipped to the context for tiny `L`).
    pub fn nnz_closed_form(l: usize, w: usize, r: usize) -> u128 {
        if l == 0 || w == 0 {
            return 0;
        }
        let stride = (r + 1) as u128;
        // Clip the number of steps to what the context can hold.
        let k = (Self::steps(w, r) as u128).min((l as u128 - 1) / stride);
        let l = l as u128;
        (2 * k + 1) * l - stride * k * (k + 1)
    }
}

impl MaskPattern for Dilated1d {
    fn context_len(&self) -> usize {
        self.l
    }

    fn contains(&self, i: usize, j: usize) -> bool {
        if i >= self.l || j >= self.l {
            return false;
        }
        let d = i.abs_diff(j);
        d < self.w && d % (self.r + 1) == 0
    }

    fn append_row(&self, i: usize, out: &mut Vec<Idx>) {
        let stride = self.r + 1;
        let k = Self::steps(self.w, self.r);
        if self.w == 0 {
            return;
        }
        // Backward offsets K·stride … stride, then self, then forward.
        let back = k.min(i / stride);
        for s in (1..=back).rev() {
            out.push((i - s * stride) as Idx);
        }
        out.push(i as Idx);
        let fwd = k.min((self.l - 1 - i) / stride);
        for s in 1..=fwd {
            out.push((i + s * stride) as Idx);
        }
    }

    fn nnz(&self) -> usize {
        Self::nnz_closed_form(self.l, self.w, self.r) as usize
    }
}

/// 2-D dilated block attention: diagonal blocks of `block_size`, dilated by
/// `r` in both the row and column direction within each block.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Dilated2d {
    l: usize,
    block_size: usize,
    r: usize,
}

impl Dilated2d {
    /// Diagonal blocks of `block_size` with dilation `r`.
    ///
    /// # Panics
    /// Panics if `block_size == 0`.
    pub fn new(l: usize, block_size: usize, r: usize) -> Self {
        assert!(block_size > 0, "block_size must be positive");
        Dilated2d { l, block_size, r }
    }

    /// Block edge length.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Dilation factor.
    pub fn dilation(&self) -> usize {
        self.r
    }

    /// Selected positions within a block of size `bs` under dilation `r`:
    /// `⌈bs/(r+1)⌉`.
    #[inline(always)]
    pub fn selected_per_block(bs: usize, r: usize) -> usize {
        bs.div_ceil(r + 1)
    }

    /// Closed-form non-zero count: full blocks contribute `s²` each
    /// (`s = ⌈bs/(r+1)⌉`); a trailing partial block contributes `s'²`.
    pub fn nnz_closed_form(l: usize, bs: usize, r: usize) -> u128 {
        if l == 0 {
            return 0;
        }
        let full_blocks = (l / bs) as u128;
        let s = Self::selected_per_block(bs, r) as u128;
        let tail = l % bs;
        let s_tail = if tail == 0 {
            0u128
        } else {
            Self::selected_per_block(tail, r) as u128
        };
        full_blocks * s * s + s_tail * s_tail
    }
}

impl MaskPattern for Dilated2d {
    fn context_len(&self) -> usize {
        self.l
    }

    fn contains(&self, i: usize, j: usize) -> bool {
        if i >= self.l || j >= self.l {
            return false;
        }
        let bs = self.block_size;
        if i / bs != j / bs {
            return false;
        }
        let stride = self.r + 1;
        (i % bs) % stride == 0 && (j % bs) % stride == 0
    }

    fn append_row(&self, i: usize, out: &mut Vec<Idx>) {
        let bs = self.block_size;
        let stride = self.r + 1;
        if (i % bs) % stride != 0 {
            return; // unselected row: attends to nothing at this level
        }
        let block_start = (i / bs) * bs;
        let block_end = (block_start + bs).min(self.l);
        let mut j = block_start;
        while j < block_end {
            out.push(j as Idx);
            j += stride;
        }
    }

    fn nnz(&self) -> usize {
        Self::nnz_closed_form(self.l, self.block_size, self.r) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local::LocalWindow;
    use crate::pattern::{check_pattern_laws, MaskPattern};

    #[test]
    fn dilated1d_laws() {
        for l in [1usize, 2, 9, 33] {
            for w in [0usize, 1, 2, 5, 16, 100] {
                for r in [0usize, 1, 2, 5] {
                    check_pattern_laws(&Dilated1d::new(l, w, r));
                }
            }
        }
    }

    #[test]
    fn dilated2d_laws() {
        for l in [1usize, 8, 30, 33] {
            for bs in [1usize, 2, 5, 8, 40] {
                for r in [0usize, 1, 3] {
                    check_pattern_laws(&Dilated2d::new(l, bs, r));
                }
            }
        }
    }

    #[test]
    fn r0_dilated_equals_local() {
        // Paper's predicate with r = 0: |i−j| < w  ⇔  |i−j| ≤ w−1.
        for l in [10usize, 31] {
            for w in [1usize, 3, 7] {
                let dil = Dilated1d::new(l, w, 0);
                let loc = LocalWindow::new(l, w - 1);
                for i in 0..l {
                    for j in 0..l {
                        assert_eq!(
                            dil.contains(i, j),
                            loc.contains(i, j),
                            "l={l} w={w} ({i},{j})"
                        );
                    }
                }
                assert_eq!(dil.nnz(), loc.nnz());
            }
        }
    }

    #[test]
    fn dilation_skips_odd_offsets() {
        // r = 1: only even |i−j| attend (paper Fig. 2 center).
        let m = Dilated1d::new(20, 6, 1);
        assert!(m.contains(10, 10));
        assert!(!m.contains(10, 11));
        assert!(m.contains(10, 12));
        assert!(!m.contains(10, 13));
        assert!(m.contains(10, 14));
        assert!(!m.contains(10, 16), "offset 6 is outside w=6 (strict)");
    }

    #[test]
    fn dilated1d_closed_form_matches_enumeration() {
        for l in [1usize, 6, 29, 64] {
            for w in [0usize, 1, 4, 9, 64, 200] {
                for r in [0usize, 1, 2, 4] {
                    let m = Dilated1d::new(l, w, r);
                    let mut buf = Vec::new();
                    let mut brute = 0usize;
                    for i in 0..l {
                        buf.clear();
                        m.append_row(i, &mut buf);
                        brute += buf.len();
                    }
                    assert_eq!(m.nnz(), brute, "l={l} w={w} r={r}");
                }
            }
        }
    }

    #[test]
    fn dilated2d_structure() {
        // L = 12, blocks of 4, r = 1: selected positions within each block
        // are offsets {0, 2}.
        let m = Dilated2d::new(12, 4, 1);
        assert!(m.contains(0, 0));
        assert!(m.contains(0, 2));
        assert!(!m.contains(0, 1));
        assert!(!m.contains(0, 4), "different block");
        assert!(m.contains(6, 4));
        // Unselected row attends nowhere.
        let mut row = Vec::new();
        m.append_row(1, &mut row);
        assert!(row.is_empty());
        // nnz: 3 blocks × 2² = 12.
        assert_eq!(m.nnz(), 12);
    }

    #[test]
    fn dilated2d_partial_tail_block() {
        // L = 10, bs = 4: two full blocks + tail of 2; r = 1 ⇒ s = 2, tail s' = 1.
        let m = Dilated2d::new(10, 4, 1);
        assert_eq!(m.nnz(), 2 * 4 + 1);
        check_pattern_laws(&m);
    }

    #[test]
    fn huge_context_closed_forms() {
        let nnz1 = Dilated1d::nnz_closed_form(160_000_000, 2731, 1);
        assert!(nnz1 > 0);
        let nnz2 = Dilated2d::nnz_closed_form(160_000_000, 4096, 1);
        assert!(nnz2 > 0);
    }

    #[test]
    #[should_panic(expected = "block_size must be positive")]
    fn zero_block_rejected() {
        let _ = Dilated2d::new(8, 0, 1);
    }
}
