//! Global attention (Fig. 2, blue cells; Section II-C).
//!
//! Designated tokens "can attend to all other tokens in the sequence" and
//! are attended *by* every token: for a global set `G`, `mask(i, j) = 1` iff
//! `i ∈ G ∨ j ∈ G`.
//!
//! The paper's standalone global kernel is actually *global minus local*:
//! "attention indices are calculated for both the global and local mask and
//! then the local mask is subtracted from the global" (Section IV-B), so
//! that a sequential `local ∘ global` composition covers the Longformer
//! union without double-counting any edge. [`GlobalMinusLocal`] is that
//! pattern.

use crate::local::LocalWindow;
use crate::pattern::MaskPattern;
use gpa_sparse::Idx;

/// Sorted, deduplicated set of global token indices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GlobalSet {
    indices: Vec<Idx>,
    l: usize,
}

impl GlobalSet {
    /// Build from arbitrary indices (sorted and deduplicated; out-of-range
    /// indices are rejected).
    ///
    /// # Panics
    /// Panics if an index is `≥ l`.
    pub fn new(l: usize, mut indices: Vec<usize>) -> Self {
        indices.sort_unstable();
        indices.dedup();
        if let Some(&bad) = indices.iter().find(|&&g| g >= l) {
            panic!("global token {bad} out of context length {l}");
        }
        GlobalSet {
            indices: indices.into_iter().map(|g| g as Idx).collect(),
            l,
        }
    }

    /// The first `count` tokens as globals (the common CLS-style choice).
    pub fn prefix(l: usize, count: usize) -> Self {
        GlobalSet::new(l, (0..count.min(l)).collect())
    }

    /// Evenly spaced globals (BigBird-style anchor tokens).
    pub fn evenly_spaced(l: usize, count: usize) -> Self {
        if count == 0 || l == 0 {
            return GlobalSet::new(l, Vec::new());
        }
        let count = count.min(l);
        let idx = (0..count).map(|k| k * l / count).collect();
        GlobalSet::new(l, idx)
    }

    /// Number of global tokens.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// True if there are no globals.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Sorted global indices.
    pub fn indices(&self) -> &[Idx] {
        &self.indices
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        self.indices.binary_search(&(i as Idx)).is_ok()
    }

    /// Context length.
    pub fn context_len(&self) -> usize {
        self.l
    }
}

/// Full global mask: `i ∈ G ∨ j ∈ G`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GlobalMask {
    globals: GlobalSet,
}

impl GlobalMask {
    /// Global attention over the given token set.
    pub fn new(globals: GlobalSet) -> Self {
        GlobalMask { globals }
    }

    /// The global token set.
    pub fn globals(&self) -> &GlobalSet {
        &self.globals
    }

    /// Closed-form nnz: `2·g·L − g²` (global rows plus global columns minus
    /// the double-counted `g×g` block).
    pub fn nnz_closed_form(l: usize, g: usize) -> u128 {
        let l = l as u128;
        let g = (g as u128).min(l);
        2 * g * l - g * g
    }
}

impl MaskPattern for GlobalMask {
    fn context_len(&self) -> usize {
        self.globals.l
    }

    fn contains(&self, i: usize, j: usize) -> bool {
        i < self.globals.l
            && j < self.globals.l
            && (self.globals.contains(i) || self.globals.contains(j))
    }

    fn append_row(&self, i: usize, out: &mut Vec<Idx>) {
        if self.globals.contains(i) {
            // Global row: attends to everything.
            out.extend((0..self.globals.l).map(|j| j as Idx));
        } else {
            // Non-global row: attends to the global columns only.
            out.extend_from_slice(self.globals.indices());
        }
    }

    fn nnz(&self) -> usize {
        Self::nnz_closed_form(self.globals.l, self.globals.len()) as usize
    }
}

/// The paper's "global (non-local)" pattern: the global mask with the local
/// window `|i−j| ≤ n` removed, so `local(n) ∪ global_minus_local(G, n)` is
/// an exact, disjoint cover of the Longformer mask.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GlobalMinusLocal {
    globals: GlobalSet,
    n: usize,
}

impl GlobalMinusLocal {
    /// Global set minus a local window of `n` per direction.
    pub fn new(globals: GlobalSet, n: usize) -> Self {
        GlobalMinusLocal { globals, n }
    }

    /// The global token set.
    pub fn globals(&self) -> &GlobalSet {
        &self.globals
    }

    /// Local window that is subtracted.
    pub fn window(&self) -> usize {
        self.n
    }
}

impl MaskPattern for GlobalMinusLocal {
    fn context_len(&self) -> usize {
        self.globals.l
    }

    fn contains(&self, i: usize, j: usize) -> bool {
        let l = self.globals.l;
        if i >= l || j >= l || i.abs_diff(j) <= self.n {
            return false;
        }
        self.globals.contains(i) || self.globals.contains(j)
    }

    fn append_row(&self, i: usize, out: &mut Vec<Idx>) {
        let l = self.globals.l;
        let (lo, hi) = LocalWindow::row_range(l, self.n, i);
        if self.globals.contains(i) {
            // Global row: everything except the local window.
            out.extend((0..lo).map(|j| j as Idx));
            out.extend((hi + 1..l).map(|j| j as Idx));
        } else {
            // Non-global row: global columns outside the window.
            out.extend(
                self.globals
                    .indices()
                    .iter()
                    .copied()
                    .filter(|&g| (g as usize) < lo || (g as usize) > hi),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::check_pattern_laws;

    #[test]
    fn global_set_construction() {
        let g = GlobalSet::new(10, vec![7, 2, 2, 0]);
        assert_eq!(g.indices(), &[0, 2, 7]);
        assert_eq!(g.len(), 3);
        assert!(g.contains(2));
        assert!(!g.contains(3));
        assert!(!g.is_empty());
        assert!(GlobalSet::new(4, vec![]).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of context length")]
    fn out_of_range_global_panics() {
        let _ = GlobalSet::new(4, vec![4]);
    }

    #[test]
    fn prefix_and_spaced_selectors() {
        assert_eq!(GlobalSet::prefix(10, 3).indices(), &[0, 1, 2]);
        assert_eq!(GlobalSet::prefix(2, 5).len(), 2);
        let spaced = GlobalSet::evenly_spaced(12, 3);
        assert_eq!(spaced.indices(), &[0, 4, 8]);
        assert_eq!(GlobalSet::evenly_spaced(5, 0).len(), 0);
    }

    #[test]
    fn global_mask_laws_and_nnz() {
        for l in [1usize, 8, 21] {
            for g in [0usize, 1, 3] {
                let m = GlobalMask::new(GlobalSet::prefix(l, g));
                check_pattern_laws(&m);
            }
        }
        // nnz = 2gL − g²: L=8, g=2 → 32 − 4 = 28.
        let m = GlobalMask::new(GlobalSet::prefix(8, 2));
        assert_eq!(m.nnz(), 28);
    }

    #[test]
    fn global_minus_local_laws() {
        for l in [1usize, 9, 20] {
            for g in [0usize, 1, 2] {
                for n in [0usize, 1, 3] {
                    let m = GlobalMinusLocal::new(GlobalSet::evenly_spaced(l, g), n);
                    check_pattern_laws(&m);
                }
            }
        }
    }

    #[test]
    fn union_with_local_covers_longformer_exactly() {
        use crate::local::LocalWindow;
        let l = 16;
        let n = 2;
        let globals = GlobalSet::new(l, vec![0, 7]);
        let local = LocalWindow::new(l, n).to_csr();
        let gml = GlobalMinusLocal::new(globals.clone(), n).to_csr();
        let full_global = GlobalMask::new(globals).to_csr();

        // Disjoint parts…
        assert!(local.is_disjoint(&gml));
        // …whose union is local ∪ global.
        assert_eq!(local.union(&gml), local.union(&full_global));
    }

    #[test]
    fn global_rows_are_dense_others_sparse() {
        let m = GlobalMask::new(GlobalSet::new(10, vec![4]));
        let mut row = Vec::new();
        m.append_row(4, &mut row);
        assert_eq!(row.len(), 10);
        row.clear();
        m.append_row(0, &mut row);
        assert_eq!(row, vec![4]);
    }
}
