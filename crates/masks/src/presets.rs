//! Preset masks of well-known long-context transformers (Fig. 2, Fig. 6,
//! Section II-D).
//!
//! - [`longformer`]: local window ∪ global tokens (Fig. 2 left);
//! - [`longformer_dilated`]: dilated local window ∪ global tokens (Fig. 2
//!   center);
//! - [`bigbird`]: local ∪ global ∪ uniform random (Fig. 2 right);
//! - [`LongNetPattern`]: the multi-level geometric segment/dilation scheme
//!   of LongNet \[7\], whose sparsity schedule (`Sf = 2730/L` at the paper's
//!   defaults) drives the long-context experiments of Table III.

use crate::combinators::UnionAll;
use crate::dilated::{Dilated1d, Dilated2d};
use crate::global::{GlobalMask, GlobalSet};
use crate::local::LocalWindow;
use crate::pattern::MaskPattern;
use crate::random::RandomUniform;
use gpa_sparse::Idx;

/// Longformer: `local(n) ∪ global(G)` (Fig. 2 left; Fig. 6 left).
pub fn longformer(l: usize, window: usize, globals: Vec<usize>) -> UnionAll {
    UnionAll::new(vec![
        Box::new(LocalWindow::new(l, window)),
        Box::new(GlobalMask::new(GlobalSet::new(l, globals))),
    ])
}

/// Longformer with a dilated window: `dilated1d(w, r) ∪ global(G)`
/// (Fig. 2 center; Fig. 6 middle — window 50 per direction, dilation 2,
/// "effective local size of 100").
pub fn longformer_dilated(
    l: usize,
    window: usize,
    dilation: usize,
    globals: Vec<usize>,
) -> UnionAll {
    // The paper describes the dilated window by its per-direction reach; the
    // Dilated1d predicate is strict (|i−j| < w), so reach n ⇒ w = n·(r+1)+1
    // keeps n attended steps per direction.
    let w = window * (dilation + 1) + 1;
    UnionAll::new(vec![
        Box::new(Dilated1d::new(l, w, dilation)),
        Box::new(GlobalMask::new(GlobalSet::new(l, globals))),
    ])
}

/// BigBird: `local(n) ∪ global(G) ∪ random(Sf)` (Fig. 2 right; Fig. 6
/// right — local 50 per direction, 3 globals, random `Sf = 0.001`).
pub fn bigbird(
    l: usize,
    window: usize,
    globals: Vec<usize>,
    random_sf: f64,
    seed: u64,
) -> UnionAll {
    UnionAll::new(vec![
        Box::new(LocalWindow::new(l, window)),
        Box::new(GlobalMask::new(GlobalSet::new(l, globals))),
        Box::new(RandomUniform::new(l, random_sf, seed)),
    ])
}

/// One LongNet level: contiguous segments of length `w`, attention between
/// the positions of each segment whose in-segment offset is a multiple of
/// the dilation `r`.
///
/// This is [`Dilated2d`] with `block_size = w` and stride `r` — LongNet's
/// "dilated attention" building block.
pub fn longnet_level(l: usize, w: usize, r: usize) -> Dilated2d {
    Dilated2d::new(l, w, r.saturating_sub(1))
}

/// The full LongNet mask: union of geometric levels
/// `(w_k, r_k) = (w0·α^k, α^k)` for `k = 0 … ⌈log_α(L/w0)⌉`.
pub struct LongNetPattern {
    levels: UnionAll,
    configs: Vec<(usize, usize)>,
}

impl LongNetPattern {
    /// LongNet defaults from the paper's Section II-D: `w0 = 2048`, `α = 2`.
    pub fn with_defaults(l: usize) -> Self {
        Self::new(l, 2048, 2)
    }

    /// Geometric segment/dilation ladder starting at `w0` with ratio
    /// `alpha ≥ 2`, extended until one segment covers the context.
    ///
    /// # Panics
    /// Panics if `w0 == 0` or `alpha < 2`.
    pub fn new(l: usize, w0: usize, alpha: usize) -> Self {
        assert!(w0 > 0, "w0 must be positive");
        assert!(alpha >= 2, "alpha must be at least 2");
        let mut configs = Vec::new();
        let mut w = w0;
        let mut r = 1usize;
        loop {
            configs.push((w.min(l.max(1)), r));
            if w >= l {
                break;
            }
            w = w.saturating_mul(alpha);
            r = r.saturating_mul(alpha);
        }
        let parts: Vec<Box<dyn MaskPattern>> = configs
            .iter()
            .map(|&(w, r)| Box::new(longnet_level(l, w, r)) as Box<dyn MaskPattern>)
            .collect();
        LongNetPattern {
            levels: UnionAll::new(parts),
            configs,
        }
    }

    /// The `(segment_length, dilation)` ladder.
    pub fn configs(&self) -> &[(usize, usize)] {
        &self.configs
    }
}

impl MaskPattern for LongNetPattern {
    fn context_len(&self) -> usize {
        self.levels.context_len()
    }

    fn contains(&self, i: usize, j: usize) -> bool {
        self.levels.contains(i, j)
    }

    fn append_row(&self, i: usize, out: &mut Vec<Idx>) {
        self.levels.append_row(i, out);
    }
}

/// The LongNet dot-product count per Section II-D.
///
/// The paper quotes "2α/(α−1)·w0·L" but evaluates it to **2730·L** for
/// `α = 2, w0 = 2048`; the evaluated number corresponds to
/// `α²/(α²−1)·w0·L = (4/3)·2048·L ≈ 2730.7·L`, which is also what the level
/// sum `Σ_k L·w0·α^{−k}` … `Σ_k L·w0·α^{-2k}·α^k` family converges to for
/// their parameters. We implement the formula that reproduces the paper's
/// *numbers* (0.17 at 16 k, 2.7e−6 at 1 B) and document the transcription
/// discrepancy here.
pub fn longnet_dot_products(l: usize, w0: usize, alpha: usize) -> f64 {
    let a = alpha as f64;
    (a * a / (a * a - 1.0)) * w0 as f64 * l as f64
}

/// LongNet sparsity-factor schedule: `Sf(L) = dot_products / L²`, clamped
/// to 1. With defaults this is the paper's `2730/L`.
pub fn longnet_sparsity_factor(l: usize) -> f64 {
    if l == 0 {
        return 0.0;
    }
    (longnet_dot_products(l, 2048, 2) / (l as f64 * l as f64)).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::check_pattern_laws;

    #[test]
    fn longformer_is_union_of_parts() {
        let lf = longformer(24, 2, vec![0, 12]);
        check_pattern_laws(&lf);
        let expect = LocalWindow::new(24, 2)
            .to_csr()
            .union(&GlobalMask::new(GlobalSet::new(24, vec![0, 12])).to_csr());
        assert_eq!(lf.to_csr(), expect);
    }

    #[test]
    fn longformer_dilated_reach() {
        let lf = longformer_dilated(64, 4, 2, vec![0]);
        check_pattern_laws(&lf);
        // Reach: 4 steps of stride 3 = offset 12 attended; offset 13/14 not.
        assert!(lf.contains(32, 32 + 12));
        assert!(!lf.contains(32, 32 + 13));
        assert!(!lf.contains(32, 32 + 15));
        // Dilation gaps: offsets not divisible by 3 are masked.
        assert!(!lf.contains(32, 32 + 4));
        assert!(lf.contains(32, 32 + 3));
    }

    #[test]
    fn bigbird_contains_all_three_parts() {
        let bb = bigbird(40, 2, vec![0, 20], 0.05, 5);
        check_pattern_laws(&bb);
        // Local edge.
        assert!(bb.contains(10, 11));
        // Global edge.
        assert!(bb.contains(33, 20));
        // Sparsity at least local + global.
        let min_nnz = LocalWindow::new(40, 2).nnz();
        assert!(bb.nnz() >= min_nnz);
    }

    #[test]
    fn longnet_ladder_covers_context() {
        let p = LongNetPattern::new(100, 8, 2);
        let configs = p.configs();
        assert_eq!(configs[0], (8, 1));
        assert_eq!(configs[1], (16, 2));
        // Last level's segment covers the whole context.
        assert!(configs.last().unwrap().0 >= 100 || configs.last().unwrap().0 == 100);
        check_pattern_laws(&p);
    }

    #[test]
    fn longnet_level0_is_block_dense() {
        // Level 0 has dilation 1 ⇒ full blocks of w0.
        let p = LongNetPattern::new(32, 8, 2);
        // (0,7) same segment at level 0.
        assert!(p.contains(0, 7));
        // (0,8) different level-0 segment, but level 1 (w=16, r=2) connects
        // in-segment offsets that are even: (0, 8) both even offsets → yes.
        assert!(p.contains(0, 8));
        // (1, 9): offsets 1 and 9 in the level-1 segment are odd → only
        // covered if some level links them; level 0 doesn't (different
        // blocks), level 2 (w=32, r=4) needs offsets ≡ 0 mod 4 → masked.
        assert!(!p.contains(1, 9));
    }

    #[test]
    fn longnet_sparsity_matches_paper_numbers() {
        // Section II-D: {16k → 0.17, 32k → 0.085, 1M → 0.0027, 1B → 2.7e−6}.
        let cases = [
            (16_384usize, 0.17),
            (32_768, 0.085),
            (1_000_000, 0.0027),
            (1_000_000_000, 2.7e-6),
        ];
        for (l, expect) in cases {
            let sf = longnet_sparsity_factor(l);
            let rel = (sf - expect).abs() / expect;
            assert!(rel < 0.03, "L={l}: sf={sf:.6} vs paper {expect}");
        }
    }

    #[test]
    fn longnet_empirical_nnz_tracks_formula() {
        // At small L the ladder is short; compare the enumerated mask's nnz
        // against the analytic dot-product count (same order of magnitude —
        // the closed form is the infinite-ladder limit).
        let l = 512;
        let p = LongNetPattern::new(l, 64, 2);
        let nnz = p.nnz() as f64;
        let formula = longnet_dot_products(l, 64, 2);
        let ratio = nnz / formula;
        assert!(
            (0.5..2.0).contains(&ratio),
            "nnz={nnz} formula={formula} ratio={ratio}"
        );
    }

    #[test]
    fn longnet_defaults_small_context_is_dense_level() {
        // L ≤ w0: a single level with dilation 1 ⇒ fully dense.
        let p = LongNetPattern::with_defaults(64);
        assert_eq!(p.configs().len(), 1);
        assert_eq!(p.nnz(), 64 * 64);
    }
}
