//! Local / windowed attention (Fig. 2, black cells).
//!
//! "Local attention … gives a token the ability to look n tokens forwards
//! and backwards from itself" (Section II-C): token `i` attends to `j` iff
//! `|i − j| ≤ n`. The paper's Fig. 5 sweeps this window (5, 50, 500) and its
//! microbenchmarks fit `n` to a target sparsity factor.

use crate::pattern::MaskPattern;
use gpa_sparse::Idx;

/// Sliding-window mask: `|i − j| ≤ n`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LocalWindow {
    l: usize,
    n: usize,
}

impl LocalWindow {
    /// Window of `n` tokens in each direction over a length-`l` context.
    pub fn new(l: usize, n: usize) -> Self {
        LocalWindow { l, n }
    }

    /// Tokens visible in each direction.
    pub fn window(&self) -> usize {
        self.n
    }

    /// The inclusive column range `[lo, hi]` of row `i` — the arithmetic the
    /// implicit local kernel uses per row (no mask storage).
    #[inline(always)]
    pub fn row_range(l: usize, n: usize, i: usize) -> (usize, usize) {
        debug_assert!(i < l);
        (i.saturating_sub(n), (i + n).min(l - 1))
    }

    /// Closed-form non-zero count: `(2n+1)·L − n·(n+1)` clipped at the
    /// sequence edges (exact for `n < L`; saturates to the dense `L²` when
    /// the window covers everything).
    pub fn nnz_closed_form(l: usize, n: usize) -> u128 {
        if l == 0 {
            return 0;
        }
        let l = l as u128;
        let n = (n as u128).min(l - 1);
        (2 * n + 1) * l - n * (n + 1)
    }
}

impl MaskPattern for LocalWindow {
    fn context_len(&self) -> usize {
        self.l
    }

    fn contains(&self, i: usize, j: usize) -> bool {
        i < self.l && j < self.l && i.abs_diff(j) <= self.n
    }

    fn append_row(&self, i: usize, out: &mut Vec<Idx>) {
        let (lo, hi) = Self::row_range(self.l, self.n, i);
        out.extend((lo..=hi).map(|j| j as Idx));
    }

    fn nnz(&self) -> usize {
        Self::nnz_closed_form(self.l, self.n) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::check_pattern_laws;

    #[test]
    fn laws_hold_for_various_windows() {
        for l in [1usize, 2, 7, 32] {
            for n in [0usize, 1, 3, 31, 100] {
                check_pattern_laws(&LocalWindow::new(l, n));
            }
        }
    }

    #[test]
    fn window_zero_is_diagonal() {
        let m = LocalWindow::new(6, 0);
        assert_eq!(m.nnz(), 6);
        assert!(m.contains(2, 2));
        assert!(!m.contains(2, 3));
    }

    #[test]
    fn interior_row_has_full_window() {
        let m = LocalWindow::new(100, 5);
        let mut row = Vec::new();
        m.append_row(50, &mut row);
        assert_eq!(row.len(), 11);
        assert_eq!(row[0], 45);
        assert_eq!(row[10], 55);
    }

    #[test]
    fn edges_are_clipped() {
        let m = LocalWindow::new(100, 5);
        let mut row = Vec::new();
        m.append_row(0, &mut row);
        assert_eq!(row.len(), 6); // 0..=5
        row.clear();
        m.append_row(99, &mut row);
        assert_eq!(row.len(), 6); // 94..=99
    }

    #[test]
    fn closed_form_matches_enumeration() {
        for l in [1usize, 5, 17, 64] {
            for n in [0usize, 1, 2, 8, 63, 200] {
                let m = LocalWindow::new(l, n);
                let brute: usize = {
                    let mut buf = Vec::new();
                    let mut t = 0;
                    for i in 0..l {
                        buf.clear();
                        m.append_row(i, &mut buf);
                        t += buf.len();
                    }
                    t
                };
                assert_eq!(m.nnz(), brute, "l={l} n={n}");
            }
        }
    }

    #[test]
    fn huge_context_closed_form_does_not_overflow() {
        // The paper's 160 M context with a LongNet-scale window.
        let nnz = LocalWindow::nnz_closed_form(160_000_000, 1365);
        assert!(nnz > 0);
        let sf = nnz as f64 / (160_000_000f64 * 160_000_000f64);
        assert!(sf < 1e-4, "sf = {sf}");
    }

    #[test]
    fn window_saturating_covers_dense() {
        let m = LocalWindow::new(4, 100);
        assert_eq!(m.nnz(), 16);
        assert_eq!(m.sparsity_factor(), 1.0);
    }
}
