//! The [`MaskPattern`] trait: a structured attention mask as a *rule*, not
//! a materialized matrix.
//!
//! The paper's "ordered sparsity" kernels (local, dilated, global) never
//! materialize their masks — neighbor indices are "calculated relative to
//! the index token of a row" inside the kernel (Section IV-B). A
//! `MaskPattern` captures exactly that: a membership predicate plus a
//! per-row neighbor enumerator. Explicit formats (COO/CSR/dense) are
//! derived views used by the explicit-mask kernels, the SDP baseline, and
//! verification.

use gpa_sparse::{CooMask, CsrMask, DenseMask, Idx};

/// A structured `L×L` attention mask.
///
/// Implementations must satisfy two consistency laws (tested for every
/// pattern in this crate):
///
/// 1. `append_row(i)` yields exactly `{ j | contains(i, j) }`, sorted
///    ascending;
/// 2. `nnz()` equals the sum of row lengths.
pub trait MaskPattern: Send + Sync {
    /// Context length `L` (masks are square: queries × keys).
    fn context_len(&self) -> usize;

    /// Membership test: may token `i` attend to token `j`?
    fn contains(&self, i: usize, j: usize) -> bool;

    /// Append the sorted neighbor (column) list of row `i` to `out`.
    fn append_row(&self, i: usize, out: &mut Vec<Idx>);

    /// Number of mask non-zeros. The default enumerates all rows;
    /// ordered-sparsity patterns override it with closed forms so the
    /// memory model can evaluate masks at `L = 160 M` without materializing
    /// anything.
    fn nnz(&self) -> usize {
        let mut buf = Vec::new();
        let mut total = 0;
        for i in 0..self.context_len() {
            buf.clear();
            self.append_row(i, &mut buf);
            total += buf.len();
        }
        total
    }

    /// Sparsity factor `Sf = NNZ / L²` (Eq. 2 of the paper).
    fn sparsity_factor(&self) -> f64 {
        let l = self.context_len();
        if l == 0 {
            return 0.0;
        }
        self.nnz() as f64 / (l as f64 * l as f64)
    }

    /// Materialize as CSR (the explicit-kernel input format).
    fn to_csr(&self) -> CsrMask {
        let l = self.context_len();
        let mut row_offsets = Vec::with_capacity(l + 1);
        row_offsets.push(0usize);
        let mut col_idx = Vec::new();
        for i in 0..l {
            self.append_row(i, &mut col_idx);
            row_offsets.push(col_idx.len());
        }
        CsrMask::from_parts(l, l, row_offsets, col_idx)
            .expect("pattern emitted an invalid row: append_row must be sorted and in bounds")
    }

    /// Materialize as COO.
    fn to_coo(&self) -> CooMask {
        self.to_csr().to_coo()
    }

    /// Materialize as a dense bitmask (verification / SDP baseline input).
    fn to_dense(&self) -> DenseMask {
        let l = self.context_len();
        let mut buf = Vec::new();
        let mut m = DenseMask::zeros(l, l);
        for i in 0..l {
            buf.clear();
            self.append_row(i, &mut buf);
            for &j in &buf {
                m.set(i, j as usize, true);
            }
        }
        m
    }
}

/// Check the two `MaskPattern` consistency laws by brute force. Test-support
/// code used across this crate and downstream crates' tests.
pub fn check_pattern_laws(pattern: &dyn MaskPattern) {
    let l = pattern.context_len();
    let mut buf = Vec::new();
    let mut total = 0usize;
    for i in 0..l {
        buf.clear();
        pattern.append_row(i, &mut buf);
        // Law 1a: sorted strictly ascending (no duplicates).
        assert!(
            buf.windows(2).all(|w| w[0] < w[1]),
            "row {i} not sorted-unique: {buf:?}"
        );
        // Law 1b: row matches the membership predicate exactly.
        let from_contains: Vec<Idx> = (0..l)
            .filter(|&j| pattern.contains(i, j))
            .map(|j| j as Idx)
            .collect();
        assert_eq!(
            buf, from_contains,
            "row {i}: append_row disagrees with contains"
        );
        total += buf.len();
    }
    // Law 2: nnz agrees with enumeration (catches bad closed forms).
    assert_eq!(pattern.nnz(), total, "nnz() disagrees with row enumeration");
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal pattern for exercising trait defaults: the identity diagonal.
    struct Diagonal {
        l: usize,
    }

    impl MaskPattern for Diagonal {
        fn context_len(&self) -> usize {
            self.l
        }
        fn contains(&self, i: usize, j: usize) -> bool {
            i == j
        }
        fn append_row(&self, i: usize, out: &mut Vec<Idx>) {
            out.push(i as Idx);
        }
    }

    #[test]
    fn defaults_derive_from_rows() {
        let d = Diagonal { l: 8 };
        assert_eq!(d.nnz(), 8);
        assert!((d.sparsity_factor() - 1.0 / 8.0).abs() < 1e-15);
        let csr = d.to_csr();
        assert_eq!(csr.nnz(), 8);
        for i in 0..8 {
            assert_eq!(csr.row(i), &[i as Idx]);
        }
        let dense = d.to_dense();
        assert_eq!(dense.nnz(), 8);
        assert!(dense.get(3, 3));
        assert!(!dense.get(3, 4));
        let coo = d.to_coo();
        assert_eq!(coo.nnz(), 8);
        check_pattern_laws(&d);
    }

    #[test]
    fn zero_length_pattern() {
        let d = Diagonal { l: 0 };
        assert_eq!(d.nnz(), 0);
        assert_eq!(d.sparsity_factor(), 0.0);
        assert_eq!(d.to_csr().nnz(), 0);
    }
}
