#![warn(missing_docs)]
//! # gpa-masks — attention-mask pattern library
//!
//! Every sparsity pattern the paper uses (Section II-C, Fig. 2), as *rules*
//! rather than materialized matrices:
//!
//! | Pattern | Paper term | Type |
//! |---|---|---|
//! | `\|i−j\| ≤ n` | Local / windowed | [`LocalWindow`] |
//! | `\|i−j\| < w ∧ \|i−j\| mod (r+1) = 0` | 1-D dilated windowed | [`Dilated1d`] |
//! | diagonal blocks, dilated within | 2-D dilated windowed | [`Dilated2d`] |
//! | `i ∈ G ∨ j ∈ G` | Global | [`GlobalMask`] |
//! | global minus a local window | Global (non-local) | [`GlobalMinusLocal`] |
//! | i.i.d. Bernoulli / k-per-row | Random | [`RandomUniform`], [`RandomPerRow`] |
//! | diagonal blocks | Block sparse | [`BlockDiagonal`] |
//! | `j ≤ i` (+ window) | Causal decoding | [`Causal`], [`CausalLocal`] |
//!
//! [`combinators`] compose patterns set-algebraically; [`presets`] provide
//! Longformer, BigBird and LongNet exactly as benchmarked in Fig. 6 and
//! Table III; [`solve`] inverts nnz closed forms so benchmarks can sweep the
//! sparsity factor as the independent variable (Fig. 3).

pub mod block;
pub mod combinators;
pub mod dilated;
pub mod global;
pub mod local;
pub mod pattern;
pub mod presets;
pub mod random;
pub mod solve;

pub use block::{BlockDiagonal, Causal, CausalLocal};
pub use combinators::{Difference, Intersection, Union, UnionAll};
pub use dilated::{Dilated1d, Dilated2d};
pub use global::{GlobalMask, GlobalMinusLocal, GlobalSet};
pub use local::LocalWindow;
pub use pattern::{check_pattern_laws, MaskPattern};
pub use presets::{
    bigbird, longformer, longformer_dilated, longnet_dot_products, longnet_level,
    longnet_sparsity_factor, LongNetPattern,
};
pub use random::{RandomPerRow, RandomUniform};
pub use solve::{
    causal_local_window_for_sparsity, dilated1d_width_for_sparsity, dilated2d_block_for_sparsity,
    global_count_for_sparsity, local_window_for_sparsity, sparsity_error,
};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Pattern laws hold for randomly drawn parameters of each family.
        #[test]
        fn local_laws(l in 1usize..48, n in 0usize..64) {
            check_pattern_laws(&LocalWindow::new(l, n));
        }

        #[test]
        fn dilated1d_laws(l in 1usize..48, w in 0usize..64, r in 0usize..6) {
            check_pattern_laws(&Dilated1d::new(l, w, r));
        }

        #[test]
        fn dilated2d_laws(l in 1usize..48, bs in 1usize..32, r in 0usize..5) {
            check_pattern_laws(&Dilated2d::new(l, bs, r));
        }

        #[test]
        fn global_laws(l in 1usize..40, g in 0usize..8) {
            check_pattern_laws(&GlobalMask::new(GlobalSet::evenly_spaced(l, g)));
            check_pattern_laws(&GlobalMinusLocal::new(GlobalSet::evenly_spaced(l, g), 2));
        }

        /// The solver's achieved sparsity is locally optimal: no neighboring
        /// window does strictly better for the local family.
        #[test]
        fn local_solver_is_optimal(l in 64usize..512, sf in 0.001f64..0.9) {
            let n = local_window_for_sparsity(l, sf);
            let err_n = sparsity_error(LocalWindow::new(l, n).sparsity_factor(), sf);
            for cand in [n.saturating_sub(1), n + 1] {
                if cand < l && cand != n {
                    let err_c = sparsity_error(LocalWindow::new(l, cand).sparsity_factor(), sf);
                    prop_assert!(err_n <= err_c + 1e-12,
                        "n={n} err={err_n} but cand={cand} err={err_c}");
                }
            }
        }

        /// Union respects set bounds: max(|A|,|B|) ≤ |A∪B| ≤ |A|+|B|.
        #[test]
        fn union_identities(l in 1usize..32, n in 0usize..8, g in 0usize..4) {
            let local = LocalWindow::new(l, n);
            let global = GlobalMask::new(GlobalSet::evenly_spaced(l, g));
            let u = Union::new(local, global);
            prop_assert!(u.nnz() >= LocalWindow::new(l, n).nnz());
            prop_assert!(u.nnz() >= GlobalMask::new(GlobalSet::evenly_spaced(l, g)).nnz());
            prop_assert!(u.nnz() <= LocalWindow::new(l, n).nnz()
                + GlobalMask::new(GlobalSet::evenly_spaced(l, g)).nnz());
        }
    }
}
