//! Parameter solvers: fit a mask's shape parameter to a target sparsity
//! factor.
//!
//! The paper's microbenchmarks sweep the *sparsity factor* as the
//! independent variable: "the local, 1D dilation, and 2D dilation masks
//! calculated window/block size to fit the associated sparsity factor"
//! (Section V-C). These solvers invert the closed-form nnz expressions by
//! monotone bisection over the integer parameter, returning the parameter
//! whose achieved `Sf` is closest to the target.

use crate::block::CausalLocal;
use crate::dilated::{Dilated1d, Dilated2d};
use crate::global::GlobalMask;
use crate::local::LocalWindow;

/// Largest integer `p ∈ [lo, hi]` with `f(p) ≤ target`, assuming `f`
/// non-decreasing; then pick whichever of `p`/`p+1` lands closer to the
/// target. Returns `lo` if even `f(lo) > target`.
fn closest_monotone(lo: usize, hi: usize, target: f64, f: impl Fn(usize) -> f64) -> usize {
    let (mut lo_b, mut hi_b) = (lo, hi);
    if f(lo) > target {
        return lo;
    }
    // Invariant: f(lo_b) ≤ target < f(hi_b + 1) conceptually.
    while lo_b < hi_b {
        let mid = lo_b + (hi_b - lo_b).div_ceil(2);
        if f(mid) <= target {
            lo_b = mid;
        } else {
            hi_b = mid - 1;
        }
    }
    // Check whether overshooting by one parameter step is closer.
    if lo_b < hi {
        let under = (target - f(lo_b)).abs();
        let over = (f(lo_b + 1) - target).abs();
        if over < under {
            return lo_b + 1;
        }
    }
    lo_b
}

/// Window `n` for [`LocalWindow`] whose sparsity factor is closest to `sf`.
pub fn local_window_for_sparsity(l: usize, sf: f64) -> usize {
    assert!(l > 0, "empty context");
    let target = sf * (l as f64) * (l as f64);
    closest_monotone(0, l - 1, target, |n| {
        LocalWindow::nnz_closed_form(l, n) as f64
    })
}

/// Width `w` for [`Dilated1d`] with dilation `r` closest to `sf`.
pub fn dilated1d_width_for_sparsity(l: usize, r: usize, sf: f64) -> usize {
    assert!(l > 0, "empty context");
    let target = sf * (l as f64) * (l as f64);
    // w ranges over 1 ..= (l−1)·(r+1)+1 (beyond that no new offsets fit).
    let w_max = (l - 1).saturating_mul(r + 1) + 1;
    closest_monotone(1, w_max, target, |w| {
        Dilated1d::nnz_closed_form(l, w, r) as f64
    })
}

/// Block size for [`Dilated2d`] with dilation `r` closest to `sf`.
pub fn dilated2d_block_for_sparsity(l: usize, r: usize, sf: f64) -> usize {
    assert!(l > 0, "empty context");
    let target = sf * (l as f64) * (l as f64);
    closest_monotone(1, l, target, |bs| {
        Dilated2d::nnz_closed_form(l, bs, r) as f64
    })
}

/// Number of global tokens for [`GlobalMask`] closest to `sf`
/// (closed form: `g = L·(1 − √(1 − Sf))`, then integer-refined).
pub fn global_count_for_sparsity(l: usize, sf: f64) -> usize {
    assert!(l > 0, "empty context");
    let target = sf * (l as f64) * (l as f64);
    closest_monotone(0, l, target, |g| GlobalMask::nnz_closed_form(l, g) as f64)
}

/// Backward window for [`CausalLocal`] closest to `sf`.
pub fn causal_local_window_for_sparsity(l: usize, sf: f64) -> usize {
    assert!(l > 0, "empty context");
    let target = sf * (l as f64) * (l as f64);
    closest_monotone(0, l - 1, target, |n| {
        CausalLocal::nnz_closed_form(l, n) as f64
    })
}

/// Relative error between a mask's achieved sparsity factor and the target.
pub fn sparsity_error(achieved: f64, target: f64) -> f64 {
    if target == 0.0 {
        achieved
    } else {
        (achieved - target).abs() / target
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::MaskPattern;

    #[test]
    fn local_solver_hits_targets() {
        let l = 4096;
        for sf in [0.5, 0.1, 0.01] {
            let n = local_window_for_sparsity(l, sf);
            let achieved = LocalWindow::new(l, n).sparsity_factor();
            assert!(
                sparsity_error(achieved, sf) < 0.05,
                "sf={sf} n={n} achieved={achieved}"
            );
        }
        // At sf = 0.001 one window step changes nnz by ~2L/L² = 25% of the
        // target: the solver can only quantize. Check it picks the closest.
        let n = local_window_for_sparsity(l, 0.001);
        let err = sparsity_error(LocalWindow::new(l, n).sparsity_factor(), 0.001);
        for cand in [n.saturating_sub(1), n + 1] {
            let e = sparsity_error(LocalWindow::new(l, cand).sparsity_factor(), 0.001);
            assert!(err <= e, "neighbor {cand} beats chosen {n}");
        }
    }

    #[test]
    fn local_solver_extremes() {
        // Denser than achievable with max window → clamps to max.
        assert_eq!(local_window_for_sparsity(16, 1.0), 15);
        // Sparser than the diagonal → clamps to 0.
        assert_eq!(local_window_for_sparsity(16, 0.0), 0);
    }

    #[test]
    fn dilated1d_solver_hits_targets() {
        let l = 4096;
        for r in [1usize, 2] {
            for sf in [0.1, 0.01] {
                let w = dilated1d_width_for_sparsity(l, r, sf);
                let achieved = Dilated1d::new(l, w, r).sparsity_factor();
                assert!(
                    sparsity_error(achieved, sf) < 0.05,
                    "r={r} sf={sf} w={w} achieved={achieved}"
                );
            }
            // Near the quantization floor (one dilation step ≈ 2/L of Sf
            // per row), accept the closest representable value.
            let w = dilated1d_width_for_sparsity(l, r, 0.001);
            let achieved = Dilated1d::new(l, w, r).sparsity_factor();
            let step = 2.0 / l as f64 / 0.001; // relative size of one step
            assert!(
                sparsity_error(achieved, 0.001) <= step,
                "r={r} w={w} achieved={achieved}"
            );
        }
    }

    #[test]
    fn dilated2d_solver_hits_targets() {
        let l = 4096;
        // With dilation r the densest achievable Sf is ≈ (1/(r+1))² (one
        // full dilated block): keep targets below that ceiling.
        for r in [1usize, 3] {
            let ceiling = 1.0 / ((r + 1) * (r + 1)) as f64;
            for sf in [0.01, 0.001] {
                assert!(sf < ceiling);
                let bs = dilated2d_block_for_sparsity(l, r, sf);
                let achieved = Dilated2d::new(l, bs, r).sparsity_factor();
                // Block-size granularity is coarse (nnz ∝ bs): allow 20%.
                assert!(
                    sparsity_error(achieved, sf) < 0.2,
                    "r={r} sf={sf} bs={bs} achieved={achieved}"
                );
            }
            // Unachievable target clamps to the densest block size.
            let bs = dilated2d_block_for_sparsity(l, r, ceiling * 2.0);
            assert_eq!(bs, l, "r={r}: expected clamp to full context");
        }
    }

    #[test]
    fn global_solver_matches_closed_form() {
        let l = 10_000;
        for sf in [0.2, 0.05, 0.001] {
            let g = global_count_for_sparsity(l, sf);
            let analytic = l as f64 * (1.0 - (1.0 - sf).sqrt());
            assert!(
                (g as f64 - analytic).abs() <= 1.0,
                "sf={sf}: g={g} analytic={analytic}"
            );
        }
    }

    #[test]
    fn causal_solver_hits_targets() {
        let l = 2048;
        for sf in [0.4, 0.05, 0.005] {
            let n = causal_local_window_for_sparsity(l, sf);
            let achieved = CausalLocal::new(l, n).sparsity_factor();
            assert!(
                sparsity_error(achieved, sf) < 0.05,
                "sf={sf} n={n} achieved={achieved}"
            );
        }
    }

    #[test]
    fn solver_is_monotone_in_target() {
        let l = 1024;
        let mut last = 0;
        for sf in [0.001, 0.01, 0.1, 0.5, 1.0] {
            let n = local_window_for_sparsity(l, sf);
            assert!(n >= last, "sf={sf}: window must grow with target");
            last = n;
        }
    }
}
