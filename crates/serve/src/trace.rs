//! Seeded workload traces and the virtual-clock replay harness.
//!
//! A trace is a list of (arrival tick, [`ServeRequest`]) events, generated
//! deterministically from a [`TraceSpec`] seed — mixed prompt lengths,
//! decode lengths, priorities, plans, and inter-arrival gaps. [`replay`]
//! drives a [`Scheduler`] through a trace on its virtual clock, and
//! [`sequential_reference`] computes what any single sequence *must*
//! produce (the naive one-sequence-at-a-time serving loop: chunked prefill
//! plus per-token decode). Because batched launches do identical per-row
//! work, the scheduler's outputs are **bitwise equal** to the reference —
//! the property `tests/serving_sim.rs` checks across randomized traces.
//!
//! Decoder-model workloads have the same trio: [`generate_model_trace`]
//! draws (arrival tick, [`ModelRequest`]) events from the same spec shape,
//! [`replay_mixed`] drives a scheduler through plan and model traces
//! merged on one clock, and [`sequential_model_reference`] is the
//! one-sequence-at-a-time decoder-stack serve the batched path must
//! reproduce bitwise.

use crate::error::ServeError;
use crate::request::{Completion, ModelId, ModelRequest, PatternChoice, ServeRequest};
use crate::scheduler::Scheduler;
use gpa_core::{AttentionEngine, AttentionPlan, AttnError, KvCache, PagePool};
use gpa_model::{DecoderModel, ModelError, ModelKvState};
use gpa_tensor::{
    init::{gaussian_matrix, qkv},
    Matrix, Real,
};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Shape of a randomized serving workload — every field inclusive-range or
/// count, every draw taken from one seeded generator.
#[derive(Clone, Copy, Debug)]
pub struct TraceSpec {
    /// Number of sequences in the trace.
    pub sequences: usize,
    /// Inclusive range of prompt lengths.
    pub prompt: (usize, usize),
    /// Inclusive range of generated-token counts (0 allowed: prefill-only
    /// sequences).
    pub decode: (usize, usize),
    /// Key/value dimension of every sequence.
    pub dk: usize,
    /// Inclusive range of inter-arrival gaps, in ticks.
    pub arrival_gap: (u64, u64),
    /// Priorities are drawn uniformly from `0..priority_classes`
    /// (clamped to at least one class).
    pub priority_classes: u8,
    /// Master seed — same spec, same trace, bit for bit.
    pub seed: u64,
}

impl Default for TraceSpec {
    fn default() -> Self {
        TraceSpec {
            sequences: 8,
            prompt: (4, 16),
            decode: (0, 8),
            dk: 8,
            arrival_gap: (0, 2),
            priority_classes: 1,
            seed: 0x5EED,
        }
    }
}

/// One trace event: the request and the tick it arrives at.
#[derive(Clone)]
pub struct TraceEvent<T> {
    /// Arrival tick (nondecreasing across a generated trace).
    pub at: u64,
    /// The request to submit at that tick.
    pub request: ServeRequest<T>,
}

fn draw_incl(rng: &mut StdRng, (lo, hi): (usize, usize)) -> usize {
    assert!(lo <= hi, "empty range");
    lo + rng.gen_range(0..hi - lo + 1)
}

/// Generate a seeded workload trace, drawing each sequence's pattern
/// uniformly at random from `patterns` — a slice of [`crate::PlanId`]s for
/// a classic per-plan workload, or of [`PatternChoice`]s to mix explicit
/// plans with [`PatternChoice::Auto`] sequences whose plan the scheduler
/// resolves at admission. Events come back sorted by arrival tick, ready
/// for [`replay`].
///
/// # Panics
/// Panics if `patterns` is empty or a spec range is empty/inverted.
pub fn generate_trace<T: Real, C: Into<PatternChoice> + Copy>(
    spec: &TraceSpec,
    patterns: &[C],
) -> Vec<TraceEvent<T>> {
    assert!(!patterns.is_empty(), "a trace needs at least one pattern");
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let classes = spec.priority_classes.max(1);
    let mut at = 0u64;
    (0..spec.sequences)
        .map(|i| {
            let prompt = draw_incl(&mut rng, spec.prompt).max(1);
            let decode = draw_incl(&mut rng, spec.decode);
            let total = prompt + decode;
            let (q, k, v) = qkv::<T>(
                total,
                spec.dk,
                spec.seed ^ (0xA5A5_0000 + i as u64).wrapping_mul(0x9E37),
            );
            let priority = rng.gen_range(0..classes as usize) as u8;
            let pattern = patterns[rng.gen_range(0..patterns.len())].into();
            let (glo, ghi) = spec.arrival_gap;
            assert!(glo <= ghi, "empty arrival-gap range");
            at += glo + rng.gen_range(0..(ghi - glo + 1) as usize) as u64;
            TraceEvent {
                at,
                request: ServeRequest {
                    pattern,
                    priority,
                    prompt,
                    q,
                    k,
                    v,
                },
            }
        })
        .collect()
}

/// One decoder-model trace event: the request and the tick it arrives at.
#[derive(Clone)]
pub struct ModelTraceEvent<T> {
    /// Arrival tick (nondecreasing across a generated trace).
    pub at: u64,
    /// The model request to submit at that tick.
    pub request: ModelRequest<T>,
}

/// Generate a seeded decoder-model workload trace, drawing each sequence's
/// model uniformly from `models` (pairs of registered id and that model's
/// `d_model`, which sizes the embedding rows). The same [`TraceSpec`]
/// fields govern prompt/decode lengths, priorities, and arrival gaps;
/// `spec.dk` is unused (a model's widths are its own). Events come back
/// sorted by arrival tick, ready for [`replay_mixed`].
///
/// # Panics
/// Panics if `models` is empty or a spec range is empty/inverted.
pub fn generate_model_trace<T: Real>(
    spec: &TraceSpec,
    models: &[(ModelId, usize)],
) -> Vec<ModelTraceEvent<T>> {
    assert!(!models.is_empty(), "a trace needs at least one model");
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let classes = spec.priority_classes.max(1);
    let mut at = 0u64;
    (0..spec.sequences)
        .map(|i| {
            let prompt = draw_incl(&mut rng, spec.prompt).max(1);
            let decode = draw_incl(&mut rng, spec.decode);
            let total = prompt + decode;
            let (model, d_model) = models[rng.gen_range(0..models.len())];
            let x = gaussian_matrix(
                total,
                d_model,
                1.0,
                spec.seed ^ (0xD0DE_0000 + i as u64).wrapping_mul(0x9E37),
            );
            let priority = rng.gen_range(0..classes as usize) as u8;
            let (glo, ghi) = spec.arrival_gap;
            assert!(glo <= ghi, "empty arrival-gap range");
            at += glo + rng.gen_range(0..(ghi - glo + 1) as usize) as u64;
            ModelTraceEvent {
                at,
                request: ModelRequest {
                    model,
                    priority,
                    prompt,
                    x,
                },
            }
        })
        .collect()
}

/// Drive `scheduler` through a trace on its virtual clock: events are
/// submitted when the clock reaches their arrival tick, the scheduler
/// ticks until idle, and all completions come back in completion order.
///
/// `max_ticks` bounds the drive — exceeding it returns
/// [`ServeError::NotDrained`], which doubles as the simulation's
/// starvation check: on a healthy scheduler every submitted sequence
/// completes within a bound computable from the trace itself.
///
/// # Panics
/// Panics if the trace is not sorted by arrival tick.
pub fn replay<T: Real>(
    scheduler: &mut Scheduler<'_, T>,
    trace: &[TraceEvent<T>],
    max_ticks: u64,
) -> Result<Vec<Completion<T>>, ServeError> {
    assert!(
        trace.windows(2).all(|w| w[0].at <= w[1].at),
        "trace events must be sorted by arrival tick"
    );
    let mut completions = Vec::new();
    let mut next = 0usize;
    let mut ticks = 0u64;
    while next < trace.len() || !scheduler.is_idle() {
        while next < trace.len() && trace[next].at <= scheduler.now() {
            scheduler.submit(trace[next].request.clone())?;
            next += 1;
        }
        completions.extend(scheduler.tick()?.completed);
        ticks += 1;
        if ticks > max_ticks {
            return Err(ServeError::NotDrained {
                ticks,
                outstanding: (trace.len() - next) + scheduler.outstanding(),
            });
        }
    }
    Ok(completions)
}

/// Drive `scheduler` through plan and decoder-model traces merged on one
/// virtual clock: each trace's events are submitted when the clock reaches
/// their arrival tick (every due plan event before every due model event
/// within a tick), the scheduler ticks until idle, and all completions —
/// both flavors — come back in completion order.
///
/// `max_ticks` bounds the drive exactly as in [`replay`]. Passing an empty
/// `attn` slice makes this a pure model replay.
///
/// # Panics
/// Panics if either trace is not sorted by arrival tick.
pub fn replay_mixed<T: Real>(
    scheduler: &mut Scheduler<'_, T>,
    attn: &[TraceEvent<T>],
    model: &[ModelTraceEvent<T>],
    max_ticks: u64,
) -> Result<Vec<Completion<T>>, ServeError> {
    assert!(
        attn.windows(2).all(|w| w[0].at <= w[1].at),
        "trace events must be sorted by arrival tick"
    );
    assert!(
        model.windows(2).all(|w| w[0].at <= w[1].at),
        "trace events must be sorted by arrival tick"
    );
    let mut completions = Vec::new();
    let mut next_a = 0usize;
    let mut next_m = 0usize;
    let mut ticks = 0u64;
    while next_a < attn.len() || next_m < model.len() || !scheduler.is_idle() {
        while next_a < attn.len() && attn[next_a].at <= scheduler.now() {
            scheduler.submit(attn[next_a].request.clone())?;
            next_a += 1;
        }
        while next_m < model.len() && model[next_m].at <= scheduler.now() {
            scheduler.submit_model(model[next_m].request.clone())?;
            next_m += 1;
        }
        completions.extend(scheduler.tick()?.completed);
        ticks += 1;
        if ticks > max_ticks {
            return Err(ServeError::NotDrained {
                ticks,
                outstanding: (attn.len() - next_a)
                    + (model.len() - next_m)
                    + scheduler.outstanding(),
            });
        }
    }
    Ok(completions)
}

/// The naive one-sequence-at-a-time serving reference: chunked prefill of
/// the prompt into a fresh cache, then one [`AttentionEngine::decode_step`]
/// per generated token. Returns the sequence's full `total × dv` output —
/// what the continuous-batching scheduler must reproduce **bitwise**.
pub fn sequential_reference<T: Real>(
    engine: &AttentionEngine,
    plan: &AttentionPlan<'_>,
    request: &ServeRequest<T>,
    prefill_chunk: usize,
) -> Result<Matrix<T>, AttnError> {
    let total = request.q.rows();
    let prompt = request.prompt;
    let mut cache = KvCache::single(request.k.cols(), request.v.cols());
    let mut out = Matrix::zeros(total, request.v.cols());
    let prefill = engine.prefill_chunked(
        plan,
        &request.q.rows_slice(0, prompt),
        &request.k.rows_slice(0, prompt),
        &request.v.rows_slice(0, prompt),
        prefill_chunk,
        &mut cache,
    )?;
    for i in 0..prompt {
        out.row_mut(i).copy_from_slice(prefill.row(i));
    }
    for t in prompt..total {
        let row = engine.decode_step(
            plan,
            &request.q.rows_slice(t, t + 1),
            &request.k.rows_slice(t, t + 1),
            &request.v.rows_slice(t, t + 1),
            &mut cache,
        )?;
        out.row_mut(t).copy_from_slice(row.row(0));
    }
    Ok(out)
}

/// The naive one-sequence-at-a-time decoder-stack serving reference:
/// chunked prefill of the prompt through every layer into a fresh
/// per-layer KV state, then one [`DecoderModel::forward_decode`] per
/// generated token. Returns the sequence's full `total × d_model` output —
/// what the continuous-batching scheduler must reproduce **bitwise** for a
/// model sequence served with the same `prefill_chunk` (the pool's page
/// size is pure accounting and never touches the numerics).
pub fn sequential_model_reference<T: Real>(
    engine: &AttentionEngine,
    model: &DecoderModel<'_, T>,
    request: &ModelRequest<T>,
    prefill_chunk: usize,
) -> Result<Matrix<T>, ModelError> {
    let total = request.x.rows();
    let prompt = request.prompt;
    // A private single-sequence pool sized to hold the whole stack.
    let mut pool = PagePool::new(model.layers() * total, 1);
    let state = ModelKvState::allocate(model, &mut pool);
    let mut out = Matrix::zeros(total, model.d_model());
    let prefill = model.forward_prefill_chunked(
        engine,
        &mut pool,
        &state,
        &request.x.rows_slice(0, prompt),
        prefill_chunk,
    )?;
    for i in 0..prompt {
        out.row_mut(i).copy_from_slice(prefill.row(i));
    }
    for t in prompt..total {
        let row =
            model.forward_decode(engine, &mut pool, &state, &request.x.rows_slice(t, t + 1))?;
        out.row_mut(t).copy_from_slice(row.row(0));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::PlanId;
    use crate::scheduler::ServeConfig;
    use gpa_core::{AttentionKernel, AttentionPlan};

    #[test]
    fn traces_are_deterministic_and_sorted() {
        let spec = TraceSpec {
            sequences: 12,
            priority_classes: 3,
            ..TraceSpec::default()
        };
        let plans = [PlanId(0), PlanId(1)];
        let a: Vec<TraceEvent<f64>> = generate_trace(&spec, &plans);
        let b: Vec<TraceEvent<f64>> = generate_trace(&spec, &plans);
        assert_eq!(a.len(), 12);
        assert!(a.windows(2).all(|w| w[0].at <= w[1].at));
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.at, y.at);
            assert_eq!(x.request.q, y.request.q, "same seed, same data");
            assert_eq!(x.request.priority, y.request.priority);
        }
        let other: Vec<TraceEvent<f64>> = generate_trace(
            &TraceSpec {
                seed: spec.seed ^ 1,
                ..spec
            },
            &plans,
        );
        assert!(
            a.iter()
                .zip(&other)
                .any(|(x, y)| x.request.q != y.request.q),
            "different seeds must differ"
        );
    }

    #[test]
    fn replay_drains_and_matches_the_reference() {
        let mut scheduler: Scheduler<'static, f64> = Scheduler::new(
            AttentionEngine::with_threads(2),
            ServeConfig {
                max_in_flight: 3,
                kv_pages: 16,
                page_size: 8,
                arrival_window: 1,
                prefill_chunk: 4,
                admission: crate::scheduler::AdmissionMode::PagedUsage,
                eviction: crate::scheduler::EvictionMode::Recompute,
                swap_bytes: usize::MAX,
            },
        )
        .unwrap();
        let plan = scheduler
            .register_plan(AttentionPlan::single(AttentionKernel::Local { n: 2 }).unwrap())
            .unwrap();
        let trace: Vec<TraceEvent<f64>> = generate_trace(
            &TraceSpec {
                sequences: 6,
                prompt: (2, 9),
                decode: (0, 5),
                dk: 4,
                arrival_gap: (0, 3),
                priority_classes: 2,
                seed: 7,
            },
            &[plan],
        );
        let completions = replay(&mut scheduler, &trace, 10_000).unwrap();
        assert_eq!(completions.len(), trace.len());
        for c in &completions {
            // Ids are assigned in submission (= trace) order.
            let event = &trace[c.id.as_u64() as usize];
            let plan = c.target.plan().expect("a plan-only trace");
            let expect = sequential_reference(
                scheduler.engine(),
                scheduler.plan(plan),
                &event.request,
                scheduler.config().prefill_chunk,
            )
            .unwrap();
            assert_eq!(c.output, expect, "must be bitwise the sequential serve");
        }
    }

    #[test]
    fn model_traces_are_deterministic_and_mixed_replay_drains() {
        use gpa_model::LayerPattern;

        let spec = TraceSpec {
            sequences: 4,
            prompt: (2, 6),
            decode: (0, 4),
            dk: 4,
            arrival_gap: (0, 2),
            priority_classes: 2,
            seed: 99,
        };
        let models = [(ModelId(0), 8usize)];
        let a: Vec<ModelTraceEvent<f64>> = generate_model_trace(&spec, &models);
        let b: Vec<ModelTraceEvent<f64>> = generate_model_trace(&spec, &models);
        assert_eq!(a.len(), 4);
        assert!(a.windows(2).all(|w| w[0].at <= w[1].at));
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.at, y.at);
            assert_eq!(x.request.x, y.request.x, "same seed, same data");
        }

        let mut scheduler: Scheduler<'static, f64> = Scheduler::new(
            AttentionEngine::with_threads(2),
            ServeConfig {
                max_in_flight: 3,
                kv_pages: 64,
                page_size: 4,
                arrival_window: 1,
                prefill_chunk: 3,
                admission: crate::scheduler::AdmissionMode::PagedUsage,
                eviction: crate::scheduler::EvictionMode::Recompute,
                swap_bytes: usize::MAX,
            },
        )
        .unwrap();
        let plan = scheduler
            .register_plan(AttentionPlan::single(AttentionKernel::Local { n: 2 }).unwrap())
            .unwrap();
        let model = scheduler.register_model(
            DecoderModel::new(
                LayerPattern::parse("FS").unwrap(),
                vec![
                    (
                        'F',
                        AttentionPlan::single(AttentionKernel::Local { n: 2 }).unwrap(),
                    ),
                    (
                        'S',
                        AttentionPlan::single(AttentionKernel::Dilated1d { w: 2, r: 2 }).unwrap(),
                    ),
                ],
                8,
                2,
                4,
                0xFACE,
            )
            .unwrap(),
        );
        assert_eq!(model, ModelId(0));
        let attn: Vec<TraceEvent<f64>> = generate_trace(
            &TraceSpec {
                sequences: 3,
                seed: 98,
                ..spec
            },
            &[plan],
        );
        let completions = replay_mixed(&mut scheduler, &attn, &a, 10_000).unwrap();
        assert_eq!(completions.len(), attn.len() + a.len());
        // Ids follow submission order: the two sorted traces merged by
        // arrival tick, due plan events before due model events on ties
        // (exactly `replay_mixed`'s per-tick submission order).
        let mut order: Vec<(bool, usize)> = Vec::new();
        let (mut i, mut j) = (0usize, 0usize);
        while i < attn.len() || j < a.len() {
            if j >= a.len() || (i < attn.len() && attn[i].at <= a[j].at) {
                order.push((false, i));
                i += 1;
            } else {
                order.push((true, j));
                j += 1;
            }
        }
        let chunk = scheduler.config().prefill_chunk;
        for c in &completions {
            let (is_model, idx) = order[c.id.as_u64() as usize];
            match c.target {
                crate::request::ServeTarget::Plan(p) => {
                    assert!(!is_model, "submission order maps ids to flavors");
                    let expect = sequential_reference(
                        scheduler.engine(),
                        scheduler.plan(p),
                        &attn[idx].request,
                        chunk,
                    )
                    .unwrap();
                    assert_eq!(c.output, expect, "bitwise the sequential serve");
                }
                crate::request::ServeTarget::Model(m) => {
                    assert!(is_model, "submission order maps ids to flavors");
                    let expect = sequential_model_reference(
                        scheduler.engine(),
                        scheduler.model(m),
                        &a[idx].request,
                        chunk,
                    )
                    .unwrap();
                    assert_eq!(c.output, expect, "bitwise the sequential model serve");
                }
            }
        }
    }

    #[test]
    fn replay_reports_starvation_via_tick_bound() {
        let mut scheduler: Scheduler<'static, f64> =
            Scheduler::new(AttentionEngine::with_threads(1), ServeConfig::default()).unwrap();
        let plan = scheduler
            .register_plan(AttentionPlan::single(AttentionKernel::Local { n: 1 }).unwrap())
            .unwrap();
        let trace: Vec<TraceEvent<f64>> = generate_trace(
            &TraceSpec {
                sequences: 4,
                ..TraceSpec::default()
            },
            &[plan],
        );
        assert!(matches!(
            replay(&mut scheduler, &trace, 2),
            Err(ServeError::NotDrained { .. })
        ));
    }
}
