//! Seeded workload traces and the virtual-clock replay harness.
//!
//! A trace is a list of (arrival tick, [`ServeRequest`]) events, generated
//! deterministically from a [`TraceSpec`] seed — mixed prompt lengths,
//! decode lengths, priorities, plans, and inter-arrival gaps. [`replay`]
//! drives a [`Scheduler`] through a trace on its virtual clock, and
//! [`sequential_reference`] computes what any single sequence *must*
//! produce (the naive one-sequence-at-a-time serving loop: chunked prefill
//! plus per-token decode). Because batched launches do identical per-row
//! work, the scheduler's outputs are **bitwise equal** to the reference —
//! the property `tests/serving_sim.rs` checks across randomized traces.

use crate::error::ServeError;
use crate::request::{Completion, PlanId, ServeRequest};
use crate::scheduler::Scheduler;
use gpa_core::{AttentionEngine, AttentionPlan, AttnError, KvCache};
use gpa_tensor::{init::qkv, Matrix, Real};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Shape of a randomized serving workload — every field inclusive-range or
/// count, every draw taken from one seeded generator.
#[derive(Clone, Copy, Debug)]
pub struct TraceSpec {
    /// Number of sequences in the trace.
    pub sequences: usize,
    /// Inclusive range of prompt lengths.
    pub prompt: (usize, usize),
    /// Inclusive range of generated-token counts (0 allowed: prefill-only
    /// sequences).
    pub decode: (usize, usize),
    /// Key/value dimension of every sequence.
    pub dk: usize,
    /// Inclusive range of inter-arrival gaps, in ticks.
    pub arrival_gap: (u64, u64),
    /// Priorities are drawn uniformly from `0..priority_classes`
    /// (clamped to at least one class).
    pub priority_classes: u8,
    /// Master seed — same spec, same trace, bit for bit.
    pub seed: u64,
}

impl Default for TraceSpec {
    fn default() -> Self {
        TraceSpec {
            sequences: 8,
            prompt: (4, 16),
            decode: (0, 8),
            dk: 8,
            arrival_gap: (0, 2),
            priority_classes: 1,
            seed: 0x5EED,
        }
    }
}

/// One trace event: the request and the tick it arrives at.
#[derive(Clone)]
pub struct TraceEvent<T> {
    /// Arrival tick (nondecreasing across a generated trace).
    pub at: u64,
    /// The request to submit at that tick.
    pub request: ServeRequest<T>,
}

fn draw_incl(rng: &mut StdRng, (lo, hi): (usize, usize)) -> usize {
    assert!(lo <= hi, "empty range");
    lo + rng.gen_range(0..hi - lo + 1)
}

/// Generate a seeded workload trace, cycling requests over `plans`
/// (uniformly at random). Events come back sorted by arrival tick, ready
/// for [`replay`].
///
/// # Panics
/// Panics if `plans` is empty or a spec range is empty/inverted.
pub fn generate_trace<T: Real>(spec: &TraceSpec, plans: &[PlanId]) -> Vec<TraceEvent<T>> {
    assert!(!plans.is_empty(), "a trace needs at least one plan");
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let classes = spec.priority_classes.max(1);
    let mut at = 0u64;
    (0..spec.sequences)
        .map(|i| {
            let prompt = draw_incl(&mut rng, spec.prompt).max(1);
            let decode = draw_incl(&mut rng, spec.decode);
            let total = prompt + decode;
            let (q, k, v) = qkv::<T>(
                total,
                spec.dk,
                spec.seed ^ (0xA5A5_0000 + i as u64).wrapping_mul(0x9E37),
            );
            let priority = rng.gen_range(0..classes as usize) as u8;
            let plan = plans[rng.gen_range(0..plans.len())];
            let (glo, ghi) = spec.arrival_gap;
            assert!(glo <= ghi, "empty arrival-gap range");
            at += glo + rng.gen_range(0..(ghi - glo + 1) as usize) as u64;
            TraceEvent {
                at,
                request: ServeRequest {
                    plan,
                    priority,
                    prompt,
                    q,
                    k,
                    v,
                },
            }
        })
        .collect()
}

/// Drive `scheduler` through a trace on its virtual clock: events are
/// submitted when the clock reaches their arrival tick, the scheduler
/// ticks until idle, and all completions come back in completion order.
///
/// `max_ticks` bounds the drive — exceeding it returns
/// [`ServeError::NotDrained`], which doubles as the simulation's
/// starvation check: on a healthy scheduler every submitted sequence
/// completes within a bound computable from the trace itself.
///
/// # Panics
/// Panics if the trace is not sorted by arrival tick.
pub fn replay<T: Real>(
    scheduler: &mut Scheduler<'_, T>,
    trace: &[TraceEvent<T>],
    max_ticks: u64,
) -> Result<Vec<Completion<T>>, ServeError> {
    assert!(
        trace.windows(2).all(|w| w[0].at <= w[1].at),
        "trace events must be sorted by arrival tick"
    );
    let mut completions = Vec::new();
    let mut next = 0usize;
    let mut ticks = 0u64;
    while next < trace.len() || !scheduler.is_idle() {
        while next < trace.len() && trace[next].at <= scheduler.now() {
            scheduler.submit(trace[next].request.clone())?;
            next += 1;
        }
        completions.extend(scheduler.tick()?.completed);
        ticks += 1;
        if ticks > max_ticks {
            return Err(ServeError::NotDrained {
                ticks,
                outstanding: (trace.len() - next) + scheduler.outstanding(),
            });
        }
    }
    Ok(completions)
}

/// The naive one-sequence-at-a-time serving reference: chunked prefill of
/// the prompt into a fresh cache, then one [`AttentionEngine::decode_step`]
/// per generated token. Returns the sequence's full `total × dv` output —
/// what the continuous-batching scheduler must reproduce **bitwise**.
pub fn sequential_reference<T: Real>(
    engine: &AttentionEngine,
    plan: &AttentionPlan<'_>,
    request: &ServeRequest<T>,
    prefill_chunk: usize,
) -> Result<Matrix<T>, AttnError> {
    let total = request.q.rows();
    let prompt = request.prompt;
    let mut cache = KvCache::single(request.k.cols(), request.v.cols());
    let mut out = Matrix::zeros(total, request.v.cols());
    let prefill = engine.prefill_chunked(
        plan,
        &request.q.rows_slice(0, prompt),
        &request.k.rows_slice(0, prompt),
        &request.v.rows_slice(0, prompt),
        prefill_chunk,
        &mut cache,
    )?;
    for i in 0..prompt {
        out.row_mut(i).copy_from_slice(prefill.row(i));
    }
    for t in prompt..total {
        let row = engine.decode_step(
            plan,
            &request.q.rows_slice(t, t + 1),
            &request.k.rows_slice(t, t + 1),
            &request.v.rows_slice(t, t + 1),
            &mut cache,
        )?;
        out.row_mut(t).copy_from_slice(row.row(0));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::ServeConfig;
    use gpa_core::{AttentionKernel, AttentionPlan};

    #[test]
    fn traces_are_deterministic_and_sorted() {
        let spec = TraceSpec {
            sequences: 12,
            priority_classes: 3,
            ..TraceSpec::default()
        };
        let plans = [PlanId(0), PlanId(1)];
        let a: Vec<TraceEvent<f64>> = generate_trace(&spec, &plans);
        let b: Vec<TraceEvent<f64>> = generate_trace(&spec, &plans);
        assert_eq!(a.len(), 12);
        assert!(a.windows(2).all(|w| w[0].at <= w[1].at));
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.at, y.at);
            assert_eq!(x.request.q, y.request.q, "same seed, same data");
            assert_eq!(x.request.priority, y.request.priority);
        }
        let other: Vec<TraceEvent<f64>> = generate_trace(
            &TraceSpec {
                seed: spec.seed ^ 1,
                ..spec
            },
            &plans,
        );
        assert!(
            a.iter()
                .zip(&other)
                .any(|(x, y)| x.request.q != y.request.q),
            "different seeds must differ"
        );
    }

    #[test]
    fn replay_drains_and_matches_the_reference() {
        let mut scheduler: Scheduler<'static, f64> = Scheduler::new(
            AttentionEngine::with_threads(2),
            ServeConfig {
                max_in_flight: 3,
                kv_pages: 16,
                page_size: 8,
                arrival_window: 1,
                prefill_chunk: 4,
                admission: crate::scheduler::AdmissionMode::PagedUsage,
            },
        )
        .unwrap();
        let plan = scheduler
            .register_plan(AttentionPlan::single(AttentionKernel::Local { n: 2 }).unwrap())
            .unwrap();
        let trace: Vec<TraceEvent<f64>> = generate_trace(
            &TraceSpec {
                sequences: 6,
                prompt: (2, 9),
                decode: (0, 5),
                dk: 4,
                arrival_gap: (0, 3),
                priority_classes: 2,
                seed: 7,
            },
            &[plan],
        );
        let completions = replay(&mut scheduler, &trace, 10_000).unwrap();
        assert_eq!(completions.len(), trace.len());
        for c in &completions {
            // Ids are assigned in submission (= trace) order.
            let event = &trace[c.id.as_u64() as usize];
            let expect = sequential_reference(
                scheduler.engine(),
                scheduler.plan(c.plan),
                &event.request,
                scheduler.config().prefill_chunk,
            )
            .unwrap();
            assert_eq!(c.output, expect, "must be bitwise the sequential serve");
        }
    }

    #[test]
    fn replay_reports_starvation_via_tick_bound() {
        let mut scheduler: Scheduler<'static, f64> =
            Scheduler::new(AttentionEngine::with_threads(1), ServeConfig::default()).unwrap();
        let plan = scheduler
            .register_plan(AttentionPlan::single(AttentionKernel::Local { n: 1 }).unwrap())
            .unwrap();
        let trace: Vec<TraceEvent<f64>> = generate_trace(
            &TraceSpec {
                sequences: 4,
                ..TraceSpec::default()
            },
            &[plan],
        );
        assert!(matches!(
            replay(&mut scheduler, &trace, 2),
            Err(ServeError::NotDrained { .. })
        ));
    }
}
