//! Request, completion, and per-tick report types for the scheduler.

use gpa_tensor::Matrix;

/// Handle to a plan registered with a [`crate::Scheduler`] — requests name
/// the compiled plan they want to run under by this id.
/// The default id names the scheduler's **first** registered plan —
/// convenient for single-plan workloads and for trace generators whose
/// requests are retargeted at submission.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PlanId(pub(crate) usize);

/// Handle to a decoder model registered with a [`crate::Scheduler`] —
/// model requests name the registered [`gpa_model::DecoderModel`] they run
/// through by this id. The default id names the scheduler's **first**
/// registered model.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ModelId(pub(crate) usize);

/// What a sequence runs on: a bare attention plan (one
/// [`crate::Scheduler::submit`] request) or a full decoder stack (one
/// [`crate::Scheduler::submit_model`] request).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ServeTarget {
    /// A single compiled attention plan fed explicit q/k/v rows.
    Plan(PlanId),
    /// A registered decoder model fed embedding rows.
    Model(ModelId),
}

impl ServeTarget {
    /// The plan id, when the sequence ran on a bare plan.
    pub fn plan(&self) -> Option<PlanId> {
        match self {
            ServeTarget::Plan(id) => Some(*id),
            ServeTarget::Model(_) => None,
        }
    }

    /// The model id, when the sequence ran through a decoder stack.
    pub fn model(&self) -> Option<ModelId> {
        match self {
            ServeTarget::Plan(_) => None,
            ServeTarget::Model(id) => Some(*id),
        }
    }
}

/// Handle to a submitted request, assigned by
/// [`crate::Scheduler::submit`] in submission order (ids are strictly
/// increasing, which is what the FIFO invariants are stated against).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(pub(crate) u64);

impl RequestId {
    /// The id's position in submission order (0 for the first request a
    /// scheduler accepted, 1 for the second, …).
    pub fn as_u64(&self) -> u64 {
        self.0
    }
}

/// How a [`ServeRequest`] picks its attention pattern: name a registered
/// plan explicitly, or let the scheduler choose one at admission.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PatternChoice {
    /// Run under this registered plan, exactly as submitted.
    Explicit(PlanId),
    /// Let the scheduler pick at admission: the registered plans are
    /// ranked by [`gpa_core::AttentionPlan::estimated_edges`] for the
    /// request's prompt length (cheapest first), and the pool's free-page
    /// fraction indexes that ranking — a full pool affords the densest
    /// pattern, a starved pool forces the sparsest. The resolved plan is
    /// reported in [`Completion::target`], and the choice itself is kept
    /// so a rolled-back admission re-queues the request unresolved.
    Auto,
}

impl From<PlanId> for PatternChoice {
    fn from(plan: PlanId) -> Self {
        PatternChoice::Explicit(plan)
    }
}

impl Default for PatternChoice {
    fn default() -> Self {
        PatternChoice::Explicit(PlanId::default())
    }
}

/// One sequence's worth of serving work: a prompt to prefill plus the
/// query/key/value rows of every token it will generate.
///
/// The request owns its data (`total × dk` / `total × dv` matrices, where
/// `total = q.rows()`): rows `0..prompt` are the prompt, consumed by
/// chunked prefill; each row `t ≥ prompt` is one generated token, consumed
/// by one decode step per scheduler tick. In a real deployment the decode
/// rows would come from the model's projections token by token; here they
/// are part of the workload so traces are replayable and the output is
/// checkable bitwise against a sequential reference.
#[derive(Clone)]
pub struct ServeRequest<T> {
    /// The attention pattern this sequence runs under — a named plan or
    /// [`PatternChoice::Auto`].
    pub pattern: PatternChoice,
    /// Priority class — **lower is more urgent**; admission is strict
    /// priority across classes and FIFO within one.
    pub priority: u8,
    /// Rows of `q`/`k`/`v` that form the prompt (`1..=q.rows()`).
    pub prompt: usize,
    /// Query rows for every token, `total × dk`.
    pub q: Matrix<T>,
    /// Key rows for every token, `total × dk`.
    pub k: Matrix<T>,
    /// Value rows for every token, `total × dv`.
    pub v: Matrix<T>,
}

impl<T> ServeRequest<T> {
    /// Total tokens (prompt + generated) — also the sequence's KV token
    /// reservation at admission.
    pub fn total_tokens(&self) -> usize
    where
        T: gpa_tensor::Real,
    {
        self.q.rows()
    }
}

/// One decoder-stack sequence's worth of serving work: the embedding rows
/// for the prompt and for every token it will generate, run through a
/// registered [`gpa_model::DecoderModel`].
///
/// The request owns its input (`total × d_model`, where
/// `total = x.rows()`): rows `0..prompt` are the prompt, consumed by
/// chunked prefill; each row `t ≥ prompt` is one generated token's
/// embedding, consumed by one decode step per scheduler tick. As with
/// [`ServeRequest`], carrying the decode rows in the workload keeps traces
/// replayable and the output checkable bitwise against a sequential
/// reference.
#[derive(Clone)]
pub struct ModelRequest<T> {
    /// The registered decoder model this sequence runs through.
    pub model: ModelId,
    /// Priority class — **lower is more urgent**; admission is strict
    /// priority across classes and FIFO within one.
    pub priority: u8,
    /// Rows of `x` that form the prompt (`1..=x.rows()`).
    pub prompt: usize,
    /// Embedding rows for every token, `total × d_model`.
    pub x: Matrix<T>,
}

impl<T> ModelRequest<T> {
    /// Total tokens (prompt + generated). Each cached token occupies a KV
    /// row in **every** layer, so the sequence's worst-case page bill is
    /// `layers × ceil(total / page_size)`.
    pub fn total_tokens(&self) -> usize
    where
        T: gpa_tensor::Real,
    {
        self.x.rows()
    }
}

/// A finished sequence: its full `total × dv` attention output plus the
/// virtual-clock timestamps of its lifecycle.
#[derive(Clone)]
pub struct Completion<T> {
    /// The id [`crate::Scheduler::submit`] returned for this sequence.
    pub id: RequestId,
    /// The request's priority class.
    pub priority: u8,
    /// What the sequence ran on: a bare plan or a decoder model.
    pub target: ServeTarget,
    /// Output for every token (`total × dv` for a plan sequence,
    /// `total × d_model` for a model sequence); rows `0..prompt` from
    /// prefill, the rest one decode row per tick.
    pub output: Matrix<T>,
    /// Tick at which the request was submitted.
    pub submitted: u64,
    /// Tick at which it was admitted into a KV slot.
    pub admitted: u64,
    /// Tick at which its last row was computed.
    pub completed: u64,
    /// Times the sequence was preempted (evicted and later resumed)
    /// between admission and completion; 0 for an uninterrupted run.
    pub preemptions: u32,
}

impl<T> Completion<T> {
    /// End-to-end latency in ticks (submission to completion, inclusive of
    /// the completing tick).
    pub fn latency_ticks(&self) -> u64 {
        self.completed - self.submitted + 1
    }

    /// Ticks spent queued before admission.
    pub fn queue_ticks(&self) -> u64 {
        self.admitted - self.submitted
    }
}

impl<T> std::fmt::Debug for Completion<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Completion")
            .field("id", &self.id)
            .field("priority", &self.priority)
            .field("target", &self.target)
            .field("submitted", &self.submitted)
            .field("admitted", &self.admitted)
            .field("completed", &self.completed)
            .field("preemptions", &self.preemptions)
            .finish_non_exhaustive()
    }
}

/// What one [`crate::Scheduler::tick`] did.
pub struct TickReport<T> {
    /// The virtual time this tick executed at.
    pub tick: u64,
    /// Requests admitted into the KV pool for the first time this tick,
    /// in admission order.
    pub admitted: Vec<RequestId>,
    /// Preempted sequences re-admitted from their resume queues this
    /// tick, in resume order.
    pub resumed: Vec<RequestId>,
    /// Sequences evicted to resume queues this tick, in admission order.
    pub preempted: Vec<RequestId>,
    /// Batched launches issued: one per distinct plan with runnable work,
    /// plus — for each model with runnable work — one per distinct plan
    /// per layer of that model's stack.
    pub launches: usize,
    /// Total attention rows computed across those launches (prefill-chunk
    /// rows plus one row per decoding sequence; model sequences count each
    /// of their layers).
    pub rows_computed: usize,
    /// Sequences that finished this tick, in completion order.
    pub completed: Vec<Completion<T>>,
}

impl<T> std::fmt::Debug for TickReport<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TickReport")
            .field("tick", &self.tick)
            .field("admitted", &self.admitted)
            .field("resumed", &self.resumed)
            .field("preempted", &self.preempted)
            .field("launches", &self.launches)
            .field("rows_computed", &self.rows_computed)
            .field("completed", &self.completed)
            .finish()
    }
}
