//! Request, completion, and per-tick report types for the scheduler.

use gpa_tensor::Matrix;

/// Handle to a plan registered with a [`crate::Scheduler`] — requests name
/// the compiled plan they want to run under by this id.
/// The default id names the scheduler's **first** registered plan —
/// convenient for single-plan workloads and for trace generators whose
/// requests are retargeted at submission.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PlanId(pub(crate) usize);

/// Handle to a submitted request, assigned by
/// [`crate::Scheduler::submit`] in submission order (ids are strictly
/// increasing, which is what the FIFO invariants are stated against).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(pub(crate) u64);

impl RequestId {
    /// The id's position in submission order (0 for the first request a
    /// scheduler accepted, 1 for the second, …).
    pub fn as_u64(&self) -> u64 {
        self.0
    }
}

/// One sequence's worth of serving work: a prompt to prefill plus the
/// query/key/value rows of every token it will generate.
///
/// The request owns its data (`total × dk` / `total × dv` matrices, where
/// `total = q.rows()`): rows `0..prompt` are the prompt, consumed by
/// chunked prefill; each row `t ≥ prompt` is one generated token, consumed
/// by one decode step per scheduler tick. In a real deployment the decode
/// rows would come from the model's projections token by token; here they
/// are part of the workload so traces are replayable and the output is
/// checkable bitwise against a sequential reference.
#[derive(Clone)]
pub struct ServeRequest<T> {
    /// The registered plan this sequence runs under.
    pub plan: PlanId,
    /// Priority class — **lower is more urgent**; admission is strict
    /// priority across classes and FIFO within one.
    pub priority: u8,
    /// Rows of `q`/`k`/`v` that form the prompt (`1..=q.rows()`).
    pub prompt: usize,
    /// Query rows for every token, `total × dk`.
    pub q: Matrix<T>,
    /// Key rows for every token, `total × dk`.
    pub k: Matrix<T>,
    /// Value rows for every token, `total × dv`.
    pub v: Matrix<T>,
}

impl<T> ServeRequest<T> {
    /// Total tokens (prompt + generated) — also the sequence's KV token
    /// reservation at admission.
    pub fn total_tokens(&self) -> usize
    where
        T: gpa_tensor::Real,
    {
        self.q.rows()
    }
}

/// A finished sequence: its full `total × dv` attention output plus the
/// virtual-clock timestamps of its lifecycle.
#[derive(Clone)]
pub struct Completion<T> {
    /// The id [`crate::Scheduler::submit`] returned for this sequence.
    pub id: RequestId,
    /// The request's priority class.
    pub priority: u8,
    /// The plan the sequence ran under.
    pub plan: PlanId,
    /// Attention output for every token, `total × dv`; rows `0..prompt`
    /// from prefill, the rest one decode row per tick.
    pub output: Matrix<T>,
    /// Tick at which the request was submitted.
    pub submitted: u64,
    /// Tick at which it was admitted into a KV slot.
    pub admitted: u64,
    /// Tick at which its last row was computed.
    pub completed: u64,
    /// Times the sequence was preempted (evicted and later resumed)
    /// between admission and completion; 0 for an uninterrupted run.
    pub preemptions: u32,
}

impl<T> Completion<T> {
    /// End-to-end latency in ticks (submission to completion, inclusive of
    /// the completing tick).
    pub fn latency_ticks(&self) -> u64 {
        self.completed - self.submitted + 1
    }

    /// Ticks spent queued before admission.
    pub fn queue_ticks(&self) -> u64 {
        self.admitted - self.submitted
    }
}

impl<T> std::fmt::Debug for Completion<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Completion")
            .field("id", &self.id)
            .field("priority", &self.priority)
            .field("plan", &self.plan)
            .field("submitted", &self.submitted)
            .field("admitted", &self.admitted)
            .field("completed", &self.completed)
            .field("preemptions", &self.preemptions)
            .finish_non_exhaustive()
    }
}

/// What one [`crate::Scheduler::tick`] did.
pub struct TickReport<T> {
    /// The virtual time this tick executed at.
    pub tick: u64,
    /// Requests admitted into the KV pool for the first time this tick,
    /// in admission order.
    pub admitted: Vec<RequestId>,
    /// Preempted sequences re-admitted from their resume queues this
    /// tick, in resume order.
    pub resumed: Vec<RequestId>,
    /// Sequences evicted to resume queues this tick, in admission order.
    pub preempted: Vec<RequestId>,
    /// Batched launches issued (one per distinct plan with runnable work).
    pub launches: usize,
    /// Total attention rows computed across those launches (prefill-chunk
    /// rows plus one row per decoding sequence).
    pub rows_computed: usize,
    /// Sequences that finished this tick, in completion order.
    pub completed: Vec<Completion<T>>,
}

impl<T> std::fmt::Debug for TickReport<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TickReport")
            .field("tick", &self.tick)
            .field("admitted", &self.admitted)
            .field("resumed", &self.resumed)
            .field("preempted", &self.preempted)
            .field("launches", &self.launches)
            .field("rows_computed", &self.rows_computed)
            .field("completed", &self.completed)
            .finish()
    }
}
