//! Error type for the serving scheduler's public API.

use crate::request::RequestId;
use gpa_core::AttnError;
use std::fmt;

/// Failure of a scheduler operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The scheduler configuration is invalid (zero budget, zero chunk…).
    BadConfig {
        /// Human-readable description.
        what: &'static str,
    },
    /// A submitted request referenced a plan id this scheduler never
    /// registered.
    UnknownPlan,
    /// A submitted request referenced a model id this scheduler never
    /// registered.
    UnknownModel,
    /// A submitted request is malformed (shape mismatch, empty prompt…).
    BadRequest {
        /// Human-readable description.
        what: &'static str,
    },
    /// A submitted request can never be admitted: the pages its full
    /// prompt + decode length needs exceed the scheduler's whole pool.
    /// Rejected at submission, before any cache exists for it.
    OverCapacity {
        /// Pages the request would need resident at completion.
        need_pages: usize,
        /// Total pages in the scheduler's KV pool.
        total_pages: usize,
    },
    /// A batched launch failed. The tick was rolled back atomically (see
    /// `Scheduler::tick`); when the failure is attributable to one
    /// sequence's geometry not fitting its plan, `request` names it so the
    /// caller can [`crate::Scheduler::cancel`] it and keep serving.
    Launch {
        /// The sequence whose request could not run under its plan, when
        /// identifiable.
        request: Option<RequestId>,
        /// The underlying engine error.
        source: AttnError,
    },
    /// The trace replay did not drain within its tick bound — a stuck or
    /// starved workload.
    NotDrained {
        /// Ticks executed before giving up.
        ticks: u64,
        /// Sequences still pending or in flight.
        outstanding: usize,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::BadConfig { what } => write!(f, "bad scheduler config: {what}"),
            ServeError::UnknownPlan => write!(f, "request references an unregistered plan"),
            ServeError::UnknownModel => write!(f, "request references an unregistered model"),
            ServeError::BadRequest { what } => write!(f, "bad request: {what}"),
            ServeError::OverCapacity {
                need_pages,
                total_pages,
            } => write!(
                f,
                "request needs {need_pages} KV pages but the whole pool is {total_pages}"
            ),
            ServeError::Launch { request, source } => match request {
                Some(id) => write!(
                    f,
                    "batched launch failed on request #{}: {source}",
                    id.as_u64()
                ),
                None => write!(f, "batched launch failed: {source}"),
            },
            ServeError::NotDrained { ticks, outstanding } => write!(
                f,
                "workload not drained after {ticks} ticks ({outstanding} sequences outstanding)"
            ),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Launch { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<AttnError> for ServeError {
    fn from(e: AttnError) -> Self {
        ServeError::Launch {
            request: None,
            source: e,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(ServeError::BadConfig { what: "x" }
            .to_string()
            .contains("x"));
        assert!(ServeError::UnknownPlan.to_string().contains("unregistered"));
        assert!(ServeError::UnknownModel.to_string().contains("model"));
        assert!(ServeError::OverCapacity {
            need_pages: 9,
            total_pages: 4
        }
        .to_string()
        .contains("9"));
        let launch = ServeError::Launch {
            request: Some(RequestId(7)),
            source: AttnError::BadParameter { what: "w" },
        };
        assert!(launch.to_string().contains("#7"));
        assert!(launch.to_string().contains("w"));
        assert!(std::error::Error::source(&launch).is_some());
        assert!(ServeError::NotDrained {
            ticks: 3,
            outstanding: 2
        }
        .to_string()
        .contains("3 ticks"));
    }
}
